// Boot-mode tour: boots the same kernel every way this monitor supports and
// prints the timeline breakdown side by side — a one-binary summary of the
// paper's story (bzImage vs direct boot vs in-monitor randomization).
//
//   $ ./boot_modes [--scale=0.05]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/kernel/bzimage.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

namespace {

struct ModeSpec {
  std::string label;
  std::string image;
  imk::BootMode boot_mode;
  imk::RandoMode rando;
  bool needs_relocs;
};

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.05;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    }
  }

  // Build one kernel per randomization variant (matching real kernel builds).
  imk::Storage storage;
  std::vector<ModeSpec> specs;
  uint64_t expected_checksum = 0;
  for (imk::RandoMode rando :
       {imk::RandoMode::kNone, imk::RandoMode::kKaslr, imk::RandoMode::kFgKaslr}) {
    auto built = imk::BuildKernel(imk::KernelConfig::Make(imk::KernelProfile::kAws, rando, scale));
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
      return 1;
    }
    expected_checksum = built->expected_checksum;
    const std::string suffix = imk::RandoModeName(rando);
    storage.Put("vmlinux-" + suffix, built->vmlinux);
    if (!built->relocs.empty()) {
      storage.Put("relocs-" + suffix, imk::SerializeRelocs(built->relocs));
    }
    for (const char* codec : {"lz4", "none"}) {
      auto bz = imk::BuildBzImage(imk::ByteSpan(built->vmlinux), built->relocs, codec,
                                  imk::LoaderKind::kStandard);
      if (!bz.ok()) {
        std::fprintf(stderr, "bzimage: %s\n", bz.status().ToString().c_str());
        return 1;
      }
      storage.Put("bz-" + std::string(codec) + "-" + suffix, imk::SerializeBzImage(*bz));
    }
    auto opt = imk::BuildBzImage(imk::ByteSpan(built->vmlinux), built->relocs, "none",
                                 imk::LoaderKind::kNoneOptimized);
    storage.Put("bzopt-" + suffix, imk::SerializeBzImage(*opt));
  }

  specs = {
      {"direct nokaslr (stock firecracker)", "vmlinux-nokaslr", imk::BootMode::kDirect,
       imk::RandoMode::kNone, false},
      {"bzImage lz4 + self KASLR", "bz-lz4-kaslr", imk::BootMode::kBzImage,
       imk::RandoMode::kKaslr, false},
      {"bzImage none + self KASLR", "bz-none-kaslr", imk::BootMode::kBzImage,
       imk::RandoMode::kKaslr, false},
      {"bzImage none-optimized + self KASLR", "bzopt-kaslr", imk::BootMode::kBzImage,
       imk::RandoMode::kKaslr, false},
      {"direct + IN-MONITOR KASLR", "vmlinux-kaslr", imk::BootMode::kDirect,
       imk::RandoMode::kKaslr, true},
      {"bzImage lz4 + self FGKASLR", "bz-lz4-fgkaslr", imk::BootMode::kBzImage,
       imk::RandoMode::kFgKaslr, false},
      {"direct + IN-MONITOR FGKASLR", "vmlinux-fgkaslr", imk::BootMode::kDirect,
       imk::RandoMode::kFgKaslr, true},
  };

  std::printf("%-38s %9s %9s %9s %9s %9s  %s\n", "mode", "total", "monitor", "setup", "decomp",
              "linux", "ok");
  for (const ModeSpec& spec : specs) {
    imk::MicroVmConfig config;
    config.mem_size_bytes = 512ull << 20;
    config.kernel_image = spec.image;
    config.boot_mode = spec.boot_mode;
    config.rando = spec.rando;
    if (spec.needs_relocs) {
      config.relocs_image = "relocs-" + std::string(imk::RandoModeName(spec.rando));
    }
    config.seed = 7;
    imk::MicroVm vm(storage, config);
    auto report = vm.Boot();
    if (!report.ok()) {
      std::printf("%-38s boot failed: %s\n", spec.label.c_str(),
                  report.status().ToString().c_str());
      continue;
    }
    const imk::BootTimeline& t = report->timeline;
    std::printf("%-38s %7.2fms %7.2fms %7.2fms %7.2fms %7.2fms  %s\n", spec.label.c_str(),
                t.total_ms(), t.phase_ms(imk::BootPhase::kInMonitor),
                t.phase_ms(imk::BootPhase::kBootstrapSetup),
                t.phase_ms(imk::BootPhase::kDecompression),
                t.phase_ms(imk::BootPhase::kLinuxBoot),
                report->init_checksum == expected_checksum ? "yes" : "WRONG");
  }
  return 0;
}
