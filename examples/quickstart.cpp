// Quickstart: build a synthetic microVM kernel, boot it with in-monitor
// KASLR, and print the randomized layout and boot-time breakdown.
//
//   $ ./quickstart [--scale=0.05]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

namespace {

void Fail(const imk::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.05;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    }
  }

  // 1. Build an AWS-profile kernel with KASLR support (relocatable +
  //    relocation info), like compiling Linux with CONFIG_RANDOMIZE_BASE.
  std::printf("building aws-kaslr kernel (scale %.2f)...\n", scale);
  auto built = imk::BuildKernel(
      imk::KernelConfig::Make(imk::KernelProfile::kAws, imk::RandoMode::kKaslr, scale));
  if (!built.ok()) {
    Fail(built.status());
  }
  const imk::KernelBuildInfo& kernel = *built;
  std::printf("  vmlinux: %s, relocations: %zu entries (%s)\n",
              imk::HumanSize(kernel.vmlinux.size()).c_str(), kernel.relocs.total(),
              imk::HumanSize(kernel.relocs.SerializedSize()).c_str());

  // 2. Install the kernel and its relocation info (the extra monitor
  //    argument of the paper's Figure 8) into storage.
  imk::Storage storage;
  storage.Put("vmlinux", kernel.vmlinux);
  storage.Put("vmlinux.relocs", imk::SerializeRelocs(kernel.relocs));

  // 3. Configure a Firecracker-style microVM with in-monitor KASLR.
  imk::MicroVmConfig config;
  config.mem_size_bytes = 256ull << 20;
  config.kernel_image = "vmlinux";
  config.relocs_image = "vmlinux.relocs";
  config.boot_mode = imk::BootMode::kDirect;
  config.rando = imk::RandoMode::kKaslr;

  imk::MicroVm vm(storage, config);
  auto report = vm.Boot();
  if (!report.ok()) {
    Fail(report.status());
  }

  // 4. Inspect what the monitor did.
  std::printf("\nboot complete: %s\n", report->timeline.ToString().c_str());
  std::printf("  virtual slide:    +0x%llx (%llu MiB)\n",
              static_cast<unsigned long long>(report->choice.virt_slide),
              static_cast<unsigned long long>(report->choice.virt_slide >> 20));
  std::printf("  physical load:    0x%llx\n",
              static_cast<unsigned long long>(report->choice.phys_load_addr));
  std::printf("  runtime _text:    0x%llx (linked at 0x%llx)\n",
              static_cast<unsigned long long>(vm.RuntimeAddr(kernel.text_vaddr)),
              static_cast<unsigned long long>(kernel.text_vaddr));
  std::printf("  relocations:      %llu abs64, %llu abs32, %llu inverse32\n",
              static_cast<unsigned long long>(report->reloc_stats.applied_abs64),
              static_cast<unsigned long long>(report->reloc_stats.applied_abs32),
              static_cast<unsigned long long>(report->reloc_stats.applied_inverse32));
  std::printf("  guest checksum:   0x%llx (%s)\n",
              static_cast<unsigned long long>(report->init_checksum),
              report->init_checksum == kernel.expected_checksum ? "correct" : "WRONG");
  std::printf("  guest insns:      %llu\n",
              static_cast<unsigned long long>(report->guest_stats.instructions));

  // 5. Post-boot: ask the guest kernel to resolve one of its own symbols.
  auto lookup = vm.CallGuest(kernel.selftest_entry_vaddr, 0, 0, 1ull << 28);
  if (!lookup.ok()) {
    Fail(lookup.status());
  }
  std::printf("  kallsyms lookup:  hash 0x%llx (%s)\n",
              static_cast<unsigned long long>(lookup->r0),
              lookup->r0 == kernel.indirect_hashes[0] ? "correct" : "WRONG");
  return 0;
}
