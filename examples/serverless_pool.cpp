// Serverless host simulation: boot a pool of microVMs the way a
// function-as-a-service host does (paper §2.1), each with in-monitor
// randomization, and report boot-rate and layout diversity.
//
// Demonstrates the paper's security argument for short-lived VMs: every
// instance gets a fresh layout, so a leak from one instance tells an
// attacker nothing about its neighbors (contrast with zygote/snapshot
// reuse, §7).
//
//   $ ./serverless_pool [--vms=24] [--scale=0.05] [--fg]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "src/base/stats.h"
#include "src/kaslr/entropy.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

int main(int argc, char** argv) {
  int vms = 24;
  double scale = 0.05;
  bool fg = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--vms=", 6) == 0) {
      vms = std::atoi(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--fg") == 0) {
      fg = true;
    }
  }
  const imk::RandoMode mode = fg ? imk::RandoMode::kFgKaslr : imk::RandoMode::kKaslr;

  auto built = imk::BuildKernel(imk::KernelConfig::Make(imk::KernelProfile::kAws, mode, scale));
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  imk::Storage storage;
  storage.Put("vmlinux", built->vmlinux);
  storage.Put("vmlinux.relocs", imk::SerializeRelocs(built->relocs));

  std::printf("booting %d microVMs with in-monitor %s...\n", vms, fg ? "FGKASLR" : "KASLR");
  std::set<uint64_t> slides;
  imk::Summary boot_ms;
  uint64_t failures = 0;
  for (int i = 0; i < vms; ++i) {
    imk::MicroVmConfig config;
    config.mem_size_bytes = 256ull << 20;
    config.kernel_image = "vmlinux";
    config.relocs_image = "vmlinux.relocs";
    config.rando = mode;
    config.seed = 0;  // host entropy: every instance unique
    imk::MicroVm vm(storage, config);
    auto report = vm.Boot();
    if (!report.ok() || !report->init_done ||
        report->init_checksum != built->expected_checksum) {
      ++failures;
      continue;
    }
    slides.insert(report->choice.virt_slide);
    boot_ms.Add(report->timeline.total_ms());
  }

  std::printf("\npool results:\n");
  std::printf("  boots:            %d (%llu failed)\n", vms,
              static_cast<unsigned long long>(failures));
  std::printf("  boot time:        mean %.2f ms (min %.2f, max %.2f)\n", boot_ms.mean(),
              boot_ms.min(), boot_ms.max());
  std::printf("  boot rate:        %.1f VMs/sec/core\n", 1000.0 / boot_ms.mean());
  std::printf("  distinct slides:  %zu of %d instances\n", slides.size(), vms);

  imk::OffsetConstraints constraints;
  constraints.image_mem_size = built->ImageMemSize();
  constraints.guest_mem_size = 256ull << 20;
  constraints.reserved_tail = 1 << 20;
  constraints.constants = imk::DefaultKernelConstants();
  auto bits = imk::VirtualEntropyBits(constraints);
  if (bits.ok()) {
    std::printf("  base entropy:     %.1f bits per instance\n", *bits);
  }
  if (fg) {
    std::printf("  shuffle entropy:  ~%.0f bits (log2 of %zu! permutations)\n",
                imk::ShuffleEntropyBits(built->functions.size()), built->functions.size());
  }
  return failures == 0 ? 0 : 1;
}
