// Code-reuse attack simulation: quantifies what KASLR and FGKASLR actually
// buy (paper §3.1).
//
// Model: the attacker wants the address of a victim "gadget" function. They
// get one information leak — the runtime address of ONE other kernel
// function (an arbitrary leaked pointer). They then guess the gadget's
// address using link-time layout knowledge:
//
//   - nokaslr:  the gadget is at its link address. Always works.
//   - kaslr:    leak reveals the global slide; gadget = link + slide.
//               One leak derandomizes the whole kernel (the §3.1 criticism).
//   - fgkaslr:  the slide helps, but the gadget moved independently of the
//               leaked function; the attacker's best guess fails unless they
//               leaked the gadget itself.
//
//   $ ./attack_sim [--trials=40] [--scale=0.02]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/base/rng.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

namespace {

struct AttackStats {
  int trials = 0;
  int derandomized = 0;
};

// One boot; attacker leaks fn[leak_index]'s runtime address (through the
// guest's own pointer table, i.e. a data leak) and guesses fn[victim_index].
imk::Result<bool> RunTrial(const imk::KernelBuildInfo& kernel, imk::Storage& storage,
                           imk::RandoMode mode, uint32_t leak_table_index,
                           const imk::FunctionInfo& leaked_fn,
                           const imk::FunctionInfo& victim_fn, uint64_t seed) {
  imk::MicroVmConfig config;
  config.mem_size_bytes = 256ull << 20;
  config.kernel_image = "vmlinux";
  if (!kernel.relocs.empty()) {
    config.relocs_image = "vmlinux.relocs";
  }
  config.rando = mode;
  config.seed = seed;
  imk::MicroVm vm(storage, config);
  IMK_ASSIGN_OR_RETURN(imk::BootReport report, vm.Boot());
  if (!report.init_done) {
    return imk::InternalError("boot failed");
  }

  // The leak: read the function pointer table entry from guest memory, as an
  // info-leak bug would. The table is in .data (never shuffled), so its
  // physical location follows directly from the load address.
  const uint64_t phys =
      report.choice.phys_load_addr + (kernel.fn_table_vaddr - kernel.text_vaddr);
  IMK_ASSIGN_OR_RETURN(imk::MutableByteSpan entry,
                       vm.memory().Slice(phys + 8ull * leak_table_index, 8));
  const uint64_t leaked_runtime = imk::LoadLe64(entry.data());

  // The guess: slide = leaked_runtime - link(leaked_fn); gadget = link(victim) + slide.
  const uint64_t inferred_slide = leaked_runtime - leaked_fn.vaddr;
  const uint64_t guess = victim_fn.vaddr + inferred_slide;

  // Ground truth: for nokaslr/kaslr the victim's true address is
  // link + slide; for fgkaslr it additionally includes the per-function
  // shuffle delta, which the attacker cannot learn from this leak. The guess
  // "hits" only if it equals the link+slide location AND that location still
  // holds the victim (no shuffle) — checked via the monitor's layout record.
  return guess == vm.RuntimeAddr(victim_fn.vaddr) &&
         report.sections_shuffled == 0;
}

}  // namespace

int main(int argc, char** argv) {
  int trials = 40;
  double scale = 0.02;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      trials = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    }
  }

  std::printf("attack model: one leaked function pointer, one gadget guess\n");
  std::printf("%-10s %-22s %s\n", "kernel", "derandomized", "notes");

  for (imk::RandoMode mode :
       {imk::RandoMode::kNone, imk::RandoMode::kKaslr, imk::RandoMode::kFgKaslr}) {
    auto built =
        imk::BuildKernel(imk::KernelConfig::Make(imk::KernelProfile::kLupine, mode, scale));
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
      return 1;
    }
    imk::Storage storage;
    storage.Put("vmlinux", built->vmlinux);
    if (!built->relocs.empty()) {
      storage.Put("vmlinux.relocs", imk::SerializeRelocs(built->relocs));
    }

    // Leak indirect fn 0 (through the guest's pointer table — a data leak);
    // the victim gadget is a chain function far away in link order.
    const uint32_t leak_table_index = 0;
    const imk::FunctionInfo leaked_fn = built->functions[built->indirect_base];
    const imk::FunctionInfo victim_fn = built->functions[built->functions.size() / 3];

    AttackStats stats;
    for (int t = 0; t < trials; ++t) {
      auto result = RunTrial(*built, storage, mode, leak_table_index, leaked_fn, victim_fn,
                             /*seed=*/1000 + t);
      if (!result.ok()) {
        std::fprintf(stderr, "trial: %s\n", result.status().ToString().c_str());
        return 1;
      }
      ++stats.trials;
      if (*result) {
        ++stats.derandomized;
      }
    }

    const char* notes = "";
    switch (mode) {
      case imk::RandoMode::kNone:
        notes = "no defense: link address is runtime address";
        break;
      case imk::RandoMode::kKaslr:
        notes = "one leak reveals the global slide (3.1's criticism)";
        break;
      case imk::RandoMode::kFgKaslr:
        notes = "leak only reveals the leaked function (paper's fix)";
        break;
    }
    std::printf("%-10s %3d / %-3d trials       %s\n", imk::RandoModeName(mode),
                stats.derandomized, stats.trials, notes);
  }
  return 0;
}
