#!/usr/bin/env bash
# Full CI gate: tier-1 build + tests, AddressSanitizer and UBSan builds with
# the same test suite, a ThreadSanitizer build running the boot matrix, the
# parallel-pipeline equivalence tests (the ThreadPool-sharded loader paths)
# and the boot-storm/CoW-fault tests, bench smokes (micro_parallel and
# storm_boot on tiny images), a regression guard over the committed
# BENCH_*.json targets, and clang-tidy (skipped gracefully when not
# installed). Nonzero exit on any failure.
#
# Usage: scripts/ci_check.sh [--skip-sanitizers]
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
skip_sanitizers=0
[[ "${1:-}" == "--skip-sanitizers" ]] && skip_sanitizers=1

failures=0

# run_suite NAME DIR CTEST_FILTER [cmake args...] — empty filter runs all.
run_suite() {
  local name="$1" dir="$2" filter="$3"
  shift 3
  echo "=== $name: configure + build ($dir) ==="
  if ! cmake -B "$dir" -S "$repo_root" "$@" >/dev/null; then
    echo "=== $name: CONFIGURE FAILED ==="
    failures=$((failures + 1))
    return
  fi
  if ! cmake --build "$dir" -j; then
    echo "=== $name: BUILD FAILED ==="
    failures=$((failures + 1))
    return
  fi
  echo "=== $name: ctest ==="
  local ctest_args=(--output-on-failure -j "$(nproc)")
  [[ -n "$filter" ]] && ctest_args+=(-R "$filter")
  if ! (cd "$dir" && ctest "${ctest_args[@]}"); then
    echo "=== $name: TESTS FAILED ==="
    failures=$((failures + 1))
  fi
}

run_suite "tier-1" "$repo_root/build" ""
if [[ $skip_sanitizers -eq 0 ]]; then
  run_suite "asan" "$repo_root/build-asan" "" -DIMK_ASAN=ON
  run_suite "ubsan" "$repo_root/build-ubsan" "" -DIMK_UBSAN=ON
  # TSan covers the sharded loader paths (every ParallelFor call site under
  # the boot matrix and the worker-count/cache equivalence tests) plus the
  # boot-storm workers racing CoW faults and the single-flight template build.
  run_suite "tsan" "$repo_root/build-tsan" \
    "ThreadPool|BatchDeltas|ShuffleDeltaIndex|Pipeline|ImageTemplateCache|BootMatrix|BootStorm|FrameStore" \
    -DIMK_TSAN=ON
fi

echo "=== bench smoke (micro_parallel, tiny image) ==="
if ! "$repo_root/build/bench/micro_parallel" --scale=0.02 --reps=2 --warmup=1 \
    --out="$repo_root/build/bench_smoke.json" >/dev/null; then
  echo "=== bench smoke: FAILED ==="
  failures=$((failures + 1))
fi

echo "=== bench smoke (storm_boot, tiny fleet) ==="
if ! "$repo_root/build/bench/storm_boot" --scale=0.02 --vms=4 --threads=2 \
    --out="$repo_root/build/storm_smoke.json" >/dev/null; then
  echo "=== storm smoke: FAILED ==="
  failures=$((failures + 1))
fi

echo "=== committed bench targets (BENCH_*.json) ==="
if ! "$repo_root/scripts/check_bench_json.sh" "$repo_root"; then
  echo "=== bench targets: FAILED ==="
  failures=$((failures + 1))
fi

echo "=== clang-tidy ==="
if ! "$repo_root/scripts/run_clang_tidy.sh" "$repo_root/build"; then
  echo "=== clang-tidy: FAILED ==="
  failures=$((failures + 1))
fi

if [[ $failures -gt 0 ]]; then
  echo "ci_check: $failures stage(s) failed"
  exit 1
fi
echo "ci_check: all stages passed"
