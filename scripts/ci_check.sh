#!/usr/bin/env bash
# Full CI gate: tier-1 build + tests, AddressSanitizer and UBSan builds with
# the same test suite, a ThreadSanitizer build running the boot matrix, the
# parallel-pipeline equivalence tests (the ThreadPool-sharded loader paths)
# and the boot-storm/CoW-fault tests, fault drills (the supervisor /
# fault-injection / ingest-fuzz suites re-run by name under ASan, and an
# end-to-end imk_tool degradation-ladder + strict-refusal drill), a
# pooled-storm drill (the layout-pool suites by name under ASan, plus a
# tool-surface pooled storm, cross-VM uniqueness sweep, and refill-fault
# fallback boot), a race drill (IMK_RACE_AUDIT build running the imkrace
# suites, an instrumented storm audit — including the fgkaslr-pooled lane —
# that must come back clean, seeded detector drills that must come back
# caught, and the imk_lint raw-mutex/rank/fault-point source lint with a
# negative fixture proving unregistered fault points still fail), a soak
# smoke (a governed churn storm under a deliberately tight memory budget —
# the reclamation ladder must shed, hard-watermark rejections must be
# accounted, and the frees run leak/UAF-checked under ASan when available),
# a trace stage (the imktrace/metrics suites re-run by name under TSan, a
# traced storm + boot through the tool surface with the exported Chrome
# JSON strictly validated and the Prometheus scrape checked for the storm
# counters), bench smokes (micro_parallel, storm_boot, and micro_interp on
# tiny images), a regression guard
# over the committed BENCH_*.json targets, and clang-tidy (skipped
# gracefully when not installed). Nonzero exit on any failure.
#
# Usage: scripts/ci_check.sh [--skip-sanitizers]
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
skip_sanitizers=0
[[ "${1:-}" == "--skip-sanitizers" ]] && skip_sanitizers=1

failures=0

# run_suite NAME DIR CTEST_FILTER [cmake args...] — empty filter runs all.
run_suite() {
  local name="$1" dir="$2" filter="$3"
  shift 3
  echo "=== $name: configure + build ($dir) ==="
  if ! cmake -B "$dir" -S "$repo_root" "$@" >/dev/null; then
    echo "=== $name: CONFIGURE FAILED ==="
    failures=$((failures + 1))
    return
  fi
  if ! cmake --build "$dir" -j; then
    echo "=== $name: BUILD FAILED ==="
    failures=$((failures + 1))
    return
  fi
  echo "=== $name: ctest ==="
  local ctest_args=(--output-on-failure -j "$(nproc)")
  [[ -n "$filter" ]] && ctest_args+=(-R "$filter")
  if ! (cd "$dir" && ctest "${ctest_args[@]}"); then
    echo "=== $name: TESTS FAILED ==="
    failures=$((failures + 1))
  fi
}

run_suite "tier-1" "$repo_root/build" ""
if [[ $skip_sanitizers -eq 0 ]]; then
  run_suite "asan" "$repo_root/build-asan" "" -DIMK_ASAN=ON
  run_suite "ubsan" "$repo_root/build-ubsan" "" -DIMK_UBSAN=ON
  # TSan covers the sharded loader paths (every ParallelFor call site under
  # the boot matrix and the worker-count/cache equivalence tests) plus the
  # boot-storm workers racing CoW faults and the single-flight template build.
  # TSan also drills the fault-tolerance machinery: supervised storms racing
  # retries/quarantines against the shared template cache, and the injector's
  # own locking under concurrent fault points.
  # LayoutPool joins the filter for the pooled-storm paths: concurrent grabs
  # racing the background refill executor, and pooled launches racing the
  # shared template cache.
  # BlockCache joins the filter for the predecoded-block engine: the
  # concurrent SharedBlockCache storm (first-wins Install racing Grab), the
  # bit-identity suites, and the storm workers publishing decodes while
  # racing CoW faults on the frames those decodes came from.
  # Trace|Metrics joins the filter for the observability layer: 8 concurrent
  # span emitters racing mid-storm Collect() scrapes, the metrics
  # scrape-during-emit drill, and the trace-enabled bit-identity lane.
  run_suite "tsan" "$repo_root/build-tsan" \
    "ThreadPool|BatchDeltas|ShuffleDeltaIndex|Pipeline|ImageTemplateCache|BootMatrix|BootStorm|FrameStore|BootSupervisor|SupervisedStorm|FaultInjector|IngestFuzz|LayoutPool|BlockCache|Trace|Metrics" \
    -DIMK_TSAN=ON

  # Fault drill: the supervisor suites again under ASan, by name, so a
  # filter typo in the full run can never silently drop them — every retry,
  # degradation, watchdog trip, and quarantine path runs leak-checked.
  echo "=== fault drill (asan: supervisor + fault injection + ingest fuzz) ==="
  if ! (cd "$repo_root/build-asan" &&
        ctest --output-on-failure -j "$(nproc)" \
          -R "BootSupervisor|SupervisedStorm|FaultInjector|FaultPlan|IngestFuzz|BlockCacheFault"); then
    echo "=== fault drill: FAILED ==="
    failures=$((failures + 1))
  fi

  # Pooled-storm drill, again by name under ASan: one-shot handout under
  # contention, pool fault quarantine/fallback, and the cross-VM uniqueness
  # sweep over a pooled storm all run leak-checked even if the full-suite
  # filter ever changes.
  echo "=== pooled-storm drill (asan: layout pool suites) ==="
  if ! (cd "$repo_root/build-asan" &&
        ctest --output-on-failure -j "$(nproc)" -R "LayoutPool"); then
    echo "=== pooled-storm drill: FAILED ==="
    failures=$((failures + 1))
  fi
fi

# End-to-end fault drill through the tool surface: a persistent relocation
# fault must walk the full degradation ladder (exit 0), and strict policy
# must refuse to degrade (exit nonzero).
echo "=== fault drill (imk_tool ladder + strict refusal) ==="
drill_dir="$(mktemp -d)"
if ! "$repo_root/build/tools/imk_tool" build --out="$drill_dir" --rando=fgkaslr --scale=0.02 \
    >/dev/null; then
  echo "=== fault drill: kernel build FAILED ==="
  failures=$((failures + 1))
else
  drill_vmlinux=("$drill_dir"/*.vmlinux)
  drill_relocs=("$drill_dir"/*.relocs)
  if ! "$repo_root/build/tools/imk_tool" boot --kernel="${drill_vmlinux[0]}" \
      --relocs="${drill_relocs[0]}" --rando=fgkaslr --seed=7 \
      --faults="loader.reloc:error" --fault-seed=3 --max-retries=1 --degrade=ladder \
      >/dev/null; then
    echo "=== fault drill: ladder degradation FAILED (expected exit 0) ==="
    failures=$((failures + 1))
  fi
  if "$repo_root/build/tools/imk_tool" boot --kernel="${drill_vmlinux[0]}" \
      --relocs="${drill_relocs[0]}" --rando=fgkaslr --seed=7 \
      --faults="loader.reloc:error" --fault-seed=3 --max-retries=1 --degrade=strict \
      >/dev/null 2>&1; then
    echo "=== fault drill: strict policy degraded (expected nonzero exit) ==="
    failures=$((failures + 1))
  fi
  # Block-cache corrupt drill: every shared-tier grab is corrupted, so the
  # engine must fall back to slow-path decodes on every block and still boot
  # clean (the cache may degrade throughput, never correctness).
  if ! "$repo_root/build/tools/imk_tool" boot --kernel="${drill_vmlinux[0]}" \
      --relocs="${drill_relocs[0]}" --rando=fgkaslr --seed=7 \
      --faults="interp.blockcache:corrupt:bytes=8" --fault-seed=3 >/dev/null; then
    echo "=== fault drill: corrupt block-cache fallback boot FAILED ==="
    failures=$((failures + 1))
  fi
fi
rm -rf "$drill_dir"

# Layout-pool drill through the tool surface: a pooled storm must hand every
# VM a pre-rendered layout, the cross-VM uniqueness sweep must come back
# clean, and a boot whose refill is faulted away must still come up through
# the inline fallback (the pool may degrade throughput, never availability).
echo "=== layout-pool drill (pooled storm + uniqueness + refill-fault fallback) ==="
pool_dir="$(mktemp -d)"
if ! "$repo_root/build/tools/imk_tool" build --out="$pool_dir" --rando=fgkaslr --scale=0.02 \
    >/dev/null; then
  echo "=== layout-pool drill: kernel build FAILED ==="
  failures=$((failures + 1))
else
  pool_vmlinux=("$pool_dir"/*.vmlinux)
  pool_relocs=("$pool_dir"/*.relocs)
  if ! "$repo_root/build/tools/imk_tool" storm --kernel="${pool_vmlinux[0]}" \
      --relocs="${pool_relocs[0]}" --rando=fgkaslr --vms=8 --threads=2 \
      --layout-pool=8 >/dev/null; then
    echo "=== layout-pool drill: pooled storm FAILED ==="
    failures=$((failures + 1))
  fi
  if ! "$repo_root/build/tools/imk_tool" boot --kernel="${pool_vmlinux[0]}" \
      --relocs="${pool_relocs[0]}" --rando=fgkaslr --seed=7 --layout-pool=2 \
      --faults="pool.refill:error" --fault-seed=3 >/dev/null; then
    echo "=== layout-pool drill: refill-fault fallback boot FAILED ==="
    failures=$((failures + 1))
  fi
fi
rm -rf "$pool_dir"
if ! "$repo_root/build/tools/imk_tool" verify --uniqueness --vms=8 >/dev/null; then
  echo "=== layout-pool drill: uniqueness sweep NOT CLEAN ==="
  failures=$((failures + 1))
fi

# Soak smoke: long-running-fleet memory governance through the tool surface.
# A churn storm (launch/halt cycles against the same shared caches) under a
# tight byte budget must trigger the reclamation ladder and still exit clean;
# an absurdly tight budget must turn launches away at the hard watermark with
# every rejection accounted in the outcome tallies. ASan (when built) checks
# that reclamation's frees are neither leaks nor use-after-free.
echo "=== soak smoke (governed churn storm + backpressure drill) ==="
soak_tool="$repo_root/build/tools/imk_tool"
[[ $skip_sanitizers -eq 0 && -x "$repo_root/build-asan/tools/imk_tool" ]] &&
  soak_tool="$repo_root/build-asan/tools/imk_tool"
soak_dir="$(mktemp -d)"
if ! "$soak_tool" build --out="$soak_dir" --rando=fgkaslr --scale=0.02 >/dev/null; then
  echo "=== soak smoke: kernel build FAILED ==="
  failures=$((failures + 1))
else
  soak_vmlinux=("$soak_dir"/*.vmlinux)
  soak_relocs=("$soak_dir"/*.relocs)
  soak_out="$("$soak_tool" storm --kernel="${soak_vmlinux[0]}" \
      --relocs="${soak_relocs[0]}" --rando=fgkaslr --vms=8 --threads=2 \
      --churn=3 --mem-budget=64 --mem-soft-pct=0.5)"
  if [[ $? -ne 0 ]]; then
    echo "=== soak smoke: governed churn storm FAILED ==="
    failures=$((failures + 1))
  elif ! grep -qE 'reclaim: [1-9][0-9]* runs' <<< "$soak_out"; then
    echo "=== soak smoke: ladder never shed under a tight budget ==="
    failures=$((failures + 1))
  fi
  soak_out="$("$soak_tool" storm --kernel="${soak_vmlinux[0]}" \
      --relocs="${soak_relocs[0]}" --rando=fgkaslr --vms=4 --threads=2 \
      --churn=2 --mem-budget=1 --admit-wait-ms=1)"
  if [[ $? -ne 0 ]]; then
    echo "=== soak smoke: backpressure storm FAILED (rejections must not be fatal) ==="
    failures=$((failures + 1))
  elif ! grep -qE ' [1-9][0-9]* rejected-mem' <<< "$soak_out"; then
    echo "=== soak smoke: hard watermark never rejected a launch ==="
    failures=$((failures + 1))
  fi
fi
rm -rf "$soak_dir"

# Trace stage: observability must never perturb or race the fleet. The TSan
# build re-runs the tracer/metrics suites by name (a filter typo in the full
# run can never silently drop them), then the tool surface: a traced storm
# must exit clean, expose the storm outcome counters in its Prometheus
# scrape, and write Chrome trace JSON that a strict parse accepts with the
# expected spans in it; a traced supervised boot must also exit clean. The
# instrumented racecheck below includes the fgkaslr-traced storm lane, so
# the rank-85 registry scrapes are audited under the lock wrappers too.
echo "=== trace stage (TSan trace suites + traced-storm smoke + exporter guard) ==="
if [[ $skip_sanitizers -eq 0 ]]; then
  if ! (cd "$repo_root/build-tsan" &&
        ctest --output-on-failure -j "$(nproc)" -R "Trace|Metrics"); then
    echo "=== trace stage: TSan trace/metrics suites FAILED ==="
    failures=$((failures + 1))
  fi
fi
trace_dir="$(mktemp -d)"
if ! "$repo_root/build/tools/imk_tool" build --out="$trace_dir" --rando=fgkaslr --scale=0.02 \
    >/dev/null; then
  echo "=== trace stage: kernel build FAILED ==="
  failures=$((failures + 1))
else
  trace_vmlinux=("$trace_dir"/*.vmlinux)
  trace_relocs=("$trace_dir"/*.relocs)
  trace_out="$("$repo_root/build/tools/imk_tool" storm --kernel="${trace_vmlinux[0]}" \
      --relocs="${trace_relocs[0]}" --rando=fgkaslr --vms=8 --threads=2 \
      --trace="$trace_dir/storm.trace.json" --metrics)"
  if [[ $? -ne 0 ]]; then
    echo "=== trace stage: traced storm FAILED ==="
    failures=$((failures + 1))
  elif ! grep -q 'imk_storm_attempts_total' <<< "$trace_out"; then
    echo "=== trace stage: Prometheus scrape missing storm counters ==="
    failures=$((failures + 1))
  fi
  if ! python3 - "$trace_dir/storm.trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "empty traceEvents"
names = {e.get("name") for e in events}
assert "storm.launch" in names, "no storm.launch span"
assert any(e.get("ph") == "X" for e in events), "no complete spans"
assert all("ts" in e and "pid" in e for e in events), "malformed event"
EOF
  then
    echo "=== trace stage: exported Chrome trace JSON invalid ==="
    failures=$((failures + 1))
  fi
  if ! "$repo_root/build/tools/imk_tool" boot --kernel="${trace_vmlinux[0]}" \
      --relocs="${trace_relocs[0]}" --rando=fgkaslr --seed=7 \
      --trace="$trace_dir/boot.trace.json" --metrics >/dev/null; then
    echo "=== trace stage: traced boot FAILED ==="
    failures=$((failures + 1))
  fi
fi
rm -rf "$trace_dir"

# Race drill: build with the instrumented lock wrappers and run the imkrace
# suites (the IMK_RACE_AUDIT-gated tests skip in every other build), then
# exercise the tool surface both ways — a real concurrent storm must audit
# CLEAN, and each seeded violation drill must be DETECTED (the detector
# detecting nothing would otherwise look identical to a clean fleet).
run_suite "race-drill" "$repo_root/build-race" \
  "LockRank|RaceReport|RaceDetector|FaultRegistry|RaceMutex|RaceStormDrill|RaceAuditClean" \
  -DIMK_RACE_AUDIT=ON
echo "=== race drill (imk_tool racecheck: storm audit + seeded drills) ==="
# racecheck's storm lanes include the pooled lane (TryGrab racing the
# background refill executor) and the governed churn lane (launch/halt cycles
# under a tight budget, auditing the kMemGovernor rank: admission and the
# reclamation ladder taking cache locks strictly upward), all under the
# instrumented lock wrappers.
if ! "$repo_root/build-race/tools/imk_tool" racecheck >/dev/null; then
  echo "=== race drill: instrumented storm audit NOT CLEAN ==="
  failures=$((failures + 1))
fi
for drill in order lockset; do
  if ! "$repo_root/build-race/tools/imk_tool" racecheck --drill="$drill" >/dev/null; then
    echo "=== race drill: seeded '$drill' violation NOT DETECTED ==="
    failures=$((failures + 1))
  fi
done

# Source lint: raw std::mutex outside src/race/, IMK_GUARDED_BY ranks that
# are not in the rank table, and fault-point names tests reference but the
# injector never registered.
echo "=== imk_lint (raw-mutex / lock-rank / fault-point lint) ==="
if ! "$repo_root/build/tools/imk_lint" --build="$repo_root/build" --root="$repo_root"; then
  echo "=== imk_lint: FAILED ==="
  failures=$((failures + 1))
fi

# The lint must also still FAIL when shown an unregistered fault point: a
# synthetic compile database lists the (never compiled) fixture arming
# pool.bogus_* names, and a clean exit would mean the fault-point check
# rotted — new pool drills could then silently arm nothing.
echo "=== imk_lint negative fixture (unregistered fault point must be flagged) ==="
lint_dir="$(mktemp -d)"
cat > "$lint_dir/compile_commands.json" <<EOF
[{ "directory": "$repo_root",
   "command": "c++ -c tests/lint_fixture_unregistered_fault_point.cc",
   "file": "$repo_root/tests/lint_fixture_unregistered_fault_point.cc" }]
EOF
if "$repo_root/build/tools/imk_lint" --build="$lint_dir" --root="$repo_root" >/dev/null; then
  echo "=== imk_lint negative fixture: NOT FLAGGED (expected nonzero exit) ==="
  failures=$((failures + 1))
fi
rm -rf "$lint_dir"

echo "=== bench smoke (micro_parallel, tiny image) ==="
if ! "$repo_root/build/bench/micro_parallel" --scale=0.02 --reps=2 --warmup=1 \
    --out="$repo_root/build/bench_smoke.json" >/dev/null; then
  echo "=== bench smoke: FAILED ==="
  failures=$((failures + 1))
fi

echo "=== bench smoke (storm_boot, tiny fleet) ==="
if ! "$repo_root/build/bench/storm_boot" --scale=0.02 --vms=4 --threads=2 \
    --out="$repo_root/build/storm_smoke.json" >/dev/null; then
  echo "=== storm smoke: FAILED ==="
  failures=$((failures + 1))
fi

echo "=== bench smoke (micro_interp, tiny image) ==="
if ! "$repo_root/build/bench/micro_interp" --scale=0.02 --reps=2 --warmup=1 \
    --out="$repo_root/build/interp_smoke.json" >/dev/null; then
  echo "=== interp smoke: FAILED ==="
  failures=$((failures + 1))
fi

echo "=== committed bench targets (BENCH_*.json) ==="
if ! "$repo_root/scripts/check_bench_json.sh" "$repo_root"; then
  echo "=== bench targets: FAILED ==="
  failures=$((failures + 1))
fi

echo "=== clang-tidy ==="
if ! "$repo_root/scripts/run_clang_tidy.sh" "$repo_root/build"; then
  echo "=== clang-tidy: FAILED ==="
  failures=$((failures + 1))
fi

if [[ $failures -gt 0 ]]; then
  echo "ci_check: $failures stage(s) failed"
  exit 1
fi
echo "ci_check: all stages passed"
