#!/usr/bin/env bash
# Regression guard over the committed bench records: the numbers we publish in
# BENCH_*.json must keep satisfying the PR acceptance targets. Re-recording a
# bench that regresses past a target fails CI instead of silently shipping a
# worse number.
#
# Usage: scripts/check_bench_json.sh [repo_root]
set -u

repo_root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"

python3 - "$repo_root" <<'EOF'
import json
import sys

root = sys.argv[1]
failures = []


def check(label, cond):
    print(f"{'ok  ' if cond else 'FAIL'} {label}")
    if not cond:
        failures.append(label)


with open(f"{root}/BENCH_parallel.json") as f:
    parallel = json.load(f)
stages = parallel["stages"]
check("parallel: reloc_apply batch speedup >= 4x",
      stages["reloc_apply"]["speedup"] >= 4.0)
check("parallel: end_to_end warm speedup >= 3x",
      stages["end_to_end_load"]["speedup"] >= 3.0)
mem = parallel["memory"]
check("parallel: loader maps some frames zero-copy",
      mem["mapped_shared_frames"] > 0)
check("parallel: load stage dirties <1% of image frames",
      mem["load_dirty_frames"] < 0.01 * mem["image_frames"])
check("parallel: image_copy parallel path intentionally dropped",
      stages["image_copy"].get("parallel_dropped") is True
      and "fast_ns" not in stages["image_copy"])

with open(f"{root}/BENCH_storm.json") as f:
    storm = json.load(f)
kaslr = storm["modes"]["kaslr"]
check("storm: kaslr dirty image fraction <= 50%",
      kaslr["image_dirty_fraction"] <= 0.5)
check("storm: kaslr warm launch storm >= 2x serial baseline",
      kaslr["launch_speedup"] >= 2.0)
check("storm: template cache misses bounded (one build per mode)",
      all(m.get("template_cache_misses", 0) <= 1 for m in storm["modes"].values()))
nok = storm["modes"]["nokaslr"]["image_dirty_fraction"]
kas = kaslr["image_dirty_fraction"]
fgk = storm["modes"]["fgkaslr"]["image_dirty_fraction"]
check("storm: dirty-density ordering nokaslr <= kaslr <= fgkaslr",
      nok <= kas + 1e-9 and kas <= fgk + 1e-9)

# Block-engine ablation: thresholds are the measured-achievable ones (the
# boot workload averages <3 guest insns per dispatch, bounding pure-hit
# dispatch at ~2.7x the switch loop — DESIGN.md section 13).
modes = storm["modes"]
check("storm: block engine full-boot speedup nokaslr >= 1.5x legacy",
      modes["nokaslr"]["interp_speedup"] >= 1.5)
check("storm: block engine full-boot speedup kaslr >= 1.0x legacy",
      modes["kaslr"]["interp_speedup"] >= 1.0)
share = {m: modes[m]["block_cache"]["share_rate"]
         for m in ("nokaslr", "kaslr", "fgkaslr")}
check("storm: decode-share census ordering nokaslr >= kaslr >= fgkaslr",
      share["nokaslr"] >= share["kaslr"] - 1e-9
      and share["kaslr"] >= share["fgkaslr"] - 1e-9)
check("storm: nokaslr shares >= 90% of decoded blocks",
      share["nokaslr"] >= 0.9)
check("storm: per-VM fgkaslr permutations share no decoded blocks",
      share["fgkaslr"] == 0.0)
check("storm: block sharing bounded by frame sharing in every mode",
      all(share[m] <= (1.0 - modes[m]["image_dirty_fraction"]) + 1e-6
          for m in share))

with open(f"{root}/BENCH_interp.json") as f:
    interp = json.load(f)
check("interp: cold (first-boot) engine within 10% of legacy",
      interp["cold_speedup"] >= 0.9)
check("interp: warm (decode-shared) engine >= 1.4x legacy",
      interp["warm_speedup"] >= 1.4)
check("interp: warm lane actually adopted shared decodes",
      interp["warm_block_cache"]["shared"] > 0
      and interp["shared_tier"]["blocks"] > 0
      and interp["shared_tier"]["tables"] >= 1
      and interp["shared_tier"]["table_grabs"] >= 1)
check("interp: dispatch stream identical across cold and warm lanes",
      interp["warm_block_cache"]["hits"] == interp["cold_block_cache"]["hits"]
      and interp["warm_block_cache"]["misses"] == interp["cold_block_cache"]["misses"])

pooled = storm["modes"]["fgkaslr_pooled"]
check("pooled: launch rate >= 10x the serial fgkaslr baseline",
      pooled["launch_speedup"] >= 10.0)
check("pooled: pool hit rate >= 0.95 at depth >= vms",
      pooled["pool_hit_rate"] >= 0.95)
check("pooled: dirty image fraction <= 5% per VM",
      pooled["image_dirty_fraction"] <= 0.05)
check("pooled: background refill overlapped the storm",
      pooled["pool_rendered_during"] > 0)
check("pooled: launch p50 below the inline fgkaslr launch p50",
      pooled["launch_p50_ms"] < storm["modes"]["fgkaslr"]["launch_p50_ms"])

faults = storm["faults"]
check("storm_faults: fault plan actually fired",
      faults["faults_injected"] > 0)
check("storm_faults: zero VMs failed under the committed fault plan",
      faults["failed"] == 0)
check("storm_faults: outcome tallies account for every VM",
      faults["ok_first_try"] + faults["ok_retried"] + faults["ok_degraded"]
      + faults["failed"] == faults["vms"]
      and faults["accounted"] == faults["vms"])
check("storm_faults: recovery needed retries (the drill is not vacuous)",
      faults["ok_retried"] + faults["ok_degraded"] > 0
      and faults["attempts_total"] > faults["vms"])
check("storm_faults: recovery overhead <= 30% of clean full-storm throughput",
      faults["recovery_overhead_pct"] <= 30.0)

churn = storm["churn"]
check("storm_churn: churn covers the fleet (>= 16 VMs x >= 8 cycles)",
      churn["vms"] >= 16 and churn["cycles"] >= 8
      and churn["launches"] == churn["vms"] * churn["cycles"])
check("storm_churn: peak resident bytes within the hard watermark",
      churn["peak_within_hard"] is True
      and churn["peak_resident_bytes"] <= churn["hard_watermark_bytes"])
check("storm_churn: reclamation ladder shed at least one tier",
      churn["tier_sheds"] > 0 and churn["reclaimed_bytes"] > 0)
check("storm_churn: ReclaimAll drill evicted the warm template",
      churn["drill_template_evictions"] > 0)
check("storm_churn: post-reclaim re-boot is bit-identical",
      churn["rebuild_identical"] is True)
check("storm_churn: every launch admitted or accounted rejected",
      churn["admits"] + churn["rejected_mem_launches"] >= churn["launches"])

traced = storm["traced"]
check("traced: tracing overhead <= 3% of untraced full-storm throughput",
      traced["overhead_pct"] <= 3.0 and traced["overhead_ok"] is True)
check("traced: the tracer actually recorded spans across worker threads",
      traced["events"] > 0 and traced["trace_threads"] >= 1)
check("traced: traced-storm layouts bit-identical to the untraced control",
      traced["layouts_identical"] is True)

if failures:
    print(f"check_bench_json: {len(failures)} target(s) regressed")
    sys.exit(1)
print("check_bench_json: all committed bench targets hold")
EOF
