#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the project sources, driven
# entirely by the compile database from a CMake build directory: the file
# list and the flags both come from compile_commands.json (exported by
# default; see CMAKE_EXPORT_COMPILE_COMMANDS in CMakeLists.txt), so the
# lint sees exactly the translation units the build sees — no re-derived
# flag lists to drift out of sync.
#
# Usage: scripts/run_clang_tidy.sh [build-dir] [path-prefixes...]
#   build-dir      defaults to ./build
#   path-prefixes  repo-relative filters (e.g. src/race tools); default: all
#                  tree-owned entries in the database
#
# Exits 0 (with a notice) when clang-tidy is not installed, so CI images
# without LLVM still pass the rest of the pipeline; exits nonzero on lint
# findings when the tool is present.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

tidy_bin="$(command -v clang-tidy || true)"
if [[ -z "$tidy_bin" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping lint" >&2
  exit 0
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing;" \
       "configure with cmake -B $build_dir -S $repo_root first" >&2
  exit 2
fi

# Every "file" entry in the database that belongs to the repo (third-party
# _deps and generated sources are compiled too, but are not ours to lint).
declare -a files
while IFS= read -r f; do
  rel="${f#"$repo_root"/}"
  [[ "$rel" == "$f" ]] && continue          # outside the repo
  [[ "$rel" == build*/* ]] && continue      # generated in a build tree
  if [[ $# -gt 0 ]]; then
    keep=0
    for prefix in "$@"; do
      [[ "$rel" == "$prefix"* ]] && keep=1
    done
    [[ $keep -eq 0 ]] && continue
  fi
  files+=("$f")
done < <(grep -o '"file": *"[^"]*"' "$build_dir/compile_commands.json" \
           | sed 's/.*: *"//; s/"$//' | sort -u)

if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_clang_tidy: no matching entries in the compile database" >&2
  exit 2
fi

status=0
for f in "${files[@]}"; do
  echo "== clang-tidy: ${f#"$repo_root"/}"
  "$tidy_bin" -p "$build_dir" --quiet "$f" || status=1
done
exit $status
