#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the project sources using the
# compile database from a CMake build directory.
#
# Usage: scripts/run_clang_tidy.sh [build-dir] [paths...]
#   build-dir  defaults to ./build
#   paths      source globs to lint; default: src/ tools/
#
# Exits 0 (with a notice) when clang-tidy is not installed, so CI images
# without LLVM still pass the rest of the pipeline; exits nonzero on lint
# findings when the tool is present.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

tidy_bin="$(command -v clang-tidy || true)"
if [[ -z "$tidy_bin" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping lint" >&2
  exit 0
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing;" \
       "configure with cmake -B $build_dir -S $repo_root first" >&2
  exit 2
fi

declare -a files
if [[ $# -gt 0 ]]; then
  for path in "$@"; do
    while IFS= read -r f; do files+=("$f"); done \
      < <(find "$repo_root/$path" -name '*.cc' | sort)
  done
else
  while IFS= read -r f; do files+=("$f"); done \
    < <(find "$repo_root/src" "$repo_root/tools" -name '*.cc' | sort)
fi

status=0
for f in "${files[@]}"; do
  echo "== clang-tidy: ${f#"$repo_root"/}"
  "$tidy_bin" -p "$build_dir" --quiet "$f" || status=1
done
exit $status
