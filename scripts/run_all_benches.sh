#!/usr/bin/env bash
# Runs the full benchmark suite (all figure/table reproductions, ablations,
# and google-benchmark microbenches) with the default settings used for
# EXPERIMENTS.md. Fails fast: the first lane that exits nonzero aborts the
# run — a half-recorded suite must never look like a finished one.
# Usage: scripts/run_all_benches.sh [build-dir]
set -u
BUILD="${1:-build}"

run() {
  echo
  echo "================================================================================"
  echo "\$ $*"
  echo "================================================================================"
  local status=0
  "$@" || status=$?
  if [[ $status -ne 0 ]]; then
    echo "run_all_benches: '$*' FAILED (exit $status)" >&2
    exit 1
  fi
}

run "$BUILD/bench/table1_kernel_sizes"
run "$BUILD/bench/fig3_compression_bakeoff"
run "$BUILD/bench/fig4_cache_effects" --reps=10
run "$BUILD/bench/fig5_bootstrap_breakdown" --reps=10
run "$BUILD/bench/fig6_bootstrap_methods" --reps=10
run "$BUILD/bench/fig9_evaluation" --reps=10
run "$BUILD/bench/fig10_guest_memory" --reps=4
run "$BUILD/bench/fig11_lebench" --reps=20
run "$BUILD/bench/ablation_inmonitor" --reps=10
run "$BUILD/bench/ablation_page_sharing" --scale=0.1
run "$BUILD/bench/qemu_crosscheck" --reps=10
run "$BUILD/bench/micro_codecs" --benchmark_min_time=0.2
run "$BUILD/bench/micro_kaslr" --benchmark_min_time=0.2
run "$BUILD/bench/micro_parallel" --scale=0.25
run "$BUILD/bench/micro_interp" --scale=0.3 --reps=3 --warmup=1
run "$BUILD/bench/storm_boot" --scale=1 --vms=16 --threads=4
