// imk_lint: source-level concurrency lint for the imkrace subsystem.
//
// The audit runtime (src/race/tracker.h) can only check locks that go
// through the instrumented wrappers and annotations that name real ranks —
// this tool closes the loop at the source level, driven by the build's own
// compile_commands.json (so the lint sees exactly the translation units the
// build sees, plus the headers sitting next to them):
//
//   1. raw-mutex: std::mutex / std::shared_mutex / std::condition_variable
//      are forbidden outside src/race/ — everything else must use the
//      imk::race wrappers, or the audit is blind to it.
//   2. guarded-by: every IMK_GUARDED_BY(rank) annotation must name an
//      enumerator of race::LockRank (src/race/lock_ranks.h), so annotations
//      cannot drift from the rank table.
//   3. fault-point: every fault-point name a test arms (FaultRule.point,
//      FaultPlan::Parse specs, IMK_FAULT_* macros) must exist in the
//      KnownFaultPoints() registry in fault_injection.cc — Parse accepts
//      unknown points silently, so a typo'd drill would test nothing.
//
// Usage: imk_lint [--build=build] [--root=.]
// Exit codes: 0 clean, 1 findings, 2 usage/environment error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string file;
  size_t line;
  std::string check;
  std::string message;
};

std::vector<Finding> g_findings;

void Report(const std::string& file, size_t line, const char* check, std::string message) {
  g_findings.push_back({file, line, check, std::move(message)});
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

// Replaces // and /* */ comments with spaces (newlines preserved so line
// numbers stay true). A '#include <mutex>' or a comment naming std::mutex
// must not trip the raw-mutex check.
std::string StripComments(const std::string& src) {
  std::string out = src;
  enum { kCode, kLine, kBlock, kString, kChar } state = kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case kCode:
        if (c == '/' && next == '/') {
          state = kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = kString;
        } else if (c == '\'') {
          state = kChar;
        }
        break;
      case kLine:
        if (c == '\n') {
          state = kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = kCode;
        }
        break;
      case kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = kCode;
        }
        break;
    }
  }
  return out;
}

// Replaces string-literal contents with spaces (a log message mentioning
// "std::mutex" is not a violation). Run after StripComments.
std::string BlankStrings(const std::string& src) {
  std::string out = src;
  bool in_string = false;
  bool in_char = false;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (in_string) {
      if (c == '\\') {
        out[i] = ' ';
        if (i + 1 < out.size()) {
          out[i + 1] = ' ';
        }
        ++i;
      } else if (c == '"') {
        in_string = false;
      } else if (c != '\n') {
        out[i] = ' ';
      }
    } else if (in_char) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_char = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '\'') {
      in_char = true;
    }
  }
  return out;
}

size_t LineOf(const std::string& text, size_t pos) {
  return 1 + static_cast<size_t>(std::count(text.begin(), text.begin() + static_cast<long>(pos), '\n'));
}

// ---- file list from the compile database ----

// Pulls every "file" entry out of compile_commands.json. The format is
// machine-generated and flat; a full JSON parser would be overkill.
std::vector<std::string> CompiledFiles(const std::string& build_dir) {
  std::string db;
  if (!ReadFile(build_dir + "/compile_commands.json", &db)) {
    return {};
  }
  std::vector<std::string> files;
  static const std::regex entry("\"file\"\\s*:\\s*\"([^\"]+)\"");
  for (std::sregex_iterator it(db.begin(), db.end(), entry), end; it != end; ++it) {
    files.push_back((*it)[1].str());
  }
  return files;
}

// Repo-relative path (compile_commands uses absolute paths).
std::string Relativize(const std::string& path, const std::string& root) {
  if (path.rfind(root + "/", 0) == 0) {
    return path.substr(root.size() + 1);
  }
  return path;
}

// ---- check 2 support: rank enumerators from lock_ranks.h ----

std::set<std::string> RankEnumerators(const std::string& root) {
  std::string src;
  std::set<std::string> ranks;
  if (!ReadFile(root + "/src/race/lock_ranks.h", &src)) {
    return ranks;
  }
  const size_t begin = src.find("enum class LockRank");
  const size_t end = src.find("};", begin);
  if (begin == std::string::npos || end == std::string::npos) {
    return ranks;
  }
  const std::string body = StripComments(src.substr(begin, end - begin));
  static const std::regex enumerator("(k[A-Za-z0-9_]+)\\s*=");
  for (std::sregex_iterator it(body.begin(), body.end(), enumerator), e; it != e; ++it) {
    ranks.insert((*it)[1].str());
  }
  return ranks;
}

// ---- check 3 support: the fault-point registry ----

std::set<std::string> RegisteredFaultPoints(const std::string& root) {
  std::string src;
  std::set<std::string> points;
  if (!ReadFile(root + "/src/base/fault_injection.cc", &src)) {
    return points;
  }
  const size_t begin = src.find("KnownFaultPoints()");
  const size_t end = src.find("return *points;", begin);
  if (begin == std::string::npos || end == std::string::npos) {
    return points;
  }
  const std::string body = src.substr(begin, end - begin);
  static const std::regex literal("\"([a-z_.]+)\"");
  for (std::sregex_iterator it(body.begin(), body.end(), literal), e; it != e; ++it) {
    points.insert((*it)[1].str());
  }
  return points;
}

// ---- the checks ----

void CheckRawMutex(const std::string& rel, const std::string& code) {
  if (rel.rfind("src/race/", 0) == 0) {
    return;  // the audit implements the wrappers; it alone may go raw
  }
  static const std::regex raw("std::(mutex|shared_mutex|condition_variable(_any)?)\\b");
  for (std::sregex_iterator it(code.begin(), code.end(), raw), end; it != end; ++it) {
    Report(rel, LineOf(code, static_cast<size_t>(it->position())), "raw-mutex",
           "raw " + it->str() + " outside src/race/; use imk::race::" +
               ((*it)[1].str() == "mutex"
                    ? "Mutex"
                    : (*it)[1].str() == "shared_mutex" ? "SharedMutex" : "CondVar") +
               " with a rank from src/race/lock_ranks.h");
  }
}

void CheckGuardedBy(const std::string& rel, const std::string& code,
                    const std::set<std::string>& ranks) {
  static const std::regex annotation("IMK_GUARDED_BY\\(\\s*([A-Za-z0-9_:]*)\\s*\\)");
  for (std::sregex_iterator it(code.begin(), code.end(), annotation), end; it != end; ++it) {
    std::string rank = (*it)[1].str();
    if (rank == "rank") {
      continue;  // the macro definition itself
    }
    // Accept either bare enumerator or a qualified spelling; compare the leaf.
    const size_t colon = rank.rfind(':');
    if (colon != std::string::npos) {
      rank = rank.substr(colon + 1);
    }
    if (ranks.count(rank) == 0) {
      Report(rel, LineOf(code, static_cast<size_t>(it->position())), "guarded-by",
             "IMK_GUARDED_BY(" + (*it)[1].str() +
                 ") names no enumerator of race::LockRank (src/race/lock_ranks.h)");
    }
  }
}

void CheckFaultPoints(const std::string& rel, const std::string& code,
                      const std::set<std::string>& points) {
  // The injector's own unit tests exercise the trigger/grammar mechanics
  // against synthetic points they Check() themselves — the one place an
  // unregistered name is the point of the test.
  if (rel == "tests/fault_injection_test.cc") {
    return;
  }
  // Names armed through struct fields or macros.
  static const std::regex direct(
      "(?:\\.point\\s*=\\s*|IMK_FAULT_(?:POINT|DELAY|TRUNCATE|CORRUPT)\\(\\s*)\"([^\"]+)\"");
  for (std::sregex_iterator it(code.begin(), code.end(), direct), end; it != end; ++it) {
    const std::string name = (*it)[1].str();
    if (points.count(name) == 0) {
      Report(rel, LineOf(code, static_cast<size_t>(it->position())), "fault-point",
             "fault point \"" + name + "\" is not in KnownFaultPoints() (fault_injection.cc); "
             "arming it is a silent no-op");
    }
  }
  // Names inside FaultPlan::Parse spec strings: "point:flavor;point:flavor".
  static const std::regex parse_call("Parse\\(\\s*\"([^\"]+)\"");
  for (std::sregex_iterator it(code.begin(), code.end(), parse_call), end; it != end; ++it) {
    const std::string spec = (*it)[1].str();
    const size_t line = LineOf(code, static_cast<size_t>(it->position()));
    std::stringstream rules(spec);
    std::string rule;
    while (std::getline(rules, rule, ';')) {
      const std::string name = rule.substr(0, rule.find(':'));
      if (!name.empty() && points.count(name) == 0) {
        Report(rel, line, "fault-point",
               "fault point \"" + name + "\" in Parse spec is not in KnownFaultPoints(); "
               "the rule would never hit");
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string build_dir = "build";
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--build=", 0) == 0) {
      build_dir = arg.substr(8);
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: imk_lint [--build=<dir>] [--root=<repo root>]\n");
      return 2;
    }
  }
  // The compile database stores absolute paths; match them against an
  // absolute root regardless of how --root was spelled.
  if (char* resolved = ::realpath(root.c_str(), nullptr)) {
    root = resolved;
    std::free(resolved);
  }

  const std::vector<std::string> compiled = CompiledFiles(build_dir);
  if (compiled.empty()) {
    std::fprintf(stderr, "imk_lint: no entries in %s/compile_commands.json "
                 "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)\n",
                 build_dir.c_str());
    return 2;
  }
  const std::set<std::string> ranks = RankEnumerators(root);
  if (ranks.empty()) {
    std::fprintf(stderr, "imk_lint: could not parse race::LockRank from %s/src/race/lock_ranks.h\n",
                 root.c_str());
    return 2;
  }
  const std::set<std::string> points = RegisteredFaultPoints(root);
  if (points.empty()) {
    std::fprintf(stderr, "imk_lint: could not parse KnownFaultPoints() from "
                 "%s/src/base/fault_injection.cc\n", root.c_str());
    return 2;
  }

  // The compiled sources, plus the header sitting next to each (headers
  // never appear in the compile database but carry the field declarations
  // the guarded-by check exists for).
  std::set<std::string> files;
  for (const std::string& file : compiled) {
    files.insert(file);
    const size_t dot = file.rfind(".cc");
    if (dot != std::string::npos && dot == file.size() - 3) {
      const std::string header = file.substr(0, dot) + ".h";
      if (FileExists(header)) {
        files.insert(header);
      }
    }
  }

  size_t scanned = 0;
  for (const std::string& file : files) {
    const std::string rel = Relativize(file, root);
    // Only lint tree-owned code (the database also lists _deps etc.).
    if (rel.rfind("src/", 0) != 0 && rel.rfind("tools/", 0) != 0 &&
        rel.rfind("tests/", 0) != 0 && rel.rfind("bench/", 0) != 0 &&
        rel.rfind("examples/", 0) != 0) {
      continue;
    }
    std::string raw;
    if (!ReadFile(file, &raw)) {
      std::fprintf(stderr, "imk_lint: cannot read %s\n", file.c_str());
      return 2;
    }
    ++scanned;
    const std::string no_comments = StripComments(raw);
    // Fault-point names live *inside* string literals; scan before blanking.
    CheckFaultPoints(rel, no_comments, points);
    const std::string code = BlankStrings(no_comments);
    CheckRawMutex(rel, code);
    CheckGuardedBy(rel, code, ranks);
  }

  for (const Finding& finding : g_findings) {
    std::printf("%s:%zu: [%s] %s\n", finding.file.c_str(), finding.line, finding.check.c_str(),
                finding.message.c_str());
  }
  std::printf("imk_lint: %zu file(s), %zu finding(s)\n", scanned, g_findings.size());
  return g_findings.empty() ? 0 : 1;
}
