// imk_tool — developer CLI over the imkaslr public API.
//
// Subcommands:
//   build    --profile=aws --rando=kaslr --scale=0.1 --out=DIR
//            Builds a kernel; writes vmlinux, vmlinux.relocs, and bzImages.
//   readelf  FILE
//            Summarizes an ELF image (headers, segments, sections, notes).
//   disasm   FILE [--section=NAME] [--max=N]
//            Disassembles a kernel's text section(s).
//   relocs   FILE
//            Summarizes a vmlinux.relocs blob.
//   boot     --kernel=FILE [--relocs=FILE] [--rando=kaslr] [--mem=256]
//            [--threads=N] [--no-template-cache] [--no-block-cache]
//            [--layout-pool=N] [--pool-refill=N]
//            [--trace=FILE] [--metrics]
//            [--mem-budget=MIB] [--mem-soft-pct=F]
//            [--faults=SPEC] [--fault-seed=N] [--max-retries=N]
//            [--watchdog-ms=N] [--watchdog-insns=N] [--degrade=strict|ladder]
//            Boots the image with in-monitor randomization and reports the
//            layout and timeline. --threads=N shards the randomization
//            pipeline over N lanes (0 = hardware concurrency; results are
//            bit-identical for every N); --no-template-cache re-parses the
//            ELF on every boot instead of reusing the image template.
//            Supervision flags route the boot through the BootSupervisor:
//            --faults arms the seeded fault injector (grammar in
//            src/base/fault_injection.h, e.g.
//            "loader.reloc:error:n=1;vcpu.enter:delay:us=50000"),
//            --watchdog-ms/--watchdog-insns bound each attempt, --max-retries
//            bounds attempts per ladder rung, and --degrade picks whether a
//            failing randomization level may fall back (fgkaslr -> kaslr ->
//            nokaslr) or must fail (strict). --layout-pool=N boots through
//            an ahead-of-time randomized layout pool of depth N (a pool hit
//            maps a pre-rendered image; a drained pool falls back inline;
//            under supervision the ladder becomes pool-hit -> inline ->
//            lower modes); --pool-refill sets the background batch size.
//            --mem-budget=MIB boots under a fleet MemGovernor with that hard
//            watermark (--mem-soft-pct sets the reclamation watermark as a
//            fraction of it, default 0.75): guest frames are byte-accounted,
//            a supervised boot gains the admission gate and the caches-off
//            pressure rung, and the governor's per-category residency is
//            reported after the boot. --trace=FILE records imktrace spans
//            (loader stages, relocation, pool grabs, supervisor rungs,
//            governor ladder runs) and writes Chrome trace_event JSON —
//            open it in chrome://tracing or https://ui.perfetto.dev;
//            --metrics prints the process-wide metrics registry in
//            Prometheus text exposition after the run. Both flags also
//            apply to `storm`; a traced boot stays bit-identical to an
//            untraced one.
//   storm    --kernel=FILE [--relocs=FILE] [--rando=kaslr] [--vms=16]
//            [--threads=4] [--mem=256] [--seed=N] [--no-block-cache]
//            [--layout-pool=N] [--pool-refill=N] [--churn=K]
//            [--trace=FILE] [--metrics]
//            [--mem-budget=MIB] [--mem-soft-pct=F] [--admit-wait-ms=N]
//            [--faults=SPEC] [--fault-seed=N] [--max-retries=N]
//            [--watchdog-ms=N] [--watchdog-insns=N] [--degrade=strict|ladder]
//            Boot-storm fleet drill: boots --vms microVMs of the image across
//            --threads workers sharing one image-template cache, and reports
//            warm throughput, per-boot latency, and the per-VM resident
//            (privately materialized) memory vs frames still aliased
//            zero-copy to the shared kernel template. With --faults (or any
//            supervision flag) each VM boots under the supervisor and the
//            report adds per-outcome tallies: first-try / retried / degraded
//            / failed, watchdog trips, and template-cache quarantines. With
//            --layout-pool=N one shared pool of depth N serves every
//            measured launch and the report adds pool hit/miss tallies.
//            Guests run on the predecoded block engine with a storm-wide
//            shared decode cache by default, and the report breaks blocks
//            into shared vs privately decoded (the decode-cache analogue of
//            the page-sharing census); --no-block-cache runs the legacy
//            per-instruction interpreter instead (boot accepts it too).
//            --churn=K launches-and-halts each VM slot K times (vms*K
//            measured launches against the same shared caches — the
//            long-running-host lane). --mem-budget=MIB runs the storm under
//            a fleet MemGovernor: the soft watermark (--mem-soft-pct, of the
//            budget) triggers pressure-tiered cache reclamation (layout pool
//            -> decode tables -> template images), the hard watermark gates
//            launch admission (--admit-wait-ms bounded wait, then the launch
//            is tallied rejected-mem), and the report adds per-category
//            current/peak resident bytes plus reclaim/admission counters.
//   verify   --kernel=FILE [--relocs=FILE] [--rando=kaslr] [--seed=N]
//            [--mem=256] [--threads=N] [--json] [--corrupt=MODE]
//            Randomizes the image in-monitor (no guest execution), then runs
//            the static KASLR-correctness analyzer over the result. Exits 0
//            on a clean report, 1 on findings. --corrupt injects one fault
//            first (skip-abs64 | double-inverse32 | overlap-section |
//            stale-pointer) to demonstrate detection.
//   verify --uniqueness [--vms=16] [--threads=4] [--scale=0.02]
//            [--layout-pool=N] [--seed=N] [--json]
//            Cross-VM layout uniqueness audit: builds a synthetic fgkaslr
//            kernel in-process, runs a pooled launch-only storm of --vms
//            VMs (pool depth defaults to --vms), and checks that no two VMs
//            share a (slide, FG permutation digest) layout — the ASLR
//            property the pool's one-shot handout guarantees. Exits 0 iff
//            every layout is unique.
//   racecheck [--vms=16] [--threads=4] [--scale=0.02] [--load-threads=N]
//            [--json] [--drill=order|lockset]
//            Concurrency audit (DESIGN.md §11): builds a synthetic kernel
//            in-process and runs an instrumented boot storm over kaslr,
//            fgkaslr, pooled-fgkaslr, kaslr-blockcache, and a governed churn
//            lane (the pooled lane exercises the LayoutPool's refill/grab
//            concurrency, the blockcache lane the SharedBlockCache's
//            cross-VM decode map, the churn lane a tight-budget MemGovernor
//            reclaiming every cache tier mid-storm — all under the lock-rank
//            auditor), reporting rank inversions,
//            lock-order cycles,
//            unranked locks, and Eraser-style lockset violations. Exits 0
//            on a clean report. Meaningful detection needs a build with
//            -DIMK_RACE_AUDIT=ON (otherwise the wrappers are passthrough
//            and the report says so). --drill skips the storm and fires a
//            seeded known-bad pattern instead, exiting 0 iff the detector
//            caught it — the self-test CI runs.
//
// boot and storm also accept --race-audit to wrap the run in the same
// audit window and append its report (exit 1 if it has findings).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "src/elf/elf_note.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/isa/disassembler.h"
#include "src/kernel/bzimage.h"
#include "src/kernel/kernel_builder.h"
#include "src/base/fault_injection.h"
#include "src/race/drill.h"
#include "src/race/tracker.h"
#include "src/trace/export.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/verify/image_verifier.h"
#include "src/vmm/boot_storm.h"
#include "src/vmm/boot_supervisor.h"
#include "src/vmm/loader.h"
#include "src/vmm/microvm.h"

namespace {

using imk::Bytes;
using imk::ByteSpan;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "imk_tool: %s\n", message.c_str());
  std::exit(1);
}

Bytes ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Die("cannot open " + path);
  }
  return Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    Die("cannot write " + path);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

// Minimal --key=value parser.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) == 0) {
        const char* eq = std::strchr(arg, '=');
        if (eq != nullptr) {
          values_[std::string(arg + 2, eq)] = eq + 1;
        } else {
          values_[arg + 2] = "1";
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

imk::KernelProfile ParseProfile(const std::string& name) {
  if (name == "lupine") {
    return imk::KernelProfile::kLupine;
  }
  if (name == "aws") {
    return imk::KernelProfile::kAws;
  }
  if (name == "ubuntu") {
    return imk::KernelProfile::kUbuntu;
  }
  Die("unknown profile: " + name);
}

imk::RandoMode ParseRando(const std::string& name) {
  if (name == "nokaslr" || name == "none") {
    return imk::RandoMode::kNone;
  }
  if (name == "kaslr") {
    return imk::RandoMode::kKaslr;
  }
  if (name == "fgkaslr") {
    return imk::RandoMode::kFgKaslr;
  }
  Die("unknown randomization mode: " + name);
}

// Arms the process-wide fault injector from --faults/--fault-seed; returns
// true if a plan was armed (the caller should boot under supervision).
bool ArmFaults(const Args& args) {
  const std::string spec = args.Get("faults");
  if (spec.empty()) {
    return false;
  }
  const uint64_t seed = static_cast<uint64_t>(args.GetDouble("fault-seed", 1));
  auto plan = imk::FaultPlan::Parse(spec, seed);
  if (!plan.ok()) {
    Die(plan.status().ToString());
  }
  imk::FaultInjector::Instance().Arm(std::move(*plan));
  std::printf("faults armed (seed %llu): %s\n", static_cast<unsigned long long>(seed),
              spec.c_str());
  return true;
}

bool WantsSupervision(const Args& args) {
  return !args.Get("faults").empty() || !args.Get("max-retries").empty() ||
         !args.Get("watchdog-ms").empty() || !args.Get("watchdog-insns").empty() ||
         !args.Get("degrade").empty();
}

imk::DegradePolicy ParseDegrade(const Args& args) {
  auto policy = imk::ParseDegradePolicy(args.Get("degrade", "ladder"));
  if (!policy.ok()) {
    Die(policy.status().ToString());
  }
  return *policy;
}

void PrintMemStats(const imk::MemGovernor::Stats& mem) {
  std::printf("memory: %llu / %llu bytes resident (peak %llu; soft %llu, hard %llu)\n",
              static_cast<unsigned long long>(mem.current_total_bytes),
              static_cast<unsigned long long>(mem.budget_bytes),
              static_cast<unsigned long long>(mem.high_water_total_bytes),
              static_cast<unsigned long long>(mem.soft_watermark_bytes),
              static_cast<unsigned long long>(mem.hard_watermark_bytes));
  for (size_t c = 0; c < imk::kMemCategoryCount; ++c) {
    std::printf("  %-16s %10s resident, %10s peak\n",
                imk::MemCategoryName(static_cast<imk::MemCategory>(c)),
                imk::HumanSize(mem.categories[c].current_bytes).c_str(),
                imk::HumanSize(mem.categories[c].high_water_bytes).c_str());
  }
  std::printf(
      "  reclaim: %llu runs shed %s over %llu tiers; admission: %llu ok (%llu waited), "
      "%llu rejected%s\n",
      static_cast<unsigned long long>(mem.reclaim_runs),
      imk::HumanSize(mem.reclaimed_bytes).c_str(),
      static_cast<unsigned long long>(mem.tier_sheds),
      static_cast<unsigned long long>(mem.admits),
      static_cast<unsigned long long>(mem.admit_waits),
      static_cast<unsigned long long>(mem.admit_rejects),
      mem.under_pressure ? " [STILL UNDER PRESSURE]" : "");
}

int CmdBuild(const Args& args) {
  const std::string out_dir = args.Get("out", ".");
  imk::KernelConfig config = imk::KernelConfig::Make(
      ParseProfile(args.Get("profile", "aws")), ParseRando(args.Get("rando", "kaslr")),
      args.GetDouble("scale", 0.1));
  auto info = imk::BuildKernel(config);
  if (!info.ok()) {
    Die(info.status().ToString());
  }
  const std::string base = out_dir + "/" + config.Name();
  WriteFile(base + ".vmlinux", ByteSpan(info->vmlinux));
  std::printf("wrote %s.vmlinux (%s, %zu functions, entry 0x%llx)\n", base.c_str(),
              imk::HumanSize(info->vmlinux.size()).c_str(), info->functions.size(),
              static_cast<unsigned long long>(info->entry_vaddr));
  if (!info->relocs.empty()) {
    Bytes blob = imk::SerializeRelocs(info->relocs);
    WriteFile(base + ".relocs", ByteSpan(blob));
    std::printf("wrote %s.relocs (%zu entries, %s)\n", base.c_str(), info->relocs.total(),
                imk::HumanSize(blob.size()).c_str());
  }
  for (const char* codec : {"none", "lz4"}) {
    auto image =
        imk::BuildBzImage(ByteSpan(info->vmlinux), info->relocs, codec,
                          imk::LoaderKind::kStandard);
    if (!image.ok()) {
      Die(image.status().ToString());
    }
    Bytes blob = imk::SerializeBzImage(*image);
    WriteFile(base + ".bzimage-" + codec, ByteSpan(blob));
    std::printf("wrote %s.bzimage-%s (%s)\n", base.c_str(), codec,
                imk::HumanSize(blob.size()).c_str());
  }
  return 0;
}

int CmdReadElf(const Args& args) {
  if (args.positional().empty()) {
    Die("readelf: missing file");
  }
  Bytes image = ReadFile(args.positional()[0]);
  auto elf = imk::ElfReader::Parse(ByteSpan(image));
  if (!elf.ok()) {
    Die(elf.status().ToString());
  }
  std::printf("machine 0x%x, entry 0x%llx, %zu segments, %zu sections\n", elf->machine(),
              static_cast<unsigned long long>(elf->entry()), elf->program_headers().size(),
              elf->sections().size());
  std::printf("\nsegments:\n");
  for (const auto& phdr : elf->program_headers()) {
    std::printf("  type %u flags %u vaddr 0x%llx paddr 0x%llx filesz %s memsz %s\n", phdr.p_type,
                phdr.p_flags, static_cast<unsigned long long>(phdr.p_vaddr),
                static_cast<unsigned long long>(phdr.p_paddr),
                imk::HumanSize(phdr.p_filesz).c_str(), imk::HumanSize(phdr.p_memsz).c_str());
  }
  std::printf("\nsections (first 20):\n");
  size_t shown = 0;
  size_t fn_sections = 0;
  for (const auto& section : elf->sections()) {
    if (section.name.rfind(".text.fn_", 0) == 0) {
      ++fn_sections;
      continue;
    }
    if (shown++ < 20) {
      std::printf("  %-16s type %u addr 0x%llx size %s\n", section.name.c_str(),
                  section.header.sh_type, static_cast<unsigned long long>(section.header.sh_addr),
                  imk::HumanSize(section.header.sh_size).c_str());
    }
  }
  if (fn_sections > 0) {
    std::printf("  ... plus %zu .text.fn_* function sections (fgkaslr build)\n", fn_sections);
  }
  for (const auto& section : elf->sections()) {
    if (section.header.sh_type != imk::kShtNote) {
      continue;
    }
    auto data = elf->SectionData(section);
    auto notes = imk::ParseNoteSection(*data);
    if (notes.ok()) {
      std::printf("\nnotes:\n");
      for (const auto& note : *notes) {
        std::printf("  %s type 0x%x (%zu bytes)\n", note.name.c_str(), note.type,
                    note.desc.size());
      }
      if (auto constants = imk::FindKernelConstants(*notes)) {
        std::printf("  kernel constants: phys_start 0x%llx align 0x%llx map 0x%llx max %s\n",
                    static_cast<unsigned long long>(constants->physical_start),
                    static_cast<unsigned long long>(constants->physical_align),
                    static_cast<unsigned long long>(constants->start_kernel_map),
                    imk::HumanSize(constants->kernel_image_size).c_str());
      }
    }
  }
  return 0;
}

int CmdDisasm(const Args& args) {
  if (args.positional().empty()) {
    Die("disasm: missing file");
  }
  Bytes image = ReadFile(args.positional()[0]);
  auto elf = imk::ElfReader::Parse(ByteSpan(image));
  if (!elf.ok()) {
    Die(elf.status().ToString());
  }
  const std::string wanted = args.Get("section", ".text");
  const size_t max_insns = static_cast<size_t>(args.GetDouble("max", 40));
  auto section = elf->FindSection(wanted);
  if (!section.ok()) {
    Die(section.status().ToString());
  }
  auto data = elf->SectionData(**section);
  if (!data.ok()) {
    Die(data.status().ToString());
  }
  auto insns = imk::Disassemble(*data, (*section)->header.sh_addr);
  if (!insns.ok()) {
    Die(insns.status().ToString());
  }
  for (size_t i = 0; i < insns->size() && i < max_insns; ++i) {
    std::printf("%016llx  %s\n", static_cast<unsigned long long>((*insns)[i].vaddr),
                (*insns)[i].text.c_str());
  }
  if (insns->size() > max_insns) {
    std::printf("... %zu more instructions\n", insns->size() - max_insns);
  }
  return 0;
}

int CmdRelocs(const Args& args) {
  if (args.positional().empty()) {
    Die("relocs: missing file (a vmlinux.relocs blob, or an ELF with --extract)");
  }
  Bytes blob = ReadFile(args.positional()[0]);
  imk::Result<imk::RelocInfo> relocs = imk::ParseRelocs(ByteSpan(blob));
  if (!args.Get("extract").empty()) {
    // The `relocs` tool flow of Figure 8: derive the blob from the ELF.
    auto elf = imk::ElfReader::Parse(ByteSpan(blob));
    if (!elf.ok()) {
      Die(elf.status().ToString());
    }
    relocs = imk::ExtractRelocsFromElf(*elf);
    if (relocs.ok() && !args.Get("out").empty()) {
      imk::Bytes serialized = imk::SerializeRelocs(*relocs);
      WriteFile(args.Get("out"), ByteSpan(serialized));
      std::printf("wrote %s (%s)\n", args.Get("out").c_str(),
                  imk::HumanSize(serialized.size()).c_str());
    }
  }
  if (!relocs.ok()) {
    Die(relocs.status().ToString());
  }
  std::printf("%zu relocations: %zu abs64, %zu abs32, %zu inverse32\n", relocs->total(),
              relocs->abs64.size(), relocs->abs32.size(), relocs->inverse32.size());
  if (!relocs->abs64.empty()) {
    std::printf("abs64 range: 0x%llx .. 0x%llx\n",
                static_cast<unsigned long long>(relocs->abs64.front()),
                static_cast<unsigned long long>(relocs->abs64.back()));
  }
  return 0;
}

// --race-audit support: opens an audit window for the command's duration;
// FinishAudit prints the report and forces a failing exit on findings.
void MaybeBeginAudit(const Args& args, std::optional<imk::race::AuditScope>& audit) {
  if (!args.Get("race-audit").empty()) {
    if (!imk::race::AuditCompiledIn()) {
      std::fprintf(stderr,
                   "warning: --race-audit on a build without IMK_RACE_AUDIT; lock wrappers "
                   "are passthrough and only drills can be observed\n");
    }
    audit.emplace();
  }
}

int FinishAudit(std::optional<imk::race::AuditScope>& audit, bool json, int rc) {
  if (!audit.has_value()) {
    return rc;
  }
  const imk::race::RaceReport& report = audit->Finish();
  std::printf("%s\n", json ? report.ToJson().c_str() : report.ToString().c_str());
  return report.clean() ? rc : 1;
}

// --trace=FILE / --metrics plumbing, shared by boot and storm. Tracing is
// started before the measured work and exported after; ring memory is
// charged to the governor's trace_buffers category when one is active.
void MaybeStartTrace(const Args& args, imk::MemGovernor* governor) {
  if (args.Get("trace").empty()) {
    return;
  }
  imk::trace::TracerOptions options;
  if (governor != nullptr) {
    options.accountant = governor->shared_accountant(imk::MemCategory::kTraceBuffers);
  }
  imk::trace::Tracer::Instance().Start(options);
}

// Stops the tracer, appends `extra` (timeline bridge events), and writes
// Chrome trace_event JSON to the --trace path. Load the file in
// chrome://tracing or https://ui.perfetto.dev.
void MaybeFinishTrace(const Args& args, std::vector<imk::trace::Event> extra) {
  const std::string path = args.Get("trace");
  if (path.empty()) {
    return;
  }
  imk::trace::Tracer& tracer = imk::trace::Tracer::Instance();
  tracer.Stop();
  std::vector<imk::trace::Event> events = tracer.Collect();
  events.insert(events.end(), extra.begin(), extra.end());
  const std::string json = imk::trace::ToChromeJson(events);
  WriteFile(path, ByteSpan(reinterpret_cast<const uint8_t*>(json.data()), json.size()));
  auto& registry = imk::trace::MetricsRegistry::Global();
  registry.counter("imk_trace_events_total", "trace events exported")->Inc(events.size());
  registry.counter("imk_trace_dropped_total", "trace events dropped ring-full")
      ->Inc(tracer.dropped());
  std::printf("trace: %zu events from %zu threads (%llu dropped) -> %s\n", events.size(),
              tracer.thread_count(), static_cast<unsigned long long>(tracer.dropped()),
              path.c_str());
}

void MaybePrintMetrics(const Args& args) {
  if (args.Get("metrics").empty()) {
    return;
  }
  std::printf("%s", imk::trace::MetricsRegistry::Global().PrometheusText().c_str());
}

int CmdBoot(const Args& args) {
  const std::string kernel_path = args.Get("kernel");
  if (kernel_path.empty()) {
    Die("boot: --kernel=FILE required");
  }
  std::optional<imk::race::AuditScope> audit;
  MaybeBeginAudit(args, audit);
  const bool json = !args.Get("json").empty();
  imk::Storage storage;
  storage.Put("kernel", ReadFile(kernel_path));
  imk::MicroVmConfig config;
  config.kernel_image = "kernel";
  config.mem_size_bytes = static_cast<uint64_t>(args.GetDouble("mem", 256)) << 20;
  config.rando = ParseRando(args.Get("rando", "none"));
  config.load_threads = static_cast<uint32_t>(args.GetDouble("threads", 1));
  config.use_template_cache = args.Get("no-template-cache").empty();
  config.use_block_cache = args.Get("no-block-cache").empty();
  config.layout_pool_depth = static_cast<uint32_t>(args.GetDouble("layout-pool", 0));
  config.layout_pool_refill_batch = static_cast<uint32_t>(args.GetDouble("pool-refill", 2));
  const std::string relocs_path = args.Get("relocs");
  if (!relocs_path.empty()) {
    storage.Put("relocs", ReadFile(relocs_path));
    config.relocs_image = "relocs";
  }
  // Auto-detect bzImage vs vmlinux by magic.
  Bytes head = ReadFile(kernel_path);
  config.boot_mode = (head.size() > 8 && head[0] == 0x49 && head[1] == 0x4d && head[2] == 0x4b)
                         ? imk::BootMode::kBzImage
                         : imk::BootMode::kDirect;
  // Declared before the VM/supervisor below so it outlives them: the VM's
  // frame accounting releases into the governor at teardown.
  std::optional<imk::MemGovernor> governor;
  const uint64_t mem_budget = static_cast<uint64_t>(args.GetDouble("mem-budget", 0)) << 20;
  if (mem_budget > 0) {
    imk::MemGovernorOptions governor_options;
    governor_options.budget_bytes = mem_budget;
    governor_options.soft_pct = args.GetDouble("mem-soft-pct", 0.75);
    governor.emplace(governor_options);
    config.mem_governor = &*governor;
  }
  MaybeStartTrace(args, governor.has_value() ? &*governor : nullptr);
  if (WantsSupervision(args)) {
    ArmFaults(args);
    imk::SupervisorOptions sup;
    sup.max_retries = static_cast<uint32_t>(args.GetDouble("max-retries", 2));
    sup.watchdog_wall_ms = static_cast<uint64_t>(args.GetDouble("watchdog-ms", 0));
    sup.watchdog_instructions = static_cast<uint64_t>(args.GetDouble("watchdog-insns", 0));
    sup.policy = ParseDegrade(args);
    config.seed = static_cast<uint64_t>(args.GetDouble("seed", 0));
    imk::BootSupervisor supervisor(storage, config, sup);
    imk::BootOutcome outcome = supervisor.Run();
    std::printf("%s\n", outcome.ToString().c_str());
    if (governor.has_value()) {
      PrintMemStats(governor->stats());
    }
    imk::FaultInjector::Instance().Disarm();
    MaybeFinishTrace(args, outcome.report.has_value()
                               ? imk::TimelineToTraceEvents(outcome.report->timeline, 0,
                                                            imk::trace::kNoVmId)
                               : std::vector<imk::trace::Event>{});
    MaybePrintMetrics(args);
    return FinishAudit(audit, json, outcome.ok ? 0 : 1);
  }
  imk::MicroVm vm(storage, config);
  auto report = vm.Boot();
  if (!report.ok()) {
    Die(report.status().ToString());
  }
  std::printf("boot %s: %s\n", report->init_done ? "OK" : "INCOMPLETE",
              report->timeline.ToString().c_str());
  std::printf("virt slide +0x%llx, phys load 0x%llx, %llu relocations, %u sections shuffled\n",
              static_cast<unsigned long long>(report->choice.virt_slide),
              static_cast<unsigned long long>(report->choice.phys_load_addr),
              static_cast<unsigned long long>(report->reloc_stats.total()),
              report->sections_shuffled);
  if (config.layout_pool_depth > 0) {
    std::printf("layout pool: %s\n",
                report->layout_pool_hit ? "HIT (pre-rendered layout mapped)"
                                        : "miss (inline randomization)");
  }
  std::printf("guest checksum 0x%llx over %llu instructions\n",
              static_cast<unsigned long long>(report->init_checksum),
              static_cast<unsigned long long>(report->guest_stats.instructions));
  if (config.use_block_cache) {
    std::printf("block cache: %llu hits / %llu misses / %llu invalidations, "
                "%llu shared / %llu private blocks\n",
                static_cast<unsigned long long>(report->guest_stats.block_cache_hits),
                static_cast<unsigned long long>(report->guest_stats.block_cache_misses),
                static_cast<unsigned long long>(report->guest_stats.block_cache_invalidations),
                static_cast<unsigned long long>(report->guest_stats.blocks_shared),
                static_cast<unsigned long long>(report->guest_stats.blocks_private));
  }
  if (governor.has_value()) {
    PrintMemStats(governor->stats());
  }
  MaybeFinishTrace(args, imk::TimelineToTraceEvents(report->timeline, 0, imk::trace::kNoVmId));
  MaybePrintMetrics(args);
  return FinishAudit(audit, json, 0);
}

int CmdStorm(const Args& args) {
  const std::string kernel_path = args.Get("kernel");
  if (kernel_path.empty()) {
    Die("storm: --kernel=FILE required");
  }
  std::optional<imk::race::AuditScope> audit;
  MaybeBeginAudit(args, audit);
  const bool json = !args.Get("json").empty();
  Bytes vmlinux = ReadFile(kernel_path);
  Bytes relocs_blob;
  const std::string relocs_path = args.Get("relocs");
  if (!relocs_path.empty()) {
    relocs_blob = ReadFile(relocs_path);
  }
  imk::StormOptions options;
  options.rando = ParseRando(args.Get("rando", "kaslr"));
  options.vms = static_cast<uint32_t>(args.GetDouble("vms", 16));
  options.threads = static_cast<uint32_t>(args.GetDouble("threads", 4));
  options.mem_size_bytes = static_cast<uint64_t>(args.GetDouble("mem", 256)) << 20;
  options.seed_base = static_cast<uint64_t>(args.GetDouble("seed", 1));
  options.use_block_cache = args.Get("no-block-cache").empty();
  options.layout_pool_depth = static_cast<uint32_t>(args.GetDouble("layout-pool", 0));
  options.layout_pool_refill_batch = static_cast<uint32_t>(args.GetDouble("pool-refill", 2));
  options.churn_cycles = static_cast<uint32_t>(args.GetDouble("churn", 1));
  options.mem_budget_bytes = static_cast<uint64_t>(args.GetDouble("mem-budget", 0)) << 20;
  options.mem_soft_pct = args.GetDouble("mem-soft-pct", 0.75);
  options.admit_wait_ms = static_cast<uint64_t>(args.GetDouble("admit-wait-ms", 50));
  if (WantsSupervision(args)) {
    ArmFaults(args);
    options.supervise = true;
    options.max_retries = static_cast<uint32_t>(args.GetDouble("max-retries", 2));
    options.watchdog_wall_ms = static_cast<uint64_t>(args.GetDouble("watchdog-ms", 0));
    options.watchdog_instructions = static_cast<uint64_t>(args.GetDouble("watchdog-insns", 0));
    options.degrade = ParseDegrade(args);
  }
  // A traced, governed storm hoists the governor out of RunBootStorm so the
  // tracer's rings are charged to its trace_buffers category.
  std::optional<imk::MemGovernor> governor;
  if (!args.Get("trace").empty() && options.mem_budget_bytes > 0) {
    imk::MemGovernorOptions governor_options;
    governor_options.budget_bytes = options.mem_budget_bytes;
    governor_options.soft_pct = options.mem_soft_pct;
    governor.emplace(governor_options);
    options.governor = &*governor;
  }
  MaybeStartTrace(args, governor.has_value() ? &*governor : nullptr);
  auto stats = imk::RunBootStorm(ByteSpan(vmlinux), ByteSpan(relocs_blob), options);
  imk::FaultInjector::Instance().Disarm();
  if (!stats.ok()) {
    Die(stats.status().ToString());
  }
  MaybeFinishTrace(args, {});
  MaybePrintMetrics(args);
  std::printf("storm: %u VMs over %u threads (%u launches) in %.1f ms -> %.1f boots/sec\n",
              stats->vms, stats->threads, stats->launches,
              static_cast<double>(stats->wall_ns) / 1e6, stats->boots_per_sec());
  std::printf("boot latency: p50 %.2f ms, p99 %.2f ms\n", stats->boot_ms.percentile(50),
              stats->boot_ms.percentile(99));
  std::printf("image: %s, dirty %.1f%% per VM (%.0f of %llu frames; %.0f still shared)\n",
              imk::HumanSize(stats->image_bytes).c_str(), stats->image_dirty_fraction() * 100,
              stats->image_dirty_frames.mean(),
              static_cast<unsigned long long>(stats->image_frames),
              stats->image_shared_frames.mean());
  std::printf("resident %.2f MiB per VM; template cache %llu hits / %llu misses\n",
              stats->resident_mb.mean(), static_cast<unsigned long long>(stats->cache_hits),
              static_cast<unsigned long long>(stats->cache_misses));
  if (options.use_block_cache) {
    std::printf(
        "decode cache: %llu hits / %llu misses / %llu invalidations; blocks %llu shared / "
        "%llu private (%.1f%% shared), %llu resident in the shared tier\n",
        static_cast<unsigned long long>(stats->block_cache_hits),
        static_cast<unsigned long long>(stats->block_cache_misses),
        static_cast<unsigned long long>(stats->block_cache_invalidations),
        static_cast<unsigned long long>(stats->blocks_shared),
        static_cast<unsigned long long>(stats->blocks_private),
        stats->block_share_rate() * 100,
        static_cast<unsigned long long>(stats->shared_blocks_resident));
  }
  if (options.layout_pool_depth > 0) {
    std::printf(
        "layout pool: %llu hits / %llu misses (%.1f%% hit rate), %llu rendered during the "
        "storm, %llu refill errors, %llu quarantined\n",
        static_cast<unsigned long long>(stats->pool_hits),
        static_cast<unsigned long long>(stats->pool_misses), stats->pool_hit_rate() * 100,
        static_cast<unsigned long long>(stats->pool_rendered_during),
        static_cast<unsigned long long>(stats->pool_refill_errors),
        static_cast<unsigned long long>(stats->pool_quarantined));
  }
  if (stats->mem.has_value()) {
    PrintMemStats(*stats->mem);
  }
  if (options.supervise || stats->outcomes.rejected_mem > 0) {
    const auto& t = stats->outcomes;
    std::printf(
        "outcomes: %u first-try, %u retried, %u degraded, %u failed, %u rejected-mem "
        "(%u/%u accounted)\n",
        t.ok_first_try, t.ok_retried, t.ok_degraded, t.failed, t.rejected_mem, t.accounted(),
        stats->launches);
    std::printf(
        "          %u attempts, %u watchdog trips, %u mem-rejected attempts, "
        "%llu quarantines, %llu faults fired\n",
        t.attempts_total, t.watchdog_trips, t.mem_rejected_attempts,
        static_cast<unsigned long long>(t.cache_quarantines),
        static_cast<unsigned long long>(t.faults_injected));
    return FinishAudit(audit, json, t.failed == 0 ? 0 : 1);
  }
  return FinishAudit(audit, json, 0);
}

int CmdRaceCheck(const Args& args) {
  const bool json = !args.Get("json").empty();

  // Self-test mode: fire a seeded known-bad pattern and demand the detector
  // catches it. Works in every build (the drills call the Tracker directly).
  const std::string drill = args.Get("drill");
  if (!drill.empty()) {
    imk::race::AuditScope audit;
    if (drill == "order") {
      imk::race::LockOrderInversionDrill();
    } else if (drill == "lockset") {
      imk::race::UnguardedWriteDrill();
    } else {
      Die("racecheck: unknown --drill (order|lockset)");
    }
    const imk::race::RaceReport& report = audit.Finish();
    std::printf("%s\n", json ? report.ToJson().c_str() : report.ToString().c_str());
    const bool caught =
        drill == "order"
            ? report.CountOf(imk::race::RaceKind::kRankInversion) > 0 &&
                  report.CountOf(imk::race::RaceKind::kOrderCycle) > 0
            : report.CountOf(imk::race::RaceKind::kUnguardedWrite) > 0;
    std::printf("racecheck drill '%s': %s\n", drill.c_str(),
                caught ? "DETECTED (detector works)" : "MISSED (detector broken)");
    return caught ? 0 : 1;
  }

  if (!imk::race::AuditCompiledIn()) {
    std::fprintf(stderr,
                 "warning: this build lacks IMK_RACE_AUDIT; the storm lanes below observe "
                 "nothing (reconfigure with -DIMK_RACE_AUDIT=ON)\n");
  }
  imk::StormOptions options;
  options.vms = static_cast<uint32_t>(args.GetDouble("vms", 16));
  options.threads = static_cast<uint32_t>(args.GetDouble("threads", 4));
  options.load_threads = static_cast<uint32_t>(args.GetDouble("load-threads", 2));
  options.mem_size_bytes = 192ull << 20;
  const double scale = args.GetDouble("scale", 0.02);

  bool all_clean = true;
  struct Lane {
    const char* name;
    imk::RandoMode mode;
    uint32_t pool_depth;  // 0 = no layout pool
    bool block_cache;     // storm-wide shared decode cache on?
    uint32_t churn;       // launch/halt cycles per VM slot (<=1 = one wave)
    uint64_t budget_mb;   // MemGovernor hard watermark (0 = ungoverned)
    bool traced = false;  // run with the imktrace tracer recording
  };
  const Lane lanes[] = {
      {"kaslr", imk::RandoMode::kKaslr, 0, false, 1, 0},
      {"fgkaslr", imk::RandoMode::kFgKaslr, 0, false, 1, 0},
      // Pooled lane: background refill races measured grabs, so the
      // LayoutPool's kLayoutPool rank and guards get audited under load.
      {"fgkaslr-pooled", imk::RandoMode::kFgKaslr, options.vms, false, 1, 0},
      // Block-cache lane: every VM's block engine grabs from / installs
      // into one SharedBlockCache, auditing the kBlockCache rank and the
      // decode-map guards under storm concurrency.
      {"kaslr-blockcache", imk::RandoMode::kKaslr, 0, true, 1, 0},
      // Churn lane under a deliberately tight MemGovernor budget: workers
      // charge/release frame bytes while the ladder walks cache locks from
      // the kMemGovernor rank, auditing the governor's lock order (admission
      // gate, reclamation into pool + decode + template tiers) under load.
      {"fgkaslr-churn-governed", imk::RandoMode::kFgKaslr, options.vms, true, 3, 48},
      // Traced lane: every worker emits into its lock-free ring while the
      // audit watches, proving the trace emit path adds no lock-order or
      // lockset findings under storm concurrency (ISSUE: instrumented
      // racecheck of a traced storm stays CLEAN).
      {"fgkaslr-traced", imk::RandoMode::kFgKaslr, options.vms, true, 1, 0, true},
  };
  for (const Lane& lane : lanes) {
    auto info = imk::BuildKernel(
        imk::KernelConfig::Make(imk::KernelProfile::kAws, lane.mode, scale));
    if (!info.ok()) {
      Die(info.status().ToString());
    }
    Bytes relocs_blob = imk::SerializeRelocs(info->relocs);
    options.rando = lane.mode;
    options.layout_pool_depth = lane.pool_depth;
    options.use_block_cache = lane.block_cache;
    options.share_block_cache = lane.block_cache;
    options.churn_cycles = lane.churn;
    options.mem_budget_bytes = lane.budget_mb << 20;
    imk::race::AuditScope audit;
    if (lane.traced) {
      imk::trace::Tracer::Instance().Start();
    }
    auto stats = imk::RunBootStorm(ByteSpan(info->vmlinux), ByteSpan(relocs_blob), options);
    if (lane.traced) {
      imk::trace::Tracer::Instance().Stop();
    }
    const imk::race::RaceReport& report = audit.Finish();
    if (!stats.ok()) {
      Die(std::string("racecheck ") + lane.name + " storm: " + stats.status().ToString());
    }
    std::printf("lane %s: %u VMs x %u threads, %llu cache hits / %llu misses", lane.name,
                stats->vms, stats->threads, static_cast<unsigned long long>(stats->cache_hits),
                static_cast<unsigned long long>(stats->cache_misses));
    if (lane.pool_depth > 0) {
      std::printf(", pool %llu hits / %llu misses",
                  static_cast<unsigned long long>(stats->pool_hits),
                  static_cast<unsigned long long>(stats->pool_misses));
    }
    if (lane.block_cache) {
      std::printf(", decode cache %llu shared grabs / %llu resident",
                  static_cast<unsigned long long>(stats->shared_block_hits),
                  static_cast<unsigned long long>(stats->shared_blocks_resident));
    }
    if (stats->mem.has_value()) {
      std::printf(", governor %llu reclaim runs / %llu rejects / peak %s",
                  static_cast<unsigned long long>(stats->mem->reclaim_runs),
                  static_cast<unsigned long long>(stats->mem->admit_rejects),
                  imk::HumanSize(stats->mem->high_water_total_bytes).c_str());
    }
    if (lane.traced) {
      std::printf(", %zu trace events from %zu threads",
                  imk::trace::Tracer::Instance().Collect().size(),
                  imk::trace::Tracer::Instance().thread_count());
    }
    std::printf("\n%s\n", json ? report.ToJson().c_str() : report.ToString().c_str());
    all_clean = all_clean && report.clean();
  }
  std::printf("racecheck: %s\n", all_clean ? "CLEAN" : "FINDINGS");
  return all_clean ? 0 : 1;
}

// Does the 8-byte word at link vaddr `slot` overlap any relocation field?
bool TouchesRelocField(const imk::RelocInfo& relocs, uint64_t slot) {
  for (const auto* list : {&relocs.abs64, &relocs.abs32, &relocs.inverse32}) {
    for (uint64_t field : *list) {
      if (field < slot + 8 && slot < field + 8) {
        return true;
      }
    }
  }
  return false;
}

// verify --uniqueness: the cross-VM layout-uniqueness audit over a pooled
// launch-only storm (every measured layout comes from the pool's one-shot
// handout; the checker proves no two VMs shared one).
int CmdVerifyUniqueness(const Args& args) {
  const double scale = args.GetDouble("scale", 0.02);
  const uint32_t vms = static_cast<uint32_t>(args.GetDouble("vms", 16));
  auto info = imk::BuildKernel(
      imk::KernelConfig::Make(imk::KernelProfile::kAws, imk::RandoMode::kFgKaslr, scale));
  if (!info.ok()) {
    Die(info.status().ToString());
  }
  Bytes relocs_blob = imk::SerializeRelocs(info->relocs);
  imk::StormOptions options;
  options.rando = imk::RandoMode::kFgKaslr;
  options.vms = vms;
  options.threads = static_cast<uint32_t>(args.GetDouble("threads", 4));
  options.mem_size_bytes = 192ull << 20;
  options.launch_only = true;
  options.layout_pool_depth =
      static_cast<uint32_t>(args.GetDouble("layout-pool", static_cast<double>(vms)));
  options.keep_layouts = true;
  options.seed_base = static_cast<uint64_t>(args.GetDouble("seed", 1));
  auto stats = imk::RunBootStorm(ByteSpan(info->vmlinux), ByteSpan(relocs_blob), options);
  if (!stats.ok()) {
    Die(stats.status().ToString());
  }
  imk::VerifyReport report = imk::CheckLayoutUniqueness(stats->layouts);
  std::printf("uniqueness: %zu layouts from a depth-%u pool (%llu hits / %llu misses)\n",
              stats->layouts.size(), options.layout_pool_depth,
              static_cast<unsigned long long>(stats->pool_hits),
              static_cast<unsigned long long>(stats->pool_misses));
  std::printf("%s\n", !args.Get("json").empty() ? report.ToJson().c_str()
                                                : report.ToString().c_str());
  return report.clean() ? 0 : 1;
}

int CmdVerify(const Args& args) {
  if (!args.Get("uniqueness").empty()) {
    return CmdVerifyUniqueness(args);
  }
  const std::string kernel_path = args.Get("kernel");
  if (kernel_path.empty()) {
    Die("verify: --kernel=FILE required");
  }
  Bytes vmlinux = ReadFile(kernel_path);

  imk::RelocInfo relocs;
  bool have_relocs = false;
  const std::string relocs_path = args.Get("relocs");
  if (!relocs_path.empty()) {
    Bytes blob = ReadFile(relocs_path);
    auto parsed = imk::ParseRelocs(ByteSpan(blob));
    if (!parsed.ok()) {
      Die(parsed.status().ToString());
    }
    relocs = std::move(*parsed);
    have_relocs = true;
  } else {
    // Figure 8's in-monitor `relocs` flow: derive from the ELF itself.
    auto elf = imk::ElfReader::Parse(ByteSpan(vmlinux));
    if (!elf.ok()) {
      Die(elf.status().ToString());
    }
    auto extracted = imk::ExtractRelocsFromElf(*elf);
    if (!extracted.ok()) {
      Die(extracted.status().ToString());
    }
    relocs = std::move(*extracted);
    have_relocs = !relocs.empty();
  }

  const imk::RandoMode rando = ParseRando(args.Get("rando", "kaslr"));
  const uint64_t mem_bytes = static_cast<uint64_t>(args.GetDouble("mem", 256)) << 20;
  imk::GuestMemory memory(mem_bytes);
  imk::DirectBootParams params;
  params.requested = rando;
  const uint64_t seed = static_cast<uint64_t>(args.GetDouble("seed", 0));
  imk::Rng rng(seed != 0 ? seed : imk::HostEntropySeed());
  const uint32_t threads = static_cast<uint32_t>(args.GetDouble("threads", 1));
  std::optional<imk::ThreadPool> pool;
  imk::DirectLoadResources resources;
  if (threads != 1) {
    pool.emplace(threads);
    resources.pool = &*pool;
  }
  auto loaded =
      imk::DirectLoadKernel(memory, ByteSpan(vmlinux), have_relocs ? &relocs : nullptr,
                            params, rng, resources);
  if (!loaded.ok()) {
    Die(loaded.status().ToString());
  }
  auto image = memory.Slice(loaded->choice.phys_load_addr, loaded->image_mem_size);
  if (!image.ok()) {
    Die(image.status().ToString());
  }

  // Optional fault injection, to demonstrate each detector class.
  const imk::ShuffleMap* map = loaded->fg.has_value() ? &loaded->fg->map : nullptr;
  imk::ShuffleMap corrupted_map;
  const uint64_t base = loaded->link_text_vaddr;
  const uint64_t slide = loaded->choice.virt_slide;
  auto field_ptr = [&](uint64_t link_vaddr) {
    const uint64_t moved = map != nullptr ? map->Translate(link_vaddr) : link_vaddr;
    return image->data() + (moved - base);
  };
  const std::string corrupt = args.Get("corrupt");
  if (corrupt == "skip-abs64") {
    if (relocs.abs64.empty() || slide == 0) {
      Die("skip-abs64 needs abs64 relocations and a nonzero slide (pick another --seed)");
    }
    uint8_t* p = field_ptr(relocs.abs64.front());
    imk::StoreLe64(p, imk::LoadLe64(p) - slide);  // un-apply: as if the walk skipped it
  } else if (corrupt == "double-inverse32") {
    if (relocs.inverse32.empty() || slide == 0) {
      Die("double-inverse32 needs inverse32 relocations and a nonzero slide");
    }
    uint8_t* p = field_ptr(relocs.inverse32.front());
    imk::StoreLe32(p, imk::LoadLe32(p) - static_cast<uint32_t>(slide));  // second application
  } else if (corrupt == "overlap-section") {
    if (map == nullptr || map->ranges().size() < 2) {
      Die("overlap-section requires an fgkaslr image (--rando=fgkaslr)");
    }
    std::vector<imk::ShuffledRange> ranges = map->ranges();
    ranges[1].new_vaddr = ranges[0].new_vaddr;
    corrupted_map = imk::ShuffleMap(std::move(ranges));
    map = &corrupted_map;
  } else if (corrupt == "stale-pointer") {
    if (slide == 0) {
      Die("stale-pointer needs a nonzero slide (pick another --seed)");
    }
    auto elf = imk::ElfReader::Parse(ByteSpan(vmlinux));
    auto data_section = elf->FindSection(".data");
    if (!data_section.ok()) {
      Die(data_section.status().ToString());
    }
    const uint64_t lo = (*data_section)->header.sh_addr;
    const uint64_t hi = lo + (*data_section)->header.sh_size;
    uint64_t slot = 0;
    for (uint64_t candidate = (lo + 7) & ~7ull; candidate + 8 <= hi; candidate += 8) {
      if (!TouchesRelocField(relocs, candidate)) {
        slot = candidate;
        break;
      }
    }
    if (slot == 0) {
      Die("stale-pointer: no relocation-free 8-byte slot in .data");
    }
    imk::StoreLe64(field_ptr(slot), base + 16);  // a link-time text address
  } else if (!corrupt.empty()) {
    Die("unknown --corrupt mode: " + corrupt);
  }

  imk::VerifyInput input;
  input.original_elf = ByteSpan(vmlinux);
  input.randomized = ByteSpan(image->data(), image->size());
  input.base_vaddr = base;
  input.relocs = have_relocs ? &relocs : nullptr;
  input.map = map;
  input.choice = loaded->choice;
  input.guest_mem_size = mem_bytes;
  input.kallsyms_deferred = loaded->fg.has_value() && loaded->fg->kallsyms_pending;
  auto report = imk::VerifyImage(input);
  if (!report.ok()) {
    Die(report.status().ToString());
  }
  if (!args.Get("json").empty()) {
    std::printf("%s\n", report->ToJson().c_str());
  } else {
    std::printf("%s\n", report->ToString().c_str());
  }
  return report->clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: imk_tool <build|readelf|disasm|relocs|boot|storm|verify|racecheck>"
                 " [options]\n"
                 "run with a subcommand to see its options in the header comment\n");
    return 1;
  }
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "build") {
    return CmdBuild(args);
  }
  if (command == "readelf") {
    return CmdReadElf(args);
  }
  if (command == "disasm") {
    return CmdDisasm(args);
  }
  if (command == "relocs") {
    return CmdRelocs(args);
  }
  if (command == "boot") {
    return CmdBoot(args);
  }
  if (command == "storm") {
    return CmdStorm(args);
  }
  if (command == "verify") {
    return CmdVerify(args);
  }
  if (command == "racecheck") {
    return CmdRaceCheck(args);
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 1;
}
