// Ablation bench for the in-monitor design choices DESIGN.md calls out:
//   1. kallsyms fixup policy: eager vs lazy vs skip (paper §4.3 reports the
//      fixup is ~22% of FGKASLR boot cost and proposes deferring it);
//   2. ORC unwind table fixup on/off (the paper omits it; we implement it);
//   3. reading kernel constants from the ELF note vs hardcoding them
//      (the paper's future-work idea);
//   4. FGKASLR engine step breakdown (parse/shuffle/move/kallsyms/tables).
//
//   $ ./ablation_inmonitor [--reps=10] [--scale=0.25]
#include "bench/common.h"

#include "src/base/stopwatch.h"

using namespace imk;         // NOLINT
using namespace imk::bench;  // NOLINT

namespace {

struct FgCosts {
  Summary monitor_ms;
  Summary fg_total_ms;
  Summary kallsyms_ms;
  Summary tables_ms;
  Summary move_ms;
  Summary parse_ms;
  Summary shuffle_ms;
  Summary first_touch_ms;  // lazy only: cost of the first guest kallsyms use
};

FgCosts Measure(Storage& storage, const KernelBuildInfo& info, KallsymsFixup kallsyms,
                bool use_note, uint32_t warmup, uint32_t reps) {
  FgCosts costs;
  for (uint32_t i = 0; i < warmup + reps; ++i) {
    MicroVmConfig config;
    config.mem_size_bytes = 256ull << 20;
    config.kernel_image = "vmlinux";
    config.relocs_image = "vmlinux.relocs";
    config.rando = RandoMode::kFgKaslr;
    config.fg.kallsyms = kallsyms;
    config.use_note_constants = use_note;
    config.seed = 31 + i;
    MicroVm vm(storage, config);
    BootReport report = CheckOk(vm.Boot(), "Boot");
    if (report.init_checksum != info.expected_checksum) {
      std::fprintf(stderr, "checksum mismatch\n");
      std::exit(1);
    }
    // Lazy mode: time the first guest kallsyms access (triggers the hook).
    double first_touch = 0;
    if (kallsyms == KallsymsFixup::kLazy) {
      Stopwatch touch_timer;
      (void)CheckOk(vm.CallGuest(info.selftest_entry_vaddr, 0, 0, 1ull << 28), "selftest");
      first_touch = touch_timer.ElapsedMs();
    }
    if (i < warmup) {
      continue;
    }
    costs.monitor_ms.Add(report.timeline.phase_ms(BootPhase::kInMonitor));
    if (report.fg_timings) {
      costs.fg_total_ms.Add(static_cast<double>(report.fg_timings->total()) / 1e6);
      costs.kallsyms_ms.Add(static_cast<double>(report.fg_timings->kallsyms_ns) / 1e6);
      costs.tables_ms.Add(static_cast<double>(report.fg_timings->tables_ns) / 1e6);
      costs.move_ms.Add(static_cast<double>(report.fg_timings->move_ns) / 1e6);
      costs.parse_ms.Add(static_cast<double>(report.fg_timings->parse_ns) / 1e6);
      costs.shuffle_ms.Add(static_cast<double>(report.fg_timings->shuffle_ns) / 1e6);
    }
    costs.first_touch_ms.Add(first_touch);
  }
  return costs;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  std::printf("In-monitor FGKASLR ablations (aws kernel, %u boots each)\n\n", options.reps);

  // Two kernel builds: with the ORC unwind table (CONFIG_UNWINDER_ORC) and
  // without it (the paper's kernel configs). The engine must fix up and
  // re-sort the table when present.
  KernelConfig orc_config =
      KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, options.scale);
  orc_config.unwinder_orc = true;
  KernelBuildInfo orc_info = CheckOk(BuildKernel(orc_config), "BuildKernel orc");
  Storage orc_storage;
  orc_storage.Put("vmlinux", orc_info.vmlinux);
  orc_storage.Put("vmlinux.relocs", SerializeRelocs(orc_info.relocs));

  KernelBuildInfo info = CheckOk(
      BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, options.scale)),
      "BuildKernel");
  Storage storage;
  storage.Put("vmlinux", info.vmlinux);
  storage.Put("vmlinux.relocs", SerializeRelocs(info.relocs));

  TextTable table({"variant", "monitor ms", "fg engine ms", "kallsyms ms", "ex/orc ms",
                   "lazy first-touch ms"});
  struct Variant {
    const char* label;
    KallsymsFixup kallsyms;
    bool orc_kernel;
    bool note;
  };
  const Variant variants[] = {
      {"eager kallsyms (paper-fair baseline)", KallsymsFixup::kEager, false, true},
      {"eager kallsyms + ORC table kernel", KallsymsFixup::kEager, true, true},
      {"lazy kallsyms (paper proposal)", KallsymsFixup::kLazy, false, true},
      {"skip kallsyms (paper prototype)", KallsymsFixup::kSkip, false, true},
      {"hardcoded constants (no ELF note)", KallsymsFixup::kEager, false, false},
  };
  FgCosts full_costs;
  FgCosts skip_costs;
  for (const Variant& variant : variants) {
    FgCosts costs =
        Measure(variant.orc_kernel ? orc_storage : storage,
                variant.orc_kernel ? orc_info : info, variant.kallsyms, variant.note,
                options.warmup, options.reps);
    table.AddRow({variant.label, TextTable::Fmt(costs.monitor_ms.mean()),
                  TextTable::Fmt(costs.fg_total_ms.mean()),
                  TextTable::Fmt(costs.kallsyms_ms.mean()),
                  TextTable::Fmt(costs.tables_ms.mean()),
                  variant.kallsyms == KallsymsFixup::kLazy
                      ? TextTable::Fmt(costs.first_touch_ms.mean())
                      : std::string("-")});
    if (std::string(variant.label).rfind("eager kallsyms (paper", 0) == 0) {
      full_costs = costs;
    }
    if (std::string(variant.label).rfind("skip", 0) == 0) {
      skip_costs = costs;
    }
  }
  table.Print();

  std::printf("\nFGKASLR engine step breakdown (eager, means):\n");
  PrintBars({{"section parse", full_costs.parse_ms.mean()},
             {"shuffle+layout", full_costs.shuffle_ms.mean()},
             {"byte movement", full_costs.move_ms.mean()},
             {"kallsyms fixup+sort", full_costs.kallsyms_ms.mean()},
             {"ex_table/orc fixup", full_costs.tables_ms.mean()}},
            "ms");
  const double saved = full_costs.kallsyms_ms.mean();
  std::printf("\nkallsyms fixup is %.1f%% of the FGKASLR engine (paper: ~22%% of overall boot);\n"
              "skipping it reduces engine time by %.2f ms; the lazy variant defers that cost\n"
              "to the first /proc/kallsyms access.\n",
              saved / full_costs.fg_total_ms.mean() * 100,
              full_costs.fg_total_ms.mean() - skip_costs.fg_total_ms.mean());
  return 0;
}
