// google-benchmark microbenchmarks: compression/decompression throughput of
// every codec on kernel-like data (supports Figure 3's ordering claims).
#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/compress/registry.h"

namespace imk {
namespace {

Bytes KernelLikeData(size_t size) {
  Rng rng(42);
  Bytes data;
  data.reserve(size);
  while (data.size() < size) {
    const uint32_t kind = static_cast<uint32_t>(rng.NextBelow(10));
    if (kind < 5) {
      const size_t run = 16 + rng.NextBelow(64);
      const uint8_t motif = static_cast<uint8_t>(rng.NextBelow(32));
      for (size_t i = 0; i < run && data.size() < size; ++i) {
        data.push_back(static_cast<uint8_t>(motif + (i % 7)));
      }
    } else if (kind < 7) {
      const uint64_t base = 0xffffffff81000000ull + rng.NextBelow(1 << 20);
      for (int i = 0; i < 8 && data.size() < size; ++i) {
        data.push_back(static_cast<uint8_t>(base >> (8 * i)));
      }
    } else if (kind < 9) {
      const size_t run = 8 + rng.NextBelow(128);
      for (size_t i = 0; i < run && data.size() < size; ++i) {
        data.push_back(0);
      }
    } else {
      const size_t run = 4 + rng.NextBelow(32);
      for (size_t i = 0; i < run && data.size() < size; ++i) {
        data.push_back(static_cast<uint8_t>(rng.Next()));
      }
    }
  }
  return data;
}

constexpr size_t kInputSize = 2 * 1024 * 1024;

void BM_Compress(benchmark::State& state, const std::string& name) {
  const Bytes input = KernelLikeData(kInputSize);
  auto codec = MakeCodec(name);
  for (auto _ : state) {
    auto compressed = (*codec)->Compress(ByteSpan(input));
    benchmark::DoNotOptimize(compressed->size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * input.size()));
  auto compressed = (*codec)->Compress(ByteSpan(input));
  state.counters["ratio"] =
      static_cast<double>(input.size()) / static_cast<double>(compressed->size());
}

void BM_Decompress(benchmark::State& state, const std::string& name) {
  const Bytes input = KernelLikeData(kInputSize);
  auto codec = MakeCodec(name);
  auto compressed = (*codec)->Compress(ByteSpan(input));
  for (auto _ : state) {
    auto output = (*codec)->Decompress(ByteSpan(*compressed), input.size());
    benchmark::DoNotOptimize(output->size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * input.size()));
}

void RegisterAll() {
  for (const char* name : {"none", "lz4", "lzo", "zstd", "gzip", "bzip2", "xz"}) {
    benchmark::RegisterBenchmark(("BM_Compress/" + std::string(name)).c_str(),
                                 [name](benchmark::State& state) { BM_Compress(state, name); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("BM_Decompress/" + std::string(name)).c_str(),
                                 [name](benchmark::State& state) { BM_Decompress(state, name); })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace imk

int main(int argc, char** argv) {
  imk::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
