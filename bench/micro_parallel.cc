// micro_parallel — acceptance bench for the parallel, amortized in-monitor
// randomization pipeline (PR 2).
//
// Reports, per stage, the serial reference against the batch/sharded path
// (reloc apply, FGKASLR shuffle+move), the serial-only image copy, and the
// end-to-end monitor load time cold (template built every boot) against
// cached (template served from the ImageTemplateCache, scratch buffers
// reused) — the many-boots-per-second fleet scenario of the paper's §7
// discussion.
//
// Targets (see ISSUE.md): >= 2x on reloc apply with 4 workers, >= 5x
// cold vs cached end-to-end. Writes machine-readable results to
// BENCH_parallel.json (override with --out=FILE).
#include <algorithm>
#include <cstring>
#include <string>

#include "bench/common.h"
#include "src/base/stopwatch.h"
#include "src/base/threadpool.h"
#include "src/elf/elf_note.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/kaslr/fgkaslr.h"
#include "src/kaslr/random_offset.h"
#include "src/kaslr/relocator.h"
#include "src/kernel/relocs.h"
#include "src/vmm/image_template.h"
#include "src/vmm/loader.h"

namespace imk {
namespace {

struct StagePair {
  std::string name;
  double serial_ns = 0;
  double fast_ns = 0;
  double speedup() const { return fast_ns > 0 ? serial_ns / fast_ns : 0; }
};

double MedianNs(uint32_t warmup, uint32_t reps, const std::function<Result<double>()>& body) {
  Summary summary = bench::CheckOk(Repeat(warmup, reps, body), "Repeat");
  return summary.percentile(50);
}

int Run(int argc, char** argv) {
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  std::string out_path = "BENCH_parallel.json";
  uint32_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<uint32_t>(std::atoi(argv[i] + 10));
    }
  }

  std::printf("micro_parallel: scale=%.3g reps=%u threads=%u\n", opts.scale, opts.reps, threads);
  KernelBuildInfo info = bench::CheckOk(
      BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, opts.scale)),
      "BuildKernel");
  auto tmpl = bench::CheckOk(BuildImageTemplate(ByteSpan(info.vmlinux), TemplateOptions{}),
                             "BuildImageTemplate");
  ThreadPool pool(threads);
  RelocScratch scratch;
  Bytes move_scratch;

  // One representative shuffled image for the reloc-apply stage.
  Bytes shuffled = tmpl->pristine;
  ShuffleMap map;
  {
    LoadedImageView view(MutableByteSpan(shuffled), tmpl->link_base);
    Rng rng(2);
    auto fg = bench::CheckOk(ShuffleFunctionsPreparsed(*tmpl->fg, view, FgKaslrParams{}, rng),
                             "ShuffleFunctionsPreparsed");
    map = fg.map;
  }
  constexpr uint64_t kSlide = 0x4000000;

  // ---- stage: relocation apply ----
  StagePair reloc{"reloc_apply"};
  {
    Bytes image = shuffled;
    reloc.serial_ns = MedianNs(opts.warmup, opts.reps, [&]() -> Result<double> {
      image = shuffled;
      LoadedImageView view(MutableByteSpan(image), tmpl->link_base);
      Stopwatch timer;
      IMK_RETURN_IF_ERROR(ApplyRelocationsShuffledPerEntry(view, info.relocs, kSlide, map)
                              .status());
      return static_cast<double>(timer.ElapsedNs());
    });
    RelocApplyOptions options;
    options.pool = &pool;
    options.scratch = &scratch;
    reloc.fast_ns = MedianNs(opts.warmup, opts.reps, [&]() -> Result<double> {
      image = shuffled;
      LoadedImageView view(MutableByteSpan(image), tmpl->link_base);
      Stopwatch timer;
      IMK_RETURN_IF_ERROR(
          ApplyRelocationsShuffled(view, info.relocs, kSlide, map, options).status());
      return static_cast<double>(timer.ElapsedNs());
    });
  }

  // ---- stage: FGKASLR shuffle + move + table fixups ----
  StagePair fg_stage{"fg_shuffle_move"};
  {
    Bytes image = tmpl->pristine;
    FgExecContext reference_context;
    reference_context.reference = true;
    fg_stage.serial_ns = MedianNs(opts.warmup, opts.reps, [&]() -> Result<double> {
      image = tmpl->pristine;
      LoadedImageView view(MutableByteSpan(image), tmpl->link_base);
      Rng rng(3);
      Stopwatch timer;
      IMK_RETURN_IF_ERROR(
          ShuffleFunctionsPreparsed(*tmpl->fg, view, FgKaslrParams{}, rng, reference_context)
              .status());
      return static_cast<double>(timer.ElapsedNs());
    });
    FgExecContext context;
    context.pool = &pool;
    context.scratch = &scratch;
    context.move_scratch = &move_scratch;
    context.pristine = ByteSpan(tmpl->pristine);
    fg_stage.fast_ns = MedianNs(opts.warmup, opts.reps, [&]() -> Result<double> {
      image = tmpl->pristine;
      LoadedImageView view(MutableByteSpan(image), tmpl->link_base);
      Rng rng(3);
      Stopwatch timer;
      IMK_RETURN_IF_ERROR(
          ShuffleFunctionsPreparsed(*tmpl->fg, view, FgKaslrParams{}, rng, context).status());
      return static_cast<double>(timer.ElapsedNs());
    });
  }

  // ---- stage: image copy into guest memory (serial by design) ----
  // The sharded-memcpy variant never beat 1.005x serial here: a multi-MiB
  // memcpy is memory-bandwidth-bound, so fanning it across workers only adds
  // dispatch overhead. The loader's fallback copy is therefore plain serial
  // memcpy (the zero-copy template map and the layout pool bypass the full
  // copy entirely on the product path), and this stage records the serial
  // cost alone with parallel_dropped in the JSON so the guard script knows
  // the missing speedup column is intentional, not a regression.
  StagePair copy_stage{"image_copy"};
  {
    Bytes dst(tmpl->mem_size, 0);
    copy_stage.serial_ns = MedianNs(opts.warmup, opts.reps, [&]() -> Result<double> {
      Stopwatch timer;
      std::memcpy(dst.data(), tmpl->pristine.data(), tmpl->mem_size);
      return static_cast<double>(timer.ElapsedNs());
    });
  }

  // ---- stage: end-to-end monitor load, cold vs cached ----
  // serial = the pre-PR-2 per-boot pipeline, i.e. what `imk_tool boot` did
  // for every VM before this change: decode the vmlinux.relocs blob handed
  // to the monitor (Figure 8), re-parse the ELF, walk the note sections for
  // the kernel-constants note, choose offsets, copy segments one at a time,
  // shuffle with freshly allocated scratch and reference (per-entry +
  // re-sort) table fixups, and apply relocations with per-entry binary
  // searches.
  // cold_ns (JSON only) = the repo's current cacheless DirectLoadKernel
  // (template built inline per boot, batch relocator, no worker pool).
  // fast = the product path with a warm ImageTemplateCache + worker pool +
  // reusable scratch buffers — the paper's §7 fleet scenario.
  StagePair load_stage{"end_to_end_load"};
  double load_cold_ns = 0;
  {
    GuestMemory memory(256ull << 20);
    const Bytes relocs_blob = SerializeRelocs(info.relocs);
    FgExecContext reference_context;
    reference_context.reference = true;
    load_stage.serial_ns = MedianNs(opts.warmup, opts.reps, [&]() -> Result<double> {
      Rng rng(7);
      Stopwatch timer;
      IMK_ASSIGN_OR_RETURN(RelocInfo boot_relocs, ParseRelocs(ByteSpan(relocs_blob)));
      IMK_ASSIGN_OR_RETURN(ElfReader elf, ElfReader::Parse(ByteSpan(info.vmlinux)));
      uint64_t lo = UINT64_MAX;
      uint64_t hi = 0;
      for (const Elf64Phdr& phdr : elf.program_headers()) {
        if (phdr.p_type != kPtLoad) continue;
        lo = std::min(lo, phdr.p_vaddr);
        hi = std::max(hi, phdr.p_vaddr + phdr.p_memsz);
      }
      KernelConstantsNote constants = DefaultKernelConstants();
      for (const ElfSection& section : elf.sections()) {
        if (section.header.sh_type != kShtNote) continue;
        IMK_ASSIGN_OR_RETURN(ByteSpan note_data, elf.SectionData(section));
        IMK_ASSIGN_OR_RETURN(std::vector<ElfNote> notes, ParseNoteSection(note_data));
        if (auto found = FindKernelConstants(notes)) {
          constants = *found;
          break;
        }
      }
      OffsetConstraints constraints;
      constraints.image_mem_size = hi - lo;
      constraints.guest_mem_size = memory.size();
      constraints.constants = constants;
      IMK_ASSIGN_OR_RETURN(OffsetChoice choice, ChooseRandomOffsets(constraints, rng));
      IMK_ASSIGN_OR_RETURN(MutableByteSpan ram, memory.Slice(choice.phys_load_addr, hi - lo));
      for (const Elf64Phdr& phdr : elf.program_headers()) {
        if (phdr.p_type != kPtLoad) continue;
        IMK_ASSIGN_OR_RETURN(ByteSpan file_bytes, elf.SegmentData(phdr));
        uint8_t* dst = ram.data() + (phdr.p_vaddr - lo);
        std::memcpy(dst, file_bytes.data(), file_bytes.size());
        std::memset(dst + file_bytes.size(), 0, phdr.p_memsz - file_bytes.size());
      }
      LoadedImageView view(ram, lo);
      IMK_ASSIGN_OR_RETURN(FgMetadata fg_meta, ParseFgMetadata(elf));
      IMK_ASSIGN_OR_RETURN(
          FgKaslrResult fg_result,
          ShuffleFunctionsPreparsed(fg_meta, view, FgKaslrParams{}, rng, reference_context));
      IMK_RETURN_IF_ERROR(
          ApplyRelocationsShuffledPerEntry(view, boot_relocs, choice.virt_slide, fg_result.map)
              .status());
      return static_cast<double>(timer.ElapsedNs());
    });
    DirectBootParams params;
    params.requested = RandoMode::kFgKaslr;
    load_cold_ns = MedianNs(opts.warmup, opts.reps, [&]() -> Result<double> {
      Rng rng(7);
      Stopwatch timer;
      IMK_RETURN_IF_ERROR(
          DirectLoadKernel(memory, ByteSpan(info.vmlinux), &info.relocs, params, rng).status());
      return static_cast<double>(timer.ElapsedNs());
    });
    ImageTemplateCache cache(4);
    DirectLoadResources resources;
    resources.pool = &pool;
    resources.cache = &cache;
    resources.reloc_scratch = &scratch;
    resources.move_scratch = &move_scratch;
    load_stage.fast_ns = MedianNs(opts.warmup, opts.reps, [&]() -> Result<double> {
      Rng rng(7);
      Stopwatch timer;
      IMK_RETURN_IF_ERROR(DirectLoadKernel(memory, ByteSpan(info.vmlinux), &info.relocs, params,
                                           rng, resources)
                              .status());
      return static_cast<double>(timer.ElapsedNs());
    });
  }

  // ---- per-stage memory materialization (CoW) ----
  // One instrumented load against a fresh paged memory: which stage made how
  // many image frames private to the VM, and how much stayed aliased to the
  // template zero-copy. (The timing loops above reuse one GuestMemory, so
  // their per-boot deltas are not representative of a cold-started VM.)
  LoaderMemStats mem;
  {
    GuestMemory fresh(256ull << 20);
    ImageTemplateCache cache(4);
    DirectLoadResources resources;
    resources.pool = &pool;
    resources.cache = &cache;
    resources.reloc_scratch = &scratch;
    resources.move_scratch = &move_scratch;
    DirectBootParams params;
    params.requested = RandoMode::kFgKaslr;
    Rng rng(7);
    auto loaded = DirectLoadKernel(fresh, ByteSpan(info.vmlinux), &info.relocs, params, rng,
                                   resources);
    bench::Check(loaded.status(), "instrumented DirectLoadKernel");
    mem = loaded->mem;
  }

  const StagePair* stages[] = {&reloc, &fg_stage, &copy_stage, &load_stage};
  TextTable table({"stage", "serial/cold (us)", "batch/cached (us)", "speedup"});
  for (const StagePair* stage : stages) {
    if (stage == &copy_stage) {
      table.AddRow({stage->name, TextTable::Fmt(stage->serial_ns / 1000.0), "(serial only)", "-"});
      continue;
    }
    table.AddRow({stage->name, TextTable::Fmt(stage->serial_ns / 1000.0),
                  TextTable::Fmt(stage->fast_ns / 1000.0), TextTable::Fmt(stage->speedup())});
  }
  table.Print();

  std::printf("\nper-stage frame materialization (fresh VM, %llu image frames):\n",
              static_cast<unsigned long long>(mem.image_frames));
  TextTable mem_table({"stage", "dirty frames", "bytes touched"});
  mem_table.AddRow({"load (zero-copy map)", std::to_string(mem.load_dirty_frames),
                    std::to_string(mem.copied_bytes)});
  mem_table.AddRow({"fg shuffle+tables", std::to_string(mem.fg_dirty_frames),
                    std::to_string(mem.fg_dirty_frames * FrameStore::kFrameBytes)});
  mem_table.AddRow({"reloc walk", std::to_string(mem.reloc_dirty_frames),
                    std::to_string(mem.reloc_dirty_frames * FrameStore::kFrameBytes)});
  mem_table.Print();
  std::printf("mapped shared zero-copy: %llu frames; private after load: %llu frames (%.1f%%)\n",
              static_cast<unsigned long long>(mem.mapped_shared_frames),
              static_cast<unsigned long long>(mem.dirty_frames_total()),
              mem.image_frames > 0
                  ? 100.0 * static_cast<double>(mem.dirty_frames_total()) /
                        static_cast<double>(mem.image_frames)
                  : 0.0);

  const bool reloc_ok = reloc.speedup() >= 2.0;
  const bool load_ok = load_stage.speedup() >= 5.0;
  std::printf("targets: reloc_apply %.2fx (>=2x %s), end_to_end %.2fx (>=5x %s)\n",
              reloc.speedup(), reloc_ok ? "PASS" : "MISS", load_stage.speedup(),
              load_ok ? "PASS" : "MISS");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_parallel\",\n"
               "  \"scale\": %g,\n"
               "  \"reps\": %u,\n"
               "  \"threads\": %u,\n"
               "  \"relocations\": %llu,\n"
               "  \"image_bytes\": %llu,\n"
               "  \"stages\": {\n",
               opts.scale, opts.reps, threads,
               static_cast<unsigned long long>(info.relocs.total()),
               static_cast<unsigned long long>(tmpl->mem_size));
  for (size_t i = 0; i < 4; ++i) {
    const StagePair* stage = stages[i];
    if (stage == &copy_stage) {
      std::fprintf(out, "    \"%s\": {\"serial_ns\": %.0f, \"parallel_dropped\": true}%s\n",
                   stage->name.c_str(), stage->serial_ns, i + 1 < 4 ? "," : "");
      continue;
    }
    if (stage == &load_stage) {
      std::fprintf(out,
                   "    \"%s\": {\"serial_ns\": %.0f, \"cold_cacheless_ns\": %.0f, "
                   "\"fast_ns\": %.0f, \"speedup\": %.3f}%s\n",
                   stage->name.c_str(), stage->serial_ns, load_cold_ns, stage->fast_ns,
                   stage->speedup(), i + 1 < 4 ? "," : "");
      continue;
    }
    std::fprintf(out,
                 "    \"%s\": {\"serial_ns\": %.0f, \"fast_ns\": %.0f, \"speedup\": %.3f}%s\n",
                 stage->name.c_str(), stage->serial_ns, stage->fast_ns, stage->speedup(),
                 i + 1 < 4 ? "," : "");
  }
  std::fprintf(out,
               "  },\n"
               "  \"memory\": {\n"
               "    \"image_frames\": %llu,\n"
               "    \"mapped_shared_frames\": %llu,\n"
               "    \"copied_bytes\": %llu,\n"
               "    \"load_dirty_frames\": %llu,\n"
               "    \"fg_dirty_frames\": %llu,\n"
               "    \"reloc_dirty_frames\": %llu,\n"
               "    \"dirty_fraction\": %.4f\n"
               "  }\n}\n",
               static_cast<unsigned long long>(mem.image_frames),
               static_cast<unsigned long long>(mem.mapped_shared_frames),
               static_cast<unsigned long long>(mem.copied_bytes),
               static_cast<unsigned long long>(mem.load_dirty_frames),
               static_cast<unsigned long long>(mem.fg_dirty_frames),
               static_cast<unsigned long long>(mem.reloc_dirty_frames),
               mem.image_frames > 0 ? static_cast<double>(mem.dirty_frames_total()) /
                                          static_cast<double>(mem.image_frames)
                                    : 0.0);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace imk

int main(int argc, char** argv) { return imk::Run(argc, argv); }
