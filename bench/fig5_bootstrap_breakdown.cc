// Figure 5 reproduction: where does bootstrap-loader time go? The paper
// finds decompression dominates (up to 73%), which motivates direct boot.
//
//   $ ./fig5_bootstrap_breakdown [--reps=10] [--scale=0.25]
#include "bench/common.h"

using namespace imk;         // NOLINT
using namespace imk::bench;  // NOLINT

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  std::printf("Figure 5: bootstrap loader step breakdown (bzImage lz4, kaslr, %u boots)\n\n",
              options.reps);

  TextTable table({"kernel", "setup ms", "decompress ms", "parse+load ms", "kaslr ms",
                   "decompress %"});
  for (KernelProfile profile : kAllProfiles) {
    Storage storage;
    KernelBuildInfo info =
        InstallKernel(storage, profile, RandoMode::kKaslr, options.scale, "vmlinux");
    InstallBzImage(storage, info, "lz4", LoaderKind::kStandard, "bz-lz4");

    Summary setup;
    Summary decompress;
    Summary parse_load;
    Summary rando;
    for (uint32_t i = 0; i < options.warmup + options.reps; ++i) {
      MicroVmConfig config;
      config.mem_size_bytes = 256ull << 20;
      config.kernel_image = "bz-lz4";
      config.boot_mode = BootMode::kBzImage;
      config.rando = RandoMode::kKaslr;
      config.seed = 1 + i;
      MicroVm vm(storage, config);
      BootReport report = CheckOk(vm.Boot(), "Boot");
      if (report.init_checksum != info.expected_checksum || !report.bootstrap_timings) {
        std::fprintf(stderr, "verification failed\n");
        return 1;
      }
      if (i < options.warmup) {
        continue;
      }
      const BootstrapTimings& t = *report.bootstrap_timings;
      setup.Add(static_cast<double>(t.setup_ns) / 1e6);
      decompress.Add(static_cast<double>(t.decompress_ns) / 1e6);
      parse_load.Add(static_cast<double>(t.parse_load_ns) / 1e6);
      rando.Add(static_cast<double>(t.rando_ns) / 1e6);
    }
    const double total = setup.mean() + decompress.mean() + parse_load.mean() + rando.mean();
    table.AddRow({std::string(ProfileName(profile)), TextTable::Fmt(setup.mean()),
                  TextTable::Fmt(decompress.mean()), TextTable::Fmt(parse_load.mean()),
                  TextTable::Fmt(rando.mean()),
                  TextTable::Fmt(decompress.mean() / total * 100, 1)});

    if (profile == KernelProfile::kAws) {
      std::printf("aws bootstrap phases:\n");
      PrintBars({{"setup", setup.mean()},
                 {"decompression", decompress.mean()},
                 {"parse+load", parse_load.mean()},
                 {"kaslr (relocs)", rando.mean()}},
                "ms");
      std::printf("\n");
    }
  }
  table.Print();
  std::printf("\npaper: decompression is up to 73%% of bootstrap time; relocation handling\n"
              "is at most 8.8%% — which is why KASLR is cheap to move into the monitor.\n");
  return 0;
}
