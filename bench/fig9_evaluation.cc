// Figure 9 reproduction — the paper's main result. For each kernel profile
// and randomization level, compares:
//   - uncompressed direct boot with IN-MONITOR randomization (the system),
//   - compression-none-optimized bzImage with self-randomization,
//   - LZ4 bzImage with self-randomization,
// plus the firecracker-baseline (direct, no randomization) reference.
//
//   $ ./fig9_evaluation [--reps=15] [--scale=0.25]
#include <map>

#include "bench/common.h"

using namespace imk;         // NOLINT
using namespace imk::bench;  // NOLINT

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  std::printf("Figure 9: boot time evaluation (%u boots each, scale %.2f, 256 MiB guests)\n\n",
              options.reps, options.scale);

  TextTable table({"kernel", "method", "total ms", "min", "max", "monitor", "setup", "decomp",
                   "linux"});
  std::map<std::string, double> means;      // "<profile>/<rando>/<method>" -> total mean ms
  std::map<std::string, double> pre_means;  // same keys -> pre-kernel (total - linux) mean ms

  for (KernelProfile profile : kAllProfiles) {
    for (RandoMode rando : {RandoMode::kNone, RandoMode::kKaslr, RandoMode::kFgKaslr}) {
      Storage storage;
      KernelBuildInfo info = InstallKernel(storage, profile, rando, options.scale, "vmlinux");
      InstallBzImage(storage, info, "none", LoaderKind::kNoneOptimized, "bz-none-opt");
      InstallBzImage(storage, info, "lz4", LoaderKind::kStandard, "bz-lz4");

      struct Method {
        const char* label;
        const char* image;
        BootMode mode;
        bool in_monitor_rando;
      };
      const Method methods[] = {
          {"uncompressed (in-monitor)", "vmlinux", BootMode::kDirect, true},
          {"none-optimized (self)", "bz-none-opt", BootMode::kBzImage, false},
          {"lz4 (self)", "bz-lz4", BootMode::kBzImage, false},
      };
      for (const Method& method : methods) {
        MicroVmConfig config;
        config.mem_size_bytes = 256ull << 20;
        config.kernel_image = method.image;
        config.boot_mode = method.mode;
        config.rando = rando;
        if (method.in_monitor_rando && rando != RandoMode::kNone) {
          config.relocs_image = "vmlinux.relocs";
        }
        config.seed = 11;
        BootStats stats = RepeatBoot(storage, config, info, options.warmup, options.reps);
        const std::string row_label =
            std::string(method.label) + (rando == RandoMode::kNone && method.in_monitor_rando
                                             ? " [firecracker-baseline]"
                                             : "");
        table.AddRow({info.config.Name(), row_label, TextTable::Fmt(stats.total_ms.mean()),
                      TextTable::Fmt(stats.total_ms.min()), TextTable::Fmt(stats.total_ms.max()),
                      TextTable::Fmt(stats.monitor_ms.mean()),
                      TextTable::Fmt(stats.setup_ms.mean()),
                      TextTable::Fmt(stats.decompress_ms.mean()),
                      TextTable::Fmt(stats.linux_ms.mean())});
        const std::string key =
            std::string(ProfileName(profile)) + "/" + RandoModeName(rando) + "/" + method.label;
        means[key] = stats.total_ms.mean();
        pre_means[key] = stats.total_ms.mean() - stats.linux_ms.mean();
      }
    }
  }
  table.Print();

  std::printf(
      "\npre-kernel comparisons (monitor + bootstrap + decompression; the method-specific\n"
      "cost, robust to guest-phase noise):\n");
  for (KernelProfile profile : kAllProfiles) {
    const std::string p = ProfileName(profile);
    const double baseline = pre_means[p + "/nokaslr/uncompressed (in-monitor)"];
    const double im_kaslr = pre_means[p + "/kaslr/uncompressed (in-monitor)"];
    const double self_opt = pre_means[p + "/kaslr/none-optimized (self)"];
    const double self_lz4 = pre_means[p + "/kaslr/lz4 (self)"];
    const double im_fg = pre_means[p + "/fgkaslr/uncompressed (in-monitor)"];
    const double self_opt_fg = pre_means[p + "/fgkaslr/none-optimized (self)"];
    const double self_lz4_fg = pre_means[p + "/fgkaslr/lz4 (self)"];
    std::printf(
        "  %-7s in-monitor KASLR pre-kernel %5.2f ms: +%.2f ms vs baseline; "
        "%5.1f%% faster than none-optimized; %5.1f%% faster than lz4\n",
        p.c_str(), im_kaslr, im_kaslr - baseline, (self_opt - im_kaslr) / im_kaslr * 100,
        (self_lz4 - im_kaslr) / im_kaslr * 100);
    std::printf(
        "  %-7s in-monitor FGKASLR pre-kernel %5.2f ms: %5.1f%% faster than none-optimized; "
        "%5.1f%% faster than lz4\n",
        p.c_str(), im_fg, (self_opt_fg - im_fg) / im_fg * 100,
        (self_lz4_fg - im_fg) / im_fg * 100);
  }

  std::printf("\nheadline comparisons on total boot (paper's 5.2 framing; noisier, the\n"
              "guest phase dominates):\n");
  for (KernelProfile profile : kAllProfiles) {
    const std::string p = ProfileName(profile);
    const double baseline = means[p + "/nokaslr/uncompressed (in-monitor)"];
    const double im_kaslr = means[p + "/kaslr/uncompressed (in-monitor)"];
    const double self_opt = means[p + "/kaslr/none-optimized (self)"];
    const double self_lz4 = means[p + "/kaslr/lz4 (self)"];
    const double im_fg = means[p + "/fgkaslr/uncompressed (in-monitor)"];
    const double self_opt_fg = means[p + "/fgkaslr/none-optimized (self)"];
    const double self_lz4_fg = means[p + "/fgkaslr/lz4 (self)"];
    std::printf(
        "  %-7s in-monitor KASLR: %+5.1f%% vs baseline; %5.1f%% faster than none-optimized; "
        "%5.1f%% faster than lz4\n",
        p.c_str(), (im_kaslr - baseline) / baseline * 100, (self_opt - im_kaslr) / im_kaslr * 100,
        (self_lz4 - im_kaslr) / im_kaslr * 100);
    std::printf(
        "  %-7s in-monitor FGKASLR: %.2fx baseline; %5.1f%% faster than none-optimized; "
        "%5.1f%% faster than lz4\n",
        p.c_str(), im_fg / baseline, (self_opt_fg - im_fg) / im_fg * 100,
        (self_lz4_fg - im_fg) / im_fg * 100);
  }
  std::printf(
      "\npaper: in-monitor KASLR beats none-optimized by 96%%/21%%/9%% (lupine/aws/ubuntu)\n"
      "and adds only 6.3%%/3.7%%/2.2%% over the baseline; in-monitor FGKASLR beats\n"
      "none-optimized by 93%%/25%%/2%% but costs 2.33x/2.15x/1.84x the baseline.\n"
      "(Those paper percentages fold in a ~10-100ms Linux Boot phase measured on real\n"
      "hardware; compare the monitor/setup/decomp columns for the method-specific costs.)\n");
  return 0;
}
