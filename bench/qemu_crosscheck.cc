// QEMU cross-check (paper §2.2): the bzImage-vs-direct experiment repeated
// on a second monitor profile. The paper reports that with warm caches QEMU
// shrinks lupine's direct-boot advantage to 2% (vs 36% on Firecracker)
// because the hypervisor's fixed costs (board init, firmware) dominate small
// kernels; the conclusion — uncompressed+cached is the fastest way to boot —
// holds on both monitors.
//
//   $ ./qemu_crosscheck [--reps=10] [--scale=0.25]
#include "bench/common.h"

using namespace imk;         // NOLINT
using namespace imk::bench;  // NOLINT

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  std::printf("QEMU cross-check: direct vs bzImage(lz4), warm cache, %u boots each\n\n",
              options.reps);

  TextTable table({"monitor", "kernel", "image", "total ms", "monitor ms", "pre-kernel ms"});
  struct Gap {
    double direct;
    double bz;
  };
  for (MonitorKind monitor : {MonitorKind::kFirecracker, MonitorKind::kQemuLike}) {
    const char* monitor_name =
        monitor == MonitorKind::kFirecracker ? "firecracker" : "qemu-like";
    std::printf("%s advantage of direct boot over bzImage:\n", monitor_name);
    for (KernelProfile profile : kAllProfiles) {
      Storage storage;
      KernelBuildInfo info =
          InstallKernel(storage, profile, RandoMode::kNone, options.scale, "vmlinux");
      InstallBzImage(storage, info, "lz4", LoaderKind::kStandard, "bz-lz4");
      Gap gap{};
      for (bool direct : {true, false}) {
        MicroVmConfig config;
        config.monitor = monitor;
        config.mem_size_bytes = 256ull << 20;
        config.kernel_image = direct ? "vmlinux" : "bz-lz4";
        config.boot_mode = direct ? BootMode::kDirect : BootMode::kBzImage;
        config.seed = 1;
        BootStats stats = RepeatBoot(storage, config, info, options.warmup, options.reps);
        (direct ? gap.direct : gap.bz) = stats.total_ms.mean();
        const double pre_kernel = stats.total_ms.mean() - stats.linux_ms.mean();
        table.AddRow({monitor_name, std::string(ProfileName(profile)),
                      direct ? "vmlinux" : "bzimage-lz4", TextTable::Fmt(stats.total_ms.mean()),
                      TextTable::Fmt(stats.monitor_ms.mean()), TextTable::Fmt(pre_kernel)});
      }
      std::printf("  %-7s direct faster by %5.1f%%\n", ProfileName(profile),
                  (gap.bz - gap.direct) / gap.direct * 100);
    }
    std::printf("\n");
  }
  table.Print();
  std::printf(
      "\npaper: on QEMU a direct boot beats a bzImage by 2%%/33%%/17%% (lupine/aws/ubuntu)\n"
      "vs 36%%/33%%/20%% on Firecracker — the fixed hypervisor/firmware cost compresses\n"
      "the gap for small kernels, but direct+cached stays the fastest way to boot.\n");
  return 0;
}
