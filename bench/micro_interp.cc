// micro_interp — guest-MIPS of the interpreter's two execution engines over
// a full direct boot (nokaslr, so the kernel image stays template-aliased
// and the shared decode tier engages):
//
//   legacy   the per-instruction switch loop (fetch/translate/decode every
//            dynamic instruction) — the measurement baseline
//   cold     the predecoded block engine with a VM-private cache: every
//            block is decoded by the measured boot itself
//   warm     the block engine against a SharedBlockCache another boot
//            already populated — the fleet steady state, where a VM grabs
//            finished decodes and pays dispatch only
//
// MIPS uses the boot timeline's measured Linux-boot phase (guest execution
// wall time only, monitor work excluded). Writes BENCH_interp.json
// (--out=FILE); check_bench_json.sh guards the recorded speedups.
#include <cstring>
#include <string>

#include "bench/common.h"
#include "src/isa/block_cache.h"
#include "src/vmm/image_template.h"

namespace imk {
namespace {

struct Lane {
  Summary mips;
  ExecStats last;  // guest stats of the lane's final boot
};

int Run(int argc, char** argv) {
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  std::string out_path = "BENCH_interp.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  std::printf("micro_interp: scale=%.3g reps=%u warmup=%u\n\n", opts.scale, opts.reps,
              opts.warmup);

  Storage storage;
  KernelBuildInfo kernel =
      bench::InstallKernel(storage, KernelProfile::kAws, RandoMode::kNone, opts.scale, "vmlinux");
  ImageTemplateCache cache;
  SharedBlockCache shared;  // populated by the warm-up boots, reused across reps

  auto boot_once = [&](bool block_cache, SharedBlockCache* tier, Lane* lane) -> Result<double> {
    MicroVmConfig config;
    config.kernel_image = "vmlinux";
    config.boot_mode = BootMode::kDirect;
    config.rando = RandoMode::kNone;
    config.seed = 1;
    config.template_cache = &cache;
    config.use_block_cache = block_cache;
    config.shared_block_cache = tier;
    MicroVm vm(storage, config);
    auto report = vm.Boot();
    if (!report.ok()) {
      return report.status();
    }
    if (report->init_checksum != kernel.expected_checksum) {
      return Status(ErrorCode::kInternal, "init checksum mismatch");
    }
    const uint64_t guest_ns = report->timeline.measured_ns(BootPhase::kLinuxBoot);
    if (guest_ns == 0) {
      return Status(ErrorCode::kInternal, "zero guest time");
    }
    lane->last = report->guest_stats;
    // Million instructions per second of simulated guest work.
    return static_cast<double>(report->guest_stats.instructions) * 1e3 /
           static_cast<double>(guest_ns);
  };

  Lane legacy;
  legacy.mips = bench::CheckOk(Repeat(opts.warmup, opts.reps,
                                      [&] { return boot_once(false, nullptr, &legacy); }),
                               "legacy lane");
  Lane cold;
  cold.mips = bench::CheckOk(
      Repeat(opts.warmup, opts.reps, [&] { return boot_once(true, nullptr, &cold); }),
      "cold lane");
  Lane warm;  // the warm-up reps fill `shared`; measured reps then grab from it
  warm.mips = bench::CheckOk(
      Repeat(opts.warmup, opts.reps, [&] { return boot_once(true, &shared, &warm); }),
      "warm lane");

  const double cold_speedup = legacy.mips.mean() > 0 ? cold.mips.mean() / legacy.mips.mean() : 0;
  const double warm_speedup = legacy.mips.mean() > 0 ? warm.mips.mean() / legacy.mips.mean() : 0;

  TextTable table({"engine", "MIPS p50", "MIPS mean", "speedup", "blk hits", "blk misses",
                   "shared", "private"});
  table.AddRow({"legacy", TextTable::Fmt(legacy.mips.percentile(50), 1),
                TextTable::Fmt(legacy.mips.mean(), 1), "1.00", "0", "0", "0", "0"});
  table.AddRow({"block cold", TextTable::Fmt(cold.mips.percentile(50), 1),
                TextTable::Fmt(cold.mips.mean(), 1), TextTable::Fmt(cold_speedup),
                std::to_string(cold.last.block_cache_hits),
                std::to_string(cold.last.block_cache_misses),
                std::to_string(cold.last.blocks_shared),
                std::to_string(cold.last.blocks_private)});
  table.AddRow({"block warm", TextTable::Fmt(warm.mips.percentile(50), 1),
                TextTable::Fmt(warm.mips.mean(), 1), TextTable::Fmt(warm_speedup),
                std::to_string(warm.last.block_cache_hits),
                std::to_string(warm.last.block_cache_misses),
                std::to_string(warm.last.blocks_shared),
                std::to_string(warm.last.blocks_private)});
  table.Print();

  SharedBlockCache::Stats tier = shared.stats();
  std::printf(
      "\nwarm tier: %llu blocks resident, %llu grabs hit / %llu missed, %llu stale replaced, "
      "%llu tables / %llu adopted\n"
      // A pure-hit lane on this boot workload tops out around 2.7x the switch
      // loop (<3 guest insns per dynamic dispatch), so the guarded targets are
      // the achievable ones; see DESIGN.md section 13.
      "targets: cold >= 0.9x legacy (%s at %.2fx), warm >= 1.4x legacy (%s at %.2fx)\n",
      static_cast<unsigned long long>(tier.blocks), static_cast<unsigned long long>(tier.hits),
      static_cast<unsigned long long>(tier.misses),
      static_cast<unsigned long long>(tier.stale_replaced),
      static_cast<unsigned long long>(tier.tables),
      static_cast<unsigned long long>(tier.table_grabs),
      cold_speedup >= 0.9 ? "PASS" : "MISS", cold_speedup,
      warm_speedup >= 1.4 ? "PASS" : "MISS", warm_speedup);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"micro_interp\",\n"
      "  \"scale\": %g,\n"
      "  \"reps\": %u,\n"
      "  \"guest_instructions\": %llu,\n"
      "  \"legacy_mips_mean\": %.3f,\n"
      "  \"cold_mips_mean\": %.3f,\n"
      "  \"warm_mips_mean\": %.3f,\n"
      "  \"cold_speedup\": %.3f,\n"
      "  \"warm_speedup\": %.3f,\n"
      "  \"cold_block_cache\": { \"hits\": %llu, \"misses\": %llu, \"private\": %llu },\n"
      "  \"warm_block_cache\": { \"hits\": %llu, \"misses\": %llu, \"shared\": %llu },\n"
      "  \"shared_tier\": { \"blocks\": %llu, \"hits\": %llu, \"misses\": %llu,\n"
      "                    \"stale_replaced\": %llu, \"tables\": %llu, \"table_grabs\": %llu }\n"
      "}\n",
      opts.scale, opts.reps, static_cast<unsigned long long>(legacy.last.instructions),
      legacy.mips.mean(), cold.mips.mean(), warm.mips.mean(), cold_speedup, warm_speedup,
      static_cast<unsigned long long>(cold.last.block_cache_hits),
      static_cast<unsigned long long>(cold.last.block_cache_misses),
      static_cast<unsigned long long>(cold.last.blocks_private),
      static_cast<unsigned long long>(warm.last.block_cache_hits),
      static_cast<unsigned long long>(warm.last.block_cache_misses),
      static_cast<unsigned long long>(warm.last.blocks_shared),
      static_cast<unsigned long long>(tier.blocks), static_cast<unsigned long long>(tier.hits),
      static_cast<unsigned long long>(tier.misses),
      static_cast<unsigned long long>(tier.stale_replaced),
      static_cast<unsigned long long>(tier.tables),
      static_cast<unsigned long long>(tier.table_grabs));
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace imk

int main(int argc, char** argv) { return imk::Run(argc, argv); }
