// Figure 10 reproduction: guest memory size vs boot time. The monitor
// portion must be flat in guest memory; the Linux Boot portion grows
// linearly (memory init); randomization must not change either trend.
//
//   $ ./fig10_guest_memory [--reps=5] [--scale=0.25]
#include "bench/common.h"

using namespace imk;         // NOLINT
using namespace imk::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  if (options.reps > 8) {
    options.reps = 8;  // 2 GiB guests are expensive to allocate repeatedly
  }
  std::printf("Figure 10: guest memory impact on boot time (%u boots each)\n\n", options.reps);

  const uint64_t kSizes[] = {256ull << 20, 512ull << 20, 1ull << 30, 2ull << 30};

  TextTable table({"kernel", "mode", "guest mem", "total ms", "monitor ms", "linux ms"});
  for (KernelProfile profile : kAllProfiles) {
    for (RandoMode rando : {RandoMode::kNone, RandoMode::kKaslr, RandoMode::kFgKaslr}) {
      Storage storage;
      KernelBuildInfo info = InstallKernel(storage, profile, rando, options.scale, "vmlinux");
      double monitor_at_min = 0;
      double monitor_at_max = 0;
      for (uint64_t mem : kSizes) {
        MicroVmConfig config;
        config.mem_size_bytes = mem;
        config.kernel_image = "vmlinux";
        if (rando != RandoMode::kNone) {
          config.relocs_image = "vmlinux.relocs";
        }
        config.rando = rando;
        config.seed = 21;
        BootStats stats = RepeatBoot(storage, config, info, 1, options.reps);
        table.AddRow({info.config.Name(), RandoModeName(rando), HumanSize(mem),
                      TextTable::Fmt(stats.total_ms.mean()),
                      TextTable::Fmt(stats.monitor_ms.mean()),
                      TextTable::Fmt(stats.linux_ms.mean())});
        if (mem == kSizes[0]) {
          monitor_at_min = stats.monitor_ms.mean();
        }
        if (mem == kSizes[3]) {
          monitor_at_max = stats.monitor_ms.mean();
        }
      }
      std::printf("  %s/%s: monitor time 256M->2G change: %+.2f ms (expected ~0)\n",
                  ProfileName(profile), RandoModeName(rando), monitor_at_max - monitor_at_min);
    }
  }
  std::printf("\n");
  table.Print();
  std::printf("\npaper: the In-Monitor portion does not depend on guest memory; the Linux\n"
              "Boot portion grows linearly with it, identically with and without in-monitor\n"
              "randomization.\n");
  return 0;
}
