// Figure 3 reproduction: compression bake-off — overall boot time for
// bzImages compressed with each of the six schemes, per kernel profile,
// with warm caches. The paper's conclusion: LZ4 boots fastest.
//
//   $ ./fig3_compression_bakeoff [--reps=10] [--scale=0.1]
#include "bench/common.h"

#include "src/compress/registry.h"

using namespace imk;         // NOLINT
using namespace imk::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  // Compression of large synthetic kernels with the slow codecs dominates
  // setup; a reduced default scale keeps the bake-off quick while preserving
  // relative decompression costs.
  bool scale_given = false;
  for (int i = 1; i < argc; ++i) {
    scale_given |= std::string(argv[i]).rfind("--scale=", 0) == 0;
  }
  if (!scale_given) {
    options.scale = 0.1;
  }
  if (options.reps > 10) {
    options.reps = 10;
  }

  std::printf("Figure 3: compression bake-off (kaslr kernels, warm cache, %u boots each)\n\n",
              options.reps);

  TextTable table({"kernel", "codec", "bzimage", "total ms", "min", "max", "decomp ms"});
  std::vector<std::pair<std::string, double>> bars;
  for (KernelProfile profile : kAllProfiles) {
    Storage storage;
    KernelBuildInfo info =
        InstallKernel(storage, profile, RandoMode::kKaslr, options.scale, "vmlinux");
    for (const std::string& codec : BakeoffCodecNames()) {
      const std::string image = "bz-" + codec;
      InstallBzImage(storage, info, codec, LoaderKind::kStandard, image);

      MicroVmConfig config;
      config.mem_size_bytes = 256ull << 20;
      config.kernel_image = image;
      config.boot_mode = BootMode::kBzImage;
      config.rando = RandoMode::kKaslr;
      config.seed = 1;
      BootStats stats = RepeatBoot(storage, config, info, options.warmup, options.reps);
      table.AddRow({std::string(ProfileName(profile)), codec,
                    HumanSize(*storage.SizeOf(image)), TextTable::Fmt(stats.total_ms.mean()),
                    TextTable::Fmt(stats.total_ms.min()), TextTable::Fmt(stats.total_ms.max()),
                    TextTable::Fmt(stats.decompress_ms.mean())});
      if (profile == KernelProfile::kAws) {
        bars.push_back({codec, stats.total_ms.mean()});
      }
    }
  }
  table.Print();
  std::printf("\naws profile, total boot time by codec:\n");
  PrintBars(bars, "ms");
  std::printf("\nExpected shape (paper): LZ4 has the lowest overall boot time; bzip2/xz the\n"
              "highest; gzip/zstd/lzo in between. Ratio vs decomp speed trade-offs visible in\n"
              "the bzimage size column.\n");
  return 0;
}
