// storm_boot — boot-storm fleet bench for the zero-copy CoW guest memory
// (the paper's §7 serverless fleet scenario: one host, one kernel image,
// hundreds of microVM launches).
//
// Per randomization policy, three lanes:
//   serial baseline  launch work one VM at a time with the un-amortized
//                    per-boot pipeline (template rebuilt every boot) — what
//                    the monitor paid per VM before the fleet pipeline
//   launch storm     --vms launches across --threads workers against one
//                    warm shared ImageTemplateCache with zero-copy CoW
//                    mapping — the optimized monitor path
//   full storm       complete boots (guest init executed, checksum
//                    verified), measuring per-boot latency p50/p99 and the
//                    per-VM resident cost: privately materialized (dirty)
//                    image frames vs frames still aliased to the template
//
// Launch throughput counts monitor-side work only: guest init burns the
// VM's own vCPU time in a real fleet, and the interpreter simulating it on
// the host would drown the monitor numbers (DESIGN.md §9).
//
// Targets (see ISSUE.md, scale 1.0): kaslr per-VM dirty image bytes <= 50%
// of the image, warm launch storm >= 2x the serial baseline at 4 threads.
// Writes BENCH_storm.json (--out=FILE).
// A fourth lane, fgkaslr_pooled, re-runs the fgkaslr launch storm against a
// prefilled ahead-of-time LayoutPool (depth == --vms): every launch grabs a
// fully pre-randomized image and zero-copy maps it, so the randomization
// pipeline runs off the critical path on the background refill executor.
// Records launch p50/p99, pool hit rate, refill overlap, and the per-VM
// dirty image fraction (ISSUE.md targets: >= 10x the serial fgkaslr
// baseline, dirty <= 5%).
// A fifth lane, storm_faults, re-runs the kaslr full storm under a
// committed FaultPlan through the boot supervisor and records what fleet
// recovery costs: per-outcome tallies and the throughput overhead vs the
// fault-free full storm.
// A sixth lane, storm_churn, is the long-running-host drill: every VM slot
// is launched-and-halted kChurnCycles times against the same shared caches
// under a fleet MemGovernor whose budget is sized to pressure (soft
// watermark below the concurrent working set), recording per-category
// peak/steady resident bytes, the reclamation the ladder performed, and —
// after the storm — a forced ReclaimAll drill that evicts the template
// cache and proves a same-seed re-boot rebuilds a bit-identical kernel
// region through the single-flight miss path.
// A seventh lane, traced, re-runs the kaslr full storm with the imktrace
// tracer live against an identical untraced control (interleaved,
// best-of-2 per side) and records the throughput overhead of tracing
// (guarded at <= 3%) plus a fleet-scale determinism check: both storms
// keep their layouts and every slide/digest must match bit-for-bit.
#include <cstring>
#include <string>
#include <thread>

#include "bench/common.h"
#include "src/base/fault_injection.h"
#include "src/trace/trace.h"
#include "src/vmm/boot_storm.h"

namespace imk {
namespace {

struct ModeRow {
  const char* name = "";
  StormStats serial;       // launch-only, cold (per-boot parse), 1 thread
  StormStats launch;       // launch-only, warm shared cache, --threads
  StormStats full;         // full boots, block engine + shared decode cache
  StormStats full_legacy;  // full boots, legacy per-instruction interpreter
  double launch_speedup() const {
    return serial.boots_per_sec() > 0 ? launch.boots_per_sec() / serial.boots_per_sec() : 0;
  }
  // Full-boot throughput win of the predecoded block engine over the legacy
  // switch loop (same fleet, same kernels — only the engine differs).
  double interp_speedup() const {
    return full_legacy.boots_per_sec() > 0 ? full.boots_per_sec() / full_legacy.boots_per_sec()
                                           : 0;
  }
};

int Run(int argc, char** argv) {
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  std::string out_path = "BENCH_storm.json";
  uint32_t vms = 16;
  uint32_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--vms=", 6) == 0) {
      vms = static_cast<uint32_t>(std::atoi(argv[i] + 6));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<uint32_t>(std::atoi(argv[i] + 10));
    }
  }
  std::printf("storm_boot: scale=%.3g vms=%u threads=%u (host cores: %u)\n\n", opts.scale, vms,
              threads, std::thread::hardware_concurrency());

  const RandoMode modes[] = {RandoMode::kNone, RandoMode::kKaslr, RandoMode::kFgKaslr};
  ModeRow rows[3];
  Bytes kaslr_vmlinux;  // kept for the storm_faults lane
  Bytes kaslr_relocs;
  uint64_t kaslr_checksum = 0;
  Bytes fg_vmlinux;  // kept for the fgkaslr_pooled lane
  Bytes fg_relocs;
  uint64_t fg_checksum = 0;
  TextTable table({"policy", "serial launch/s", "storm launch/s", "speedup", "boot p50 ms",
                   "boot p99 ms", "dirty image %", "resident MiB/VM", "full boots/s", "interp x",
                   "blk shared %"});

  for (size_t m = 0; m < 3; ++m) {
    const RandoMode rando = modes[m];
    rows[m].name = RandoModeName(rando);
    KernelBuildInfo info = bench::CheckOk(
        BuildKernel(KernelConfig::Make(KernelProfile::kAws, rando, opts.scale)), "BuildKernel");
    const Bytes relocs_blob = info.relocs.empty() ? Bytes() : SerializeRelocs(info.relocs);

    ImageTemplateCache cache;
    StormOptions storm_opts;
    storm_opts.vms = vms;
    storm_opts.rando = rando;
    storm_opts.expected_checksum = info.expected_checksum;
    storm_opts.cache = &cache;

    // Serial baseline: one at a time, template rebuilt per boot.
    storm_opts.launch_only = true;
    storm_opts.use_template_cache = false;
    storm_opts.threads = 1;
    rows[m].serial = bench::CheckOk(
        RunBootStorm(ByteSpan(info.vmlinux), ByteSpan(relocs_blob), storm_opts), "serial");

    // Warm launch storm.
    storm_opts.use_template_cache = true;
    storm_opts.threads = threads;
    rows[m].launch = bench::CheckOk(
        RunBootStorm(ByteSpan(info.vmlinux), ByteSpan(relocs_blob), storm_opts), "launch storm");

    // Full boots, legacy interpreter: the decode-cache ablation baseline.
    storm_opts.launch_only = false;
    storm_opts.use_block_cache = false;
    rows[m].full_legacy = bench::CheckOk(
        RunBootStorm(ByteSpan(info.vmlinux), ByteSpan(relocs_blob), storm_opts), "legacy storm");

    // Full boots, block engine + storm-wide shared decode cache: guest init
    // + checksum + density + the decode-cache sharing census.
    storm_opts.use_block_cache = true;
    rows[m].full = bench::CheckOk(
        RunBootStorm(ByteSpan(info.vmlinux), ByteSpan(relocs_blob), storm_opts), "full storm");

    if (rando == RandoMode::kKaslr) {
      kaslr_vmlinux = info.vmlinux;
      kaslr_relocs = relocs_blob;
      kaslr_checksum = info.expected_checksum;
    } else if (rando == RandoMode::kFgKaslr) {
      fg_vmlinux = info.vmlinux;
      fg_relocs = relocs_blob;
      fg_checksum = info.expected_checksum;
    }

    table.AddRow({rows[m].name, TextTable::Fmt(rows[m].serial.boots_per_sec(), 1),
                  TextTable::Fmt(rows[m].launch.boots_per_sec(), 1),
                  TextTable::Fmt(rows[m].launch_speedup()),
                  TextTable::Fmt(rows[m].full.boot_ms.percentile(50), 1),
                  TextTable::Fmt(rows[m].full.boot_ms.percentile(99), 1),
                  TextTable::Fmt(rows[m].full.image_dirty_fraction() * 100, 1),
                  TextTable::Fmt(rows[m].full.resident_mb.mean(), 1),
                  TextTable::Fmt(rows[m].full.boots_per_sec(), 1),
                  TextTable::Fmt(rows[m].interp_speedup()),
                  TextTable::Fmt(rows[m].full.block_share_rate() * 100, 1)});
  }
  table.Print();

  // ---- fgkaslr_pooled lane: the fgkaslr launch storm against a prefilled
  // ahead-of-time layout pool. Depth == vms so (absent refill faults) every
  // measured launch is a pool hit: the monitor's launch work collapses to a
  // template-cache lookup plus a zero-copy map of a pre-randomized image,
  // while the refill executor renders replacements concurrently (the
  // pool_rendered_during figure is exactly that overlapped work).
  StormStats pooled;
  {
    ImageTemplateCache pool_cache;
    StormOptions pool_opts;
    pool_opts.vms = vms;
    pool_opts.threads = threads;
    pool_opts.rando = RandoMode::kFgKaslr;
    pool_opts.expected_checksum = fg_checksum;
    pool_opts.cache = &pool_cache;
    pool_opts.launch_only = true;
    pool_opts.layout_pool_depth = vms;
    pooled = bench::CheckOk(RunBootStorm(ByteSpan(fg_vmlinux), ByteSpan(fg_relocs), pool_opts),
                            "pooled storm");
  }
  const double fg_serial_bps = rows[2].serial.boots_per_sec();
  const double pooled_speedup =
      fg_serial_bps > 0 ? pooled.boots_per_sec() / fg_serial_bps : 0.0;
  std::printf(
      "\nfgkaslr_pooled (launch-only, pool depth=%u):\n"
      "  %.1f launches/s = %.1fx the serial fgkaslr baseline (%.1fx inline storm)\n"
      "  launch p50 %.3f ms p99 %.3f ms; pool hits %llu misses %llu (hit rate %.1f%%)\n"
      "  refill overlap: %llu layouts rendered during the storm; dirty image %.2f%%/VM\n",
      vms, pooled.boots_per_sec(), pooled_speedup,
      rows[2].launch.boots_per_sec() > 0 ? pooled.boots_per_sec() / rows[2].launch.boots_per_sec()
                                         : 0.0,
      pooled.boot_ms.percentile(50), pooled.boot_ms.percentile(99),
      static_cast<unsigned long long>(pooled.pool_hits),
      static_cast<unsigned long long>(pooled.pool_misses), pooled.pool_hit_rate() * 100,
      static_cast<unsigned long long>(pooled.pool_rendered_during),
      pooled.image_dirty_fraction() * 100);

  // ---- storm_faults lane: the kaslr full storm under a committed fault
  // plan, every boot supervised. The spec and seed are pinned so the failure
  // schedule (and therefore the recorded recovery work) reproduces.
  const char* kFaultSpec =
      "loader.reloc:error:p=0.08;template.cache_hit:corrupt:p=0.05:bytes=4";
  const uint64_t kFaultSeed = 7;
  StormStats faulted;
  {
    FaultPlan plan = bench::CheckOk(FaultPlan::Parse(kFaultSpec, kFaultSeed), "fault plan");
    ImageTemplateCache fault_cache;
    StormOptions fault_opts;
    fault_opts.vms = vms;
    fault_opts.threads = threads;
    fault_opts.rando = RandoMode::kKaslr;
    fault_opts.expected_checksum = kaslr_checksum;
    fault_opts.cache = &fault_cache;
    fault_opts.supervise = true;
    fault_opts.max_retries = 2;
    fault_opts.watchdog_wall_ms = 10000;  // generous: records the knob, never trips
    fault_opts.degrade = DegradePolicy::kLadder;
    FaultScope faults(plan);
    faulted = bench::CheckOk(
        RunBootStorm(ByteSpan(kaslr_vmlinux), ByteSpan(kaslr_relocs), fault_opts), "fault storm");
  }
  const StormStats::OutcomeTally& tally = faulted.outcomes;
  const double clean_bps = rows[1].full.boots_per_sec();
  const double faulted_bps = faulted.boots_per_sec();
  const double recovery_overhead_pct =
      clean_bps > 0 && faulted_bps > 0 ? (clean_bps / faulted_bps - 1.0) * 100.0 : 0.0;
  std::printf(
      "\nstorm_faults (kaslr, supervised, spec=\"%s\" seed=%llu):\n"
      "  outcomes: %u first-try, %u retried, %u degraded, %u failed (%u/%u accounted)\n"
      "  attempts=%u watchdog_trips=%u quarantines=%llu faults_fired=%llu\n"
      "  throughput %.1f boots/s vs clean %.1f (recovery overhead %.1f%%)\n",
      kFaultSpec, static_cast<unsigned long long>(kFaultSeed), tally.ok_first_try,
      tally.ok_retried, tally.ok_degraded, tally.failed, tally.accounted(), faulted.vms,
      tally.attempts_total, tally.watchdog_trips,
      static_cast<unsigned long long>(tally.cache_quarantines),
      static_cast<unsigned long long>(tally.faults_injected), faulted_bps, clean_bps,
      recovery_overhead_pct);

  // ---- storm_churn lane: N slots x K launch/halt cycles, governed. The
  // budget provisions the lane's CONFIGURED working set — the concurrent
  // guest frames, the depth-`vms` ahead-of-time pool (a rendered layout
  // holds a full image copy), and a few image-sized shared tiers
  // (templates, published decode tables) — with headroom, because
  // admission is a gate, not a reservation. What the governor must then
  // prevent is growth BEYOND the provisioned set: every churned fgkaslr
  // launch publishes a unique decode table, which ungoverned would dwarf
  // this budget over vms*cycles launches. The soft watermark at 50% sits
  // below the steady working set, so the ladder runs throughout. The
  // cache and governor are external to the storm so the post-storm
  // reclamation drill can operate on them.
  const uint32_t kChurnCycles = 8;
  const uint64_t churn_per_vm_bytes = static_cast<uint64_t>(
      rows[2].full.resident_mb.mean() * 1024.0 * 1024.0);
  const uint64_t churn_image_bytes = rows[2].full.image_bytes;
  const uint64_t churn_budget =
      churn_per_vm_bytes * threads * 3 / 2 +
      churn_image_bytes * (vms + 8) * 5 / 4 + (64ull << 20);
  MemGovernorOptions churn_gov_opts;
  churn_gov_opts.budget_bytes = churn_budget;
  churn_gov_opts.soft_pct = 0.5;
  MemGovernor churn_governor(churn_gov_opts);
  ImageTemplateCache churn_cache;
  StormStats churn;
  {
    StormOptions churn_opts;
    churn_opts.vms = vms;
    churn_opts.threads = threads;
    churn_opts.rando = RandoMode::kFgKaslr;
    churn_opts.expected_checksum = fg_checksum;
    churn_opts.cache = &churn_cache;
    churn_opts.layout_pool_depth = vms;
    churn_opts.churn_cycles = kChurnCycles;
    churn_opts.governor = &churn_governor;
    churn = bench::CheckOk(RunBootStorm(ByteSpan(fg_vmlinux), ByteSpan(fg_relocs), churn_opts),
                           "churn storm");
  }
  const MemGovernor::Stats churn_mem =
      churn.mem.has_value() ? *churn.mem : churn_governor.stats();
  // Post-storm reclamation drill: boot once, force every tier dry, boot the
  // SAME seed again through the single-flight template rebuild, and demand
  // the randomized kernel region comes back bit-identical.
  uint64_t drill_evictions = 0;
  uint64_t drill_shed_bytes = 0;
  bool rebuild_identical = false;
  {
    Storage drill_storage;
    drill_storage.Put("vmlinux", fg_vmlinux);
    drill_storage.Put("vmlinux.relocs", fg_relocs);
    MicroVmConfig drill_config;
    drill_config.kernel_image = "vmlinux";
    drill_config.relocs_image = "vmlinux.relocs";
    drill_config.rando = RandoMode::kFgKaslr;
    drill_config.seed = 4242;
    drill_config.template_cache = &churn_cache;
    drill_config.mem_governor = &churn_governor;
    Bytes region_before;
    uint64_t checksum_before = 0;
    {
      MicroVm vm(drill_storage, drill_config);
      BootReport report = bench::CheckOk(vm.Boot(), "churn drill boot");
      checksum_before = report.init_checksum;
      region_before = bench::CheckOk(vm.KernelRegion(), "churn drill region");
    }
    const uint64_t evictions_before = churn_cache.reclaim_evictions();
    churn_governor.RegisterReclaimable(&churn_cache, /*priority=*/2);
    drill_shed_bytes = churn_governor.ReclaimAll();
    churn_governor.UnregisterReclaimable(&churn_cache);
    drill_evictions = churn_cache.reclaim_evictions() - evictions_before;
    Bytes region_after;
    uint64_t checksum_after = 0;
    {
      MicroVm vm(drill_storage, drill_config);
      BootReport report = bench::CheckOk(vm.Boot(), "churn drill re-boot");
      checksum_after = report.init_checksum;
      region_after = bench::CheckOk(vm.KernelRegion(), "churn drill re-region");
    }
    rebuild_identical = region_before == region_after && checksum_before == checksum_after &&
                        checksum_before == fg_checksum;
  }
  const bool churn_peak_ok = churn_mem.high_water_total_bytes <= churn_mem.hard_watermark_bytes;
  const bool churn_shed_ok = churn_mem.tier_sheds > 0;
  std::printf(
      "\nstorm_churn (fgkaslr, %u slots x %u cycles = %u launches, budget %.0f MiB soft %.0f):\n"
      "  %.1f boots/s; peak resident %.1f MiB (steady %.1f); "
      "%u rejected-mem launches, %llu admit waits\n"
      "  reclaim: %llu ladder runs shed %.1f MiB over %llu tiers "
      "(pool layouts flushed: %llu; decode retire + template evict in tiers)\n"
      "  drill: ReclaimAll shed %.1f MiB, %llu template evictions; "
      "same-seed re-boot bit-identical: %s\n",
      vms, kChurnCycles, churn.launches, static_cast<double>(churn_budget) / (1 << 20),
      static_cast<double>(churn_mem.soft_watermark_bytes) / (1 << 20), churn.boots_per_sec(),
      static_cast<double>(churn_mem.high_water_total_bytes) / (1 << 20),
      static_cast<double>(churn_mem.current_total_bytes) / (1 << 20),
      churn.outcomes.rejected_mem,
      static_cast<unsigned long long>(churn_mem.admit_waits),
      static_cast<unsigned long long>(churn_mem.reclaim_runs),
      static_cast<double>(churn_mem.reclaimed_bytes) / (1 << 20),
      static_cast<unsigned long long>(churn_mem.tier_sheds),
      static_cast<unsigned long long>(churn.pool_shed),
      static_cast<double>(drill_shed_bytes) / (1 << 20),
      static_cast<unsigned long long>(drill_evictions), rebuild_identical ? "YES" : "NO");

  // ---- traced lane: the kaslr full storm with the imktrace tracer live,
  // against an identical untraced control. Runs interleave (control, traced,
  // control, traced) and each side keeps its best-of-2 throughput so
  // scheduler noise stays out of the overhead figure; the guard is <= 3%.
  // Both sides keep their layouts: tracing must not perturb a single slide
  // — the determinism contract of DESIGN.md section 15, checked at fleet
  // scale rather than per boot.
  double traced_bps = 0.0;
  double untraced_bps = 0.0;
  uint64_t trace_events = 0;
  uint64_t trace_dropped = 0;
  uint64_t trace_threads = 0;
  bool trace_identical = false;
  {
    std::vector<LayoutIdentity> untraced_layouts;
    std::vector<LayoutIdentity> traced_layouts;
    auto run_lane = [&](bool traced) {
      ImageTemplateCache lane_cache;
      StormOptions lane_opts;
      lane_opts.vms = vms;
      lane_opts.threads = threads;
      lane_opts.rando = RandoMode::kKaslr;
      lane_opts.expected_checksum = kaslr_checksum;
      lane_opts.cache = &lane_cache;
      lane_opts.keep_layouts = true;
      if (traced) {
        trace::Tracer::Instance().Start();
      }
      StormStats lane_stats =
          bench::CheckOk(RunBootStorm(ByteSpan(kaslr_vmlinux), ByteSpan(kaslr_relocs), lane_opts),
                         traced ? "traced storm" : "untraced control storm");
      const double bps = lane_stats.boots_per_sec();
      if (traced) {
        trace_events = trace::Tracer::Instance().Collect().size();
        trace_dropped = trace::Tracer::Instance().dropped();
        trace_threads = trace::Tracer::Instance().thread_count();
        trace::Tracer::Instance().Stop();
        traced_layouts = std::move(lane_stats.layouts);
        if (bps > traced_bps) {
          traced_bps = bps;
        }
      } else {
        untraced_layouts = std::move(lane_stats.layouts);
        if (bps > untraced_bps) {
          untraced_bps = bps;
        }
      }
    };
    for (int round = 0; round < 2; ++round) {
      run_lane(/*traced=*/false);
      run_lane(/*traced=*/true);
    }
    trace_identical = untraced_layouts.size() == traced_layouts.size() && !untraced_layouts.empty();
    for (size_t i = 0; trace_identical && i < untraced_layouts.size(); ++i) {
      trace_identical = untraced_layouts[i].virt_slide == traced_layouts[i].virt_slide &&
                        untraced_layouts[i].phys_load_addr == traced_layouts[i].phys_load_addr &&
                        untraced_layouts[i].fg_digest == traced_layouts[i].fg_digest;
    }
  }
  const double trace_overhead_pct =
      untraced_bps > 0 && traced_bps > 0 ? (untraced_bps / traced_bps - 1.0) * 100.0 : 0.0;
  const bool trace_overhead_ok = trace_overhead_pct <= 3.0;
  std::printf(
      "\ntraced (kaslr full storm, tracer live, best-of-2 vs untraced control):\n"
      "  %.1f boots/s traced vs %.1f untraced (overhead %.2f%%)\n"
      "  %llu events across %llu threads, %llu dropped; layouts bit-identical: %s\n",
      traced_bps, untraced_bps, trace_overhead_pct,
      static_cast<unsigned long long>(trace_events),
      static_cast<unsigned long long>(trace_threads),
      static_cast<unsigned long long>(trace_dropped), trace_identical ? "YES" : "NO");

  const double kaslr_dirty = rows[1].full.image_dirty_fraction();
  const bool dirty_ok = kaslr_dirty <= 0.5;
  const bool speedup_ok = rows[1].launch_speedup() >= 2.0;
  std::printf(
      "\ntargets (kaslr): dirty image bytes %.1f%% (<=50%% %s), "
      "warm launch storm %.2fx serial baseline (>=2x %s)\n",
      kaslr_dirty * 100, dirty_ok ? "PASS" : "MISS", rows[1].launch_speedup(),
      speedup_ok ? "PASS" : "MISS");
  // Decode-cache ablation summary: engine speedup per policy, and the
  // sharing census read next to the page-sharing one. Thresholds are the
  // achievable ones for this workload (pure-hit dispatch tops out ~2.7x the
  // switch loop; a full boot also pays launch + decode-miss costs — see
  // DESIGN.md section 13).
  const bool interp_nok_ok = rows[0].interp_speedup() >= 1.5;
  const bool interp_kaslr_ok = rows[1].interp_speedup() >= 1.0;
  std::printf(
      "targets (block engine): full-boot throughput nokaslr %.2fx legacy (>=1.5x %s), "
      "kaslr %.2fx legacy (>=1x %s)\n",
      rows[0].interp_speedup(), interp_nok_ok ? "PASS" : "MISS", rows[1].interp_speedup(),
      interp_kaslr_ok ? "PASS" : "MISS");
  std::printf(
      "decode-cache sharing (vs page sharing): nokaslr %.1f%% blocks shared / %.1f%% frames "
      "shared; kaslr %.1f%% / %.1f%%; fgkaslr %.1f%% / %.1f%%\n",
      rows[0].full.block_share_rate() * 100, (1 - rows[0].full.image_dirty_fraction()) * 100,
      rows[1].full.block_share_rate() * 100, (1 - rows[1].full.image_dirty_fraction()) * 100,
      rows[2].full.block_share_rate() * 100, (1 - rows[2].full.image_dirty_fraction()) * 100);

  const bool pool_speedup_ok = pooled_speedup >= 10.0;
  const bool pool_dirty_ok = pooled.image_dirty_fraction() <= 0.05;
  const bool pool_hit_ok = pooled.pool_hit_rate() >= 0.95;
  std::printf(
      "targets (fgkaslr_pooled): launch %.2fx serial fgkaslr (>=10x %s), "
      "dirty image %.2f%% (<=5%% %s), pool hit rate %.2f (>=0.95 %s)\n",
      pooled_speedup, pool_speedup_ok ? "PASS" : "MISS", pooled.image_dirty_fraction() * 100,
      pool_dirty_ok ? "PASS" : "MISS", pooled.pool_hit_rate(), pool_hit_ok ? "PASS" : "MISS");
  std::printf(
      "targets (storm_churn): peak resident within hard watermark (%s), "
      "ladder shed >=1 tier (%s), post-reclaim rebuild bit-identical (%s)\n",
      churn_peak_ok ? "PASS" : "MISS", churn_shed_ok ? "PASS" : "MISS",
      rebuild_identical ? "PASS" : "MISS");
  std::printf(
      "targets (traced): tracing overhead %.2f%% (<=3%% %s), "
      "spans recorded (%s), traced layouts bit-identical (%s)\n",
      trace_overhead_pct, trace_overhead_ok ? "PASS" : "MISS",
      trace_events > 0 ? "PASS" : "MISS", trace_identical ? "PASS" : "MISS");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"storm_boot\",\n"
               "  \"scale\": %g,\n"
               "  \"vms\": %u,\n"
               "  \"threads\": %u,\n"
               "  \"host_cores\": %u,\n"
               "  \"modes\": {\n",
               opts.scale, vms, threads, std::thread::hardware_concurrency());
  for (size_t m = 0; m < 3; ++m) {
    const ModeRow& row = rows[m];
    std::fprintf(
        out,
        "    \"%s\": {\n"
        "      \"serial_launches_per_sec\": %.3f,\n"
        "      \"storm_launches_per_sec\": %.3f,\n"
        "      \"launch_speedup\": %.3f,\n"
        "      \"launch_p50_ms\": %.3f,\n"
        "      \"boot_p50_ms\": %.3f,\n"
        "      \"boot_p99_ms\": %.3f,\n"
        "      \"full_boots_per_sec\": %.3f,\n"
        "      \"full_boots_per_sec_legacy\": %.3f,\n"
        "      \"interp_speedup\": %.3f,\n"
        "      \"block_cache\": {\n"
        "        \"hits\": %llu,\n"
        "        \"misses\": %llu,\n"
        "        \"invalidations\": %llu,\n"
        "        \"blocks_shared\": %llu,\n"
        "        \"blocks_private\": %llu,\n"
        "        \"share_rate\": %.4f,\n"
        "        \"shared_blocks_resident\": %llu,\n"
        "        \"shared_block_hits\": %llu,\n"
        "        \"shared_block_misses\": %llu\n"
        "      },\n"
        "      \"image_bytes\": %llu,\n"
        "      \"image_frames\": %llu,\n"
        "      \"image_dirty_frames_mean\": %.1f,\n"
        "      \"image_shared_frames_mean\": %.1f,\n"
        "      \"image_dirty_fraction\": %.4f,\n"
        "      \"resident_mb_per_vm_mean\": %.3f,\n"
        "      \"template_cache_hits\": %llu,\n"
        "      \"template_cache_misses\": %llu\n"
        "    }%s\n",
        row.name, row.serial.boots_per_sec(), row.launch.boots_per_sec(), row.launch_speedup(),
        row.launch.boot_ms.percentile(50), row.full.boot_ms.percentile(50),
        row.full.boot_ms.percentile(99), row.full.boots_per_sec(),
        row.full_legacy.boots_per_sec(), row.interp_speedup(),
        static_cast<unsigned long long>(row.full.block_cache_hits),
        static_cast<unsigned long long>(row.full.block_cache_misses),
        static_cast<unsigned long long>(row.full.block_cache_invalidations),
        static_cast<unsigned long long>(row.full.blocks_shared),
        static_cast<unsigned long long>(row.full.blocks_private), row.full.block_share_rate(),
        static_cast<unsigned long long>(row.full.shared_blocks_resident),
        static_cast<unsigned long long>(row.full.shared_block_hits),
        static_cast<unsigned long long>(row.full.shared_block_misses),
        static_cast<unsigned long long>(row.full.image_bytes),
        static_cast<unsigned long long>(row.full.image_frames),
        row.full.image_dirty_frames.mean(), row.full.image_shared_frames.mean(),
        row.full.image_dirty_fraction(), row.full.resident_mb.mean(),
        static_cast<unsigned long long>(row.launch.cache_hits + row.full.cache_hits),
        static_cast<unsigned long long>(row.launch.cache_misses + row.full.cache_misses),
        ",");
  }
  std::fprintf(
      out,
      "    \"fgkaslr_pooled\": {\n"
      "      \"pool_depth\": %u,\n"
      "      \"storm_launches_per_sec\": %.3f,\n"
      "      \"launch_speedup\": %.3f,\n"
      "      \"launch_p50_ms\": %.3f,\n"
      "      \"launch_p99_ms\": %.3f,\n"
      "      \"pool_hits\": %llu,\n"
      "      \"pool_misses\": %llu,\n"
      "      \"pool_hit_rate\": %.4f,\n"
      "      \"pool_rendered_during\": %llu,\n"
      "      \"pool_refill_errors\": %llu,\n"
      "      \"pool_quarantined\": %llu,\n"
      "      \"image_dirty_frames_mean\": %.1f,\n"
      "      \"image_dirty_fraction\": %.4f\n"
      "    }\n",
      vms, pooled.boots_per_sec(), pooled_speedup, pooled.boot_ms.percentile(50),
      pooled.boot_ms.percentile(99), static_cast<unsigned long long>(pooled.pool_hits),
      static_cast<unsigned long long>(pooled.pool_misses), pooled.pool_hit_rate(),
      static_cast<unsigned long long>(pooled.pool_rendered_during),
      static_cast<unsigned long long>(pooled.pool_refill_errors),
      static_cast<unsigned long long>(pooled.pool_quarantined),
      pooled.image_dirty_frames.mean(), pooled.image_dirty_fraction());
  std::fprintf(
      out,
      "  },\n"
      "  \"churn\": {\n"
      "    \"vms\": %u,\n"
      "    \"cycles\": %u,\n"
      "    \"launches\": %u,\n"
      "    \"boots_per_sec\": %.3f,\n"
      "    \"budget_bytes\": %llu,\n"
      "    \"soft_watermark_bytes\": %llu,\n"
      "    \"hard_watermark_bytes\": %llu,\n"
      "    \"peak_resident_bytes\": %llu,\n"
      "    \"steady_resident_bytes\": %llu,\n"
      "    \"peak_guest_frames_bytes\": %llu,\n"
      "    \"peak_template_images_bytes\": %llu,\n"
      "    \"peak_layout_renders_bytes\": %llu,\n"
      "    \"peak_decode_tables_bytes\": %llu,\n"
      "    \"reclaim_runs\": %llu,\n"
      "    \"reclaimed_bytes\": %llu,\n"
      "    \"tier_sheds\": %llu,\n"
      "    \"pool_shed\": %llu,\n"
      "    \"admits\": %llu,\n"
      "    \"admit_waits\": %llu,\n"
      "    \"admit_rejects\": %llu,\n"
      "    \"rejected_mem_launches\": %u,\n"
      "    \"drill_reclaimall_bytes\": %llu,\n"
      "    \"drill_template_evictions\": %llu,\n"
      "    \"peak_within_hard\": %s,\n"
      "    \"rebuild_identical\": %s\n"
      "  },\n"
      "  \"faults\": {\n",
      vms, kChurnCycles, churn.launches, churn.boots_per_sec(),
      static_cast<unsigned long long>(churn_mem.budget_bytes),
      static_cast<unsigned long long>(churn_mem.soft_watermark_bytes),
      static_cast<unsigned long long>(churn_mem.hard_watermark_bytes),
      static_cast<unsigned long long>(churn_mem.high_water_total_bytes),
      static_cast<unsigned long long>(churn_mem.current_total_bytes),
      static_cast<unsigned long long>(
          churn_mem.categories[static_cast<size_t>(MemCategory::kGuestFrames)].high_water_bytes),
      static_cast<unsigned long long>(
          churn_mem.categories[static_cast<size_t>(MemCategory::kTemplateImages)]
              .high_water_bytes),
      static_cast<unsigned long long>(
          churn_mem.categories[static_cast<size_t>(MemCategory::kLayoutRenders)]
              .high_water_bytes),
      static_cast<unsigned long long>(
          churn_mem.categories[static_cast<size_t>(MemCategory::kDecodeTables)].high_water_bytes),
      static_cast<unsigned long long>(churn_mem.reclaim_runs),
      static_cast<unsigned long long>(churn_mem.reclaimed_bytes),
      static_cast<unsigned long long>(churn_mem.tier_sheds),
      static_cast<unsigned long long>(churn.pool_shed),
      static_cast<unsigned long long>(churn_mem.admits),
      static_cast<unsigned long long>(churn_mem.admit_waits),
      static_cast<unsigned long long>(churn_mem.admit_rejects), churn.outcomes.rejected_mem,
      static_cast<unsigned long long>(drill_shed_bytes),
      static_cast<unsigned long long>(drill_evictions), churn_peak_ok ? "true" : "false",
      rebuild_identical ? "true" : "false");
  std::fprintf(
      out,
      "    \"spec\": \"%s\",\n"
      "    \"fault_seed\": %llu,\n"
      "    \"vms\": %u,\n"
      "    \"ok_first_try\": %u,\n"
      "    \"ok_retried\": %u,\n"
      "    \"ok_degraded\": %u,\n"
      "    \"failed\": %u,\n"
      "    \"accounted\": %u,\n"
      "    \"attempts_total\": %u,\n"
      "    \"watchdog_trips\": %u,\n"
      "    \"cache_quarantines\": %llu,\n"
      "    \"faults_injected\": %llu,\n"
      "    \"full_boots_per_sec\": %.3f,\n"
      "    \"recovery_overhead_pct\": %.2f\n"
      "  },\n",
      kFaultSpec, static_cast<unsigned long long>(kFaultSeed), faulted.vms, tally.ok_first_try,
      tally.ok_retried, tally.ok_degraded, tally.failed, tally.accounted(), tally.attempts_total,
      tally.watchdog_trips, static_cast<unsigned long long>(tally.cache_quarantines),
      static_cast<unsigned long long>(tally.faults_injected), faulted_bps, recovery_overhead_pct);
  std::fprintf(
      out,
      "  \"traced\": {\n"
      "    \"full_boots_per_sec\": %.3f,\n"
      "    \"untraced_boots_per_sec\": %.3f,\n"
      "    \"overhead_pct\": %.2f,\n"
      "    \"events\": %llu,\n"
      "    \"dropped\": %llu,\n"
      "    \"trace_threads\": %llu,\n"
      "    \"layouts_identical\": %s,\n"
      "    \"overhead_ok\": %s\n"
      "  }\n}\n",
      traced_bps, untraced_bps, trace_overhead_pct,
      static_cast<unsigned long long>(trace_events),
      static_cast<unsigned long long>(trace_dropped),
      static_cast<unsigned long long>(trace_threads), trace_identical ? "true" : "false",
      trace_overhead_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace imk

int main(int argc, char** argv) { return imk::Run(argc, argv); }
