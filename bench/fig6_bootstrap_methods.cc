// Figure 6 reproduction: the four ways to bootstrap a kernel, from worst to
// best — compression "none" (copy-heavy), LZ4, the optimized compression-
// none loader (§3.3), and a direct uncompressed boot. Shows that even a
// fully optimized self-bootstrapping loader loses to direct boot.
//
//   $ ./fig6_bootstrap_methods [--reps=10] [--scale=0.25]
#include "bench/common.h"

using namespace imk;         // NOLINT
using namespace imk::bench;  // NOLINT

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  std::printf("Figure 6: bootstrap method comparison (kaslr kernels where possible, %u boots)\n\n",
              options.reps);

  TextTable table({"kernel", "method", "total ms", "monitor", "setup", "decomp", "linux"});
  std::vector<std::pair<std::string, double>> bars;
  for (KernelProfile profile : kAllProfiles) {
    Storage storage;
    KernelBuildInfo kaslr_info =
        InstallKernel(storage, profile, RandoMode::kKaslr, options.scale, "vmlinux");
    InstallBzImage(storage, kaslr_info, "none", LoaderKind::kStandard, "bz-none");
    InstallBzImage(storage, kaslr_info, "lz4", LoaderKind::kStandard, "bz-lz4");
    InstallBzImage(storage, kaslr_info, "none", LoaderKind::kNoneOptimized, "bz-none-opt");

    struct Method {
      const char* label;
      const char* image;
      BootMode mode;
      RandoMode rando;
      bool relocs;
    };
    const Method methods[] = {
        {"none", "bz-none", BootMode::kBzImage, RandoMode::kKaslr, false},
        {"lz4", "bz-lz4", BootMode::kBzImage, RandoMode::kKaslr, false},
        {"none-optimized", "bz-none-opt", BootMode::kBzImage, RandoMode::kKaslr, false},
        // Direct boot has no self-randomization path — the paper's point;
        // the uncompressed bar is a plain (unrandomized) direct boot.
        {"uncompressed", "vmlinux", BootMode::kDirect, RandoMode::kNone, false},
    };
    for (const Method& method : methods) {
      MicroVmConfig config;
      config.mem_size_bytes = 256ull << 20;
      config.kernel_image = method.image;
      config.boot_mode = method.mode;
      config.rando = method.rando;
      config.seed = 1;
      BootStats stats = RepeatBoot(storage, config, kaslr_info, options.warmup, options.reps);
      table.AddRow({std::string(ProfileName(profile)), method.label,
                    TextTable::Fmt(stats.total_ms.mean()), TextTable::Fmt(stats.monitor_ms.mean()),
                    TextTable::Fmt(stats.setup_ms.mean()),
                    TextTable::Fmt(stats.decompress_ms.mean()),
                    TextTable::Fmt(stats.linux_ms.mean())});
      if (profile == KernelProfile::kAws) {
        bars.push_back({method.label, stats.total_ms.mean() - stats.linux_ms.mean()});
      }
    }
  }
  table.Print();
  std::printf("\naws profile, pre-kernel (monitor+bootstrap) time by method:\n");
  PrintBars(bars, "ms");
  std::printf("\npaper: none > lz4 > none-optimized > uncompressed, i.e. even the most\n"
              "optimized self-bootstrap leaves performance on the table vs direct boot.\n");
  return 0;
}
