// Memory-density ablation (paper §6): how much guest kernel memory can a
// KSM-style content-based page merger reclaim across a pair of microVMs,
// under each randomization policy?
//
//   - nokaslr:      identical layouts, near-total sharing
//   - kaslr:        relocated fields scatter across pages; partial sharing
//   - fgkaslr:      function shuffling leaves almost nothing to merge
//   - fgkaslr+seed: the paper's proposal — the host reuses one seed for a
//                   group of related VMs, restoring density at the cost of
//                   per-group entropy (only an in-monitor implementation can
//                   make this call)
//   - snapshot clone: the zygote approach (§7) — full sharing, zero diversity
//
//   $ ./ablation_page_sharing [--scale=0.1]
#include "bench/common.h"

#include <algorithm>

#include "src/kaslr/page_sharing.h"

using namespace imk;         // NOLINT
using namespace imk::bench;  // NOLINT

namespace {

struct PairResult {
  PageSharingReport report;
  MonitorCowReport cow;
  bool same_slide = false;
};

PairResult BootPairAndCompare(Storage& storage, const KernelBuildInfo& info, RandoMode rando,
                              uint64_t seed_a, uint64_t seed_b) {
  auto make_config = [&](uint64_t seed) {
    MicroVmConfig config;
    config.mem_size_bytes = 256ull << 20;
    config.kernel_image = "vmlinux";
    if (!info.relocs.empty()) {
      config.relocs_image = "vmlinux.relocs";
    }
    config.rando = rando;
    config.seed = seed;
    return config;
  };
  MicroVm vm_a(storage, make_config(seed_a));
  MicroVm vm_b(storage, make_config(seed_b));
  BootReport report_a = CheckOk(vm_a.Boot(), "Boot a");
  BootReport report_b = CheckOk(vm_b.Boot(), "Boot b");
  PairResult result;
  result.same_slide = report_a.choice.virt_slide == report_b.choice.virt_slide;
  result.report = ComparePages(CheckOk(vm_a.KernelRegion(), "region a"),
                               CheckOk(vm_b.KernelRegion(), "region b"));
  // Monitor-CoW view: frames both VMs still alias to the shared build
  // template are one host frame with no merge daemon involved. The two
  // kernels may sit at different guest-physical bases; alias identity is
  // the template pointer, so the comparison is position-independent.
  const uint64_t frames = std::min(report_a.mem.image_frames, report_b.mem.image_frames);
  result.cow = CompareMonitorCow(vm_a.memory().frames(),
                                 report_a.choice.phys_load_addr & ~uint64_t{4095},
                                 vm_b.memory().frames(),
                                 report_b.choice.phys_load_addr & ~uint64_t{4095},
                                 frames * 4096);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  std::printf("Page-sharing ablation (aws kernel, scale %.2f, 4 KiB pages)\n\n", options.scale);

  TextTable table({"policy", "kernel pages", "sharable %", "cow shared %", "layout diversity"});

  double prev_cow_fraction = 2.0;  // nokaslr >= kaslr >= fgkaslr (descending)
  bool cow_ordered = true;
  for (RandoMode rando : {RandoMode::kNone, RandoMode::kKaslr, RandoMode::kFgKaslr}) {
    Storage storage;
    KernelBuildInfo info = InstallKernel(storage, KernelProfile::kAws, rando, options.scale,
                                         "vmlinux");
    PairResult diff = BootPairAndCompare(storage, info, rando, 101, 202);
    cow_ordered = cow_ordered && diff.cow.SharedFraction() <= prev_cow_fraction;
    prev_cow_fraction = diff.cow.SharedFraction();
    table.AddRow({std::string(RandoModeName(rando)) + " (fresh boots)",
                  std::to_string(diff.report.pages_b),
                  TextTable::Fmt(diff.report.SharableFraction() * 100, 1),
                  TextTable::Fmt(diff.cow.SharedFraction() * 100, 1),
                  diff.same_slide ? "shared layout!" : "unique layouts"});
    if (rando == RandoMode::kFgKaslr) {
      PairResult same = BootPairAndCompare(storage, info, rando, 303, 303);
      table.AddRow({"fgkaslr (host-shared seed)", std::to_string(same.report.pages_b),
                    TextTable::Fmt(same.report.SharableFraction() * 100, 1),
                    TextTable::Fmt(same.cow.SharedFraction() * 100, 1),
                    "shared within group"});

      // Zygote/snapshot clone (the 7 comparison point).
      MicroVmConfig config;
      config.mem_size_bytes = 256ull << 20;
      config.kernel_image = "vmlinux";
      config.relocs_image = "vmlinux.relocs";
      config.rando = rando;
      config.seed = 404;
      MicroVm parent(storage, config);
      (void)CheckOk(parent.Boot(), "Boot parent");
      VmSnapshot snapshot = CheckOk(parent.Snapshot(), "Snapshot");
      auto clone_a = CheckOk(MicroVm::FromSnapshot(storage, snapshot), "clone a");
      auto clone_b = CheckOk(MicroVm::FromSnapshot(storage, snapshot), "clone b");
      const PageSharingReport clones =
          ComparePages(CheckOk(clone_a->KernelRegion(), "region"),
                       CheckOk(clone_b->KernelRegion(), "region"));
      table.AddRow({"fgkaslr (snapshot clones)", std::to_string(clones.pages_b),
                    TextTable::Fmt(clones.SharableFraction() * 100, 1), "-",
                    "none (zygote reuse)"});
    }
  }
  table.Print();
  std::printf("\nmonitor-CoW ordering (nokaslr >= kaslr >= fgkaslr): %s\n",
              cow_ordered ? "holds" : "VIOLATED");
  std::printf(
      "\npaper 6: fine-grained randomization nullifies page-sharing density; with\n"
      "in-monitor randomization the host can trade entropy for density per VM group\n"
      "(shared seed), something bootstrap self-randomization cannot offer. 7: zygote\n"
      "snapshots maximize sharing but replicate one layout everywhere.\n");
  return 0;
}
