// Figure 4 reproduction: effect of the host page cache on bzImage vs
// uncompressed direct boots. Cold caches favor the (smaller) compressed
// image; warm caches favor the direct uncompressed boot.
//
//   $ ./fig4_cache_effects [--reps=10] [--scale=0.25]
#include "bench/common.h"

using namespace imk;         // NOLINT
using namespace imk::bench;  // NOLINT

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  std::printf("Figure 4: cached vs uncached boots (nokaslr kernels, %u boots each)\n\n",
              options.reps);

  TextTable table(
      {"kernel", "image", "cache", "total ms", "io(modeled) ms", "decomp ms", "linux ms"});
  struct Cell {
    double bz;
    double direct;
  };
  Cell cold[3];
  Cell warm[3];
  int profile_index = 0;
  for (KernelProfile profile : kAllProfiles) {
    Storage storage;
    KernelBuildInfo info =
        InstallKernel(storage, profile, RandoMode::kNone, options.scale, "vmlinux");
    InstallBzImage(storage, info, "lz4", LoaderKind::kStandard, "bz-lz4");

    for (bool cached : {false, true}) {
      for (bool direct : {true, false}) {
        MicroVmConfig config;
        config.mem_size_bytes = 256ull << 20;
        config.kernel_image = direct ? "vmlinux" : "bz-lz4";
        config.boot_mode = direct ? BootMode::kDirect : BootMode::kBzImage;
        config.rando = RandoMode::kNone;
        config.seed = 1;
        // Cold runs drop the page cache before every boot (the paper's
        // drop_caches step); warm runs rely on the warm-up boots.
        std::function<void()> pre_boot;
        if (!cached) {
          Storage* s = &storage;
          pre_boot = [s]() { s->DropCaches(); };
        }
        BootStats stats = RepeatBoot(storage, config, info, cached ? options.warmup : 0,
                                     options.reps, pre_boot);
        table.AddRow({std::string(ProfileName(profile)), direct ? "vmlinux" : "bzimage-lz4",
                      cached ? "warm" : "cold", TextTable::Fmt(stats.total_ms.mean()),
                      TextTable::Fmt(stats.modeled_io_ms.mean()),
                      TextTable::Fmt(stats.decompress_ms.mean()),
                      TextTable::Fmt(stats.linux_ms.mean())});
        Cell& cell = cached ? warm[profile_index] : cold[profile_index];
        (direct ? cell.direct : cell.bz) = stats.total_ms.mean();
      }
    }
    ++profile_index;
  }
  table.Print();

  std::printf("\ncrossover check (paper: bzImage wins cold, direct wins warm):\n");
  profile_index = 0;
  for (KernelProfile profile : kAllProfiles) {
    const double cold_gap =
        (cold[profile_index].direct - cold[profile_index].bz) / cold[profile_index].bz * 100;
    const double warm_gap =
        (warm[profile_index].bz - warm[profile_index].direct) / warm[profile_index].direct * 100;
    std::printf("  %-7s cold: direct is %+.0f%% vs bzImage;  warm: bzImage is %+.0f%% vs direct\n",
                ProfileName(profile), cold_gap, warm_gap);
    ++profile_index;
  }
  std::printf("\npaper: cold - direct slower by 26%%/18%%/7%% (lupine/aws/ubuntu);\n"
              "       warm - direct faster by 36%%/33%%/20%%.\n");
  return 0;
}
