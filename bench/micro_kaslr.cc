// google-benchmark microbenchmarks for the KASLR core: offset selection,
// relocation walks (plain and shuffle-aware), the FGKASLR shuffle itself,
// and kallsyms fixup — the per-step costs behind Figures 5 and 9.
#include <benchmark/benchmark.h>

#include "src/elf/elf_reader.h"
#include "src/kaslr/fgkaslr.h"
#include "src/kaslr/random_offset.h"
#include "src/kaslr/relocator.h"
#include "src/kernel/kernel_builder.h"

namespace imk {
namespace {

constexpr double kScale = 0.1;

const KernelBuildInfo& FgKernel() {
  static const KernelBuildInfo* info = [] {
    auto built = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, kScale));
    return new KernelBuildInfo(std::move(*built));
  }();
  return *info;
}

Bytes LoadAtLinkAddresses(const KernelBuildInfo& info) {
  auto elf = ElfReader::Parse(ByteSpan(info.vmlinux));
  Bytes loaded(info.ImageMemSize(), 0);
  for (const auto& phdr : elf->program_headers()) {
    if (phdr.p_type != kPtLoad) {
      continue;
    }
    auto data = elf->SegmentData(phdr);
    std::copy(data->begin(), data->end(), loaded.begin() + (phdr.p_vaddr - info.text_vaddr));
  }
  return loaded;
}

void BM_ChooseRandomOffsets(benchmark::State& state) {
  OffsetConstraints constraints;
  constraints.image_mem_size = 16ull << 20;
  constraints.guest_mem_size = 256ull << 20;
  constraints.reserved_tail = 1 << 20;
  constraints.constants = DefaultKernelConstants();
  Rng rng(1);
  for (auto _ : state) {
    auto choice = ChooseRandomOffsets(constraints, rng);
    benchmark::DoNotOptimize(choice->virt_slide);
  }
}
BENCHMARK(BM_ChooseRandomOffsets);

void BM_ApplyRelocations(benchmark::State& state) {
  const KernelBuildInfo& info = FgKernel();
  const Bytes pristine = LoadAtLinkAddresses(info);
  Bytes image = pristine;
  for (auto _ : state) {
    state.PauseTiming();
    image = pristine;
    state.ResumeTiming();
    LoadedImageView view(MutableByteSpan(image), info.text_vaddr);
    auto stats = ApplyRelocations(view, info.relocs, 0x4000000);
    benchmark::DoNotOptimize(stats->total());
  }
  state.counters["relocs"] = static_cast<double>(info.relocs.total());
  state.counters["ns/reloc"] = benchmark::Counter(
      static_cast<double>(info.relocs.total()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ApplyRelocations)->Unit(benchmark::kMicrosecond);

void BM_ApplyRelocationsShuffled(benchmark::State& state) {
  const KernelBuildInfo& info = FgKernel();
  const Bytes pristine = LoadAtLinkAddresses(info);
  auto elf = ElfReader::Parse(ByteSpan(info.vmlinux));

  // One representative shuffle.
  Bytes shuffled = pristine;
  LoadedImageView shuffle_view(MutableByteSpan(shuffled), info.text_vaddr);
  FgKaslrParams params;
  Rng rng(2);
  auto fg = ShuffleFunctions(*elf, shuffle_view, params, rng);

  Bytes image;
  for (auto _ : state) {
    state.PauseTiming();
    image = shuffled;
    state.ResumeTiming();
    LoadedImageView view(MutableByteSpan(image), info.text_vaddr);
    auto stats = ApplyRelocationsShuffled(view, info.relocs, 0x4000000, fg->map);
    benchmark::DoNotOptimize(stats->total());
  }
  state.counters["relocs"] = static_cast<double>(info.relocs.total());
}
BENCHMARK(BM_ApplyRelocationsShuffled)->Unit(benchmark::kMicrosecond);

void BM_ShuffleFunctions(benchmark::State& state) {
  const KernelBuildInfo& info = FgKernel();
  const Bytes pristine = LoadAtLinkAddresses(info);
  auto elf = ElfReader::Parse(ByteSpan(info.vmlinux));
  Rng rng(3);
  Bytes image;
  for (auto _ : state) {
    state.PauseTiming();
    image = pristine;
    state.ResumeTiming();
    LoadedImageView view(MutableByteSpan(image), info.text_vaddr);
    FgKaslrParams params;
    auto fg = ShuffleFunctions(*elf, view, params, rng);
    benchmark::DoNotOptimize(fg->sections_shuffled);
  }
  state.counters["sections"] = static_cast<double>(info.functions.size());
}
BENCHMARK(BM_ShuffleFunctions)->Unit(benchmark::kMillisecond);

void BM_KallsymsFixup(benchmark::State& state) {
  const KernelBuildInfo& info = FgKernel();
  const Bytes pristine = LoadAtLinkAddresses(info);
  auto elf = ElfReader::Parse(ByteSpan(info.vmlinux));

  Bytes shuffled = pristine;
  LoadedImageView shuffle_view(MutableByteSpan(shuffled), info.text_vaddr);
  FgKaslrParams params;
  params.kallsyms = KallsymsFixup::kLazy;  // leave the table dirty
  Rng rng(4);
  auto fg = ShuffleFunctions(*elf, shuffle_view, params, rng);

  Bytes image;
  for (auto _ : state) {
    state.PauseTiming();
    image = shuffled;
    state.ResumeTiming();
    LoadedImageView view(MutableByteSpan(image), info.text_vaddr);
    auto status = FixupKallsymsTable(view, fg->kallsyms_vaddr, fg->kallsyms_count, fg->map);
    benchmark::DoNotOptimize(status.ok());
  }
  state.counters["symbols"] = static_cast<double>(fg->kallsyms_count);
}
BENCHMARK(BM_KallsymsFixup)->Unit(benchmark::kMicrosecond);

void BM_ShuffleMapLookup(benchmark::State& state) {
  const KernelBuildInfo& info = FgKernel();
  auto elf = ElfReader::Parse(ByteSpan(info.vmlinux));
  Bytes image = LoadAtLinkAddresses(info);
  LoadedImageView view(MutableByteSpan(image), info.text_vaddr);
  FgKaslrParams params;
  Rng rng(5);
  auto fg = ShuffleFunctions(*elf, view, params, rng);
  Rng query_rng(6);
  for (auto _ : state) {
    const uint64_t vaddr =
        info.text_vaddr + query_rng.NextBelow(info.ImageMemSize());
    benchmark::DoNotOptimize(fg->map.DeltaFor(vaddr));
  }
}
BENCHMARK(BM_ShuffleMapLookup);

}  // namespace
}  // namespace imk

BENCHMARK_MAIN();
