// Shared helpers for the figure/table reproduction benches.
#ifndef IMKASLR_BENCH_COMMON_H_
#define IMKASLR_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/base/stats.h"
#include "src/bench_util/harness.h"
#include "src/kernel/bzimage.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace bench {

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

// Builds a kernel and installs vmlinux + relocs into storage under
// "<name>" and "<name>.relocs".
inline KernelBuildInfo InstallKernel(Storage& storage, KernelProfile profile, RandoMode rando,
                                     double scale, const std::string& name) {
  KernelBuildInfo info =
      CheckOk(BuildKernel(KernelConfig::Make(profile, rando, scale)), "BuildKernel");
  storage.Put(name, info.vmlinux);
  if (!info.relocs.empty()) {
    storage.Put(name + ".relocs", SerializeRelocs(info.relocs));
  }
  return info;
}

// Builds and installs a bzImage under `image_name`.
inline void InstallBzImage(Storage& storage, const KernelBuildInfo& kernel,
                           const std::string& codec, LoaderKind loader,
                           const std::string& image_name) {
  BzImage image = CheckOk(BuildBzImage(ByteSpan(kernel.vmlinux), kernel.relocs, codec, loader),
                          "BuildBzImage");
  storage.Put(image_name, SerializeBzImage(image));
}

// Aggregated per-phase boot statistics over repeated boots.
struct BootStats {
  Summary total_ms;
  Summary monitor_ms;
  Summary setup_ms;
  Summary decompress_ms;
  Summary linux_ms;
  Summary modeled_io_ms;  // the modeled (cold-I/O) share of In-Monitor
};

// Boots `reps` times (after `warmup` discarded boots), verifying the guest
// checksum each time. `pre_boot` (optional) runs before every boot — used to
// drop caches for the cold-cache experiments.
inline BootStats RepeatBoot(Storage& storage, const MicroVmConfig& config,
                            const KernelBuildInfo& kernel, uint32_t warmup, uint32_t reps,
                            const std::function<void()>& pre_boot = {}) {
  BootStats stats;
  for (uint32_t i = 0; i < warmup + reps; ++i) {
    if (pre_boot) {
      pre_boot();
    }
    MicroVmConfig boot_config = config;
    if (boot_config.seed != 0) {
      boot_config.seed = config.seed + i;  // vary layouts across reps
    }
    MicroVm vm(storage, boot_config);
    BootReport report = CheckOk(vm.Boot(), "Boot");
    if (!report.init_done || report.init_checksum != kernel.expected_checksum) {
      std::fprintf(stderr, "boot verification failed (checksum mismatch)\n");
      std::exit(1);
    }
    if (i < warmup) {
      continue;
    }
    const BootTimeline& t = report.timeline;
    stats.total_ms.Add(t.total_ms());
    stats.monitor_ms.Add(t.phase_ms(BootPhase::kInMonitor));
    stats.setup_ms.Add(t.phase_ms(BootPhase::kBootstrapSetup));
    stats.decompress_ms.Add(t.phase_ms(BootPhase::kDecompression));
    stats.linux_ms.Add(t.phase_ms(BootPhase::kLinuxBoot));
    stats.modeled_io_ms.Add(static_cast<double>(t.modeled_ns(BootPhase::kInMonitor)) / 1e6);
  }
  return stats;
}

inline const char* ProfileName(KernelProfile profile) { return KernelProfileName(profile); }

inline constexpr KernelProfile kAllProfiles[] = {KernelProfile::kLupine, KernelProfile::kAws,
                                                 KernelProfile::kUbuntu};

}  // namespace bench
}  // namespace imk

#endif  // IMKASLR_BENCH_COMMON_H_
