// Table 1 reproduction: kernel image sizes for the nine guest kernels —
// vmlinux, bzImage (compression none and LZ4), and relocation info size.
//
//   $ ./table1_kernel_sizes [--scale=0.25]
#include "bench/common.h"

using namespace imk;        // NOLINT
using namespace imk::bench;  // NOLINT

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  std::printf("Table 1: kernels used in boot time experiments (scale %.2f of paper sizes)\n\n",
              options.scale);

  TextTable table({"kernel", "vmlinux", "bzimage(none)", "bzimage(lz4)", "relocs", "functions"});
  for (KernelProfile profile : kAllProfiles) {
    for (RandoMode rando : {RandoMode::kNone, RandoMode::kKaslr, RandoMode::kFgKaslr}) {
      KernelBuildInfo info = CheckOk(BuildKernel(KernelConfig::Make(profile, rando, options.scale)),
                                     "BuildKernel");
      BzImage none = CheckOk(
          BuildBzImage(ByteSpan(info.vmlinux), info.relocs, "none", LoaderKind::kStandard),
          "bzimage none");
      BzImage lz4 = CheckOk(
          BuildBzImage(ByteSpan(info.vmlinux), info.relocs, "lz4", LoaderKind::kStandard),
          "bzimage lz4");
      table.AddRow({info.config.Name(), HumanSize(info.vmlinux.size()),
                    HumanSize(none.TotalSize()), HumanSize(lz4.TotalSize()),
                    info.relocs.empty() ? "N/A" : HumanSize(info.relocs.SerializedSize()),
                    std::to_string(info.functions.size())});
    }
  }
  table.Print();

  std::printf(
      "\npaper (full scale): lupine 20M/22M/4.1M/(94K kaslr, 304K fgkaslr), aws 39M/41M/7.0M/\n"
      "(340K kaslr, 1.1M fgkaslr), ubuntu 45M/47M/15M/(1.1M kaslr, 2.3M fgkaslr).\n"
      "Expected shape: sizes scale with profile; fgkaslr kernels are larger with ~3x relocs;\n"
      "KASLR adds relocation info; LZ4 compresses the image ~4-5x.\n");
  return 0;
}
