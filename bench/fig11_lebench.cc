// Figure 11 reproduction: LEBench-style kernel microbenchmarks on the aws
// kernel with no randomization, in-monitor KASLR, and in-monitor FGKASLR,
// normalized to the unrandomized baseline. Expected: KASLR within noise,
// FGKASLR a few percent slower via i-cache misses.
//
//   $ ./fig11_lebench [--reps=30] [--scale=0.25]
#include "bench/common.h"
#include "src/guestload/lebench.h"

using namespace imk;         // NOLINT
using namespace imk::bench;  // NOLINT

namespace {

struct VmRun {
  KernelBuildInfo info;
  std::unique_ptr<Storage> storage;
  std::unique_ptr<MicroVm> vm;
  std::vector<LeBenchResult> results;
};

VmRun RunMode(RandoMode rando, double scale, uint32_t iterations) {
  VmRun run;
  run.storage = std::make_unique<Storage>();
  run.info = InstallKernel(*run.storage, KernelProfile::kAws, rando, scale, "vmlinux");
  MicroVmConfig config;
  config.mem_size_bytes = 256ull << 20;
  config.kernel_image = "vmlinux";
  if (rando != RandoMode::kNone) {
    config.relocs_image = "vmlinux.relocs";
  }
  config.rando = rando;
  config.seed = 5;
  run.vm = std::make_unique<MicroVm>(*run.storage, config);
  BootReport report = CheckOk(run.vm->Boot(), "Boot");
  if (report.init_checksum != run.info.expected_checksum) {
    std::fprintf(stderr, "boot checksum mismatch\n");
    std::exit(1);
  }
  run.results = CheckOk(RunLeBench(*run.vm, run.info, iterations), "RunLeBench");
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint32_t iterations = options.reps;
  std::printf("Figure 11: LEBench on aws kernels, normalized to nokaslr (%u rounds each)\n\n",
              iterations);

  VmRun base = RunMode(RandoMode::kNone, options.scale, iterations);
  VmRun kaslr = RunMode(RandoMode::kKaslr, options.scale, iterations);
  VmRun fg = RunMode(RandoMode::kFgKaslr, options.scale, iterations);

  TextTable table({"test", "nokaslr cyc", "kaslr norm", "fgkaslr norm", "fg miss-rate delta"});
  double kaslr_sum = 0;
  double fg_sum = 0;
  for (size_t i = 0; i < base.results.size(); ++i) {
    const double base_cycles = base.results[i].cycles_per_iteration;
    const double kaslr_norm = kaslr.results[i].cycles_per_iteration / base_cycles;
    const double fg_norm = fg.results[i].cycles_per_iteration / base_cycles;
    kaslr_sum += kaslr_norm;
    fg_sum += fg_norm;
    char miss_delta[32];
    std::snprintf(miss_delta, sizeof(miss_delta), "%+.3f%%",
                  (fg.results[i].icache_miss_rate - base.results[i].icache_miss_rate) * 100);
    table.AddRow({base.results[i].name, TextTable::Fmt(base_cycles, 0),
                  TextTable::Fmt(kaslr_norm, 3), TextTable::Fmt(fg_norm, 3), miss_delta});
  }
  table.Print();
  const double n = static_cast<double>(base.results.size());
  std::printf("\naverage normalized runtime: kaslr %.3f, fgkaslr %.3f\n", kaslr_sum / n,
              fg_sum / n);
  std::printf("\npaper: KASLR-enabled kernels are <1%% slower on average (noise); in-monitor\n"
              "FGKASLR is ~7%% slower, driven by a higher L1 i-cache miss rate from formerly\n"
              "adjacent hot functions being scattered.\n");
  return 0;
}
