// A small fixed-worker thread pool with static range partitioning, built for
// the monitor's randomization hot path (segment load, section move, sharded
// relocation apply). Design constraints, in order:
//
//   1. Determinism: ParallelFor only ever splits [0, n) into contiguous
//      chunks computed from (n, chunks) — never from timing — so any
//      reduction that combines per-chunk results in chunk order is identical
//      for every worker count, including the inline (workers == 1) path.
//   2. No allocation on the hot path beyond the shared job state: workers are
//      spawned once at construction and claim chunk indices from an atomic
//      cursor; the caller participates instead of blocking idle.
//   3. Exceptions from the body are captured per chunk and the lowest-index
//      one is rethrown in the caller (library code is Status-based, but the
//      pool is usable from tests/benches that do throw).
#ifndef IMKASLR_SRC_BASE_THREADPOOL_H_
#define IMKASLR_SRC_BASE_THREADPOOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/race/annotations.h"
#include "src/race/mutex.h"

namespace imk {

class ThreadPool {
 public:
  // `workers` total execution lanes, including the calling thread; the pool
  // spawns workers-1 threads. 0 is clamped to the hardware concurrency.
  explicit ThreadPool(uint32_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t workers() const { return workers_; }

  // Runs fn(chunk, begin, end) over `chunks` contiguous ranges statically
  // partitioned from [0, n); blocks until every chunk finished. Chunk i is
  // [i*n/chunks, (i+1)*n/chunks), so results are independent of scheduling;
  // the chunk index lets callers keep deterministic shard-local accumulators.
  // Not reentrant: the body must not call back into the same pool, and only
  // one ParallelFor may be in flight per pool at a time.
  void ParallelForChunked(uint64_t n, uint32_t chunks,
                          const std::function<void(uint32_t chunk, uint64_t begin, uint64_t end)>& fn);

  // Index-free form.
  void ParallelFor(uint64_t n, uint32_t chunks,
                   const std::function<void(uint64_t begin, uint64_t end)>& fn) {
    ParallelForChunked(n, chunks,
                       [&fn](uint32_t, uint64_t begin, uint64_t end) { fn(begin, end); });
  }

  // Convenience: one chunk per worker.
  void ParallelFor(uint64_t n, const std::function<void(uint64_t, uint64_t)>& fn) {
    ParallelFor(n, workers_, fn);
  }

  // The i-th of `chunks` static partitions of [0, n) (exposed so shard-local
  // reductions in callers and tests can name the exact ranges the pool uses).
  static std::pair<uint64_t, uint64_t> ChunkRange(uint64_t n, uint32_t chunks, uint32_t index) {
    return {n * index / chunks, n * (index + 1) / chunks};
  }

  // Enqueues a standalone low-priority task. Workers run queued tasks only
  // when no ParallelFor job is being published (a published job generation
  // always wins the wake-up), so background work never delays the hot-path
  // sharded stages by more than the one task a worker already started. Tasks
  // must not call back into the same pool. Every submitted task eventually
  // runs: tasks still queued at destruction execute on the destructor's
  // thread after the workers join. A 1-worker pool has no worker threads, so
  // its queued tasks only run at destruction — callers that need background
  // execution should check workers() > 1 first.
  void Submit(std::function<void()> task);

 private:
  struct Job {
    uint64_t n = 0;
    uint32_t chunks = 0;
    const std::function<void(uint32_t, uint64_t, uint64_t)>* fn = nullptr;
    std::atomic<uint32_t> next_chunk{0};
    std::atomic<uint32_t> pending{0};  // chunks not yet finished
    std::vector<std::exception_ptr> errors;  // one slot per chunk
  };

  void WorkerLoop();
  // Claims and runs chunks of `job` until the cursor is exhausted.
  void RunChunks(const std::shared_ptr<Job>& job);

  uint32_t workers_;
  std::vector<std::thread> threads_;

  race::Mutex mutex_{race::LockRank::kThreadPool};
  race::CondVar work_cv_;  // workers wait for a job generation
  race::CondVar done_cv_;  // caller waits for pending == 0
  uint64_t generation_ IMK_GUARDED_BY(kThreadPool) = 0;  // bumped per ParallelFor
  bool shutdown_ IMK_GUARDED_BY(kThreadPool) = false;
  // Non-null while a ParallelFor is in flight.
  std::shared_ptr<Job> job_ IMK_GUARDED_BY(kThreadPool);
  // Low-priority standalone tasks (see Submit); drained by idle workers.
  std::deque<std::function<void()>> tasks_ IMK_GUARDED_BY(kThreadPool);
};

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_THREADPOOL_H_
