// CRC-32 (IEEE 802.3 polynomial), used as the integrity check in image
// containers (bzImage payload) and as the guest-visible checksum the synthetic
// kernel reports at the end of init.
#ifndef IMKASLR_SRC_BASE_CRC32_H_
#define IMKASLR_SRC_BASE_CRC32_H_

#include <cstdint>

#include "src/base/bytes.h"

namespace imk {

// One-shot CRC-32 of `data`.
uint32_t Crc32(ByteSpan data);

// Incremental form: feed `data` into a running crc (start from 0).
uint32_t Crc32Update(uint32_t crc, ByteSpan data);

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_CRC32_H_
