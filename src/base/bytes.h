// Byte-buffer helpers: little-endian scalar access, a bounds-checked cursor
// for parsing untrusted images, and an appending writer for building them.
#ifndef IMKASLR_SRC_BASE_BYTES_H_
#define IMKASLR_SRC_BASE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"

namespace imk {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;

// Unchecked little-endian loads/stores. Callers guarantee bounds.
inline uint16_t LoadLe16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint32_t LoadLe32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint64_t LoadLe64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void StoreLe16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreLe32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreLe64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

// Bounds-checked sequential reader over an immutable byte span. Every parser
// of untrusted data (ELF, bzImage, relocs, compressed streams) goes through
// this so out-of-range reads surface as Status, never UB.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Status Seek(size_t pos) {
    if (pos > data_.size()) {
      return OutOfRangeError("seek past end of buffer");
    }
    pos_ = pos;
    return OkStatus();
  }

  Status Skip(size_t n) {
    if (n > remaining()) {
      return OutOfRangeError("skip past end of buffer");
    }
    pos_ += n;
    return OkStatus();
  }

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) {
      return OutOfRangeError("read u8 past end");
    }
    return data_[pos_++];
  }

  Result<uint16_t> ReadU16() {
    if (remaining() < 2) {
      return OutOfRangeError("read u16 past end");
    }
    const uint16_t v = LoadLe16(data_.data() + pos_);
    pos_ += 2;
    return v;
  }

  Result<uint32_t> ReadU32() {
    if (remaining() < 4) {
      return OutOfRangeError("read u32 past end");
    }
    const uint32_t v = LoadLe32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadU64() {
    if (remaining() < 8) {
      return OutOfRangeError("read u64 past end");
    }
    const uint64_t v = LoadLe64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }

  // Returns a view of the next `n` bytes and advances.
  Result<ByteSpan> ReadBytes(size_t n) {
    if (n > remaining()) {
      return OutOfRangeError("read bytes past end");
    }
    ByteSpan out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  // Bounds-checked random-access view (does not move the cursor).
  Result<ByteSpan> SliceAt(size_t offset, size_t n) const {
    if (offset > data_.size() || n > data_.size() - offset) {
      return OutOfRangeError("slice out of range");
    }
    return data_.subspan(offset, n);
  }

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

// Appending little-endian writer used by image builders.
class ByteWriter {
 public:
  ByteWriter() = default;

  size_t size() const { return out_.size(); }
  const Bytes& bytes() const { return out_; }
  Bytes Take() { return std::move(out_); }

  void WriteU8(uint8_t v) { out_.push_back(v); }
  void WriteU16(uint16_t v) { AppendScalar(v); }
  void WriteU32(uint32_t v) { AppendScalar(v); }
  void WriteU64(uint64_t v) { AppendScalar(v); }
  void WriteBytes(ByteSpan data) { out_.insert(out_.end(), data.begin(), data.end()); }
  void WriteString(std::string_view s) {
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void WriteZeros(size_t n) { out_.resize(out_.size() + n, 0); }

  // Pads with zeros so size() becomes a multiple of `alignment`.
  void AlignTo(size_t alignment) {
    const size_t rem = out_.size() % alignment;
    if (rem != 0) {
      WriteZeros(alignment - rem);
    }
  }

  // In-place patching of already-written bytes (for headers fixed up late).
  void PatchU32(size_t offset, uint32_t v) { StoreLe32(out_.data() + offset, v); }
  void PatchU64(size_t offset, uint64_t v) { StoreLe64(out_.data() + offset, v); }

 private:
  template <typename T>
  void AppendScalar(T v) {
    const size_t at = out_.size();
    out_.resize(at + sizeof(T));
    std::memcpy(out_.data() + at, &v, sizeof(T));
  }

  Bytes out_;
};

// Formats a byte count like "4.2M" / "94K" the way the paper's Table 1 does.
std::string HumanSize(uint64_t bytes);

// Formats a value as "0x<hex>" (for addresses in error messages and reports).
std::string HexString(uint64_t value);

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_BYTES_H_
