// Alignment helpers shared by loaders, the KASLR offset picker, and guest memory.
#ifndef IMKASLR_SRC_BASE_ALIGN_H_
#define IMKASLR_SRC_BASE_ALIGN_H_

#include <cstdint>

namespace imk {

// True if `x` is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Rounds `x` up to the next multiple of `alignment` (a power of two).
constexpr uint64_t AlignUp(uint64_t x, uint64_t alignment) {
  return (x + alignment - 1) & ~(alignment - 1);
}

// Rounds `x` down to the previous multiple of `alignment` (a power of two).
constexpr uint64_t AlignDown(uint64_t x, uint64_t alignment) { return x & ~(alignment - 1); }

// True if `x` is a multiple of `alignment` (a power of two).
constexpr bool IsAligned(uint64_t x, uint64_t alignment) { return (x & (alignment - 1)) == 0; }

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_ALIGN_H_
