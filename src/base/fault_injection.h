// Deterministic fault injection for the monitor's failure drills.
//
// The monitor is the component that parses attacker-influenced kernel images
// and shares state (template cache, CoW frames) across a fleet of VMs, so
// every failure path needs to be exercisable on demand. Named fault points
// (IMK_FAULT_POINT("loader.map_pristine")) are compiled into the pipeline;
// a seeded FaultPlan arms them with rules. Whether a given hit of a point
// fires is a pure function of (plan seed, point name, hit index), so any
// failure schedule reproduces from its seed — across runs, builds, and
// sanitizers — while different seeds explore different schedules.
//
// Flavors:
//   error    the point returns a Status of the configured code
//   short    a length passing through the point is truncated (short read)
//   corrupt  bytes passing through the point are deterministically flipped
//   delay    the point sleeps (to trip wall-clock watchdogs)
//
// Cost when disarmed: one relaxed atomic load and a predicted-not-taken
// branch per point — no locks, no allocation, no string compares.
//
// Fault points sit below the retry/degrade machinery on purpose: the boot
// supervisor must observe the same Status surface that real corruption,
// stuck vCPUs, and short reads produce.
#ifndef IMKASLR_SRC_BASE_FAULT_INJECTION_H_
#define IMKASLR_SRC_BASE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/race/annotations.h"
#include "src/race/mutex.h"

namespace imk {

enum class FaultFlavor : uint8_t {
  kError = 0,   // return an error Status from the point
  kShort = 1,   // truncate a length (short read)
  kCorrupt = 2, // flip bytes in a buffer
  kDelay = 3,   // sleep
};

const char* FaultFlavorName(FaultFlavor flavor);

// One armed rule. A rule is eligible at a hit when the point name matches;
// an eligible hit fires when the nth-hit or probability trigger says so and
// the rule has fires left.
struct FaultRule {
  std::string point;                    // exact fault-point name
  FaultFlavor flavor = FaultFlavor::kError;
  ErrorCode error = ErrorCode::kInternal;  // error flavor: code to return
  // Trigger: nth > 0 fires on exactly the nth eligible hit (1-based);
  // otherwise each hit fires with `probability`, decided by a hash of
  // (seed, point, hit index) so the schedule is seed-reproducible.
  uint64_t nth = 0;
  double probability = 1.0;
  uint64_t max_fires = UINT64_MAX;  // stop firing after this many
  uint64_t delay_us = 2000;         // delay flavor: sleep per fire
  uint64_t corrupt_bytes = 1;       // corrupt flavor: bytes to flip per fire
};

// A seeded set of rules. Text form (imk_tool --faults=SPEC):
//   spec  := rule (';' rule)*
//   rule  := point ':' flavor (':' opt)*
//   flavor:= error | short | corrupt | delay
//   opt   := p=<prob> | n=<nth> | max=<fires> | us=<delay_us> |
//            bytes=<corrupt_bytes> | code=<error-code-name>
// Example: "loader.reloc:error:n=1;vcpu.enter:delay:us=50000:p=0.5"
struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }
  std::string ToString() const;

  // Parses the spec; unknown points are allowed (they just never hit).
  static Result<FaultPlan> Parse(const std::string& spec, uint64_t seed);
};

// Error code for an injected error fault, parsed from its name
// ("PARSE_ERROR", case-insensitive also accepts "parse_error").
Result<ErrorCode> ParseErrorCodeName(const std::string& name);

// The registry of every fault-point name compiled into the tree, sorted.
// FaultPlan::Parse accepts unknown points (they just never hit), which makes
// a typo in a test's --faults spec a silent no-op; tools/imk_lint checks
// every point name appearing in tests against this list, and the list is
// itself tested against a grep of the source so it cannot go stale.
const std::vector<std::string>& KnownFaultPoints();

// Process-wide injector the IMK_FAULT_* macros consult. Arm/Disarm are
// test/tool entry points; production code never arms it, so the only cost
// it pays is the disarmed fast path.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Arms `plan` (replacing any armed plan) and zeroes all counters.
  void Arm(FaultPlan plan);
  void Disarm();
  static bool armed() { return armed_flag_.load(std::memory_order_relaxed); }

  // Error/delay point. Returns the injected Status for a firing error rule,
  // sleeps for a firing delay rule, OK otherwise. (Short/corrupt rules on
  // this point are ignored: the point carries no data.)
  Status Check(const char* point);

  // Short-read point: the length a firing short rule truncates `len` to
  // (deterministically, to [0, len)); `len` unchanged otherwise. Only short
  // rules apply here; pair with IMK_FAULT_POINT for error/delay coverage.
  uint64_t Truncate(const char* point, uint64_t len);

  // Corruption point: flips rule.corrupt_bytes deterministic byte positions
  // in [data, data+len) for a firing corrupt rule. Returns true if anything
  // was corrupted. Only corrupt rules apply here.
  bool Corrupt(const char* point, uint8_t* data, uint64_t len);

  // Counters since Arm (all zero when never armed).
  uint64_t hits_total() const;
  uint64_t fires_total() const;
  struct PointCount {
    std::string point;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };
  std::vector<PointCount> Counts() const;

 private:
  FaultInjector() = default;

  struct RuleState {
    FaultRule rule;
    uint64_t hits = 0;   // eligible hits observed
    uint64_t fires = 0;  // times the rule fired
  };

  // Decides and applies bookkeeping for one hit of `point`; returns the
  // firing rule (nullptr when nothing fires). Caller holds mutex_.
  RuleState* FireLocked(const char* point);

  static std::atomic<bool> armed_flag_;
  mutable race::Mutex mutex_{race::LockRank::kFaultInjector};
  uint64_t seed_ IMK_GUARDED_BY(kFaultInjector) = 1;
  std::vector<RuleState> rules_ IMK_GUARDED_BY(kFaultInjector);
  std::map<std::string, uint64_t> point_hits_ IMK_GUARDED_BY(kFaultInjector);
};

// RAII arm/disarm for tests and tools.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan) { FaultInjector::Instance().Arm(std::move(plan)); }
  ~FaultScope() { FaultInjector::Instance().Disarm(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

// Error/delay fault point in a function returning Status or Result<T>.
#define IMK_FAULT_POINT(name)                                             \
  do {                                                                    \
    if (::imk::FaultInjector::armed()) {                                  \
      ::imk::Status imk_fault_status_ = ::imk::FaultInjector::Instance().Check(name); \
      if (!imk_fault_status_.ok()) {                                      \
        return imk_fault_status_;                                         \
      }                                                                   \
    }                                                                     \
  } while (0)

// Delay-only fault point for void contexts (worker loops); error rules on
// the point are ignored since there is nothing to return.
#define IMK_FAULT_DELAY(name)                            \
  do {                                                   \
    if (::imk::FaultInjector::armed()) {                 \
      (void)::imk::FaultInjector::Instance().Check(name); \
    }                                                    \
  } while (0)

// Short-read fault point: yields the (possibly truncated) length.
#define IMK_FAULT_TRUNCATE(name, len) \
  (::imk::FaultInjector::armed() ? ::imk::FaultInjector::Instance().Truncate(name, (len)) : (len))

// Corruption fault point over a mutable byte range.
#define IMK_FAULT_CORRUPT(name, data, len) \
  (::imk::FaultInjector::armed() && ::imk::FaultInjector::Instance().Corrupt(name, (data), (len)))

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_FAULT_INJECTION_H_
