// Deterministic PRNG plus a host entropy source.
//
// The paper's in-monitor implementation pulls randomness from the host's
// entropy pool (instead of the guest bootstrap loader's mix of rdrand and
// boot-time entropy). `HostEntropySeed()` models that; `Rng` is the
// deterministic generator used everywhere so tests and experiments can pin
// seeds.
#ifndef IMKASLR_SRC_BASE_RNG_H_
#define IMKASLR_SRC_BASE_RNG_H_

#include <cstdint>

namespace imk {

// xoshiro256++ — small, fast, high-quality; more than adequate for layout
// randomization experiments (the paper itself defers to a library RNG).
class Rng {
 public:
  // Seeds the four state words from a single seed via splitmix64.
  explicit Rng(uint64_t seed);

  // Next uniformly distributed 64-bit value.
  uint64_t Next();

  // Uniform value in [0, bound) without modulo bias. bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

 private:
  uint64_t state_[4];
};

// A seed drawn from the host's entropy source (std::random_device).
uint64_t HostEntropySeed();

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_RNG_H_
