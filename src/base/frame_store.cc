#include "src/base/frame_store.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/base/fault_injection.h"
#include "src/race/tracker.h"

namespace imk {
namespace {

constexpr uint8_t kStateZero = static_cast<uint8_t>(FrameStore::FrameState::kZero);
constexpr uint8_t kStateShared = static_cast<uint8_t>(FrameStore::FrameState::kShared);
constexpr uint8_t kStateDirty = static_cast<uint8_t>(FrameStore::FrameState::kDirty);

// Sibling shards share one rank: the ranking forbids nesting them, and the
// fault paths only ever hold one shard at a time.
template <size_t N>
void DeclareShardRanks(std::array<race::Mutex, N>& shards) {
  for (race::Mutex& shard : shards) {
    shard.set_rank(race::LockRank::kFrameStoreFaultShard);
  }
}

}  // namespace

FrameStore::FrameStore(uint64_t size_bytes)
    : size_(size_bytes),
      frame_count_((size_bytes + kFrameBytes - 1) / kFrameBytes) {
  // calloc: the OS lazily backs the arena with zero pages, so an untouched
  // 256 MiB guest costs address space, not resident memory — and zero-state
  // frames can point straight at their (still zero) arena slot.
  DeclareShardRanks(fault_shards_);
  arena_ = static_cast<uint8_t*>(std::calloc(frame_count_ ? frame_count_ : 1, kFrameBytes));
  owns_arena_ = true;
  read_ptrs_ = std::make_unique<std::atomic<const uint8_t*>[]>(frame_count_);
  states_ = std::make_unique<std::atomic<uint8_t>[]>(frame_count_);
  versions_ = std::make_unique<std::atomic<uint32_t>[]>(frame_count_);
  code_flags_ = std::make_unique<std::atomic<uint8_t>[]>(frame_count_);
  for (uint64_t f = 0; f < frame_count_; ++f) {
    read_ptrs_[f].store(arena_frame(f), std::memory_order_relaxed);
    states_[f].store(kStateZero, std::memory_order_relaxed);
    versions_[f].store(0, std::memory_order_relaxed);
    code_flags_[f].store(0, std::memory_order_relaxed);
  }
}

FrameStore::FrameStore(MutableByteSpan external)
    : size_(external.size()),
      frame_count_((external.size() + kFrameBytes - 1) / kFrameBytes) {
  DeclareShardRanks(fault_shards_);
  arena_ = external.data();
  owns_arena_ = false;
  read_ptrs_ = std::make_unique<std::atomic<const uint8_t*>[]>(frame_count_);
  states_ = std::make_unique<std::atomic<uint8_t>[]>(frame_count_);
  versions_ = std::make_unique<std::atomic<uint32_t>[]>(frame_count_);
  code_flags_ = std::make_unique<std::atomic<uint8_t>[]>(frame_count_);
  for (uint64_t f = 0; f < frame_count_; ++f) {
    read_ptrs_[f].store(arena_frame(f), std::memory_order_relaxed);
    states_[f].store(kStateDirty, std::memory_order_relaxed);
    versions_[f].store(0, std::memory_order_relaxed);
    code_flags_[f].store(0, std::memory_order_relaxed);
  }
  dirty_frames_.store(frame_count_, std::memory_order_relaxed);
}

FrameStore::~FrameStore() {
  if (accountant_ != nullptr) {
    const uint64_t resident = dirty_bytes();
    if (resident != 0) {
      accountant_->Release(resident);
    }
  }
  if (owns_arena_) {
    std::free(arena_);
  }
}

void FrameStore::FaultFrame(uint64_t frame) {
  std::lock_guard<race::Mutex> lock(fault_shards_[frame % kFaultShards]);
  IMK_RACE_SHARED_WRITE("frame_store.frame_state", this, frame, kFrameStoreFaultShard);
  const uint8_t state = states_[frame].load(std::memory_order_acquire);
  if (state == kStateDirty) {
    return;  // another thread materialized it while we waited
  }
  uint8_t* slot = arena_frame(frame);
  if (state == kStateShared) {
    std::memcpy(slot, read_ptrs_[frame].load(std::memory_order_relaxed), kFrameBytes);
    shared_frames_.fetch_sub(1, std::memory_order_relaxed);
  }
  // Zero state: the arena slot has never been written, so it is already the
  // frame's content.
  read_ptrs_[frame].store(slot, std::memory_order_release);
  dirty_frames_.fetch_add(1, std::memory_order_relaxed);
  states_[frame].store(kStateDirty, std::memory_order_release);
  if (accountant_ != nullptr) {
    accountant_->Charge(kFrameBytes);
  }
}

Status FrameStore::MapShared(uint64_t phys, ByteSpan src, std::shared_ptr<const void> owner) {
  if (!owns_arena_) {
    return FailedPreconditionError("MapShared on an externally backed FrameStore");
  }
  if (phys % kFrameBytes != 0) {
    return InvalidArgumentError("MapShared phys must be frame-aligned");
  }
  // Models the host refusing the zero-copy alias (mmap failure), forcing
  // callers onto their error path before any frame state mutates.
  IMK_FAULT_POINT("frame_store.map_shared");
  IMK_RETURN_IF_ERROR(CheckRange(phys, src.size()));
  const uint64_t whole = src.size() / kFrameBytes;
  const uint64_t first = phys >> kFrameShift;
  for (uint64_t i = 0; i < whole; ++i) {
    const uint64_t f = first + i;
    std::lock_guard<race::Mutex> lock(fault_shards_[f % kFaultShards]);
    IMK_RACE_SHARED_WRITE("frame_store.frame_state", this, f, kFrameStoreFaultShard);
    const uint8_t state = states_[f].load(std::memory_order_acquire);
    if (state == kStateDirty) {
      dirty_frames_.fetch_sub(1, std::memory_order_relaxed);
      if (accountant_ != nullptr) {
        accountant_->Release(kFrameBytes);
      }
    }
    if (state != kStateShared) {
      shared_frames_.fetch_add(1, std::memory_order_relaxed);
    }
    read_ptrs_[f].store(src.data() + i * kFrameBytes, std::memory_order_release);
    states_[f].store(kStateShared, std::memory_order_release);
    BumpVersionIfCode(f);  // the frame's bytes just changed identity
  }
  // Sub-frame tail: too small to alias a whole frame, copy it.
  const uint64_t tail = src.size() - whole * kFrameBytes;
  if (tail != 0) {
    IMK_RETURN_IF_ERROR(Write(phys + whole * kFrameBytes, src.subspan(whole * kFrameBytes)));
  }
  if (owner != nullptr) {
    std::lock_guard<race::Mutex> lock(owners_mutex_);
    IMK_RACE_SHARED_WRITE("frame_store.owners", this, 0, kFrameStoreOwners);
    owners_.push_back({src.data(), src.data() + src.size(), std::move(owner)});
  }
  return OkStatus();
}

std::shared_ptr<const void> FrameStore::SharedOwner(uint64_t frame) const {
  const uint8_t* src = SharedSource(frame);
  if (src == nullptr) {
    return nullptr;
  }
  std::lock_guard<race::Mutex> lock(owners_mutex_);
  IMK_RACE_SHARED_READ("frame_store.owners", this, 0, kFrameStoreOwners);
  for (const OwnerRecord& rec : owners_) {
    if (src >= rec.begin && src < rec.end) {
      return rec.owner;
    }
  }
  return nullptr;
}

Result<uint8_t*> FrameStore::WritablePtr(uint64_t phys, uint64_t len) {
  IMK_RETURN_IF_ERROR(CheckRange(phys, len));
  if (len != 0) {
    const uint64_t last = (phys + len - 1) >> kFrameShift;
    for (uint64_t f = phys >> kFrameShift; f <= last; ++f) {
      if (!FrameDirty(f)) {
        FaultFrame(f);
      }
      // The caller is about to write through the returned pointer: retire
      // any decoded blocks over this frame (relocation fixups, SMC).
      BumpVersionIfCode(f);
    }
  }
  return arena_ + phys;
}

Result<const uint8_t*> FrameStore::ReadPtr(uint64_t phys, uint64_t len, uint8_t* scratch) const {
  IMK_RETURN_IF_ERROR(CheckRange(phys, len));
  if (len == 0) {
    return arena_ + phys;
  }
  const uint64_t first = phys >> kFrameShift;
  const uint64_t last = (phys + len - 1) >> kFrameShift;
  if (first == last) {
    return read_ptrs_[first].load(std::memory_order_acquire) + (phys & (kFrameBytes - 1));
  }
  bool contiguous = true;
  for (uint64_t f = first; f <= last; ++f) {
    if (!FrameDirty(f)) {
      contiguous = false;
      break;
    }
  }
  if (contiguous) {
    return arena_ + phys;
  }
  IMK_RETURN_IF_ERROR(Read(phys, scratch, len));
  return scratch;
}

Status FrameStore::Read(uint64_t phys, uint8_t* dst, uint64_t len) const {
  IMK_RETURN_IF_ERROR(CheckRange(phys, len));
  uint64_t cursor = phys;
  uint64_t remaining = len;
  while (remaining != 0) {
    const uint64_t f = cursor >> kFrameShift;
    const uint64_t offset = cursor & (kFrameBytes - 1);
    const uint64_t chunk = std::min(remaining, kFrameBytes - offset);
    std::memcpy(dst, read_ptrs_[f].load(std::memory_order_acquire) + offset, chunk);
    dst += chunk;
    cursor += chunk;
    remaining -= chunk;
  }
  return OkStatus();
}

Status FrameStore::Write(uint64_t phys, ByteSpan data) {
  IMK_ASSIGN_OR_RETURN(uint8_t* dst, WritablePtr(phys, data.size()));
  if (!data.empty()) {
    std::memcpy(dst, data.data(), data.size());
  }
  return OkStatus();
}

Status FrameStore::Zero(uint64_t phys, uint64_t len) {
  IMK_RETURN_IF_ERROR(CheckRange(phys, len));
  uint64_t cursor = phys;
  uint64_t remaining = len;
  while (remaining != 0) {
    const uint64_t f = cursor >> kFrameShift;
    const uint64_t offset = cursor & (kFrameBytes - 1);
    const uint64_t chunk = std::min(remaining, kFrameBytes - offset);
    // A frame still in the zero state already reads as zeros; touching it
    // would materialize it for nothing (this keeps carving device queues out
    // of untouched RAM free).
    if (StateOf(f) != FrameState::kZero) {
      if (!FrameDirty(f)) {
        FaultFrame(f);
      }
      std::memset(arena_ + cursor, 0, chunk);
      BumpVersionIfCode(f);
    }
    cursor += chunk;
    remaining -= chunk;
  }
  return OkStatus();
}

}  // namespace imk
