// Byte-accounting and reclamation interfaces the fleet memory governor
// (src/vmm/mem_governor.h) wires through the cache layers.
//
// They live in base so the stores below the vmm layer (FrameStore, the
// shared decode cache) can participate without depending on the governor:
// a store charges bytes against a ByteAccountant it was handed and never
// learns who is counting. All three contracts are deliberately tiny:
//
//   - ByteAccountant: Charge/Release a byte delta. Implementations must be
//     lock-free (atomics only) because callers invoke them while holding
//     their own cache locks — the governor's accounting side is exactly
//     that, which is what lets its mutex rank BELOW every cache lock (the
//     ladder calls into caches, never the reverse).
//   - Reclaimable: a pressure-tiered shedding hook. ReclaimMemory is called
//     with the governor mutex held, so implementations may take their own
//     (higher-ranked) locks but must never call back into the governor's
//     locked surface. OnMemoryPressure brackets a pressure epoch: caches
//     use it to stop optional background growth (pool refill) while shed.
//   - ScopedMemCharge: RAII charge that travels with the object it accounts
//     (a template's pristine image, a rendered layout). The release fires
//     when the LAST reference drops, so evicting a cache entry that a boot
//     still pins does not pretend the bytes are gone — accounted usage
//     tracks real residency, and the ladder simply moves to the next tier.
#ifndef IMKASLR_SRC_BASE_MEM_ACCOUNTING_H_
#define IMKASLR_SRC_BASE_MEM_ACCOUNTING_H_

#include <cstdint>
#include <memory>
#include <utility>

namespace imk {

class ByteAccountant {
 public:
  virtual ~ByteAccountant() = default;
  virtual void Charge(uint64_t bytes) = 0;
  virtual void Release(uint64_t bytes) = 0;
};

class Reclaimable {
 public:
  virtual ~Reclaimable() = default;
  // Shed up to `want_bytes` of this tier's optional state; returns the bytes
  // this tier stopped referencing (actual release may lag while other
  // holders still pin them). Best-effort: returning less (or 0) is fine.
  virtual uint64_t ReclaimMemory(uint64_t want_bytes) = 0;
  // Pressure-epoch bracket: true when the ladder starts shedding, false once
  // accounted usage is back under the soft watermark. Default: ignore.
  virtual void OnMemoryPressure(bool under_pressure) { (void)under_pressure; }
  // Stable tier name for reports and bench JSON.
  virtual const char* reclaim_name() const = 0;
};

// Move-only RAII charge. The shared_ptr keeps the accountant adapter alive
// with the charge, so a charge outliving its governor releases into a
// detached (no-op) adapter instead of freed memory.
class ScopedMemCharge {
 public:
  ScopedMemCharge() = default;
  ScopedMemCharge(std::shared_ptr<ByteAccountant> accountant, uint64_t bytes)
      : accountant_(std::move(accountant)), bytes_(bytes) {
    if (accountant_ != nullptr && bytes_ != 0) {
      accountant_->Charge(bytes_);
    }
  }
  ~ScopedMemCharge() { reset(); }

  ScopedMemCharge(ScopedMemCharge&& other) noexcept
      : accountant_(std::move(other.accountant_)), bytes_(other.bytes_) {
    other.accountant_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedMemCharge& operator=(ScopedMemCharge&& other) noexcept {
    if (this != &other) {
      reset();
      accountant_ = std::move(other.accountant_);
      bytes_ = other.bytes_;
      other.accountant_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedMemCharge(const ScopedMemCharge&) = delete;
  ScopedMemCharge& operator=(const ScopedMemCharge&) = delete;

  void reset() {
    if (accountant_ != nullptr && bytes_ != 0) {
      accountant_->Release(bytes_);
    }
    accountant_ = nullptr;
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }

 private:
  std::shared_ptr<ByteAccountant> accountant_;
  uint64_t bytes_ = 0;
};

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_MEM_ACCOUNTING_H_
