#include "src/base/result.h"

namespace imk {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kParseError:
      return "PARSE_ERROR";
    case ErrorCode::kUnsupported:
      return "UNSUPPORTED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kGuestFault:
      return "GUEST_FAULT";
    case ErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status ParseError(std::string message) {
  return Status(ErrorCode::kParseError, std::move(message));
}
Status UnsupportedError(std::string message) {
  return Status(ErrorCode::kUnsupported, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}
Status GuestFaultError(std::string message) {
  return Status(ErrorCode::kGuestFault, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(ErrorCode::kDeadlineExceeded, std::move(message));
}

}  // namespace imk
