#include "src/base/rng.h"

#include <random>

namespace imk {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  const uint64_t span = hi - lo + 1;
  if (span == 0) {  // full 64-bit range
    return Next();
  }
  return lo + NextBelow(span);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t HostEntropySeed() {
  std::random_device device;
  return (static_cast<uint64_t>(device()) << 32) ^ device();
}

}  // namespace imk
