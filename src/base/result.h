// Lightweight Status / Result<T> error handling for the imkaslr libraries.
//
// Library code in this project does not throw exceptions (a monitor parses
// attacker-influenced inputs such as kernel images; all failure paths must be
// explicit). Fallible functions return Status or Result<T>.
#ifndef IMKASLR_SRC_BASE_RESULT_H_
#define IMKASLR_SRC_BASE_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace imk {

// Error category for a failed operation.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something nonsensical
  kOutOfRange,        // offset/length outside a buffer or address space
  kParseError,        // malformed input image / stream
  kUnsupported,       // feature or format variant not supported
  kFailedPrecondition,  // object not in the required state
  kNotFound,          // lookup miss
  kResourceExhausted,   // out of memory / capacity
  kInternal,          // invariant violation inside the library
  kGuestFault,        // the guest vCPU faulted (bad memory access, bad opcode)
  kDeadlineExceeded,  // a watchdog deadline expired before the operation finished
};

// Human-readable name for an ErrorCode.
const char* ErrorCodeName(ErrorCode code);

// A success-or-error value. Cheap to copy on success.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

// Convenience constructors mirroring absl-style helpers.
Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status ParseError(std::string message);
Status UnsupportedError(std::string message);
Status FailedPreconditionError(std::string message);
Status NotFoundError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status GuestFaultError(std::string message);
Status DeadlineExceededError(std::string message);

// A value of type T, or a Status explaining why it could not be produced.
template <typename T>
class Result {
 public:
  // Intentionally implicit, so `return value;` and `return SomeError(...);` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(value_).ok()) {
      std::fprintf(stderr, "Result<T> constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  // Precondition: ok().
  T& value() & {
    CheckOk();
    return std::get<T>(value_);
  }
  const T& value() const& {
    CheckOk();
    return std::get<T>(value_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(value_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(value_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> value_;
};

namespace internal {
// Uniform Status extraction so IMK_RETURN_IF_ERROR accepts either a Status
// or a Result<T> expression (the value of a Result is discarded; callers that
// want it use IMK_ASSIGN_OR_RETURN).
inline Status ToStatus(Status status) { return status; }
template <typename T>
Status ToStatus(const Result<T>& result) {
  return result.status();
}
}  // namespace internal

// Propagate an error from an expression returning Status or Result<T>.
#define IMK_RETURN_IF_ERROR(expr)                             \
  do {                                                        \
    ::imk::Status imk_status_ = ::imk::internal::ToStatus((expr)); \
    if (!imk_status_.ok()) {                                  \
      return imk_status_;                                     \
    }                                                         \
  } while (0)

// Assign the value of a Result expression to `lhs`, or propagate its error.
// Usage: IMK_ASSIGN_OR_RETURN(auto image, LoadImage(path));
#define IMK_ASSIGN_OR_RETURN(lhs, expr)                    \
  IMK_ASSIGN_OR_RETURN_IMPL_(IMK_CONCAT_(imk_result_, __LINE__), lhs, expr)

#define IMK_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#define IMK_CONCAT_INNER_(a, b) a##b
#define IMK_CONCAT_(a, b) IMK_CONCAT_INNER_(a, b)

// Assign the value of a Result expression to an optional-like `lhs`, leaving
// it unset when the error is exactly `tolerated` (a property of the input,
// not a failure) and propagating every other error. Replaces the hand-rolled
//   auto r = F(); if (r.ok()) lhs = *r; else if (r.status().code() != C) return r.status();
// chains in template/metadata extraction.
#define IMK_ASSIGN_OPTIONAL_OR_RETURN(lhs, expr, tolerated) \
  IMK_ASSIGN_OPTIONAL_OR_RETURN_IMPL_(IMK_CONCAT_(imk_result_, __LINE__), lhs, expr, tolerated)

#define IMK_ASSIGN_OPTIONAL_OR_RETURN_IMPL_(tmp, lhs, expr, tolerated) \
  do {                                                                 \
    auto tmp = (expr);                                                 \
    if (tmp.ok()) {                                                    \
      lhs = std::move(tmp).value();                                    \
    } else if (tmp.status().code() != (tolerated)) {                   \
      return tmp.status();                                             \
    }                                                                  \
  } while (0)

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_RESULT_H_
