// Monotonic wall-clock stopwatch used for all "measured" time in the harness.
#ifndef IMKASLR_SRC_BASE_STOPWATCH_H_
#define IMKASLR_SRC_BASE_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace imk {

// Nanoseconds since an arbitrary monotonic epoch.
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Measures elapsed wall time between Start() (or construction) and ElapsedNs().
class Stopwatch {
 public:
  Stopwatch() : start_ns_(MonotonicNowNs()) {}

  void Start() { start_ns_ = MonotonicNowNs(); }
  uint64_t ElapsedNs() const { return MonotonicNowNs() - start_ns_; }
  double ElapsedMs() const { return static_cast<double>(ElapsedNs()) / 1e6; }

 private:
  uint64_t start_ns_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_STOPWATCH_H_
