// Simple summary statistics for repeated measurements (the paper reports
// mean over 100 boots with min/max error bars).
#ifndef IMKASLR_SRC_BASE_STATS_H_
#define IMKASLR_SRC_BASE_STATS_H_

#include <cstddef>
#include <vector>

namespace imk {

// Accumulates samples and reports min / mean / max / stddev.
class Summary {
 public:
  void Add(double sample);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  // p in [0, 100].
  double percentile(double p) const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_STATS_H_
