// FrameStore: paged guest physical memory with copy-on-write frames.
//
// RAM is a table of 4 KiB frames, each in one of three states:
//   - zero:   untouched RAM; reads see zeros, nothing is materialized.
//   - shared: the frame aliases immutable bytes owned by someone else
//             (an ImageTemplate's pristine image) — the monitor-CoW
//             mapping the paper's §6 density argument relies on.
//   - dirty:  the frame was written; its bytes live in this store's
//             private arena.
//
// The private arena is one contiguous lazily-backed allocation (calloc, so
// untouched frames cost address space, not resident memory). Because every
// materialized frame lands at arena + frame * kFrameBytes, any fully
// materialized range is host-contiguous: WritablePtr can hand out flat
// pointers spanning many frames, which is what lets the relocator and
// FGKASLR mover run unmodified over paged memory.
//
// Thread safety: concurrent WritablePtr/Read/Write calls on disjoint byte
// ranges are safe even when they share frames (the loader's ThreadPool
// shards do exactly that). Faulting is guarded by sharded mutexes; frame
// state and read pointers are released/acquired so a reader never observes
// a frame pointer before the bytes behind it are in place.
#ifndef IMKASLR_SRC_BASE_FRAME_STORE_H_
#define IMKASLR_SRC_BASE_FRAME_STORE_H_

#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/mem_accounting.h"
#include "src/base/result.h"
#include "src/race/annotations.h"
#include "src/race/mutex.h"

namespace imk {

class FrameStore {
 public:
  static constexpr uint64_t kFrameBytes = 4096;

  // Owning store: `size_bytes` of RAM, all frames zero.
  explicit FrameStore(uint64_t size_bytes);
  // Flat adapter: wraps caller-owned storage, every frame pre-materialized
  // (no CoW). Used where a plain byte buffer must act as guest memory.
  explicit FrameStore(MutableByteSpan external);
  ~FrameStore();
  FrameStore(const FrameStore&) = delete;
  FrameStore& operator=(const FrameStore&) = delete;

  uint64_t size() const { return size_; }
  uint64_t frame_count() const { return frame_count_; }

  // Aliases whole frames of [phys, phys + src.size()) to `src` zero-copy;
  // the sub-frame tail (if any) is copied into the arena. `phys` must be
  // frame-aligned; `src` must stay immutable and outlive the mapping
  // (`owner` pins it). Previously dirty frames revert to shared.
  Status MapShared(uint64_t phys, ByteSpan src, std::shared_ptr<const void> owner);

  // Write access: materializes every frame covering [phys, phys + len) and
  // returns the contiguous arena pointer. Thread-safe.
  Result<uint8_t*> WritablePtr(uint64_t phys, uint64_t len);

  // Read access without materializing. Fast path returns a direct pointer
  // (single frame, or an already-contiguous dirty run); a range straddling
  // a shared/zero frame boundary is gathered into `scratch`, which must
  // hold `len` bytes.
  Result<const uint8_t*> ReadPtr(uint64_t phys, uint64_t len, uint8_t* scratch) const;

  // Gather-copies [phys, phys + len) into `dst` without materializing.
  Status Read(uint64_t phys, uint8_t* dst, uint64_t len) const;

  // Copies `data` into the store (materializing covered frames).
  Status Write(uint64_t phys, ByteSpan data);

  // Zero-fills [phys, phys + len). Frames still in the zero state are left
  // untouched (no materialization — this is what keeps device-queue carving
  // free); shared/dirty frames are materialized and cleared.
  Status Zero(uint64_t phys, uint64_t len);

  // Direct per-frame inspection (for sharing reports).
  enum class FrameState : uint8_t { kZero = 0, kShared = 1, kDirty = 2 };
  FrameState StateOf(uint64_t frame) const {
    return static_cast<FrameState>(states_[frame].load(std::memory_order_acquire));
  }
  // Lock-free pointer to the frame's current kFrameBytes of content (arena
  // slot for zero/dirty frames, the owner's bytes for shared frames). A
  // shared->dirty CoW fault retargets it; callers caching the pointer (the
  // interpreter's read TLB) must flush on that transition.
  const uint8_t* FrameReadPtr(uint64_t frame) const {
    return read_ptrs_[frame].load(std::memory_order_acquire);
  }
  // For a shared frame: the immutable source bytes it aliases (template
  // identity for cross-VM sharing analysis). nullptr otherwise.
  const uint8_t* SharedSource(uint64_t frame) const {
    return StateOf(frame) == FrameState::kShared
               ? read_ptrs_[frame].load(std::memory_order_acquire)
               : nullptr;
  }
  // For a shared frame: the shared_ptr that pins the bytes SharedSource()
  // points into (the MapShared `owner`). The shared block cache stores it
  // in each published entry, so a template's addresses can never be freed
  // and reused while decoded blocks keyed by them are resident — which is
  // what makes the pointer-based cache key collision-free without any
  // per-grab source re-hash. Null for non-shared frames and for mappings
  // installed without an owner (whose caller pins the bytes itself).
  std::shared_ptr<const void> SharedOwner(uint64_t frame) const;

  // ---- decoded-code invalidation protocol (src/isa/block_cache.h) ----
  //
  // The block-cache engine decodes guest basic blocks once and re-executes
  // the decoded form, so any write into a frame that holds decoded code
  // (relocation fixups, self-modifying code) must invalidate those blocks.
  // The store keeps a per-frame version counter: every mutation path
  // (WritablePtr, Zero, MapShared) bumps the version of each covered frame
  // that an execution engine flagged as code-bearing, and cached blocks
  // record the versions they were decoded under — a mismatch at dispatch
  // time retires the block. Unflagged frames skip the bump entirely, so the
  // loader's write-heavy phases pay one relaxed load per frame per call.
  uint32_t FrameVersion(uint64_t frame) const {
    return versions_[frame].load(std::memory_order_relaxed);
  }
  // Flags `frame` as holding decoded code; writes into it bump its version
  // from then on. Sticky for the store's lifetime (re-decoding after a
  // version bump keeps the flag set).
  void MarkCodeFrame(uint64_t frame) {
    code_flags_[frame].store(1, std::memory_order_relaxed);
  }
  bool IsCodeFrame(uint64_t frame) const {
    return code_flags_[frame].load(std::memory_order_relaxed) != 0;
  }
  // Write-path hook: bump the version iff the frame is code-flagged. Public
  // so the interpreter's write TLB (which bypasses WritablePtr on hits) can
  // keep the invalidation protocol honest per store.
  void BumpVersionIfCode(uint64_t frame) {
    if (IsCodeFrame(frame)) {
      versions_[frame].fetch_add(1, std::memory_order_relaxed);
    }
  }

  // External byte accounting (the fleet memory governor's guest-frames
  // category): every dirty-frame materialization charges kFrameBytes, every
  // dirty->shared revert and the destructor release what they un-dirty.
  // Attach before the store is visible to other threads (the MicroVm ctor
  // does); attaching charges the current dirty residency so a store that
  // pre-dirtied frames (the flat adapter) is accounted from the start.
  void set_accountant(std::shared_ptr<ByteAccountant> accountant) {
    const uint64_t resident = dirty_bytes();
    if (accountant_ != nullptr && resident != 0) {
      accountant_->Release(resident);
    }
    accountant_ = std::move(accountant);
    if (accountant_ != nullptr && resident != 0) {
      accountant_->Charge(resident);
    }
  }

  // Accounting. dirty = privately materialized, shared = template-aliased,
  // zero = untouched. dirty + shared + zero == frame_count.
  uint64_t dirty_frames() const { return dirty_frames_.load(std::memory_order_relaxed); }
  uint64_t shared_frames() const { return shared_frames_.load(std::memory_order_relaxed); }
  uint64_t zero_frames() const { return frame_count_ - dirty_frames() - shared_frames(); }
  uint64_t dirty_bytes() const { return dirty_frames() * kFrameBytes; }

 private:
  static constexpr uint64_t kFrameShift = 12;
  static constexpr size_t kFaultShards = 64;

  Status CheckRange(uint64_t phys, uint64_t len) const {
    if (phys > size_ || len > size_ - phys) {
      return OutOfRangeError("guest physical range out of bounds");
    }
    return OkStatus();
  }
  uint8_t* arena_frame(uint64_t frame) { return arena_ + (frame << kFrameShift); }
  const uint8_t* arena_frame(uint64_t frame) const { return arena_ + (frame << kFrameShift); }
  bool FrameDirty(uint64_t frame) const {
    return states_[frame].load(std::memory_order_acquire) ==
           static_cast<uint8_t>(FrameState::kDirty);
  }
  // Slow path: copy-on-write fault for one frame.
  void FaultFrame(uint64_t frame);

  uint64_t size_ = 0;
  uint64_t frame_count_ = 0;
  uint8_t* arena_ = nullptr;           // full-size backing (owned unless external)
  bool owns_arena_ = false;
  // Per-frame state and read pointer. The read pointer is always valid for
  // reading kFrameBytes (zero frames point at their — still zero — arena
  // slot, shared frames at the owner's bytes, dirty frames at the arena).
  // Reads are lock-free (acquire); state *transitions* happen only under
  // the frame's fault shard, which is what the annotations assert.
  std::unique_ptr<std::atomic<const uint8_t*>[]> read_ptrs_
      IMK_GUARDED_BY(kFrameStoreFaultShard);
  std::unique_ptr<std::atomic<uint8_t>[]> states_ IMK_GUARDED_BY(kFrameStoreFaultShard);
  // Per-frame decode-invalidation state: version counters bumped on writes
  // into code-flagged frames. Lock-free relaxed atomics: a VM's vCPU is
  // single-threaded, and cross-thread writers (loader shards) only ever run
  // before the guest does, so the counter needs atomicity, not ordering.
  std::unique_ptr<std::atomic<uint32_t>[]> versions_;
  std::unique_ptr<std::atomic<uint8_t>[]> code_flags_;
  std::atomic<uint64_t> dirty_frames_{0};
  std::atomic<uint64_t> shared_frames_{0};
  std::shared_ptr<ByteAccountant> accountant_;  // null = unaccounted
  // Default-constructed unranked; the constructors declare every shard's
  // rank before the store is visible to any other thread.
  std::array<race::Mutex, kFaultShards> fault_shards_;
  // One record per MapShared call (a handful per boot: the kernel image,
  // maybe an initrd) — SharedOwner resolves a frame's source pointer to its
  // pinning owner by linear scan over these spans.
  struct OwnerRecord {
    const uint8_t* begin;
    const uint8_t* end;
    std::shared_ptr<const void> owner;
  };
  mutable race::Mutex owners_mutex_{race::LockRank::kFrameStoreOwners};
  std::vector<OwnerRecord> owners_ IMK_GUARDED_BY(kFrameStoreOwners);
};

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_FRAME_STORE_H_
