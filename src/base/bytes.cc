#include "src/base/bytes.h"

#include <cstdio>

namespace imk {

std::string HumanSize(uint64_t bytes) {
  char buf[32];
  if (bytes >= 10ULL * 1024 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%lluG", static_cast<unsigned long long>(bytes >> 30));
  } else if (bytes >= 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fG", static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 10ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%lluM", static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= 1024ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 10ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%lluK", static_cast<unsigned long long>(bytes >> 10));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string HexString(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace imk
