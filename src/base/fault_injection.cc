#include "src/base/fault_injection.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace imk {
namespace {

// splitmix64: the decision hash. Statistically uniform per step, and cheap
// enough to run per eligible hit.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashString(const char* s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (; *s != 0; ++s) {
    h = (h ^ static_cast<uint8_t>(*s)) * 0x100000001b3ull;
  }
  return h;
}

// The per-hit decision value in [0, 1): pure in (seed, point, hit index).
double DecisionUnit(uint64_t seed, const char* point, uint64_t hit) {
  const uint64_t h = Mix64(seed ^ Mix64(HashString(point)) ^ Mix64(hit));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

Result<FaultFlavor> ParseFlavor(const std::string& name) {
  if (name == "error") {
    return FaultFlavor::kError;
  }
  if (name == "short") {
    return FaultFlavor::kShort;
  }
  if (name == "corrupt") {
    return FaultFlavor::kCorrupt;
  }
  if (name == "delay") {
    return FaultFlavor::kDelay;
  }
  return InvalidArgumentError("unknown fault flavor: " + name);
}

}  // namespace

const char* FaultFlavorName(FaultFlavor flavor) {
  switch (flavor) {
    case FaultFlavor::kError:
      return "error";
    case FaultFlavor::kShort:
      return "short";
    case FaultFlavor::kCorrupt:
      return "corrupt";
    case FaultFlavor::kDelay:
      return "delay";
  }
  return "unknown";
}

Result<ErrorCode> ParseErrorCodeName(const std::string& name) {
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) {
    upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  for (int code = static_cast<int>(ErrorCode::kInvalidArgument);
       code <= static_cast<int>(ErrorCode::kDeadlineExceeded); ++code) {
    if (upper == ErrorCodeName(static_cast<ErrorCode>(code))) {
      return static_cast<ErrorCode>(code);
    }
  }
  return InvalidArgumentError("unknown error code name: " + name);
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec, uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed != 0 ? seed : 1;
  if (spec.empty()) {
    return plan;
  }
  for (const std::string& rule_text : Split(spec, ';')) {
    if (rule_text.empty()) {
      continue;
    }
    std::vector<std::string> parts = Split(rule_text, ':');
    if (parts.size() < 2 || parts[0].empty()) {
      return InvalidArgumentError("fault rule needs point:flavor — got \"" + rule_text + "\"");
    }
    FaultRule rule;
    rule.point = parts[0];
    IMK_ASSIGN_OR_RETURN(rule.flavor, ParseFlavor(parts[1]));
    for (size_t i = 2; i < parts.size(); ++i) {
      const std::string& opt = parts[i];
      const size_t eq = opt.find('=');
      if (eq == std::string::npos) {
        return InvalidArgumentError("fault rule option needs key=value: " + opt);
      }
      const std::string key = opt.substr(0, eq);
      const std::string value = opt.substr(eq + 1);
      if (key == "p") {
        rule.probability = std::atof(value.c_str());
        if (rule.probability < 0.0 || rule.probability > 1.0) {
          return InvalidArgumentError("fault probability must be in [0,1]: " + value);
        }
      } else if (key == "n") {
        rule.nth = std::strtoull(value.c_str(), nullptr, 10);
        if (rule.nth == 0) {
          return InvalidArgumentError("fault nth trigger is 1-based: " + value);
        }
      } else if (key == "max") {
        rule.max_fires = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "us") {
        rule.delay_us = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "bytes") {
        rule.corrupt_bytes = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "code") {
        IMK_ASSIGN_OR_RETURN(rule.error, ParseErrorCodeName(value));
      } else {
        return InvalidArgumentError("unknown fault rule option: " + key);
      }
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultRule& rule : rules) {
    if (!out.empty()) {
      out += ';';
    }
    out += rule.point;
    out += ':';
    out += FaultFlavorName(rule.flavor);
    if (rule.nth != 0) {
      out += ":n=" + std::to_string(rule.nth);
    } else if (rule.probability != 1.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ":p=%g", rule.probability);
      out += buf;
    }
    if (rule.max_fires != UINT64_MAX) {
      out += ":max=" + std::to_string(rule.max_fires);
    }
  }
  return out;
}

const std::vector<std::string>& KnownFaultPoints() {
  // Sorted. Keep in sync with every IMK_FAULT_* macro use in src/ — the
  // FaultRegistry test greps the tree and diffs against this list, and
  // race.* are the drill triggers fired from boot_storm's audit path.
  static const std::vector<std::string>* points = new std::vector<std::string>{
      "frame_store.map_shared",
      "interp.blockcache",
      "loader.choose",
      "loader.map_pristine",
      "loader.reloc",
      "mem.pressure_hard",
      "mem.pressure_soft",
      "mem.reclaim",
      "pool.refill",
      "pool.render",
      "race.lockset_drill",
      "race.order_drill",
      "relocator.apply",
      "storage.read",
      "template.cache_hit",
      "template.parse",
      "threadpool.chunk",
      "trace.buffer_full",
      "vcpu.enter",
  };
  return *points;
}

std::atomic<bool> FaultInjector::armed_flag_{false};

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(FaultPlan plan) {
  std::lock_guard<race::Mutex> lock(mutex_);
  seed_ = plan.seed != 0 ? plan.seed : 1;
  rules_.clear();
  rules_.reserve(plan.rules.size());
  for (FaultRule& rule : plan.rules) {
    rules_.push_back(RuleState{std::move(rule), 0, 0});
  }
  point_hits_.clear();
  armed_flag_.store(!rules_.empty(), std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<race::Mutex> lock(mutex_);
  armed_flag_.store(false, std::memory_order_release);
  rules_.clear();
  point_hits_.clear();
}

FaultInjector::RuleState* FaultInjector::FireLocked(const char* point) {
  RuleState* fired = nullptr;
  bool any_eligible = false;
  for (RuleState& state : rules_) {
    if (state.rule.point != point) {
      continue;
    }
    any_eligible = true;
    const uint64_t hit = ++state.hits;  // 1-based eligible-hit index
    if (state.fires >= state.rule.max_fires) {
      continue;
    }
    bool fire;
    if (state.rule.nth != 0) {
      fire = hit == state.rule.nth;
    } else {
      fire = DecisionUnit(seed_, point, hit) < state.rule.probability;
    }
    if (fire && fired == nullptr) {
      ++state.fires;
      fired = &state;
    }
  }
  if (any_eligible) {
    ++point_hits_[point];
  }
  return fired;
}

Status FaultInjector::Check(const char* point) {
  uint64_t delay_us = 0;
  Status status = OkStatus();
  {
    std::lock_guard<race::Mutex> lock(mutex_);
    RuleState* fired = FireLocked(point);
    if (fired != nullptr) {
      if (fired->rule.flavor == FaultFlavor::kError) {
        status = Status(fired->rule.error,
                        std::string("injected fault at ") + point + " (hit " +
                            std::to_string(fired->hits) + ")");
      } else if (fired->rule.flavor == FaultFlavor::kDelay) {
        delay_us = fired->rule.delay_us;
      }
      // Short/corrupt rules carry no payload here; the data-bearing macros
      // cover them. Their fire is still counted (the plan asked for it).
    }
  }
  if (delay_us != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  return status;
}

uint64_t FaultInjector::Truncate(const char* point, uint64_t len) {
  std::lock_guard<race::Mutex> lock(mutex_);
  RuleState* fired = FireLocked(point);
  if (fired == nullptr || fired->rule.flavor != FaultFlavor::kShort || len == 0) {
    return len;
  }
  // Deterministic short length in [0, len): derived from the same decision
  // stream as the trigger so a (seed, hit) pair always truncates alike.
  return static_cast<uint64_t>(DecisionUnit(seed_ ^ 0x5eed, point, fired->hits) *
                               static_cast<double>(len));
}

bool FaultInjector::Corrupt(const char* point, uint8_t* data, uint64_t len) {
  std::lock_guard<race::Mutex> lock(mutex_);
  RuleState* fired = FireLocked(point);
  if (fired == nullptr || fired->rule.flavor != FaultFlavor::kCorrupt || len == 0 ||
      data == nullptr) {
    return false;
  }
  const uint64_t n = std::max<uint64_t>(1, std::min(fired->rule.corrupt_bytes, len));
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t h = Mix64(seed_ ^ Mix64(HashString(point)) ^ Mix64(fired->hits * 131 + i));
    data[h % len] ^= static_cast<uint8_t>(0x80 | (h >> 56));
  }
  return true;
}

uint64_t FaultInjector::hits_total() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [point, hits] : point_hits_) {
    total += hits;
  }
  return total;
}

uint64_t FaultInjector::fires_total() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  uint64_t total = 0;
  for (const RuleState& state : rules_) {
    total += state.fires;
  }
  return total;
}

std::vector<FaultInjector::PointCount> FaultInjector::Counts() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  std::vector<PointCount> out;
  for (const RuleState& state : rules_) {
    PointCount count;
    count.point = state.rule.point;
    count.hits = state.hits;
    count.fires = state.fires;
    out.push_back(std::move(count));
  }
  return out;
}

}  // namespace imk
