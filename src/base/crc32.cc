#include "src/base/crc32.h"

#include <array>
#include <cstring>

namespace imk {
namespace {

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table; table[k]
// gives the contribution of a byte processed k positions earlier, so eight
// bytes can be folded into the crc with eight independent lookups per
// iteration instead of a serial dependency chain per byte.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (uint32_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[k][i] = tables[0][tables[k - 1][i] & 0xff] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

}  // namespace

uint32_t Crc32Update(uint32_t crc, ByteSpan data) {
  crc = ~crc;
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = kTables[7][lo & 0xff] ^ kTables[6][(lo >> 8) & 0xff] ^
          kTables[5][(lo >> 16) & 0xff] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xff] ^ kTables[2][(hi >> 8) & 0xff] ^
          kTables[1][(hi >> 16) & 0xff] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(ByteSpan data) { return Crc32Update(0, data); }

}  // namespace imk
