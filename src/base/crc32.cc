#include "src/base/crc32.h"

#include <array>

namespace imk {
namespace {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32Update(uint32_t crc, ByteSpan data) {
  crc = ~crc;
  for (uint8_t b : data) {
    crc = kTable[(crc ^ b) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(ByteSpan data) { return Crc32Update(0, data); }

}  // namespace imk
