// Deadline: a wall-clock watchdog budget threaded through the boot pipeline.
//
// The boot supervisor arms one Deadline per boot attempt; the loader checks
// it between pipeline stages and the interpreter every few tens of thousands
// of guest instructions. Cooperative checking keeps cancellation free of
// threads and signals: a stuck stage is bounded by the longest interval
// between checks, which every long-running loop in the monitor keeps small.
//
// A default-constructed Deadline never expires, so call sites can hold an
// always-valid pointer and skip null checks on the hot path.
#ifndef IMKASLR_SRC_BASE_DEADLINE_H_
#define IMKASLR_SRC_BASE_DEADLINE_H_

#include <cstdint>
#include <string>

#include "src/base/result.h"
#include "src/base/stopwatch.h"

namespace imk {

class Deadline {
 public:
  // Never expires.
  Deadline() = default;

  // Expires `ns` monotonic nanoseconds from now.
  static Deadline AfterNs(uint64_t ns) {
    Deadline d;
    d.deadline_ns_ = MonotonicNowNs() + ns;
    return d;
  }
  static Deadline AfterMs(uint64_t ms) { return AfterNs(ms * 1000000ull); }

  bool unlimited() const { return deadline_ns_ == 0; }
  bool expired() const { return deadline_ns_ != 0 && MonotonicNowNs() >= deadline_ns_; }

  // kDeadlineExceeded naming the stage that observed the expiry, OK otherwise.
  Status Check(const char* stage) const {
    if (expired()) {
      return DeadlineExceededError(std::string("watchdog deadline expired at ") + stage);
    }
    return OkStatus();
  }

  // Nanoseconds left (0 when expired; UINT64_MAX when unlimited).
  uint64_t RemainingNs() const {
    if (unlimited()) {
      return UINT64_MAX;
    }
    const uint64_t now = MonotonicNowNs();
    return now >= deadline_ns_ ? 0 : deadline_ns_ - now;
  }

 private:
  uint64_t deadline_ns_ = 0;  // 0 = unlimited
};

// The shared never-expiring instance call sites point at by default.
inline const Deadline& NoDeadline() {
  static const Deadline unlimited;
  return unlimited;
}

}  // namespace imk

#endif  // IMKASLR_SRC_BASE_DEADLINE_H_
