#include "src/base/threadpool.h"

#include "src/base/fault_injection.h"

namespace imk {

ThreadPool::ThreadPool(uint32_t workers) : workers_(workers) {
  if (workers_ == 0) {
    workers_ = std::thread::hardware_concurrency();
    if (workers_ == 0) {
      workers_ = 1;
    }
  }
  threads_.reserve(workers_ - 1);
  for (uint32_t i = 0; i + 1 < workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<race::Mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
  // Submit guarantees every task eventually runs; anything the workers did
  // not get to (or, for a 1-worker pool, could never get to) runs here, with
  // no workers left to race.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<race::Mutex> lock(mutex_);
      if (tasks_.empty()) {
        break;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<race::Mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::RunChunks(const std::shared_ptr<Job>& job) {
  for (;;) {
    const uint32_t chunk = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job->chunks) {
      return;
    }
    auto [begin, end] = ChunkRange(job->n, job->chunks, chunk);
    // Delay-only point: models a straggler worker (CPU steal, page-in stall)
    // so watchdog drills can slow parallel stages without corrupting them.
    IMK_FAULT_DELAY("threadpool.chunk");
    try {
      (*job->fn)(chunk, begin, end);
    } catch (...) {
      job->errors[chunk] = std::current_exception();
    }
    if (job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk done: wake the caller. The lock orders the wake against
      // the caller's predicate check.
      std::lock_guard<race::Mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    std::function<void()> task;
    {
      std::unique_lock<race::Mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation || !tasks_.empty();
      });
      if (shutdown_) {
        return;
      }
      if (generation_ != seen_generation) {
        // A ParallelFor generation always outranks the task queue: the hot
        // path never waits behind background work that has not started yet.
        seen_generation = generation_;
        job = job_;  // shared ownership keeps the job alive past the caller
      } else {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (job != nullptr) {
      RunChunks(job);
    } else if (task) {
      task();
    }
  }
}

void ThreadPool::ParallelForChunked(
    uint64_t n, uint32_t chunks,
    const std::function<void(uint32_t, uint64_t, uint64_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (chunks == 0) {
    chunks = 1;
  }
  // More chunks than items would only yield empty ranges; clamp so every
  // chunk is non-empty and the partition stays the documented one.
  if (chunks > n) {
    chunks = static_cast<uint32_t>(n);
  }
  if (workers_ == 1 || chunks == 1) {
    // Inline path: same partition, same order, no synchronization.
    std::exception_ptr first_error;
    for (uint32_t i = 0; i < chunks; ++i) {
      auto [begin, end] = ChunkRange(n, chunks, i);
      try {
        fn(i, begin, end);
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
    if (first_error) {
      std::rethrow_exception(first_error);
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->n = n;
  job->chunks = chunks;
  job->fn = &fn;
  job->pending.store(chunks, std::memory_order_relaxed);
  job->errors.assign(chunks, nullptr);
  {
    std::lock_guard<race::Mutex> lock(mutex_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();
  RunChunks(job);  // the caller is a lane too
  {
    std::unique_lock<race::Mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job->pending.load(std::memory_order_acquire) == 0; });
    job_ = nullptr;
  }
  // `fn` may not be touched by workers past this point: pending == 0 means
  // every chunk body finished, and late cursor reads only see exhaustion.
  // Deterministic propagation: the lowest-index failure wins regardless of
  // which worker hit it first.
  for (uint32_t i = 0; i < chunks; ++i) {
    if (job->errors[i]) {
      std::rethrow_exception(job->errors[i]);
    }
  }
}

}  // namespace imk
