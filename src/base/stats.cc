#include "src/base/stats.h"

#include <algorithm>
#include <cmath>

namespace imk {

void Summary::Add(double sample) { samples_.push_back(sample); }

double Summary::min() const {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

double Summary::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) {
    acc += (s - m) * (s - m);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace imk
