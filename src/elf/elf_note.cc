#include "src/elf/elf_note.h"

#include "src/base/align.h"
#include "src/elf/elf_types.h"

namespace imk {

Bytes BuildNoteSection(const std::vector<ElfNote>& notes) {
  ByteWriter out;
  for (const ElfNote& note : notes) {
    out.WriteU32(static_cast<uint32_t>(note.name.size() + 1));
    out.WriteU32(static_cast<uint32_t>(note.desc.size()));
    out.WriteU32(note.type);
    out.WriteString(note.name);
    out.WriteU8(0);
    out.AlignTo(4);
    out.WriteBytes(ByteSpan(note.desc));
    out.AlignTo(4);
  }
  return out.Take();
}

Result<std::vector<ElfNote>> ParseNoteSection(ByteSpan data) {
  std::vector<ElfNote> notes;
  ByteReader reader(data);
  while (!reader.AtEnd()) {
    IMK_ASSIGN_OR_RETURN(uint32_t namesz, reader.ReadU32());
    IMK_ASSIGN_OR_RETURN(uint32_t descsz, reader.ReadU32());
    IMK_ASSIGN_OR_RETURN(uint32_t type, reader.ReadU32());
    IMK_ASSIGN_OR_RETURN(ByteSpan name_bytes, reader.ReadBytes(namesz));
    IMK_RETURN_IF_ERROR(reader.Skip(AlignUp(namesz, 4) - namesz));
    IMK_ASSIGN_OR_RETURN(ByteSpan desc_bytes, reader.ReadBytes(descsz));
    IMK_RETURN_IF_ERROR(reader.Skip(AlignUp(descsz, 4) - descsz));

    ElfNote note;
    note.type = type;
    if (namesz > 0) {
      // Name is NUL-terminated; strip the terminator.
      note.name.assign(reinterpret_cast<const char*>(name_bytes.data()), namesz - 1);
    }
    note.desc.assign(desc_bytes.begin(), desc_bytes.end());
    notes.push_back(std::move(note));
  }
  return notes;
}

Bytes EncodeKernelConstants(const KernelConstantsNote& constants) {
  ByteWriter out;
  out.WriteU64(constants.physical_start);
  out.WriteU64(constants.physical_align);
  out.WriteU64(constants.start_kernel_map);
  out.WriteU64(constants.kernel_image_size);
  return out.Take();
}

Result<KernelConstantsNote> DecodeKernelConstants(ByteSpan desc) {
  ByteReader reader(desc);
  KernelConstantsNote constants;
  IMK_ASSIGN_OR_RETURN(constants.physical_start, reader.ReadU64());
  IMK_ASSIGN_OR_RETURN(constants.physical_align, reader.ReadU64());
  IMK_ASSIGN_OR_RETURN(constants.start_kernel_map, reader.ReadU64());
  IMK_ASSIGN_OR_RETURN(constants.kernel_image_size, reader.ReadU64());
  return constants;
}

std::optional<KernelConstantsNote> FindKernelConstants(const std::vector<ElfNote>& notes) {
  for (const ElfNote& note : notes) {
    if (note.name == kNoteNameImk && note.type == kNoteTypeKernelConstants) {
      auto decoded = DecodeKernelConstants(ByteSpan(note.desc));
      if (decoded.ok()) {
        return *decoded;
      }
    }
  }
  return std::nullopt;
}

}  // namespace imk
