// ELF64 image builder used by the synthetic kernel generator.
//
// The writer produces fully valid ELF64 executables: program headers whose
// file images cover their sections (with inter-section padding where virtual
// addresses have gaps), a section header table, .symtab/.strtab built from
// added symbols, and .shstrtab.
#ifndef IMKASLR_SRC_ELF_ELF_WRITER_H_
#define IMKASLR_SRC_ELF_ELF_WRITER_H_

#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/elf/elf_types.h"

namespace imk {

// Description of one section to be emitted.
struct SectionSpec {
  std::string name;
  uint32_t type = kShtProgbits;
  uint64_t flags = 0;
  uint64_t addr = 0;       // virtual address (0 for non-alloc sections)
  uint64_t addralign = 1;  // required alignment of addr / file offset
  uint64_t entsize = 0;
  Bytes data;              // ignored for SHT_NOBITS
  uint64_t nobits_size = 0;  // size for SHT_NOBITS sections
};

// Builds an ELF64 executable image in memory.
class ElfWriter {
 public:
  ElfWriter(uint16_t machine, uint16_t type);

  void set_entry(uint64_t entry) { entry_ = entry; }

  // Adds a section; returns its index in the final section table. Index 0 is
  // reserved for the null section, so the first added section gets index 1.
  size_t AddSection(SectionSpec spec);

  // Declares a PT_LOAD segment covering the given (already added) sections.
  // Sections must be listed in increasing virtual address order and may not
  // overlap. All but the last must not be SHT_NOBITS. `paddr_delta` is
  // subtracted from vaddr to form paddr (kernels load at paddr != vaddr).
  void AddLoadSegment(std::vector<size_t> section_indices, uint32_t flags, uint64_t paddr_delta);

  // Declares a PT_NOTE segment covering one note section.
  void AddNoteSegment(size_t section_index);

  // Adds a symbol to the generated .symtab.
  void AddSymbol(std::string name, uint64_t value, uint64_t size, uint8_t info, uint16_t shndx);

  // Serializes the image. The writer may not be reused afterwards.
  Result<Bytes> Finish();

 private:
  struct Segment {
    uint32_t type;
    uint32_t flags;
    uint64_t paddr_delta;
    std::vector<size_t> sections;
  };
  struct SymbolEntry {
    std::string name;
    uint64_t value;
    uint64_t size;
    uint8_t info;
    uint16_t shndx;
  };

  struct SymtabLinkInfo {
    size_t symtab_index = 0;
    size_t strtab_index = 0;
    size_t first_global = 0;
  };

  uint16_t machine_;
  uint16_t type_;
  uint64_t entry_ = 0;
  std::vector<SectionSpec> sections_;  // index 0 = null section (empty spec)
  std::vector<Segment> segments_;
  std::vector<SymbolEntry> symbols_;
  SymtabLinkInfo symtab_link_info_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_ELF_ELF_WRITER_H_
