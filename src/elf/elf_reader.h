// Validating ELF64 reader. The monitor treats kernel images as untrusted
// input, so every offset/size from the file is bounds-checked before use.
#ifndef IMKASLR_SRC_ELF_ELF_READER_H_
#define IMKASLR_SRC_ELF_ELF_READER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/elf/elf_types.h"

namespace imk {

// A parsed symbol (from .symtab + its string table).
struct ElfSymbol {
  std::string name;
  uint64_t value = 0;
  uint64_t size = 0;
  uint8_t info = 0;
  uint16_t shndx = 0;
};

// A section header paired with its resolved name.
struct ElfSection {
  std::string name;
  Elf64Shdr header{};
  size_t index = 0;
};

// Parses an ELF64 image held in memory. The reader does not own the bytes;
// the caller keeps them alive while the reader (and any spans it returned)
// are in use.
class ElfReader {
 public:
  // Parses and validates headers; fails with kParseError on malformed input.
  static Result<ElfReader> Parse(ByteSpan image);

  const Elf64Ehdr& header() const { return ehdr_; }
  uint64_t entry() const { return ehdr_.e_entry; }
  uint16_t machine() const { return ehdr_.e_machine; }

  const std::vector<Elf64Phdr>& program_headers() const { return phdrs_; }
  const std::vector<ElfSection>& sections() const { return sections_; }

  // Section lookup by exact name; kNotFound if missing.
  Result<const ElfSection*> FindSection(std::string_view name) const;

  // File bytes backing a section (empty span for SHT_NOBITS).
  Result<ByteSpan> SectionData(const ElfSection& section) const;

  // File bytes backing a program header's file image.
  Result<ByteSpan> SegmentData(const Elf64Phdr& phdr) const;

  // All symbols from .symtab (empty vector if there is no symbol table).
  Result<std::vector<ElfSymbol>> ReadSymbols() const;

  // Total bytes of the underlying image.
  size_t image_size() const { return image_.size(); }
  ByteSpan image() const { return image_; }

 private:
  ElfReader() = default;

  Status ParseInternal(ByteSpan image);
  Result<std::string> StringAt(const Elf64Shdr& strtab, uint32_t offset) const;

  ByteSpan image_;
  Elf64Ehdr ehdr_{};
  std::vector<Elf64Phdr> phdrs_;
  std::vector<ElfSection> sections_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_ELF_ELF_READER_H_
