#include "src/elf/elf_reader.h"

#include <cstring>

namespace imk {

Result<ElfReader> ElfReader::Parse(ByteSpan image) {
  ElfReader reader;
  IMK_RETURN_IF_ERROR(reader.ParseInternal(image));
  return reader;
}

Status ElfReader::ParseInternal(ByteSpan image) {
  image_ = image;
  if (image.size() < sizeof(Elf64Ehdr)) {
    return ParseError("image smaller than ELF header");
  }
  std::memcpy(&ehdr_, image.data(), sizeof(ehdr_));

  if (ehdr_.e_ident[0] != kElfMag0 || ehdr_.e_ident[1] != kElfMag1 ||
      ehdr_.e_ident[2] != kElfMag2 || ehdr_.e_ident[3] != kElfMag3) {
    return ParseError("bad ELF magic");
  }
  if (ehdr_.e_ident[kEiClass] != kElfClass64) {
    return ParseError("not ELF64");
  }
  if (ehdr_.e_ident[kEiData] != kElfData2Lsb) {
    return ParseError("not little-endian");
  }
  if (ehdr_.e_phnum != 0 && ehdr_.e_phentsize != sizeof(Elf64Phdr)) {
    return ParseError("unexpected program header entry size");
  }
  if (ehdr_.e_shnum != 0 && ehdr_.e_shentsize != sizeof(Elf64Shdr)) {
    return ParseError("unexpected section header entry size");
  }

  // Program headers.
  if (ehdr_.e_phnum != 0) {
    const uint64_t table_size = uint64_t{ehdr_.e_phnum} * sizeof(Elf64Phdr);
    if (ehdr_.e_phoff > image.size() || table_size > image.size() - ehdr_.e_phoff) {
      return ParseError("program header table out of range");
    }
    phdrs_.resize(ehdr_.e_phnum);
    std::memcpy(phdrs_.data(), image.data() + ehdr_.e_phoff, table_size);
    for (const Elf64Phdr& phdr : phdrs_) {
      if (phdr.p_filesz > 0 &&
          (phdr.p_offset > image.size() || phdr.p_filesz > image.size() - phdr.p_offset)) {
        return ParseError("segment file range out of bounds");
      }
      if (phdr.p_memsz < phdr.p_filesz) {
        return ParseError("segment memsz < filesz");
      }
    }
  }

  // Section headers.
  if (ehdr_.e_shnum != 0) {
    const uint64_t table_size = uint64_t{ehdr_.e_shnum} * sizeof(Elf64Shdr);
    if (ehdr_.e_shoff > image.size() || table_size > image.size() - ehdr_.e_shoff) {
      return ParseError("section header table out of range");
    }
    std::vector<Elf64Shdr> shdrs(ehdr_.e_shnum);
    std::memcpy(shdrs.data(), image.data() + ehdr_.e_shoff, table_size);

    if (ehdr_.e_shstrndx >= ehdr_.e_shnum) {
      return ParseError("shstrndx out of range");
    }
    const Elf64Shdr& shstrtab = shdrs[ehdr_.e_shstrndx];
    if (shstrtab.sh_type != kShtStrtab) {
      return ParseError("shstrtab has wrong type");
    }

    sections_.reserve(shdrs.size());
    for (size_t i = 0; i < shdrs.size(); ++i) {
      const Elf64Shdr& shdr = shdrs[i];
      if (shdr.sh_type != kShtNobits && shdr.sh_size > 0 &&
          (shdr.sh_offset > image.size() || shdr.sh_size > image.size() - shdr.sh_offset)) {
        return ParseError("section file range out of bounds");
      }
      IMK_ASSIGN_OR_RETURN(std::string name, StringAt(shstrtab, shdr.sh_name));
      sections_.push_back(ElfSection{std::move(name), shdr, i});
    }
  }
  return OkStatus();
}

Result<std::string> ElfReader::StringAt(const Elf64Shdr& strtab, uint32_t offset) const {
  if (offset >= strtab.sh_size) {
    return ParseError("string offset out of range");
  }
  const uint64_t start = strtab.sh_offset + offset;
  if (start >= image_.size()) {
    return ParseError("string table out of range");
  }
  const uint64_t limit = strtab.sh_offset + strtab.sh_size;
  uint64_t end = start;
  while (end < limit && end < image_.size() && image_[end] != 0) {
    ++end;
  }
  if (end == limit || end == image_.size()) {
    return ParseError("unterminated string in string table");
  }
  return std::string(reinterpret_cast<const char*>(image_.data() + start), end - start);
}

Result<const ElfSection*> ElfReader::FindSection(std::string_view name) const {
  for (const ElfSection& section : sections_) {
    if (section.name == name) {
      return &section;
    }
  }
  return NotFoundError("section not found: " + std::string(name));
}

Result<ByteSpan> ElfReader::SectionData(const ElfSection& section) const {
  if (section.header.sh_type == kShtNobits) {
    return ByteSpan{};
  }
  if (section.header.sh_offset > image_.size() ||
      section.header.sh_size > image_.size() - section.header.sh_offset) {
    return OutOfRangeError("section data out of range");
  }
  return image_.subspan(section.header.sh_offset, section.header.sh_size);
}

Result<ByteSpan> ElfReader::SegmentData(const Elf64Phdr& phdr) const {
  if (phdr.p_offset > image_.size() || phdr.p_filesz > image_.size() - phdr.p_offset) {
    return OutOfRangeError("segment data out of range");
  }
  return image_.subspan(phdr.p_offset, phdr.p_filesz);
}

Result<std::vector<ElfSymbol>> ElfReader::ReadSymbols() const {
  const ElfSection* symtab = nullptr;
  for (const ElfSection& section : sections_) {
    if (section.header.sh_type == kShtSymtab) {
      symtab = &section;
      break;
    }
  }
  if (symtab == nullptr) {
    return std::vector<ElfSymbol>{};
  }
  if (symtab->header.sh_entsize != sizeof(Elf64Sym)) {
    return ParseError("bad symtab entsize");
  }
  if (symtab->header.sh_link >= sections_.size()) {
    return ParseError("symtab link out of range");
  }
  const Elf64Shdr& strtab = sections_[symtab->header.sh_link].header;
  if (strtab.sh_type != kShtStrtab) {
    return ParseError("symtab linked section is not a string table");
  }

  IMK_ASSIGN_OR_RETURN(ByteSpan data, SectionData(*symtab));
  if (data.size() % sizeof(Elf64Sym) != 0) {
    // A torn read (or a hostile header) leaves a partial trailing entry;
    // silently dropping it would hand FGKASLR an incomplete symbol table.
    return ParseError("symtab size is not a multiple of the symbol size (truncated?)");
  }
  const size_t count = data.size() / sizeof(Elf64Sym);
  std::vector<ElfSymbol> symbols;
  symbols.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Elf64Sym sym;
    std::memcpy(&sym, data.data() + i * sizeof(Elf64Sym), sizeof(sym));
    IMK_ASSIGN_OR_RETURN(std::string name, StringAt(strtab, sym.st_name));
    symbols.push_back(ElfSymbol{std::move(name), sym.st_value, sym.st_size, sym.st_info,
                                sym.st_shndx});
  }
  return symbols;
}

}  // namespace imk
