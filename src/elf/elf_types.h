// ELF64 on-disk structures and constants, implemented from the ELF-64 object
// file format specification (little-endian only; that is all the monitor and
// kernel builder need).
#ifndef IMKASLR_SRC_ELF_ELF_TYPES_H_
#define IMKASLR_SRC_ELF_ELF_TYPES_H_

#include <cstdint>

namespace imk {

// e_ident layout.
inline constexpr uint8_t kElfMag0 = 0x7f;
inline constexpr uint8_t kElfMag1 = 'E';
inline constexpr uint8_t kElfMag2 = 'L';
inline constexpr uint8_t kElfMag3 = 'F';
inline constexpr uint8_t kElfClass64 = 2;
inline constexpr uint8_t kElfData2Lsb = 1;  // little endian
inline constexpr uint8_t kElfVersionCurrent = 1;
inline constexpr int kEiClass = 4;
inline constexpr int kEiData = 5;
inline constexpr int kEiVersion = 6;
inline constexpr int kEiNident = 16;

// e_type values.
inline constexpr uint16_t kEtNone = 0;
inline constexpr uint16_t kEtRel = 1;
inline constexpr uint16_t kEtExec = 2;
inline constexpr uint16_t kEtDyn = 3;

// e_machine: x86_64, plus the synthetic guest ISA used by this project.
inline constexpr uint16_t kEmX86_64 = 62;
inline constexpr uint16_t kEmVk64 = 0x564b;  // 'VK' — imkaslr synthetic guest ISA

// Program header types / flags.
inline constexpr uint32_t kPtNull = 0;
inline constexpr uint32_t kPtLoad = 1;
inline constexpr uint32_t kPtNote = 4;
inline constexpr uint32_t kPfX = 1;
inline constexpr uint32_t kPfW = 2;
inline constexpr uint32_t kPfR = 4;

// Section header types.
inline constexpr uint32_t kShtNull = 0;
inline constexpr uint32_t kShtProgbits = 1;
inline constexpr uint32_t kShtSymtab = 2;
inline constexpr uint32_t kShtStrtab = 3;
inline constexpr uint32_t kShtRela = 4;
inline constexpr uint32_t kShtNobits = 8;
inline constexpr uint32_t kShtNote = 7;

// VK64 relocation types carried in .rela sections (mirroring the x86_64
// R_X86_64_64 / R_X86_64_32 / inverse-32 triple that Linux's `relocs` tool
// collects into vmlinux.relocs).
inline constexpr uint32_t kRVk64Abs64 = 1;
inline constexpr uint32_t kRVk64Abs32 = 2;
inline constexpr uint32_t kRVk64Inverse32 = 3;

constexpr uint64_t ElfRInfo(uint32_t sym, uint32_t type) {
  return (static_cast<uint64_t>(sym) << 32) | type;
}
constexpr uint32_t ElfRType(uint64_t info) { return static_cast<uint32_t>(info); }
constexpr uint32_t ElfRSym(uint64_t info) { return static_cast<uint32_t>(info >> 32); }

// Section header flags.
inline constexpr uint64_t kShfWrite = 0x1;
inline constexpr uint64_t kShfAlloc = 0x2;
inline constexpr uint64_t kShfExecinstr = 0x4;

// Symbol binding / type (st_info packing).
inline constexpr uint8_t kStbLocal = 0;
inline constexpr uint8_t kStbGlobal = 1;
inline constexpr uint8_t kSttNotype = 0;
inline constexpr uint8_t kSttObject = 1;
inline constexpr uint8_t kSttFunc = 2;
inline constexpr uint8_t kSttSection = 3;

constexpr uint8_t ElfStInfo(uint8_t bind, uint8_t type) {
  return static_cast<uint8_t>((bind << 4) | (type & 0xf));
}
constexpr uint8_t ElfStBind(uint8_t info) { return info >> 4; }
constexpr uint8_t ElfStType(uint8_t info) { return info & 0xf; }

// Special section indexes.
inline constexpr uint16_t kShnUndef = 0;
inline constexpr uint16_t kShnAbs = 0xfff1;

#pragma pack(push, 1)

struct Elf64Ehdr {
  uint8_t e_ident[kEiNident];
  uint16_t e_type;
  uint16_t e_machine;
  uint32_t e_version;
  uint64_t e_entry;
  uint64_t e_phoff;
  uint64_t e_shoff;
  uint32_t e_flags;
  uint16_t e_ehsize;
  uint16_t e_phentsize;
  uint16_t e_phnum;
  uint16_t e_shentsize;
  uint16_t e_shnum;
  uint16_t e_shstrndx;
};

struct Elf64Phdr {
  uint32_t p_type;
  uint32_t p_flags;
  uint64_t p_offset;
  uint64_t p_vaddr;
  uint64_t p_paddr;
  uint64_t p_filesz;
  uint64_t p_memsz;
  uint64_t p_align;
};

struct Elf64Shdr {
  uint32_t sh_name;
  uint32_t sh_type;
  uint64_t sh_flags;
  uint64_t sh_addr;
  uint64_t sh_offset;
  uint64_t sh_size;
  uint32_t sh_link;
  uint32_t sh_info;
  uint64_t sh_addralign;
  uint64_t sh_entsize;
};

struct Elf64Sym {
  uint32_t st_name;
  uint8_t st_info;
  uint8_t st_other;
  uint16_t st_shndx;
  uint64_t st_value;
  uint64_t st_size;
};

struct Elf64Rela {
  uint64_t r_offset;
  uint64_t r_info;
  int64_t r_addend;
};

struct Elf64Nhdr {
  uint32_t n_namesz;
  uint32_t n_descsz;
  uint32_t n_type;
};

#pragma pack(pop)

static_assert(sizeof(Elf64Ehdr) == 64, "Elf64Ehdr must be 64 bytes");
static_assert(sizeof(Elf64Phdr) == 56, "Elf64Phdr must be 56 bytes");
static_assert(sizeof(Elf64Shdr) == 64, "Elf64Shdr must be 64 bytes");
static_assert(sizeof(Elf64Sym) == 24, "Elf64Sym must be 24 bytes");
static_assert(sizeof(Elf64Rela) == 24, "Elf64Rela must be 24 bytes");

}  // namespace imk

#endif  // IMKASLR_SRC_ELF_ELF_TYPES_H_
