// ELF note construction and parsing.
//
// Used for (1) the PVH entry-point note (XEN_ELFNOTE_PHYS32_ENTRY analogue)
// that direct-boot protocols read, and (2) this project's implementation of
// the paper's future-work idea (§4.3): prepending kernel link-time constants
// (CONFIG_PHYSICAL_START, CONFIG_PHYSICAL_ALIGN, __START_KERNEL_map,
// KERNEL_IMAGE_SIZE) to the binary as an ELF note so the monitor does not
// have to hardcode them.
#ifndef IMKASLR_SRC_ELF_ELF_NOTE_H_
#define IMKASLR_SRC_ELF_ELF_NOTE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace imk {

// Note type values used by this project.
inline constexpr uint32_t kNoteTypePvhEntry = 18;  // matches XEN_ELFNOTE_PHYS32_ENTRY
inline constexpr uint32_t kNoteTypeKernelConstants = 0x494d4b31;  // 'IMK1'
inline constexpr char kNoteNameXen[] = "Xen";
inline constexpr char kNoteNameImk[] = "imkaslr";

// One parsed ELF note.
struct ElfNote {
  std::string name;
  uint32_t type = 0;
  Bytes desc;
};

// Serializes notes into SHT_NOTE section content (4-byte aligned fields).
Bytes BuildNoteSection(const std::vector<ElfNote>& notes);

// Parses SHT_NOTE section content.
Result<std::vector<ElfNote>> ParseNoteSection(ByteSpan data);

// Link-time constants the paper says the monitor must otherwise hardcode.
struct KernelConstantsNote {
  uint64_t physical_start = 0;   // CONFIG_PHYSICAL_START
  uint64_t physical_align = 0;   // CONFIG_PHYSICAL_ALIGN
  uint64_t start_kernel_map = 0;  // __START_KERNEL_map
  uint64_t kernel_image_size = 0;  // KERNEL_IMAGE_SIZE (max virtual span)
};

// Encodes/decodes a KernelConstantsNote desc payload.
Bytes EncodeKernelConstants(const KernelConstantsNote& constants);
Result<KernelConstantsNote> DecodeKernelConstants(ByteSpan desc);

// Scans parsed notes for a kernel-constants note; nullopt if absent.
std::optional<KernelConstantsNote> FindKernelConstants(const std::vector<ElfNote>& notes);

}  // namespace imk

#endif  // IMKASLR_SRC_ELF_ELF_NOTE_H_
