#include "src/elf/elf_writer.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "src/base/align.h"

namespace imk {

ElfWriter::ElfWriter(uint16_t machine, uint16_t type) : machine_(machine), type_(type) {
  sections_.push_back(SectionSpec{});  // index 0: SHT_NULL
}

size_t ElfWriter::AddSection(SectionSpec spec) {
  if (spec.addralign == 0) {
    spec.addralign = 1;
  }
  sections_.push_back(std::move(spec));
  return sections_.size() - 1;
}

void ElfWriter::AddLoadSegment(std::vector<size_t> section_indices, uint32_t flags,
                               uint64_t paddr_delta) {
  segments_.push_back(Segment{kPtLoad, flags, paddr_delta, std::move(section_indices)});
}

void ElfWriter::AddNoteSegment(size_t section_index) {
  segments_.push_back(Segment{kPtNote, kPfR, 0, {section_index}});
}

void ElfWriter::AddSymbol(std::string name, uint64_t value, uint64_t size, uint8_t info,
                          uint16_t shndx) {
  symbols_.push_back(SymbolEntry{std::move(name), value, size, info, shndx});
}

Result<Bytes> ElfWriter::Finish() {
  // Build .symtab / .strtab if any symbols were added.
  if (!symbols_.empty()) {
    ByteWriter strtab;
    strtab.WriteU8(0);  // index 0: empty string
    ByteWriter symtab;
    // Null symbol.
    symtab.WriteZeros(sizeof(Elf64Sym));
    size_t local_count = 1;
    // Locals must precede globals per the ELF spec.
    std::stable_sort(symbols_.begin(), symbols_.end(),
                     [](const SymbolEntry& a, const SymbolEntry& b) {
                       return ElfStBind(a.info) < ElfStBind(b.info);
                     });
    for (const SymbolEntry& sym : symbols_) {
      Elf64Sym out{};
      out.st_name = static_cast<uint32_t>(strtab.size());
      strtab.WriteString(sym.name);
      strtab.WriteU8(0);
      out.st_info = sym.info;
      out.st_other = 0;
      out.st_shndx = sym.shndx;
      out.st_value = sym.value;
      out.st_size = sym.size;
      if (ElfStBind(sym.info) == kStbLocal) {
        ++local_count;
      }
      ByteSpan raw(reinterpret_cast<const uint8_t*>(&out), sizeof(out));
      symtab.WriteBytes(raw);
    }
    const size_t strtab_index = sections_.size() + 1;  // .symtab then .strtab
    SectionSpec symtab_spec;
    symtab_spec.name = ".symtab";
    symtab_spec.type = kShtSymtab;
    symtab_spec.addralign = 8;
    symtab_spec.entsize = sizeof(Elf64Sym);
    symtab_spec.data = symtab.Take();
    // sh_link = string table index, sh_info = one past last local symbol.
    // Encode via dedicated fields below (SectionSpec has no link/info, so we
    // stash them after adding).
    const size_t symtab_added = AddSection(std::move(symtab_spec));
    SectionSpec strtab_spec;
    strtab_spec.name = ".strtab";
    strtab_spec.type = kShtStrtab;
    strtab_spec.data = strtab.Take();
    AddSection(std::move(strtab_spec));
    (void)symtab_added;
    (void)strtab_index;
    symtab_link_info_ = {symtab_added, strtab_index, local_count};
  }

  // .shstrtab goes last.
  ByteWriter shstr;
  shstr.WriteU8(0);
  std::vector<uint32_t> name_offsets(sections_.size() + 1, 0);
  {
    for (size_t i = 1; i < sections_.size(); ++i) {
      name_offsets[i] = static_cast<uint32_t>(shstr.size());
      shstr.WriteString(sections_[i].name);
      shstr.WriteU8(0);
    }
    name_offsets[sections_.size()] = static_cast<uint32_t>(shstr.size());
    shstr.WriteString(".shstrtab");
    shstr.WriteU8(0);
  }
  SectionSpec shstrtab_spec;
  shstrtab_spec.name = ".shstrtab";
  shstrtab_spec.type = kShtStrtab;
  shstrtab_spec.data = shstr.Take();
  const size_t shstrtab_index = AddSection(std::move(shstrtab_spec));

  const size_t num_sections = sections_.size();
  const size_t num_segments = segments_.size();

  // Layout: ehdr | phdrs | section data (segment-covered first, in segment
  // order; then remaining sections) | shdrs.
  std::vector<Elf64Shdr> shdrs(num_sections);
  std::vector<bool> placed(num_sections, false);
  placed[0] = true;

  ByteWriter out;
  out.WriteZeros(sizeof(Elf64Ehdr));
  const size_t phoff = out.size();
  out.WriteZeros(num_segments * sizeof(Elf64Phdr));

  std::vector<Elf64Phdr> phdrs(num_segments);

  // Segment file layout is congruent with the memory layout: every PT_LOAD
  // lands at file offset base + (p_vaddr - first_vaddr). This keeps the file
  // image executable in place (after zeroing trailing NOBITS), which the
  // optimized compression-none bootstrap path (paper §3.3) relies on.
  uint64_t first_seg_vaddr = UINT64_MAX;
  for (const Segment& segment : segments_) {
    if (segment.type == kPtLoad && !segment.sections.empty()) {
      first_seg_vaddr = std::min(first_seg_vaddr, sections_[segment.sections.front()].addr);
    }
  }
  const uint64_t segment_file_base = AlignUp(out.size(), 4096);

  // Place segment-covered sections.
  for (size_t si = 0; si < num_segments; ++si) {
    const Segment& segment = segments_[si];
    if (segment.sections.empty()) {
      return InvalidArgumentError("segment with no sections");
    }
    for (size_t k = 0; k < segment.sections.size(); ++k) {
      const size_t idx = segment.sections[k];
      if (idx == 0 || idx >= num_sections) {
        return InvalidArgumentError("segment references bad section index");
      }
      if (placed[idx]) {
        return InvalidArgumentError("section placed in two segments");
      }
      if (k > 0) {
        const SectionSpec& prev = sections_[segment.sections[k - 1]];
        const uint64_t prev_size =
            prev.type == kShtNobits ? prev.nobits_size : prev.data.size();
        if (sections_[idx].addr < prev.addr + prev_size) {
          return InvalidArgumentError("segment sections overlap or out of order");
        }
        if (prev.type == kShtNobits) {
          return InvalidArgumentError("SHT_NOBITS section must be last in segment");
        }
      }
    }

    const SectionSpec& first = sections_[segment.sections.front()];
    uint64_t seg_offset;
    if (segment.type == kPtLoad) {
      seg_offset = segment_file_base + (first.addr - first_seg_vaddr);
      if (seg_offset < out.size()) {
        return InvalidArgumentError("overlapping segment file layout (segments out of order?)");
      }
      out.WriteZeros(seg_offset - out.size());
    } else {
      out.AlignTo(std::max<uint64_t>(first.addralign, 8));
      seg_offset = out.size();
    }
    const uint64_t seg_vaddr = first.addr;

    uint64_t file_cursor_vaddr = seg_vaddr;
    uint64_t memsz_end = seg_vaddr;
    uint64_t filesz_end_offset = seg_offset;
    for (const size_t idx : segment.sections) {
      const SectionSpec& spec = sections_[idx];
      Elf64Shdr& shdr = shdrs[idx];
      shdr.sh_type = spec.type;
      shdr.sh_flags = spec.flags;
      shdr.sh_addr = spec.addr;
      shdr.sh_addralign = spec.addralign;
      shdr.sh_entsize = spec.entsize;
      if (spec.type == kShtNobits) {
        shdr.sh_offset = out.size();
        shdr.sh_size = spec.nobits_size;
        memsz_end = spec.addr + spec.nobits_size;
      } else {
        if (spec.addr < file_cursor_vaddr) {
          return InternalError("vaddr cursor went backwards");
        }
        out.WriteZeros(spec.addr - file_cursor_vaddr);  // gap padding
        shdr.sh_offset = out.size();
        shdr.sh_size = spec.data.size();
        out.WriteBytes(ByteSpan(spec.data));
        file_cursor_vaddr = spec.addr + spec.data.size();
        memsz_end = file_cursor_vaddr;
        filesz_end_offset = out.size();
      }
      placed[idx] = true;
    }

    Elf64Phdr& phdr = phdrs[si];
    phdr.p_type = segment.type;
    phdr.p_flags = segment.flags;
    phdr.p_offset = seg_offset;
    phdr.p_vaddr = seg_vaddr;
    phdr.p_paddr = seg_vaddr - segment.paddr_delta;
    phdr.p_filesz = filesz_end_offset - seg_offset;
    phdr.p_memsz = memsz_end - seg_vaddr;
    phdr.p_align = std::max<uint64_t>(first.addralign, 8);
  }

  // Place remaining (non-alloc) sections.
  for (size_t idx = 1; idx < num_sections; ++idx) {
    if (placed[idx]) {
      continue;
    }
    const SectionSpec& spec = sections_[idx];
    Elf64Shdr& shdr = shdrs[idx];
    out.AlignTo(std::max<uint64_t>(spec.addralign, 1));
    shdr.sh_type = spec.type;
    shdr.sh_flags = spec.flags;
    shdr.sh_addr = spec.addr;
    shdr.sh_addralign = spec.addralign;
    shdr.sh_entsize = spec.entsize;
    shdr.sh_offset = out.size();
    if (spec.type == kShtNobits) {
      shdr.sh_size = spec.nobits_size;
    } else {
      shdr.sh_size = spec.data.size();
      out.WriteBytes(ByteSpan(spec.data));
    }
  }

  // Section names + symtab links.
  for (size_t idx = 1; idx < num_sections; ++idx) {
    shdrs[idx].sh_name = name_offsets[idx];
  }
  if (symtab_link_info_.symtab_index != 0) {
    shdrs[symtab_link_info_.symtab_index].sh_link =
        static_cast<uint32_t>(symtab_link_info_.strtab_index);
    shdrs[symtab_link_info_.symtab_index].sh_info =
        static_cast<uint32_t>(symtab_link_info_.first_global);
  }

  // Section header table.
  out.AlignTo(8);
  const size_t shoff = out.size();
  for (const Elf64Shdr& shdr : shdrs) {
    ByteSpan raw(reinterpret_cast<const uint8_t*>(&shdr), sizeof(shdr));
    out.WriteBytes(raw);
  }

  // ELF header.
  Elf64Ehdr ehdr{};
  ehdr.e_ident[0] = kElfMag0;
  ehdr.e_ident[1] = kElfMag1;
  ehdr.e_ident[2] = kElfMag2;
  ehdr.e_ident[3] = kElfMag3;
  ehdr.e_ident[kEiClass] = kElfClass64;
  ehdr.e_ident[kEiData] = kElfData2Lsb;
  ehdr.e_ident[kEiVersion] = kElfVersionCurrent;
  ehdr.e_type = type_;
  ehdr.e_machine = machine_;
  ehdr.e_version = 1;
  ehdr.e_entry = entry_;
  ehdr.e_phoff = num_segments == 0 ? 0 : phoff;
  ehdr.e_shoff = shoff;
  ehdr.e_ehsize = sizeof(Elf64Ehdr);
  ehdr.e_phentsize = sizeof(Elf64Phdr);
  ehdr.e_phnum = static_cast<uint16_t>(num_segments);
  ehdr.e_shentsize = sizeof(Elf64Shdr);
  ehdr.e_shnum = static_cast<uint16_t>(num_sections);
  ehdr.e_shstrndx = static_cast<uint16_t>(shstrtab_index);

  Bytes image = out.Take();
  std::memcpy(image.data(), &ehdr, sizeof(ehdr));
  for (size_t si = 0; si < num_segments; ++si) {
    std::memcpy(image.data() + phoff + si * sizeof(Elf64Phdr), &phdrs[si], sizeof(Elf64Phdr));
  }
  return image;
}

}  // namespace imk
