#include "src/isa/icache.h"

#include <cstddef>

namespace imk {
namespace {

uint32_t Log2(uint32_t x) {
  uint32_t log = 0;
  while ((1u << log) < x) {
    ++log;
  }
  return log;
}

}  // namespace

IcacheModel::IcacheModel(const IcacheConfig& config) : config_(config) {
  num_sets_ = config_.size_bytes / (config_.line_bytes * config_.ways);
  line_shift_ = Log2(config_.line_bytes);
  lines_.assign(static_cast<size_t>(num_sets_) * config_.ways, Line{});
}

bool IcacheModel::Access(uint64_t vaddr) {
  const uint64_t line_addr = vaddr >> line_shift_;
  const uint32_t set = static_cast<uint32_t>(line_addr % num_sets_);
  const uint64_t tag = line_addr / num_sets_;
  Line* set_lines = &lines_[static_cast<size_t>(set) * config_.ways];
  ++tick_;

  Line* victim = nullptr;
  for (uint32_t way = 0; way < config_.ways; ++way) {
    Line& line = set_lines[way];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      ++hits_;
      return true;
    }
    // Victim preference: any invalid line, else least recently used.
    if (victim == nullptr || (!line.valid && victim->valid) ||
        (line.valid == victim->valid && line.lru < victim->lru)) {
      victim = &line;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  ++misses_;
  return false;
}

void IcacheModel::Reset() {
  for (Line& line : lines_) {
    line = Line{};
  }
  tick_ = 0;
  hits_ = 0;
  misses_ = 0;
}

}  // namespace imk
