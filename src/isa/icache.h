// L1 instruction cache model.
//
// The paper attributes FGKASLR's ~7% runtime regression (Figure 11) to a
// higher L1 i-cache miss rate: hot functions that the linker placed together
// get scattered by the shuffle. This set-associative LRU model reproduces
// that mechanism: the interpreter feeds it every instruction fetch and the
// LEBench harness charges a miss penalty in simulated cycles.
#ifndef IMKASLR_SRC_ISA_ICACHE_H_
#define IMKASLR_SRC_ISA_ICACHE_H_

#include <cstdint>
#include <vector>

namespace imk {

// Geometry of a modeled L1i; defaults mirror a Haswell-class core
// (the paper's i7-4790): 32 KiB, 64-byte lines, 8-way.
struct IcacheConfig {
  uint32_t size_bytes = 32 * 1024;
  uint32_t line_bytes = 64;
  uint32_t ways = 8;
  uint32_t miss_penalty_cycles = 14;  // L2 hit latency
};

// Set-associative LRU cache, indexed by virtual address.
class IcacheModel {
 public:
  explicit IcacheModel(const IcacheConfig& config);

  // Records a fetch at `vaddr`; returns true on hit.
  bool Access(uint64_t vaddr);

  void Reset();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t accesses() const { return hits_ + misses_; }
  double miss_rate() const {
    return accesses() == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(accesses());
  }
  const IcacheConfig& config() const { return config_; }

 private:
  struct Line {
    uint64_t tag = 0;
    uint64_t lru = 0;
    bool valid = false;
  };

  IcacheConfig config_;
  uint32_t num_sets_;
  uint32_t line_shift_;
  std::vector<Line> lines_;  // num_sets_ * ways
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace imk

#endif  // IMKASLR_SRC_ISA_ICACHE_H_
