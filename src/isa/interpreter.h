// VK64 interpreter: executes guest code out of guest physical memory through
// a linear virtual->physical mapping (modeling the early-boot page tables the
// booting principal installs). Port I/O is delegated to a handler supplied
// by the vCPU; faulting PROBE loads consult the guest's exception table the
// way the kernel's fault handler searches __ex_table.
//
// Two execution engines share the architectural semantics bit for bit:
//
//   - The block-cache engine (default): guest basic blocks are decoded once
//     into uop arrays (src/isa/uop.h), cached keyed by guest-physical block
//     start and validated against FrameStore frame versions
//     (src/isa/block_cache.h), and dispatched through a tight loop. A small
//     direct-mapped software TLB short-circuits the LinearMap range checks
//     and FrameStore pointer chasing for data loads and stores.
//
//   - The legacy switch loop (set_block_cache(false), `--no-block-cache`):
//     fetch/translate/decode every dynamic instruction. Kept as the
//     reference the bit-identity tests compare against, and as the
//     measurement baseline for the decode-cache ablation.
//
// Stats, icache-model accounting, watchdog behaviour, faults, and final
// architectural state are identical across engines for any run that stops
// on HALT or the instruction cap.
#ifndef IMKASLR_SRC_ISA_INTERPRETER_H_
#define IMKASLR_SRC_ISA_INTERPRETER_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/base/bytes.h"
#include "src/base/deadline.h"
#include "src/base/frame_store.h"
#include "src/base/result.h"
#include "src/isa/block_cache.h"
#include "src/isa/icache.h"
#include "src/isa/isa.h"
#include "src/isa/uop.h"

namespace imk {

// A linear virtual->physical window: [virt_start, virt_start + size) maps to
// [phys_start, phys_start + size).
struct LinearMap {
  uint64_t virt_start = 0;
  uint64_t phys_start = 0;
  uint64_t size = 0;

  bool Contains(uint64_t vaddr) const { return vaddr - virt_start < size; }
  uint64_t ToPhys(uint64_t vaddr) const { return vaddr - virt_start + phys_start; }
};

// Why Run() returned.
enum class StopReason {
  kHalt,            // guest executed HALT
  kInstructionCap,  // max_instructions exhausted
  kDeadline,        // the attached wall-clock Deadline expired mid-run
};

// Execution statistics for one Run().
struct ExecStats {
  uint64_t instructions = 0;
  uint64_t icache_hits = 0;
  uint64_t icache_misses = 0;
  // Simulated cycles: 1/instruction + icache miss penalty (only meaningful
  // when an i-cache model is attached).
  uint64_t cycles = 0;
  // Block-cache engine counters (all zero under the legacy switch loop).
  // hits/misses/invalidations are per block dispatch; shared vs private
  // counts decoded blocks by provenance (the decode-cache sharing ablation).
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t block_cache_invalidations = 0;
  uint64_t blocks_shared = 0;
  uint64_t blocks_private = 0;
};

struct RunResult {
  StopReason reason = StopReason::kHalt;
  ExecStats stats;
};

class Interpreter {
 public:
  // Port handler: called for OUT (is_write=true, `value` = register) and IN
  // (is_write=false; return value goes to the destination register). The
  // handler may fail, which faults the guest.
  using PortHandler = std::function<Result<uint64_t>(uint16_t port, bool is_write, uint64_t value)>;

  // `phys` is the guest's physical memory; `map` the virtual window. The
  // caller keeps `phys` alive while the interpreter runs. The flat-span form
  // wraps the buffer in a fully materialized FrameStore; the FrameStore form
  // executes straight over paged copy-on-write memory, so guest stores fault
  // frames in and guest loads never materialize anything.
  Interpreter(MutableByteSpan phys, LinearMap map);
  Interpreter(FrameStore& phys, LinearMap map);

  void set_port_handler(PortHandler handler) { port_handler_ = std::move(handler); }
  // Optional i-cache model fed with every instruction fetch (slows execution;
  // used by the LEBench harness).
  void set_icache(IcacheModel* icache) { icache_ = icache; }
  // Extra v->p window (e.g. an identity map of low memory alongside the
  // randomized kernel window). Checked after the primary map. Re-pointing a
  // map changes what virtual addresses mean, so any vaddr-keyed decoded
  // blocks are dropped.
  void set_secondary_map(LinearMap map) {
    secondary_map_ = map;
    if (block_cache_ != nullptr) {
      block_cache_->InvalidateBindings();
    }
  }

  // Engine selection: true (default) dispatches predecoded blocks; false
  // runs the legacy per-instruction switch loop.
  void set_block_cache(bool enabled) { use_block_cache_ = enabled; }
  // Cross-VM decode-cache tier for blocks over shared (template-aliased)
  // frames; nullptr keeps all blocks VM-private. Caller keeps it alive.
  void set_shared_block_cache(SharedBlockCache* cache) { shared_block_cache_ = cache; }
  // Identity of this VM's exact guest layout (template + slides + shuffle).
  // Non-zero enables whole-table decode sharing: before the first dispatch
  // the engine adopts the layout's published table from the shared tier if
  // one exists, and a completed boot that found none publishes its own
  // (BlockCache::AdoptTable / PublishTable). 0 (default) disables both.
  void set_layout_key(uint64_t key) { layout_key_ = key; }

  // Wall-clock watchdog: Run() polls the deadline every few tens of
  // thousands of instructions and stops with StopReason::kDeadline once it
  // expires (a clean stop, not a guest fault — the supervisor decides what
  // a trip means). nullptr (default) disables polling entirely.
  void set_deadline(const Deadline* deadline) { deadline_ = deadline; }

  // Exception table: sorted {fault_offset, fixup_offset} pairs in guest
  // memory, offsets relative to `text_base` (the runtime address of _text) —
  // mirroring Linux's text-relative __ex_table, which plain KASLR never
  // touches but FGKASLR must fix up and re-sort. Registered by the vCPU when
  // the guest announces its tables.
  void SetExceptionTable(uint64_t table_vaddr, uint64_t count, uint64_t text_base) {
    ex_table_vaddr_ = table_vaddr;
    ex_table_count_ = count;
    ex_table_text_base_ = text_base;
  }

  // Runs from `entry_vaddr` with SP = `stack_top_vaddr` until HALT, a fault
  // (error status), or `max_instructions`.
  Result<RunResult> Run(uint64_t entry_vaddr, uint64_t stack_top_vaddr, uint64_t max_instructions);

  uint64_t reg(int index) const { return regs_[index]; }
  void set_reg(int index, uint64_t value) { regs_[index] = value; }

 private:
  // The fetch window at `pc`: its physical address and how many bytes are
  // contiguously translatable from it (bounded by the chosen map and RAM).
  // One map selection serves both the opcode probe and the full-length
  // fetch; the rare instruction extending past the window falls back to a
  // full Translate, preserving exact fault semantics at map seams.
  struct FetchSpan {
    uint64_t phys = 0;
    uint64_t avail = 0;
  };
  Result<FetchSpan> TranslateFetch(uint64_t pc) const;

  Result<uint64_t> Translate(uint64_t vaddr, uint64_t size_bytes) const;
  Status HandleProbeFault(uint64_t insn_vaddr, uint64_t* pc);

  // The engines.
  Result<RunResult> RunSwitch(uint64_t pc, uint64_t max_instructions);
  Result<RunResult> RunBlocks(uint64_t pc, uint64_t max_instructions);
  // Executes the first `n` uops of `block`, dispatched at virtual address
  // `vaddr`. Returns true if the guest halted; otherwise *pc holds the
  // follow-on address (fall-through or branch target).
  Result<bool> RunUops(const DecodedBlock& block, uint64_t vaddr, uint64_t n,
                       ExecStats& stats, uint64_t* pc);

  // Common exit epilogue: every successful return path (halt, cap,
  // deadline) folds the icache-model counters into the stats here.
  RunResult Finish(RunResult& result, StopReason reason) {
    result.reason = reason;
    if (icache_ != nullptr) {
      result.stats.icache_hits = icache_->hits();
      result.stats.icache_misses = icache_->misses();
    }
    return result;
  }

  // Per-instruction icache-model accounting, identical across engines.
  void AccountIcache(uint64_t pc, uint32_t length, ExecStats& stats) {
    stats.cycles += 1;
    if (!icache_->Access(pc)) {
      stats.cycles += icache_->config().miss_penalty_cycles;
    }
    // A fetch crossing a line boundary touches the next line too.
    const uint64_t line = icache_->config().line_bytes;
    if ((pc % line) + length > line) {
      if (!icache_->Access(pc + length - 1)) {
        stats.cycles += icache_->config().miss_penalty_cycles;
      }
    }
  }

  // ---- software data TLB (block-cache engine only) ----
  //
  // Direct-mapped, virtual-page indexed. Entries cache the host pointer for
  // one fully mapped, frame-aligned guest page, so in-page loads and stores
  // skip Translate's range checks and FrameStore's atomics. Read entries go
  // stale when a CoW fault retargets a frame's read pointer — every write
  // path that can trigger the first fault of a frame flushes the read TLB.
  // Write entries bump the store's frame version on every hit so decoded
  // blocks over the frame still invalidate — even blocks installed after
  // the write entry was filled, which is why no TLB flush is needed on
  // install. Both TLBs are dropped after port I/O (the monitor may rewrite
  // guest memory).
  static constexpr uint64_t kTlbSlots = 64;
  static constexpr uint64_t kNoPage = ~0ull;
  struct ReadTlbEntry {
    uint64_t page = kNoPage;
    const uint8_t* base = nullptr;
  };
  struct WriteTlbEntry {
    uint64_t page = kNoPage;
    uint8_t* base = nullptr;
    uint64_t frame = 0;
  };

  void FlushReadTlb() {
    for (ReadTlbEntry& e : read_tlb_) {
      e.page = kNoPage;
    }
  }
  void FlushWriteTlb() {
    for (WriteTlbEntry& e : write_tlb_) {
      e.page = kNoPage;
    }
  }
  void FlushTlbs() {
    FlushReadTlb();
    FlushWriteTlb();
  }

  // Picks the map covering the whole page, or returns kNoPage-equivalent
  // failure. Only frame-aligned physical pages are cacheable.
  const uint8_t* FillReadTlb(uint64_t page);
  uint8_t* FillWriteTlb(uint64_t page, uint64_t* frame_out);

  template <uint64_t Size>
  Result<const uint8_t*> TlbReadPtr(uint64_t vaddr) {
    if ((vaddr & (FrameStore::kFrameBytes - 1)) <= FrameStore::kFrameBytes - Size) {
      const uint64_t page = vaddr >> 12;
      ReadTlbEntry& e = read_tlb_[page & (kTlbSlots - 1)];
      if (e.page == page) {
        return e.base + (vaddr & (FrameStore::kFrameBytes - 1));
      }
      const uint8_t* base = FillReadTlb(page);
      if (base != nullptr) {
        return base + (vaddr & (FrameStore::kFrameBytes - 1));
      }
    }
    // Slow path: page-crossing access or uncacheable page.
    IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(vaddr, Size));
    return store_->ReadPtr(phys, Size, tlb_scratch_);
  }

  Result<uint64_t> TlbLoad64(uint64_t vaddr) {
    IMK_ASSIGN_OR_RETURN(const uint8_t* p, TlbReadPtr<8>(vaddr));
    return LoadLe64(p);
  }
  Result<uint8_t> TlbLoad8(uint64_t vaddr) {
    IMK_ASSIGN_OR_RETURN(const uint8_t* p, TlbReadPtr<1>(vaddr));
    return *p;
  }

  template <uint64_t Size>
  Result<uint8_t*> TlbWritePtr(uint64_t vaddr) {
    if ((vaddr & (FrameStore::kFrameBytes - 1)) <= FrameStore::kFrameBytes - Size) {
      const uint64_t page = vaddr >> 12;
      WriteTlbEntry& e = write_tlb_[page & (kTlbSlots - 1)];
      if (e.page == page) {
        store_->BumpVersionIfCode(e.frame);
        return e.base + (vaddr & (FrameStore::kFrameBytes - 1));
      }
      uint64_t frame = 0;
      uint8_t* base = FillWriteTlb(page, &frame);
      if (base != nullptr) {
        store_->BumpVersionIfCode(frame);
        return base + (vaddr & (FrameStore::kFrameBytes - 1));
      }
    }
    // Slow path. WritablePtr materializes (flush read entries that may have
    // cached pre-CoW pointers) and bumps code-frame versions itself.
    IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(vaddr, Size));
    const uint64_t last = (phys + Size - 1) >> 12;
    for (uint64_t f = phys >> 12; f <= last; ++f) {
      if (store_->StateOf(f) != FrameStore::FrameState::kDirty) {
        FlushReadTlb();
        break;
      }
    }
    return store_->WritablePtr(phys, Size);
  }

  Status TlbStore64(uint64_t vaddr, uint64_t value) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, TlbWritePtr<8>(vaddr));
    StoreLe64(p, value);
    return OkStatus();
  }
  Status TlbStore8(uint64_t vaddr, uint8_t value) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, TlbWritePtr<1>(vaddr));
    *p = value;
    return OkStatus();
  }

  // Frame-aware physical accessors (single-frame accesses resolve to one
  // pointer lookup; frame-straddling loads gather, stores materialize).
  Result<uint64_t> Load64(uint64_t phys) const {
    uint8_t buf[8];
    IMK_ASSIGN_OR_RETURN(const uint8_t* p, store_->ReadPtr(phys, 8, buf));
    return LoadLe64(p);
  }
  Result<uint8_t> Load8(uint64_t phys) const {
    uint8_t buf[1];
    IMK_ASSIGN_OR_RETURN(const uint8_t* p, store_->ReadPtr(phys, 1, buf));
    return *p;
  }
  Status Store64(uint64_t phys, uint64_t value) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, store_->WritablePtr(phys, 8));
    StoreLe64(p, value);
    return OkStatus();
  }
  Status Store8(uint64_t phys, uint8_t value) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, store_->WritablePtr(phys, 1));
    *p = value;
    return OkStatus();
  }

  std::unique_ptr<FrameStore> flat_;  // owns the store in flat-span mode
  FrameStore* store_ = nullptr;
  LinearMap map_;
  LinearMap secondary_map_{};  // size 0 = unused
  PortHandler port_handler_;
  IcacheModel* icache_ = nullptr;
  const Deadline* deadline_ = nullptr;
  uint64_t ex_table_vaddr_ = 0;
  uint64_t ex_table_count_ = 0;
  uint64_t ex_table_text_base_ = 0;
  uint64_t regs_[kNumRegisters] = {};
  uint8_t insn_buf_[16] = {};  // gather target for frame-straddling fetches
  uint8_t tlb_scratch_[16] = {};

  bool use_block_cache_ = true;
  SharedBlockCache* shared_block_cache_ = nullptr;
  uint64_t layout_key_ = 0;  // non-zero enables whole-table decode sharing
  std::unique_ptr<BlockCache> block_cache_;  // created on first block-engine Run
  ReadTlbEntry read_tlb_[kTlbSlots];
  WriteTlbEntry write_tlb_[kTlbSlots];
};

}  // namespace imk

#endif  // IMKASLR_SRC_ISA_INTERPRETER_H_
