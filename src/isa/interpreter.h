// VK64 interpreter: executes guest code out of guest physical memory through
// a linear virtual->physical mapping (modeling the early-boot page tables the
// booting principal installs). Port I/O is delegated to a handler supplied
// by the vCPU; faulting PROBE loads consult the guest's exception table the
// way the kernel's fault handler searches __ex_table.
#ifndef IMKASLR_SRC_ISA_INTERPRETER_H_
#define IMKASLR_SRC_ISA_INTERPRETER_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/base/bytes.h"
#include "src/base/deadline.h"
#include "src/base/frame_store.h"
#include "src/base/result.h"
#include "src/isa/icache.h"
#include "src/isa/isa.h"

namespace imk {

// A linear virtual->physical window: [virt_start, virt_start + size) maps to
// [phys_start, phys_start + size).
struct LinearMap {
  uint64_t virt_start = 0;
  uint64_t phys_start = 0;
  uint64_t size = 0;

  bool Contains(uint64_t vaddr) const { return vaddr - virt_start < size; }
  uint64_t ToPhys(uint64_t vaddr) const { return vaddr - virt_start + phys_start; }
};

// Why Run() returned.
enum class StopReason {
  kHalt,            // guest executed HALT
  kInstructionCap,  // max_instructions exhausted
  kDeadline,        // the attached wall-clock Deadline expired mid-run
};

// Execution statistics for one Run().
struct ExecStats {
  uint64_t instructions = 0;
  uint64_t icache_hits = 0;
  uint64_t icache_misses = 0;
  // Simulated cycles: 1/instruction + icache miss penalty (only meaningful
  // when an i-cache model is attached).
  uint64_t cycles = 0;
};

struct RunResult {
  StopReason reason = StopReason::kHalt;
  ExecStats stats;
};

class Interpreter {
 public:
  // Port handler: called for OUT (is_write=true, `value` = register) and IN
  // (is_write=false; return value goes to the destination register). The
  // handler may fail, which faults the guest.
  using PortHandler = std::function<Result<uint64_t>(uint16_t port, bool is_write, uint64_t value)>;

  // `phys` is the guest's physical memory; `map` the virtual window. The
  // caller keeps `phys` alive while the interpreter runs. The flat-span form
  // wraps the buffer in a fully materialized FrameStore; the FrameStore form
  // executes straight over paged copy-on-write memory, so guest stores fault
  // frames in and guest loads never materialize anything.
  Interpreter(MutableByteSpan phys, LinearMap map);
  Interpreter(FrameStore& phys, LinearMap map);

  void set_port_handler(PortHandler handler) { port_handler_ = std::move(handler); }
  // Optional i-cache model fed with every instruction fetch (slows execution;
  // used by the LEBench harness).
  void set_icache(IcacheModel* icache) { icache_ = icache; }
  // Extra v->p window (e.g. an identity map of low memory alongside the
  // randomized kernel window). Checked after the primary map.
  void set_secondary_map(LinearMap map) { secondary_map_ = map; }

  // Wall-clock watchdog: Run() polls the deadline every few tens of
  // thousands of instructions and stops with StopReason::kDeadline once it
  // expires (a clean stop, not a guest fault — the supervisor decides what
  // a trip means). nullptr (default) disables polling entirely.
  void set_deadline(const Deadline* deadline) { deadline_ = deadline; }

  // Exception table: sorted {fault_offset, fixup_offset} pairs in guest
  // memory, offsets relative to `text_base` (the runtime address of _text) —
  // mirroring Linux's text-relative __ex_table, which plain KASLR never
  // touches but FGKASLR must fix up and re-sort. Registered by the vCPU when
  // the guest announces its tables.
  void SetExceptionTable(uint64_t table_vaddr, uint64_t count, uint64_t text_base) {
    ex_table_vaddr_ = table_vaddr;
    ex_table_count_ = count;
    ex_table_text_base_ = text_base;
  }

  // Runs from `entry_vaddr` with SP = `stack_top_vaddr` until HALT, a fault
  // (error status), or `max_instructions`.
  Result<RunResult> Run(uint64_t entry_vaddr, uint64_t stack_top_vaddr, uint64_t max_instructions);

  uint64_t reg(int index) const { return regs_[index]; }
  void set_reg(int index, uint64_t value) { regs_[index] = value; }

 private:
  Result<uint64_t> Translate(uint64_t vaddr, uint64_t size_bytes) const;
  Status HandleProbeFault(uint64_t insn_vaddr, uint64_t* pc);

  // Frame-aware physical accessors (single-frame accesses resolve to one
  // pointer lookup; frame-straddling loads gather, stores materialize).
  Result<uint64_t> Load64(uint64_t phys) const {
    uint8_t buf[8];
    IMK_ASSIGN_OR_RETURN(const uint8_t* p, store_->ReadPtr(phys, 8, buf));
    return LoadLe64(p);
  }
  Result<uint8_t> Load8(uint64_t phys) const {
    uint8_t buf[1];
    IMK_ASSIGN_OR_RETURN(const uint8_t* p, store_->ReadPtr(phys, 1, buf));
    return *p;
  }
  Status Store64(uint64_t phys, uint64_t value) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, store_->WritablePtr(phys, 8));
    StoreLe64(p, value);
    return OkStatus();
  }
  Status Store8(uint64_t phys, uint8_t value) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, store_->WritablePtr(phys, 1));
    *p = value;
    return OkStatus();
  }

  std::unique_ptr<FrameStore> flat_;  // owns the store in flat-span mode
  FrameStore* store_ = nullptr;
  LinearMap map_;
  LinearMap secondary_map_{};  // size 0 = unused
  PortHandler port_handler_;
  IcacheModel* icache_ = nullptr;
  const Deadline* deadline_ = nullptr;
  uint64_t ex_table_vaddr_ = 0;
  uint64_t ex_table_count_ = 0;
  uint64_t ex_table_text_base_ = 0;
  uint64_t regs_[kNumRegisters] = {};
  uint8_t insn_buf_[16] = {};  // gather target for frame-straddling fetches
};

}  // namespace imk

#endif  // IMKASLR_SRC_ISA_INTERPRETER_H_
