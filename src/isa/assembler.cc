#include "src/isa/assembler.h"

#include <cstdio>
#include <cstdlib>

namespace imk {

void Assembler::Bind(Label label) {
  LabelState& state = labels_[label];
  if (state.bound) {
    std::fprintf(stderr, "assembler: label bound twice\n");
    std::abort();
  }
  state.bound = true;
  state.position = code_.size();
  // Patch earlier forward references: rel32 is relative to the end of the
  // branch instruction, which is always the 4 bytes following the field.
  for (uint64_t fixup : state.fixups) {
    const int64_t rel = static_cast<int64_t>(state.position) - (static_cast<int64_t>(fixup) + 4);
    code_.PatchU32(fixup, static_cast<uint32_t>(static_cast<int32_t>(rel)));
  }
  state.fixups.clear();
}

void Assembler::EmitBranchTarget(Label label) {
  LabelState& state = labels_[label];
  if (state.bound) {
    const int64_t rel =
        static_cast<int64_t>(state.position) - (static_cast<int64_t>(code_.size()) + 4);
    code_.WriteU32(static_cast<uint32_t>(static_cast<int32_t>(rel)));
  } else {
    state.fixups.push_back(code_.size());
    code_.WriteU32(0);
  }
}

Bytes Assembler::TakeCode() {
  for (const LabelState& state : labels_) {
    if (!state.bound || !state.fixups.empty()) {
      std::fprintf(stderr, "assembler: unbound label at finalize\n");
      std::abort();
    }
  }
  return code_.Take();
}

}  // namespace imk
