#include "src/isa/block_cache.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/base/fault_injection.h"
#include "src/race/tracker.h"
#include "src/trace/trace.h"

namespace imk {
namespace {

// Accounted footprint of one decoded block: the struct itself plus the uop
// spill vector when the block outgrew the inline array.
uint64_t BlockBytes(const DecodedBlock& block) {
  uint64_t bytes = sizeof(DecodedBlock);
  if (block.uops.size() > UopArray::kInline) {
    bytes += block.uops.size() * sizeof(Uop);
  }
  return bytes;
}

// Accounted footprint of one published table: entry/index/owner arrays. The
// decoded blocks the entries reference were charged at Install time.
uint64_t TableBytes(const SharedBlockCache::Table& table) {
  return table.entries.size() * sizeof(SharedBlockCache::TableEntry) +
         table.index.size() * sizeof(uint32_t) +
         table.owners.size() * sizeof(std::shared_ptr<const void>);
}

}  // namespace

SharedBlockCache::~SharedBlockCache() {
  std::lock_guard<race::Mutex> lock(mutex_);
  if (accountant_ != nullptr && accounted_bytes_ != 0) {
    accountant_->Release(accounted_bytes_);
    accounted_bytes_ = 0;
  }
}

void SharedBlockCache::set_accountant(std::shared_ptr<ByteAccountant> accountant) {
  std::lock_guard<race::Mutex> lock(mutex_);
  accountant_ = std::move(accountant);
}

uint64_t SharedBlockCache::ReclaimMemory(uint64_t want_bytes) {
  // Governor ladder tier (governor mutex held, rank 30 < 55). Tables go
  // first — losing one costs the next same-layout boot a re-log, nothing
  // more — then individual blocks, which the next executor re-decodes.
  std::lock_guard<race::Mutex> lock(mutex_);
  IMK_RACE_SHARED_WRITE("block_cache.map", this, 0, kBlockCache);
  uint64_t released = 0;
  while (!tables_.empty() && released < want_bytes) {
    auto it = tables_.begin();
    released += TableBytes(*it->second);
    tables_.erase(it);
    ++retired_tables_;
  }
  while (!blocks_.empty() && released < want_bytes) {
    auto it = blocks_.begin();
    released += BlockBytes(*it->second.block);
    blocks_.erase(it);
    ++retired_blocks_;
  }
  if (released != 0 && accountant_ != nullptr) {
    const uint64_t drop = std::min(released, accounted_bytes_);
    accountant_->Release(drop);
    accounted_bytes_ -= drop;
  }
  return released;
}

std::shared_ptr<const DecodedBlock> SharedBlockCache::Grab(const uint8_t* src_frame,
                                                           uint32_t offset) {
  std::lock_guard<race::Mutex> lock(mutex_);
  IMK_RACE_SHARED_WRITE("block_cache.map", this, 0, kBlockCache);
  auto it = blocks_.find(Key(src_frame, offset));
  if (it == blocks_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second.block;
}

std::shared_ptr<const DecodedBlock> SharedBlockCache::Install(
    const uint8_t* src_frame, uint32_t offset, std::shared_ptr<const DecodedBlock> block,
    std::shared_ptr<const void> owner, bool replace) {
  std::lock_guard<race::Mutex> lock(mutex_);
  IMK_RACE_SHARED_WRITE("block_cache.map", this, 0, kBlockCache);
  auto [it, inserted] =
      blocks_.try_emplace(Key(src_frame, offset), Entry{block, std::move(owner)});
  if (!inserted && replace) {
    ++stale_replaced_;
    // Same key, same source bytes: the replacement's footprint matches the
    // replaced block's, so the accounted total is unchanged.
    it->second.block = std::move(block);
  } else if (inserted && accountant_ != nullptr) {
    const uint64_t bytes = BlockBytes(*it->second.block);
    accountant_->Charge(bytes);
    accounted_bytes_ += bytes;
  }
  return it->second.block;
}

std::shared_ptr<const SharedBlockCache::Table> SharedBlockCache::GrabTable(uint64_t layout_key) {
  std::lock_guard<race::Mutex> lock(mutex_);
  IMK_RACE_SHARED_WRITE("block_cache.map", this, 0, kBlockCache);
  auto it = tables_.find(layout_key);
  if (it == tables_.end()) {
    return nullptr;
  }
  ++table_grabs_;
  return it->second;
}

void SharedBlockCache::PublishTable(uint64_t layout_key, Table table) {
  // Build the vaddr index once, donor-side, so every adopter resolves misses
  // mutex-free. Last-wins on duplicate vaddrs (a block re-logged after an
  // invalidation supersedes its earlier decode).
  size_t cap = 64;
  while (cap < table.entries.size() * 2) {
    cap <<= 1;
  }
  table.index.assign(cap, Table::kEmptyIndex);
  table.index_mask = static_cast<uint32_t>(cap - 1);
  for (size_t e = 0; e < table.entries.size(); ++e) {
    uint32_t i = static_cast<uint32_t>((table.entries[e].vaddr * 0x9e3779b97f4a7c15ull) >> 32) &
                 table.index_mask;
    while (table.index[i] != Table::kEmptyIndex &&
           table.entries[table.index[i]].vaddr != table.entries[e].vaddr) {
      i = (i + 1) & table.index_mask;
    }
    table.index[i] = static_cast<uint32_t>(e);
  }
  auto shared = std::make_shared<const Table>(std::move(table));
  std::lock_guard<race::Mutex> lock(mutex_);
  IMK_RACE_SHARED_WRITE("block_cache.map", this, 0, kBlockCache);
  auto [it, inserted] = tables_.try_emplace(layout_key, std::move(shared));
  if (inserted && accountant_ != nullptr) {
    const uint64_t bytes = TableBytes(*it->second);
    accountant_->Charge(bytes);
    accounted_bytes_ += bytes;
  }
}

SharedBlockCache::Stats SharedBlockCache::stats() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  IMK_RACE_SHARED_READ("block_cache.map", this, 0, kBlockCache);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.stale_replaced = stale_replaced_;
  s.blocks = blocks_.size();
  s.tables = tables_.size();
  s.table_grabs = table_grabs_;
  s.retired_blocks = retired_blocks_;
  s.retired_tables = retired_tables_;
  return s;
}

void BlockCache::AdoptTable(uint64_t layout_key) {
  if (adopt_done_ || shared_ == nullptr || layout_key == 0) {
    return;
  }
  adopt_done_ = true;
  IMK_TRACE_SPAN("blockcache", "blockcache.adopt");
  adopted_ = shared_->GrabTable(layout_key);
  if (adopted_ == nullptr) {
    // First boot of this layout: log shareable blocks for PublishTable().
    log_enabled_ = true;
    publish_key_ = layout_key;
  }
  // Adoption is lazy: LookupSlow() consults the bound table on each per-VM
  // miss, so this VM validates (identity + digest) exactly the blocks it
  // actually dispatches — never the whole table up front.
}

void BlockCache::PublishTable() {
  if (!log_enabled_ || shared_ == nullptr) {
    return;
  }
  log_enabled_ = false;
  IMK_TRACE_SPAN("blockcache", "blockcache.publish");
  SharedBlockCache::Table table;
  table.entries = std::move(publish_log_);
  table.owners = std::move(log_owners_);
  shared_->PublishTable(publish_key_, std::move(table));
}

const DecodedBlock* BlockCache::LookupSlow(uint64_t vaddr, uint64_t phys, uint64_t avail) {
  Slot& slot = slots_[SlotIndex(vaddr)];
  if (slot.block != nullptr && slot.vaddr == vaddr) {
    // Find() bounced a resident binding: a write landed in a frame this
    // block was decoded from. Retire it.
    ++counters_.invalidations;
    slot.block = nullptr;
  }
  ++counters_.misses;

  const uint64_t frame = phys >> 12;
  const uint32_t offset = static_cast<uint32_t>(phys & (FrameStore::kFrameBytes - 1));
  // Versions are snapshotted before the bytes are read: the vCPU is the only
  // writer into its own store while it runs, so the snapshot cannot go stale
  // between here and the install below.
  const uint32_t v0 = store_->FrameVersion(frame);

  if (adopted_ != nullptr) {
    const SharedBlockCache::TableEntry* e = adopted_->Find(vaddr);
    // Template-identity guard: honor the binding only if this VM's frame
    // still zero-copy-aliases the very bytes the donor decoded from. A frame
    // this VM already dirtied (fault-injected loader, divergent writes)
    // fails the compare and falls through to the normal slow path.
    if (e != nullptr && e->frame == frame && store_->SharedSource(frame) == e->src) {
      // Same once-per-acquisition integrity gate as a shared-tier grab: the
      // uops must digest clean before the block can enter this VM's table.
      uint64_t adigest = UopDigest(e->block->uops);
      IMK_FAULT_CORRUPT("interp.blockcache", reinterpret_cast<uint8_t*>(&adigest),
                        sizeof(adigest));
      if (adigest == e->block->uop_digest) {
        ++counters_.shared_grabs;
        slot.vaddr = vaddr;
        slot.frame0 = static_cast<uint32_t>(frame);
        slot.v0 = v0;
        slot.frame1 = static_cast<uint32_t>(frame);  // table entries end in-frame
        slot.v1 = v0;
        slot.block = e->block.get();  // pinned by adopted_, not pins_
        store_->MarkCodeFrame(frame);
        return slot.block;
      }
      // Corrupt adopted entry: fall through to the grab/decode path, which
      // re-validates or decodes fresh.
      ++counters_.invalidations;
    }
  }

  std::shared_ptr<const DecodedBlock> block;
  const uint8_t* shared_src = shared_ != nullptr ? store_->SharedSource(frame) : nullptr;
  bool stale_entry = false;
  if (shared_src != nullptr) {
    block = shared_->Grab(shared_src, offset);
    if (block != nullptr) {
      // Grab-time integrity: the uop array must still digest clean (the
      // fault point drills this comparison; the fallback is a fresh
      // decode). No source re-hash is needed — the entry pins the template
      // owner, so the key cannot alias recycled bytes.
      uint64_t digest = UopDigest(block->uops);
      IMK_FAULT_CORRUPT("interp.blockcache", reinterpret_cast<uint8_t*>(&digest),
                        sizeof(digest));
      if (digest != block->uop_digest) {
        ++counters_.invalidations;
        stale_entry = true;
        block.reset();
      }
    }
  }
  if (block == nullptr) {
    // Sampled 1-in-64 per thread: a full boot decodes thousands of blocks,
    // and a span per decode alone saturates the rings and costs more than
    // the <=3% traced-storm budget. The sampled spans still place every
    // decode burst on the timeline; stage spans stay exact.
    thread_local uint32_t decode_sample = 0;
    const uint64_t decode_span =
        (decode_sample++ % 64 == 0) ? trace::SpanStart() : 0;
    auto decoded = std::make_shared<DecodedBlock>(DecodeBlock(*store_, phys, avail, kMaxBlockUops));
    trace::EmitComplete("blockcache", "blockcache.decode", decode_span);
    if (decoded->uops.empty()) {
      // First instruction straddles the fetch window: nothing cacheable.
      empty_block_ = std::move(decoded);
      return empty_block_.get();
    }
    if (shared_src != nullptr && decoded->ends_in_frame) {
      block = shared_->Install(shared_src, offset, std::move(decoded),
                               store_->SharedOwner(frame), stale_entry);
    } else {
      block = std::move(decoded);
    }
  }
  if (shared_src != nullptr && block->ends_in_frame) {
    ++counters_.shared_grabs;
    if (log_enabled_) {
      publish_log_.push_back(
          {vaddr, static_cast<uint32_t>(frame), shared_src, block});
      std::shared_ptr<const void> owner = store_->SharedOwner(frame);
      bool pinned = false;
      for (const auto& o : log_owners_) {
        if (o == owner) {
          pinned = true;
          break;
        }
      }
      if (!pinned) {
        log_owners_.push_back(std::move(owner));
      }
    }
  } else {
    ++counters_.private_decodes;
  }

  slot.vaddr = vaddr;
  slot.frame0 = static_cast<uint32_t>(frame);
  slot.v0 = v0;
  slot.frame1 = static_cast<uint32_t>(frame);
  slot.v1 = v0;
  if (!block->ends_in_frame) {
    const uint64_t last_frame = (phys + block->byte_len - 1) >> 12;
    slot.frame1 = static_cast<uint32_t>(last_frame);
    slot.v1 = store_->FrameVersion(last_frame);
    store_->MarkCodeFrame(last_frame);
  }
  store_->MarkCodeFrame(frame);
  slot.block = block.get();
  pins_.push_back(std::move(block));
  return slot.block;
}

}  // namespace imk
