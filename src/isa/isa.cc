#include "src/isa/isa.h"

namespace imk {

uint32_t InstructionLength(uint8_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kRet:
      return 1;
    case Opcode::kPush:
    case Opcode::kPop:
    case Opcode::kCallR:
    case Opcode::kRdPc:
      return 2;
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kXor:
    case Opcode::kMul:
      return 3;
    case Opcode::kShrI:
    case Opcode::kShlI:
      return 3;
    case Opcode::kOut:
    case Opcode::kIn:
      return 4;  // opcode + port(2) + reg
    case Opcode::kJmp:
      return 5;  // opcode + rel32
    case Opcode::kLoadA32:
    case Opcode::kLoadNeg32:
    case Opcode::kAndI:
    case Opcode::kAddI:
      return 6;  // opcode + reg + imm32
    case Opcode::kJz:
    case Opcode::kJnz:
      return 6;  // opcode + reg + rel32
    case Opcode::kJlt:
      return 7;  // opcode + reg + reg + rel32
    case Opcode::kLd64:
    case Opcode::kSt64:
    case Opcode::kLd8:
    case Opcode::kSt8:
    case Opcode::kProbe:
      return 7;  // opcode + reg + reg + imm32
    case Opcode::kLoadI:
    case Opcode::kLoadA64:
      return 10;  // opcode + reg + imm64
    case Opcode::kCall:
      return 9;  // opcode + imm64
  }
  return 0;
}

}  // namespace imk
