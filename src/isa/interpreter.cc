#include "src/isa/interpreter.h"

#include <cstdio>

namespace imk {
namespace {

int64_t SignExtend32(uint32_t v) { return static_cast<int64_t>(static_cast<int32_t>(v)); }

}  // namespace

Interpreter::Interpreter(MutableByteSpan phys, LinearMap map)
    : flat_(std::make_unique<FrameStore>(phys)), store_(flat_.get()), map_(map) {}

Interpreter::Interpreter(FrameStore& phys, LinearMap map) : store_(&phys), map_(map) {}

Result<uint64_t> Interpreter::Translate(uint64_t vaddr, uint64_t size_bytes) const {
  const LinearMap* map = nullptr;
  if (map_.Contains(vaddr) && map_.Contains(vaddr + size_bytes - 1)) {
    map = &map_;
  } else if (secondary_map_.size != 0 && secondary_map_.Contains(vaddr) &&
             secondary_map_.Contains(vaddr + size_bytes - 1)) {
    map = &secondary_map_;
  } else {
    return GuestFaultError("unmapped guest virtual address " + HexString(vaddr));
  }
  const uint64_t phys = map->ToPhys(vaddr);
  if (phys + size_bytes > store_->size()) {
    return GuestFaultError("guest physical address out of RAM: " + HexString(phys));
  }
  return phys;
}

Status Interpreter::HandleProbeFault(uint64_t insn_vaddr, uint64_t* pc) {
  if (ex_table_count_ == 0) {
    return GuestFaultError("probe fault with no exception table, pc=" + HexString(insn_vaddr));
  }
  // Binary search the sorted {fault_offset, fixup_offset} table in guest
  // memory — the same search the kernel performs over __ex_table, which is
  // why FGKASLR must keep the table sorted after shuffling (paper §3.2).
  const uint64_t insn_offset = insn_vaddr - ex_table_text_base_;
  uint64_t lo = 0;
  uint64_t hi = ex_table_count_;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    IMK_ASSIGN_OR_RETURN(uint64_t entry_phys,
                         Translate(ex_table_vaddr_ + mid * kExTableEntrySize, kExTableEntrySize));
    IMK_ASSIGN_OR_RETURN(uint64_t fault_offset, Load64(entry_phys));
    if (fault_offset == insn_offset) {
      IMK_ASSIGN_OR_RETURN(uint64_t fixup, Load64(entry_phys + 8));
      *pc = ex_table_text_base_ + fixup;
      return OkStatus();
    }
    if (fault_offset < insn_offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return GuestFaultError("probe fault with no exception entry, pc=" + HexString(insn_vaddr));
}

Result<RunResult> Interpreter::Run(uint64_t entry_vaddr, uint64_t stack_top_vaddr,
                                   uint64_t max_instructions) {
  uint64_t pc = entry_vaddr;
  regs_[kRegSp] = stack_top_vaddr;
  RunResult result;
  ExecStats& stats = result.stats;

  while (stats.instructions < max_instructions) {
    // Watchdog poll: every 64 Ki instructions (~sub-millisecond between
    // polls) so a runaway or fault-stalled guest is bounded by the deadline,
    // not the instruction cap. The mask test comes first: it is a register
    // compare, so the 65535 of 65536 iterations that skip the poll never
    // touch deadline_ at all.
    if ((stats.instructions & 0xffffu) == 0 && deadline_ != nullptr && deadline_->expired()) {
      result.reason = StopReason::kDeadline;
      if (icache_ != nullptr) {
        stats.icache_hits = icache_->hits();
        stats.icache_misses = icache_->misses();
      }
      return result;
    }
    // Fetch: longest instruction is 10 bytes; translate conservatively for
    // the opcode byte first, then the full length. Fetches never materialize
    // frames: code executing straight out of shared template pages is the
    // point of the CoW mapping.
    IMK_ASSIGN_OR_RETURN(uint64_t opcode_phys, Translate(pc, 1));
    IMK_ASSIGN_OR_RETURN(uint8_t opcode, Load8(opcode_phys));
    const uint32_t length = InstructionLength(opcode);
    if (length == 0) {
      return GuestFaultError("invalid opcode at pc=" + HexString(pc));
    }
    IMK_ASSIGN_OR_RETURN(uint64_t insn_phys, Translate(pc, length));
    IMK_ASSIGN_OR_RETURN(const uint8_t* insn, store_->ReadPtr(insn_phys, length, insn_buf_));

    if (icache_ != nullptr) {
      stats.cycles += 1;
      if (!icache_->Access(pc)) {
        stats.cycles += icache_->config().miss_penalty_cycles;
      }
      // A fetch crossing a line boundary touches the next line too.
      const uint64_t line = icache_->config().line_bytes;
      if ((pc % line) + length > line) {
        if (!icache_->Access(pc + length - 1)) {
          stats.cycles += icache_->config().miss_penalty_cycles;
        }
      }
    }

    ++stats.instructions;
    uint64_t next_pc = pc + length;

    switch (static_cast<Opcode>(opcode)) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        result.reason = StopReason::kHalt;
        if (icache_ != nullptr) {
          stats.icache_hits = icache_->hits();
          stats.icache_misses = icache_->misses();
        }
        return result;
      case Opcode::kLoadI:
      case Opcode::kLoadA64:
        regs_[insn[1] & 0xf] = LoadLe64(insn + 2);
        break;
      case Opcode::kLoadA32:
      case Opcode::kLoadNeg32:
        // Sign-extended, mirroring x86_64's handling of kernel addresses in
        // the top 2 GiB of the canonical space.
        regs_[insn[1] & 0xf] = static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 2)));
        break;
      case Opcode::kMov:
        regs_[insn[1] & 0xf] = regs_[insn[2] & 0xf];
        break;
      case Opcode::kAdd:
        regs_[insn[1] & 0xf] += regs_[insn[2] & 0xf];
        break;
      case Opcode::kSub:
        regs_[insn[1] & 0xf] -= regs_[insn[2] & 0xf];
        break;
      case Opcode::kXor:
        regs_[insn[1] & 0xf] ^= regs_[insn[2] & 0xf];
        break;
      case Opcode::kMul:
        regs_[insn[1] & 0xf] *= regs_[insn[2] & 0xf];
        break;
      case Opcode::kShrI:
        regs_[insn[1] & 0xf] >>= (insn[2] & 63);
        break;
      case Opcode::kShlI:
        regs_[insn[1] & 0xf] <<= (insn[2] & 63);
        break;
      case Opcode::kAndI:
        regs_[insn[1] & 0xf] &= LoadLe32(insn + 2);
        break;
      case Opcode::kAddI:
        regs_[insn[1] & 0xf] =
            static_cast<uint64_t>(static_cast<int64_t>(regs_[insn[1] & 0xf]) +
                                  SignExtend32(LoadLe32(insn + 2)));
        break;
      case Opcode::kLd64: {
        const uint64_t addr =
            regs_[insn[2] & 0xf] + static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(addr, 8));
        IMK_ASSIGN_OR_RETURN(regs_[insn[1] & 0xf], Load64(phys));
        break;
      }
      case Opcode::kSt64: {
        const uint64_t addr =
            regs_[insn[1] & 0xf] + static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(addr, 8));
        IMK_RETURN_IF_ERROR(Store64(phys, regs_[insn[2] & 0xf]));
        break;
      }
      case Opcode::kLd8: {
        const uint64_t addr =
            regs_[insn[2] & 0xf] + static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(addr, 1));
        IMK_ASSIGN_OR_RETURN(regs_[insn[1] & 0xf], Load8(phys));
        break;
      }
      case Opcode::kSt8: {
        const uint64_t addr =
            regs_[insn[1] & 0xf] + static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(addr, 1));
        IMK_RETURN_IF_ERROR(Store8(phys, static_cast<uint8_t>(regs_[insn[2] & 0xf])));
        break;
      }
      case Opcode::kProbe: {
        const uint64_t addr =
            regs_[insn[2] & 0xf] + static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        auto phys = Translate(addr, 8);
        if (phys.ok()) {
          IMK_ASSIGN_OR_RETURN(regs_[insn[1] & 0xf], Load64(*phys));
        } else {
          // Faulting probe: search the exception table for a fixup target.
          regs_[insn[1] & 0xf] = 0;
          IMK_RETURN_IF_ERROR(HandleProbeFault(pc, &next_pc));
        }
        break;
      }
      case Opcode::kJmp:
        next_pc += static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 1)));
        break;
      case Opcode::kJz:
        if (regs_[insn[1] & 0xf] == 0) {
          next_pc += static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 2)));
        }
        break;
      case Opcode::kJnz:
        if (regs_[insn[1] & 0xf] != 0) {
          next_pc += static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 2)));
        }
        break;
      case Opcode::kJlt:
        if (regs_[insn[1] & 0xf] < regs_[insn[2] & 0xf]) {
          next_pc += static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        }
        break;
      case Opcode::kCall: {
        const uint64_t target = LoadLe64(insn + 1);
        regs_[kRegSp] -= 8;
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(regs_[kRegSp], 8));
        IMK_RETURN_IF_ERROR(Store64(phys, next_pc));
        next_pc = target;
        break;
      }
      case Opcode::kCallR: {
        const uint64_t target = regs_[insn[1] & 0xf];
        regs_[kRegSp] -= 8;
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(regs_[kRegSp], 8));
        IMK_RETURN_IF_ERROR(Store64(phys, next_pc));
        next_pc = target;
        break;
      }
      case Opcode::kRet: {
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(regs_[kRegSp], 8));
        IMK_ASSIGN_OR_RETURN(next_pc, Load64(phys));
        regs_[kRegSp] += 8;
        break;
      }
      case Opcode::kPush: {
        regs_[kRegSp] -= 8;
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(regs_[kRegSp], 8));
        IMK_RETURN_IF_ERROR(Store64(phys, regs_[insn[1] & 0xf]));
        break;
      }
      case Opcode::kPop: {
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(regs_[kRegSp], 8));
        IMK_ASSIGN_OR_RETURN(regs_[insn[1] & 0xf], Load64(phys));
        regs_[kRegSp] += 8;
        break;
      }
      case Opcode::kOut: {
        if (!port_handler_) {
          return GuestFaultError("OUT with no port handler, pc=" + HexString(pc));
        }
        const uint16_t port = LoadLe16(insn + 1);
        IMK_RETURN_IF_ERROR(port_handler_(port, true, regs_[insn[3] & 0xf]).status());
        break;
      }
      case Opcode::kIn: {
        if (!port_handler_) {
          return GuestFaultError("IN with no port handler, pc=" + HexString(pc));
        }
        const uint16_t port = LoadLe16(insn + 1);
        IMK_ASSIGN_OR_RETURN(uint64_t value, port_handler_(port, false, 0));
        regs_[insn[3] & 0xf] = value;
        break;
      }
      case Opcode::kRdPc:
        regs_[insn[1] & 0xf] = pc;
        break;
    }
    pc = next_pc;
  }

  result.reason = StopReason::kInstructionCap;
  if (icache_ != nullptr) {
    stats.icache_hits = icache_->hits();
    stats.icache_misses = icache_->misses();
  }
  return result;
}

}  // namespace imk
