#include "src/isa/interpreter.h"

#include <algorithm>
#include <cstdio>

namespace imk {
namespace {

int64_t SignExtend32(uint32_t v) { return static_cast<int64_t>(static_cast<int32_t>(v)); }

}  // namespace

Interpreter::Interpreter(MutableByteSpan phys, LinearMap map)
    : flat_(std::make_unique<FrameStore>(phys)), store_(flat_.get()), map_(map) {}

Interpreter::Interpreter(FrameStore& phys, LinearMap map) : store_(&phys), map_(map) {}

Result<uint64_t> Interpreter::Translate(uint64_t vaddr, uint64_t size_bytes) const {
  const LinearMap* map = nullptr;
  if (map_.Contains(vaddr) && map_.Contains(vaddr + size_bytes - 1)) {
    map = &map_;
  } else if (secondary_map_.size != 0 && secondary_map_.Contains(vaddr) &&
             secondary_map_.Contains(vaddr + size_bytes - 1)) {
    map = &secondary_map_;
  } else {
    return GuestFaultError("unmapped guest virtual address " + HexString(vaddr));
  }
  const uint64_t phys = map->ToPhys(vaddr);
  if (phys + size_bytes > store_->size()) {
    return GuestFaultError("guest physical address out of RAM: " + HexString(phys));
  }
  return phys;
}

Result<Interpreter::FetchSpan> Interpreter::TranslateFetch(uint64_t pc) const {
  // Mirrors Translate(pc, 1) — same map preference, same fault messages —
  // but additionally reports how far the chosen window extends, so callers
  // fetch a whole instruction (or decode a whole block) with one lookup.
  const LinearMap* map = nullptr;
  if (map_.Contains(pc)) {
    map = &map_;
  } else if (secondary_map_.size != 0 && secondary_map_.Contains(pc)) {
    map = &secondary_map_;
  } else {
    return GuestFaultError("unmapped guest virtual address " + HexString(pc));
  }
  const uint64_t phys = map->ToPhys(pc);
  if (phys >= store_->size()) {
    return GuestFaultError("guest physical address out of RAM: " + HexString(phys));
  }
  FetchSpan span;
  span.phys = phys;
  span.avail = std::min(map->size - (pc - map->virt_start), store_->size() - phys);
  return span;
}

Status Interpreter::HandleProbeFault(uint64_t insn_vaddr, uint64_t* pc) {
  if (ex_table_count_ == 0) {
    return GuestFaultError("probe fault with no exception table, pc=" + HexString(insn_vaddr));
  }
  // Binary search the sorted {fault_offset, fixup_offset} table in guest
  // memory — the same search the kernel performs over __ex_table, which is
  // why FGKASLR must keep the table sorted after shuffling (paper §3.2).
  const uint64_t insn_offset = insn_vaddr - ex_table_text_base_;
  uint64_t lo = 0;
  uint64_t hi = ex_table_count_;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    IMK_ASSIGN_OR_RETURN(uint64_t entry_phys,
                         Translate(ex_table_vaddr_ + mid * kExTableEntrySize, kExTableEntrySize));
    IMK_ASSIGN_OR_RETURN(uint64_t fault_offset, Load64(entry_phys));
    if (fault_offset == insn_offset) {
      IMK_ASSIGN_OR_RETURN(uint64_t fixup, Load64(entry_phys + 8));
      *pc = ex_table_text_base_ + fixup;
      return OkStatus();
    }
    if (fault_offset < insn_offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return GuestFaultError("probe fault with no exception entry, pc=" + HexString(insn_vaddr));
}

const uint8_t* Interpreter::FillReadTlb(uint64_t page) {
  const uint64_t vaddr = page << 12;
  auto phys = Translate(vaddr, FrameStore::kFrameBytes);
  if (!phys.ok() || (*phys & (FrameStore::kFrameBytes - 1)) != 0) {
    return nullptr;  // partially mapped or frame-misaligned page: uncacheable
  }
  const uint8_t* base = store_->FrameReadPtr(*phys >> 12);
  ReadTlbEntry& e = read_tlb_[page & (kTlbSlots - 1)];
  e.page = page;
  e.base = base;
  return base;
}

uint8_t* Interpreter::FillWriteTlb(uint64_t page, uint64_t* frame_out) {
  const uint64_t vaddr = page << 12;
  auto phys = Translate(vaddr, FrameStore::kFrameBytes);
  if (!phys.ok() || (*phys & (FrameStore::kFrameBytes - 1)) != 0) {
    return nullptr;
  }
  const uint64_t frame = *phys >> 12;
  // Materializing a shared frame retargets its read pointer; any read-TLB
  // entry caching the pre-CoW pointer must go. (Zero frames materialize in
  // place — their arena slot pointer is stable — so only the shared state
  // forces the flush.)
  if (store_->StateOf(frame) == FrameStore::FrameState::kShared) {
    FlushReadTlb();
  }
  auto base = store_->WritablePtr(*phys, FrameStore::kFrameBytes);
  if (!base.ok()) {
    return nullptr;
  }
  WriteTlbEntry& e = write_tlb_[page & (kTlbSlots - 1)];
  e.page = page;
  e.base = *base;
  e.frame = frame;
  *frame_out = frame;
  return *base;
}

Result<RunResult> Interpreter::Run(uint64_t entry_vaddr, uint64_t stack_top_vaddr,
                                   uint64_t max_instructions) {
  regs_[kRegSp] = stack_top_vaddr;
  if (use_block_cache_) {
    return RunBlocks(entry_vaddr, max_instructions);
  }
  return RunSwitch(entry_vaddr, max_instructions);
}

Result<RunResult> Interpreter::RunSwitch(uint64_t pc, uint64_t max_instructions) {
  RunResult result;
  ExecStats& stats = result.stats;

  while (stats.instructions < max_instructions) {
    // Watchdog poll: every 64 Ki instructions (~sub-millisecond between
    // polls) so a runaway or fault-stalled guest is bounded by the deadline,
    // not the instruction cap. The mask test comes first: it is a register
    // compare, so the 65535 of 65536 iterations that skip the poll never
    // touch deadline_ at all.
    if ((stats.instructions & 0xffffu) == 0 && deadline_ != nullptr && deadline_->expired()) {
      return Finish(result, StopReason::kDeadline);
    }
    // Fetch: one length-aware translation covers the opcode probe and the
    // full instruction when it fits the window; only an instruction spilling
    // past the window's edge (map seam) pays a second, exact Translate —
    // preserving the fault semantics of the two-step fetch. Fetches never
    // materialize frames: code executing straight out of shared template
    // pages is the point of the CoW mapping.
    IMK_ASSIGN_OR_RETURN(FetchSpan span, TranslateFetch(pc));
    IMK_ASSIGN_OR_RETURN(uint8_t opcode, Load8(span.phys));
    const uint32_t length = InstructionLength(opcode);
    if (length == 0) {
      return GuestFaultError("invalid opcode at pc=" + HexString(pc));
    }
    uint64_t insn_phys = span.phys;
    if (length > span.avail) {
      IMK_ASSIGN_OR_RETURN(insn_phys, Translate(pc, length));
    }
    IMK_ASSIGN_OR_RETURN(const uint8_t* insn, store_->ReadPtr(insn_phys, length, insn_buf_));

    if (icache_ != nullptr) {
      AccountIcache(pc, length, stats);
    }

    ++stats.instructions;
    uint64_t next_pc = pc + length;

    switch (static_cast<Opcode>(opcode)) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        return Finish(result, StopReason::kHalt);
      case Opcode::kLoadI:
      case Opcode::kLoadA64:
        regs_[insn[1] & 0xf] = LoadLe64(insn + 2);
        break;
      case Opcode::kLoadA32:
      case Opcode::kLoadNeg32:
        // Sign-extended, mirroring x86_64's handling of kernel addresses in
        // the top 2 GiB of the canonical space.
        regs_[insn[1] & 0xf] = static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 2)));
        break;
      case Opcode::kMov:
        regs_[insn[1] & 0xf] = regs_[insn[2] & 0xf];
        break;
      case Opcode::kAdd:
        regs_[insn[1] & 0xf] += regs_[insn[2] & 0xf];
        break;
      case Opcode::kSub:
        regs_[insn[1] & 0xf] -= regs_[insn[2] & 0xf];
        break;
      case Opcode::kXor:
        regs_[insn[1] & 0xf] ^= regs_[insn[2] & 0xf];
        break;
      case Opcode::kMul:
        regs_[insn[1] & 0xf] *= regs_[insn[2] & 0xf];
        break;
      case Opcode::kShrI:
        regs_[insn[1] & 0xf] >>= (insn[2] & 63);
        break;
      case Opcode::kShlI:
        regs_[insn[1] & 0xf] <<= (insn[2] & 63);
        break;
      case Opcode::kAndI:
        regs_[insn[1] & 0xf] &= LoadLe32(insn + 2);
        break;
      case Opcode::kAddI:
        regs_[insn[1] & 0xf] =
            static_cast<uint64_t>(static_cast<int64_t>(regs_[insn[1] & 0xf]) +
                                  SignExtend32(LoadLe32(insn + 2)));
        break;
      case Opcode::kLd64: {
        const uint64_t addr =
            regs_[insn[2] & 0xf] + static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(addr, 8));
        IMK_ASSIGN_OR_RETURN(regs_[insn[1] & 0xf], Load64(phys));
        break;
      }
      case Opcode::kSt64: {
        const uint64_t addr =
            regs_[insn[1] & 0xf] + static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(addr, 8));
        IMK_RETURN_IF_ERROR(Store64(phys, regs_[insn[2] & 0xf]));
        break;
      }
      case Opcode::kLd8: {
        const uint64_t addr =
            regs_[insn[2] & 0xf] + static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(addr, 1));
        IMK_ASSIGN_OR_RETURN(regs_[insn[1] & 0xf], Load8(phys));
        break;
      }
      case Opcode::kSt8: {
        const uint64_t addr =
            regs_[insn[1] & 0xf] + static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(addr, 1));
        IMK_RETURN_IF_ERROR(Store8(phys, static_cast<uint8_t>(regs_[insn[2] & 0xf])));
        break;
      }
      case Opcode::kProbe: {
        const uint64_t addr =
            regs_[insn[2] & 0xf] + static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        auto phys = Translate(addr, 8);
        if (phys.ok()) {
          IMK_ASSIGN_OR_RETURN(regs_[insn[1] & 0xf], Load64(*phys));
        } else {
          // Faulting probe: search the exception table for a fixup target.
          regs_[insn[1] & 0xf] = 0;
          IMK_RETURN_IF_ERROR(HandleProbeFault(pc, &next_pc));
        }
        break;
      }
      case Opcode::kJmp:
        next_pc += static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 1)));
        break;
      case Opcode::kJz:
        if (regs_[insn[1] & 0xf] == 0) {
          next_pc += static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 2)));
        }
        break;
      case Opcode::kJnz:
        if (regs_[insn[1] & 0xf] != 0) {
          next_pc += static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 2)));
        }
        break;
      case Opcode::kJlt:
        if (regs_[insn[1] & 0xf] < regs_[insn[2] & 0xf]) {
          next_pc += static_cast<uint64_t>(SignExtend32(LoadLe32(insn + 3)));
        }
        break;
      case Opcode::kCall: {
        const uint64_t target = LoadLe64(insn + 1);
        regs_[kRegSp] -= 8;
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(regs_[kRegSp], 8));
        IMK_RETURN_IF_ERROR(Store64(phys, next_pc));
        next_pc = target;
        break;
      }
      case Opcode::kCallR: {
        const uint64_t target = regs_[insn[1] & 0xf];
        regs_[kRegSp] -= 8;
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(regs_[kRegSp], 8));
        IMK_RETURN_IF_ERROR(Store64(phys, next_pc));
        next_pc = target;
        break;
      }
      case Opcode::kRet: {
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(regs_[kRegSp], 8));
        IMK_ASSIGN_OR_RETURN(next_pc, Load64(phys));
        regs_[kRegSp] += 8;
        break;
      }
      case Opcode::kPush: {
        regs_[kRegSp] -= 8;
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(regs_[kRegSp], 8));
        IMK_RETURN_IF_ERROR(Store64(phys, regs_[insn[1] & 0xf]));
        break;
      }
      case Opcode::kPop: {
        IMK_ASSIGN_OR_RETURN(uint64_t phys, Translate(regs_[kRegSp], 8));
        IMK_ASSIGN_OR_RETURN(regs_[insn[1] & 0xf], Load64(phys));
        regs_[kRegSp] += 8;
        break;
      }
      case Opcode::kOut: {
        if (!port_handler_) {
          return GuestFaultError("OUT with no port handler, pc=" + HexString(pc));
        }
        const uint16_t port = LoadLe16(insn + 1);
        IMK_RETURN_IF_ERROR(port_handler_(port, true, regs_[insn[3] & 0xf]).status());
        break;
      }
      case Opcode::kIn: {
        if (!port_handler_) {
          return GuestFaultError("IN with no port handler, pc=" + HexString(pc));
        }
        const uint16_t port = LoadLe16(insn + 1);
        IMK_ASSIGN_OR_RETURN(uint64_t value, port_handler_(port, false, 0));
        regs_[insn[3] & 0xf] = value;
        break;
      }
      case Opcode::kRdPc:
        regs_[insn[1] & 0xf] = pc;
        break;
    }
    pc = next_pc;
  }

  return Finish(result, StopReason::kInstructionCap);
}

Result<bool> Interpreter::RunUops(const DecodedBlock& block, uint64_t vaddr, uint64_t n,
                                  ExecStats& stats, uint64_t* pc) {
  // Only the last uop of a block can change control flow (the decoder ends
  // blocks at every such instruction), so for i < n-1 `next` is always the
  // fall-through and the loop runs branch-free through the common ALU body.
  uint64_t next = *pc;
  const Uop* uops = block.uops.data();
  for (uint64_t i = 0; i < n; ++i) {
    const Uop& u = uops[i];
    const uint64_t upc = vaddr + u.offset;
    if (u.op == kUopInvalid) {
      return GuestFaultError("invalid opcode at pc=" + HexString(upc));
    }
    if (icache_ != nullptr) {
      AccountIcache(upc, u.len, stats);
    }
    ++stats.instructions;
    next = upc + u.len;

    switch (static_cast<Opcode>(u.op)) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        return true;
      case Opcode::kLoadI:
      case Opcode::kLoadA64:
      case Opcode::kLoadA32:
      case Opcode::kLoadNeg32:
        regs_[u.rd] = u.imm;  // extension already applied at decode time
        break;
      case Opcode::kMov:
        regs_[u.rd] = regs_[u.rs];
        break;
      case Opcode::kAdd:
        regs_[u.rd] += regs_[u.rs];
        break;
      case Opcode::kSub:
        regs_[u.rd] -= regs_[u.rs];
        break;
      case Opcode::kXor:
        regs_[u.rd] ^= regs_[u.rs];
        break;
      case Opcode::kMul:
        regs_[u.rd] *= regs_[u.rs];
        break;
      case Opcode::kShrI:
        regs_[u.rd] >>= u.imm;
        break;
      case Opcode::kShlI:
        regs_[u.rd] <<= u.imm;
        break;
      case Opcode::kAndI:
        regs_[u.rd] &= u.imm;
        break;
      case Opcode::kAddI:
        regs_[u.rd] += u.imm;
        break;
      case Opcode::kLd64: {
        IMK_ASSIGN_OR_RETURN(regs_[u.rd], TlbLoad64(regs_[u.rs] + u.imm));
        break;
      }
      case Opcode::kSt64: {
        IMK_RETURN_IF_ERROR(TlbStore64(regs_[u.rd] + u.imm, regs_[u.rs]));
        break;
      }
      case Opcode::kLd8: {
        IMK_ASSIGN_OR_RETURN(regs_[u.rd], TlbLoad8(regs_[u.rs] + u.imm));
        break;
      }
      case Opcode::kSt8: {
        IMK_RETURN_IF_ERROR(TlbStore8(regs_[u.rd] + u.imm, static_cast<uint8_t>(regs_[u.rs])));
        break;
      }
      case Opcode::kProbe: {
        auto value = TlbLoad64(regs_[u.rs] + u.imm);
        if (value.ok()) {
          regs_[u.rd] = *value;
        } else {
          // Faulting probe: search the exception table for a fixup target.
          regs_[u.rd] = 0;
          IMK_RETURN_IF_ERROR(HandleProbeFault(upc, &next));
        }
        break;
      }
      case Opcode::kJmp:
        next += u.imm;
        break;
      case Opcode::kJz:
        if (regs_[u.rd] == 0) {
          next += u.imm;
        }
        break;
      case Opcode::kJnz:
        if (regs_[u.rd] != 0) {
          next += u.imm;
        }
        break;
      case Opcode::kJlt:
        if (regs_[u.rd] < regs_[u.rs]) {
          next += u.imm;
        }
        break;
      case Opcode::kCall: {
        regs_[kRegSp] -= 8;
        IMK_RETURN_IF_ERROR(TlbStore64(regs_[kRegSp], next));
        next = u.imm;
        break;
      }
      case Opcode::kCallR: {
        const uint64_t target = regs_[u.rd];
        regs_[kRegSp] -= 8;
        IMK_RETURN_IF_ERROR(TlbStore64(regs_[kRegSp], next));
        next = target;
        break;
      }
      case Opcode::kRet: {
        IMK_ASSIGN_OR_RETURN(next, TlbLoad64(regs_[kRegSp]));
        regs_[kRegSp] += 8;
        break;
      }
      case Opcode::kPush: {
        regs_[kRegSp] -= 8;
        IMK_RETURN_IF_ERROR(TlbStore64(regs_[kRegSp], regs_[u.rd]));
        break;
      }
      case Opcode::kPop: {
        IMK_ASSIGN_OR_RETURN(regs_[u.rd], TlbLoad64(regs_[kRegSp]));
        regs_[kRegSp] += 8;
        break;
      }
      case Opcode::kOut: {
        if (!port_handler_) {
          return GuestFaultError("OUT with no port handler, pc=" + HexString(upc));
        }
        IMK_RETURN_IF_ERROR(
            port_handler_(static_cast<uint16_t>(u.imm), true, regs_[u.rs]).status());
        // The handler may have written guest memory (setup tables, the lazy
        // kallsyms hook): cached translations are suspect.
        FlushTlbs();
        break;
      }
      case Opcode::kIn: {
        if (!port_handler_) {
          return GuestFaultError("IN with no port handler, pc=" + HexString(upc));
        }
        IMK_ASSIGN_OR_RETURN(uint64_t value,
                             port_handler_(static_cast<uint16_t>(u.imm), false, 0));
        regs_[u.rd] = value;
        FlushTlbs();
        break;
      }
      case Opcode::kRdPc:
        regs_[u.rd] = upc;
        break;
    }
  }
  *pc = next;
  return false;
}

Result<RunResult> Interpreter::RunBlocks(uint64_t pc, uint64_t max_instructions) {
  if (block_cache_ == nullptr) {
    block_cache_ = std::make_unique<BlockCache>(*store_);
  }
  block_cache_->set_shared(shared_block_cache_);
  // Anything may have written guest memory since the last Run (loader,
  // snapshot restore, the monitor): start with cold TLBs. Decoded blocks
  // survive across runs — the frame versions vouch for them.
  FlushTlbs();

  RunResult result;
  ExecStats& stats = result.stats;
  const BlockCacheCounters before = block_cache_->counters();
  // Whole-table decode sharing: adopt the layout's published table (or start
  // logging to publish one at halt). Self-guarded to run once per VM; after
  // the counter snapshot so adopted blocks land in this run's shared stats.
  block_cache_->AdoptTable(layout_key_);
  // Every successful exit folds this run's slice of the block-cache
  // counters into the stats (errors discard stats entirely, as ever).
  const auto finish = [&](StopReason reason) -> RunResult {
    const BlockCacheCounters& after = block_cache_->counters();
    stats.block_cache_hits = after.hits - before.hits;
    stats.block_cache_misses = after.misses - before.misses;
    stats.block_cache_invalidations = after.invalidations - before.invalidations;
    stats.blocks_shared = after.shared_grabs - before.shared_grabs;
    stats.blocks_private = after.private_decodes - before.private_decodes;
    if (reason == StopReason::kHalt) {
      // A halted guest completed its run: the block log now covers the
      // layout's dynamic block set, so it is worth publishing.
      block_cache_->PublishTable();
    }
    return Finish(result, reason);
  };

  while (stats.instructions < max_instructions) {
    // Same watchdog cadence as the switch loop: a poll before the
    // instruction whose ordinal is a multiple of 64 Ki. Blocks that would
    // run past the next poll point are truncated to it below.
    if ((stats.instructions & 0xffffu) == 0 && deadline_ != nullptr && deadline_->expired()) {
      return finish(StopReason::kDeadline);
    }
    // Hot path: the cache is keyed by virtual pc, so a hit needs no address
    // translation at all. Only a miss pays TranslateFetch. No TLB
    // maintenance on install either: the write TLB's hit path re-checks the
    // target frame's code flag (BumpVersionIfCode) on every store, so a
    // block installed after a write-TLB fill is still invalidated by the
    // next store into its frame.
    const DecodedBlock* block = block_cache_->Find(pc);
    if (block == nullptr) {
      IMK_ASSIGN_OR_RETURN(FetchSpan span, TranslateFetch(pc));
      block = block_cache_->LookupSlow(pc, span.phys, span.avail);
    }

    if (block->uops.empty()) {
      // The first instruction did not fit the fetch window (map seam).
      // Single-step it through the exact legacy fetch path, faults and all.
      IMK_ASSIGN_OR_RETURN(uint64_t opcode_phys, Translate(pc, 1));
      IMK_ASSIGN_OR_RETURN(uint8_t opcode, Load8(opcode_phys));
      const uint32_t length = InstructionLength(opcode);
      if (length == 0) {
        return GuestFaultError("invalid opcode at pc=" + HexString(pc));
      }
      IMK_ASSIGN_OR_RETURN(uint64_t insn_phys, Translate(pc, length));
      IMK_ASSIGN_OR_RETURN(const uint8_t* insn, store_->ReadPtr(insn_phys, length, insn_buf_));
      DecodedBlock single;
      single.uops.push_back(DecodeOne(insn, opcode, length, 0));
      IMK_ASSIGN_OR_RETURN(bool halted, RunUops(single, pc, 1, stats, &pc));
      if (halted) {
        return finish(StopReason::kHalt);
      }
      continue;
    }

    // Dispatch as much of the block as the instruction cap and the watchdog
    // cadence allow. Truncation is safe: control-flow uops are always last,
    // so a prefix always falls through to a decodable continuation.
    uint64_t n = block->uops.size();
    n = std::min(n, max_instructions - stats.instructions);
    n = std::min(n, uint64_t{0x10000} - (stats.instructions & 0xffffu));
    IMK_ASSIGN_OR_RETURN(bool halted, RunUops(*block, pc, n, stats, &pc));
    if (halted) {
      return finish(StopReason::kHalt);
    }
  }
  return finish(StopReason::kInstructionCap);
}

}  // namespace imk
