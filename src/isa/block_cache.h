// Decoded-block caches for the predecoded execution engine (src/isa/uop.h).
//
// Two tiers, mirroring the frame-sharing story of the CoW guest memory
// (DESIGN.md §9): boot-storm VMs zero-copy-map the same pristine template
// frames, so the expensive part of interpretation — decoding a basic block
// into uops — is just as shareable as the bytes themselves.
//
//   - SharedBlockCache: process-wide (one per storm), keyed by the identity
//     of the immutable template bytes a shared frame aliases plus the
//     in-frame byte offset. The first VM to execute a block decodes it; every
//     later VM grabs the finished decode. Guarded by a rank-ordered mutex
//     (race::LockRank::kBlockCache) because storm workers hit it
//     concurrently. Blocks over template bytes are never invalidated (the
//     bytes are immutable), and each entry pins the template's owning
//     shared_ptr (FrameStore::SharedOwner), so a backing template can never
//     be freed and its addresses reused while blocks keyed by them are
//     resident — the pointer key stays collision-free without any per-grab
//     source re-hash.
//
//   - BlockCache: per-VM front-end. A direct-mapped table from guest-virtual
//     block start to the block decoded there, validated on every dispatch
//     against the FrameStore's frame-version counters (bumped by any write
//     into a code-flagged frame: relocation fixups, the lazy kallsyms hook,
//     self-modifying guest code). Keying by virtual address lets a dispatch
//     hit skip address translation entirely — the binding is sound because
//     the interpreter's linear maps are fixed while it runs. Blocks over
//     dirty or zero frames are private to the VM; blocks over shared frames
//     go through the shared tier.
//
// Grab-time integrity: a block taken from the shared tier is accepted only
// if the uop array still digests to uop_digest (corruption; the
// interp.blockcache:corrupt fault point drills exactly this comparison). A
// failure falls back to a fresh slow-path decode — the cache can degrade
// throughput, never correctness.
#ifndef IMKASLR_SRC_ISA_BLOCK_CACHE_H_
#define IMKASLR_SRC_ISA_BLOCK_CACHE_H_

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/frame_store.h"
#include "src/base/mem_accounting.h"
#include "src/isa/uop.h"
#include "src/race/annotations.h"
#include "src/race/mutex.h"

namespace imk {

// Cross-VM tier. Thread-safe; one instance is shared by every VM of a storm.
//
// Besides the per-block map it keeps whole decode *tables*: the first VM to
// boot a given layout (template identity + slide + shuffle) logs every
// shared-tier block it dispatched and publishes the log at halt; a later VM
// booting the identical layout adopts the entire table up front and skips
// the per-block grab (mutex + hash probe) for all of it. This is the decode
// analogue of the ahead-of-time layout pool: once the layout is fixed, the
// whole vaddr -> decoded-block relation is fleet-wide state.
class SharedBlockCache : public Reclaimable {
 public:
  struct Stats {
    uint64_t hits = 0;            // grabs that found a decoded block
    uint64_t misses = 0;          // grabs that found nothing
    uint64_t stale_replaced = 0;  // entries replaced after a grab-time digest mismatch
    uint64_t blocks = 0;          // distinct blocks resident
    uint64_t tables = 0;          // layout tables resident
    uint64_t table_grabs = 0;     // whole-table adoptions served
    uint64_t retired_blocks = 0;  // blocks dropped by memory reclamation
    uint64_t retired_tables = 0;  // published tables dropped by memory reclamation
  };

  // One adoptable binding: the block the donor VM dispatched at `vaddr`,
  // decoded from the template bytes `src` that guest frame `frame` aliased.
  // An adopter honors the entry only if its own `frame` still aliases the
  // same `src` (the template-identity guard) and the uops digest clean.
  struct TableEntry {
    uint64_t vaddr = 0;
    uint32_t frame = 0;
    const uint8_t* src = nullptr;
    std::shared_ptr<const DecodedBlock> block;
  };
  struct Table {
    std::vector<TableEntry> entries;
    // Open-addressing vaddr -> entry index, built once at publish time so
    // every adopter resolves a miss with one mutex-free probe sequence.
    std::vector<uint32_t> index;
    uint32_t index_mask = 0;
    // Pins every template the entries' `src` pointers point into, so the
    // identity compare above can never match recycled memory.
    std::vector<std::shared_ptr<const void>> owners;

    const TableEntry* Find(uint64_t vaddr) const {
      if (entries.empty()) {
        return nullptr;
      }
      uint32_t i = static_cast<uint32_t>((vaddr * 0x9e3779b97f4a7c15ull) >> 32) & index_mask;
      while (true) {
        const uint32_t e = index[i];
        if (e == kEmptyIndex) {
          return nullptr;
        }
        if (entries[e].vaddr == vaddr) {
          return &entries[e];
        }
        i = (i + 1) & index_mask;
      }
    }

    static constexpr uint32_t kEmptyIndex = 0xffffffffu;
  };

  // The published table for `layout_key`, or nullptr. The key must capture
  // everything that fixes the guest layout (template identity, slides,
  // shuffle permutation): two VMs with equal keys translate every vaddr to
  // identical template bytes by construction.
  std::shared_ptr<const Table> GrabTable(uint64_t layout_key);

  // Publishes a finished VM's block log for `layout_key`. First-wins: a
  // table already resident for the key stays (the racing logs are
  // equivalent).
  void PublishTable(uint64_t layout_key, Table table);

  // `src_frame` is the immutable template frame the guest frame aliases
  // (FrameStore::SharedSource); `offset` the block start within it. The two
  // uniquely identify the encoded bytes across every VM of the fleet.
  std::shared_ptr<const DecodedBlock> Grab(const uint8_t* src_frame, uint32_t offset);

  // Publishes `block` for (src_frame, offset). First-wins: if another VM
  // already installed one, that one is returned instead (the racing decodes
  // are byte-identical). `owner` is the shared_ptr pinning the template
  // bytes behind `src_frame` (kept alive with the entry so the key can
  // never alias a recycled allocation). `replace` forces the new block in —
  // used after a grab-time digest mismatch proved the resident entry bad.
  std::shared_ptr<const DecodedBlock> Install(const uint8_t* src_frame, uint32_t offset,
                                              std::shared_ptr<const DecodedBlock> block,
                                              std::shared_ptr<const void> owner, bool replace);

  Stats stats() const;

  // Fleet memory governance (decode-tables category). Installed blocks and
  // published tables are charged as they land; ReclaimMemory — the middle
  // governor ladder tier — retires tables first (pure accelerators: the next
  // same-layout boot just logs and republishes), then blocks (the next
  // executor re-decodes). Blocks a running VM still pins stay alive through
  // their shared_ptrs; what this drops is the cache's own reference.
  ~SharedBlockCache() override;
  void set_accountant(std::shared_ptr<ByteAccountant> accountant);
  uint64_t ReclaimMemory(uint64_t want_bytes) override;
  const char* reclaim_name() const override { return "block-cache"; }

 private:
  static uint64_t Key(const uint8_t* src_frame, uint32_t offset) {
    // Frame sources within one template are >= 4096 bytes apart and offsets
    // are < 4096, so pointer + offset is collision-free.
    return reinterpret_cast<uint64_t>(src_frame) + offset;
  }

  struct Entry {
    std::shared_ptr<const DecodedBlock> block;
    std::shared_ptr<const void> owner;  // pins the template behind the key
  };

  mutable race::Mutex mutex_{race::LockRank::kBlockCache};
  std::unordered_map<uint64_t, Entry> blocks_ IMK_GUARDED_BY(kBlockCache);
  std::unordered_map<uint64_t, std::shared_ptr<const Table>> tables_ IMK_GUARDED_BY(kBlockCache);
  uint64_t hits_ IMK_GUARDED_BY(kBlockCache) = 0;
  uint64_t misses_ IMK_GUARDED_BY(kBlockCache) = 0;
  uint64_t stale_replaced_ IMK_GUARDED_BY(kBlockCache) = 0;
  uint64_t table_grabs_ IMK_GUARDED_BY(kBlockCache) = 0;
  uint64_t retired_blocks_ IMK_GUARDED_BY(kBlockCache) = 0;
  uint64_t retired_tables_ IMK_GUARDED_BY(kBlockCache) = 0;
  uint64_t accounted_bytes_ IMK_GUARDED_BY(kBlockCache) = 0;
  std::shared_ptr<ByteAccountant> accountant_ IMK_GUARDED_BY(kBlockCache);
};

// Per-dispatch counters the engine folds into ExecStats.
struct BlockCacheCounters {
  uint64_t hits = 0;           // dispatches served by the per-VM table
  uint64_t misses = 0;         // dispatches that had to grab or decode
  uint64_t invalidations = 0;  // cached blocks retired (version bump or digest fallback)
  uint64_t shared_grabs = 0;   // blocks obtained from / published to the shared tier
  uint64_t private_decodes = 0;  // blocks decoded privately (dirty/zero/straddling)
};

// Per-VM tier. Single-threaded, like the vCPU that owns it.
class BlockCache {
 public:
  static constexpr uint32_t kMaxBlockUops = 128;

  explicit BlockCache(FrameStore& store)
      : store_(&store),
        slots_(static_cast<Slot*>(std::calloc(kSlotCount, sizeof(Slot)))) {}
  ~BlockCache() { std::free(slots_); }
  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  void set_shared(SharedBlockCache* shared) { shared_ = shared; }

  // Hit fast path, inlined into the dispatch loop: the block cached for
  // guest-virtual `vaddr`, still valid against the frame versions, or null
  // (miss / retired — the caller translates and calls LookupSlow). This is
  // what makes vaddr keying pay: a hit costs one hash, one slot probe and
  // two version loads, with no address translation at all.
  const DecodedBlock* Find(uint64_t vaddr) {
    const Slot& slot = slots_[SlotIndex(vaddr)];
    if (slot.block != nullptr && slot.vaddr == vaddr &&
        store_->FrameVersion(slot.frame0) == slot.v0 &&
        (slot.frame1 == slot.frame0 || store_->FrameVersion(slot.frame1) == slot.v1)) {
      ++counters_.hits;
      return slot.block;
    }
    return nullptr;
  }

  // Miss path: decodes (or grabs from the shared tier) the block starting at
  // guest-physical `phys` — the caller's translation of `vaddr` — and binds
  // it to `vaddr` (`avail` bounds the fetch window as in DecodeBlock). Never
  // null. A block with zero uops means the first instruction did not fit the
  // window: the caller must single-step it. Installing a block marks its
  // frames code-bearing (MarkCodeFrame) before returning; the engine's write
  // TLB re-checks that flag on every hit, so no TLB flush is needed when an
  // install happens.
  const DecodedBlock* LookupSlow(uint64_t vaddr, uint64_t phys, uint64_t avail);

  // Drops every vaddr -> block binding. The vaddr -> phys mapping a slot
  // captures is stable only while the interpreter's linear maps are fixed;
  // the interpreter calls this if a map is ever re-pointed.
  void InvalidateBindings() {
    std::free(slots_);
    slots_ = static_cast<Slot*>(std::calloc(kSlotCount, sizeof(Slot)));
  }

  // Whole-table adoption (see SharedBlockCache::Table). Called once before
  // the first dispatch, with `layout_key` identifying this VM's exact guest
  // layout. If the shared tier holds a table for the key, this VM binds it:
  // from then on every per-VM miss resolves against the table's mutex-free
  // index before falling back to the per-block grab path, and an entry is
  // honored only if it survives the guards — the frame still aliases the
  // donor's template bytes and the uops digest clean (adoption is lazy, so
  // each VM digests exactly the blocks it actually dispatches, the same
  // once-per-acquisition integrity rule as a grab). If no table exists yet,
  // this VM starts logging its own shareable blocks for PublishTable().
  // No-op when layout_key is 0 or no shared tier is attached.
  void AdoptTable(uint64_t layout_key);

  // Publishes the log started by AdoptTable (if any) to the shared tier.
  // The interpreter calls this when the guest halts — a completed run, so
  // the log covers the layout's dynamic block set.
  void PublishTable();

  const BlockCacheCounters& counters() const { return counters_; }

 private:
  // POD on purpose: the table is one calloc'd allocation whose all-zero
  // state means "every slot empty" (block == nullptr), so untouched slots
  // cost address space, not resident memory or construction time — the
  // same lazily-backed trick as the FrameStore arena. Ownership of the
  // decoded blocks lives in `pins_`; slots hold raw pointers.
  // 32 bytes — two slots per cache line. Frame indices are 32-bit on
  // purpose: a frame index is phys >> 12, so 32 bits covers 16 TiB of guest
  // RAM, far beyond any FrameStore here.
  struct Slot {
    uint64_t vaddr;   // guest-virtual block start (valid only when block != nullptr)
    uint32_t frame0;  // frames whose versions validate the block
    uint32_t frame1;  // == frame0 unless the last insn straddles
    uint32_t v0;
    uint32_t v1;
    const DecodedBlock* block;  // null = empty
  };
  static_assert(sizeof(Slot) == 32, "Slot packing regressed");
  // 64 Ki direct-mapped slots. A scaled kernel image yields tens of
  // thousands of distinct run-once init blocks; a smaller table thrashes on
  // conflict evictions and pays the shared-tier grab (mutex + hash probe +
  // digest) over and over for the same block.
  static constexpr uint32_t kSlotBits = 16;
  static constexpr size_t kSlotCount = 1ull << kSlotBits;

  static size_t SlotIndex(uint64_t vaddr) {
    return static_cast<size_t>((vaddr * 0x9e3779b97f4a7c15ull) >> (64 - kSlotBits));
  }

  FrameStore* store_;
  SharedBlockCache* shared_ = nullptr;
  Slot* slots_;
  BlockCacheCounters counters_;
  // Table adoption / publication state (AdoptTable, PublishTable).
  bool adopt_done_ = false;
  bool log_enabled_ = false;
  uint64_t publish_key_ = 0;
  std::vector<SharedBlockCache::TableEntry> publish_log_;
  std::vector<std::shared_ptr<const void>> log_owners_;
  std::shared_ptr<const SharedBlockCache::Table> adopted_;  // pins adopted blocks
  // Keeps every block ever installed into a slot alive for the VM's
  // lifetime (slots store raw pointers, and an evicted or invalidated
  // block may still be executing in the dispatch loop). Grows with the
  // miss count, which a boot bounds at roughly its distinct-block count.
  std::vector<std::shared_ptr<const DecodedBlock>> pins_;
  // Scratch for the uncacheable empty-block answer (first instruction
  // straddles the fetch window); kept alive until the next Lookup.
  std::shared_ptr<const DecodedBlock> empty_block_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_ISA_BLOCK_CACHE_H_
