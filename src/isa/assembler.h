// VK64 assembler: emits machine code, records relocation sites for the
// three address-immediate classes, and supports local labels for branches.
#ifndef IMKASLR_SRC_ISA_ASSEMBLER_H_
#define IMKASLR_SRC_ISA_ASSEMBLER_H_

#include <cstdint>
#include <vector>

#include "src/base/bytes.h"
#include "src/isa/isa.h"

namespace imk {

// The three Linux relocation classes (see paper §3.2).
enum class RelocClass : uint8_t {
  kAbs64 = 0,      // 64-bit absolute virtual address: add offset
  kAbs32 = 1,      // 32-bit absolute virtual address: add offset
  kInverse32 = 2,  // 32-bit inverse (C - vaddr): subtract offset
};

// A relocatable field: `offset` bytes into the assembled blob.
struct RelocSite {
  RelocClass reloc_class;
  uint64_t offset;
};

// Emits VK64 code at an assumed base virtual address. Address-carrying
// instructions take link-time virtual addresses and record reloc sites.
class Assembler {
 public:
  explicit Assembler(uint64_t base_vaddr) : base_vaddr_(base_vaddr) {}

  // --- plain instructions ---
  void Nop() { Op(Opcode::kNop); }
  void Halt() { Op(Opcode::kHalt); }
  void Ret() { Op(Opcode::kRet); }
  void LoadI(uint8_t rd, uint64_t imm) {
    Op(Opcode::kLoadI);
    code_.WriteU8(rd);
    code_.WriteU64(imm);
  }
  void Mov(uint8_t rd, uint8_t rs) { RegReg(Opcode::kMov, rd, rs); }
  void Add(uint8_t rd, uint8_t rs) { RegReg(Opcode::kAdd, rd, rs); }
  void Sub(uint8_t rd, uint8_t rs) { RegReg(Opcode::kSub, rd, rs); }
  void Xor(uint8_t rd, uint8_t rs) { RegReg(Opcode::kXor, rd, rs); }
  void Mul(uint8_t rd, uint8_t rs) { RegReg(Opcode::kMul, rd, rs); }
  void ShrI(uint8_t rd, uint8_t shift) {
    Op(Opcode::kShrI);
    code_.WriteU8(rd);
    code_.WriteU8(shift);
  }
  void ShlI(uint8_t rd, uint8_t shift) {
    Op(Opcode::kShlI);
    code_.WriteU8(rd);
    code_.WriteU8(shift);
  }
  void AndI(uint8_t rd, uint32_t imm) {
    Op(Opcode::kAndI);
    code_.WriteU8(rd);
    code_.WriteU32(imm);
  }
  void AddI(uint8_t rd, int32_t imm) {
    Op(Opcode::kAddI);
    code_.WriteU8(rd);
    code_.WriteU32(static_cast<uint32_t>(imm));
  }
  void Ld64(uint8_t rd, uint8_t rs, int32_t disp) { Mem(Opcode::kLd64, rd, rs, disp); }
  void St64(uint8_t rd_base, uint8_t rs_value, int32_t disp) {
    Mem(Opcode::kSt64, rd_base, rs_value, disp);
  }
  void Ld8(uint8_t rd, uint8_t rs, int32_t disp) { Mem(Opcode::kLd8, rd, rs, disp); }
  void St8(uint8_t rd_base, uint8_t rs_value, int32_t disp) {
    Mem(Opcode::kSt8, rd_base, rs_value, disp);
  }
  void Probe(uint8_t rd, uint8_t rs, int32_t disp) { Mem(Opcode::kProbe, rd, rs, disp); }
  void Push(uint8_t rs) {
    Op(Opcode::kPush);
    code_.WriteU8(rs);
  }
  void Pop(uint8_t rd) {
    Op(Opcode::kPop);
    code_.WriteU8(rd);
  }
  void CallR(uint8_t rs) {
    Op(Opcode::kCallR);
    code_.WriteU8(rs);
  }
  void RdPc(uint8_t rd) {
    Op(Opcode::kRdPc);
    code_.WriteU8(rd);
  }
  void Out(uint16_t port, uint8_t rs) {
    Op(Opcode::kOut);
    code_.WriteU16(port);
    code_.WriteU8(rs);
  }
  void In(uint8_t rd, uint16_t port) {
    Op(Opcode::kIn);
    code_.WriteU16(port);
    code_.WriteU8(rd);
  }

  // --- address-carrying instructions (record reloc sites) ---
  void LoadA64(uint8_t rd, uint64_t vaddr) {
    Op(Opcode::kLoadA64);
    code_.WriteU8(rd);
    relocs_.push_back(RelocSite{RelocClass::kAbs64, code_.size()});
    code_.WriteU64(vaddr);
  }
  void LoadA32(uint8_t rd, uint64_t vaddr) {
    Op(Opcode::kLoadA32);
    code_.WriteU8(rd);
    relocs_.push_back(RelocSite{RelocClass::kAbs32, code_.size()});
    code_.WriteU32(static_cast<uint32_t>(vaddr));
  }
  // `value` must be of the form (constant - vaddr) truncated to 32 bits.
  void LoadNeg32(uint8_t rd, uint32_t value) {
    Op(Opcode::kLoadNeg32);
    code_.WriteU8(rd);
    relocs_.push_back(RelocSite{RelocClass::kInverse32, code_.size()});
    code_.WriteU32(value);
  }
  void Call(uint64_t target_vaddr) {
    Op(Opcode::kCall);
    relocs_.push_back(RelocSite{RelocClass::kAbs64, code_.size()});
    code_.WriteU64(target_vaddr);
  }

  // --- labels and branches (PC-relative; no relocation) ---
  using Label = size_t;

  Label NewLabel() {
    labels_.push_back(LabelState{});
    return labels_.size() - 1;
  }
  void Bind(Label label);
  void Jmp(Label label) {
    Op(Opcode::kJmp);
    EmitBranchTarget(label);
  }
  void Jz(uint8_t rs, Label label) {
    Op(Opcode::kJz);
    code_.WriteU8(rs);
    EmitBranchTarget(label);
  }
  void Jnz(uint8_t rs, Label label) {
    Op(Opcode::kJnz);
    code_.WriteU8(rs);
    EmitBranchTarget(label);
  }
  void Jlt(uint8_t ra, uint8_t rb, Label label) {
    Op(Opcode::kJlt);
    code_.WriteU8(ra);
    code_.WriteU8(rb);
    EmitBranchTarget(label);
  }

  // --- results ---
  uint64_t base_vaddr() const { return base_vaddr_; }
  uint64_t current_vaddr() const { return base_vaddr_ + code_.size(); }
  size_t size() const { return code_.size(); }
  const Bytes& code() const { return code_.bytes(); }
  const std::vector<RelocSite>& relocs() const { return relocs_; }

  // Finalizes (all labels must be bound) and returns the code.
  Bytes TakeCode();

 private:
  struct LabelState {
    bool bound = false;
    uint64_t position = 0;            // code offset of the label
    std::vector<uint64_t> fixups;     // offsets of rel32 fields to patch
  };

  void Op(Opcode opcode) { code_.WriteU8(static_cast<uint8_t>(opcode)); }
  void RegReg(Opcode opcode, uint8_t rd, uint8_t rs) {
    Op(opcode);
    code_.WriteU8(rd);
    code_.WriteU8(rs);
  }
  void Mem(Opcode opcode, uint8_t r1, uint8_t r2, int32_t disp) {
    Op(opcode);
    code_.WriteU8(r1);
    code_.WriteU8(r2);
    code_.WriteU32(static_cast<uint32_t>(disp));
  }
  void EmitBranchTarget(Label label);

  uint64_t base_vaddr_;
  ByteWriter code_;
  std::vector<RelocSite> relocs_;
  std::vector<LabelState> labels_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_ISA_ASSEMBLER_H_
