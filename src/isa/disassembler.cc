#include "src/isa/disassembler.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/isa/isa.h"

namespace imk {
namespace {

std::string Format(const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

int64_t SignExtend32(uint32_t v) { return static_cast<int64_t>(static_cast<int32_t>(v)); }

}  // namespace

Result<DecodedInsn> DisassembleOne(ByteSpan code, uint64_t vaddr) {
  if (code.empty()) {
    return OutOfRangeError("empty code span");
  }
  const uint8_t opcode = code[0];
  const uint32_t length = InstructionLength(opcode);
  if (length == 0) {
    return ParseError(Format("invalid opcode 0x%02x at 0x%" PRIx64, opcode, vaddr));
  }
  if (length > code.size()) {
    return OutOfRangeError("truncated instruction");
  }
  const uint8_t* p = code.data();

  DecodedInsn insn;
  insn.vaddr = vaddr;
  insn.length = length;
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kNop:
      insn.text = "nop";
      break;
    case Opcode::kHalt:
      insn.text = "halt";
      break;
    case Opcode::kRet:
      insn.text = "ret";
      break;
    case Opcode::kLoadI:
      insn.text = Format("loadi r%u, 0x%" PRIx64, p[1] & 0xf, LoadLe64(p + 2));
      break;
    case Opcode::kLoadA64:
      insn.text = Format("loada64 r%u, 0x%" PRIx64, p[1] & 0xf, LoadLe64(p + 2));
      break;
    case Opcode::kLoadA32:
      insn.text = Format("loada32 r%u, 0x%" PRIx64, p[1] & 0xf,
                         static_cast<uint64_t>(SignExtend32(LoadLe32(p + 2))));
      break;
    case Opcode::kLoadNeg32:
      insn.text = Format("loadneg32 r%u, 0x%x", p[1] & 0xf, LoadLe32(p + 2));
      break;
    case Opcode::kMov:
      insn.text = Format("mov r%u, r%u", p[1] & 0xf, p[2] & 0xf);
      break;
    case Opcode::kAdd:
      insn.text = Format("add r%u, r%u", p[1] & 0xf, p[2] & 0xf);
      break;
    case Opcode::kSub:
      insn.text = Format("sub r%u, r%u", p[1] & 0xf, p[2] & 0xf);
      break;
    case Opcode::kXor:
      insn.text = Format("xor r%u, r%u", p[1] & 0xf, p[2] & 0xf);
      break;
    case Opcode::kMul:
      insn.text = Format("mul r%u, r%u", p[1] & 0xf, p[2] & 0xf);
      break;
    case Opcode::kShrI:
      insn.text = Format("shri r%u, %u", p[1] & 0xf, p[2] & 63);
      break;
    case Opcode::kShlI:
      insn.text = Format("shli r%u, %u", p[1] & 0xf, p[2] & 63);
      break;
    case Opcode::kAndI:
      insn.text = Format("andi r%u, 0x%x", p[1] & 0xf, LoadLe32(p + 2));
      break;
    case Opcode::kAddI:
      insn.text = Format("addi r%u, %" PRId64, p[1] & 0xf, SignExtend32(LoadLe32(p + 2)));
      break;
    case Opcode::kLd64:
      insn.text = Format("ld64 r%u, [r%u%+" PRId64 "]", p[1] & 0xf, p[2] & 0xf,
                         SignExtend32(LoadLe32(p + 3)));
      break;
    case Opcode::kSt64:
      insn.text = Format("st64 [r%u%+" PRId64 "], r%u", p[1] & 0xf,
                         SignExtend32(LoadLe32(p + 3)), p[2] & 0xf);
      break;
    case Opcode::kLd8:
      insn.text = Format("ld8 r%u, [r%u%+" PRId64 "]", p[1] & 0xf, p[2] & 0xf,
                         SignExtend32(LoadLe32(p + 3)));
      break;
    case Opcode::kSt8:
      insn.text = Format("st8 [r%u%+" PRId64 "], r%u", p[1] & 0xf,
                         SignExtend32(LoadLe32(p + 3)), p[2] & 0xf);
      break;
    case Opcode::kProbe:
      insn.text = Format("probe r%u, [r%u%+" PRId64 "]", p[1] & 0xf, p[2] & 0xf,
                         SignExtend32(LoadLe32(p + 3)));
      break;
    case Opcode::kJmp:
      insn.text = Format("jmp 0x%" PRIx64,
                         vaddr + length + static_cast<uint64_t>(SignExtend32(LoadLe32(p + 1))));
      break;
    case Opcode::kJz:
      insn.text = Format("jz r%u, 0x%" PRIx64, p[1] & 0xf,
                         vaddr + length + static_cast<uint64_t>(SignExtend32(LoadLe32(p + 2))));
      break;
    case Opcode::kJnz:
      insn.text = Format("jnz r%u, 0x%" PRIx64, p[1] & 0xf,
                         vaddr + length + static_cast<uint64_t>(SignExtend32(LoadLe32(p + 2))));
      break;
    case Opcode::kJlt:
      insn.text = Format("jlt r%u, r%u, 0x%" PRIx64, p[1] & 0xf, p[2] & 0xf,
                         vaddr + length + static_cast<uint64_t>(SignExtend32(LoadLe32(p + 3))));
      break;
    case Opcode::kCall:
      insn.text = Format("call 0x%" PRIx64, LoadLe64(p + 1));
      break;
    case Opcode::kCallR:
      insn.text = Format("callr r%u", p[1] & 0xf);
      break;
    case Opcode::kPush:
      insn.text = Format("push r%u", p[1] & 0xf);
      break;
    case Opcode::kPop:
      insn.text = Format("pop r%u", p[1] & 0xf);
      break;
    case Opcode::kOut:
      insn.text = Format("out 0x%x, r%u", LoadLe16(p + 1), p[3] & 0xf);
      break;
    case Opcode::kIn:
      insn.text = Format("in r%u, 0x%x", p[3] & 0xf, LoadLe16(p + 1));
      break;
    case Opcode::kRdPc:
      insn.text = Format("rdpc r%u", p[1] & 0xf);
      break;
  }
  return insn;
}

Result<std::vector<DecodedInsn>> Disassemble(ByteSpan code, uint64_t vaddr) {
  std::vector<DecodedInsn> insns;
  size_t offset = 0;
  while (offset < code.size()) {
    IMK_ASSIGN_OR_RETURN(DecodedInsn insn,
                         DisassembleOne(code.subspan(offset), vaddr + offset));
    offset += insn.length;
    insns.push_back(std::move(insn));
  }
  return insns;
}

}  // namespace imk
