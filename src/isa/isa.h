// VK64: the synthetic 64-bit guest ISA.
//
// The ISA exists so that randomized kernels are *executed*, not just byte-
// diffed: instruction operands carry the same three classes of absolute
// address immediates that Linux relocations fix up (64-bit absolute, 32-bit
// sign-extended absolute, 32-bit inverse), so a missed or double-applied
// relocation makes the guest fault or compute a wrong checksum.
//
// Encoding: one opcode byte followed by operands. Registers are one byte
// (0..15). imm8/imm16/imm32/imm64 are little-endian. Branch targets are
// rel32, relative to the address of the *next* instruction (PC-relative code
// needs no relocation, exactly as on x86_64).
#ifndef IMKASLR_SRC_ISA_ISA_H_
#define IMKASLR_SRC_ISA_ISA_H_

#include <cstdint>

namespace imk {

enum class Opcode : uint8_t {
  kNop = 0x00,
  kHalt = 0x01,
  kLoadI = 0x02,     // rd, imm64: plain constant (never relocated)
  kLoadA64 = 0x03,   // rd, imm64: absolute virtual address (reloc: abs64)
  kLoadA32 = 0x04,   // rd, imm32: absolute vaddr, sign-extended (reloc: abs32)
  kLoadNeg32 = 0x05,  // rd, imm32: value of the form C - vaddr (reloc: inverse32)
  kMov = 0x06,       // rd, rs
  kAdd = 0x07,       // rd, rs
  kSub = 0x08,       // rd, rs
  kXor = 0x09,       // rd, rs
  kMul = 0x0a,       // rd, rs
  kShrI = 0x0b,      // rd, imm8
  kShlI = 0x0c,      // rd, imm8
  kAndI = 0x0d,      // rd, imm32 (zero-extended)
  kAddI = 0x0e,      // rd, imm32 (sign-extended)
  kLd64 = 0x0f,      // rd, [rs + imm32]
  kSt64 = 0x10,      // [rd + imm32], rs
  kLd8 = 0x11,       // rd, [rs + imm32]
  kSt8 = 0x12,       // [rd + imm32], rs
  kJmp = 0x13,       // rel32
  kJz = 0x14,        // rs, rel32
  kJnz = 0x15,       // rs, rel32
  kJlt = 0x16,       // ra, rb, rel32 (unsigned a < b)
  kCall = 0x17,      // imm64 absolute virtual target (reloc: abs64)
  kCallR = 0x18,     // rs (indirect)
  kRet = 0x19,
  kPush = 0x1a,      // rs
  kPop = 0x1b,       // rd
  kOut = 0x1c,       // imm16 port, rs
  kIn = 0x1d,        // rd, imm16 port
  kProbe = 0x1e,     // rd, [rs + imm32]: may fault; exception table consulted
  kRdPc = 0x1f,      // rd = address of this instruction
};

inline constexpr int kNumRegisters = 16;
// Register conventions used by generated code.
inline constexpr uint8_t kRegSp = 13;   // stack pointer
inline constexpr uint8_t kRegRet = 0;   // return value / first argument

// Port map (the guest<->monitor contract; see src/vmm/vcpu.h).
inline constexpr uint16_t kPortConsole = 0x3f8;       // write: one ASCII byte
inline constexpr uint16_t kPortTimestamp = 0x3f0;     // write: boot phase marker id
inline constexpr uint16_t kPortSetupTables = 0x3f1;   // write: vaddr of KernelTablesDescriptor
inline constexpr uint16_t kPortKallsymsTouch = 0x3f2;  // write: about to read kallsyms
inline constexpr uint16_t kPortInitDone = 0x3f4;      // write: init checksum; ends boot
inline constexpr uint16_t kPortTestValue = 0x3f5;     // write: values checked by tests

// Boot phase marker ids written to kPortTimestamp by the synthetic kernel.
inline constexpr uint64_t kMarkerKernelEntry = 1;
inline constexpr uint64_t kMarkerInitStart = 2;

// In-guest descriptor handed to the monitor via kPortSetupTables. All vaddr
// fields are virtual addresses (subject to relocation) or counts.
// Layout (little-endian u64s):
//   +0  runtime _text vaddr (base for the offset-relative tables below)
//   +8  ex_table vaddr      +16 ex_table count
//   +24 kallsyms vaddr      +32 kallsyms count
//   +40 orc table vaddr     +48 orc count
inline constexpr uint64_t kTablesDescriptorSize = 56;

// Exception table entry: { fault_insn_vaddr: u64, fixup_insn_vaddr: u64 },
// sorted ascending by fault_insn_vaddr (binary-searched on fault).
inline constexpr uint64_t kExTableEntrySize = 16;

// Kallsyms entry: { symbol_vaddr: u64, name_hash: u64 }, sorted by vaddr.
inline constexpr uint64_t kKallsymsEntrySize = 16;

// ORC entry: { insn_vaddr: u64, stack_words: u64 }, sorted by insn_vaddr.
inline constexpr uint64_t kOrcEntrySize = 16;

// Returns the byte length of the instruction starting with `opcode`, or 0 if
// the opcode is invalid.
uint32_t InstructionLength(uint8_t opcode);

}  // namespace imk

#endif  // IMKASLR_SRC_ISA_ISA_H_
