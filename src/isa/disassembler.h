// VK64 disassembler: renders machine code back to mnemonics. Used by tests
// (assembler round-trips), debugging, and the layout-inspection tooling in
// the examples.
#ifndef IMKASLR_SRC_ISA_DISASSEMBLER_H_
#define IMKASLR_SRC_ISA_DISASSEMBLER_H_

#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace imk {

// One decoded instruction.
struct DecodedInsn {
  uint64_t vaddr = 0;
  uint32_t length = 0;
  std::string text;  // e.g. "loada64 r3, 0xffffffff81000000"
};

// Decodes the instruction at the start of `code` (assumed to sit at `vaddr`).
Result<DecodedInsn> DisassembleOne(ByteSpan code, uint64_t vaddr);

// Decodes a whole range; stops at the first invalid opcode (reporting it as
// an error) or the end of the span.
Result<std::vector<DecodedInsn>> Disassemble(ByteSpan code, uint64_t vaddr);

}  // namespace imk

#endif  // IMKASLR_SRC_ISA_DISASSEMBLER_H_
