#include "src/isa/uop.h"

#include "src/base/bytes.h"
#include "src/base/crc32.h"

namespace imk {
namespace {

uint64_t SignExtend32(uint32_t v) {
  return static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(v)));
}

}  // namespace

bool EndsBlock(Opcode op) {
  switch (op) {
    case Opcode::kHalt:
    case Opcode::kJmp:
    case Opcode::kJz:
    case Opcode::kJnz:
    case Opcode::kJlt:
    case Opcode::kCall:
    case Opcode::kCallR:
    case Opcode::kRet:
    case Opcode::kOut:
    case Opcode::kIn:
    case Opcode::kProbe:
      return true;
    default:
      return false;
  }
}

Uop DecodeOne(const uint8_t* insn, uint8_t opcode, uint32_t length, uint32_t offset) {
  Uop u;
  u.op = opcode;
  u.len = static_cast<uint8_t>(length);
  u.offset = offset;
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kRet:
      break;
    case Opcode::kLoadI:
    case Opcode::kLoadA64:
      u.rd = insn[1] & 0xf;
      u.imm = LoadLe64(insn + 2);
      break;
    case Opcode::kLoadA32:
    case Opcode::kLoadNeg32:
      u.rd = insn[1] & 0xf;
      u.imm = SignExtend32(LoadLe32(insn + 2));
      break;
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kXor:
    case Opcode::kMul:
      u.rd = insn[1] & 0xf;
      u.rs = insn[2] & 0xf;
      break;
    case Opcode::kShrI:
    case Opcode::kShlI:
      u.rd = insn[1] & 0xf;
      u.imm = insn[2] & 63;
      break;
    case Opcode::kAndI:
      u.rd = insn[1] & 0xf;
      u.imm = LoadLe32(insn + 2);  // zero-extended, as the interpreter does
      break;
    case Opcode::kAddI:
      u.rd = insn[1] & 0xf;
      u.imm = SignExtend32(LoadLe32(insn + 2));
      break;
    case Opcode::kLd64:
    case Opcode::kLd8:
    case Opcode::kProbe:
      u.rd = insn[1] & 0xf;
      u.rs = insn[2] & 0xf;
      u.imm = SignExtend32(LoadLe32(insn + 3));
      break;
    case Opcode::kSt64:
    case Opcode::kSt8:
      u.rd = insn[1] & 0xf;  // base register
      u.rs = insn[2] & 0xf;  // stored register
      u.imm = SignExtend32(LoadLe32(insn + 3));
      break;
    case Opcode::kJmp:
      u.imm = SignExtend32(LoadLe32(insn + 1));
      break;
    case Opcode::kJz:
    case Opcode::kJnz:
      u.rd = insn[1] & 0xf;
      u.imm = SignExtend32(LoadLe32(insn + 2));
      break;
    case Opcode::kJlt:
      u.rd = insn[1] & 0xf;
      u.rs = insn[2] & 0xf;
      u.imm = SignExtend32(LoadLe32(insn + 3));
      break;
    case Opcode::kCall:
      u.imm = LoadLe64(insn + 1);
      break;
    case Opcode::kCallR:
    case Opcode::kPush:
    case Opcode::kPop:
    case Opcode::kRdPc:
      u.rd = insn[1] & 0xf;
      break;
    case Opcode::kOut:
      u.imm = LoadLe16(insn + 1);
      u.rs = insn[3] & 0xf;
      break;
    case Opcode::kIn:
      u.imm = LoadLe16(insn + 1);
      u.rd = insn[3] & 0xf;
      break;
  }
  return u;
}

uint64_t UopDigest(const UopArray& uops) {
  // Word-at-a-time FNV-1a variant: the digest is recomputed on every
  // shared-tier grab (the hot fleet path), so it folds one 64-bit word per
  // round instead of one byte. The shift folds the high product bits back
  // down so single-bit flips in any field still flip the final value.
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
    h ^= h >> 29;
  };
  const Uop* u = uops.data();
  for (size_t i = 0; i < uops.size(); ++i) {
    mix(static_cast<uint64_t>(u[i].op) | static_cast<uint64_t>(u[i].rd) << 8 |
        static_cast<uint64_t>(u[i].rs) << 16 | static_cast<uint64_t>(u[i].len) << 24 |
        static_cast<uint64_t>(u[i].offset) << 32);
    mix(u[i].imm);
  }
  return h;
}

DecodedBlock DecodeBlock(const FrameStore& store, uint64_t phys, uint64_t avail,
                         uint32_t max_uops) {
  DecodedBlock block;
  const uint64_t frame = phys >> 12;
  uint64_t cursor = 0;
  uint32_t crc = 0;
  uint8_t scratch[16];
  while (block.uops.size() < max_uops) {
    // Stop before an instruction that starts in the next frame: blocks are
    // invalidated per frame, so they never begin bytes in a second one.
    if (((phys + cursor) >> 12) != frame) {
      break;
    }
    if (cursor >= avail) {
      break;
    }
    auto opcode_ptr = store.ReadPtr(phys + cursor, 1, scratch);
    if (!opcode_ptr.ok()) {
      break;  // unreachable after the avail check; be safe
    }
    const uint8_t opcode = **opcode_ptr;
    const uint32_t length = InstructionLength(opcode);
    if (length == 0) {
      // Invalid opcode: record a faulting uop so execution reproduces the
      // interpreter's guest fault at exactly this pc.
      Uop u;
      u.op = kUopInvalid;
      u.offset = static_cast<uint32_t>(cursor);
      u.len = 1;
      block.uops.push_back(u);
      crc = Crc32Update(crc, ByteSpan(*opcode_ptr, 1));
      cursor += 1;
      break;
    }
    if (cursor + length > avail) {
      break;  // instruction straddles the fetch window; leave it to the slow path
    }
    auto insn_ptr = store.ReadPtr(phys + cursor, length, scratch);
    if (!insn_ptr.ok()) {
      break;
    }
    const uint8_t* insn = *insn_ptr;
    block.uops.push_back(DecodeOne(insn, opcode, length, static_cast<uint32_t>(cursor)));
    crc = Crc32Update(crc, ByteSpan(insn, length));
    cursor += length;
    if (((phys + cursor - 1) >> 12) != frame) {
      block.ends_in_frame = false;  // last instruction leaked into the next frame
      break;
    }
    if (EndsBlock(static_cast<Opcode>(opcode))) {
      break;
    }
  }
  block.byte_len = static_cast<uint32_t>(cursor);
  block.src_crc = crc;
  block.uop_digest = UopDigest(block.uops);
  return block;
}

}  // namespace imk
