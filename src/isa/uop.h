// Predecoded micro-ops: the block-cache execution engine's internal form.
//
// The switch-loop interpreter pays, per dynamic instruction, two Translate
// calls, an InstructionLength lookup, and a byte-by-byte operand decode. A
// Uop is that work done once: the opcode, the pre-masked register indices,
// and the immediate already sign-extended (or, for branches, the rel32
// displacement) in a fixed 16-byte record. A DecodedBlock is one guest basic
// block's worth of uops plus the metadata the caches need to validate and
// share it: the CRC of the encoded bytes it was decoded from (stale-alias
// guard for the cross-VM shared cache), a digest of the uop array itself
// (corruption guard, drilled by the interp.blockcache fault point), and
// whether the block stayed inside its starting 4 KiB frame (the
// shareability condition — see src/isa/block_cache.h).
//
// Uops are position-independent: branch displacements stay relative and
// every uop records its byte offset from the block start, so one decoded
// block executes correctly at any virtual address whose bytes match —
// which is exactly what lets VMs with different KASLR slides share blocks
// decoded from the same template frame.
#ifndef IMKASLR_SRC_ISA_UOP_H_
#define IMKASLR_SRC_ISA_UOP_H_

#include <cstdint>
#include <vector>

#include "src/base/frame_store.h"
#include "src/isa/isa.h"

namespace imk {

// Sentinel op for an undecodable opcode byte: executing it reproduces the
// interpreter's "invalid opcode" guest fault at the same pc.
inline constexpr uint8_t kUopInvalid = 0xff;

struct Uop {
  uint8_t op = kUopInvalid;  // Opcode value, or kUopInvalid
  uint8_t rd = 0;            // pre-masked destination / base register index
  uint8_t rs = 0;            // pre-masked source register index
  uint8_t len = 1;           // encoded instruction length in bytes
  uint32_t offset = 0;       // byte offset of this instruction from block start
  // Pre-extracted immediate: sign-extended imm32 for addressing/branches,
  // raw imm64 for kLoadI/kLoadA64/kCall, shift count for kShrI/kShlI,
  // zero-extended imm32 for kAndI, port number for kIn/kOut.
  uint64_t imm = 0;
};
static_assert(sizeof(Uop) == 16, "Uop must stay a compact 16-byte record");

// Opcodes that terminate a basic block: control flow, port I/O (the handler
// may rewrite guest memory or tables), and probes (which may redirect pc
// through the exception table).
bool EndsBlock(Opcode op);

// Decodes the single instruction whose bytes start at `insn` (valid for
// `length` bytes, as returned by InstructionLength). `offset` is the byte
// offset recorded in the uop.
Uop DecodeOne(const uint8_t* insn, uint8_t opcode, uint32_t length, uint32_t offset);

// Uop storage with inline capacity for the common case. Dynamic blocks
// average 2-3 uops (spin loops, call sites), so keeping small arrays inside
// DecodedBlock itself saves the heap allocation at decode time and — the
// hot-path point — lets a dispatch read its uops from the same cache lines
// as the block header instead of chasing a vector's data pointer. Larger
// blocks move wholly into the spill vector, so data() is always contiguous
// and the execution loop never branches per uop.
class UopArray {
 public:
  static constexpr uint32_t kInline = 4;

  void push_back(const Uop& u) {
    if (spill_.empty() && size_ < kInline) {
      inline_[size_++] = u;
      return;
    }
    if (spill_.empty()) {
      spill_.assign(inline_, inline_ + size_);
    }
    spill_.push_back(u);
    ++size_;
  }

  const Uop* data() const { return spill_.empty() ? inline_ : spill_.data(); }
  const Uop& operator[](size_t i) const { return data()[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  uint32_t size_ = 0;
  Uop inline_[kInline];
  std::vector<Uop> spill_;
};

struct DecodedBlock {
  UopArray uops;
  uint32_t byte_len = 0;   // encoded bytes the block covers
  uint32_t src_crc = 0;    // Crc32 of those encoded bytes
  uint64_t uop_digest = 0; // UopDigest over `uops` at build time
  // True when every encoded byte lies inside the 4 KiB frame the block
  // starts in: the precondition for cross-VM sharing (a straddling block
  // depends on a second frame whose state differs per VM).
  bool ends_in_frame = true;
};

// Order- and content-sensitive digest of the uop array (word-folding
// FNV-1a over every field; cheap enough to rerun on every shared-cache
// grab). Recomputed at shared-cache grab time and compared against
// uop_digest: a mismatch means the cached decode no longer matches what was
// built (memory corruption — or the interp.blockcache:corrupt drill), and
// the grabber falls back to a fresh slow-path decode.
uint64_t UopDigest(const UopArray& uops);

// Decodes one basic block from guest-physical `phys`. `avail` bounds the
// contiguously translatable bytes from `phys` (the fetch window: both the
// linear map's remaining span and RAM size); decoding stops before any
// instruction that would not fit. `max_uops` caps runaway straight-line
// blocks (nop sleds over zero frames). The block ends at the first
// block-terminating instruction, at an invalid opcode (recorded as a
// kUopInvalid uop), at the frame edge, or at the cap. Returns a block with
// zero uops iff the very first instruction does not fit in `avail`.
DecodedBlock DecodeBlock(const FrameStore& store, uint64_t phys, uint64_t avail,
                         uint32_t max_uops);

}  // namespace imk

#endif  // IMKASLR_SRC_ISA_UOP_H_
