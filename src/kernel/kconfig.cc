#include "src/kernel/kconfig.h"

namespace imk {

const char* KernelProfileName(KernelProfile profile) {
  switch (profile) {
    case KernelProfile::kLupine:
      return "lupine";
    case KernelProfile::kAws:
      return "aws";
    case KernelProfile::kUbuntu:
      return "ubuntu";
  }
  return "?";
}

const char* RandoModeName(RandoMode mode) {
  switch (mode) {
    case RandoMode::kNone:
      return "nokaslr";
    case RandoMode::kKaslr:
      return "kaslr";
    case RandoMode::kFgKaslr:
      return "fgkaslr";
  }
  return "?";
}

KernelConfig KernelConfig::Make(KernelProfile profile, RandoMode rando, double scale) {
  KernelConfig config;
  config.profile = profile;
  config.rando = rando;
  config.scale = scale;

  // Full-scale section budgets chosen so total vmlinux size tracks Table 1:
  // lupine 20M, aws 39M, ubuntu 45M (text ~55%, rodata ~25%, data ~15%,
  // bss extra). FGKASLR builds grow ~10% via per-function section overhead,
  // which falls out of the ELF metadata rather than these budgets.
  uint64_t text = 0;
  uint64_t rodata = 0;
  uint64_t data = 0;
  uint64_t bss = 0;
  switch (profile) {
    case KernelProfile::kLupine:
      text = 11ull << 20;
      rodata = 5ull << 20;
      data = 3ull << 20;
      bss = 2ull << 20;
      break;
    case KernelProfile::kAws:
      text = 21ull << 20;
      rodata = 10ull << 20;
      data = 6ull << 20;
      bss = 4ull << 20;
      break;
    case KernelProfile::kUbuntu:
      text = 25ull << 20;
      rodata = 12ull << 20;
      data = 7ull << 20;
      bss = 5ull << 20;
      break;
  }
  config.text_bytes = static_cast<uint64_t>(static_cast<double>(text) * scale);
  config.rodata_bytes = static_cast<uint64_t>(static_cast<double>(rodata) * scale);
  config.data_bytes = static_cast<uint64_t>(static_cast<double>(data) * scale);
  config.bss_bytes = static_cast<uint64_t>(static_cast<double>(bss) * scale);

  // Function count: average generated function is ~600 bytes (ALU filler
  // dominates), giving Linux-like function density per MB of text.
  config.num_functions = static_cast<uint32_t>(config.text_bytes / 600);
  if (config.num_functions < 16) {
    config.num_functions = 16;
  }
  config.num_indirect = config.num_functions / 16 + 4;
  return config;
}

std::string KernelConfig::Name() const {
  return std::string(KernelProfileName(profile)) + "-" + RandoModeName(rando);
}

}  // namespace imk
