#include "src/kernel/bzimage.h"

#include "src/base/crc32.h"
#include "src/base/rng.h"
#include "src/compress/registry.h"

namespace imk {
namespace {

constexpr uint64_t kMagic = 0x474d495a424b4d49ull;  // "IMKBZIMG"
constexpr uint32_t kVersion = 1;

// Real bootstrap loaders (arch/x86/boot + the compressed stub) are a few
// tens of KB of machine code; the blob is generated filler of that size so
// Table 1 image sizes and I/O costs are faithful.
constexpr size_t kLoaderBlobSize = 40 * 1024;

Bytes MakeLoaderBlob(LoaderKind kind) {
  Rng rng(0x10ade5 + static_cast<uint64_t>(kind));
  Bytes blob(kLoaderBlobSize);
  for (auto& b : blob) {
    b = static_cast<uint8_t>(rng.Next());
  }
  blob[0] = static_cast<uint8_t>(kind);
  return blob;
}

}  // namespace

size_t BzImage::TotalSize() const {
  // header (fixed 64 bytes) + loader + payload
  return 64 + loader.size() + compressed_payload.size();
}

Result<BzImage> BuildBzImage(ByteSpan vmlinux, const RelocInfo& relocs,
                             const std::string& codec_name, LoaderKind loader_kind) {
  IMK_ASSIGN_OR_RETURN(CodecPtr codec, MakeCodec(codec_name));

  // Payload: [u64 elf_size | elf | relocs blob] — relocation info is
  // appended to the kernel *before* compression, exactly as in Figure 2.
  ByteWriter payload;
  payload.WriteU64(vmlinux.size());
  payload.WriteBytes(vmlinux);
  if (!relocs.empty()) {
    Bytes reloc_blob = SerializeRelocs(relocs);
    payload.WriteBytes(ByteSpan(reloc_blob));
  }
  Bytes raw = payload.Take();

  BzImage image;
  image.codec = codec_name;
  image.loader_kind = loader_kind;
  image.loader = MakeLoaderBlob(loader_kind);
  image.payload_raw_size = raw.size();
  image.payload_crc32 = Crc32(ByteSpan(raw));
  IMK_ASSIGN_OR_RETURN(image.compressed_payload, codec->Compress(ByteSpan(raw)));
  return image;
}

Bytes SerializeBzImage(const BzImage& image) {
  ByteWriter out;
  out.WriteU64(kMagic);
  out.WriteU32(kVersion);
  out.WriteU8(static_cast<uint8_t>(image.loader_kind));
  // Codec name: fixed 11-byte field, NUL padded.
  char name[11] = {};
  for (size_t i = 0; i < image.codec.size() && i < sizeof(name) - 1; ++i) {
    name[i] = image.codec[i];
  }
  out.WriteBytes(ByteSpan(reinterpret_cast<const uint8_t*>(name), sizeof(name)));
  out.WriteU64(image.loader.size());
  out.WriteU64(image.compressed_payload.size());
  out.WriteU64(image.payload_raw_size);
  out.WriteU32(image.payload_crc32);
  out.WriteZeros(64 - out.size());  // pad header to 64 bytes
  out.WriteBytes(ByteSpan(image.loader));
  out.WriteBytes(ByteSpan(image.compressed_payload));
  return out.Take();
}

Result<BzImageInfo> ParseBzImageHeader(ByteSpan data) {
  ByteReader reader(data);
  IMK_ASSIGN_OR_RETURN(uint64_t magic, reader.ReadU64());
  if (magic != kMagic) {
    return ParseError("bzimage: bad magic");
  }
  IMK_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kVersion) {
    return ParseError("bzimage: unsupported version");
  }
  IMK_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
  if (kind > static_cast<uint8_t>(LoaderKind::kNoneOptimized)) {
    return ParseError("bzimage: bad loader kind");
  }
  IMK_ASSIGN_OR_RETURN(ByteSpan name_bytes, reader.ReadBytes(11));
  BzImageInfo info;
  info.loader_kind = static_cast<LoaderKind>(kind);
  const char* name = reinterpret_cast<const char*>(name_bytes.data());
  info.codec.assign(name, strnlen(name, 11));
  IMK_ASSIGN_OR_RETURN(info.loader_size, reader.ReadU64());
  IMK_ASSIGN_OR_RETURN(info.payload_size, reader.ReadU64());
  IMK_ASSIGN_OR_RETURN(info.payload_raw_size, reader.ReadU64());
  IMK_ASSIGN_OR_RETURN(info.payload_crc32, reader.ReadU32());
  if (info.TotalSize() > data.size()) {
    return ParseError("bzimage: header sizes exceed image");
  }
  return info;
}

Result<BzImage> ParseBzImage(ByteSpan data) {
  ByteReader reader(data);
  IMK_ASSIGN_OR_RETURN(uint64_t magic, reader.ReadU64());
  if (magic != kMagic) {
    return ParseError("bzimage: bad magic");
  }
  IMK_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kVersion) {
    return ParseError("bzimage: unsupported version");
  }
  IMK_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
  if (kind > static_cast<uint8_t>(LoaderKind::kNoneOptimized)) {
    return ParseError("bzimage: bad loader kind");
  }
  IMK_ASSIGN_OR_RETURN(ByteSpan name_bytes, reader.ReadBytes(11));
  IMK_ASSIGN_OR_RETURN(uint64_t loader_size, reader.ReadU64());
  IMK_ASSIGN_OR_RETURN(uint64_t payload_size, reader.ReadU64());
  IMK_ASSIGN_OR_RETURN(uint64_t raw_size, reader.ReadU64());
  IMK_ASSIGN_OR_RETURN(uint32_t crc, reader.ReadU32());
  IMK_RETURN_IF_ERROR(reader.Seek(64));
  IMK_ASSIGN_OR_RETURN(ByteSpan loader, reader.ReadBytes(loader_size));
  IMK_ASSIGN_OR_RETURN(ByteSpan payload, reader.ReadBytes(payload_size));

  BzImage image;
  image.loader_kind = static_cast<LoaderKind>(kind);
  const char* name = reinterpret_cast<const char*>(name_bytes.data());
  image.codec.assign(name, strnlen(name, 11));
  image.loader.assign(loader.begin(), loader.end());
  image.compressed_payload.assign(payload.begin(), payload.end());
  image.payload_raw_size = raw_size;
  image.payload_crc32 = crc;
  return image;
}

Result<BzPayload> DecompressPayload(const BzImage& image) {
  IMK_ASSIGN_OR_RETURN(CodecPtr codec, MakeCodec(image.codec));
  IMK_ASSIGN_OR_RETURN(
      Bytes raw, codec->Decompress(ByteSpan(image.compressed_payload), image.payload_raw_size));
  if (Crc32(ByteSpan(raw)) != image.payload_crc32) {
    return ParseError("bzimage: payload CRC mismatch");
  }
  ByteReader reader((ByteSpan(raw)));
  IMK_ASSIGN_OR_RETURN(uint64_t elf_size, reader.ReadU64());
  IMK_ASSIGN_OR_RETURN(ByteSpan elf, reader.ReadBytes(elf_size));

  BzPayload payload;
  payload.vmlinux.assign(elf.begin(), elf.end());
  if (reader.remaining() > 0) {
    IMK_ASSIGN_OR_RETURN(ByteSpan reloc_bytes, reader.ReadBytes(reader.remaining()));
    IMK_ASSIGN_OR_RETURN(payload.relocs, ParseRelocs(reloc_bytes));
  }
  return payload;
}

}  // namespace imk
