// bzImage container: the compressed kernel + bootstrap loader bundle
// (paper Figure 2).
//
// A real bzImage concatenates a small bootstrap loader program with a
// compressed blob holding the vmlinux image and — when CONFIG_RELOCATABLE —
// its relocation table. This module reproduces that structure: a fixed
// header, a loader blob (its *logic* runs in src/bootstrap; the blob itself
// is sized realistically so image-size experiments are faithful), and the
// compressed payload [vmlinux ++ relocs].
#ifndef IMKASLR_SRC_KERNEL_BZIMAGE_H_
#define IMKASLR_SRC_KERNEL_BZIMAGE_H_

#include <string>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/kernel/relocs.h"

namespace imk {

// Variants of the bootstrap loader baked into an image (paper §3.3).
enum class LoaderKind : uint8_t {
  kStandard = 0,       // copy + decompress + parse + (relocate)
  kNoneOptimized = 1,  // compression-none-optimized: no copy, no decompression
};

// Parsed / to-be-built bzImage.
struct BzImage {
  std::string codec;            // compression scheme name ("lz4", "none", ...)
  LoaderKind loader_kind = LoaderKind::kStandard;
  Bytes loader;                 // bootstrap loader blob
  Bytes compressed_payload;     // codec-compressed [u64 elf_size | elf | relocs]
  uint64_t payload_raw_size = 0;   // decompressed payload size
  uint32_t payload_crc32 = 0;      // CRC of the decompressed payload

  size_t TotalSize() const;
};

// Header-only view of an image (no payload copies): what a monitor reads
// before deciding where to place the image in guest memory.
struct BzImageInfo {
  std::string codec;
  LoaderKind loader_kind = LoaderKind::kStandard;
  uint64_t loader_size = 0;
  uint64_t payload_size = 0;      // compressed payload bytes
  uint64_t payload_raw_size = 0;  // decompressed payload bytes
  uint32_t payload_crc32 = 0;

  // Offset of the payload within the serialized image.
  uint64_t PayloadOffset() const { return 64 + loader_size; }
  uint64_t TotalSize() const { return 64 + loader_size + payload_size; }
};

// Parses just the 64-byte header.
Result<BzImageInfo> ParseBzImageHeader(ByteSpan data);

// Builds a bzImage from a kernel ELF and its relocation info (pass an empty
// RelocInfo for non-relocatable kernels). `codec_name` must be registered.
Result<BzImage> BuildBzImage(ByteSpan vmlinux, const RelocInfo& relocs,
                             const std::string& codec_name, LoaderKind loader_kind);

// Serializes to the on-disk format.
Bytes SerializeBzImage(const BzImage& image);

// Parses an on-disk image (validates header fields and bounds).
Result<BzImage> ParseBzImage(ByteSpan data);

// Decompresses and splits a payload back into (vmlinux, relocs). Verifies
// the CRC recorded in the image.
struct BzPayload {
  Bytes vmlinux;
  RelocInfo relocs;
};
Result<BzPayload> DecompressPayload(const BzImage& image);

}  // namespace imk

#endif  // IMKASLR_SRC_KERNEL_BZIMAGE_H_
