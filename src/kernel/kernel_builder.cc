#include "src/kernel/kernel_builder.h"

#include <algorithm>
#include <cstring>

#include "src/base/align.h"
#include "src/base/rng.h"
#include "src/elf/elf_note.h"
#include "src/elf/elf_types.h"
#include "src/elf/elf_writer.h"
#include "src/isa/assembler.h"
#include "src/isa/isa.h"
#include "src/kernel/layout.h"

namespace imk {
namespace {

// Physical scratch area used by syscall handlers' buffer loops (below the
// kernel's 16 MiB minimum load address, so always free).
constexpr uint64_t kScratchPhys = 8ull << 20;
constexpr uint64_t kFaultProbeAddr = 0x400;  // never mapped
constexpr uint64_t kFaultContribution = 0x1234;
constexpr uint64_t kSelftestMissValue = 0xdeadull;
constexpr uint32_t kNumSyscalls = 8;

// Deterministic per-entity values.
uint64_t FnConst(uint32_t i) { return (uint64_t{i} * 2654435761u) & 0xffff; }
uint64_t RodataValue(uint32_t k) { return (uint64_t{k} * 0x9e3779b97f4a7c15ull) >> 32; }
uint64_t NameHash(uint32_t i) { return (uint64_t{i} + 1) * 0xff51afd7ed558ccdull; }
uint64_t OrcWords(uint32_t i) { return (i % 8) + 1; }

// Pool function roles, laid out in link order:
//   [0, num_chain)                         chain functions
//   [num_chain, +num_indirect)             indirect-call targets
//   [.., +kNumSyscalls)                    syscall handlers
//   [.., +num_helpers)                     syscall helpers
//   [last]                                 fault function (ex_table exercise)
struct PoolPlan {
  uint32_t num_chain = 0;
  uint32_t num_indirect = 0;
  uint32_t num_handlers = 0;
  uint32_t num_helpers = 0;
  uint32_t total = 0;

  uint32_t IndirectBase() const { return num_chain; }
  uint32_t HandlerBase() const { return num_chain + num_indirect; }
  uint32_t HelperBase() const { return HandlerBase() + num_handlers; }
  uint32_t FaultIndex() const { return total - 1; }
  uint32_t HelpersPerHandler() const { return num_helpers / num_handlers; }
};

PoolPlan MakePlan(const KernelConfig& config) {
  PoolPlan plan;
  plan.total = std::max<uint32_t>(config.num_functions, 32);
  plan.num_handlers = kNumSyscalls;
  plan.num_indirect = std::min<uint32_t>(config.num_indirect, plan.total / 4);
  plan.num_helpers = std::min<uint32_t>(512, plan.total / 4);
  plan.num_helpers -= plan.num_helpers % plan.num_handlers;  // divisible
  if (plan.num_helpers < plan.num_handlers) {
    plan.num_helpers = plan.num_handlers;
  }
  plan.num_chain = plan.total - plan.num_indirect - plan.num_handlers - plan.num_helpers - 1;
  return plan;
}

// All addresses a function body may reference. Pass 1 uses dummies (sizes do
// not depend on operand values); pass 2 uses the real layout.
struct Addresses {
  uint64_t text = kLinkTextVaddr;  // _text
  std::vector<uint64_t> fn;        // pool function vaddrs
  uint64_t rodata_values = kLinkTextVaddr;
  uint64_t kallsyms = kLinkTextVaddr;
  uint64_t ex_table = kLinkTextVaddr;
  uint64_t orc = kLinkTextVaddr;
  uint64_t fn_table = kLinkTextVaddr;
  uint64_t handler_table = kLinkTextVaddr;
  uint64_t descriptor = kLinkTextVaddr;
  uint64_t initcall_table = kLinkTextVaddr;
  uint64_t orc_lookup = kLinkTextVaddr;
  uint32_t kallsyms_count = 0;
  uint32_t orc_count = 0;
};

// Emits checksum-neutral ALU filler of exactly `bytes` bytes (bytes >= 0,
// multiple of 1; uses 10-byte LoadI and 3-byte Xor on a scratch register,
// plus 1-byte Nops for the remainder). Immediates are drawn from a small
// alphabet: real kernel text is dominated by recurring instruction patterns
// and compresses ~4-5x, and the compression experiments (Figures 3, 4, 6)
// depend on that ratio.
void EmitFiller(Assembler& assembler, uint32_t bytes, Rng& rng, uint64_t salt) {
  // Repeated multi-instruction motifs: compiled code is full of recurring
  // idioms (prologues, spills, guard checks), which is what makes kernel
  // text compress well and decompress at near-memcpy speed. The high word
  // carries a per-function salt — like symbol-dependent constants in real
  // code — so byte windows are unique across functions (gadget-content
  // matching stays unambiguous) while motifs still repeat within one.
  while (bytes >= 10) {
    const uint32_t motif_len = 1 + static_cast<uint32_t>(rng.NextBelow(4));
    const uint32_t reps = 2 + static_cast<uint32_t>(rng.NextBelow(8));
    uint64_t values[4];
    for (uint32_t i = 0; i < motif_len; ++i) {
      values[i] = (salt << 32) | (0x1000 + rng.NextBelow(48) * 8);
    }
    for (uint32_t r = 0; r < reps && bytes >= 10; ++r) {
      for (uint32_t i = 0; i < motif_len && bytes >= 10; ++i) {
        assembler.LoadI(9, values[i]);
        bytes -= 10;
      }
    }
  }
  while (bytes >= 3) {
    assembler.Xor(9, 9);
    bytes -= 3;
  }
  while (bytes > 0) {
    assembler.Nop();
    --bytes;
  }
}

// Builder for the whole image; holds the state shared by both passes.
class Builder {
 public:
  explicit Builder(const KernelConfig& config)
      : config_(config), plan_(MakePlan(config)) {}

  Result<KernelBuildInfo> Build();

 private:
  // Emits one pool function. In pass 2, adds its checksum contribution.
  void EmitPoolFunction(uint32_t i, const Addresses& addrs, Assembler& assembler, bool final_pass);
  void EmitChainBody(uint32_t i, const Addresses& addrs, Assembler& assembler, bool final_pass,
                     Rng& rng);
  void EmitLeafBody(uint32_t i, const Addresses& addrs, Assembler& assembler, bool final_pass,
                    Rng& rng);
  void EmitHandlerBody(uint32_t i, const Addresses& addrs, Assembler& assembler, bool final_pass,
                       Rng& rng);
  void EmitFaultBody(const Addresses& addrs, Assembler& assembler, bool final_pass);

  // Emits the fixed .text blob (startup_64, kallsyms_selftest, syscall_entry,
  // orc_lookup); records their offsets.
  void EmitFixedText(const Addresses& addrs, Assembler& assembler, bool final_pass);
  void EmitBinarySearch(Assembler& assembler);

  const KernelConfig& config_;
  PoolPlan plan_;

  // Offsets within the fixed text blob (valid after EmitFixedText).
  uint64_t off_startup_ = 0;
  uint64_t off_selftest_ = 0;
  uint64_t off_syscall_entry_ = 0;
  uint64_t off_orc_lookup_ = 0;

  // Offsets of the probe/fixup instructions within the fault function.
  uint64_t fault_probe_off_ = 0;
  uint64_t fault_fixup_off_ = 0;

  // Pass-2 accumulator.
  uint64_t checksum_ = 0;
};

void Builder::EmitChainBody(uint32_t i, const Addresses& addrs, Assembler& assembler,
                            bool final_pass, Rng& rng) {
  const uint64_t c = FnConst(i);
  assembler.AddI(0, static_cast<int32_t>(c));
  if (final_pass) {
    checksum_ += c;
  }

  // Per-subsystem init work: a short busy loop, so the "Linux Boot" phase
  // scales with kernel size (bigger configs init more subsystems — the
  // Figure 9 per-profile differences).
  {
    const uint32_t iters = 48 + static_cast<uint32_t>(rng.NextBelow(64));
    assembler.LoadI(11, iters);
    auto spin = assembler.NewLabel();
    assembler.Bind(spin);
    assembler.AddI(11, -1);
    assembler.Jnz(11, spin);
  }

  // Target encoded size for this function (mean ~600 bytes).
  const uint32_t target = 96 + static_cast<uint32_t>(rng.NextBelow(1008));

  // Absolute address references are *sparse* in kernel text: x86_64 code is
  // overwhelmingly RIP-relative, with abs relocations showing up only at
  // symbol-address materializations (per-CPU bases, section bounds, literal
  // pools). Deterministic strides — not rng draws — keep pass-1/pass-2 sizes
  // identical and guarantee every reloc class appears even in tiny test
  // kernels (i == 1, 2, 3 are always present when the chain has >= 4 links).
  if ((i % 16) == 1) {
    // rodata reference: adds a build-known constant (abs64 reloc).
    const uint32_t k = static_cast<uint32_t>(rng.NextBelow(plan_.total));
    assembler.LoadA64(3, addrs.rodata_values + 8ull * k);
    assembler.Ld64(3, 3, 0);
    assembler.Add(0, 3);
    if (final_pass) {
      checksum_ += RodataValue(k);
    }
  }
  if ((i % 32) == 2) {
    // abs32/abs64 consistency check: contributes 0 iff both reloc classes
    // moved the same symbol by the same offset.
    const uint32_t j = static_cast<uint32_t>(rng.NextBelow(plan_.total));
    assembler.LoadA32(4, addrs.fn[j]);
    assembler.LoadA64(5, addrs.fn[j]);
    assembler.Sub(4, 5);
    assembler.Add(0, 4);
  }
  if ((i % 64) == 3) {
    // inverse-32 check: value C - vaddr; contributes 0 iff the inverse
    // relocation subtracted exactly the virtual offset. Inverse references
    // target fixed (never-shuffled) text only — the same restriction Linux
    // has for its per-CPU inverse relocations.
    const uint64_t kC = 0x1000 + i;
    const uint64_t sym = addrs.text + (i % 64);  // somewhere in fixed text
    assembler.LoadNeg32(6, static_cast<uint32_t>(kC - sym));
    assembler.LoadA64(7, sym);
    assembler.Add(6, 7);
    assembler.LoadI(8, kC);
    assembler.Sub(6, 8);
    assembler.Add(0, 6);
  }
  if (config_.rando == RandoMode::kFgKaslr) {
    // -ffunction-sections builds carry extra absolute cross-references
    // (section anchors and per-section literal pools): Table 1 shows ~3x the
    // relocation info of the plain KASLR build. Each block contributes 0 to
    // the checksum but doubles as a same-symbol consistency check.
    const uint64_t blocks = 1 + rng.NextBelow(4);
    for (uint64_t b = 0; b < blocks; ++b) {
      const uint32_t j = static_cast<uint32_t>(rng.NextBelow(plan_.total));
      assembler.LoadA64(9, addrs.fn[j]);
      assembler.LoadA64(10, addrs.fn[j]);
      assembler.Sub(9, 10);
      assembler.Add(0, 9);
    }
  }
  if (config_.unwinder_orc && (i % 64) == 0) {
    // ORC exercise: look up our own pc in the ORC table; adds this
    // function's stack_words, which the build knows.
    assembler.RdPc(3);
    assembler.Call(addrs.orc_lookup);
    assembler.Add(0, 3);
    if (final_pass) {
      checksum_ += OrcWords(i);
    }
  }

  // Trailer: optional call to the next chain function, then Ret. Plain
  // builds call PC-relative (RdPc + AddI delta + CallR — the E8 rel32
  // analogue: caller and callee slide together, so no relocation), which is
  // why real kernel *text* pages are mostly reloc-free under plain KASLR.
  // FGKASLR builds must use an absolute call: the callee is a separate
  // function-section that can move independently, and only absolute fields
  // go through the shuffle-aware relocation pass — one source of the ~3x
  // relocation-info blowup Table 1 reports for fgkaslr kernels.
  const bool has_next = (i + 1) < plan_.num_chain;
  const bool abs_call = config_.rando == RandoMode::kFgKaslr;
  const uint32_t trailer = (has_next ? (abs_call ? 9u : 10u) : 0u) + 1u;
  const uint32_t body = static_cast<uint32_t>(assembler.size());
  if (body + trailer < target) {
    EmitFiller(assembler, target - body - trailer, rng, i + 1);
  }
  if (has_next) {
    if (abs_call) {
      assembler.Call(addrs.fn[i + 1]);
    } else {
      const uint64_t rdpc_vaddr = assembler.current_vaddr();
      assembler.RdPc(10);
      assembler.AddI(10, static_cast<int32_t>(addrs.fn[i + 1] - rdpc_vaddr));
      assembler.CallR(10);
    }
  }
  assembler.Ret();
}

void Builder::EmitLeafBody(uint32_t i, const Addresses& addrs, Assembler& assembler,
                           bool final_pass, Rng& rng) {
  (void)addrs;
  const uint64_t c = FnConst(i);
  assembler.AddI(0, static_cast<int32_t>(c));
  if (final_pass) {
    checksum_ += c;  // every leaf (indirect target / helper) runs exactly once in init
  }
  const uint32_t target = 64 + static_cast<uint32_t>(rng.NextBelow(256));
  const uint32_t body = static_cast<uint32_t>(assembler.size());
  if (body + 1 < target) {
    EmitFiller(assembler, target - body - 1, rng, i + 1);
  }
  assembler.Ret();
}

void Builder::EmitHandlerBody(uint32_t i, const Addresses& addrs, Assembler& assembler,
                              bool final_pass, Rng& rng) {
  const uint64_t c = FnConst(i);
  assembler.AddI(0, static_cast<int32_t>(c));
  if (final_pass) {
    checksum_ += c;
  }
  // Call this handler's helper group. Helpers accumulate into r0; note the
  // helpers' own constants are charged to the checksum where the helpers are
  // emitted, once per invocation site (init calls each handler exactly once).
  const uint32_t handler_ordinal = i - plan_.HandlerBase();
  const uint32_t per = plan_.HelpersPerHandler();
  for (uint32_t h = 0; h < per; ++h) {
    const uint32_t helper_index = plan_.HelperBase() + handler_ordinal * per + h;
    assembler.Call(addrs.fn[helper_index]);
  }
  // Buffer workload: touch r2 bytes (64-byte stride) of the physical scratch
  // area through the direct map; models the copy work of read()/write().
  assembler.LoadI(7, kDirectMapBase + kScratchPhys);
  assembler.Mov(8, 7);
  assembler.Add(8, 2);
  auto loop = assembler.NewLabel();
  auto loop_body = assembler.NewLabel();
  auto done = assembler.NewLabel();
  assembler.Bind(loop);
  assembler.Jlt(7, 8, loop_body);
  assembler.Jmp(done);
  assembler.Bind(loop_body);
  assembler.St64(7, 9, 0);
  assembler.AddI(7, 64);
  assembler.Jmp(loop);
  assembler.Bind(done);
  const uint32_t target = 128 + static_cast<uint32_t>(rng.NextBelow(128));
  const uint32_t body = static_cast<uint32_t>(assembler.size());
  if (body + 1 < target) {
    EmitFiller(assembler, target - body - 1, rng, i + 1);
  }
  assembler.Ret();
}

void Builder::EmitFaultBody(const Addresses& addrs, Assembler& assembler, bool final_pass) {
  (void)addrs;
  assembler.LoadI(3, kFaultProbeAddr);
  fault_probe_off_ = assembler.size();
  assembler.Probe(4, 3, 0);
  // Fall-through only if the probe did NOT fault: poison the checksum so the
  // bug is observable.
  assembler.AddI(0, 0x6666);
  assembler.Ret();
  fault_fixup_off_ = assembler.size();
  assembler.AddI(0, static_cast<int32_t>(kFaultContribution));
  assembler.Ret();
  if (final_pass) {
    checksum_ += kFaultContribution;
  }
}

void Builder::EmitPoolFunction(uint32_t i, const Addresses& addrs, Assembler& assembler,
                               bool final_pass) {
  Rng rng(config_.build_seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
  if (i < plan_.num_chain) {
    EmitChainBody(i, addrs, assembler, final_pass, rng);
  } else if (i < plan_.HandlerBase()) {
    EmitLeafBody(i, addrs, assembler, final_pass, rng);
  } else if (i < plan_.HelperBase()) {
    EmitHandlerBody(i, addrs, assembler, final_pass, rng);
  } else if (i < plan_.FaultIndex()) {
    EmitLeafBody(i, addrs, assembler, final_pass, rng);
  } else {
    EmitFaultBody(addrs, assembler, final_pass);
  }
}

// Shared guest-side binary search over a sorted table of {u64 key, u64 value}
// pairs: in r3 = key to search (greatest entry with entry.key <= r3 wins),
// r4 = table vaddr, r5 = entry count. Returns value in r3, matched key in
// r11. Clobbers r7-r11. Requires at least one entry with key <= r3.
void Builder::EmitBinarySearch(Assembler& assembler) {
  auto loop = assembler.NewLabel();
  auto body = assembler.NewLabel();
  auto set_hi = assembler.NewLabel();
  auto done = assembler.NewLabel();
  assembler.LoadI(7, 0);  // lo
  assembler.Mov(8, 5);    // hi
  assembler.Bind(loop);
  assembler.Jlt(7, 8, body);
  assembler.Jmp(done);
  assembler.Bind(body);
  assembler.Mov(9, 7);  // mid = (lo + hi) / 2
  assembler.Add(9, 8);
  assembler.ShrI(9, 1);
  assembler.Mov(10, 9);  // entry = table + mid * 16
  assembler.ShlI(10, 4);
  assembler.Add(10, 4);
  assembler.Ld64(11, 10, 0);  // entry.key
  assembler.Jlt(3, 11, set_hi);
  assembler.Mov(7, 9);  // lo = mid + 1
  assembler.AddI(7, 1);
  assembler.Jmp(loop);
  assembler.Bind(set_hi);
  assembler.Mov(8, 9);  // hi = mid
  assembler.Jmp(loop);
  assembler.Bind(done);
  assembler.Mov(10, 7);  // entry = table + (lo - 1) * 16
  assembler.AddI(10, -1);
  assembler.ShlI(10, 4);
  assembler.Add(10, 4);
  assembler.Ld64(11, 10, 0);  // matched key
  assembler.Ld64(3, 10, 8);   // value
}

void Builder::EmitFixedText(const Addresses& addrs, Assembler& assembler, bool final_pass) {
  (void)final_pass;
  // ---- startup_64: the kernel entry point ----
  // Boot contract: r1 = guest memory size (bytes); [r2, r3) = the reserved
  // physical hull (the loaded kernel image plus its boot stack), both
  // page-aligned; SP set by the booting principal.
  off_startup_ = assembler.size();
  assembler.LoadI(6, kMarkerKernelEntry);
  assembler.Out(kPortTimestamp, 6);
  assembler.LoadA64(6, addrs.descriptor);
  assembler.Out(kPortSetupTables, 6);

  // Memory init: touch free RAM (everything above the 16 MiB floor except
  // the reserved hull) through the direct map — the memblock/page-allocator
  // init analogue, batched like Linux's deferred struct-page init. This is
  // what makes "Linux Boot" time scale with guest memory in Figure 10, and
  // skipping the reserved hull keeps the work independent of where
  // randomization put the kernel.
  {
    assembler.LoadI(4, kDirectMapBase + kPhysicalStart);  // cursor
    assembler.LoadI(5, kDirectMapBase);
    assembler.Add(5, 1);  // end = direct map + memsize
    assembler.LoadI(6, kDirectMapBase);
    assembler.Add(6, 2);  // reserved start
    assembler.LoadI(7, kDirectMapBase);
    assembler.Add(7, 3);  // reserved end
    assembler.LoadI(8, 0);
    auto loop = assembler.NewLabel();
    auto body = assembler.NewLabel();
    auto do_zero = assembler.NewLabel();
    auto skip = assembler.NewLabel();
    auto done = assembler.NewLabel();
    assembler.Bind(loop);
    assembler.Jlt(4, 5, body);
    assembler.Jmp(done);
    assembler.Bind(body);
    assembler.Jlt(4, 6, do_zero);  // below the reserved hull
    assembler.Jlt(4, 7, skip);     // inside the hull: hop over it
    assembler.Bind(do_zero);
    assembler.St64(4, 8, 0);
    assembler.AddI(4, 16384);  // batched struct-page init: one touch per 16 KiB
    assembler.Jmp(loop);
    assembler.Bind(skip);
    assembler.Mov(4, 7);
    assembler.Jmp(loop);
    assembler.Bind(done);
  }

  assembler.LoadI(0, 0);  // checksum accumulator
  if (plan_.num_chain > 0) {
    assembler.Call(addrs.fn[0]);  // walk the whole chain
  }

  // Indirect calls through the relocated pointer table in .data.
  for (uint32_t j = 0; j < plan_.num_indirect; ++j) {
    assembler.LoadA64(4, addrs.fn_table + 8ull * j);
    assembler.Ld64(5, 4, 0);
    assembler.CallR(5);
  }

  // Call each syscall handler once (512-byte buffer arg).
  assembler.LoadI(2, 512);
  for (uint32_t h = 0; h < plan_.num_handlers; ++h) {
    assembler.Call(addrs.fn[plan_.HandlerBase() + h]);
  }

  // Exception-table exercise.
  assembler.Call(addrs.fn[plan_.FaultIndex()]);

  // "Run init": the userspace handoff analogue.
  assembler.LoadI(3, kMarkerInitStart);
  assembler.Out(kPortTimestamp, 3);
  {
    assembler.LoadI(7, 0);
    assembler.LoadI(8, 4096);
    auto loop = assembler.NewLabel();
    auto body = assembler.NewLabel();
    auto done = assembler.NewLabel();
    assembler.Bind(loop);
    assembler.Jlt(7, 8, body);
    assembler.Jmp(done);
    assembler.Bind(body);
    assembler.AddI(7, 1);
    assembler.Jmp(loop);
    assembler.Bind(done);
  }
  assembler.Out(kPortInitDone, 0);
  assembler.Halt();

  // ---- kallsyms_selftest: post-boot entry; r1 = fn_table index ----
  // Reports the kallsyms name hash for the function the table points at, or
  // kSelftestMissValue if the (possibly stale) kallsyms entry does not match.
  off_selftest_ = assembler.size();
  {
    assembler.Out(kPortKallsymsTouch, 1);  // lazy-fixup hook (paper §4.3)
    assembler.LoadA64(4, addrs.fn_table);
    assembler.Mov(5, 1);
    assembler.ShlI(5, 3);
    assembler.Add(4, 5);
    assembler.Ld64(3, 4, 0);  // runtime fn vaddr
    assembler.LoadA64(6, addrs.text);
    assembler.Sub(3, 6);  // text-relative offset
    assembler.Mov(12, 3);  // keep the key
    assembler.LoadA64(4, addrs.kallsyms);
    assembler.LoadI(5, addrs.kallsyms_count);
    EmitBinarySearch(assembler);
    // r11 = matched key, r3 = hash. Exact match required.
    auto match = assembler.NewLabel();
    auto out = assembler.NewLabel();
    assembler.Sub(11, 12);
    assembler.Jz(11, match);
    assembler.LoadI(3, kSelftestMissValue);
    assembler.Jmp(out);
    assembler.Bind(match);
    assembler.Bind(out);
    assembler.Mov(0, 3);
    assembler.Out(kPortTestValue, 0);
    assembler.Halt();
  }

  // ---- syscall_entry: post-boot entry; r1 = syscall id, r2 = arg ----
  off_syscall_entry_ = assembler.size();
  {
    assembler.LoadI(0, 0);
    assembler.LoadA64(4, addrs.handler_table);
    assembler.Mov(5, 1);
    assembler.ShlI(5, 3);
    assembler.Add(4, 5);
    assembler.Ld64(6, 4, 0);
    assembler.CallR(6);
    assembler.Halt();
  }

  // ---- orc_lookup: r3 = pc; returns r3 = stack words ----
  off_orc_lookup_ = assembler.size();
  {
    assembler.LoadA64(6, addrs.text);
    assembler.Sub(3, 6);  // text-relative offset
    assembler.LoadA64(4, addrs.orc);
    assembler.LoadI(5, addrs.orc_count);
    EmitBinarySearch(assembler);
    assembler.Ret();
  }
}

Result<KernelBuildInfo> Builder::Build() {
  // ---------- pass 1: learn sizes ----------
  Addresses dummy;
  dummy.fn.assign(plan_.total, kLinkTextVaddr);
  dummy.kallsyms_count = plan_.total;
  dummy.orc_count = config_.unwinder_orc ? plan_.total : 0;

  Assembler fixed_pass1(kLinkTextVaddr);
  EmitFixedText(dummy, fixed_pass1, /*final_pass=*/false);
  const uint64_t fixed_size = AlignUp(fixed_pass1.size(), 16);

  std::vector<uint32_t> fn_sizes(plan_.total);
  {
    for (uint32_t i = 0; i < plan_.total; ++i) {
      Assembler a(0);
      EmitPoolFunction(i, dummy, a, /*final_pass=*/false);
      fn_sizes[i] = static_cast<uint32_t>(AlignUp(a.size(), 16));
    }
  }

  // ---------- layout ----------
  Addresses addrs;
  addrs.text = kLinkTextVaddr;
  addrs.fn.resize(plan_.total);
  uint64_t cursor = kLinkTextVaddr + fixed_size;
  for (uint32_t i = 0; i < plan_.total; ++i) {
    addrs.fn[i] = cursor;
    cursor += fn_sizes[i];
  }
  const uint64_t text_payload_end = cursor;
  const uint64_t text_end =
      std::max<uint64_t>(text_payload_end, kLinkTextVaddr + config_.text_bytes);

  const uint64_t rodata_start = AlignUp(text_end, 4096);
  addrs.rodata_values = rodata_start;
  const uint64_t rodata_values_size = 8ull * plan_.total;
  addrs.kallsyms = addrs.rodata_values + rodata_values_size;
  addrs.kallsyms_count = plan_.total;
  const uint64_t kallsyms_size = kKallsymsEntrySize * plan_.total;
  addrs.ex_table = addrs.kallsyms + kallsyms_size;
  const uint64_t ex_table_size = kExTableEntrySize;  // one entry
  addrs.orc_count = config_.unwinder_orc ? plan_.total : 0;
  addrs.orc = config_.unwinder_orc ? addrs.ex_table + ex_table_size : 0;
  const uint64_t orc_size = kOrcEntrySize * addrs.orc_count;
  const uint64_t rodata_payload_end = addrs.ex_table + ex_table_size + orc_size;
  const uint64_t rodata_end =
      std::max<uint64_t>(rodata_payload_end, rodata_start + config_.rodata_bytes);

  const uint64_t data_start = AlignUp(rodata_end, 4096);
  addrs.fn_table = data_start;
  const uint64_t fn_table_size = 8ull * plan_.num_indirect;
  addrs.handler_table = addrs.fn_table + fn_table_size;
  const uint64_t handler_table_size = 8ull * plan_.num_handlers;
  addrs.descriptor = addrs.handler_table + handler_table_size;
  // Initcall-style function-pointer array: one abs64 entry per chain
  // function. Models where real kernels concentrate their absolute
  // relocations — initcall levels, ops structs, jump tables live in .data,
  // not text — so KASLR's private (unmergeable, monitor-CoW-dirty) pages
  // cluster in the data section the same way Linux's do.
  addrs.initcall_table = addrs.descriptor + kTablesDescriptorSize;
  const uint64_t initcall_table_size = 8ull * plan_.num_chain;
  const uint64_t data_payload_end = addrs.initcall_table + initcall_table_size;
  const uint64_t data_end = std::max<uint64_t>(data_payload_end, data_start + config_.data_bytes);

  const uint64_t bss_start = AlignUp(data_end, 4096);
  const uint64_t bss_end = bss_start + config_.bss_bytes;
  const uint64_t image_end = AlignUp(bss_end, 4096);

  // Fixed-text internal offsets are pass-invariant, so pass 1 already
  // determined orc_lookup's address.
  addrs.orc_lookup = kLinkTextVaddr + off_orc_lookup_;

  // ---------- pass 2: final code ----------
  checksum_ = 0;
  Assembler fixed_final(kLinkTextVaddr);
  EmitFixedText(addrs, fixed_final, /*final_pass=*/true);

  RelocInfo relocs;
  auto collect = [&relocs](const Assembler& a, uint64_t base) {
    for (const RelocSite& site : a.relocs()) {
      const uint64_t vaddr = base + site.offset;
      switch (site.reloc_class) {
        case RelocClass::kAbs64:
          relocs.abs64.push_back(vaddr);
          break;
        case RelocClass::kAbs32:
          relocs.abs32.push_back(vaddr);
          break;
        case RelocClass::kInverse32:
          relocs.inverse32.push_back(vaddr);
          break;
      }
    }
  };

  Bytes fixed_blob = fixed_final.TakeCode();
  collect(fixed_final, kLinkTextVaddr);
  fixed_blob.resize(fixed_size, 0);

  std::vector<Bytes> fn_blobs(plan_.total);
  std::vector<FunctionInfo> functions(plan_.total);
  for (uint32_t i = 0; i < plan_.total; ++i) {
    Assembler a(addrs.fn[i]);
    EmitPoolFunction(i, addrs, a, /*final_pass=*/true);
    collect(a, addrs.fn[i]);
    Bytes blob = a.TakeCode();
    const uint32_t real_size = static_cast<uint32_t>(blob.size());
    blob.resize(fn_sizes[i], 0);  // pad to the 16-aligned pass-1 size
    if (blob.size() != fn_sizes[i] || real_size > fn_sizes[i]) {
      return InternalError("pass size mismatch for fn " + std::to_string(i));
    }
    fn_blobs[i] = std::move(blob);
    functions[i] = FunctionInfo{"fn_" + std::to_string(i), addrs.fn[i], fn_sizes[i]};
  }

  // ---------- rodata ----------
  ByteWriter rodata;
  for (uint32_t k = 0; k < plan_.total; ++k) {
    rodata.WriteU64(RodataValue(k));
  }
  for (uint32_t i = 0; i < plan_.total; ++i) {  // kallsyms: sorted by offset
    rodata.WriteU64(addrs.fn[i] - addrs.text);
    rodata.WriteU64(NameHash(i));
  }
  {  // exception table (text-relative, sorted; single entry)
    const uint64_t fault_base = addrs.fn[plan_.FaultIndex()] - addrs.text;
    rodata.WriteU64(fault_base + fault_probe_off_);
    rodata.WriteU64(fault_base + fault_fixup_off_);
  }
  if (config_.unwinder_orc) {  // ORC table: sorted by offset
    for (uint32_t i = 0; i < plan_.total; ++i) {
      rodata.WriteU64(addrs.fn[i] - addrs.text);
      rodata.WriteU64(OrcWords(i));
    }
  }
  Bytes rodata_blob = rodata.Take();
  rodata_blob.resize(rodata_end - rodata_start, 0);

  // ---------- data ----------
  ByteWriter data;
  for (uint32_t j = 0; j < plan_.num_indirect; ++j) {
    relocs.abs64.push_back(addrs.fn_table + 8ull * j);
    data.WriteU64(addrs.fn[plan_.IndirectBase() + j]);
  }
  for (uint32_t h = 0; h < plan_.num_handlers; ++h) {
    relocs.abs64.push_back(addrs.handler_table + 8ull * h);
    data.WriteU64(addrs.fn[plan_.HandlerBase() + h]);
  }
  {  // tables descriptor (see isa.h)
    const uint64_t base = addrs.descriptor;
    relocs.abs64.push_back(base + 0);
    data.WriteU64(addrs.text);
    relocs.abs64.push_back(base + 8);
    data.WriteU64(addrs.ex_table);
    data.WriteU64(1);  // ex_table count
    relocs.abs64.push_back(base + 24);
    data.WriteU64(addrs.kallsyms);
    data.WriteU64(addrs.kallsyms_count);
    if (config_.unwinder_orc) {
      relocs.abs64.push_back(base + 40);
    }
    data.WriteU64(addrs.orc);
    data.WriteU64(addrs.orc_count);
  }
  for (uint32_t c = 0; c < plan_.num_chain; ++c) {  // initcall-style pointers
    relocs.abs64.push_back(addrs.initcall_table + 8ull * c);
    data.WriteU64(addrs.fn[c]);
  }
  Bytes data_blob = data.Take();
  data_blob.resize(data_end - data_start, 0);

  std::sort(relocs.abs64.begin(), relocs.abs64.end());
  std::sort(relocs.abs32.begin(), relocs.abs32.end());
  std::sort(relocs.inverse32.begin(), relocs.inverse32.end());

  // ---------- ELF assembly ----------
  ElfWriter writer(kEmVk64, kEtExec);
  writer.set_entry(kLinkTextVaddr + off_startup_);

  std::vector<size_t> text_sections;
  if (config_.rando == RandoMode::kFgKaslr) {
    // Fixed entry text plus one section per function (the
    // -ffunction-sections layout FGKASLR requires).
    SectionSpec fixed_spec;
    fixed_spec.name = ".text";
    fixed_spec.flags = kShfAlloc | kShfExecinstr;
    fixed_spec.addr = kLinkTextVaddr;
    fixed_spec.addralign = 4096;
    fixed_spec.data = std::move(fixed_blob);
    text_sections.push_back(writer.AddSection(std::move(fixed_spec)));
    for (uint32_t i = 0; i < plan_.total; ++i) {
      SectionSpec spec;
      spec.name = ".text.fn_" + std::to_string(i);
      spec.flags = kShfAlloc | kShfExecinstr;
      spec.addr = addrs.fn[i];
      spec.addralign = 16;
      spec.data = std::move(fn_blobs[i]);
      text_sections.push_back(writer.AddSection(std::move(spec)));
    }
    if (text_end > text_payload_end) {
      SectionSpec pad;
      pad.name = ".text.rest";  // never shuffled (no ".text.fn_" prefix)
      pad.flags = kShfAlloc | kShfExecinstr;
      pad.addr = text_payload_end;
      pad.addralign = 16;
      pad.data.assign(text_end - text_payload_end, 0);
      text_sections.push_back(writer.AddSection(std::move(pad)));
    }
  } else {
    // Classic single .text blob.
    Bytes text_blob = std::move(fixed_blob);
    for (uint32_t i = 0; i < plan_.total; ++i) {
      text_blob.insert(text_blob.end(), fn_blobs[i].begin(), fn_blobs[i].end());
    }
    text_blob.resize(text_end - kLinkTextVaddr, 0);
    SectionSpec spec;
    spec.name = ".text";
    spec.flags = kShfAlloc | kShfExecinstr;
    spec.addr = kLinkTextVaddr;
    spec.addralign = 4096;
    spec.data = std::move(text_blob);
    text_sections.push_back(writer.AddSection(std::move(spec)));
  }

  SectionSpec rodata_spec;
  rodata_spec.name = ".rodata";
  rodata_spec.flags = kShfAlloc;
  rodata_spec.addr = rodata_start;
  rodata_spec.addralign = 4096;
  rodata_spec.data = std::move(rodata_blob);
  const size_t rodata_index = writer.AddSection(std::move(rodata_spec));

  SectionSpec data_spec;
  data_spec.name = ".data";
  data_spec.flags = kShfAlloc | kShfWrite;
  data_spec.addr = data_start;
  data_spec.addralign = 4096;
  data_spec.data = std::move(data_blob);
  const size_t data_index = writer.AddSection(std::move(data_spec));

  SectionSpec bss_spec;
  bss_spec.name = ".bss";
  bss_spec.type = kShtNobits;
  bss_spec.flags = kShfAlloc | kShfWrite;
  bss_spec.addr = bss_start;
  bss_spec.addralign = 4096;
  bss_spec.nobits_size = config_.bss_bytes;
  const size_t bss_index = writer.AddSection(std::move(bss_spec));

  // .rela: machine relocation records, the input Linux's `relocs` tool
  // consumes to produce vmlinux.relocs (Figure 8's alternative flow). Only
  // relocatable (CONFIG_RANDOMIZE_BASE) kernels carry them.
  if (config_.rando != RandoMode::kNone) {
    ByteWriter rela;
    auto emit = [&rela](const std::vector<uint64_t>& list, uint32_t type) {
      for (uint64_t vaddr : list) {
        rela.WriteU64(vaddr);
        rela.WriteU64(ElfRInfo(0, type));
        rela.WriteU64(0);  // addend unused: fields hold their link-time values
      }
    };
    emit(relocs.abs64, kRVk64Abs64);
    emit(relocs.abs32, kRVk64Abs32);
    emit(relocs.inverse32, kRVk64Inverse32);
    SectionSpec rela_spec;
    rela_spec.name = ".rela.kernel";
    rela_spec.type = kShtRela;
    rela_spec.addralign = 8;
    rela_spec.entsize = sizeof(Elf64Rela);
    rela_spec.data = rela.Take();
    writer.AddSection(std::move(rela_spec));
  }

  // Notes: PVH entry + kernel constants (paper §4.3 future work).
  {
    std::vector<ElfNote> notes;
    ElfNote pvh;
    pvh.name = kNoteNameXen;
    pvh.type = kNoteTypePvhEntry;
    ByteWriter desc;
    desc.WriteU64(kLinkTextVaddr + off_startup_);
    pvh.desc = desc.Take();
    notes.push_back(std::move(pvh));

    ElfNote constants;
    constants.name = kNoteNameImk;
    constants.type = kNoteTypeKernelConstants;
    KernelConstantsNote values;
    values.physical_start = kPhysicalStart;
    values.physical_align = kPhysicalAlign;
    values.start_kernel_map = kStartKernelMap;
    values.kernel_image_size = kKernelImageSize;
    constants.desc = EncodeKernelConstants(values);
    notes.push_back(std::move(constants));

    SectionSpec note_spec;
    note_spec.name = ".notes";
    note_spec.type = kShtNote;
    note_spec.addralign = 4;
    note_spec.data = BuildNoteSection(notes);
    writer.AddSection(std::move(note_spec));
  }

  // Segments: RX text, RO rodata, RW data+bss. paddr = vaddr - base delta so
  // that paddr(_text) == kPhysicalStart.
  const uint64_t paddr_delta = kStartKernelMap;
  writer.AddLoadSegment(text_sections, kPfR | kPfX, paddr_delta);
  writer.AddLoadSegment({rodata_index}, kPfR, paddr_delta);
  writer.AddLoadSegment({data_index, bss_index}, kPfR | kPfW, paddr_delta);

  // Symbols.
  writer.AddSymbol("_text", kLinkTextVaddr, 0, ElfStInfo(kStbGlobal, kSttNotype), 1);
  writer.AddSymbol("startup_64", kLinkTextVaddr + off_startup_, off_selftest_ - off_startup_,
                   ElfStInfo(kStbGlobal, kSttFunc), 1);
  writer.AddSymbol("kallsyms_selftest", kLinkTextVaddr + off_selftest_,
                   off_syscall_entry_ - off_selftest_, ElfStInfo(kStbGlobal, kSttFunc), 1);
  writer.AddSymbol("syscall_entry", kLinkTextVaddr + off_syscall_entry_,
                   off_orc_lookup_ - off_syscall_entry_, ElfStInfo(kStbGlobal, kSttFunc), 1);
  writer.AddSymbol("orc_lookup", kLinkTextVaddr + off_orc_lookup_, 0,
                   ElfStInfo(kStbGlobal, kSttFunc), 1);
  // Table locator symbols (the __start___ex_table analogues the FGKASLR
  // engine and bootstrap loader use to find what to fix up).
  writer.AddSymbol("__kallsyms", addrs.kallsyms, kallsyms_size,
                   ElfStInfo(kStbGlobal, kSttObject), 0);
  writer.AddSymbol("__ex_table", addrs.ex_table, ex_table_size,
                   ElfStInfo(kStbGlobal, kSttObject), 0);
  if (config_.unwinder_orc) {
    writer.AddSymbol("__orc_unwind", addrs.orc, orc_size, ElfStInfo(kStbGlobal, kSttObject), 0);
  }
  for (uint32_t i = 0; i < plan_.total; ++i) {
    writer.AddSymbol(functions[i].name, functions[i].vaddr, functions[i].size,
                     ElfStInfo(kStbLocal, kSttFunc), 0);
  }

  IMK_ASSIGN_OR_RETURN(Bytes vmlinux, writer.Finish());

  // ---------- build info ----------
  KernelBuildInfo info;
  info.config = config_;
  info.vmlinux = std::move(vmlinux);
  if (config_.rando != RandoMode::kNone) {
    info.relocs = std::move(relocs);
  }
  info.entry_vaddr = kLinkTextVaddr + off_startup_;
  info.text_vaddr = kLinkTextVaddr;
  info.image_end_vaddr = image_end;
  info.expected_checksum = checksum_;
  info.selftest_entry_vaddr = kLinkTextVaddr + off_selftest_;
  info.syscall_entry_vaddr = kLinkTextVaddr + off_syscall_entry_;
  info.kallsyms_count = plan_.total;
  info.num_syscalls = plan_.num_handlers;
  info.fn_table_vaddr = addrs.fn_table;
  info.indirect_base = plan_.IndirectBase();
  info.indirect_hashes.reserve(plan_.num_indirect);
  for (uint32_t j = 0; j < plan_.num_indirect; ++j) {
    info.indirect_hashes.push_back(NameHash(plan_.IndirectBase() + j));
  }
  info.functions = std::move(functions);
  return info;
}

}  // namespace

Result<KernelBuildInfo> BuildKernel(const KernelConfig& config) {
  Builder builder(config);
  return builder.Build();
}

}  // namespace imk
