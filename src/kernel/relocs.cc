#include "src/kernel/relocs.h"

#include <algorithm>
#include <cstring>

#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/kernel/layout.h"

namespace imk {
namespace {

constexpr uint64_t kMagic = 0x434f4c45524b4d49ull;  // "IMKRELOC"
constexpr uint32_t kVersion = 1;

void WriteList(ByteWriter& out, const std::vector<uint64_t>& list) {
  for (uint64_t vaddr : list) {
    out.WriteU32(static_cast<uint32_t>(vaddr));
  }
}

Status ReadList(ByteReader& reader, uint32_t count, std::vector<uint64_t>& list) {
  list.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    IMK_ASSIGN_OR_RETURN(uint32_t low, reader.ReadU32());
    // Sign-extend: kernel virtual addresses live in the top 2 GiB.
    list.push_back(static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(low))));
  }
  return OkStatus();
}

}  // namespace

size_t RelocInfo::SerializedSize() const {
  return 8 + 4 + 3 * 4 + total() * 4;
}

Bytes SerializeRelocs(const RelocInfo& relocs) {
  ByteWriter out;
  out.WriteU64(kMagic);
  out.WriteU32(kVersion);
  out.WriteU32(static_cast<uint32_t>(relocs.abs64.size()));
  out.WriteU32(static_cast<uint32_t>(relocs.abs32.size()));
  out.WriteU32(static_cast<uint32_t>(relocs.inverse32.size()));
  WriteList(out, relocs.abs64);
  WriteList(out, relocs.abs32);
  WriteList(out, relocs.inverse32);
  return out.Take();
}

Result<RelocInfo> ExtractRelocsFromElf(const ElfReader& elf) {
  RelocInfo relocs;
  for (const ElfSection& section : elf.sections()) {
    if (section.header.sh_type != kShtRela) {
      continue;
    }
    if (section.header.sh_entsize != sizeof(Elf64Rela)) {
      return ParseError("rela section has bad entsize");
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan data, elf.SectionData(section));
    if (data.size() % sizeof(Elf64Rela) != 0) {
      // Dropping a partial trailing entry would silently skip a relocation —
      // a randomized kernel with one stale pointer. Reject the image instead.
      return ParseError("rela section size is not a multiple of the entry size (truncated?)");
    }
    const size_t count = data.size() / sizeof(Elf64Rela);
    for (size_t i = 0; i < count; ++i) {
      Elf64Rela rela;
      std::memcpy(&rela, data.data() + i * sizeof(Elf64Rela), sizeof(rela));
      switch (ElfRType(rela.r_info)) {
        case kRVk64Abs64:
          relocs.abs64.push_back(rela.r_offset);
          break;
        case kRVk64Abs32:
          relocs.abs32.push_back(rela.r_offset);
          break;
        case kRVk64Inverse32:
          relocs.inverse32.push_back(rela.r_offset);
          break;
        default:
          return ParseError("unknown relocation type in .rela section");
      }
    }
  }
  std::sort(relocs.abs64.begin(), relocs.abs64.end());
  std::sort(relocs.abs32.begin(), relocs.abs32.end());
  std::sort(relocs.inverse32.begin(), relocs.inverse32.end());
  return relocs;
}

Result<RelocInfo> ParseRelocs(ByteSpan blob) {
  ByteReader reader(blob);
  IMK_ASSIGN_OR_RETURN(uint64_t magic, reader.ReadU64());
  if (magic != kMagic) {
    return ParseError("relocs: bad magic");
  }
  IMK_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kVersion) {
    return ParseError("relocs: unsupported version");
  }
  IMK_ASSIGN_OR_RETURN(uint32_t n64, reader.ReadU32());
  IMK_ASSIGN_OR_RETURN(uint32_t n32, reader.ReadU32());
  IMK_ASSIGN_OR_RETURN(uint32_t ninv, reader.ReadU32());
  if ((uint64_t{n64} + n32 + ninv) * 4 > reader.remaining()) {
    return ParseError("relocs: counts exceed blob size");
  }
  RelocInfo relocs;
  IMK_RETURN_IF_ERROR(ReadList(reader, n64, relocs.abs64));
  IMK_RETURN_IF_ERROR(ReadList(reader, n32, relocs.abs32));
  IMK_RETURN_IF_ERROR(ReadList(reader, ninv, relocs.inverse32));
  return relocs;
}

}  // namespace imk
