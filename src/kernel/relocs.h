// Relocation info: the vmlinux.relocs analogue.
//
// Linux's `relocs` tool emits, and the bootstrap loader consumes, three
// lists of 32-bit entries (paper §3.2): 64-bit fields needing += offset,
// 32-bit fields needing += offset, and 32-bit inverse fields needing
// -= offset. Each entry is the (sign-extended) virtual address of the field
// to patch. This module defines the in-memory form, the serialized blob
// (appended to vmlinux inside a bzImage, or passed separately to the monitor
// per the paper's Figure 8), and extraction from a built kernel ELF.
#ifndef IMKASLR_SRC_KERNEL_RELOCS_H_
#define IMKASLR_SRC_KERNEL_RELOCS_H_

#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace imk {

// Relocation info for one kernel image. Field addresses are link-time
// virtual addresses, each list sorted ascending.
struct RelocInfo {
  std::vector<uint64_t> abs64;      // 64-bit absolute fields
  std::vector<uint64_t> abs32;      // 32-bit absolute fields
  std::vector<uint64_t> inverse32;  // 32-bit inverse fields

  size_t total() const { return abs64.size() + abs32.size() + inverse32.size(); }
  bool empty() const { return total() == 0; }

  // Serialized size (what Table 1's "relocs" column reports).
  size_t SerializedSize() const;
};

// Serializes to the vmlinux.relocs blob format: magic, three counts, then
// three arrays of 32-bit entries (low 32 bits of the field vaddr; the top
// 2 GiB mapping makes sign-extension unambiguous, as on x86_64).
Bytes SerializeRelocs(const RelocInfo& relocs);

// Parses a blob produced by SerializeRelocs.
Result<RelocInfo> ParseRelocs(ByteSpan blob);

// The `relocs` tool (paper Figure 8): extracts relocation info from the
// .rela sections of a kernel ELF — the alternative to shipping a separate
// vmlinux.relocs alongside the binary. Returns an empty RelocInfo for
// non-relocatable kernels (no .rela sections).
class ElfReader;
Result<RelocInfo> ExtractRelocsFromElf(const ElfReader& elf);

}  // namespace imk

#endif  // IMKASLR_SRC_KERNEL_RELOCS_H_
