// Synthetic kernel image builder.
//
// Produces a fully valid, *executable* vmlinux ELF for the VK64 guest ISA:
//
//   .text        fixed code: startup_64 (init), syscall_entry, orc_lookup,
//                kallsyms_selftest — never shuffled (like Linux's entry code)
//   .text.fn_i   one section per generated function when the config is
//                fgkaslr (the -ffunction-sections analogue); a single .text
//                blob otherwise (identical bytes either way)
//   .rodata      per-function constants, the kallsyms table (text-relative,
//                sorted), the exception table (text-relative, sorted), the
//                ORC table (optional), plus filler
//   .data        function pointer table (absolute, relocated), the guest
//                tables descriptor, plus filler
//   .bss         SHT_NOBITS
//   .notes       PVH entry note + kernel-constants note (paper §4.3's
//                future-work idea)
//
// The generated init chain-calls every function, verifies one absolute-32
// and one inverse-32 relocation class per sampled function, performs
// indirect calls through the relocated pointer table, triggers one
// exception-table fixup, and reports a checksum through port I/O. The
// builder computes the expected checksum, so any relocation bug anywhere in
// the monitor/bootstrap stack is observable as a boot failure.
#ifndef IMKASLR_SRC_KERNEL_KERNEL_BUILDER_H_
#define IMKASLR_SRC_KERNEL_KERNEL_BUILDER_H_

#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/kernel/kconfig.h"
#include "src/kernel/relocs.h"

namespace imk {

// A generated (shuffleable) function.
struct FunctionInfo {
  std::string name;    // ".text.fn_<i>" section name suffix
  uint64_t vaddr = 0;  // link-time virtual address
  uint32_t size = 0;   // encoded bytes
};

// Everything a monitor, bootstrap loader, or test needs to know about a
// built kernel.
struct KernelBuildInfo {
  KernelConfig config;

  Bytes vmlinux;     // the ELF image
  RelocInfo relocs;  // empty when config.rando == RandoMode::kNone

  uint64_t entry_vaddr = 0;          // startup_64 (== text_vaddr)
  uint64_t text_vaddr = 0;           // link-time _text
  uint64_t image_end_vaddr = 0;      // end of .bss (memsz span)
  uint64_t expected_checksum = 0;    // value init writes to kPortInitDone
  uint64_t selftest_entry_vaddr = 0;  // kallsyms selftest (fixed text)
  uint64_t syscall_entry_vaddr = 0;  // LEBench syscall dispatcher (fixed text)

  uint32_t kallsyms_count = 0;
  uint32_t num_syscalls = 0;

  // Indirect-call table (in .data): entry j holds the address of indirect
  // function j — which is functions[indirect_base + j]; `indirect_hashes[j]`
  // is the kallsyms name hash the selftest should report for it.
  uint64_t fn_table_vaddr = 0;
  uint32_t indirect_base = 0;
  std::vector<uint64_t> indirect_hashes;

  std::vector<FunctionInfo> functions;  // shuffleable functions, link order

  // Convenience: image memory span in bytes.
  uint64_t ImageMemSize() const { return image_end_vaddr - text_vaddr; }
};

// Builds the image described by `config`. Deterministic in config.build_seed.
Result<KernelBuildInfo> BuildKernel(const KernelConfig& config);

}  // namespace imk

#endif  // IMKASLR_SRC_KERNEL_KERNEL_BUILDER_H_
