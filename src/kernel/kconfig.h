// Kernel configuration profiles: the three guest kernels of the paper's
// Table 1 (Lupine / AWS / Ubuntu) crossed with the three randomization
// variants (nokaslr / kaslr / fgkaslr). The numeric parameters reproduce the
// paper's size *proportions* (Table 1) at a configurable scale factor.
#ifndef IMKASLR_SRC_KERNEL_KCONFIG_H_
#define IMKASLR_SRC_KERNEL_KCONFIG_H_

#include <cstdint>
#include <string>

namespace imk {

// Guest kernel size class (paper Table 1).
enum class KernelProfile {
  kLupine,  // small single-purpose unikernel-like config (20M vmlinux)
  kAws,     // Firecracker reference microVM config (39M vmlinux)
  kUbuntu,  // full distribution config (45M vmlinux)
};

// Randomization variant baked into the kernel build.
enum class RandoMode {
  kNone,     // CONFIG_RANDOMIZE_BASE off: no relocs emitted
  kKaslr,    // relocatable kernel + relocation info
  kFgKaslr,  // + per-function sections (-ffunction-sections analogue)
};

const char* KernelProfileName(KernelProfile profile);
const char* RandoModeName(RandoMode mode);

// Fully resolved kernel build parameters.
struct KernelConfig {
  KernelProfile profile = KernelProfile::kAws;
  RandoMode rando = RandoMode::kKaslr;

  // Fraction of the paper's full kernel sizes to synthesize. Benches default
  // to 0.25 (see DESIGN.md §6 "Scale factor"); tests use much smaller.
  double scale = 0.25;

  // CONFIG_UNWINDER_ORC analogue; disabled by default as in all the paper's
  // kernels (§4.3), but supported for the ablation bench.
  bool unwinder_orc = false;

  // Deterministic build seed (affects function sizes and layout filler).
  uint64_t build_seed = 0x1234;

  // ---- derived generation parameters (filled by Resolve()) ----
  uint64_t text_bytes = 0;     // target .text payload
  uint64_t rodata_bytes = 0;   // .rodata filler beyond the generated tables
  uint64_t data_bytes = 0;     // .data filler beyond the generated tables
  uint64_t bss_bytes = 0;
  uint32_t num_functions = 0;  // shuffleable functions
  uint32_t num_indirect = 0;   // functions called through the pointer table

  // Builds a resolved config for a profile/mode/scale triple.
  static KernelConfig Make(KernelProfile profile, RandoMode rando, double scale);

  // "lupine-kaslr", "aws-fgkaslr", ...
  std::string Name() const;
};

}  // namespace imk

#endif  // IMKASLR_SRC_KERNEL_KCONFIG_H_
