// Link-time address-space constants of the synthetic kernel — the analogues
// of the Linux values the paper's §4.3 discusses (CONFIG_PHYSICAL_START,
// CONFIG_PHYSICAL_ALIGN, __START_KERNEL_map, KERNEL_IMAGE_SIZE). The monitor
// either hardcodes these (as the paper's prototype does) or reads them from
// the kernel-constants ELF note (the paper's proposed future work, which this
// project also implements — see src/elf/elf_note.h).
#ifndef IMKASLR_SRC_KERNEL_LAYOUT_H_
#define IMKASLR_SRC_KERNEL_LAYOUT_H_

#include <cstdint>

namespace imk {

// __START_KERNEL_map analogue: base of the kernel text mapping window.
inline constexpr uint64_t kStartKernelMap = 0xffffffff80000000ull;

// CONFIG_PHYSICAL_START analogue: default physical load address (16 MiB) —
// also the link-time offset of the kernel inside the text mapping window.
inline constexpr uint64_t kPhysicalStart = 0x1000000ull;

// CONFIG_PHYSICAL_ALIGN analogue (2 MiB).
inline constexpr uint64_t kPhysicalAlign = 0x200000ull;

// KERNEL_IMAGE_SIZE analogue: the kernel plus its randomization range must
// fit in this much virtual space (1 GiB, "to avoid the fixmap" — §4.3).
inline constexpr uint64_t kKernelImageSize = 1ull << 30;

// Link-time virtual address of _text.
inline constexpr uint64_t kLinkTextVaddr = kStartKernelMap + kPhysicalStart;

// Direct-map base (page_offset analogue): identity view of guest RAM used by
// the synthetic kernel's memory-init loop.
inline constexpr uint64_t kDirectMapBase = 0xffff888000000000ull;

// Virtual/physical slack mapped past the image end for the boot stack.
inline constexpr uint64_t kBootStackSlack = 1ull << 20;

// MIN_KERNEL_ALIGN analogue used by the optimized compression-none bzImage
// link trick of §3.3.
inline constexpr uint64_t kMinKernelAlign = kPhysicalAlign;

}  // namespace imk

#endif  // IMKASLR_SRC_KERNEL_LAYOUT_H_
