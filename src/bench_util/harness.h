// Benchmark harness utilities: repetition with warm-up (the paper's 5-boot
// warm-up + 100 measured boots), aligned text tables, and simple horizontal
// bar rendering so each bench binary can print the figure it reproduces.
#ifndef IMKASLR_SRC_BENCH_UTIL_HARNESS_H_
#define IMKASLR_SRC_BENCH_UTIL_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/stats.h"

namespace imk {

// Common bench options, parsed from argv: --reps=N --warmup=N --scale=F.
struct BenchOptions {
  uint32_t reps = 20;     // the paper uses 100; benches default lower to fit CI
  uint32_t warmup = 5;    // the paper warms the cache with 5 boots
  double scale = 0.25;    // kernel size scale factor (see DESIGN.md)

  static BenchOptions FromArgs(int argc, char** argv);
};

// Runs `body` warmup+reps times; samples from the measured reps only.
// `body` returns the sample value (e.g. boot ms) or an error, which aborts.
Result<Summary> Repeat(uint32_t warmup, uint32_t reps, const std::function<Result<double>()>& body);

// Fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

  static std::string Fmt(double value, int decimals = 2);

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Renders rows of `label value` as horizontal bars scaled to the maximum.
void PrintBars(const std::vector<std::pair<std::string, double>>& rows, const std::string& unit);

}  // namespace imk

#endif  // IMKASLR_SRC_BENCH_UTIL_HARNESS_H_
