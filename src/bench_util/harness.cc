#include "src/bench_util/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace imk {

BenchOptions BenchOptions::FromArgs(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--reps=", 7) == 0) {
      options.reps = static_cast<uint32_t>(std::atoi(arg + 7));
    } else if (std::strncmp(arg, "--warmup=", 9) == 0) {
      options.warmup = static_cast<uint32_t>(std::atoi(arg + 9));
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      options.scale = std::atof(arg + 8);
    }
  }
  if (options.reps == 0) {
    options.reps = 1;
  }
  return options;
}

Result<Summary> Repeat(uint32_t warmup, uint32_t reps,
                       const std::function<Result<double>()>& body) {
  for (uint32_t i = 0; i < warmup; ++i) {
    IMK_RETURN_IF_ERROR(body().status());
  }
  Summary summary;
  for (uint32_t i = 0; i < reps; ++i) {
    IMK_ASSIGN_OR_RETURN(double sample, body());
    summary.Add(sample);
  }
  return summary;
}

TextTable::TextTable(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void TextTable::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::Fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

void TextTable::Print() const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) {
      widths.resize(row.size(), 0);
    }
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (size_t i = 0; i < rows_[r].size(); ++i) {
      std::string cell = rows_[r][i];
      cell.resize(widths[i], ' ');
      line += cell;
      line += "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule;
      for (size_t i = 0; i < widths.size(); ++i) {
        rule += std::string(widths[i], '-') + "  ";
      }
      std::printf("%s\n", rule.c_str());
    }
  }
}

void PrintBars(const std::vector<std::pair<std::string, double>>& rows, const std::string& unit) {
  double max_value = 0;
  size_t label_width = 0;
  for (const auto& [label, value] : rows) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  if (max_value <= 0) {
    max_value = 1;
  }
  constexpr int kBarWidth = 46;
  for (const auto& [label, value] : rows) {
    std::string padded = label;
    padded.resize(label_width, ' ');
    const int len = static_cast<int>(value / max_value * kBarWidth + 0.5);
    std::string bar(static_cast<size_t>(len), '#');
    std::printf("  %s  %-*s %8.2f %s\n", padded.c_str(), kBarWidth, bar.c_str(), value,
                unit.c_str());
  }
}

}  // namespace imk
