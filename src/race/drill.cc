#include "src/race/drill.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

#include "src/race/lock_ranks.h"
#include "src/race/tracker.h"

namespace imk {
namespace race {
namespace {

// Raw std primitives on purpose: the drills feed the Tracker hooks
// explicitly (so they work in every build, instrumented or not) and must
// not recurse into the wrapper instrumentation. src/race/ is exempt from
// the raw-mutex lint for exactly this file and the tracker.
std::mutex drill_outer;
std::mutex drill_inner;
std::atomic<uint64_t> drill_word{0};

void AcquireTracked(std::mutex& mu, LockRank rank) {
  Tracker::Instance().OnAcquire(&mu, rank);
  mu.lock();
}

void ReleaseTracked(std::mutex& mu) {
  mu.unlock();
  Tracker::Instance().OnRelease(&mu);
}

}  // namespace

void LockOrderInversionDrill() {
  // Legal pass: outer(90) then inner(91) — records the 90->91 edge.
  AcquireTracked(drill_outer, LockRank::kDrillOuter);
  AcquireTracked(drill_inner, LockRank::kDrillInner);
  ReleaseTracked(drill_inner);
  ReleaseTracked(drill_outer);

  // Inverted pass: inner then outer — a rank inversion at acquisition time,
  // and the 91->90 edge closes a cycle with the pass above. Single-threaded,
  // so it cannot actually deadlock; the detector fires on the shape alone.
  AcquireTracked(drill_inner, LockRank::kDrillInner);
  AcquireTracked(drill_outer, LockRank::kDrillOuter);
  ReleaseTracked(drill_outer);
  ReleaseTracked(drill_inner);
}

void UnguardedWriteDrill() {
  Tracker& tracker = Tracker::Instance();
  auto touch = [&tracker] {
    drill_word.fetch_add(1, std::memory_order_relaxed);
    tracker.OnSharedAccess("race.drill_word", &drill_word, 0, LockRank::kDrillOuter,
                           /*write=*/true);
  };
  // First thread establishes exclusive ownership; the second transitions the
  // region to shared with nothing held, emptying the lockset on a write.
  touch();
  std::thread second([&] {
    touch();
    touch();
  });
  second.join();
}

}  // namespace race
}  // namespace imk
