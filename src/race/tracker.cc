#include "src/race/tracker.h"

#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace imk {
namespace race {
namespace {

struct Held {
  const void* lock;
  LockRank rank;
};

// Per-thread held stack. Maintained unconditionally (in audit builds the
// wrappers always call the hooks), so a Begin() issued while another thread
// holds instrumented locks still sees a consistent stack — only the
// *findings* are gated on the active window.
std::vector<Held>& HeldStack() {
  static thread_local std::vector<Held> stack;
  return stack;
}

// Small dense thread ids for readable findings.
uint64_t ThreadId() {
  static std::atomic<uint64_t> next{1};
  static thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t EdgeKey(LockRank from, LockRank to) {
  return (static_cast<uint64_t>(LockRankValue(from)) << 32) | LockRankValue(to);
}

struct RegionKey {
  std::string region;
  const void* instance;
  uint64_t sub_id;
  bool operator<(const RegionKey& o) const {
    if (region != o.region) return region < o.region;
    if (instance != o.instance) return instance < o.instance;
    return sub_id < o.sub_id;
  }
};

struct RegionState {
  uint64_t owner_thread = 0;     // first thread to touch the region
  bool multi_threaded = false;   // a second thread has touched it
  bool reported = false;         // one finding per region is enough
  std::set<const void*> lockset;  // candidate guards (intersection so far)
};

}  // namespace

bool AuditCompiledIn() {
#ifdef IMK_RACE_AUDIT
  return true;
#else
  return false;
#endif
}

std::atomic<bool> Tracker::active_flag_{false};

struct Tracker::Impl {
  std::mutex mu;  // raw on purpose: the audit cannot instrument itself
  RaceReport report;
  std::set<std::string> seen_keys;           // finding dedupe
  std::map<uint64_t, uint64_t> edge_counts;  // (from<<32|to) -> times seen
  std::map<uint32_t, std::set<uint32_t>> adjacency;
  std::map<RegionKey, RegionState> regions;
  uint64_t acquisitions = 0;
  uint64_t accesses = 0;

  void AddOnce(RaceKind kind, std::string key, std::string subject, std::string message) {
    if (!seen_keys.insert(std::move(key)).second) {
      return;
    }
    report.Add({kind, std::move(subject), std::move(message)});
  }

  // True if `target` is reachable from `start` in the edge graph.
  bool Reaches(uint32_t start, uint32_t target) const {
    std::set<uint32_t> visited;
    std::vector<uint32_t> frontier{start};
    while (!frontier.empty()) {
      uint32_t node = frontier.back();
      frontier.pop_back();
      if (node == target) {
        return true;
      }
      if (!visited.insert(node).second) {
        continue;
      }
      auto it = adjacency.find(node);
      if (it == adjacency.end()) {
        continue;
      }
      for (uint32_t next : it->second) {
        frontier.push_back(next);
      }
    }
    return false;
  }
};

Tracker& Tracker::Instance() {
  static Tracker tracker;
  return tracker;
}

Tracker::Impl& Tracker::impl() {
  static Impl impl;
  return impl;
}

void Tracker::Begin() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.report = RaceReport();
  i.seen_keys.clear();
  i.edge_counts.clear();
  i.adjacency.clear();
  i.regions.clear();
  i.acquisitions = 0;
  i.accesses = 0;
  active_flag_.store(true, std::memory_order_relaxed);
}

RaceReport Tracker::End() {
  active_flag_.store(false, std::memory_order_relaxed);
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  RaceCoverage& cov = i.report.coverage();
  cov.acquisitions = i.acquisitions;
  cov.order_edges = i.edge_counts.size();
  cov.regions_tracked = i.regions.size();
  cov.accesses_checked = i.accesses;
  cov.instrumented = AuditCompiledIn();
  for (const auto& [key, count] : i.edge_counts) {
    i.report.edges().push_back({LockRankName(static_cast<LockRank>(key >> 32)),
                                LockRankName(static_cast<LockRank>(key & 0xffffffffu)), count});
  }
  RaceReport out = std::move(i.report);
  i.report = RaceReport();
  return out;
}

void Tracker::OnAcquire(const void* lock, LockRank rank) {
  std::vector<Held>& held = HeldStack();
  if (active()) {
    Impl& i = impl();
    std::lock_guard<std::mutex> guard(i.mu);
    ++i.acquisitions;
    if (rank == LockRank::kUnranked) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "unranked@%p", lock);
      i.AddOnce(RaceKind::kUnrankedLock, buf, "unranked lock",
                "wrapper lock acquired without a declared rank; add it to "
                "src/race/lock_ranks.h");
    }
    if (!held.empty()) {
      const Held& top = held.back();
      if (rank != LockRank::kUnranked && top.rank != LockRank::kUnranked) {
        if (LockRankValue(rank) <= LockRankValue(top.rank)) {
          char buf[128];
          std::snprintf(buf, sizeof(buf), "inversion:%s->%s", LockRankName(top.rank),
                        LockRankName(rank));
          char msg[160];
          std::snprintf(msg, sizeof(msg),
                        "thread %llu acquired rank %u (%s) while holding rank %u (%s)",
                        static_cast<unsigned long long>(ThreadId()), LockRankValue(rank),
                        LockRankName(rank), LockRankValue(top.rank), LockRankName(top.rank));
          i.AddOnce(RaceKind::kRankInversion, buf,
                    std::string(LockRankName(top.rank)) + " -> " + LockRankName(rank), msg);
        }
        // Record every observed nesting edge — including inverted ones — so
        // two paths locking a pair in opposite orders close a graph cycle.
        uint64_t key = EdgeKey(top.rank, rank);
        bool new_edge = i.edge_counts.find(key) == i.edge_counts.end();
        ++i.edge_counts[key];
        if (new_edge) {
          uint32_t from = LockRankValue(top.rank);
          uint32_t to = LockRankValue(rank);
          i.adjacency[from].insert(to);
          if (i.Reaches(to, from)) {
            char buf[128];
            std::snprintf(buf, sizeof(buf), "cycle:%s<->%s", LockRankName(top.rank),
                          LockRankName(rank));
            i.AddOnce(RaceKind::kOrderCycle, buf,
                      std::string(LockRankName(top.rank)) + " <-> " + LockRankName(rank),
                      "lock-order graph cycle: the reverse nesting was also observed; "
                      "these locks deadlock under the right interleaving");
          }
        }
      }
    }
  }
  held.push_back({lock, rank});
}

void Tracker::OnRelease(const void* lock) {
  std::vector<Held>& held = HeldStack();
  // Search from the top: unlock order may legally differ from lock order
  // (std::scoped_lock, manual early unlock).
  for (size_t idx = held.size(); idx-- > 0;) {
    if (held[idx].lock == lock) {
      held.erase(held.begin() + static_cast<long>(idx));
      return;
    }
  }
}

void Tracker::OnSharedAccess(const char* region, const void* instance, uint64_t sub_id,
                             LockRank declared, bool write) {
  if (!active()) {
    return;
  }
  // Snapshot this thread's held set before taking the tracker's own lock.
  std::set<const void*> held_now;
  for (const Held& h : HeldStack()) {
    held_now.insert(h.lock);
  }
  uint64_t tid = ThreadId();

  Impl& i = impl();
  std::lock_guard<std::mutex> guard(i.mu);
  ++i.accesses;
  RegionState& state = i.regions[RegionKey{region, instance, sub_id}];
  if (state.owner_thread == 0) {
    // First touch: exclusive to this thread until proven otherwise.
    state.owner_thread = tid;
    state.lockset = held_now;
    return;
  }
  if (!state.multi_threaded) {
    if (state.owner_thread == tid) {
      return;  // still thread-exclusive; no guard needed yet
    }
    // Second thread entered: start the lockset at *this* access's held set
    // (Eraser's ownership-transition refinement — locks from the exclusive
    // phase are not evidence of a shared protocol).
    state.multi_threaded = true;
    state.lockset = held_now;
  } else {
    // Intersect the candidate guards with what is held right now.
    for (auto it = state.lockset.begin(); it != state.lockset.end();) {
      if (held_now.count(*it) == 0) {
        it = state.lockset.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (write && state.lockset.empty() && !state.reported) {
    state.reported = true;
    char key[160];
    std::snprintf(key, sizeof(key), "unguarded:%s@%p/%llu", region, instance,
                  static_cast<unsigned long long>(sub_id));
    char msg[224];
    std::snprintf(msg, sizeof(msg),
                  "multi-threaded write with empty lockset (declared guard: %s); "
                  "no common lock held across accesses",
                  LockRankName(declared));
    i.AddOnce(RaceKind::kUnguardedWrite, key, region, msg);
  }
}

}  // namespace race
}  // namespace imk
