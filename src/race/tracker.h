// The concurrency-audit runtime: held-lock stacks, the lock-order graph,
// and the Eraser-style lockset check.
//
// The Tracker is a process-wide singleton fed by the instrumented wrappers
// in src/race/mutex.h (and, for self-tests, by the drills in
// src/race/drill.h calling the hooks directly). It is always *compiled* —
// the detection logic and its tests work in every build — but it only
// *records* between Begin() and End(), and the wrappers only call into it
// when the tree was built with IMK_RACE_AUDIT (otherwise they are plain
// passthrough and the audit observes nothing; End() marks the report
// uninstrumented so a "clean" run without instrumentation is not mistaken
// for evidence).
//
// Checks performed at OnAcquire time:
//   - rank inversion: the incoming rank is <= the top of this thread's
//     held stack (kRankInversion; equal rank means sibling locks of one
//     rank were nested, which the ranking forbids too);
//   - unranked lock: a wrapper was never given a rank (kUnrankedLock);
//   - order cycle: the nesting edge just observed closes a cycle in the
//     global rank graph (kOrderCycle). All edges are recorded, including
//     inverted ones, so two paths locking a pair of ranks in opposite
//     orders surface as a cycle even if each path alone only inverts.
//
// Checks performed at OnSharedAccess time (Eraser-lite): each declared
// region starts exclusive to its first thread; once a second thread
// touches it, its candidate lockset is intersected with the held set at
// every access, and a *write* with an empty lockset from then on is a
// kUnguardedWrite finding.
#ifndef IMKASLR_SRC_RACE_TRACKER_H_
#define IMKASLR_SRC_RACE_TRACKER_H_

#include <atomic>

#include "src/race/lock_ranks.h"
#include "src/race/report.h"

namespace imk {
namespace race {

// True when the tree was compiled with IMK_RACE_AUDIT (wrapper hooks live).
bool AuditCompiledIn();

class Tracker {
 public:
  static Tracker& Instance();

  // Fast global gate the wrappers test before calling the hooks.
  static bool active() { return active_flag_.load(std::memory_order_relaxed); }

  // Starts a fresh audit window: clears all state, enables recording.
  void Begin();
  // Disables recording and returns everything observed since Begin().
  RaceReport End();

  // Wrapper/drill hooks. OnAcquire is called *before* the underlying lock
  // call (a rank inversion should be reported even if the thread would
  // block forever); OnRelease after the underlying unlock.
  void OnAcquire(const void* lock, LockRank rank);
  void OnRelease(const void* lock);

  // Lockset check for one access to a declared shared region. The region
  // identity is (region, instance, sub_id) so sibling instances (per-VM
  // FrameStores) and sibling elements (frame-state words) are independent.
  // `declared` is the IMK_GUARDED_BY rank, echoed into findings.
  void OnSharedAccess(const char* region, const void* instance, uint64_t sub_id, LockRank declared,
                      bool write);

  Tracker(const Tracker&) = delete;
  Tracker& operator=(const Tracker&) = delete;

 private:
  Tracker() = default;

  static std::atomic<bool> active_flag_;
  struct Impl;
  Impl& impl();
};

// RAII audit window: Begin() on construction, End() into `report()` on
// Finish() (or destruction).
class AuditScope {
 public:
  AuditScope() { Tracker::Instance().Begin(); }
  ~AuditScope() {
    if (!finished_) {
      Finish();
    }
  }

  // Ends the window and captures the report; idempotent.
  const RaceReport& Finish() {
    if (!finished_) {
      report_ = Tracker::Instance().End();
      finished_ = true;
    }
    return report_;
  }

  const RaceReport& report() { return Finish(); }

  AuditScope(const AuditScope&) = delete;
  AuditScope& operator=(const AuditScope&) = delete;

 private:
  RaceReport report_;
  bool finished_ = false;
};

}  // namespace race
}  // namespace imk

// Declares one write access to a shared region for the lockset check.
// Placed at the write site, under whatever lock the code believes protects
// the region; compiles to nothing without IMK_RACE_AUDIT.
#ifdef IMK_RACE_AUDIT
#define IMK_RACE_SHARED_WRITE(region, instance, sub_id, rank)                             \
  do {                                                                                    \
    if (::imk::race::Tracker::active()) {                                                 \
      ::imk::race::Tracker::Instance().OnSharedAccess(                                    \
          (region), (instance), static_cast<uint64_t>(sub_id), ::imk::race::LockRank::rank, \
          /*write=*/true);                                                                \
    }                                                                                     \
  } while (0)
#define IMK_RACE_SHARED_READ(region, instance, sub_id, rank)                              \
  do {                                                                                    \
    if (::imk::race::Tracker::active()) {                                                 \
      ::imk::race::Tracker::Instance().OnSharedAccess(                                    \
          (region), (instance), static_cast<uint64_t>(sub_id), ::imk::race::LockRank::rank, \
          /*write=*/false);                                                               \
    }                                                                                     \
  } while (0)
#else
#define IMK_RACE_SHARED_WRITE(region, instance, sub_id, rank) \
  do {                                                        \
  } while (0)
#define IMK_RACE_SHARED_READ(region, instance, sub_id, rank) \
  do {                                                       \
  } while (0)
#endif

#endif  // IMKASLR_SRC_RACE_TRACKER_H_
