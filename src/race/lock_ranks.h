// The central lock-rank table: every mutex in the tree declares its rank.
//
// Ranks encode the global acquisition order. A thread may only acquire a
// lock whose rank is strictly greater than the rank of the last lock it
// already holds; acquiring equal-or-lower rank is a rank inversion — the
// static shape of a deadlock — and the audit runtime (src/race/tracker.h)
// flags it at acquisition time, whether or not the interleaving that would
// actually deadlock was scheduled. Sibling instances of one rank (the
// FrameStore fault shards) are therefore never held nested: the code
// acquires them strictly sequentially, and the audit enforces that too.
//
// Growing the tree: a new lock gets a new enumerator here, placed by where
// it sits in the outer-to-inner acquisition order (gaps are left for
// insertions), plus a row in kLockRankTable naming it and what it guards.
// tools/imk_lint refuses IMK_GUARDED_BY annotations whose rank is not in
// this enum, so the table cannot silently drift from the annotations.
#ifndef IMKASLR_SRC_RACE_LOCK_RANKS_H_
#define IMKASLR_SRC_RACE_LOCK_RANKS_H_

#include <cstddef>
#include <cstdint>

namespace imk {
namespace race {

enum class LockRank : uint32_t {
  // Only reachable through a wrapper that was never given a rank; the audit
  // reports every acquisition of it as a finding.
  kUnranked = 0,

  // ---- outermost: fleet drivers ----
  kStormError = 10,       // boot_storm first-error slot
  kStormTally = 20,       // boot_storm supervised-outcome tallies
  kMemGovernor = 30,      // MemGovernor hook registry + reclamation ladder
                          // (held while the ladder calls into every cache
                          // lock below; Charge/Release stay atomic-only so
                          // caches never lock back into the governor)

  // ---- shared randomization state ----
  kTemplateCache = 40,    // ImageTemplateCache LRU/index/single-flight state
  kLayoutPool = 45,       // LayoutPool ready deque + refill state (above the
                          // cache, below the pool: refill scheduling holds it
                          // while submitting to the ThreadPool)
  kThreadPool = 50,       // ThreadPool job publication + wait channels
  kBlockCache = 55,       // SharedBlockCache decoded-block map + counters
                          // (leaf among the shared caches: lookups and
                          // installs never take another lock while held)

  // ---- per-VM guest memory ----
  kFrameStoreFaultShard = 60,  // FrameStore CoW fault shards (64 siblings)
  kFrameStoreOwners = 70,      // FrameStore shared-mapping owner pins

  // ---- innermost: leaf services callable from anywhere above ----
  kFaultInjector = 80,    // FaultInjector rule/counter state
  kTraceRegistry = 85,    // imktrace thread-ring/metrics-shard registry.
                          // Emit paths are lock-free; this mutex is taken
                          // only on first-emit registration and on
                          // scrape/export, so it ranks above every product
                          // lock — a thread may register its ring while
                          // holding any cache or governor lock.

  // ---- audit self-test (race drills only; never held by product code) ----
  kDrillOuter = 90,
  kDrillInner = 91,
};

struct LockRankInfo {
  LockRank rank;
  const char* name;    // stable string id used in reports
  const char* guards;  // what the lock protects (documentation)
};

// Every declared rank, in rank order. The audit runtime uses it for names;
// DESIGN.md §11 mirrors it prose-side.
inline constexpr LockRankInfo kLockRankTable[] = {
    {LockRank::kStormError, "storm-error", "boot_storm first-error slot"},
    {LockRank::kStormTally, "storm-tally", "boot_storm supervised-outcome tallies"},
    {LockRank::kMemGovernor, "mem-governor",
     "MemGovernor reclaimable-hook registry, ladder serialization, pressure epoch"},
    {LockRank::kTemplateCache, "template-cache",
     "ImageTemplateCache LRU list, key index, span memo, single-flight builds, counters"},
    {LockRank::kLayoutPool, "layout-pool",
     "LayoutPool ready deque, sequence counter, refill bookkeeping, counters"},
    {LockRank::kThreadPool, "thread-pool", "ThreadPool job slot, generation, shutdown flag"},
    {LockRank::kBlockCache, "block-cache",
     "SharedBlockCache decoded-block map, hit/miss/stale counters"},
    {LockRank::kFrameStoreFaultShard, "frame-store-fault-shard",
     "FrameStore per-shard frame state + read-pointer transitions"},
    {LockRank::kFrameStoreOwners, "frame-store-owners", "FrameStore shared-mapping owner pins"},
    {LockRank::kFaultInjector, "fault-injector", "FaultInjector rules, seeds, hit counters"},
    {LockRank::kTraceRegistry, "trace-registry",
     "imktrace thread-ring + metrics-shard registry; scrape/export serialization"},
    {LockRank::kDrillOuter, "drill-outer", "race-audit self-test outer lock"},
    {LockRank::kDrillInner, "drill-inner", "race-audit self-test inner lock"},
};

inline constexpr size_t kLockRankCount = sizeof(kLockRankTable) / sizeof(kLockRankTable[0]);

inline const char* LockRankName(LockRank rank) {
  for (const LockRankInfo& info : kLockRankTable) {
    if (info.rank == rank) {
      return info.name;
    }
  }
  return "unranked";
}

inline uint32_t LockRankValue(LockRank rank) { return static_cast<uint32_t>(rank); }

}  // namespace race
}  // namespace imk

#endif  // IMKASLR_SRC_RACE_LOCK_RANKS_H_
