#include "src/race/report.h"

#include <cstdio>
#include <sstream>

namespace imk {
namespace race {
namespace {

// Escapes a string for embedding in a JSON string literal. Findings carry
// rank names and generated messages only, but escape defensively anyway.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* RaceKindName(RaceKind kind) {
  switch (kind) {
    case RaceKind::kRankInversion:
      return "rank-inversion";
    case RaceKind::kOrderCycle:
      return "order-cycle";
    case RaceKind::kUnrankedLock:
      return "unranked-lock";
    case RaceKind::kUnguardedWrite:
      return "unguarded-write";
  }
  return "unknown";
}

void RaceReport::Add(RaceFinding finding) {
  ++total_count_;
  uint64_t recorded_of_kind = 0;
  for (auto& [kind, count] : counts_) {
    if (kind == finding.kind) {
      ++count;
      recorded_of_kind = count;
      break;
    }
  }
  if (recorded_of_kind == 0) {
    counts_.emplace_back(finding.kind, 1);
    recorded_of_kind = 1;
  }
  if (recorded_of_kind <= kMaxRecordedPerKind) {
    findings_.push_back(std::move(finding));
  }
}

uint64_t RaceReport::CountOf(RaceKind kind) const {
  for (const auto& [k, count] : counts_) {
    if (k == kind) {
      return count;
    }
  }
  return 0;
}

std::string RaceReport::ToString() const {
  std::ostringstream out;
  out << "race audit: " << (clean() ? "CLEAN" : std::to_string(total_count_) + " finding(s)")
      << " [" << coverage_.acquisitions << " acquisitions, " << coverage_.order_edges
      << " order edges, " << coverage_.regions_tracked << " shared regions, "
      << coverage_.accesses_checked << " accesses checked"
      << (coverage_.instrumented ? "" : "; wrappers NOT instrumented (no IMK_RACE_AUDIT)")
      << "]";
  for (const RaceFinding& finding : findings_) {
    out << "\n  [" << RaceKindName(finding.kind) << "] " << finding.subject << ": "
        << finding.message;
  }
  if (findings_.size() < total_count_) {
    out << "\n  ... " << (total_count_ - findings_.size()) << " more (recording capped)";
  }
  for (const OrderEdge& edge : edges_) {
    out << "\n  order: " << edge.from << " -> " << edge.to << " x" << edge.count;
  }
  return out.str();
}

std::string RaceReport::ToJson() const {
  std::ostringstream out;
  out << "{\"clean\":" << (clean() ? "true" : "false")
      << ",\"total_findings\":" << total_count_ << ",\"coverage\":{"
      << "\"acquisitions\":" << coverage_.acquisitions
      << ",\"order_edges\":" << coverage_.order_edges
      << ",\"regions_tracked\":" << coverage_.regions_tracked
      << ",\"accesses_checked\":" << coverage_.accesses_checked
      << ",\"instrumented\":" << (coverage_.instrumented ? "true" : "false") << "}"
      << ",\"counts\":{";
  bool first = true;
  for (const auto& [kind, count] : counts_) {
    out << (first ? "" : ",") << "\"" << RaceKindName(kind) << "\":" << count;
    first = false;
  }
  out << "},\"findings\":[";
  first = true;
  for (const RaceFinding& finding : findings_) {
    out << (first ? "" : ",") << "{\"kind\":\"" << RaceKindName(finding.kind) << "\",\"subject\":\""
        << JsonEscape(finding.subject) << "\",\"message\":\"" << JsonEscape(finding.message)
        << "\"}";
    first = false;
  }
  out << "],\"order_graph\":[";
  first = true;
  for (const OrderEdge& edge : edges_) {
    out << (first ? "" : ",") << "{\"from\":\"" << JsonEscape(edge.from) << "\",\"to\":\""
        << JsonEscape(edge.to) << "\",\"count\":" << edge.count << "}";
    first = false;
  }
  out << "]}";
  return out.str();
}

}  // namespace race
}  // namespace imk
