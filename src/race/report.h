// Structured findings for the concurrency audit (mirrors src/verify/report).
//
// Every violation class the audit runtime detects has a stable id; each
// violation becomes a RaceFinding carrying the id, the locks or shared
// region involved, and a human-readable detail line. A RaceReport collects
// findings plus coverage counters (how many acquisitions and shared-field
// accesses were actually observed — an audit that observed nothing is not
// evidence of race-freedom) and the observed lock-order graph, pretty-prints
// for humans, and serializes to JSON for tooling.
#ifndef IMKASLR_SRC_RACE_REPORT_H_
#define IMKASLR_SRC_RACE_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace imk {
namespace race {

// Stable violation identifiers (the audit's catalogue; see DESIGN.md §11).
enum class RaceKind {
  // Acquired a lock whose rank is <= the rank of a lock already held.
  kRankInversion,
  // The observed lock-order graph contains a cycle (two code paths acquire
  // the same pair of ranks in opposite orders).
  kOrderCycle,
  // A wrapper lock was acquired without a declared rank.
  kUnrankedLock,
  // Eraser-style lockset check: a declared shared field was written by more
  // than one thread with no common lock held across the accesses.
  kUnguardedWrite,
};

// Stable string form ("rank-inversion", "order-cycle", ...).
const char* RaceKindName(RaceKind kind);

// One violation. `subject` names the locks (rank pair) or the shared region;
// `message` carries the detail (ranks, threads, declared guard).
struct RaceFinding {
  RaceKind kind = RaceKind::kRankInversion;
  std::string subject;
  std::string message;
};

// One observed nesting edge: some thread acquired `to` while holding `from`.
struct OrderEdge {
  std::string from;
  std::string to;
  uint64_t count = 0;
};

// Coverage counters: what the audit actually observed.
struct RaceCoverage {
  uint64_t acquisitions = 0;      // instrumented lock acquisitions
  uint64_t order_edges = 0;       // distinct nesting edges in the graph
  uint64_t regions_tracked = 0;   // declared shared regions touched
  uint64_t accesses_checked = 0;  // shared-field accesses lockset-checked
  // False when the binary was built without IMK_RACE_AUDIT: the wrappers
  // were passthrough, so only explicit drill hooks could be observed.
  bool instrumented = false;
};

// The audit's output: findings + coverage + the order graph. A report is
// `clean()` iff no finding was recorded (every kind is a violation).
class RaceReport {
 public:
  // At most this many findings are *stored* per kind (a hot loop repeating
  // one inversion must not balloon the report); all are *counted*.
  static constexpr size_t kMaxRecordedPerKind = 64;

  void Add(RaceFinding finding);

  bool clean() const { return total_count_ == 0; }
  uint64_t total_findings() const { return total_count_; }
  // Total violations of one kind (including unrecorded overflow).
  uint64_t CountOf(RaceKind kind) const;

  const std::vector<RaceFinding>& findings() const { return findings_; }
  RaceCoverage& coverage() { return coverage_; }
  const RaceCoverage& coverage() const { return coverage_; }
  std::vector<OrderEdge>& edges() { return edges_; }
  const std::vector<OrderEdge>& edges() const { return edges_; }

  // Multi-line human-readable summary.
  std::string ToString() const;
  // Machine-readable JSON object (stable keys; see DESIGN.md §11).
  std::string ToJson() const;

 private:
  std::vector<RaceFinding> findings_;
  std::vector<std::pair<RaceKind, uint64_t>> counts_;  // per-kind totals
  std::vector<OrderEdge> edges_;
  uint64_t total_count_ = 0;
  RaceCoverage coverage_;
};

}  // namespace race
}  // namespace imk

#endif  // IMKASLR_SRC_RACE_REPORT_H_
