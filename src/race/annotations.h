// Source-level concurrency annotations.
//
// IMK_GUARDED_BY(rank) marks a field as protected by the lock holding that
// rank in src/race/lock_ranks.h. The macro expands to nothing — it is a
// machine-checked comment: tools/imk_lint verifies every annotated rank
// exists in the rank table, and the audit runtime's lockset checks verify
// the guarded writes actually happen under a lock at run time. Annotate the
// declaration site:
//
//   std::list<Entry> lru_ IMK_GUARDED_BY(kTemplateCache);
//
// Fields legitimately accessed lock-free (atomics with their own ordering
// story) are not annotated; their protocol is documented at the field.
#ifndef IMKASLR_SRC_RACE_ANNOTATIONS_H_
#define IMKASLR_SRC_RACE_ANNOTATIONS_H_

#define IMK_GUARDED_BY(rank)

#endif  // IMKASLR_SRC_RACE_ANNOTATIONS_H_
