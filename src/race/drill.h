// Deterministic self-tests for the audit runtime ("is the smoke detector
// wired to anything?"). Each drill drives the Tracker hooks directly with a
// known-bad pattern inside the caller's audit window, so the resulting
// findings prove the detection logic end to end. The drills are reachable
// from `imk_tool racecheck --drill=...` and, via the race.order_drill /
// race.lockset_drill fault points, from an instrumented boot storm.
#ifndef IMKASLR_SRC_RACE_DRILL_H_
#define IMKASLR_SRC_RACE_DRILL_H_

namespace imk {
namespace race {

// Acquires drill-outer -> drill-inner (the legal order), then deliberately
// inner -> outer. Produces exactly one kRankInversion and, because both
// edge directions are now in the graph, one kOrderCycle.
void LockOrderInversionDrill();

// Writes a drill-owned shared word from two threads with no common lock
// held. Produces one kUnguardedWrite. The word itself is an atomic — the
// drill seeds the *declared-access* pattern the lockset check flags, not an
// actual torn write.
void UnguardedWriteDrill();

}  // namespace race
}  // namespace imk

#endif  // IMKASLR_SRC_RACE_DRILL_H_
