// Instrumented lock primitives. Every mutex in the tree (outside src/race/
// itself — tools/imk_lint enforces this) is one of these wrappers, declared
// with its rank from src/race/lock_ranks.h:
//
//   race::Mutex mutex_{race::LockRank::kTemplateCache};
//
// Without IMK_RACE_AUDIT the wrappers are plain std primitives — no rank
// member, no branches, zero cost. With it, every acquisition and release is
// reported to the Tracker, which maintains the per-thread held stack and
// the global lock-order graph (src/race/tracker.h).
//
// The wrappers satisfy the standard Lockable requirements, so std::lock_guard,
// std::unique_lock and std::shared_lock work unchanged. CondVar is
// std::condition_variable_any so its wait() re-lock cycles go through the
// instrumented Mutex and stay visible to the audit.
#ifndef IMKASLR_SRC_RACE_MUTEX_H_
#define IMKASLR_SRC_RACE_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "src/race/lock_ranks.h"
#ifdef IMK_RACE_AUDIT
#include "src/race/tracker.h"
#endif

namespace imk {
namespace race {

#ifdef IMK_RACE_AUDIT

class Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kUnranked) : rank_(rank) {}

  // For locks that live in arrays (FrameStore fault shards): default-construct
  // the array, then declare each element's rank once before first use.
  void set_rank(LockRank rank) { rank_ = rank; }
  LockRank rank() const { return rank_; }

  void lock() {
    // Report before blocking: a rank inversion must surface even if this
    // acquisition is the one that deadlocks.
    Tracker::Instance().OnAcquire(this, rank_);
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) {
      return false;
    }
    Tracker::Instance().OnAcquire(this, rank_);
    return true;
  }
  void unlock() {
    mu_.unlock();
    Tracker::Instance().OnRelease(this);
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

 private:
  std::mutex mu_;
  LockRank rank_;
};

class SharedMutex {
 public:
  explicit SharedMutex(LockRank rank = LockRank::kUnranked) : rank_(rank) {}

  void set_rank(LockRank rank) { rank_ = rank; }
  LockRank rank() const { return rank_; }

  void lock() {
    Tracker::Instance().OnAcquire(this, rank_);
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) {
      return false;
    }
    Tracker::Instance().OnAcquire(this, rank_);
    return true;
  }
  void unlock() {
    mu_.unlock();
    Tracker::Instance().OnRelease(this);
  }

  // Shared acquisitions obey the same ranking: readers nest inside the same
  // global order as writers, so they use the same hooks.
  void lock_shared() {
    Tracker::Instance().OnAcquire(this, rank_);
    mu_.lock_shared();
  }
  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) {
      return false;
    }
    Tracker::Instance().OnAcquire(this, rank_);
    return true;
  }
  void unlock_shared() {
    mu_.unlock_shared();
    Tracker::Instance().OnRelease(this);
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

 private:
  std::shared_mutex mu_;
  LockRank rank_;
};

using CondVar = std::condition_variable_any;

#else  // !IMK_RACE_AUDIT — zero-cost passthrough

class Mutex {
 public:
  explicit Mutex(LockRank = LockRank::kUnranked) {}
  void set_rank(LockRank) {}

  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

 private:
  std::mutex mu_;
};

class SharedMutex {
 public:
  explicit SharedMutex(LockRank = LockRank::kUnranked) {}
  void set_rank(LockRank) {}

  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }
  void lock_shared() { mu_.lock_shared(); }
  bool try_lock_shared() { return mu_.try_lock_shared(); }
  void unlock_shared() { mu_.unlock_shared(); }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

 private:
  std::shared_mutex mu_;
};

// condition_variable_any in both builds so wait(unique_lock<race::Mutex>)
// compiles identically; on libstdc++ the _any variant over a plain mutex
// costs one extra indirection, which is off every hot path here.
using CondVar = std::condition_variable_any;

#endif  // IMK_RACE_AUDIT

}  // namespace race
}  // namespace imk

#endif  // IMKASLR_SRC_RACE_MUTEX_H_
