#include "src/vmm/layout_pool.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/base/crc32.h"
#include "src/base/fault_injection.h"
#include "src/base/stopwatch.h"
#include "src/kernel/kconfig.h"
#include "src/trace/trace.h"

namespace imk {
namespace {

constexpr uint64_t kChunkBytes = ImageTemplateCache::kIntegrityChunkBytes;

std::vector<uint32_t> StampChunkCrcs(ByteSpan image) {
  std::vector<uint32_t> crcs;
  crcs.reserve((image.size() + kChunkBytes - 1) / kChunkBytes);
  for (uint64_t offset = 0; offset < image.size(); offset += kChunkBytes) {
    const uint64_t len = std::min(kChunkBytes, image.size() - offset);
    crcs.push_back(Crc32(image.subspan(offset, len)));
  }
  return crcs;
}

// True when `image` still matches its render-time chunk CRCs. kSampled
// probes the cursor-selected chunk; kFull re-hashes every chunk.
bool VerifyLayout(const RenderedLayout& layout, uint64_t cursor,
                  ImageTemplateCache::IntegrityMode mode) {
  const ByteSpan image(layout.image);
  if (layout.chunk_crcs.empty()) {
    return image.empty();
  }
  const auto check_chunk = [&](uint64_t index) {
    const uint64_t offset = index * kChunkBytes;
    const uint64_t len = std::min(kChunkBytes, image.size() - offset);
    return Crc32(image.subspan(offset, len)) == layout.chunk_crcs[index];
  };
  if (mode == ImageTemplateCache::IntegrityMode::kFull) {
    for (uint64_t i = 0; i < layout.chunk_crcs.size(); ++i) {
      if (!check_chunk(i)) {
        return false;
      }
    }
    return true;
  }
  return check_chunk(cursor % layout.chunk_crcs.size());
}

bool SameFgParams(const FgKaslrParams& a, const FgKaslrParams& b) {
  return a.kallsyms == b.kallsyms && a.fixup_orc == b.fixup_orc;
}

bool SameBootParams(const DirectBootParams& a, const DirectBootParams& b) {
  return a.requested == b.requested &&
         a.fgkaslr_disabled_cmdline == b.fgkaslr_disabled_cmdline &&
         SameFgParams(a.fg, b.fg) && a.protocol == b.protocol &&
         a.use_note_constants == b.use_note_constants && a.stack_slack == b.stack_slack;
}

}  // namespace

uint64_t LayoutPool::DeriveLayoutSeed(uint64_t base_seed, uint64_t sequence) {
  // splitmix64, like the supervisor's per-attempt derivation: independent
  // layouts, reproducible stream, never 0 (0 means "host entropy" elsewhere).
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (sequence + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return z != 0 ? z : 1;
}

LayoutPool::LayoutPool(std::shared_ptr<const ImageTemplate> tmpl, const RelocInfo& relocs,
                       const DirectBootParams& params, uint64_t guest_mem_size,
                       LayoutPoolOptions options)
    : options_(std::move(options)),
      params_(params),
      guest_mem_size_(guest_mem_size),
      relocs_(relocs) {
  std::lock_guard<race::Mutex> lock(mutex_);
  tmpl_ = std::move(tmpl);
}

LayoutPool::~LayoutPool() {
  std::unique_lock<race::Mutex> lock(mutex_);
  draining_ = true;
  idle_cv_.wait(lock, [&] { return tasks_outstanding_ == 0; });
}

void LayoutPool::WaitIdle() {
  std::unique_lock<race::Mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return tasks_outstanding_ == 0; });
}

LayoutPool::Stats LayoutPool::stats() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  Stats out = stats_;
  out.ready = static_cast<uint32_t>(ready_.size());
  out.pressured = pressured_;
  return out;
}

uint64_t LayoutPool::ReclaimMemory(uint64_t want_bytes) {
  // Governor ladder tier (governor mutex held, rank 30 < 45). Flushing the
  // newest-first keeps the oldest render for the next grab when only part of
  // the pool must go; a layout already grabbed is a VM's problem, not ours.
  std::lock_guard<race::Mutex> lock(mutex_);
  uint64_t released = 0;
  while (!ready_.empty() && released < want_bytes) {
    released += ready_.back()->image.size();
    ready_.pop_back();
    ++stats_.shed;
  }
  return released;
}

void LayoutPool::OnMemoryPressure(bool under_pressure) {
  std::lock_guard<race::Mutex> lock(mutex_);
  if (pressured_ == under_pressure) {
    return;
  }
  pressured_ = under_pressure;
  if (!under_pressure) {
    ScheduleRefillLocked();  // epoch closed: grow back toward depth
  }
}

bool LayoutPool::MatchesLocked(const std::shared_ptr<const ImageTemplate>& tmpl,
                               const DirectBootParams& params, uint64_t guest_mem_size) {
  if (tmpl == nullptr || tmpl_ == nullptr) {
    ++stats_.key_mismatches;
    return false;
  }
  if (!SameBootParams(params, params_) || guest_mem_size != guest_mem_size_) {
    ++stats_.key_mismatches;
    return false;
  }
  if (tmpl.get() == tmpl_.get()) {
    return true;
  }
  if (tmpl->crc32 != 0 && tmpl->crc32 == tmpl_->crc32 && tmpl->file_size == tmpl_->file_size) {
    // Same cache key, different object: the cache quarantined and rebuilt
    // the entry this pool rendered from. Anything rendered off the old
    // (possibly rotted) pristine bytes is suspect — flush it all and adopt
    // the fresh template; refill re-renders from it.
    ready_.clear();
    tmpl_ = tmpl;
    ++stats_.invalidations;
    return false;
  }
  // A different kernel entirely: not ours to serve (and not ours to flush).
  ++stats_.key_mismatches;
  return false;
}

void LayoutPool::ScheduleRefillLocked() {
  ThreadPool* pool = options_.refill_pool;
  if (pool == nullptr || pool->workers() <= 1 || draining_ || pressured_) {
    return;  // no background lanes (or a pressure epoch): Prefill-only
  }
  const uint32_t batch = std::max<uint32_t>(1, options_.refill_batch);
  while (ready_.size() + renders_inflight_ < options_.depth) {
    const uint32_t deficit =
        options_.depth - static_cast<uint32_t>(ready_.size()) - renders_inflight_;
    const uint32_t count = std::min(batch, deficit);
    renders_inflight_ += count;
    ++tasks_outstanding_;
    pool->Submit([this, count] { RefillTask(count); });
  }
}

void LayoutPool::RefillTask(uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    std::shared_ptr<const ImageTemplate> tmpl;
    uint64_t sequence = 0;
    {
      std::lock_guard<race::Mutex> lock(mutex_);
      if (draining_) {
        renders_inflight_ -= count - i;
        break;
      }
      tmpl = tmpl_;
      sequence = next_sequence_++;
    }
    Result<std::shared_ptr<RenderedLayout>> layout = Render(std::move(tmpl), sequence);
    if (layout.ok()) {
      PushRendered(std::move(*layout));
    } else {
      std::lock_guard<race::Mutex> lock(mutex_);
      --renders_inflight_;
      ++stats_.refill_errors;
    }
  }
  std::lock_guard<race::Mutex> lock(mutex_);
  --tasks_outstanding_;
  idle_cv_.notify_all();
}

Result<std::shared_ptr<RenderedLayout>> LayoutPool::Render(
    std::shared_ptr<const ImageTemplate> tmpl, uint64_t sequence) {
  // Models a failed background render (allocation failure, entropy outage);
  // the pool just stays shallower and launches fall back inline.
  IMK_FAULT_POINT("pool.refill");
  IMK_TRACE_SPAN("pool", "pool.render");
  Stopwatch timer;
  const ImageTemplate& t = *tmpl;
  if (t.mem_size == 0 || t.pristine.size() != t.mem_size) {
    return ParseError("layout pool: template has no loadable image");
  }
  auto layout = std::make_shared<RenderedLayout>();
  layout->sequence = sequence;
  layout->seed = DeriveLayoutSeed(options_.seed, sequence);
  layout->tmpl = tmpl;
  layout->image.assign(t.pristine.begin(), t.pristine.end());
  // The flat render replays the inline pipeline exactly — same constraint
  // assembly, same RNG consumption order (choose, then shuffle) — so a
  // pooled boot is bit-identical to an inline boot with the derived seed.
  LoadedImageView view(MutableByteSpan(layout->image.data(), layout->image.size()), t.link_base);
  Rng rng(layout->seed);
  KernelConstantsNote constants = DefaultKernelConstants();
  if (params_.use_note_constants && t.note_constants.has_value()) {
    constants = *t.note_constants;
  }
  OffsetConstraints constraints;
  constraints.image_mem_size = t.mem_size;
  constraints.guest_mem_size = guest_mem_size_;
  constraints.reserved_tail = params_.stack_slack;
  constraints.constants = constants;
  IMK_ASSIGN_OR_RETURN(layout->choice, ChooseRandomOffsets(constraints, rng));

  if (params_.requested == RandoMode::kFgKaslr && !params_.fgkaslr_disabled_cmdline) {
    if (!t.fg.has_value()) {
      return FailedPreconditionError(
          "layout pool: kernel has no per-function sections (not built with fgkaslr support)");
    }
    FgExecContext fg_context;
    fg_context.pristine = ByteSpan(t.pristine);
    IMK_ASSIGN_OR_RETURN(FgKaslrResult fg,
                         ShuffleFunctionsPreparsed(*t.fg, view, params_.fg, rng, fg_context));
    layout->fg = std::move(fg);
  }

  RelocApplyOptions reloc_options;
  if (layout->fg.has_value()) {
    IMK_ASSIGN_OR_RETURN(layout->reloc_stats,
                         ApplyRelocationsShuffled(view, relocs_, layout->choice.virt_slide,
                                                  layout->fg->map, reloc_options));
  } else {
    IMK_ASSIGN_OR_RETURN(
        layout->reloc_stats,
        ApplyRelocations(view, relocs_, layout->choice.virt_slide, reloc_options));
  }

  // Stamp first, corrupt after: an injected corruption lands on a stamped
  // image, so grab-time re-verification catches and quarantines it — the
  // exact path a real bit-flip between render and launch would take.
  layout->chunk_crcs = StampChunkCrcs(ByteSpan(layout->image));
  IMK_FAULT_CORRUPT("pool.render", layout->image.data(), layout->image.size());
  layout->render_ns = timer.ElapsedNs();
  layout->mem_charge = ScopedMemCharge(options_.accountant, layout->image.size());
  return layout;
}

void LayoutPool::PushRendered(std::shared_ptr<RenderedLayout> layout) {
  std::lock_guard<race::Mutex> lock(mutex_);
  --renders_inflight_;
  ++stats_.rendered;
  if (layout->tmpl.get() != tmpl_.get() || draining_) {
    // The pool flushed (template quarantined) or is shutting down while this
    // render was in flight; its layout would alias dead pristine bytes.
    ++stats_.stale_dropped;
    return;
  }
  if (ready_.size() < options_.depth) {
    ready_.push_back(std::move(layout));
  } else {
    ++stats_.stale_dropped;
  }
}

Status LayoutPool::Prefill(uint32_t target) {
  for (;;) {
    std::shared_ptr<const ImageTemplate> tmpl;
    uint64_t sequence = 0;
    {
      std::lock_guard<race::Mutex> lock(mutex_);
      const uint64_t want = std::min<uint64_t>(target, options_.depth);
      if (ready_.size() + renders_inflight_ >= want || draining_ || pressured_) {
        return OkStatus();
      }
      ++renders_inflight_;
      tmpl = tmpl_;
      sequence = next_sequence_++;
    }
    Result<std::shared_ptr<RenderedLayout>> layout = Render(std::move(tmpl), sequence);
    if (!layout.ok()) {
      std::lock_guard<race::Mutex> lock(mutex_);
      --renders_inflight_;
      ++stats_.refill_errors;
      return layout.status();
    }
    PushRendered(std::move(*layout));
  }
}

std::shared_ptr<const RenderedLayout> LayoutPool::TryGrab(
    const std::shared_ptr<const ImageTemplate>& tmpl, const DirectBootParams& params,
    uint64_t guest_mem_size) {
  for (;;) {
    std::shared_ptr<RenderedLayout> layout;
    uint64_t cursor = 0;
    {
      std::lock_guard<race::Mutex> lock(mutex_);
      if (!MatchesLocked(tmpl, params, guest_mem_size)) {
        ++stats_.misses;
        ScheduleRefillLocked();
        return nullptr;
      }
      if (ready_.empty()) {
        ++stats_.misses;
        ScheduleRefillLocked();
        return nullptr;
      }
      layout = std::move(ready_.front());
      ready_.pop_front();
      cursor = ++verify_cursor_;
    }
    // Verification runs outside the lock: the popped layout is exclusively
    // ours, and a full re-hash must not stall concurrent grabs.
    if (VerifyLayout(*layout, cursor, options_.integrity)) {
      std::lock_guard<race::Mutex> lock(mutex_);
      ++stats_.hits;
      ScheduleRefillLocked();
      return layout;  // one-shot: this sequence index is never served again
    }
    std::lock_guard<race::Mutex> lock(mutex_);
    ++stats_.quarantined;
    IMK_TRACE_INSTANT("pool", "pool.quarantine");
    // Loop: try the next ready layout (or miss out to inline fallback).
  }
}

}  // namespace imk
