#include "src/vmm/boot_storm.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "src/base/align.h"
#include "src/base/fault_injection.h"
#include "src/base/stopwatch.h"
#include "src/race/drill.h"
#include "src/race/mutex.h"
#include "src/race/tracker.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/vmm/device_model.h"
#include "src/vmm/layout_pool.h"
#include "src/vmm/loader.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace {

struct BootSample {
  uint64_t latency_ns = 0;
  uint64_t resident_bytes = 0;
  uint64_t image_dirty_frames = 0;
  uint64_t image_shared_frames = 0;
  // This VM's guest-run slice of the decode-cache counters (zero when the
  // block engine is off or the lane is launch-only).
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t block_cache_invalidations = 0;
  uint64_t blocks_shared = 0;
  uint64_t blocks_private = 0;
  // False for a supervised VM that exhausted its attempts: the failure is
  // tallied in OutcomeTally and the sample excluded from the latency/density
  // summaries (a never-booted VM has no meaningful boot latency).
  bool booted = true;
  // This VM's launch was served from the layout pool (pooled storms only).
  bool pool_hit = false;
  // Layout identity for the uniqueness check (options.keep_layouts).
  LayoutIdentity layout;
};

// Frame-state census of the kernel-image window after boot: how much of the
// image this VM privately materialized vs still aliases to the template.
void CensusImageFrames(const FrameStore& frames, uint64_t phys_base, uint64_t image_frames,
                       BootSample* sample) {
  constexpr uint64_t kFrame = FrameStore::kFrameBytes;
  const uint64_t first = AlignDown(phys_base, kFrame) / kFrame;
  for (uint64_t f = 0; f < image_frames; ++f) {
    switch (frames.StateOf(first + f)) {
      case FrameStore::FrameState::kDirty:
        ++sample->image_dirty_frames;
        break;
      case FrameStore::FrameState::kShared:
        ++sample->image_shared_frames;
        break;
      case FrameStore::FrameState::kZero:
        break;
    }
  }
}

void RecordGuestBlockCache(const ExecStats& guest, BootSample* sample) {
  sample->block_cache_hits = guest.block_cache_hits;
  sample->block_cache_misses = guest.block_cache_misses;
  sample->block_cache_invalidations = guest.block_cache_invalidations;
  sample->blocks_shared = guest.blocks_shared;
  sample->blocks_private = guest.blocks_private;
}

// Every measured launch lands in exactly one of these buckets.
enum class LaunchBucket { kOkFirstTry, kOkRetried, kOkDegraded, kFailed, kRejectedMem };

// Process-wide fleet counters, registered once. The storm's per-run tally
// and these cumulative counters are bumped by the same RecordLaunchOutcome
// call, so the two views can never drift.
struct StormMeters {
  static StormMeters& Get() {
    static StormMeters* meters = new StormMeters();
    return *meters;
  }
  trace::Counter* bucket_counter(LaunchBucket bucket) {
    switch (bucket) {
      case LaunchBucket::kOkFirstTry:
        return ok_first_try;
      case LaunchBucket::kOkRetried:
        return ok_retried;
      case LaunchBucket::kOkDegraded:
        return ok_degraded;
      case LaunchBucket::kFailed:
        return failed;
      case LaunchBucket::kRejectedMem:
        return rejected_mem;
    }
    return failed;
  }
  trace::Counter* ok_first_try;
  trace::Counter* ok_retried;
  trace::Counter* ok_degraded;
  trace::Counter* failed;
  trace::Counter* rejected_mem;
  trace::Counter* attempts;
  trace::Counter* watchdog_trips;
  trace::Counter* mem_rejected_attempts;

 private:
  StormMeters() {
    auto& reg = trace::MetricsRegistry::Global();
    ok_first_try = reg.counter("imk_storm_ok_first_try_total",
                               "launches that booted on the first attempt");
    ok_retried = reg.counter("imk_storm_ok_retried_total",
                             "launches that booted at the requested level after retries");
    ok_degraded = reg.counter("imk_storm_ok_degraded_total",
                              "launches that booted below the requested level");
    failed = reg.counter("imk_storm_failed_total",
                         "launches that exhausted every attempt the policy allowed");
    rejected_mem = reg.counter("imk_storm_rejected_mem_total",
                               "launches whose every attempt bounced at the hard watermark");
    attempts = reg.counter("imk_storm_attempts_total", "boot attempts across all launches");
    watchdog_trips = reg.counter("imk_storm_watchdog_trips_total", "watchdog-cancelled attempts");
    mem_rejected_attempts = reg.counter("imk_storm_mem_rejected_attempts_total",
                                        "attempt-level hard-watermark bounces");
  }
};

// The ONLY writer of the per-storm outcome buckets (callers hold the tally
// lock). RunBootStorm checks accounted() == launches once, at the end;
// every tally site funnels through here so that check covers them all.
void RecordLaunchOutcome(StormStats::OutcomeTally* tally, LaunchBucket bucket,
                         uint32_t launches, uint32_t attempts, uint32_t watchdog_trips,
                         uint32_t mem_rejected_attempts) {
  switch (bucket) {
    case LaunchBucket::kOkFirstTry:
      tally->ok_first_try += launches;
      break;
    case LaunchBucket::kOkRetried:
      tally->ok_retried += launches;
      break;
    case LaunchBucket::kOkDegraded:
      tally->ok_degraded += launches;
      break;
    case LaunchBucket::kFailed:
      tally->failed += launches;
      break;
    case LaunchBucket::kRejectedMem:
      tally->rejected_mem += launches;
      break;
  }
  tally->attempts_total += attempts;
  tally->watchdog_trips += watchdog_trips;
  tally->mem_rejected_attempts += mem_rejected_attempts;
  StormMeters& meters = StormMeters::Get();
  meters.bucket_counter(bucket)->Inc(launches);
  meters.attempts->Inc(attempts);
  meters.watchdog_trips->Inc(watchdog_trips);
  meters.mem_rejected_attempts->Inc(mem_rejected_attempts);
}

}  // namespace

Result<StormStats> RunBootStorm(ByteSpan vmlinux, ByteSpan relocs_blob,
                                const StormOptions& options) {
  if (options.vms == 0 || options.threads == 0) {
    return InvalidArgumentError("storm needs at least one VM and one thread");
  }
  if (options.rando != RandoMode::kNone && relocs_blob.empty()) {
    return FailedPreconditionError("randomized storm needs relocation info (Figure 8)");
  }
  const uint32_t threads = std::min(options.threads, options.vms);
  // Churn: each VM slot launches-and-halts `cycles` times; every measured
  // launch gets its own seed (seed_base + launch index), so layouts stay
  // unique across cycles too.
  const uint32_t cycles = std::max(1u, options.churn_cycles);
  const uint32_t total_launches = options.vms * cycles;

  // Fleet memory governor. Declared before every cache so it is destroyed
  // LAST: cache teardown releases its charges into live adapters. Hooks are
  // unregistered by `hook_guard` below before any cache dies.
  std::unique_ptr<MemGovernor> local_governor;
  MemGovernor* governor = options.governor;
  if (governor == nullptr && options.mem_budget_bytes > 0) {
    MemGovernorOptions governor_options;
    governor_options.budget_bytes = options.mem_budget_bytes;
    governor_options.soft_pct = options.mem_soft_pct;
    local_governor = std::make_unique<MemGovernor>(governor_options);
    governor = local_governor.get();
  }

  ImageTemplateCache local_cache;
  ImageTemplateCache& cache = options.cache != nullptr ? *options.cache : local_cache;
  const uint64_t hits_before = cache.hits();
  const uint64_t misses_before = cache.misses();
  const uint64_t quarantined_before = cache.quarantined();
  const uint64_t fires_before = FaultInjector::Instance().fires_total();

  // The page-cache model mutates per-read state, so each worker owns a
  // Storage; the bytes are identical, and the template cache recognizes them
  // by content hash regardless of which copy a lookup reads from.
  std::vector<std::unique_ptr<Storage>> storages;
  storages.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    auto storage = std::make_unique<Storage>();
    storage->Put("vmlinux", Bytes(vmlinux.begin(), vmlinux.end()));
    if (!relocs_blob.empty()) {
      storage->Put("vmlinux.relocs", Bytes(relocs_blob.begin(), relocs_blob.end()));
    }
    storages.push_back(std::move(storage));
  }

  // Launch-only boots bypass Storage and read the caller's span directly
  // (stable address -> the cache's span memo short-circuits the hash).
  RelocInfo relocs;
  const bool pool_enabled = options.layout_pool_depth > 0 && options.rando != RandoMode::kNone;
  if ((options.launch_only || pool_enabled) && !relocs_blob.empty()) {
    IMK_ASSIGN_OR_RETURN(relocs, ParseRelocs(relocs_blob));
  }

  // Layout pool, built AFTER the warm-up wave (see below); declared here so
  // the lanes can capture it, and declared after the refill executor so the
  // pool (which waits out in-flight renders) is destroyed first.
  std::optional<ThreadPool> refill_pool;
  std::unique_ptr<LayoutPool> layout_pool;

  // Storm-wide decode cache: every VM's block engine grabs blocks decoded
  // from shared template frames here instead of re-decoding them. Created
  // before the warm-up wave — the warm cache IS the fleet steady state the
  // measured window models, exactly like the template cache above.
  std::unique_ptr<SharedBlockCache> shared_blocks;
  if (options.use_block_cache && options.share_block_cache && !options.launch_only) {
    shared_blocks = std::make_unique<SharedBlockCache>();
  }

  // Reclamation-tier registration, torn down (in this guard's dtor, which
  // runs before any cache above it dies) so the governor's ladder never
  // walks into a destroyed cache. Tier order is the issue's ladder: shed the
  // cheapest-to-rebuild state first (pool renders), shared decode state
  // second, template images last.
  struct HookGuard {
    MemGovernor* governor = nullptr;
    std::vector<Reclaimable*> hooks;
    void Register(Reclaimable* hook, uint32_t priority) {
      if (governor == nullptr || hook == nullptr) {
        return;
      }
      governor->RegisterReclaimable(hook, priority);
      hooks.push_back(hook);
    }
    ~HookGuard() {
      if (governor == nullptr) {
        return;
      }
      for (Reclaimable* hook : hooks) {
        governor->UnregisterReclaimable(hook);
      }
    }
  } hook_guard;
  hook_guard.governor = governor;
  if (governor != nullptr) {
    cache.set_accountant(governor->shared_accountant(MemCategory::kTemplateImages));
    hook_guard.Register(&cache, /*priority=*/2);
    if (shared_blocks != nullptr) {
      shared_blocks->set_accountant(governor->shared_accountant(MemCategory::kDecodeTables));
      hook_guard.Register(shared_blocks.get(), /*priority=*/1);
    }
  }

  const auto make_config = [&](uint64_t seed) {
    MicroVmConfig config;
    config.mem_size_bytes = options.mem_size_bytes;
    config.kernel_image = "vmlinux";
    if (!relocs_blob.empty()) {
      config.relocs_image = "vmlinux.relocs";
    }
    config.rando = options.rando;
    config.seed = seed;
    config.load_threads = options.load_threads;
    config.use_template_cache = options.use_template_cache;
    config.template_cache = &cache;
    config.use_block_cache = options.use_block_cache;
    config.shared_block_cache = shared_blocks.get();
    config.mem_governor = governor;
    // Null during warm-up (the pool is built from the warmed cache); the
    // measured window shares one pool across every VM.
    config.layout_pool = layout_pool.get();
    return config;
  };

  race::Mutex error_mutex{race::LockRank::kStormError};
  Status first_error = OkStatus();
  const auto record_error = [&](Status status) {
    std::lock_guard<race::Mutex> lock(error_mutex);
    IMK_RACE_SHARED_WRITE("storm.first_error", &first_error, 0, kStormError);
    if (first_error.ok()) {
      first_error = std::move(status);
    }
  };

  StormStats stats;
  stats.vms = options.vms;
  stats.threads = threads;
  stats.launches = total_launches;
  std::vector<BootSample> samples(total_launches);
  if (options.keep_kernel_regions) {
    stats.kernel_regions.resize(total_launches);
  }
  std::atomic<uint64_t> image_frames{0};
  std::atomic<uint64_t> image_bytes{0};

  // Launch lane: the monitor-side launch pipeline only (what the host pays
  // per VM), straight through DirectLoadKernel against a fresh CoW memory.
  const auto launch_one = [&](uint64_t seed, BootSample* sample,
                              Bytes* kernel_region) -> Status {
    GuestMemory memory(options.mem_size_bytes);
    if (governor != nullptr) {
      // Launch-only VMs bypass MicroVm, so charge their dirty frames here.
      memory.frames().set_accountant(governor->shared_accountant(MemCategory::kGuestFrames));
    }
    Rng rng(seed);
    DirectBootParams params;
    params.requested = options.rando;
    DirectLoadResources resources;
    if (options.use_template_cache) {
      resources.cache = &cache;
    }
    resources.layout_pool = layout_pool.get();
    const RelocInfo* relocs_ptr = relocs.empty() ? nullptr : &relocs;
    Stopwatch timer;
    IMK_ASSIGN_OR_RETURN(LoadedKernel loaded,
                         DirectLoadKernel(memory, vmlinux, relocs_ptr, params, rng, resources));
    // Stored from warm-up boots too: the admission gate sizes a launch by
    // the last observed image span.
    image_frames.store(loaded.mem.image_frames, std::memory_order_relaxed);
    image_bytes.store(loaded.mem.image_frames * FrameStore::kFrameBytes,
                      std::memory_order_relaxed);
    if (sample != nullptr) {
      sample->latency_ns = timer.ElapsedNs();
      sample->resident_bytes = memory.dirty_bytes();
      sample->pool_hit = loaded.layout_pool_hit;
      sample->layout.virt_slide = loaded.choice.virt_slide;
      sample->layout.phys_load_addr = loaded.choice.phys_load_addr;
      sample->layout.fg_digest =
          loaded.fg.has_value() ? loaded.fg->map.PermutationDigest() : 0;
      CensusImageFrames(memory.frames(), loaded.choice.phys_load_addr,
                        loaded.mem.image_frames, sample);
    }
    if (kernel_region != nullptr) {
      IMK_ASSIGN_OR_RETURN(
          *kernel_region, memory.CopyRange(loaded.choice.phys_load_addr, loaded.image_mem_size));
    }
    return OkStatus();
  };

  // Full lane: Boot() through the monitor, guest init included, checksum
  // verified — the correctness and density view of the same storm.
  const auto boot_one = [&](Storage& storage, uint64_t seed, BootSample* sample,
                            Bytes* kernel_region) -> Status {
    if (options.launch_only) {
      return launch_one(seed, sample, kernel_region);
    }
    MicroVm vm(storage, make_config(seed));
    Stopwatch timer;
    IMK_ASSIGN_OR_RETURN(BootReport report, vm.Boot());
    const uint64_t latency_ns = timer.ElapsedNs();
    if (!report.init_done) {
      return InternalError("storm boot did not reach init completion");
    }
    if (options.expected_checksum != 0 && report.init_checksum != options.expected_checksum) {
      return InternalError("storm boot checksum mismatch (nondeterministic layout?)");
    }
    image_frames.store(report.mem.image_frames, std::memory_order_relaxed);
    image_bytes.store(report.mem.image_frames * FrameStore::kFrameBytes,
                      std::memory_order_relaxed);
    if (sample != nullptr) {
      sample->latency_ns = latency_ns;
      sample->resident_bytes = vm.memory().dirty_bytes();
      sample->pool_hit = report.layout_pool_hit;
      sample->layout.virt_slide = report.choice.virt_slide;
      sample->layout.phys_load_addr = report.choice.phys_load_addr;
      sample->layout.fg_digest = report.fg_digest;
      RecordGuestBlockCache(report.guest_stats, sample);
      CensusImageFrames(vm.memory().frames(), report.choice.phys_load_addr,
                        report.mem.image_frames, sample);
    }
    if (kernel_region != nullptr) {
      IMK_ASSIGN_OR_RETURN(*kernel_region, vm.KernelRegion());
    }
    return OkStatus();
  };

  // Supervised lane: per-VM failures become tallies, not storm aborts.
  race::Mutex tally_mutex{race::LockRank::kStormTally};
  const auto supervise_one = [&](Storage& storage, uint64_t seed, BootSample* sample,
                                 Bytes* kernel_region, bool measured) -> Status {
    SupervisorOptions sup;
    sup.max_retries = options.max_retries;
    sup.watchdog_wall_ms = options.watchdog_wall_ms;
    sup.watchdog_instructions = options.watchdog_instructions;
    sup.policy = options.degrade;
    sup.admit_wait_ms = options.admit_wait_ms;
    if (options.expected_checksum != 0) {
      sup.expected_checksum = options.expected_checksum;
    }
    BootSupervisor supervisor(storage, make_config(seed), sup);
    Stopwatch timer;
    BootOutcome outcome = supervisor.Run();
    const uint64_t latency_ns = timer.ElapsedNs();
    if (measured) {
      LaunchBucket bucket;
      if (!outcome.ok) {
        // A launch whose EVERY attempt bounced at the hard watermark never
        // got to boot at all: that is backpressure, not a boot failure.
        bucket = outcome.attempts > 0 && outcome.mem_rejections == outcome.attempts
                     ? LaunchBucket::kRejectedMem
                     : LaunchBucket::kFailed;
      } else if (outcome.degradations > 0) {
        bucket = LaunchBucket::kOkDegraded;
      } else if (outcome.attempts > 1) {
        bucket = LaunchBucket::kOkRetried;
      } else {
        bucket = LaunchBucket::kOkFirstTry;
      }
      std::lock_guard<race::Mutex> lock(tally_mutex);
      IMK_RACE_SHARED_WRITE("supervisor.outcomes", &stats, 0, kStormTally);
      RecordLaunchOutcome(&stats.outcomes, bucket, 1, outcome.attempts,
                          outcome.watchdog_trips, outcome.mem_rejections);
    }
    if (!outcome.ok) {
      if (sample != nullptr) {
        sample->booted = false;
      }
      return OkStatus();  // counted; the storm carries on
    }
    MicroVm& vm = *supervisor.vm();
    const BootReport& report = *outcome.report;
    image_frames.store(report.mem.image_frames, std::memory_order_relaxed);
    image_bytes.store(report.mem.image_frames * FrameStore::kFrameBytes,
                      std::memory_order_relaxed);
    if (sample != nullptr) {
      sample->latency_ns = latency_ns;
      sample->resident_bytes = vm.memory().dirty_bytes();
      sample->pool_hit = report.layout_pool_hit;
      sample->layout.virt_slide = report.choice.virt_slide;
      sample->layout.phys_load_addr = report.choice.phys_load_addr;
      sample->layout.fg_digest = report.fg_digest;
      RecordGuestBlockCache(report.guest_stats, sample);
      CensusImageFrames(vm.memory().frames(), report.choice.phys_load_addr,
                        report.mem.image_frames, sample);
    }
    if (kernel_region != nullptr) {
      IMK_ASSIGN_OR_RETURN(*kernel_region, vm.KernelRegion());
    }
    return OkStatus();
  };
  const bool supervise = options.supervise && !options.launch_only;

  // ---- warm-up: prime the template cache and page-cache models ----
  // The first wave deliberately races every worker into the same cache key,
  // exercising the single-flight build; nothing from this phase is measured.
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (uint32_t w = 0; w < options.warmup_per_thread; ++w) {
          const uint64_t seed = options.seed_base + total_launches +
                                static_cast<uint64_t>(t) * options.warmup_per_thread + w;
          Status status = supervise
                              ? supervise_one(*storages[t], seed, nullptr, nullptr,
                                              /*measured=*/false)
                              : boot_one(*storages[t], seed, nullptr, nullptr);
          if (!status.ok()) {
            record_error(std::move(status));
            return;
          }
        }
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    if (!first_error.ok()) {
      return first_error;
    }
  }

  // ---- layout pool: render ahead of the measured window ----
  // Built from the now-warm cache entry so the pool and every launch share
  // one template identity (quarantine one -> flush the other). Prefilled to
  // depth synchronously: the measured window starts with a full pool, and
  // every render observed after `pool_before` overlapped the storm itself.
  LayoutPool::Stats pool_before;
  if (pool_enabled) {
    TemplateOptions template_options;  // storms carry sidecar relocs, never ELF-extracted
    IMK_ASSIGN_OR_RETURN(std::shared_ptr<const ImageTemplate> tmpl,
                         cache.GetOrBuild(vmlinux, template_options));
    DirectBootParams pool_params;
    pool_params.requested = options.rando;
    uint64_t guest_mem = options.mem_size_bytes;
    if (!options.launch_only) {
      // Full-lane boots bound the offset chooser by the device model's RAM
      // reservation; probe it on scratch memory so the pool key matches.
      GuestMemory scratch(options.mem_size_bytes);
      IMK_ASSIGN_OR_RETURN(DeviceModel probe,
                           DeviceModel::Create(scratch, DeviceModelConfig::Firecracker()));
      guest_mem = probe.reserved_floor_phys();
      pool_params.usable_mem_limit = guest_mem;
    }
    LayoutPoolOptions pool_options;
    pool_options.depth = options.layout_pool_depth;
    pool_options.refill_batch = options.layout_pool_refill_batch;
    pool_options.seed = options.seed_base;
    if (governor != nullptr) {
      pool_options.accountant = governor->shared_accountant(MemCategory::kLayoutRenders);
    }
    refill_pool.emplace(2);
    pool_options.refill_pool = &*refill_pool;
    layout_pool =
        std::make_unique<LayoutPool>(tmpl, relocs, pool_params, guest_mem, pool_options);
    // Cheapest tier to rebuild -> first to shed.
    hook_guard.Register(layout_pool.get(), /*priority=*/0);
    // A prefill error (pool.refill:error drills this) just starts the pool
    // shallower: launches fall back inline, the miss tally records it.
    (void)layout_pool->Prefill(options.layout_pool_depth);
    layout_pool->WaitIdle();
    pool_before = layout_pool->stats();
  }

  // ---- the storm ----
  std::atomic<uint32_t> next{0};
  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (;;) {
        const uint32_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total_launches) {
          return;
        }
        if (FaultInjector::armed()) {
          // Audit self-test triggers: an error-flavor rule on these points
          // fires the corresponding known-bad locking pattern inside the
          // storm, so "the detector detects" is itself drillable under load
          // (scripts/ci_check.sh race-drill stage). The storm result is
          // unaffected — only the race report grows findings.
          if (!FaultInjector::Instance().Check("race.order_drill").ok()) {
            race::LockOrderInversionDrill();
          }
          if (!FaultInjector::Instance().Check("race.lockset_drill").ok()) {
            race::UnguardedWriteDrill();
          }
        }
        // Every event this launch emits — loader stages, pool grabs, rung
        // spans, governor ladder runs — carries the launch index as its VM id.
        IMK_TRACE_VM(i);
        IMK_TRACE_SPAN("storm", "storm.launch");
        Bytes* region = options.keep_kernel_regions ? &stats.kernel_regions[i] : nullptr;
        if (governor != nullptr && !supervise) {
          // Unsupervised admission: size the launch by the last observed
          // image span and wait out the hard watermark; a bounce is an
          // accounted launch that never booted, not a storm abort.
          const uint64_t need = image_bytes.load(std::memory_order_relaxed);
          if (!governor->Admit(need, options.admit_wait_ms)) {
            samples[i].booted = false;
            std::lock_guard<race::Mutex> lock(tally_mutex);
            IMK_RACE_SHARED_WRITE("supervisor.outcomes", &stats, 0, kStormTally);
            RecordLaunchOutcome(&stats.outcomes, LaunchBucket::kRejectedMem,
                                /*launches=*/1, /*attempts=*/1, /*watchdog_trips=*/0,
                                /*mem_rejected_attempts=*/1);
            continue;
          }
        }
        Status status = supervise
                            ? supervise_one(*storages[t], options.seed_base + i, &samples[i],
                                            region, /*measured=*/true)
                            : boot_one(*storages[t], options.seed_base + i, &samples[i], region);
        if (!status.ok()) {
          record_error(std::move(status));
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  stats.wall_ns = wall.ElapsedNs();
  if (!first_error.ok()) {
    return first_error;
  }

  for (const BootSample& sample : samples) {
    if (!sample.booted) {
      continue;
    }
    stats.boot_ms.Add(static_cast<double>(sample.latency_ns) / 1e6);
    stats.resident_mb.Add(static_cast<double>(sample.resident_bytes) / (1024.0 * 1024.0));
    stats.image_dirty_frames.Add(static_cast<double>(sample.image_dirty_frames));
    stats.image_shared_frames.Add(static_cast<double>(sample.image_shared_frames));
    if (pool_enabled) {
      sample.pool_hit ? ++stats.pool_hits : ++stats.pool_misses;
    }
    stats.block_cache_hits += sample.block_cache_hits;
    stats.block_cache_misses += sample.block_cache_misses;
    stats.block_cache_invalidations += sample.block_cache_invalidations;
    stats.blocks_shared += sample.blocks_shared;
    stats.blocks_private += sample.blocks_private;
    if (options.keep_layouts) {
      stats.layouts.push_back(sample.layout);
    }
  }
  if (shared_blocks != nullptr) {
    const SharedBlockCache::Stats shared_stats = shared_blocks->stats();
    stats.shared_blocks_resident = shared_stats.blocks;
    stats.shared_block_hits = shared_stats.hits;
    stats.shared_block_misses = shared_stats.misses;
  }
  if (layout_pool != nullptr) {
    layout_pool->WaitIdle();
    const LayoutPool::Stats pool_after = layout_pool->stats();
    stats.pool_rendered_during = pool_after.rendered - pool_before.rendered;
    stats.pool_refill_errors = pool_after.refill_errors - pool_before.refill_errors;
    stats.pool_quarantined = pool_after.quarantined - pool_before.quarantined;
    stats.pool_shed = pool_after.shed - pool_before.shed;
  }
  stats.image_frames = image_frames.load(std::memory_order_relaxed);
  stats.image_bytes = image_bytes.load(std::memory_order_relaxed);
  stats.cache_hits = cache.hits() - hits_before;
  stats.cache_misses = cache.misses() - misses_before;
  stats.outcomes.cache_quarantines = cache.quarantined() - quarantined_before;
  stats.outcomes.faults_injected = FaultInjector::Instance().fires_total() - fires_before;
  if (!supervise) {
    // Unsupervised storms abort on the first boot failure, so reaching here
    // means every ADMITTED launch booted on its first (and only) attempt;
    // the remainder bounced at the governor's hard watermark (already
    // recorded launch-by-launch above).
    const uint32_t admitted = total_launches - stats.outcomes.rejected_mem;
    RecordLaunchOutcome(&stats.outcomes, LaunchBucket::kOkFirstTry, admitted,
                        /*attempts=*/admitted, /*watchdog_trips=*/0,
                        /*mem_rejected_attempts=*/0);
  }
  // The accounting invariant, checked in ONE place for every lane: each
  // measured launch landed in exactly one outcome bucket. Tests and tools
  // can rely on it instead of re-deriving the sum.
  if (stats.outcomes.accounted() != stats.launches) {
    return InternalError("storm outcome accounting drift: accounted() != launches");
  }
  if (governor != nullptr) {
    // Captured while every cache is still alive: current_bytes is the
    // steady-state residency, high_water the storm's peak.
    stats.mem = governor->stats();
  }
  return stats;
}

}  // namespace imk
