#include "src/vmm/firmware.h"

#include "src/isa/assembler.h"
#include "src/isa/interpreter.h"

namespace imk {

Result<FirmwareReport> RunFirmwarePost(GuestMemory& memory, uint64_t work_iterations) {
  // Assemble the POST program at its physical (identity-mapped) address.
  Assembler assembler(kFirmwarePhys);

  // 1. Zero the BDA/EBDA legacy area [0x400, 0x9fc00) in page steps.
  assembler.LoadI(1, 0x400);
  assembler.LoadI(2, 0x9fc00);
  assembler.LoadI(3, 0);
  {
    auto loop = assembler.NewLabel();
    auto body = assembler.NewLabel();
    auto done = assembler.NewLabel();
    assembler.Bind(loop);
    assembler.Jlt(1, 2, body);
    assembler.Jmp(done);
    assembler.Bind(body);
    assembler.St64(1, 3, 0);
    assembler.AddI(1, 4096);
    assembler.Jmp(loop);
    assembler.Bind(done);
  }

  // 2. Table-build work (interrupt vectors, SMBIOS/ACPI analogues): a store
  // cascade over a small window, repeated `work_iterations` times.
  assembler.LoadI(4, work_iterations);
  {
    auto outer = assembler.NewLabel();
    auto outer_done = assembler.NewLabel();
    assembler.Bind(outer);
    assembler.Jz(4, outer_done);
    assembler.LoadI(5, 0x1000);
    assembler.LoadI(6, 0x2000);
    auto inner = assembler.NewLabel();
    auto inner_body = assembler.NewLabel();
    auto inner_done = assembler.NewLabel();
    assembler.Bind(inner);
    assembler.Jlt(5, 6, inner_body);
    assembler.Jmp(inner_done);
    assembler.Bind(inner_body);
    assembler.St64(5, 4, 0);
    assembler.AddI(5, 64);
    assembler.Jmp(inner);
    assembler.Bind(inner_done);
    assembler.AddI(4, -1);
    assembler.Jmp(outer);
    assembler.Bind(outer_done);
  }

  // 3. Completion signature.
  assembler.LoadI(7, 0x9fc00);
  assembler.LoadI(8, 0x424950534f455321ull);  // "!SEOSPIB" — POST done
  assembler.St64(7, 8, 0);
  assembler.Halt();

  Bytes code = assembler.TakeCode();
  IMK_RETURN_IF_ERROR(memory.Write(kFirmwarePhys, ByteSpan(code)));

  // Identity map over the low megabyte + a firmware stack just above it.
  LinearMap identity;
  identity.virt_start = 0;
  identity.phys_start = 0;
  identity.size = 2ull << 20;
  Interpreter interpreter(memory.frames(), identity);
  IMK_ASSIGN_OR_RETURN(RunResult run,
                       interpreter.Run(kFirmwarePhys, (2ull << 20) - 16, 1ull << 28));
  if (run.reason != StopReason::kHalt) {
    return InternalError("firmware POST did not complete");
  }
  FirmwareReport report;
  report.instructions = run.stats.instructions;
  return report;
}

}  // namespace imk
