#include "src/vmm/vcpu.h"

#include "src/base/fault_injection.h"
#include "src/base/stopwatch.h"
#include "src/isa/isa.h"

namespace imk {

Vcpu::Vcpu(GuestMemory& memory, LinearMap kernel_map, LinearMap direct_map)
    : memory_(memory), kernel_map_(kernel_map), interpreter_(memory.frames(), kernel_map) {
  interpreter_.set_secondary_map(direct_map);
  interpreter_.set_port_handler(
      [this](uint16_t port, bool is_write, uint64_t value) -> Result<uint64_t> {
        return HandlePort(port, is_write, value);
      });
}

Status Vcpu::HandleSetupTables(uint64_t descriptor_vaddr) {
  // The descriptor lives in guest memory at a (relocated) kernel vaddr.
  if (!kernel_map_.Contains(descriptor_vaddr) ||
      !kernel_map_.Contains(descriptor_vaddr + kTablesDescriptorSize - 1)) {
    return GuestFaultError("tables descriptor outside kernel mapping");
  }
  uint8_t raw[kTablesDescriptorSize];
  IMK_RETURN_IF_ERROR(memory_.Read(kernel_map_.ToPhys(descriptor_vaddr),
                                   MutableByteSpan(raw, kTablesDescriptorSize)));
  const uint64_t text_base = LoadLe64(raw + 0);
  const uint64_t ex_vaddr = LoadLe64(raw + 8);
  const uint64_t ex_count = LoadLe64(raw + 16);
  interpreter_.SetExceptionTable(ex_vaddr, ex_count, text_base);
  return OkStatus();
}

Result<uint64_t> Vcpu::HandlePort(uint16_t port, bool is_write, uint64_t value) {
  if (!is_write) {
    return UnsupportedError("IN from unknown port");
  }
  switch (port) {
    case kPortTimestamp:
      outcome_.markers.push_back({value, MonotonicNowNs()});
      return 0;
    case kPortConsole:
      outcome_.console.push_back(static_cast<char>(value));
      return 0;
    case kPortSetupTables:
      IMK_RETURN_IF_ERROR(HandleSetupTables(value));
      return 0;
    case kPortKallsymsTouch:
      if (!kallsyms_touched_) {
        kallsyms_touched_ = true;
        if (kallsyms_hook_) {
          IMK_RETURN_IF_ERROR(kallsyms_hook_());
        }
      }
      return 0;
    case kPortInitDone:
      outcome_.init_done = true;
      outcome_.init_checksum = value;
      outcome_.markers.push_back({0xd04e, MonotonicNowNs()});
      return 0;
    case kPortTestValue:
      outcome_.test_value = value;
      return 0;
    default:
      return UnsupportedError("OUT to unknown port");
  }
}

Result<VcpuOutcome> Vcpu::Run(uint64_t entry, uint64_t stack_top, uint64_t r1, uint64_t r2,
                              uint64_t r3, uint64_t max_instructions) {
  // Stuck-vCPU drill: a delay rule here models a guest wedged before its
  // first instruction (the schedule the wall-clock watchdog exists for); an
  // error rule models the KVM_RUN ioctl itself failing.
  IMK_FAULT_POINT("vcpu.enter");
  outcome_ = VcpuOutcome{};
  interpreter_.set_reg(1, r1);
  interpreter_.set_reg(2, r2);
  interpreter_.set_reg(3, r3);
  IMK_ASSIGN_OR_RETURN(outcome_.run, interpreter_.Run(entry, stack_top, max_instructions));
  outcome_.r0 = interpreter_.reg(0);
  return std::move(outcome_);
}

}  // namespace imk
