// Boot timeline: the phase breakdown of Figures 4, 5, 6, and 9.
//
// Measured nanoseconds are real host wall-clock time of actually-performed
// work; modeled nanoseconds come from the storage model (cold-cache I/O).
// Benches report both so the substitution stays visible.
#ifndef IMKASLR_SRC_VMM_BOOT_TIMELINE_H_
#define IMKASLR_SRC_VMM_BOOT_TIMELINE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace imk {

// The paper's phase buckets (§5.1 "Testing methodology").
enum class BootPhase {
  kInMonitor = 0,       // VMM work before entering guest context
  kBootstrapSetup = 1,  // bootstrap loader work excluding decompression
  kDecompression = 2,   // kernel decompression (incl. the none-codec copy)
  kLinuxBoot = 3,       // guest kernel entry .. init process
};
inline constexpr int kNumBootPhases = 4;

const char* BootPhaseName(BootPhase phase);

class BootTimeline {
 public:
  void AddMeasured(BootPhase phase, uint64_t ns) {
    measured_[static_cast<int>(phase)] += ns;
  }
  void AddModeled(BootPhase phase, uint64_t ns) { modeled_[static_cast<int>(phase)] += ns; }

  uint64_t measured_ns(BootPhase phase) const { return measured_[static_cast<int>(phase)]; }
  uint64_t modeled_ns(BootPhase phase) const { return modeled_[static_cast<int>(phase)]; }
  uint64_t phase_ns(BootPhase phase) const {
    return measured_ns(phase) + modeled_ns(phase);
  }

  uint64_t total_ns() const {
    uint64_t total = 0;
    for (int i = 0; i < kNumBootPhases; ++i) {
      total += measured_[i] + modeled_[i];
    }
    return total;
  }
  double total_ms() const { return static_cast<double>(total_ns()) / 1e6; }
  double phase_ms(BootPhase phase) const { return static_cast<double>(phase_ns(phase)) / 1e6; }

  // Decode-cache counters of the boot's guest run (the block-cache engine,
  // src/isa/block_cache.h; all zero under the legacy interpreter). Plain
  // integers — not ExecStats — so the timeline stays ISA-independent.
  // shared vs private is the decode-cache analogue of the frame-sharing
  // census: blocks grabbed from / published to the storm-wide cache vs
  // blocks decoded privately over dirty or zero frames.
  struct BlockCacheRecord {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
    uint64_t blocks_shared = 0;
    uint64_t blocks_private = 0;
  };
  void RecordBlockCache(const BlockCacheRecord& record) { block_cache_ = record; }
  const BlockCacheRecord& block_cache() const { return block_cache_; }

  // Guest-written markers (port kPortTimestamp), as (marker id, host ns).
  void RecordMarker(uint64_t marker, uint64_t host_ns) {
    markers_.push_back({marker, host_ns});
  }
  const std::vector<std::pair<uint64_t, uint64_t>>& markers() const { return markers_; }

  // One-line rendering like "total 18.2ms (monitor 3.1 | setup 0.0 | decomp 0.0 | linux 15.1)".
  std::string ToString() const;

 private:
  std::array<uint64_t, kNumBootPhases> measured_{};
  std::array<uint64_t, kNumBootPhases> modeled_{};
  BlockCacheRecord block_cache_;
  std::vector<std::pair<uint64_t, uint64_t>> markers_;
};

// Bridges one boot's phase breakdown into imktrace events so a timeline can
// ride in the same Chrome JSON as the live trace points. Phases become four
// back-to-back spans (category "timeline") starting at `base_ns`; guest
// markers become instants at their host timestamps. `vm_id` tags every
// event (pass trace::kNoVmId outside a storm).
std::vector<trace::Event> TimelineToTraceEvents(const BootTimeline& timeline,
                                                uint64_t base_ns, uint32_t vm_id);

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_BOOT_TIMELINE_H_
