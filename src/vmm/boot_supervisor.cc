#include "src/vmm/boot_supervisor.h"

#include <sstream>

#include "src/base/deadline.h"
#include "src/base/rng.h"
#include "src/base/stopwatch.h"
#include "src/vmm/mem_governor.h"
#include "src/trace/trace.h"

namespace imk {
namespace {

// splitmix64: derives the fresh per-attempt randomization seed from the base
// seed, so retry layouts are independent but the whole schedule reproduces.
uint64_t DeriveSeed(uint64_t base, uint64_t attempt) {
  uint64_t z = base + 0x9e3779b97f4a7c15ull * (attempt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return z != 0 ? z : 1;  // 0 means "draw from host entropy" to MicroVm
}

// The ladder below `requested`, most hardened first.
std::vector<RandoMode> LadderFrom(RandoMode requested) {
  switch (requested) {
    case RandoMode::kFgKaslr:
      return {RandoMode::kFgKaslr, RandoMode::kKaslr, RandoMode::kNone};
    case RandoMode::kKaslr:
      return {RandoMode::kKaslr, RandoMode::kNone};
    case RandoMode::kNone:
      return {RandoMode::kNone};
  }
  return {RandoMode::kNone};
}

// Data-shaped failures: the ones a corrupt shared template can cause, and
// therefore the ones worth auditing the cache over before retrying.
bool IsDataShaped(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kParseError:
    case ErrorCode::kInternal:
    case ErrorCode::kGuestFault:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* DegradePolicyName(DegradePolicy policy) {
  switch (policy) {
    case DegradePolicy::kStrict:
      return "strict";
    case DegradePolicy::kLadder:
      return "ladder";
  }
  return "?";
}

Result<DegradePolicy> ParseDegradePolicy(const std::string& name) {
  if (name == "strict") {
    return DegradePolicy::kStrict;
  }
  if (name == "ladder") {
    return DegradePolicy::kLadder;
  }
  return InvalidArgumentError("unknown degrade policy: " + name + " (strict|ladder)");
}

const char* AttemptResultName(AttemptResult result) {
  switch (result) {
    case AttemptResult::kOk:
      return "ok";
    case AttemptResult::kError:
      return "error";
    case AttemptResult::kWatchdogWall:
      return "watchdog-wall";
    case AttemptResult::kWatchdogInstructions:
      return "watchdog-insns";
    case AttemptResult::kRejectedMemPressure:
      return "rejected-mem";
  }
  return "?";
}

std::string BootOutcome::ToString() const {
  std::ostringstream out;
  out << (ok ? "ok" : "FAILED") << " requested=" << RandoModeName(requested);
  if (ok) {
    out << " final=" << RandoModeName(final_mode);
  }
  out << " attempts=" << attempts << " watchdog_trips=" << watchdog_trips
      << " degradations=" << degradations << " mem_rejections=" << mem_rejections
      << " quarantines=" << cache_quarantines << " wall_ms=" << total_wall_ns / 1000000;
  for (const AttemptRecord& a : history) {
    out << "\n  attempt " << a.index << ": mode=" << RandoModeName(a.mode)
        << (a.pooled ? " (pooled)" : "") << (a.caches_off ? " (caches-off)" : "")
        << " seed=" << a.seed << " -> " << AttemptResultName(a.result);
    if (!a.error.empty()) {
      out << " (" << a.error << ")";
    }
    out << " [" << a.wall_ns / 1000000 << "ms]";
  }
  if (!ok) {
    out << "\n  final status: " << final_status.ToString();
  }
  return out.str();
}

BootSupervisor::BootSupervisor(Storage& storage, MicroVmConfig config, SupervisorOptions options)
    : storage_(storage), config_(std::move(config)), options_(std::move(options)) {}

AttemptRecord BootSupervisor::Attempt(RandoMode mode, bool pooled, bool caches_off,
                                      uint32_t index, uint64_t seed, BootReport* report,
                                      Status* status) {
  AttemptRecord record;
  record.index = index;
  record.mode = mode;
  record.pooled = pooled;
  record.caches_off = caches_off;
  record.seed = seed;

  MicroVmConfig config = config_;
  config.rando = mode;
  config.seed = seed;
  if (!pooled) {
    // Inline rungs must not touch the pool at all: a pool that already
    // failed this VM (corrupt renders, stale key) is stepped past, not
    // retried.
    config.layout_pool = nullptr;
    config.layout_pool_depth = 0;
  }
  if (caches_off) {
    // Pressure rung: boot the SAME hardening level with every shared cache
    // disconnected, so this attempt's footprint is exactly one VM's working
    // set — the cheapest boot the fleet can buy without shedding hardening.
    config.use_template_cache = false;
    config.template_cache = nullptr;
    config.shared_block_cache = nullptr;
    config.layout_pool = nullptr;
    config.layout_pool_depth = 0;
  }
  if (options_.watchdog_instructions != 0) {
    config.max_boot_instructions = options_.watchdog_instructions;
  }
  Deadline deadline = options_.watchdog_wall_ms != 0
                          ? Deadline::AfterMs(options_.watchdog_wall_ms)
                          : Deadline();  // default: never expires
  config.deadline = &deadline;

  Stopwatch timer;
  auto vm = std::make_unique<MicroVm>(storage_, std::move(config));
  Result<BootReport> boot = vm->Boot();
  record.wall_ns = timer.ElapsedNs();

  if (!boot.ok()) {
    *status = boot.status();
    record.error = boot.status().ToString();
    record.result = boot.status().code() == ErrorCode::kDeadlineExceeded
                        ? AttemptResult::kWatchdogWall
                        : AttemptResult::kError;
    return record;
  }
  BootReport got = std::move(*boot);
  if (!got.init_done) {
    // The guest stopped without reporting init: classify by why it stopped.
    switch (got.guest_stop) {
      case StopReason::kDeadline:
        record.result = AttemptResult::kWatchdogWall;
        record.error = "guest tripped the wall-clock watchdog before init";
        *status = DeadlineExceededError(record.error);
        break;
      case StopReason::kInstructionCap:
        record.result = AttemptResult::kWatchdogInstructions;
        record.error = "guest exhausted its instruction budget before init";
        *status = DeadlineExceededError(record.error);
        break;
      case StopReason::kHalt:
        record.result = AttemptResult::kError;
        record.error = "guest halted without reporting init-done";
        *status = InternalError(record.error);
        break;
    }
    return record;
  }
  if (options_.expected_checksum.has_value() &&
      got.init_checksum != *options_.expected_checksum) {
    record.result = AttemptResult::kError;
    record.error = "guest init checksum mismatch (corrupt image reached the guest)";
    *status = InternalError(record.error);
    return record;
  }
  record.result = AttemptResult::kOk;
  *status = OkStatus();
  *report = std::move(got);
  vm_ = std::move(vm);
  return record;
}

BootOutcome BootSupervisor::Run() {
  BootOutcome outcome;
  outcome.requested = config_.rando;
  Stopwatch total_timer;

  ImageTemplateCache* cache = nullptr;
  if (config_.use_template_cache) {
    cache = config_.template_cache != nullptr ? config_.template_cache
                                              : &GlobalImageTemplateCache();
  }

  const uint64_t base_seed = config_.seed != 0 ? config_.seed : HostEntropySeed();
  // The full ladder: a pooled rung at the requested level (when the config
  // carries a layout pool), then every inline mode down to nokaslr. Stepping
  // from the pooled rung to the inline rung of the SAME mode trades no
  // hardening, so it is neither a degradation nor forbidden under kStrict.
  struct Rung {
    RandoMode mode;
    bool pooled;
    bool caches_off;
  };
  std::vector<Rung> ladder;
  const bool pool_configured =
      (config_.layout_pool != nullptr || config_.layout_pool_depth > 0) &&
      config_.rando != RandoMode::kNone;
  const bool governed = config_.mem_governor != nullptr;
  if (pool_configured) {
    ladder.push_back({config_.rando, true, false});
  }
  bool first_inline = true;
  for (RandoMode mode : LadderFrom(config_.rando)) {
    ladder.push_back({mode, false, false});
    if (first_inline && governed) {
      // Pressure rung: the requested level again, shared caches off. Same
      // hardening as the rung above it, so — like pooled->inline — it is
      // neither a degradation nor forbidden under kStrict.
      ladder.push_back({mode, false, true});
    }
    first_inline = false;
  }
  const size_t rungs = options_.policy == DegradePolicy::kStrict
                           ? (pool_configured ? 1u : 0u) + 1u + (governed ? 1u : 0u)
                           : ladder.size();
  uint32_t index = 0;
  for (size_t rung = 0; rung < rungs; ++rung) {
    if (rung > 0 && ladder[rung].mode != ladder[rung - 1].mode) {
      ++outcome.degradations;
    }
    for (uint32_t try_in_rung = 0; try_in_rung <= options_.max_retries; ++try_in_rung, ++index) {
      // Exactly one rung-span per accounted attempt — the admission-rejected
      // path included, so a trace always shows attempts == rung spans.
      IMK_TRACE_SPAN("supervisor", "supervisor.rung");
      BootReport report;
      Status status = OkStatus();
      // Attempt 0 uses the base seed as-is, so a clean supervised boot lays
      // out exactly like an unsupervised one; only retries derive fresh seeds.
      const uint64_t seed = index == 0 ? base_seed : DeriveSeed(base_seed, index);
      if (config_.mem_governor != nullptr &&
          !config_.mem_governor->Admit(0, options_.admit_wait_ms)) {
        // Hard-watermark backpressure: the bounded wait expired with the
        // fleet still over budget. The rejection is an accounted attempt —
        // it consumed a retry and the caller must see why.
        AttemptRecord rejected;
        rejected.index = index;
        rejected.mode = ladder[rung].mode;
        rejected.pooled = ladder[rung].pooled;
        rejected.caches_off = ladder[rung].caches_off;
        rejected.seed = seed;
        rejected.result = AttemptResult::kRejectedMemPressure;
        rejected.error = "admission rejected: over the memory hard watermark";
        outcome.history.push_back(rejected);
        ++outcome.attempts;
        ++outcome.mem_rejections;
        outcome.final_status = ResourceExhaustedError(rejected.error);
        continue;
      }
      AttemptRecord record = Attempt(ladder[rung].mode, ladder[rung].pooled,
                                     ladder[rung].caches_off, index, seed, &report, &status);
      outcome.history.push_back(record);
      ++outcome.attempts;
      if (record.result == AttemptResult::kWatchdogWall ||
          record.result == AttemptResult::kWatchdogInstructions) {
        ++outcome.watchdog_trips;
      }
      if (record.result == AttemptResult::kOk) {
        outcome.ok = true;
        outcome.final_mode = ladder[rung].mode;
        outcome.report = std::move(report);
        outcome.total_wall_ns = total_timer.ElapsedNs();
        return outcome;
      }
      outcome.final_status = status;
      // A data-shaped failure may mean the shared template rotted under us:
      // audit the cache so the retry rebuilds from the image instead of
      // failing the same way forever.
      if (cache != nullptr && IsDataShaped(status)) {
        outcome.cache_quarantines += cache->AuditEntries();
      }
    }
  }
  outcome.total_wall_ns = total_timer.ElapsedNs();
  if (outcome.final_status.ok()) {
    outcome.final_status = InternalError("boot supervisor exhausted attempts");
  }
  return outcome;
}

}  // namespace imk
