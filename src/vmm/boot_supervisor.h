// BootSupervisor: the fleet-facing wrapper around MicroVm::Boot.
//
// A fleet monitor cannot treat a failed or wedged boot as fatal: images rot,
// vCPUs hang, shared caches go bad. The supervisor bounds each attempt with
// a watchdog (wall-clock Deadline + instruction budget), retries failed
// attempts with a fresh randomization seed, and — when a randomization level
// itself keeps failing — walks the degradation ladder
//     pool-hit -> inline fgkaslr -> kaslr -> nokaslr
// (policy-controlled; kStrict refuses to trade hardening for availability
// and fails instead). The pooled rung exists only when the config carries a
// layout pool: a pool serving corrupt or mismatched layouts is stepped past
// by re-attempting the SAME randomization level inline, which is not a
// degradation (the hardening is identical, only the render path changed) —
// so kStrict allows it too. A config carrying a MemGovernor adds one more
// same-hardening rung after inline: shared-caches-off, which boots the
// requested level without template cache, layout pool, or shared decode
// tables — the memory-pressure analogue of the pooled->inline step, equally
// permitted under kStrict. The governor also gates admission: an attempt
// that cannot fit under the hard watermark within admit_wait_ms is recorded
// as kRejectedMemPressure and consumes a retry. Every attempt is recorded,
// so a BootOutcome accounts for exactly what the fleet paid to get (or fail
// to get) this VM up.
//
// The supervisor never throws and never returns a bare error: failures are
// data, inside the outcome.
#ifndef IMKASLR_SRC_VMM_BOOT_SUPERVISOR_H_
#define IMKASLR_SRC_VMM_BOOT_SUPERVISOR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/vmm/microvm.h"

namespace imk {

// What the supervisor may do when a randomization level keeps failing.
enum class DegradePolicy {
  kStrict,  // never boot below the requested level; fail instead
  kLadder,  // step down fgkaslr -> kaslr -> nokaslr until something boots
};

const char* DegradePolicyName(DegradePolicy policy);
Result<DegradePolicy> ParseDegradePolicy(const std::string& name);

struct SupervisorOptions {
  // Extra attempts per ladder rung beyond the first (same mode, fresh seed).
  uint32_t max_retries = 2;
  // Wall-clock watchdog per attempt; 0 = none. Checked at monitor stage
  // boundaries and polled by the interpreter while the guest runs.
  uint64_t watchdog_wall_ms = 0;
  // Instruction-budget watchdog per attempt; 0 = keep the config's
  // max_boot_instructions.
  uint64_t watchdog_instructions = 0;
  DegradePolicy policy = DegradePolicy::kLadder;
  // When set, a boot whose guest init checksum differs is treated as a
  // failed (data-shaped) attempt — the last line of defense against
  // corruption the cache probes missed.
  std::optional<uint64_t> expected_checksum;
  // How long one attempt may wait at the memory governor's hard watermark
  // before it is recorded as kRejectedMemPressure (only meaningful when the
  // config carries a MemGovernor). The wait is bounded backpressure, not a
  // queue: each rejection consumes one retry of the current rung.
  uint64_t admit_wait_ms = 50;
};

// How one attempt ended.
enum class AttemptResult {
  kOk,
  kError,                 // boot returned an error status / init never ran
  kWatchdogWall,          // wall-clock deadline tripped (monitor or guest side)
  kWatchdogInstructions,  // guest exhausted its instruction budget
  kRejectedMemPressure,   // admission blocked at the governor's hard watermark
};

const char* AttemptResultName(AttemptResult result);

struct AttemptRecord {
  uint32_t index = 0;     // 0-based across the whole outcome
  RandoMode mode = RandoMode::kNone;
  bool pooled = false;    // layout pool was offered to this attempt's loader
  bool caches_off = false;  // pressure rung: no shared caches, same hardening
  uint64_t seed = 0;      // the fresh per-attempt randomization seed
  AttemptResult result = AttemptResult::kError;
  std::string error;      // status message for non-OK attempts
  uint64_t wall_ns = 0;
};

// The structured record of one supervised boot.
struct BootOutcome {
  bool ok = false;
  RandoMode requested = RandoMode::kNone;
  RandoMode final_mode = RandoMode::kNone;  // meaningful when ok
  uint32_t attempts = 0;
  uint32_t watchdog_trips = 0;
  uint32_t degradations = 0;        // ladder steps taken (0 = booted as asked)
  uint32_t mem_rejections = 0;      // attempts rejected at the hard watermark
  uint64_t cache_quarantines = 0;   // corrupt templates evicted by our audits
  std::vector<AttemptRecord> history;
  std::optional<BootReport> report;  // the successful attempt's report
  Status final_status = OkStatus();  // last failure when !ok
  uint64_t total_wall_ns = 0;

  bool degraded() const { return ok && degradations > 0; }
  std::string ToString() const;
};

// Supervises boots of one VM configuration. The MicroVmConfig's `deadline`
// and `seed` fields are overridden per attempt; everything else is used
// as-is. Run() may be called repeatedly (each call supervises a fresh VM).
class BootSupervisor {
 public:
  BootSupervisor(Storage& storage, MicroVmConfig config, SupervisorOptions options);

  BootOutcome Run();

  // The VM of the last successful attempt (for post-boot interrogation);
  // null until a Run() succeeds.
  MicroVm* vm() { return vm_.get(); }

 private:
  AttemptRecord Attempt(RandoMode mode, bool pooled, bool caches_off, uint32_t index,
                        uint64_t seed, BootReport* report, Status* status);

  Storage& storage_;
  MicroVmConfig config_;
  SupervisorOptions options_;
  std::unique_ptr<MicroVm> vm_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_BOOT_SUPERVISOR_H_
