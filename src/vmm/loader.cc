#include "src/vmm/loader.h"

#include <cstring>

#include "src/base/align.h"
#include "src/base/stopwatch.h"
#include "src/elf/elf_note.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/kernel/layout.h"

namespace imk {
namespace {

// Computes the memsz span [min vaddr, max vaddr+memsz) over PT_LOAD headers.
void ImageSpan(const ElfReader& elf, uint64_t* base_vaddr, uint64_t* mem_size) {
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  for (const Elf64Phdr& phdr : elf.program_headers()) {
    if (phdr.p_type != kPtLoad) {
      continue;
    }
    lo = std::min(lo, phdr.p_vaddr);
    hi = std::max(hi, phdr.p_vaddr + phdr.p_memsz);
  }
  *base_vaddr = lo;
  *mem_size = hi - lo;
}

Result<uint64_t> PvhEntry(const ElfReader& elf) {
  for (const ElfSection& section : elf.sections()) {
    if (section.header.sh_type != kShtNote) {
      continue;
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan data, elf.SectionData(section));
    IMK_ASSIGN_OR_RETURN(std::vector<ElfNote> notes, ParseNoteSection(data));
    for (const ElfNote& note : notes) {
      if (note.name == kNoteNameXen && note.type == kNoteTypePvhEntry && note.desc.size() >= 8) {
        return LoadLe64(note.desc.data());
      }
    }
  }
  return NotFoundError("no PVH entry note in kernel image");
}

Result<KernelConstantsNote> NoteConstants(const ElfReader& elf) {
  for (const ElfSection& section : elf.sections()) {
    if (section.header.sh_type != kShtNote) {
      continue;
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan data, elf.SectionData(section));
    IMK_ASSIGN_OR_RETURN(std::vector<ElfNote> notes, ParseNoteSection(data));
    if (auto constants = FindKernelConstants(notes)) {
      return *constants;
    }
  }
  return NotFoundError("no kernel-constants note");
}

}  // namespace

Result<LoadedKernel> DirectLoadKernel(GuestMemory& memory, ByteSpan vmlinux,
                                      const RelocInfo* relocs, const DirectBootParams& params,
                                      Rng& rng) {
  LoadedKernel loaded;

  // ---- parse ----
  Stopwatch parse_timer;
  IMK_ASSIGN_OR_RETURN(ElfReader elf, ElfReader::Parse(vmlinux));
  uint64_t link_base = 0;
  uint64_t mem_size = 0;
  ImageSpan(elf, &link_base, &mem_size);
  if (mem_size == 0) {
    return ParseError("kernel image has no loadable segments");
  }
  KernelConstantsNote constants = DefaultKernelConstants();
  if (params.use_note_constants) {
    auto from_note = NoteConstants(elf);
    if (from_note.ok()) {
      constants = *from_note;
    }
  }
  uint64_t entry = elf.entry();
  if (params.protocol == BootProtocol::kPvh) {
    IMK_ASSIGN_OR_RETURN(entry, PvhEntry(elf));
  }
  loaded.timings.parse_ns = parse_timer.ElapsedNs();
  loaded.link_text_vaddr = link_base;
  loaded.image_mem_size = mem_size;

  // ---- choose offsets ----
  Stopwatch choose_timer;
  const bool randomize = params.requested != RandoMode::kNone;
  if (randomize) {
    if (relocs == nullptr || relocs->empty()) {
      return FailedPreconditionError(
          "randomization requested but no relocation info supplied (see Figure 8: pass the "
          "vmlinux.relocs image to the monitor)");
    }
    OffsetConstraints constraints;
    constraints.image_mem_size = mem_size;
    constraints.guest_mem_size =
        params.usable_mem_limit != 0 ? params.usable_mem_limit : memory.size();
    constraints.reserved_tail = params.stack_slack;
    constraints.constants = constants;
    IMK_ASSIGN_OR_RETURN(loaded.choice, ChooseRandomOffsets(constraints, rng));
  } else {
    loaded.choice.virt_slide = 0;
    loaded.choice.phys_load_addr = constants.physical_start;
    if (constants.physical_start + mem_size + params.stack_slack > memory.size()) {
      return InvalidArgumentError("guest memory too small for kernel image");
    }
  }
  loaded.timings.choose_ns = choose_timer.ElapsedNs();

  // ---- load segments ----
  // One segment at a time, directly to its final physical location (§5.2).
  Stopwatch load_timer;
  const uint64_t phys_base = loaded.choice.phys_load_addr;
  for (const Elf64Phdr& phdr : elf.program_headers()) {
    if (phdr.p_type != kPtLoad) {
      continue;
    }
    const uint64_t phys = phys_base + (phdr.p_vaddr - link_base);
    IMK_ASSIGN_OR_RETURN(ByteSpan file_bytes, elf.SegmentData(phdr));
    IMK_RETURN_IF_ERROR(memory.Write(phys, file_bytes));
    if (phdr.p_memsz > phdr.p_filesz) {
      IMK_RETURN_IF_ERROR(memory.Zero(phys + phdr.p_filesz, phdr.p_memsz - phdr.p_filesz));
    }
  }
  loaded.timings.load_ns = load_timer.ElapsedNs();

  // View of the loaded image addressed by link vaddrs.
  IMK_ASSIGN_OR_RETURN(MutableByteSpan image_ram, memory.Slice(phys_base, mem_size));
  LoadedImageView view(image_ram, link_base);

  // ---- FGKASLR: shuffle + table fixups ----
  if (params.requested == RandoMode::kFgKaslr) {
    if (params.fgkaslr_disabled_cmdline) {
      // "nofgkaslr": the per-function-section parsing still happens — the
      // paper's reason for building separate fgkaslr kernel variants — but
      // nothing moves and no tables are touched.
      Stopwatch fg_timer;
      size_t function_sections = 0;
      for (const ElfSection& section : elf.sections()) {
        if (section.name.rfind(".text.fn_", 0) == 0) {
          ++function_sections;
        }
      }
      IMK_ASSIGN_OR_RETURN(std::vector<ElfSymbol> symbols, elf.ReadSymbols());
      if (function_sections == 0 || symbols.empty()) {
        return FailedPreconditionError("kernel not built for fgkaslr");
      }
      loaded.timings.fg_ns = fg_timer.ElapsedNs();
    } else {
      Stopwatch fg_timer;
      IMK_ASSIGN_OR_RETURN(FgKaslrResult fg, ShuffleFunctions(elf, view, params.fg, rng));
      loaded.timings.fg_ns = fg_timer.ElapsedNs();
      loaded.fg = std::move(fg);
    }
  }

  // ---- relocations ----
  if (randomize) {
    Stopwatch reloc_timer;
    if (loaded.fg.has_value()) {
      IMK_ASSIGN_OR_RETURN(loaded.reloc_stats, ApplyRelocationsShuffled(view, *relocs,
                                                                        loaded.choice.virt_slide,
                                                                        loaded.fg->map));
    } else {
      IMK_ASSIGN_OR_RETURN(loaded.reloc_stats,
                           ApplyRelocations(view, *relocs, loaded.choice.virt_slide));
    }
    loaded.timings.reloc_ns = reloc_timer.ElapsedNs();
  }

  // ---- mappings + boot registers ----
  loaded.entry_vaddr = entry + loaded.choice.virt_slide;
  loaded.kernel_map.virt_start = link_base + loaded.choice.virt_slide;
  loaded.kernel_map.phys_start = phys_base;
  loaded.kernel_map.size = mem_size + params.stack_slack;
  loaded.direct_map.virt_start = kDirectMapBase;
  loaded.direct_map.phys_start = 0;
  loaded.direct_map.size = memory.size();
  loaded.stack_top = loaded.kernel_map.virt_start + mem_size + params.stack_slack - 16;
  loaded.resv_start_phys = AlignDown(phys_base, 4096);
  loaded.resv_end_phys = AlignUp(phys_base + mem_size + params.stack_slack, 4096);
  return loaded;
}

}  // namespace imk
