#include "src/vmm/loader.h"

#include <cstring>

#include "src/base/align.h"
#include "src/base/fault_injection.h"
#include "src/base/stopwatch.h"
#include "src/kernel/layout.h"
#include "src/trace/trace.h"
#include "src/vmm/layout_pool.h"

namespace imk {

namespace {
// Stage-boundary watchdog poll; a null deadline means "no watchdog".
Status CheckDeadline(const Deadline* deadline, const char* stage) {
  return deadline != nullptr ? deadline->Check(stage) : OkStatus();
}

// A layout-pool hit: the grabbed layout is already fully randomized, so the
// whole boot-varying pipeline collapses into one zero-copy map. Whole frames
// alias the rendered image (the RenderedLayout shared_ptr is the CoW owner
// pin, which transitively pins its source template); only the sub-frame tail
// is copied, so dirty-at-launch is ~0 of the image. `loaded` arrives with
// the link-time fields filled.
Result<LoadedKernel> MapPooledLayout(GuestMemory& memory,
                                     std::shared_ptr<const RenderedLayout> layout,
                                     const DirectBootParams& params, uint64_t entry,
                                     LoadedKernel loaded, const DirectLoadResources& resources) {
  const ImageTemplate& tmpl = *layout->tmpl;
  const uint64_t link_base = tmpl.link_base;
  const uint64_t mem_size = tmpl.mem_size;
  loaded.choice = layout->choice;
  loaded.reloc_stats = layout->reloc_stats;
  loaded.fg = layout->fg;
  loaded.layout_pool_hit = true;

  IMK_RETURN_IF_ERROR(CheckDeadline(resources.deadline, "loader.map_pristine"));
  // The pooled launch is still a mapping stage; the same fault point drills
  // it, so supervisor ladders exercise pooled and inline attempts alike.
  IMK_FAULT_POINT("loader.map_pristine");
  IMK_TRACE_SPAN("loader", "loader.map_pooled");
  Stopwatch load_timer;
  constexpr uint64_t kFrame = FrameStore::kFrameBytes;
  const uint64_t phys_base = loaded.choice.phys_load_addr;
  FrameStore& frames = memory.frames();
  if (phys_base > memory.size() || mem_size > memory.size() - phys_base) {
    return OutOfRangeError("guest physical range out of bounds");
  }
  const uint64_t dirty_at_start = frames.dirty_frames();
  loaded.mem.image_frames =
      (AlignUp(phys_base + mem_size, kFrame) - AlignDown(phys_base, kFrame)) / kFrame;
  const ByteSpan rendered(layout->image);
  if (phys_base % kFrame == 0) {
    // The chooser aligns to CONFIG_PHYSICAL_ALIGN (a frame multiple), so
    // every whole frame aliases the rendered image; only the tail copies.
    const uint64_t interior_hi = AlignDown(mem_size, kFrame);
    if (interior_hi > 0) {
      IMK_RETURN_IF_ERROR(memory.MapShared(phys_base, rendered.subspan(0, interior_hi), layout));
      loaded.mem.mapped_shared_frames += interior_hi / kFrame;
    }
    if (interior_hi < mem_size) {
      IMK_RETURN_IF_ERROR(memory.Write(phys_base + interior_hi,
                                       rendered.subspan(interior_hi, mem_size - interior_hi)));
      loaded.mem.copied_bytes += mem_size - interior_hi;
    }
  } else {
    // Bespoke constants note with a sub-frame physical align: nothing can
    // alias, flat-copy the rendered image (correct, just not zero-copy).
    IMK_ASSIGN_OR_RETURN(MutableByteSpan image_ram, memory.Slice(phys_base, mem_size));
    std::memcpy(image_ram.data(), rendered.data(), mem_size);
    loaded.mem.copied_bytes += mem_size;
  }
  const uint64_t dirty_after = frames.dirty_frames();
  loaded.mem.load_dirty_frames =
      dirty_after > dirty_at_start ? dirty_after - dirty_at_start : 0;
  loaded.timings.load_ns = load_timer.ElapsedNs();

  loaded.entry_vaddr = entry + loaded.choice.virt_slide;
  loaded.kernel_map.virt_start = link_base + loaded.choice.virt_slide;
  loaded.kernel_map.phys_start = phys_base;
  loaded.kernel_map.size = mem_size + params.stack_slack;
  loaded.direct_map.virt_start = kDirectMapBase;
  loaded.direct_map.phys_start = 0;
  loaded.direct_map.size = memory.size();
  loaded.stack_top = loaded.kernel_map.virt_start + mem_size + params.stack_slack - 16;
  loaded.resv_start_phys = AlignDown(phys_base, 4096);
  loaded.resv_end_phys = AlignUp(phys_base + mem_size + params.stack_slack, 4096);
  return loaded;
}
}  // namespace

Result<LoadedKernel> DirectLoadFromTemplate(GuestMemory& memory,
                                            std::shared_ptr<const ImageTemplate> tmpl_ptr,
                                            const RelocInfo* relocs,
                                            const DirectBootParams& params, Rng& rng,
                                            const DirectLoadResources& resources) {
  if (tmpl_ptr == nullptr) {
    return InvalidArgumentError("DirectLoadFromTemplate: null template");
  }
  const ImageTemplate& tmpl = *tmpl_ptr;
  LoadedKernel loaded;
  const uint64_t link_base = tmpl.link_base;
  const uint64_t mem_size = tmpl.mem_size;
  if (mem_size == 0 || tmpl.pristine.size() != mem_size) {
    return ParseError("kernel image has no loadable segments");
  }
  KernelConstantsNote constants = DefaultKernelConstants();
  if (params.use_note_constants && tmpl.note_constants.has_value()) {
    constants = *tmpl.note_constants;
  }
  uint64_t entry = tmpl.elf_entry;
  if (params.protocol == BootProtocol::kPvh) {
    if (!tmpl.pvh_entry.has_value()) {
      return NotFoundError("no PVH entry note in kernel image");
    }
    entry = *tmpl.pvh_entry;
  }
  loaded.link_text_vaddr = link_base;
  loaded.image_mem_size = mem_size;

  // ---- layout pool: grab an ahead-of-time randomized image ----
  if (resources.layout_pool != nullptr && params.requested != RandoMode::kNone) {
    const uint64_t guest_mem =
        params.usable_mem_limit != 0 ? params.usable_mem_limit : memory.size();
    const uint64_t grab_start = trace::SpanStart();
    std::shared_ptr<const RenderedLayout> pooled =
        resources.layout_pool->TryGrab(tmpl_ptr, params, guest_mem);
    trace::EmitComplete("pool", "pool.grab", grab_start);
    if (pooled != nullptr) {
      return MapPooledLayout(memory, std::move(pooled), params, entry, std::move(loaded),
                             resources);
    }
    // Drained or mismatched pool: fall through to inline randomization,
    // seeded from the caller's rng exactly as if there were no pool.
  }

  // ---- choose offsets ----
  IMK_RETURN_IF_ERROR(CheckDeadline(resources.deadline, "loader.choose"));
  // Models an entropy-source failure in the offset chooser.
  IMK_FAULT_POINT("loader.choose");
  const uint64_t choose_span = trace::SpanStart();
  Stopwatch choose_timer;
  const bool randomize = params.requested != RandoMode::kNone;
  if (randomize) {
    if (relocs == nullptr || relocs->empty()) {
      return FailedPreconditionError(
          "randomization requested but no relocation info supplied (see Figure 8: pass the "
          "vmlinux.relocs image to the monitor)");
    }
    OffsetConstraints constraints;
    constraints.image_mem_size = mem_size;
    constraints.guest_mem_size =
        params.usable_mem_limit != 0 ? params.usable_mem_limit : memory.size();
    constraints.reserved_tail = params.stack_slack;
    constraints.constants = constants;
    IMK_ASSIGN_OR_RETURN(loaded.choice, ChooseRandomOffsets(constraints, rng));
  } else {
    loaded.choice.virt_slide = 0;
    loaded.choice.phys_load_addr = constants.physical_start;
    if (constants.physical_start + mem_size + params.stack_slack > memory.size()) {
      return InvalidArgumentError("guest memory too small for kernel image");
    }
  }
  loaded.timings.choose_ns = choose_timer.ElapsedNs();
  trace::EmitComplete("loader", "loader.choose", choose_span);

  // ---- load image (map) ----
  // The template pre-rendered the segments (file bytes + zeroed BSS/holes)
  // at link offsets. Per-boot loading aliases whole frames of that pristine
  // buffer into guest memory zero-copy — the monitor-CoW sharing the paper's
  // §6 density argument needs — and copies only the sub-frame head/tail of
  // each region. Frames the randomizer later writes materialize on fault.
  IMK_RETURN_IF_ERROR(CheckDeadline(resources.deadline, "loader.map_pristine"));
  // Models a mapping failure while aliasing the pristine template into guest
  // RAM (e.g. an mmap/memfd error in a real monitor).
  IMK_FAULT_POINT("loader.map_pristine");
  const uint64_t map_span = trace::SpanStart();
  Stopwatch load_timer;
  constexpr uint64_t kFrame = FrameStore::kFrameBytes;
  const uint64_t phys_base = loaded.choice.phys_load_addr;
  FrameStore& frames = memory.frames();
  if (phys_base > memory.size() || mem_size > memory.size() - phys_base) {
    return OutOfRangeError("guest physical range out of bounds");
  }
  const uint64_t dirty_at_start = frames.dirty_frames();
  loaded.mem.image_frames =
      (AlignUp(phys_base + mem_size, kFrame) - AlignDown(phys_base, kFrame)) / kFrame;
  const ByteSpan pristine(tmpl.pristine);
  // When the FGKASLR shuffle is about to run, the function-section region is
  // fully rewritten by placement straight out of the pristine buffer (gaps
  // included — see FgExecContext::pristine), so aliasing it here would make
  // every frame fault a template copy right before being overwritten. Leave
  // it as untouched zero frames; placement materializes them copy-free.
  uint64_t skip_lo = mem_size;
  uint64_t skip_hi = mem_size;
  if (params.requested == RandoMode::kFgKaslr && !params.fgkaslr_disabled_cmdline &&
      tmpl.fg.has_value() && !tmpl.fg->sections.empty()) {
    const uint64_t region_lo = tmpl.fg->sections.front().vaddr;
    const uint64_t region_hi =
        tmpl.fg->sections.back().vaddr + tmpl.fg->sections.back().size;
    if (region_lo >= link_base && region_hi >= region_lo &&
        region_hi - link_base <= mem_size) {
      skip_lo = region_lo - link_base;
      skip_hi = region_hi - link_base;
    }
  }
  if (phys_base % kFrame == 0) {
    // Image offsets coincide with frame offsets (the chooser aligns to
    // CONFIG_PHYSICAL_ALIGN, a multiple of the frame size): alias every
    // whole frame, copy the ragged edges.
    const auto map_region = [&](uint64_t begin, uint64_t end) -> Status {
      if (begin >= end) {
        return OkStatus();
      }
      const uint64_t interior_lo = AlignUp(begin, kFrame);
      const uint64_t interior_hi = std::max(interior_lo, AlignDown(end, kFrame));
      const uint64_t head_end = std::min(interior_lo, end);
      if (begin < head_end) {
        IMK_RETURN_IF_ERROR(
            memory.Write(phys_base + begin, pristine.subspan(begin, head_end - begin)));
        loaded.mem.copied_bytes += head_end - begin;
      }
      if (interior_lo < interior_hi) {
        IMK_RETURN_IF_ERROR(memory.MapShared(
            phys_base + interior_lo, pristine.subspan(interior_lo, interior_hi - interior_lo),
            tmpl_ptr));
        loaded.mem.mapped_shared_frames += (interior_hi - interior_lo) / kFrame;
      }
      if (interior_hi < end && interior_hi >= interior_lo) {
        IMK_RETURN_IF_ERROR(
            memory.Write(phys_base + interior_hi, pristine.subspan(interior_hi, end - interior_hi)));
        loaded.mem.copied_bytes += end - interior_hi;
      }
      return OkStatus();
    };
    IMK_RETURN_IF_ERROR(map_region(0, skip_lo));
    IMK_RETURN_IF_ERROR(map_region(skip_hi, mem_size));
  } else {
    // Unaligned physical base (bespoke constants note): no frame can alias
    // the template, fall back to a flat copy. Intentionally serial: a plain
    // memcpy is memory-bandwidth-bound, so sharding it across workers never
    // beat the single-stream copy (bench/micro_parallel measured 1.005x) —
    // the parallel path was a dead knob and is gone.
    IMK_ASSIGN_OR_RETURN(MutableByteSpan image_ram, memory.Slice(phys_base, mem_size));
    const uint8_t* src = pristine.data();
    uint8_t* dst = image_ram.data();
    const auto copy_span = [&](uint64_t begin, uint64_t end) {
      if (begin >= end) {
        return;
      }
      std::memcpy(dst + begin, src + begin, end - begin);
      loaded.mem.copied_bytes += end - begin;
    };
    copy_span(0, skip_lo);
    copy_span(skip_hi, mem_size);
  }
  const uint64_t dirty_after_load = frames.dirty_frames();
  loaded.mem.load_dirty_frames =
      dirty_after_load > dirty_at_start ? dirty_after_load - dirty_at_start : 0;
  loaded.timings.load_ns = load_timer.ElapsedNs();
  trace::EmitComplete("loader", "loader.map_pristine", map_span);

  // View of the loaded image addressed by link vaddrs; every randomizer
  // write goes through view.At(), which is the copy-on-write fault point.
  LoadedImageView view(frames, phys_base, mem_size, link_base);

  // ---- FGKASLR: shuffle + table fixups ----
  IMK_RETURN_IF_ERROR(CheckDeadline(resources.deadline, "loader.fg_shuffle"));
  if (params.requested == RandoMode::kFgKaslr) {
    if (params.fgkaslr_disabled_cmdline) {
      // "nofgkaslr": the per-function-section metadata is still demanded —
      // the paper's reason for building separate fgkaslr kernel variants —
      // but nothing moves and no tables are touched. (With a warm template
      // the parse itself was already amortized away.)
      if (!tmpl.fg.has_value()) {
        return FailedPreconditionError("kernel not built for fgkaslr");
      }
    } else {
      if (!tmpl.fg.has_value()) {
        return FailedPreconditionError(
            "kernel has no per-function sections (not built with fgkaslr support)");
      }
      IMK_TRACE_SPAN("loader", "loader.fg_shuffle");
      Stopwatch fg_timer;
      FgExecContext fg_context;
      fg_context.pool = resources.pool;
      fg_context.scratch = resources.reloc_scratch;
      fg_context.move_scratch = resources.move_scratch;
      fg_context.pristine = ByteSpan(tmpl.pristine);
      IMK_ASSIGN_OR_RETURN(FgKaslrResult fg,
                           ShuffleFunctionsPreparsed(*tmpl.fg, view, params.fg, rng, fg_context));
      loaded.timings.fg_ns = fg_timer.ElapsedNs();
      loaded.fg = std::move(fg);
    }
  }
  const uint64_t dirty_after_fg = frames.dirty_frames();
  loaded.mem.fg_dirty_frames =
      dirty_after_fg > dirty_after_load ? dirty_after_fg - dirty_after_load : 0;

  // ---- relocations ----
  IMK_RETURN_IF_ERROR(CheckDeadline(resources.deadline, "loader.reloc"));
  if (randomize) {
    // Models a failed relocation pass (bad delta table, write fault); the
    // degradation ladder leans on the fact that kNone skips this stage.
    IMK_FAULT_POINT("loader.reloc");
    IMK_TRACE_SPAN("loader", "loader.reloc");
    Stopwatch reloc_timer;
    RelocApplyOptions reloc_options;
    reloc_options.pool = resources.pool;
    reloc_options.scratch = resources.reloc_scratch;
    if (loaded.fg.has_value()) {
      IMK_ASSIGN_OR_RETURN(loaded.reloc_stats,
                           ApplyRelocationsShuffled(view, *relocs, loaded.choice.virt_slide,
                                                    loaded.fg->map, reloc_options));
    } else {
      IMK_ASSIGN_OR_RETURN(loaded.reloc_stats, ApplyRelocations(view, *relocs,
                                                                loaded.choice.virt_slide,
                                                                reloc_options));
    }
    loaded.timings.reloc_ns = reloc_timer.ElapsedNs();
  }
  const uint64_t dirty_after_reloc = frames.dirty_frames();
  loaded.mem.reloc_dirty_frames =
      dirty_after_reloc > dirty_after_fg ? dirty_after_reloc - dirty_after_fg : 0;

  // ---- mappings + boot registers ----
  loaded.entry_vaddr = entry + loaded.choice.virt_slide;
  loaded.kernel_map.virt_start = link_base + loaded.choice.virt_slide;
  loaded.kernel_map.phys_start = phys_base;
  loaded.kernel_map.size = mem_size + params.stack_slack;
  loaded.direct_map.virt_start = kDirectMapBase;
  loaded.direct_map.phys_start = 0;
  loaded.direct_map.size = memory.size();
  loaded.stack_top = loaded.kernel_map.virt_start + mem_size + params.stack_slack - 16;
  loaded.resv_start_phys = AlignDown(phys_base, 4096);
  loaded.resv_end_phys = AlignUp(phys_base + mem_size + params.stack_slack, 4096);
  return loaded;
}

Result<LoadedKernel> DirectLoadKernel(GuestMemory& memory, ByteSpan vmlinux,
                                      const RelocInfo* relocs, const DirectBootParams& params,
                                      Rng& rng, const DirectLoadResources& resources) {
  // ---- parse (or skip it: template cache hit) ----
  IMK_RETURN_IF_ERROR(CheckDeadline(resources.deadline, "loader.parse"));
  const uint64_t parse_span = trace::SpanStart();
  Stopwatch parse_timer;
  std::shared_ptr<const ImageTemplate> tmpl;
  bool cache_hit = false;
  if (resources.cache != nullptr) {
    const uint64_t hits_before = resources.cache->hits();
    IMK_ASSIGN_OR_RETURN(tmpl, resources.cache->GetOrBuild(vmlinux, TemplateOptions{}));
    cache_hit = resources.cache->hits() > hits_before;
  } else {
    IMK_ASSIGN_OR_RETURN(tmpl, BuildImageTemplate(vmlinux, TemplateOptions{}));
  }
  const uint64_t parse_ns = parse_timer.ElapsedNs();
  trace::EmitComplete("loader", "loader.parse", parse_span);

  IMK_ASSIGN_OR_RETURN(LoadedKernel loaded,
                       DirectLoadFromTemplate(memory, tmpl, relocs, params, rng, resources));
  loaded.timings.parse_ns = parse_ns;
  loaded.template_cache_hit = cache_hit;
  return loaded;
}

}  // namespace imk
