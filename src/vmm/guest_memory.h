// Guest physical memory: a flat RAM array with bounds-checked access,
// the microVM's single memory region (Firecracker-style).
#ifndef IMKASLR_SRC_VMM_GUEST_MEMORY_H_
#define IMKASLR_SRC_VMM_GUEST_MEMORY_H_

#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace imk {

class GuestMemory {
 public:
  explicit GuestMemory(uint64_t size_bytes) : ram_(size_bytes, 0) {}

  uint64_t size() const { return ram_.size(); }

  MutableByteSpan all() { return MutableByteSpan(ram_); }
  ByteSpan all() const { return ByteSpan(ram_); }

  // Bounds-checked subrange.
  Result<MutableByteSpan> Slice(uint64_t phys, uint64_t len) {
    if (phys > ram_.size() || len > ram_.size() - phys) {
      return OutOfRangeError("guest physical range out of bounds");
    }
    return MutableByteSpan(ram_.data() + phys, len);
  }

  // Copies `data` into guest RAM at `phys`.
  Status Write(uint64_t phys, ByteSpan data) {
    IMK_ASSIGN_OR_RETURN(MutableByteSpan dst, Slice(phys, data.size()));
    std::memcpy(dst.data(), data.data(), data.size());
    return OkStatus();
  }

  // Zero-fills [phys, phys+len).
  Status Zero(uint64_t phys, uint64_t len) {
    IMK_ASSIGN_OR_RETURN(MutableByteSpan dst, Slice(phys, len));
    std::memset(dst.data(), 0, len);
    return OkStatus();
  }

 private:
  std::vector<uint8_t> ram_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_GUEST_MEMORY_H_
