// Guest physical memory: the microVM's single memory region
// (Firecracker-style), backed by a paged copy-on-write FrameStore. Untouched
// RAM reads as zeros without being materialized; the loader aliases kernel
// template frames zero-copy and only frames the randomizer (or the guest)
// writes become private to the VM — the per-VM resident cost the paper's §6
// density ablation measures.
#ifndef IMKASLR_SRC_VMM_GUEST_MEMORY_H_
#define IMKASLR_SRC_VMM_GUEST_MEMORY_H_

#include <memory>
#include <utility>

#include "src/base/bytes.h"
#include "src/base/frame_store.h"
#include "src/base/result.h"

namespace imk {

class GuestMemory {
 public:
  explicit GuestMemory(uint64_t size_bytes) : frames_(size_bytes) {}

  uint64_t size() const { return frames_.size(); }

  FrameStore& frames() { return frames_; }
  const FrameStore& frames() const { return frames_; }

  // Bounds-checked writable subrange. Materializes every covered frame
  // (copy-on-write): use Read/CopyRange for accesses that should not
  // dirty the VM.
  Result<MutableByteSpan> Slice(uint64_t phys, uint64_t len) {
    IMK_ASSIGN_OR_RETURN(uint8_t* ptr, frames_.WritablePtr(phys, len));
    return MutableByteSpan(ptr, len);
  }

  // Whole-RAM span. Materializes everything — snapshotting and test
  // comparisons only.
  MutableByteSpan all() {
    return MutableByteSpan(*frames_.WritablePtr(0, frames_.size()), frames_.size());
  }

  // Gather-copies [phys, phys+len) without materializing shared/zero frames.
  Status Read(uint64_t phys, MutableByteSpan dst) const {
    return frames_.Read(phys, dst.data(), dst.size());
  }

  Result<Bytes> CopyRange(uint64_t phys, uint64_t len) const {
    Bytes out(len);
    IMK_RETURN_IF_ERROR(frames_.Read(phys, out.data(), len));
    return out;
  }

  // Copies `data` into guest RAM at `phys`.
  Status Write(uint64_t phys, ByteSpan data) { return frames_.Write(phys, data); }

  // Zero-fills [phys, phys+len). Untouched frames stay unmaterialized.
  Status Zero(uint64_t phys, uint64_t len) { return frames_.Zero(phys, len); }

  // Aliases template frames into guest RAM zero-copy (see FrameStore).
  Status MapShared(uint64_t phys, ByteSpan src, std::shared_ptr<const void> owner) {
    return frames_.MapShared(phys, src, std::move(owner));
  }

  // Resident accounting (monitor-CoW view of this VM's memory density).
  uint64_t dirty_bytes() const { return frames_.dirty_bytes(); }
  uint64_t dirty_frames() const { return frames_.dirty_frames(); }
  uint64_t shared_frames() const { return frames_.shared_frames(); }
  uint64_t zero_frames() const { return frames_.zero_frames(); }

 private:
  FrameStore frames_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_GUEST_MEMORY_H_
