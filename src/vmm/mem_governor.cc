#include "src/vmm/mem_governor.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "src/base/fault_injection.h"
#include "src/base/stopwatch.h"
#include "src/trace/trace.h"

namespace imk {

namespace {

// Synthetic-pressure fault points. FaultPlan point names cannot contain ':'
// (it is the rule separator), so the grammar-facing names use '_':
//   mem.pressure_soft  — forces a ladder run on the next MaybeReclaim()
//   mem.pressure_hard  — denies one admission check synthetically
//   mem.reclaim        — makes one ladder tier misfire (shed skipped)
// All three are registered in FaultInjector::KnownFaultPoints().
bool FaultFires(const char* point) {
  return FaultInjector::armed() && !FaultInjector::Instance().Check(point).ok();
}

}  // namespace

const char* MemCategoryName(MemCategory category) {
  switch (category) {
    case MemCategory::kGuestFrames:
      return "guest_frames";
    case MemCategory::kTemplateImages:
      return "template_images";
    case MemCategory::kLayoutRenders:
      return "layout_renders";
    case MemCategory::kDecodeTables:
      return "decode_tables";
    case MemCategory::kTraceBuffers:
      return "trace_buffers";
  }
  return "unknown";
}

MemGovernor::MemGovernor(MemGovernorOptions options) : options_(options) {
  if (options_.budget_bytes != 0) {
    double pct = options_.soft_pct;
    pct = std::min(1.0, std::max(0.1, pct));
    soft_watermark_ = static_cast<uint64_t>(static_cast<double>(options_.budget_bytes) * pct);
  }
  for (size_t i = 0; i < kMemCategoryCount; ++i) {
    adapters_[i] = std::make_shared<CategoryAdapter>();
    adapters_[i]->Bind(this, static_cast<MemCategory>(i));
  }
}

MemGovernor::~MemGovernor() {
  // Detach the shared adapters: ScopedMemCharges that outlive the governor
  // (entries in a caller-owned cache) release into a no-op instead of here.
  for (size_t i = 0; i < kMemCategoryCount; ++i) {
    adapters_[i]->Detach();
  }
}

ByteAccountant* MemGovernor::accountant(MemCategory category) {
  return adapters_[static_cast<size_t>(category)].get();
}

std::shared_ptr<ByteAccountant> MemGovernor::shared_accountant(MemCategory category) {
  return adapters_[static_cast<size_t>(category)];
}

void MemGovernor::Charge(MemCategory category, uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  const size_t i = static_cast<size_t>(category);
  const uint64_t cat_now = category_current_[i].fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t high = category_high_[i].load(std::memory_order_relaxed);
  while (cat_now > high &&
         !category_high_[i].compare_exchange_weak(high, cat_now, std::memory_order_relaxed)) {
  }
  const uint64_t total_now = total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  high = high_total_.load(std::memory_order_relaxed);
  while (total_now > high &&
         !high_total_.compare_exchange_weak(high, total_now, std::memory_order_relaxed)) {
  }
}

void MemGovernor::Release(MemCategory category, uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  category_current_[static_cast<size_t>(category)].fetch_sub(bytes, std::memory_order_relaxed);
  total_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemGovernor::RegisterReclaimable(Reclaimable* hook, uint32_t priority) {
  std::lock_guard<race::Mutex> lock(mutex_);
  hooks_.push_back(Hook{hook, priority});
  std::stable_sort(hooks_.begin(), hooks_.end(),
                   [](const Hook& a, const Hook& b) { return a.priority < b.priority; });
}

void MemGovernor::UnregisterReclaimable(Reclaimable* hook) {
  std::lock_guard<race::Mutex> lock(mutex_);
  hooks_.erase(std::remove_if(hooks_.begin(), hooks_.end(),
                              [hook](const Hook& h) { return h.hook == hook; }),
               hooks_.end());
}

uint64_t MemGovernor::MaybeReclaim() {
  const bool forced = FaultFires("mem.pressure_soft");
  const uint64_t total = total_.load(std::memory_order_relaxed);
  if (!forced) {
    if (soft_watermark_ == 0 || total <= soft_watermark_) {
      // Below soft: close a lingering pressure epoch (shedding may have left
      // it open while pinned bytes kept usage high).
      if (under_pressure_.load(std::memory_order_relaxed) &&
          (soft_watermark_ == 0 || total <= soft_watermark_)) {
        std::lock_guard<race::Mutex> lock(mutex_);
        if (under_pressure_.exchange(false, std::memory_order_relaxed)) {
          for (const Hook& h : hooks_) {
            h.hook->OnMemoryPressure(false);
          }
        }
      }
      return 0;
    }
  }
  std::lock_guard<race::Mutex> lock(mutex_);
  // A forced epoch with no budget targets zero: a full deterministic drill.
  return RunLadderLocked(soft_watermark_);
}

uint64_t MemGovernor::ReclaimAll() {
  std::lock_guard<race::Mutex> lock(mutex_);
  return RunLadderLocked(0);  // target 0: shed every tier dry
}

uint64_t MemGovernor::RunLadderLocked(uint64_t target_bytes) {
  IMK_TRACE_SPAN("governor", "governor.ladder");
  if (!under_pressure_.exchange(true, std::memory_order_relaxed)) {
    for (const Hook& h : hooks_) {
      h.hook->OnMemoryPressure(true);
    }
  }
  uint64_t shed_total = 0;
  bool any_shed = false;
  for (const Hook& h : hooks_) {
    const uint64_t total = total_.load(std::memory_order_relaxed);
    if (target_bytes != 0 && total <= target_bytes) {
      break;
    }
    if (FaultFires("mem.reclaim")) {
      continue;  // injected tier misfire: ladder proceeds to the next tier
    }
    const uint64_t want = (target_bytes == 0 || total <= target_bytes)
                              ? ~static_cast<uint64_t>(0)
                              : total - target_bytes;
    const uint64_t shed = h.hook->ReclaimMemory(want);
    if (shed > 0) {
      shed_total += shed;
      tier_sheds_.fetch_add(1, std::memory_order_relaxed);
      any_shed = true;
    }
  }
  if (any_shed) {
    reclaim_runs_.fetch_add(1, std::memory_order_relaxed);
    reclaimed_bytes_.fetch_add(shed_total, std::memory_order_relaxed);
  }
  const uint64_t total = total_.load(std::memory_order_relaxed);
  if (soft_watermark_ == 0 || total <= soft_watermark_) {
    if (under_pressure_.exchange(false, std::memory_order_relaxed)) {
      for (const Hook& h : hooks_) {
        h.hook->OnMemoryPressure(false);
      }
    }
  }
  return shed_total;
}

bool MemGovernor::OverHardWatermark(uint64_t need_bytes) const {
  if (options_.budget_bytes == 0) {
    return false;
  }
  const uint64_t total = total_.load(std::memory_order_relaxed);
  return total + need_bytes > options_.budget_bytes;
}

bool MemGovernor::Admit(uint64_t need_bytes, uint64_t wait_ms) {
  bool waited = false;
  Stopwatch timer;
  for (;;) {
    MaybeReclaim();
    bool over = OverHardWatermark(need_bytes);
    if (over) {
      // One more reclamation attempt aimed at the admission need, not just
      // the soft watermark: shedding to soft may not be enough headroom.
      const uint64_t hard = options_.budget_bytes;
      uint64_t target = need_bytes >= hard ? 0 : hard - need_bytes;
      if (soft_watermark_ != 0) {
        target = std::min(target, soft_watermark_);
      }
      std::lock_guard<race::Mutex> lock(mutex_);
      RunLadderLocked(target);
      over = OverHardWatermark(need_bytes);
    }
    if (!over && FaultFires("mem.pressure_hard")) {
      over = true;
    }
    if (!over) {
      admits_.fetch_add(1, std::memory_order_relaxed);
      if (waited) {
        admit_waits_.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
    if (timer.ElapsedNs() >= wait_ms * 1000000ull) {
      admit_rejects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    waited = true;
    std::this_thread::sleep_for(std::chrono::microseconds(options_.admit_poll_us));
  }
}

uint64_t MemGovernor::current_total_bytes() const {
  return total_.load(std::memory_order_relaxed);
}

MemGovernor::Stats MemGovernor::stats() const {
  Stats s;
  s.budget_bytes = options_.budget_bytes;
  s.soft_watermark_bytes = soft_watermark_;
  s.hard_watermark_bytes = options_.budget_bytes;
  s.current_total_bytes = total_.load(std::memory_order_relaxed);
  s.high_water_total_bytes = high_total_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kMemCategoryCount; ++i) {
    s.categories[i].current_bytes = category_current_[i].load(std::memory_order_relaxed);
    s.categories[i].high_water_bytes = category_high_[i].load(std::memory_order_relaxed);
  }
  s.reclaim_runs = reclaim_runs_.load(std::memory_order_relaxed);
  s.reclaimed_bytes = reclaimed_bytes_.load(std::memory_order_relaxed);
  s.tier_sheds = tier_sheds_.load(std::memory_order_relaxed);
  s.admits = admits_.load(std::memory_order_relaxed);
  s.admit_waits = admit_waits_.load(std::memory_order_relaxed);
  s.admit_rejects = admit_rejects_.load(std::memory_order_relaxed);
  s.under_pressure = under_pressure_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace imk
