#include "src/vmm/boot_timeline.h"

#include <cstdio>

namespace imk {

const char* BootPhaseName(BootPhase phase) {
  switch (phase) {
    case BootPhase::kInMonitor:
      return "In-Monitor";
    case BootPhase::kBootstrapSetup:
      return "Bootstrap Setup";
    case BootPhase::kDecompression:
      return "Decompression";
    case BootPhase::kLinuxBoot:
      return "Linux Boot";
  }
  return "?";
}

std::string BootTimeline::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "total %.2fms (monitor %.2f | setup %.2f | decomp %.2f | linux %.2f)",
                total_ms(), phase_ms(BootPhase::kInMonitor),
                phase_ms(BootPhase::kBootstrapSetup), phase_ms(BootPhase::kDecompression),
                phase_ms(BootPhase::kLinuxBoot));
  return buf;
}

std::vector<trace::Event> TimelineToTraceEvents(const BootTimeline& timeline,
                                                uint64_t base_ns, uint32_t vm_id) {
  std::vector<trace::Event> events;
  events.reserve(kNumBootPhases + timeline.markers().size());
  uint64_t cursor = base_ns;
  for (int i = 0; i < kNumBootPhases; ++i) {
    const BootPhase phase = static_cast<BootPhase>(i);
    trace::Event event;
    event.ts_ns = cursor;
    event.dur_ns = timeline.phase_ns(phase);
    event.name = BootPhaseName(phase);  // string literal, as Event requires
    event.category = "timeline";
    event.vm_id = vm_id;
    event.kind = trace::EventKind::kSpan;
    events.push_back(event);
    cursor += event.dur_ns;
  }
  for (const auto& [marker, host_ns] : timeline.markers()) {
    trace::Event event;
    event.ts_ns = base_ns + host_ns;
    event.name = "timeline.marker";
    event.category = "timeline";
    event.vm_id = vm_id;
    event.depth = static_cast<uint16_t>(marker & 0xffff);  // marker id rides in depth
    event.kind = trace::EventKind::kInstant;
    events.push_back(event);
  }
  return events;
}

}  // namespace imk
