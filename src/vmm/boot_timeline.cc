#include "src/vmm/boot_timeline.h"

#include <cstdio>

namespace imk {

const char* BootPhaseName(BootPhase phase) {
  switch (phase) {
    case BootPhase::kInMonitor:
      return "In-Monitor";
    case BootPhase::kBootstrapSetup:
      return "Bootstrap Setup";
    case BootPhase::kDecompression:
      return "Decompression";
    case BootPhase::kLinuxBoot:
      return "Linux Boot";
  }
  return "?";
}

std::string BootTimeline::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "total %.2fms (monitor %.2f | setup %.2f | decomp %.2f | linux %.2f)",
                total_ms(), phase_ms(BootPhase::kInMonitor),
                phase_ms(BootPhase::kBootstrapSetup), phase_ms(BootPhase::kDecompression),
                phase_ms(BootPhase::kLinuxBoot));
  return buf;
}

}  // namespace imk
