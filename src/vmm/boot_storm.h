// Boot-storm fleet driver: boots N microVMs across T worker threads against
// one shared ImageTemplateCache — the serverless cold-start burst of the
// paper's §7 discussion (a Firecracker host launching hundreds of VMs of the
// same rootfs per second). Measures warm fleet throughput, per-boot latency,
// and the per-VM resident (privately materialized) memory that in-monitor
// randomization costs under each policy.
//
// Layouts are deterministic in the per-VM seed (seed_base + vm index), never
// in thread count or scheduling: VM i's kernel bytes are identical whether
// the storm ran on 1 thread or 16.
#ifndef IMKASLR_SRC_VMM_BOOT_STORM_H_
#define IMKASLR_SRC_VMM_BOOT_STORM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/base/stats.h"
#include "src/kernel/kconfig.h"
#include "src/race/annotations.h"
#include "src/verify/layout_uniqueness.h"
#include "src/vmm/boot_supervisor.h"
#include "src/vmm/image_template.h"
#include "src/vmm/mem_governor.h"

namespace imk {

struct StormOptions {
  uint32_t vms = 16;
  uint32_t threads = 4;
  RandoMode rando = RandoMode::kNone;
  uint64_t mem_size_bytes = 256ull << 20;
  // VM i boots with seed seed_base + i; warm-up boots draw from past the
  // measured range so they never alias a measured layout.
  uint64_t seed_base = 1;
  uint32_t load_threads = 1;  // per-VM pipeline lanes (storm parallelism is across VMs)
  // Guest init checksum each boot must reproduce (0 = skip verification).
  uint64_t expected_checksum = 0;
  // Capture every VM's kernel-image window (determinism tests; costly).
  bool keep_kernel_regions = false;
  // Template cache shared by all workers (null = one private to this storm).
  // Pass the same cache across calls to measure warm-cache behaviour.
  ImageTemplateCache* cache = nullptr;
  // Discarded per-thread boots before the measured window (warms the
  // template cache and the storage page-cache model).
  uint32_t warmup_per_thread = 1;
  // Launch-only lane: run just the monitor-side launch work (template
  // lookup, offset choice, zero-copy map, shuffle, relocate) and skip guest
  // execution. This is the host's cost to bring a VM to its first guest
  // instruction — the number a fleet manager provisions against; guest init
  // afterwards burns the VM's own vCPU time, which the interpreter would
  // otherwise simulate on the host and drown the monitor numbers in.
  bool launch_only = false;
  // false = rebuild the template every boot (the un-amortized per-boot
  // parse+render pipeline, i.e. the serial fleet baseline).
  bool use_template_cache = true;

  // ---- ahead-of-time layout pool ----
  // 0 = no pool. When > 0 and the storm randomizes, one shared LayoutPool is
  // built AFTER the warm-up wave (from the warm template-cache entry),
  // prefilled to this depth, and offered to every measured launch; a
  // background refill executor renders replacements while the storm runs.
  // Which VM grabs which layout is scheduling-dependent, but every layout is
  // unique (one-shot handout) and guest init checksums are layout-
  // independent, so determinism checks still hold. Per-VM hit/miss tallies
  // land in StormStats.
  uint32_t layout_pool_depth = 0;
  uint32_t layout_pool_refill_batch = 2;
  // Capture every booted VM's layout identity (slide, FG permutation digest)
  // for the cross-VM uniqueness check (src/verify/layout_uniqueness.h).
  bool keep_layouts = false;

  // ---- predecoded block engine ----
  // false = every VM runs the legacy per-instruction interpreter (the
  // decode-cache ablation baseline; `imk_tool storm --no-block-cache`).
  bool use_block_cache = true;
  // When the block engine is on, share one storm-wide SharedBlockCache
  // across every VM: blocks decoded from shared (template-aliased) frames
  // are decoded once per fleet instead of once per VM — the decode-cache
  // analogue of CoW page sharing. false keeps each VM's decodes private
  // (isolates the per-VM caching win from the cross-VM sharing win).
  bool share_block_cache = true;

  // ---- churn + memory governance (long-running fleets) ----
  // Each VM slot is launched-and-halted this many times: the storm performs
  // vms * churn_cycles measured launches (seed_base + launch index), each one
  // a full boot-then-teardown, against the SAME shared caches — the
  // long-running-host lane where cache growth, not per-boot latency, is the
  // number that matters. 0 and 1 both mean the classic single-wave storm.
  uint32_t churn_cycles = 1;
  // Process-wide byte budget for the fleet's shared state (guest frames,
  // template images, layout renders, decode tables). > 0 builds a MemGovernor
  // for this storm: soft watermark (mem_soft_pct) triggers the reclamation
  // ladder, the hard watermark gates launch admission (bounded admit_wait_ms
  // wait, then the launch is tallied rejected_mem). 0 = ungoverned.
  uint64_t mem_budget_bytes = 0;
  double mem_soft_pct = 0.75;
  uint64_t admit_wait_ms = 50;
  // External governor override (tests and multi-storm fleets); when set,
  // mem_budget_bytes/mem_soft_pct are ignored and the caller keeps the
  // governor alive past the storm. The storm registers its caches as
  // reclamation tiers either way and unregisters them before they die.
  MemGovernor* governor = nullptr;

  // ---- supervision (fault tolerance) ----
  // When true, every (full-lane) boot runs through BootSupervisor: per-VM
  // failures are tallied instead of aborting the storm, the watchdog bounds
  // each attempt, and the degrade policy decides whether a VM may boot below
  // the requested randomization level. Layouts stay deterministic in the
  // per-VM seed: VM i's attempt seeds depend only on (seed_base + i, attempt
  // index), never on which *other* VMs failed.
  bool supervise = false;
  uint32_t max_retries = 2;
  uint64_t watchdog_wall_ms = 0;
  uint64_t watchdog_instructions = 0;
  DegradePolicy degrade = DegradePolicy::kLadder;
};

struct StormStats {
  uint32_t vms = 0;
  uint32_t threads = 0;
  uint32_t launches = 0;  // measured launches = vms * max(1, churn_cycles)
  uint64_t wall_ns = 0;  // measured storm window, warm-up excluded

  Summary boot_ms;              // per-boot wall latency
  Summary resident_mb;          // whole-VM privately materialized MiB at boot end
  Summary image_dirty_frames;   // private frames inside the kernel image window
  Summary image_shared_frames;  // image frames still aliased to the shared template

  uint64_t image_frames = 0;  // frames one loaded image spans
  uint64_t image_bytes = 0;   // image memsz span
  uint64_t cache_hits = 0;    // template-cache counters across the whole storm
  uint64_t cache_misses = 0;

  // Layout-pool tallies (zero when options.layout_pool_depth == 0). Hits and
  // misses are per measured VM; renders/errors/quarantines are pool-counter
  // deltas over the measured window, so pool_rendered_during is the refill
  // work that OVERLAPPED the storm (prefill renders are excluded).
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_rendered_during = 0;
  uint64_t pool_refill_errors = 0;
  uint64_t pool_quarantined = 0;
  uint64_t pool_shed = 0;  // ready layouts flushed by the governor's ladder
  double pool_hit_rate() const {
    const uint64_t grabs = pool_hits + pool_misses;
    return grabs == 0 ? 0.0 : static_cast<double>(pool_hits) / static_cast<double>(grabs);
  }

  // Decode-cache tallies (zero when the block engine is off or the storm is
  // launch-only). The per-VM dispatch counters are summed over measured
  // boots; the shared_* numbers are the storm-wide SharedBlockCache's view
  // over the whole storm (warm-up included — the fleet steady state). Read
  // next to image_dirty/shared_frames: blocks_shared vs blocks_private is
  // the decode-cache analogue of the page-sharing census, and collapses the
  // same way page sharing does as randomization gets finer-grained.
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t block_cache_invalidations = 0;
  uint64_t blocks_shared = 0;   // per-VM block acquisitions via the shared tier
  uint64_t blocks_private = 0;  // per-VM private decodes (dirty/zero frames)
  uint64_t shared_blocks_resident = 0;  // distinct blocks in the shared cache
  uint64_t shared_block_hits = 0;       // shared-tier grab hits, whole storm
  uint64_t shared_block_misses = 0;
  double block_share_rate() const {
    const uint64_t total = blocks_shared + blocks_private;
    return total == 0 ? 0.0 : static_cast<double>(blocks_shared) / static_cast<double>(total);
  }

  // Per booted VM (in VM-id order), when options.keep_layouts: input for
  // CheckLayoutUniqueness.
  std::vector<LayoutIdentity> layouts;

  // Per-outcome tallies. Every measured launch lands in exactly one
  // ok_*/failed/rejected_mem bucket: accounted() == launches, always —
  // including launches the governor's hard watermark turned away.
  struct OutcomeTally {
    uint32_t ok_first_try = 0;
    uint32_t ok_retried = 0;   // booted at the requested level after retries
    uint32_t ok_degraded = 0;  // booted below the requested level
    uint32_t failed = 0;       // exhausted every attempt the policy allowed
    uint32_t rejected_mem = 0;  // every attempt bounced at the hard watermark
    uint32_t attempts_total = 0;
    uint32_t watchdog_trips = 0;
    uint32_t mem_rejected_attempts = 0;  // attempt-level hard-watermark bounces
    uint64_t cache_quarantines = 0;  // corrupt templates evicted mid-storm
    uint64_t faults_injected = 0;    // FaultInjector fires inside the window
    uint32_t accounted() const {
      return ok_first_try + ok_retried + ok_degraded + failed + rejected_mem;
    }
  };
  // Written by many workers during a supervised storm (under the storm's
  // tally lock); plain data once RunBootStorm returns.
  OutcomeTally outcomes IMK_GUARDED_BY(kStormTally);

  std::vector<Bytes> kernel_regions;  // per launch, when keep_kernel_regions

  // The governor's end-of-storm view (per-category current + high-water
  // bytes, reclaim/admission counters); set only when the storm is governed.
  std::optional<MemGovernor::Stats> mem;

  double boots_per_sec() const {
    const uint32_t n = launches != 0 ? launches : vms;
    return wall_ns == 0 ? 0.0 : static_cast<double>(n) / (static_cast<double>(wall_ns) / 1e9);
  }
  // Mean fraction of the image each VM privately materialized.
  double image_dirty_fraction() const {
    return image_frames == 0 || boot_ms.empty()
               ? 0.0
               : image_dirty_frames.mean() / static_cast<double>(image_frames);
  }
};

// Runs one storm. `relocs_blob` may be empty only for RandoMode::kNone.
// Each worker thread gets a private Storage (the page-cache model is not
// thread-safe); the template cache is the only cross-thread state.
Result<StormStats> RunBootStorm(ByteSpan vmlinux, ByteSpan relocs_blob,
                                const StormOptions& options);

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_BOOT_STORM_H_
