#include "src/vmm/disk_model.h"

#include "src/base/fault_injection.h"

namespace imk {

void Storage::Put(const std::string& name, Bytes content) {
  images_[name] = Image{std::move(content), /*cached=*/true};
}

Result<uint64_t> Storage::SizeOf(const std::string& name) const {
  auto it = images_.find(name);
  if (it == images_.end()) {
    return NotFoundError("no such image: " + name);
  }
  return it->second.content.size();
}

Result<Storage::ReadResult> Storage::Read(const std::string& name) {
  auto it = images_.find(name);
  if (it == images_.end()) {
    return NotFoundError("no such image: " + name);
  }
  // Models an I/O error (error flavor) or a truncated read (short flavor —
  // the image span gets cut, so downstream parsers see a torn file).
  IMK_FAULT_POINT("storage.read");
  ReadResult result;
  result.data = ByteSpan(it->second.content)
                    .subspan(0, IMK_FAULT_TRUNCATE("storage.read", it->second.content.size()));
  if (!it->second.cached) {
    const double seconds =
        static_cast<double>(it->second.content.size()) / model_.ssd_bytes_per_sec;
    result.modeled_io_ns = static_cast<uint64_t>(seconds * 1e9);
    it->second.cached = true;
  }
  return result;
}

void Storage::DropCaches() {
  for (auto& [name, image] : images_) {
    image.cached = false;
  }
}

Status Storage::Warm(const std::string& name) {
  auto it = images_.find(name);
  if (it == images_.end()) {
    return NotFoundError("no such image: " + name);
  }
  it->second.cached = true;
  return OkStatus();
}

}  // namespace imk
