// Fleet memory governor: process-wide byte budget, admission backpressure,
// and a pressure-tiered reclamation ladder over the shared caches.
//
// Every byte the fleet keeps resident is charged to one of four categories
// (guest frames, template images, layout-pool renders, shared decode
// tables) through per-category ByteAccountant adapters the governor hands
// out. Accounting is atomic-only — Charge/Release take no lock — because
// the stores invoke them while holding their own cache locks, all of which
// rank ABOVE the governor mutex (race::LockRank::kMemGovernor = 30). The
// governor mutex guards only the Reclaimable-hook registry and serializes
// the ladder; the ladder holds it while calling into cache locks (ranks
// 40..70), which is the legal increasing direction. Nothing below ever
// locks back up into the governor.
//
// Watermark semantics (budget_bytes == 0 means accounting-only: everything
// admits, nothing sheds unless a fault point forces it):
//
//   soft = budget * soft_pct. Crossing it (or an armed `mem.pressure_soft`
//   fault) opens a pressure epoch: OnMemoryPressure(true) on every hook,
//   then the ladder runs hooks in registration priority order until usage
//   is back under soft or every tier is dry. The epoch closes — hooks see
//   OnMemoryPressure(false) — once usage drops back under soft.
//
//   hard = budget. Admit(need, wait_ms) gates new launches: it reclaims,
//   then admits iff current + need <= hard (an armed `mem.pressure_hard`
//   fault denies synthetically). While over, it polls — plain bounded
//   sleep, not a CondVar, because Release() runs under cache locks and
//   must stay lock-free — and rejects once the wait budget is spent.
//
// Lifetime: the governor must outlive every store holding one of its raw
// accountant pointers (FrameStore, SharedBlockCache — both storm-scoped).
// Long-lived charges (ScopedMemCharge on templates/layouts) instead hold
// the shared adapter, which detaches at governor destruction and turns
// further releases into no-ops.
#ifndef IMKASLR_SRC_VMM_MEM_GOVERNOR_H_
#define IMKASLR_SRC_VMM_MEM_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/mem_accounting.h"
#include "src/race/annotations.h"
#include "src/race/mutex.h"

namespace imk {

enum class MemCategory : uint8_t {
  kGuestFrames = 0,    // FrameStore dirty (privately backed) frames
  kTemplateImages = 1, // ImageTemplateCache pristine pre-rendered images
  kLayoutRenders = 2,  // LayoutPool ahead-of-time randomized renders
  kDecodeTables = 3,   // SharedBlockCache decoded blocks + published tables
  kTraceBuffers = 4,   // imktrace per-thread span rings (src/trace)
};
inline constexpr size_t kMemCategoryCount = 5;

const char* MemCategoryName(MemCategory category);

struct MemGovernorOptions {
  // Hard watermark. 0 = unlimited: accounting only, no shedding, no gating.
  uint64_t budget_bytes = 0;
  // Soft watermark as a fraction of the budget; clamped to [0.1, 1.0].
  double soft_pct = 0.75;
  // Admission poll interval while waiting below Admit()'s wait budget.
  uint64_t admit_poll_us = 200;
};

class MemGovernor {
 public:
  struct CategoryStats {
    uint64_t current_bytes = 0;
    uint64_t high_water_bytes = 0;
  };
  struct Stats {
    uint64_t budget_bytes = 0;
    uint64_t soft_watermark_bytes = 0;
    uint64_t hard_watermark_bytes = 0;
    uint64_t current_total_bytes = 0;
    uint64_t high_water_total_bytes = 0;
    CategoryStats categories[kMemCategoryCount];
    uint64_t reclaim_runs = 0;      // ladder invocations that shed >= 1 tier
    uint64_t reclaimed_bytes = 0;   // bytes tiers reported shed
    uint64_t tier_sheds = 0;        // individual hook invocations that shed
    uint64_t admits = 0;            // Admit() calls that succeeded
    uint64_t admit_waits = 0;       // ... of which had to wait first
    uint64_t admit_rejects = 0;     // Admit() calls that timed out rejected
    bool under_pressure = false;
  };

  explicit MemGovernor(MemGovernorOptions options = {});
  ~MemGovernor();

  MemGovernor(const MemGovernor&) = delete;
  MemGovernor& operator=(const MemGovernor&) = delete;

  // Per-category accounting endpoints. The raw pointer stays valid for the
  // governor's lifetime; the shared form survives it (detached no-op).
  ByteAccountant* accountant(MemCategory category);
  std::shared_ptr<ByteAccountant> shared_accountant(MemCategory category);

  // Lock-free accounting core (also reachable via the adapters above).
  void Charge(MemCategory category, uint64_t bytes);
  void Release(MemCategory category, uint64_t bytes);

  // Reclamation ladder registry. Lower priority sheds first. Hooks must be
  // unregistered before the object behind them is destroyed.
  void RegisterReclaimable(Reclaimable* hook, uint32_t priority);
  void UnregisterReclaimable(Reclaimable* hook);

  // Runs the ladder if usage is over the soft watermark (or an armed
  // `mem.pressure_soft` fault forces an epoch). Returns bytes shed. The
  // caller must hold no locks: the ladder acquires the governor mutex and
  // then cache locks.
  uint64_t MaybeReclaim();

  // Forces every tier to shed everything optional (the reclamation drill
  // used by bench/CI to prove shed caches rebuild). Returns bytes shed.
  uint64_t ReclaimAll();

  // Admission gate: true once current + need_bytes fits under the hard
  // watermark (reclaiming as needed), false after wait_ms of polling.
  bool Admit(uint64_t need_bytes, uint64_t wait_ms);

  uint64_t current_total_bytes() const;
  uint64_t budget_bytes() const { return options_.budget_bytes; }
  uint64_t soft_watermark_bytes() const { return soft_watermark_; }
  uint64_t hard_watermark_bytes() const { return options_.budget_bytes; }
  bool under_pressure() const { return under_pressure_.load(std::memory_order_relaxed); }

  Stats stats() const;

 private:
  // Category-pinned ByteAccountant. Holds the governor through a raw atomic
  // pointer so the shared form can outlive (and detach from) the governor.
  class CategoryAdapter : public ByteAccountant {
   public:
    void Bind(MemGovernor* governor, MemCategory category) {
      category_ = category;
      governor_.store(governor, std::memory_order_release);
    }
    void Detach() { governor_.store(nullptr, std::memory_order_release); }
    void Charge(uint64_t bytes) override {
      MemGovernor* g = governor_.load(std::memory_order_acquire);
      if (g != nullptr) {
        g->Charge(category_, bytes);
      }
    }
    void Release(uint64_t bytes) override {
      MemGovernor* g = governor_.load(std::memory_order_acquire);
      if (g != nullptr) {
        g->Release(category_, bytes);
      }
    }

   private:
    std::atomic<MemGovernor*> governor_{nullptr};
    MemCategory category_ = MemCategory::kGuestFrames;
  };

  struct Hook {
    Reclaimable* hook = nullptr;
    uint32_t priority = 0;
  };

  // Runs the ladder toward `target_bytes` of accounted usage. Opens the
  // pressure epoch if not already open; closes it if the target is reached
  // and usage is back under soft. Returns bytes shed.
  uint64_t RunLadderLocked(uint64_t target_bytes) IMK_GUARDED_BY(kMemGovernor);

  bool OverHardWatermark(uint64_t need_bytes) const;

  const MemGovernorOptions options_;
  uint64_t soft_watermark_ = 0;

  std::atomic<uint64_t> category_current_[kMemCategoryCount] = {};
  std::atomic<uint64_t> category_high_[kMemCategoryCount] = {};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> high_total_{0};
  std::atomic<bool> under_pressure_{false};

  std::atomic<uint64_t> reclaim_runs_{0};
  std::atomic<uint64_t> reclaimed_bytes_{0};
  std::atomic<uint64_t> tier_sheds_{0};
  std::atomic<uint64_t> admits_{0};
  std::atomic<uint64_t> admit_waits_{0};
  std::atomic<uint64_t> admit_rejects_{0};

  mutable race::Mutex mutex_{race::LockRank::kMemGovernor};
  std::vector<Hook> hooks_ IMK_GUARDED_BY(kMemGovernor);  // sorted by priority

  std::shared_ptr<CategoryAdapter> adapters_[kMemCategoryCount];
};

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_MEM_GOVERNOR_H_
