#include "src/vmm/microvm.h"

#include <cstring>

#include "src/base/align.h"
#include "src/base/stopwatch.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/kernel/layout.h"
#include "src/vmm/firmware.h"
#include "src/vmm/layout_pool.h"
#include "src/vmm/mem_governor.h"

namespace imk {
namespace {

// Reads the first PT_LOAD file offset from an ELF header + phdr table
// prefix, without a full parse (the monitor peeks ~200 bytes to compute the
// alignment-preserving load address for the none-optimized path).
Result<uint64_t> PeekFirstLoadOffset(ByteSpan elf_prefix) {
  IMK_ASSIGN_OR_RETURN(ElfReader elf, ElfReader::Parse(elf_prefix));
  uint64_t lo = UINT64_MAX;
  uint64_t off = UINT64_MAX;
  for (const Elf64Phdr& phdr : elf.program_headers()) {
    if (phdr.p_type == kPtLoad && phdr.p_vaddr < lo) {
      lo = phdr.p_vaddr;
      off = phdr.p_offset;
    }
  }
  if (off == UINT64_MAX) {
    return ParseError("no loadable segment");
  }
  return off;
}

}  // namespace

MicroVm::MicroVm(Storage& storage, MicroVmConfig config)
    : storage_(storage), config_(std::move(config)) {
  memory_ = std::make_unique<GuestMemory>(config_.mem_size_bytes);
  if (config_.mem_governor != nullptr) {
    // Attach before the store is visible to any loader thread: every dirty
    // frame this VM materializes is charged to the guest-frames category and
    // released when the VM (and its FrameStore) is torn down.
    memory_->frames().set_accountant(
        config_.mem_governor->shared_accountant(MemCategory::kGuestFrames));
  }
}

void MicroVm::InstallLazyKallsymsHook(uint64_t kallsyms_vaddr, uint64_t count,
                                      const ShuffleMap& map, uint64_t phys_base,
                                      uint64_t link_base, uint64_t mem_size) {
  // First guest touch of kallsyms triggers the deferred fixup (paper §4.3).
  GuestMemory* memory = memory_.get();
  ShuffleMap map_copy = map;
  vcpu_->set_kallsyms_touch_hook(
      [memory, kallsyms_vaddr, count, map_copy, phys_base, link_base, mem_size]() -> Status {
        // Paged view: only the frames the fixup actually rewrites (the
        // kallsyms table itself) materialize, not the whole image window.
        LoadedImageView view(memory->frames(), phys_base, mem_size, link_base);
        return FixupKallsymsTable(view, kallsyms_vaddr, count, map_copy);
      });
}

Result<uint64_t> MicroVm::SetUpBoard() {
  Stopwatch timer;
  const bool qemu = config_.monitor == MonitorKind::kQemuLike;
  IMK_ASSIGN_OR_RETURN(DeviceModel devices,
                       DeviceModel::Create(*memory_, qemu ? DeviceModelConfig::QemuLike()
                                                          : DeviceModelConfig::Firecracker()));
  devices_ = std::move(devices);
  usable_mem_top_ = devices_->reserved_floor_phys();
  if (qemu) {
    IMK_RETURN_IF_ERROR(RunFirmwarePost(*memory_, /*work_iterations=*/400));
  }
  return timer.ElapsedNs();
}

Result<BootReport> MicroVm::Boot() {
  if (booted_) {
    return FailedPreconditionError("MicroVm::Boot called twice");
  }
  BootReport report;
  if (config_.boot_mode == BootMode::kDirect) {
    IMK_ASSIGN_OR_RETURN(report, BootDirect(report));
  } else {
    IMK_ASSIGN_OR_RETURN(report, BootBzImage(report));
  }
  booted_ = true;
  return report;
}

Result<BootReport> MicroVm::BootDirect(BootReport& report) {
  Stopwatch monitor_timer;
  const Deadline* deadline = config_.deadline;
  IMK_RETURN_IF_ERROR(SetUpBoard());
  if (deadline != nullptr) {
    IMK_RETURN_IF_ERROR(deadline->Check("microvm.board"));
  }

  // Read the kernel (and, per Figure 8, the optional relocs image).
  IMK_ASSIGN_OR_RETURN(Storage::ReadResult kernel_read, storage_.Read(config_.kernel_image));
  report.timeline.AddModeled(BootPhase::kInMonitor, kernel_read.modeled_io_ns);
  // QEMU-like monitors stage the image through a bounce buffer (fw_cfg DMA)
  // rather than reading segments straight into guest memory.
  Bytes bounce;
  if (config_.monitor == MonitorKind::kQemuLike) {
    bounce.assign(kernel_read.data.begin(), kernel_read.data.end());
    kernel_read.data = ByteSpan(bounce);
  }
  // Template acquisition: the boot-invariant work (ELF parse, pristine
  // image render, fgkaslr metadata, optionally the in-monitor relocs tool of
  // Figure 8). With the cache warm — the fleet scenario — every boot of the
  // same kernel skips all of it and pays only a CRC32 of the image.
  TemplateOptions template_options;
  template_options.extract_relocs = config_.relocs_from_elf;
  ImageTemplateCache* cache = nullptr;
  if (config_.use_template_cache) {
    cache = config_.template_cache != nullptr ? config_.template_cache
                                              : &GlobalImageTemplateCache();
  }
  if (deadline != nullptr) {
    IMK_RETURN_IF_ERROR(deadline->Check("microvm.template"));
  }
  std::shared_ptr<const ImageTemplate> tmpl;
  if (cache != nullptr) {
    IMK_ASSIGN_OR_RETURN(tmpl, cache->GetOrBuild(kernel_read.data, template_options));
  } else {
    IMK_ASSIGN_OR_RETURN(tmpl, BuildImageTemplate(kernel_read.data, template_options));
  }

  RelocInfo sidecar_relocs;
  const RelocInfo* relocs = nullptr;
  if (config_.relocs_from_elf) {
    if (!tmpl->elf_relocs.empty()) {
      relocs = &tmpl->elf_relocs;
    }
  } else if (!config_.relocs_image.empty()) {
    IMK_ASSIGN_OR_RETURN(Storage::ReadResult relocs_read, storage_.Read(config_.relocs_image));
    report.timeline.AddModeled(BootPhase::kInMonitor, relocs_read.modeled_io_ns);
    IMK_ASSIGN_OR_RETURN(sidecar_relocs, ParseRelocs(relocs_read.data));
    relocs = &sidecar_relocs;
  }

  DirectBootParams params;
  params.requested = config_.rando;
  params.fgkaslr_disabled_cmdline = config_.fgkaslr_disabled_cmdline;
  params.fg = config_.fg;
  params.protocol = config_.protocol;
  params.use_note_constants = config_.use_note_constants;
  params.usable_mem_limit = usable_mem_top_;
  Rng rng(config_.seed != 0 ? config_.seed : HostEntropySeed());
  std::optional<ThreadPool> pool;
  DirectLoadResources resources;
  if (config_.load_threads != 1) {
    pool.emplace(config_.load_threads);
    resources.pool = &*pool;
  }
  resources.deadline = deadline;
  resources.layout_pool = config_.layout_pool;
  // Private single-boot pool (imk_tool boot --layout-pool=N): render the
  // first layout ahead of the load so this boot takes the pooled path. A
  // render failure is not a boot failure — the grab just misses and the
  // inline pipeline below serves the boot.
  std::unique_ptr<LayoutPool> local_pool;
  if (resources.layout_pool == nullptr && config_.layout_pool_depth > 0 &&
      config_.rando != RandoMode::kNone && relocs != nullptr) {
    LayoutPoolOptions pool_options;
    pool_options.depth = config_.layout_pool_depth;
    pool_options.refill_batch = config_.layout_pool_refill_batch;
    pool_options.seed = config_.seed != 0 ? config_.seed : HostEntropySeed();
    local_pool = std::make_unique<LayoutPool>(tmpl, *relocs, params, usable_mem_top_,
                                              pool_options);
    (void)local_pool->Prefill(1);
    resources.layout_pool = local_pool.get();
  }
  IMK_ASSIGN_OR_RETURN(LoadedKernel loaded,
                       DirectLoadFromTemplate(*memory_, tmpl, relocs, params, rng, resources));

  report.choice = loaded.choice;
  report.reloc_stats = loaded.reloc_stats;
  report.loader_timings = loaded.timings;
  report.mem = loaded.mem;
  report.layout_pool_hit = loaded.layout_pool_hit;
  if (loaded.fg.has_value()) {
    report.fg_timings = loaded.fg->timings;
    report.sections_shuffled = loaded.fg->sections_shuffled;
    report.fg_digest = loaded.fg->map.PermutationDigest();
  }
  virt_slide_ = loaded.choice.virt_slide;
  stack_top_ = loaded.stack_top;
  kernel_map_ = loaded.kernel_map;
  direct_map_ = loaded.direct_map;

  vcpu_ = std::make_unique<Vcpu>(*memory_, loaded.kernel_map, loaded.direct_map);
  vcpu_->set_block_cache(config_.use_block_cache);
  vcpu_->set_shared_block_cache(config_.shared_block_cache);
  if (config_.shared_block_cache != nullptr) {
    // Layout identity for whole-table decode sharing: two boots with the
    // same template object, slide, load address, and shuffle permutation
    // translate every vaddr to identical template bytes, so one VM's decode
    // table is directly adoptable by the other. The template pointer is the
    // cache-held identity (stable while the cache pins it).
    uint64_t key = 0x9e3779b97f4a7c15ull;
    const auto mix = [&key](uint64_t v) {
      key ^= v + 0x9e3779b97f4a7c15ull + (key << 6) + (key >> 2);
    };
    mix(reinterpret_cast<uint64_t>(tmpl.get()));
    mix(loaded.choice.virt_slide);
    mix(loaded.choice.phys_load_addr);
    mix(loaded.fg.has_value() ? loaded.fg->map.PermutationDigest() : 0);
    vcpu_->set_layout_key(key != 0 ? key : 1);
  }
  if (icache_ != nullptr) {
    vcpu_->set_icache(icache_);
  }
  if (loaded.fg.has_value() && loaded.fg->kallsyms_pending &&
      config_.fg.kallsyms == KallsymsFixup::kLazy) {
    InstallLazyKallsymsHook(loaded.fg->kallsyms_vaddr, loaded.fg->kallsyms_count, loaded.fg->map,
                            loaded.choice.phys_load_addr, loaded.link_text_vaddr,
                            loaded.image_mem_size);
  }
  report.timeline.AddMeasured(BootPhase::kInMonitor, monitor_timer.ElapsedNs());

  if (config_.verify_after_load) {
    // Static verification window: the image is fully randomized but no guest
    // instruction has run yet, so memory still matches what the randomizer
    // produced (deferred kallsyms tables are expected pristine).
    VerifyInput verify_input;
    verify_input.original_elf = kernel_read.data;
    // Gather-copy: verification must not materialize the shared frames it
    // inspects, or the density accounting would charge the verifier's reads
    // to the VM.
    IMK_ASSIGN_OR_RETURN(Bytes image_copy,
                         memory_->CopyRange(loaded.choice.phys_load_addr, loaded.image_mem_size));
    verify_input.randomized = ByteSpan(image_copy);
    verify_input.base_vaddr = loaded.link_text_vaddr;
    verify_input.relocs = relocs;
    verify_input.map = loaded.fg.has_value() ? &loaded.fg->map : nullptr;
    verify_input.choice = loaded.choice;
    if (!config_.use_note_constants) {
      verify_input.constants = DefaultKernelConstants();
    }
    verify_input.guest_mem_size = usable_mem_top_;
    verify_input.kallsyms_deferred = loaded.fg.has_value() && loaded.fg->kallsyms_pending;
    verify_input.check_orc = config_.fg.fixup_orc;
    IMK_ASSIGN_OR_RETURN(VerifyReport verify_report, VerifyImage(verify_input));
    if (!verify_report.clean()) {
      return InternalError("post-load image verification failed:\n" + verify_report.ToString());
    }
    report.verify = std::move(verify_report);
  }

  // Enter guest context.
  if (deadline != nullptr) {
    IMK_RETURN_IF_ERROR(deadline->Check("microvm.guest_entry"));
    vcpu_->set_deadline(deadline);
  }
  Stopwatch guest_timer;
  IMK_ASSIGN_OR_RETURN(VcpuOutcome outcome,
                       vcpu_->Run(loaded.entry_vaddr, loaded.stack_top, usable_mem_top_,
                                  loaded.resv_start_phys, loaded.resv_end_phys,
                                  config_.max_boot_instructions));
  report.timeline.AddMeasured(BootPhase::kLinuxBoot, guest_timer.ElapsedNs());
  report.init_done = outcome.init_done;
  report.init_checksum = outcome.init_checksum;
  report.guest_stats = outcome.run.stats;
  report.guest_stop = outcome.run.reason;
  report.timeline.RecordBlockCache({outcome.run.stats.block_cache_hits,
                                    outcome.run.stats.block_cache_misses,
                                    outcome.run.stats.block_cache_invalidations,
                                    outcome.run.stats.blocks_shared,
                                    outcome.run.stats.blocks_private});
  report.console = std::move(outcome.console);
  for (const auto& marker : outcome.markers) {
    report.timeline.RecordMarker(marker.first, marker.second);
  }
  return std::move(report);
}

Result<BootReport> MicroVm::BootBzImage(BootReport& report) {
  Stopwatch monitor_timer;
  const Deadline* deadline = config_.deadline;
  IMK_RETURN_IF_ERROR(SetUpBoard());
  if (deadline != nullptr) {
    IMK_RETURN_IF_ERROR(deadline->Check("microvm.board"));
  }

  IMK_ASSIGN_OR_RETURN(Storage::ReadResult image_read, storage_.Read(config_.kernel_image));
  report.timeline.AddModeled(BootPhase::kInMonitor, image_read.modeled_io_ns);
  Bytes bounce;
  if (config_.monitor == MonitorKind::kQemuLike) {
    bounce.assign(image_read.data.begin(), image_read.data.end());
    image_read.data = ByteSpan(bounce);
  }
  IMK_ASSIGN_OR_RETURN(BzImageInfo info, ParseBzImageHeader(image_read.data));

  // Placement. The optimized loader runs the kernel in place, so the image
  // must land where the kernel's first loadable byte is MIN_KERNEL_ALIGN
  // aligned and at/above the 16 MiB minimum (the §3.3 link trick).
  uint64_t bz_load;
  if (info.loader_kind == LoaderKind::kNoneOptimized) {
    if (info.codec != "none") {
      return InvalidArgumentError("optimized loader requires compression none");
    }
    IMK_ASSIGN_OR_RETURN(
        ByteSpan payload_prefix,
        ByteReader(image_read.data).SliceAt(info.PayloadOffset() + 8,
                                            image_read.data.size() - info.PayloadOffset() - 8));
    IMK_ASSIGN_OR_RETURN(uint64_t first_load_offset, PeekFirstLoadOffset(payload_prefix));
    const uint64_t in_image_text = info.PayloadOffset() + 8 + first_load_offset;
    // Find the smallest 2 MiB-aligned text address >= 16 MiB.
    const uint64_t text_phys = AlignUp(kPhysicalStart + in_image_text, kMinKernelAlign);
    bz_load = text_phys - in_image_text;
  } else {
    // Standard loader: stage the image high, leaving room above it for the
    // loader's heap/stack, the payload copy, and the decompressed kernel.
    const uint64_t above = info.TotalSize() + (8ull << 20) + info.payload_size +
                           info.payload_raw_size + (1ull << 20);
    if (above + (64ull << 20) > usable_mem_top_) {
      return InvalidArgumentError("guest memory too small for bzImage staging");
    }
    bz_load = AlignDown(usable_mem_top_ - above, 4096);
  }

  // "Monitor reads bzImage into guest memory" (§3.3 step 1).
  IMK_RETURN_IF_ERROR(memory_->Write(bz_load, image_read.data));
  report.timeline.AddMeasured(BootPhase::kInMonitor, monitor_timer.ElapsedNs());

  // "...and jumps to the bootstrap loader entry point": everything from here
  // until the kernel entry is guest-side cost.
  BootstrapParams params;
  params.rando = config_.rando;
  params.fg = config_.fg;
  params.bzimage_load_phys = bz_load;
  Rng rng(config_.seed != 0 ? config_.seed : HostEntropySeed());
  IMK_ASSIGN_OR_RETURN(BootstrapResult boot, RunBootstrapLoader(*memory_, info, params, rng));
  report.timeline.AddMeasured(BootPhase::kBootstrapSetup,
                              boot.timings.setup_ns + boot.timings.parse_load_ns +
                                  boot.timings.rando_ns);
  report.timeline.AddMeasured(BootPhase::kDecompression, boot.timings.decompress_ns);
  report.bootstrap_timings = boot.timings;
  report.choice = boot.choice;
  report.reloc_stats = boot.reloc_stats;
  if (boot.fg.has_value()) {
    report.fg_timings = boot.fg->timings;
    report.sections_shuffled = boot.fg->sections_shuffled;
  }
  virt_slide_ = boot.choice.virt_slide;
  stack_top_ = boot.stack_top;
  kernel_map_ = boot.kernel_map;
  direct_map_ = boot.direct_map;

  vcpu_ = std::make_unique<Vcpu>(*memory_, boot.kernel_map, boot.direct_map);
  vcpu_->set_block_cache(config_.use_block_cache);
  vcpu_->set_shared_block_cache(config_.shared_block_cache);
  if (icache_ != nullptr) {
    vcpu_->set_icache(icache_);
  }
  if (boot.fg.has_value() && boot.fg->kallsyms_pending &&
      config_.fg.kallsyms == KallsymsFixup::kLazy) {
    InstallLazyKallsymsHook(boot.fg->kallsyms_vaddr, boot.fg->kallsyms_count, boot.fg->map,
                            boot.choice.phys_load_addr, boot.link_text_vaddr,
                            boot.image_mem_size);
  }

  if (deadline != nullptr) {
    IMK_RETURN_IF_ERROR(deadline->Check("microvm.guest_entry"));
    vcpu_->set_deadline(deadline);
  }
  Stopwatch guest_timer;
  IMK_ASSIGN_OR_RETURN(VcpuOutcome outcome,
                       vcpu_->Run(boot.entry_vaddr, boot.stack_top, usable_mem_top_,
                                  boot.resv_start_phys, boot.resv_end_phys,
                                  config_.max_boot_instructions));
  report.timeline.AddMeasured(BootPhase::kLinuxBoot, guest_timer.ElapsedNs());
  report.init_done = outcome.init_done;
  report.init_checksum = outcome.init_checksum;
  report.guest_stats = outcome.run.stats;
  report.guest_stop = outcome.run.reason;
  report.timeline.RecordBlockCache({outcome.run.stats.block_cache_hits,
                                    outcome.run.stats.block_cache_misses,
                                    outcome.run.stats.block_cache_invalidations,
                                    outcome.run.stats.blocks_shared,
                                    outcome.run.stats.blocks_private});
  report.console = std::move(outcome.console);
  for (const auto& marker : outcome.markers) {
    report.timeline.RecordMarker(marker.first, marker.second);
  }
  return std::move(report);
}

Result<VmSnapshot> MicroVm::Snapshot() const {
  if (!booted_) {
    return FailedPreconditionError("Snapshot before Boot");
  }
  VmSnapshot snapshot;
  IMK_ASSIGN_OR_RETURN(snapshot.memory, memory_->CopyRange(0, memory_->size()));
  snapshot.kernel_map = kernel_map_;
  snapshot.direct_map = direct_map_;
  snapshot.stack_top = stack_top_;
  snapshot.virt_slide = virt_slide_;
  return snapshot;
}

Result<std::unique_ptr<MicroVm>> MicroVm::FromSnapshot(Storage& storage,
                                                       const VmSnapshot& snapshot) {
  MicroVmConfig config;
  config.mem_size_bytes = snapshot.memory.size();
  auto vm = std::unique_ptr<MicroVm>(new MicroVm(storage, config));
  IMK_RETURN_IF_ERROR(vm->memory_->Write(0, ByteSpan(snapshot.memory)));
  vm->kernel_map_ = snapshot.kernel_map;
  vm->direct_map_ = snapshot.direct_map;
  vm->stack_top_ = snapshot.stack_top;
  vm->virt_slide_ = snapshot.virt_slide;
  vm->vcpu_ = std::make_unique<Vcpu>(*vm->memory_, snapshot.kernel_map, snapshot.direct_map);
  vm->vcpu_->set_block_cache(config.use_block_cache);
  vm->vcpu_->set_shared_block_cache(config.shared_block_cache);
  vm->booted_ = true;
  return vm;
}

Result<Bytes> MicroVm::KernelRegion() const {
  if (!booted_) {
    return FailedPreconditionError("KernelRegion before Boot");
  }
  // Gather-copy so analysis reads never materialize shared frames.
  return memory_->CopyRange(kernel_map_.phys_start, kernel_map_.size);
}

Result<VcpuOutcome> MicroVm::CallGuest(uint64_t link_entry, uint64_t r1, uint64_t r2,
                                       uint64_t max_instructions) {
  if (!booted_) {
    return FailedPreconditionError("CallGuest before Boot");
  }
  if (icache_ != nullptr) {
    vcpu_->set_icache(icache_);
  }
  return vcpu_->Run(RuntimeAddr(link_entry), stack_top_, r1, r2, 0, max_instructions);
}

}  // namespace imk
