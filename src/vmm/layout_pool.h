// LayoutPool: ahead-of-time randomized layout rendering — (FG)KASLR off the
// launch critical path.
//
// The storm numbers say the quiet part out loud: with in-monitor FGKASLR the
// shuffle + relocation work still sits on every VM's launch path (p50 ~160ms
// vs ~0.3ms for nokaslr). A fleet host, though, knows it will boot the same
// kernel again: the pool renders fully randomized images — slide chosen, FG
// sections placed, all three relocation classes applied, tables fixed up —
// in the background, *before* any VM asks. A launch that hits the pool is a
// zero-copy CoW map of an already-randomized image: dirty-at-launch ~ 0 and
// launch latency approaching the nokaslr path.
//
// Entropy contract (the part that makes this different from snapshot reuse,
// which nullifies ASLR — Morula, paper §7): every layout is seed-derived
// (splitmix64 over (base seed, monotonic render sequence)) and handed out
// EXACTLY ONCE. The sequence counter never resets and never reuses an index,
// so two VMs can never share a layout; a drained pool simply falls back to
// today's inline randomization with the caller's own seed. Layout k depends
// only on (base seed, k) — never on pool depth or refill timing — so layouts
// under a fixed seed are deterministic across depths.
//
// Refill runs asynchronously as low-priority batched tasks on a shared
// ThreadPool (ThreadPool::Submit): a grab that leaves the pool below its
// target depth schedules a render batch and returns immediately. The pool is
// keyed on its ImageTemplateCache entry ((crc32, file size) of the vmlinux)
// plus the boot-varying parameters a render bakes in; a grab presenting a
// *rebuilt* template under the same key means the cache quarantined the old
// entry — the pool flushes every layout rendered from it and re-renders from
// the fresh template (invalidated/quarantined together). Rendered images
// carry chunk CRCs stamped at render time and re-verified at grab
// (`pool.render:corrupt` drills this); a layout that fails verification is
// quarantined, never served. `pool.refill:error` models a failed background
// render — the pool just stays shallower and launches fall back inline.
#ifndef IMKASLR_SRC_VMM_LAYOUT_POOL_H_
#define IMKASLR_SRC_VMM_LAYOUT_POOL_H_

#include <deque>
#include <memory>
#include <optional>

#include "src/base/bytes.h"
#include "src/base/mem_accounting.h"
#include "src/base/result.h"
#include "src/base/threadpool.h"
#include "src/kaslr/fgkaslr.h"
#include "src/kaslr/random_offset.h"
#include "src/kaslr/relocator.h"
#include "src/kernel/relocs.h"
#include "src/race/annotations.h"
#include "src/race/mutex.h"
#include "src/vmm/image_template.h"
#include "src/vmm/loader.h"

namespace imk {

// One fully randomized, ready-to-map image. Immutable once handed out; the
// grabbing boot maps `image` zero-copy (the shared_ptr is the CoW owner pin,
// which also keeps the source template alive through `tmpl`).
struct RenderedLayout {
  uint64_t seed = 0;      // derived seed this layout was rendered from
  uint64_t sequence = 0;  // position in the pool's one-shot seed stream
  Bytes image;            // randomized image at link offsets (tmpl->mem_size bytes)
  OffsetChoice choice;
  RelocStats reloc_stats;
  std::optional<FgKaslrResult> fg;  // shuffle map + deferred-kallsyms state
  std::shared_ptr<const ImageTemplate> tmpl;  // pins the source template
  std::vector<uint32_t> chunk_crcs;  // integrity stamps over `image`
  uint64_t render_ns = 0;
  // Governor charge for `image` (layout-renders category); travels with the
  // layout so a grabbed render stays accounted until the booting VM drops it.
  ScopedMemCharge mem_charge;
};

struct LayoutPoolOptions {
  uint32_t depth = 4;         // target number of ready layouts
  uint32_t refill_batch = 2;  // layouts per background refill task
  uint64_t seed = 1;          // base seed of the one-shot derivation stream
  // Background refill executor. Refill is only scheduled when the pool has
  // real worker threads (workers() > 1); otherwise the pool refills solely
  // through explicit Prefill calls and drained grabs miss.
  ThreadPool* refill_pool = nullptr;
  // Grab-time re-verification depth (same semantics as the template cache:
  // kSampled probes one rotating chunk per grab, kFull re-hashes the image).
  ImageTemplateCache::IntegrityMode integrity = ImageTemplateCache::IntegrityMode::kSampled;
  // Fleet governor endpoint for the layout-renders category; every render's
  // image bytes are charged against it for the layout's lifetime.
  std::shared_ptr<ByteAccountant> accountant;
};

// Thread-safe. One pool serves one (template, boot-params) identity; grabs
// presenting anything else miss (and fall back to inline randomization).
class LayoutPool : public Reclaimable {
 public:
  struct Stats {
    uint64_t hits = 0;            // grabs served a layout
    uint64_t misses = 0;          // grabs that fell back (drained / mismatch / invalidated)
    uint64_t rendered = 0;        // layouts rendered successfully (any thread)
    uint64_t refill_errors = 0;   // renders that failed (pool.refill:error et al.)
    uint64_t quarantined = 0;     // layouts that failed grab-time CRC re-verification
    uint64_t invalidations = 0;   // template rebuilt under the same key: pool flushed
    uint64_t key_mismatches = 0;  // grab presented a foreign template / params
    uint64_t stale_dropped = 0;   // background renders finished against a flushed template
    uint64_t shed = 0;            // ready layouts flushed by memory reclamation
    uint32_t ready = 0;           // layouts ready right now
    bool pressured = false;       // refill suppressed by an open pressure epoch
  };

  // `guest_mem_size` is the resolved offset-chooser bound the grabbing boots
  // will use (params.usable_mem_limit when nonzero, else the guest RAM
  // size) — part of the pool key, because it shapes the slide range.
  // `relocs` is copied. The template must have loadable segments.
  LayoutPool(std::shared_ptr<const ImageTemplate> tmpl, const RelocInfo& relocs,
             const DirectBootParams& params, uint64_t guest_mem_size, LayoutPoolOptions options);
  // Waits for in-flight background renders (the refill ThreadPool must still
  // be alive: destroy the pool before its refill executor).
  ~LayoutPool();

  LayoutPool(const LayoutPool&) = delete;
  LayoutPool& operator=(const LayoutPool&) = delete;

  // Hands out the oldest ready layout exactly once, after re-verifying its
  // chunk CRCs (corrupt layouts are quarantined and the next one served).
  // Returns null — the caller falls back to inline randomization — when the
  // pool is drained, the presented template/params do not match the pool's
  // key, or the template was rebuilt (quarantined) under the same key, which
  // also flushes every stale layout. A grab that leaves the pool below its
  // target depth schedules an asynchronous refill batch.
  std::shared_ptr<const RenderedLayout> TryGrab(const std::shared_ptr<const ImageTemplate>& tmpl,
                                                const DirectBootParams& params,
                                                uint64_t guest_mem_size);

  // Renders synchronously on the calling thread until `target` layouts are
  // ready or accounted for by in-flight background renders (clamped to the
  // configured depth). Returns the first render error, if any; already-
  // rendered layouts stay in the pool either way.
  Status Prefill(uint32_t target);

  // Blocks until no background render is queued or running.
  void WaitIdle();

  // Governor ladder hook (first tier: pool depth is pure optimization).
  // ReclaimMemory flushes ready layouts; OnMemoryPressure(true) suppresses
  // refill — grabs fall back inline — until the pressure epoch closes, which
  // reschedules refill toward the configured depth. The one-shot sequence
  // stream is untouched either way: shed layouts' seeds are simply skipped.
  uint64_t ReclaimMemory(uint64_t want_bytes) override;
  void OnMemoryPressure(bool under_pressure) override;
  const char* reclaim_name() const override { return "layout-pool"; }

  Stats stats() const;
  uint32_t depth() const { return options_.depth; }
  uint64_t base_seed() const { return options_.seed; }

  // The derived seed of sequence index `k` — splitmix64 over (seed, k).
  // Exposed so tests can reproduce a pooled layout inline (bit-identity).
  static uint64_t DeriveLayoutSeed(uint64_t base_seed, uint64_t sequence);

 private:
  // True when (tmpl, params, guest_mem_size) match the pool identity. On a
  // same-key template rebuild, flushes the pool and adopts the new template.
  bool MatchesLocked(const std::shared_ptr<const ImageTemplate>& tmpl,
                     const DirectBootParams& params, uint64_t guest_mem_size)
      IMK_GUARDED_BY(kLayoutPool);
  // Schedules background refill batches toward `depth` (no-op without a
  // usable refill executor). Called with the lock held.
  void ScheduleRefillLocked() IMK_GUARDED_BY(kLayoutPool);
  // One background refill batch: renders up to `count` layouts.
  void RefillTask(uint32_t count);
  // Renders sequence index `sequence` from `tmpl` (serial; no locks held).
  Result<std::shared_ptr<RenderedLayout>> Render(std::shared_ptr<const ImageTemplate> tmpl,
                                                 uint64_t sequence);
  // Hands a finished render to the ready deque (drops it when the pool's
  // template moved on underneath the render).
  void PushRendered(std::shared_ptr<RenderedLayout> layout);

  const LayoutPoolOptions options_;
  const DirectBootParams params_;
  const uint64_t guest_mem_size_;
  const RelocInfo relocs_;

  mutable race::Mutex mutex_{race::LockRank::kLayoutPool};
  race::CondVar idle_cv_;  // WaitIdle / destructor drain
  std::shared_ptr<const ImageTemplate> tmpl_ IMK_GUARDED_BY(kLayoutPool);
  std::deque<std::shared_ptr<RenderedLayout>> ready_ IMK_GUARDED_BY(kLayoutPool);
  uint64_t next_sequence_ IMK_GUARDED_BY(kLayoutPool) = 0;  // never reused
  uint32_t renders_inflight_ IMK_GUARDED_BY(kLayoutPool) = 0;
  uint32_t tasks_outstanding_ IMK_GUARDED_BY(kLayoutPool) = 0;
  uint64_t verify_cursor_ IMK_GUARDED_BY(kLayoutPool) = 0;  // rotates sampled probes
  bool draining_ IMK_GUARDED_BY(kLayoutPool) = false;
  bool pressured_ IMK_GUARDED_BY(kLayoutPool) = false;
  Stats stats_ IMK_GUARDED_BY(kLayoutPool);
};

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_LAYOUT_POOL_H_
