// Direct kernel boot: the monitor loads an uncompressed vmlinux ELF straight
// into guest memory (no bootstrap loader), optionally performing in-monitor
// KASLR / FGKASLR first — the paper's core contribution (§4).
//
// The flow mirrors Figure 7's right-hand column:
//   read ELF -> choose offsets -> load segments at the chosen physical
//   address -> (FGKASLR: parse sections + shuffle + fix tables) -> handle
//   relocations -> hand the entry point and mappings to the vCPU.
//
// Since PR 2 the boot-invariant half of that flow (everything up to and
// including "read ELF", plus the section/symbol metadata FGKASLR needs) is
// factored into an ImageTemplate (src/vmm/image_template.h). DirectLoadKernel
// builds or looks up the template, then DirectLoadFromTemplate runs only the
// boot-varying stages — choose, copy, shuffle, relocate — optionally sharded
// over a ThreadPool. Randomized layouts depend only on (image, seed), never
// on worker count or cache state.
//
// Relocation info arrives as a separate image (the extra monitor argument of
// Figure 8) because uncompressed boot protocols never carried it.
#ifndef IMKASLR_SRC_VMM_LOADER_H_
#define IMKASLR_SRC_VMM_LOADER_H_

#include <memory>
#include <optional>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/threadpool.h"
#include "src/isa/interpreter.h"
#include "src/kaslr/fgkaslr.h"
#include "src/kaslr/random_offset.h"
#include "src/kaslr/relocator.h"
#include "src/kernel/kconfig.h"
#include "src/kernel/relocs.h"
#include "src/vmm/guest_memory.h"
#include "src/vmm/image_template.h"

namespace imk {

class LayoutPool;  // src/vmm/layout_pool.h (includes this header)

// How the monitor finds the 64-bit entry point.
enum class BootProtocol {
  kLinux64,  // ELF e_entry (the 64-bit Linux boot protocol analogue)
  kPvh,      // the PVH ELF note
};

struct DirectBootParams {
  RandoMode requested = RandoMode::kNone;  // in-monitor randomization level
  // "nofgkaslr" on the kernel command line: an fgkaslr-capable kernel booted
  // with the shuffle disabled. The section/symbol parsing still happens
  // (mirroring the paper's §5.1 observation that disabling FGKASLR at boot
  // does not remove the extra ELF parsing) but no function moves.
  bool fgkaslr_disabled_cmdline = false;
  FgKaslrParams fg;
  BootProtocol protocol = BootProtocol::kLinux64;
  // Read CONFIG_PHYSICAL_* etc. from the kernel-constants ELF note when
  // present (paper §4.3's future-work idea); fall back to hardcoded values.
  bool use_note_constants = true;
  uint64_t stack_slack = 1ull << 20;  // mapped bytes past the image for the boot stack
  // Highest usable physical byte (0 = all of guest RAM); the monitor's
  // device model may reserve the top of RAM for queue rings.
  uint64_t usable_mem_limit = 0;
};

// Reusable execution resources for the load pipeline; all optional.
// pool/cache/scratches are perf-only: results are bit-identical with or
// without them. layout_pool changes where the randomness comes from: a
// pool hit maps a pre-rendered layout whose seed derives from the POOL's
// one-shot stream, not from `rng` (which a hit leaves untouched).
struct DirectLoadResources {
  ThreadPool* pool = nullptr;           // shards image copy / fg move / reloc apply
  ImageTemplateCache* cache = nullptr;  // template reuse across boots (null = build inline)
  RelocScratch* reloc_scratch = nullptr;  // reused reloc delta buffers + value index
  Bytes* move_scratch = nullptr;          // reused FGKASLR text-copy buffer
  // Ahead-of-time randomized layouts (src/vmm/layout_pool.h). A randomized
  // load first tries to grab one: a hit skips choose/shuffle/relocate and
  // maps the rendered image zero-copy; a drained or mismatched pool falls
  // back to the inline pipeline below, seeded from `rng` as always.
  LayoutPool* layout_pool = nullptr;
  // Wall-clock watchdog checked at stage boundaries (choose/map/shuffle/
  // reloc); an expired deadline aborts the load with kDeadlineExceeded.
  // nullptr = no deadline.
  const Deadline* deadline = nullptr;
};

// Wall-clock breakdown of monitor-side loading (all measured).
struct LoaderTimings {
  uint64_t parse_ns = 0;      // template acquisition: ELF parse, or cache lookup on a hit
  uint64_t choose_ns = 0;     // random offset selection
  uint64_t load_ns = 0;       // image map/copy into guest memory
  uint64_t fg_ns = 0;         // FGKASLR engine total
  uint64_t reloc_ns = 0;      // relocation walk
  uint64_t total() const { return parse_ns + choose_ns + load_ns + fg_ns + reloc_ns; }
};

// Per-stage memory-materialization accounting for one load: which stages
// made guest frames private to this VM, and how much of the image stayed
// aliased to the shared template. Frames are FrameStore::kFrameBytes.
struct LoaderMemStats {
  uint64_t image_frames = 0;          // frames spanned by the loaded image
  uint64_t mapped_shared_frames = 0;  // aliased zero-copy at the load stage
  uint64_t copied_bytes = 0;          // bytes memcpy'd at the load stage
  uint64_t load_dirty_frames = 0;     // frames materialized by the load stage
  uint64_t fg_dirty_frames = 0;       // ... by FGKASLR shuffle + table fixups
  uint64_t reloc_dirty_frames = 0;    // ... by the relocation walk
  uint64_t dirty_frames_total() const {
    return load_dirty_frames + fg_dirty_frames + reloc_dirty_frames;
  }
};

// Everything needed to run and interrogate the loaded guest.
struct LoadedKernel {
  uint64_t entry_vaddr = 0;      // runtime entry (post-slide)
  LinearMap kernel_map;          // runtime kernel window
  LinearMap direct_map;          // direct view of RAM
  uint64_t stack_top = 0;        // initial SP
  uint64_t resv_start_phys = 0;  // boot register r2: reserved hull start
  uint64_t resv_end_phys = 0;    // boot register r3: reserved hull end

  OffsetChoice choice;           // zero slide / default load when not randomized
  RelocStats reloc_stats;
  std::optional<FgKaslrResult> fg;
  LoaderTimings timings;
  LoaderMemStats mem;
  bool template_cache_hit = false;  // parse was skipped (served from the cache)
  // Randomization was served from the layout pool: choose/shuffle/relocate
  // were all skipped and the mapped image is a pre-rendered layout.
  bool layout_pool_hit = false;

  // Link-time spans, for translating symbols to runtime addresses.
  uint64_t link_text_vaddr = 0;
  uint64_t image_mem_size = 0;

  // Runtime address of a link-time vaddr in *unshuffled* code/data.
  uint64_t RuntimeAddr(uint64_t link_vaddr) const {
    return link_vaddr + choice.virt_slide;
  }
};

// Runs the boot-varying stages against an already-built template: choose
// offsets, map the pristine image into `memory` (whole frames alias the
// template zero-copy; only unaligned tails are copied), shuffle, relocate.
// The template is pinned into the guest memory's frame table, so it outlives
// the call for as long as the memory does. Deterministic in (tmpl, params,
// seed): identical guest bytes for every resources configuration.
Result<LoadedKernel> DirectLoadFromTemplate(GuestMemory& memory,
                                            std::shared_ptr<const ImageTemplate> tmpl,
                                            const RelocInfo* relocs,
                                            const DirectBootParams& params, Rng& rng,
                                            const DirectLoadResources& resources = {});

// Loads `vmlinux` into `memory`: template build (or cache lookup, when
// resources.cache is set) + DirectLoadFromTemplate. `relocs` may be null (or
// empty) only when params.requested == RandoMode::kNone; randomization
// without relocation info is an error (the kernel would crash), mirroring
// the monitor argument contract of Figure 8.
Result<LoadedKernel> DirectLoadKernel(GuestMemory& memory, ByteSpan vmlinux,
                                      const RelocInfo* relocs, const DirectBootParams& params,
                                      Rng& rng, const DirectLoadResources& resources = {});

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_LOADER_H_
