// Virtual device model. Firecracker's value proposition is its *minimal*
// device model (a handful of virtio devices); general-purpose VMMs like QEMU
// instantiate a much larger board. The paper's §2.2 cross-checks its boot
// experiments on QEMU and observes that "the time spent in the hypervisor
// varies" between the two monitors — this module supplies that varying cost
// as real work: per-device config-space construction and queue allocation.
#ifndef IMKASLR_SRC_VMM_DEVICE_MODEL_H_
#define IMKASLR_SRC_VMM_DEVICE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/vmm/guest_memory.h"

namespace imk {

// One emulated device: a config space plus guest-resident queue memory.
struct VirtualDevice {
  std::string name;
  uint32_t device_id = 0;
  Bytes config_space;       // host-side register file
  uint64_t queue_phys = 0;  // guest ring location
  uint64_t queue_bytes = 0;
};

// Board profiles.
struct DeviceModelConfig {
  uint32_t num_devices = 4;          // Firecracker: net, block, vsock, serial
  uint64_t queue_bytes = 16 * 1024;  // per-device ring allocation
  uint64_t config_space_bytes = 256;
  uint64_t mmio_base = 0xd0000000;   // fake MMIO window (identifier only)

  static DeviceModelConfig Firecracker() { return DeviceModelConfig{}; }
  static DeviceModelConfig QemuLike() {
    DeviceModelConfig config;
    config.num_devices = 28;           // PCI bus full of default devices
    config.queue_bytes = 64 * 1024;
    config.config_space_bytes = 4096;  // PCIe extended config space
    return config;
  }
};

// Builds and initializes the board: constructs each device's config space
// and carves + zeroes its queue memory out of the top of guest RAM. All of
// this is real, measured work attributed to the In-Monitor boot phase.
class DeviceModel {
 public:
  // `memory` must outlive the model.
  static Result<DeviceModel> Create(GuestMemory& memory, const DeviceModelConfig& config);

  const std::vector<VirtualDevice>& devices() const { return devices_; }
  uint64_t total_queue_bytes() const { return total_queue_bytes_; }

  // First physical byte reserved for device queues (RAM above is in use).
  uint64_t reserved_floor_phys() const { return reserved_floor_; }

 private:
  std::vector<VirtualDevice> devices_;
  uint64_t total_queue_bytes_ = 0;
  uint64_t reserved_floor_ = 0;
};

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_DEVICE_MODEL_H_
