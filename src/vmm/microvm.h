// MicroVm: the Firecracker-analogue monitor.
//
// Owns guest memory and a vCPU, reads kernel images from Storage (through
// the page-cache model), boots via either the direct uncompressed-kernel
// path (with optional in-monitor (FG)KASLR — the paper's contribution) or
// the bzImage bootstrap path (the self-randomization baselines), and records
// the boot timeline the paper's figures break down.
#ifndef IMKASLR_SRC_VMM_MICROVM_H_
#define IMKASLR_SRC_VMM_MICROVM_H_

#include <memory>
#include <optional>
#include <string>

#include "src/base/result.h"
#include "src/bootstrap/bootstrap_loader.h"
#include "src/kernel/bzimage.h"
#include "src/kernel/kconfig.h"
#include "src/verify/image_verifier.h"
#include "src/vmm/boot_timeline.h"
#include "src/vmm/device_model.h"
#include "src/vmm/disk_model.h"
#include "src/vmm/guest_memory.h"
#include "src/vmm/loader.h"
#include "src/vmm/vcpu.h"

namespace imk {

class MemGovernor;  // src/vmm/mem_governor.h

// Which monitor personality to emulate (paper §2.2 cross-checks Firecracker
// results against QEMU; "the time spent in the hypervisor varies").
enum class MonitorKind {
  kFirecracker,  // minimal device model, no firmware, direct entry
  kQemuLike,     // full board init, firmware POST stage, bounce-buffer load
};

// How the kernel image is booted.
enum class BootMode {
  kDirect,   // uncompressed vmlinux, loaded by the monitor
  kBzImage,  // compressed (or compression-none) image via the bootstrap loader
};

struct MicroVmConfig {
  MonitorKind monitor = MonitorKind::kFirecracker;
  uint64_t mem_size_bytes = 256ull << 20;
  std::string kernel_image;       // Storage name of vmlinux (direct) or bzImage
  std::string relocs_image;       // Storage name of vmlinux.relocs ("" = none) — Figure 8
  // Figure 8's alternative flow: run the `relocs` tool inside the monitor,
  // deriving relocation info from the kernel's .rela sections instead of a
  // sidecar image. Only meaningful for direct boots with randomization.
  bool relocs_from_elf = false;
  BootMode boot_mode = BootMode::kDirect;

  // Direct boot: what the *monitor* does. bzImage boot: what the *guest
  // loader* does (self-randomization), which must match the kernel build.
  RandoMode rando = RandoMode::kNone;
  // Guest command line carries "nofgkaslr" (§5.1): fgkaslr-capable kernel,
  // shuffle disabled at boot, extra ELF parsing still paid.
  bool fgkaslr_disabled_cmdline = false;
  FgKaslrParams fg;
  BootProtocol protocol = BootProtocol::kLinux64;
  bool use_note_constants = true;

  uint64_t seed = 0;              // 0 = draw from host entropy
  uint64_t max_boot_instructions = 2ull << 30;

  // Randomization-pipeline resources (PR 2). `load_threads` execution lanes
  // shard the image copy, FGKASLR moves, and relocation passes (0 = hardware
  // concurrency; 1 = fully serial). Results are bit-identical for every
  // value. The template cache amortizes ELF parsing across boots of the same
  // kernel; `template_cache` overrides the process-global cache (tests and
  // benches inject their own), and `use_template_cache = false` re-parses
  // every boot (the pre-PR-2 behaviour, kept for measurement).
  uint32_t load_threads = 1;
  bool use_template_cache = true;
  ImageTemplateCache* template_cache = nullptr;

  // Ahead-of-time randomized layout pool (src/vmm/layout_pool.h). When
  // `layout_pool` is set, the loader first tries to grab a pre-rendered
  // layout from it (shared across VMs — the fleet scenario). When it is null
  // and `layout_pool_depth` > 0, a randomized direct boot builds a private
  // pool of that depth and prefills one layout before loading, so a single
  // `imk_tool boot --layout-pool=N` exercises the pooled path end to end.
  // Either way, a drained or mismatched pool falls back to the inline
  // randomization pipeline. 0 = no pool.
  LayoutPool* layout_pool = nullptr;
  uint32_t layout_pool_depth = 0;
  uint32_t layout_pool_refill_batch = 2;

  // Predecoded basic-block execution engine (src/isa/block_cache.h). On by
  // default; false runs the legacy per-instruction switch interpreter — the
  // decode-ablation baseline, `imk_tool boot/storm --no-block-cache`.
  // `shared_block_cache`, when set, is a storm-wide cross-VM cache of blocks
  // decoded from shared (template-aliased) frames; the caller owns it and
  // keeps it alive across every boot that uses it. nullptr keeps all decoded
  // blocks VM-private. Architectural results are bit-identical either way.
  bool use_block_cache = true;
  SharedBlockCache* shared_block_cache = nullptr;

  // Fleet memory governor (src/vmm/mem_governor.h). When set, this VM's
  // FrameStore charges its dirty frames against the governor's guest-frames
  // category, and the boot supervisor gains admission gating plus the
  // shared-caches-off pressure rung. The caller owns the governor and must
  // keep it alive past this VM (the frame accounting releases at teardown).
  MemGovernor* mem_governor = nullptr;

  // Boot watchdog wall-clock deadline, checked at monitor stage boundaries
  // and polled by the interpreter while the guest runs. The caller owns the
  // Deadline and keeps it alive across Boot(). nullptr = no watchdog. (The
  // instruction-budget watchdog is max_boot_instructions above.)
  const Deadline* deadline = nullptr;

  // Opt-in static verification (src/verify): after the monitor loads and
  // randomizes the image — before the first guest instruction — run the full
  // invariant battery against the pre-randomization ELF. Boot fails with
  // kInternal if any invariant is violated; on success the report rides in
  // BootReport::verify. Direct boots only: the bzImage path randomizes
  // in-guest and discards the intermediate vmlinux, so the flag is ignored
  // there.
  bool verify_after_load = false;
};

// Everything one boot produced.
struct BootReport {
  BootTimeline timeline;
  bool init_done = false;
  uint64_t init_checksum = 0;
  OffsetChoice choice;
  RelocStats reloc_stats;
  std::optional<BootstrapTimings> bootstrap_timings;  // bzImage boots only
  std::optional<FgKaslrTimings> fg_timings;
  uint32_t sections_shuffled = 0;
  ExecStats guest_stats;
  // Why the guest stopped. A boot that "succeeds" (OK status) but stopped on
  // kInstructionCap or kDeadline without init_done is a hung guest — the
  // supervisor's watchdog classification reads this.
  StopReason guest_stop = StopReason::kHalt;
  std::string console;
  std::optional<VerifyReport> verify;  // set when config.verify_after_load ran
  // Direct boots only: loader stage breakdown + per-stage frame
  // materialization (the storm bench's density numbers come from here).
  LoaderTimings loader_timings;
  LoaderMemStats mem;
  // Direct boots only: the randomized layout came pre-rendered from the
  // layout pool (choose/shuffle/relocate were skipped at launch).
  bool layout_pool_hit = false;
  // Permutation-sensitive digest of the FGKASLR shuffle (0 when no shuffle
  // ran): together with choice.virt_slide this identifies the layout for
  // cross-VM uniqueness checks (src/verify/layout_uniqueness.h).
  uint64_t fg_digest = 0;
};

// A booted VM's frozen state: the zygote/snapshot primitive the paper's
// related-work section discusses (§7). Restored clones share the snapshot's
// memory layout — which is exactly why snapshot reuse nullifies ASLR unless
// the pool keeps multiple differently-randomized zygotes (Morula).
struct VmSnapshot {
  Bytes memory;
  LinearMap kernel_map;
  LinearMap direct_map;
  uint64_t stack_top = 0;
  uint64_t virt_slide = 0;
};

class MicroVm {
 public:
  MicroVm(Storage& storage, MicroVmConfig config);

  // Boots the VM: monitor work + guest init, filling the timeline. May be
  // called once per MicroVm instance.
  Result<BootReport> Boot();

  // Post-boot: runs a guest function at link-time vaddr `link_entry` (must
  // be in unshuffled code) with boot-register args; returns the vCPU outcome.
  // An i-cache model may be attached first via set_icache.
  Result<VcpuOutcome> CallGuest(uint64_t link_entry, uint64_t r1, uint64_t r2,
                                uint64_t max_instructions);

  void set_icache(IcacheModel* icache) { icache_ = icache; }

  // Runtime (post-slide) address of an unshuffled link-time vaddr.
  uint64_t RuntimeAddr(uint64_t link_vaddr) const { return link_vaddr + virt_slide_; }

  // Freezes the booted VM (post-Boot only).
  Result<VmSnapshot> Snapshot() const;

  // Creates a VM resumed from a snapshot: already "booted", ready for
  // CallGuest. The clone has the snapshot's layout, not a fresh one.
  static Result<std::unique_ptr<MicroVm>> FromSnapshot(Storage& storage,
                                                       const VmSnapshot& snapshot);

  // Gather-copy of the guest-physical window holding the kernel image (for
  // layout and page-sharing analysis); does not materialize shared frames.
  Result<Bytes> KernelRegion() const;

  GuestMemory& memory() { return *memory_; }
  const MicroVmConfig& config() const { return config_; }

 private:
  // Board bring-up common to both boot paths: device model (+ firmware POST
  // for the QEMU-like profile). Returns measured nanoseconds.
  Result<uint64_t> SetUpBoard();
  Result<BootReport> BootDirect(BootReport& report);
  Result<BootReport> BootBzImage(BootReport& report);
  void InstallLazyKallsymsHook(uint64_t kallsyms_vaddr, uint64_t count, const ShuffleMap& map,
                               uint64_t phys_base, uint64_t link_base, uint64_t mem_size);

  Storage& storage_;
  MicroVmConfig config_;
  std::unique_ptr<GuestMemory> memory_;
  std::unique_ptr<Vcpu> vcpu_;
  IcacheModel* icache_ = nullptr;

  std::optional<DeviceModel> devices_;
  uint64_t usable_mem_top_ = 0;  // RAM below the device-queue reservation

  // Post-boot state.
  bool booted_ = false;
  uint64_t virt_slide_ = 0;
  uint64_t stack_top_ = 0;
  LinearMap kernel_map_;
  LinearMap direct_map_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_MICROVM_H_
