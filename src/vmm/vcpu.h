// vCPU: the VK64 interpreter wired to guest memory plus the monitor-side
// port-I/O contract — boot-phase timestamps (the perf-traced port writes of
// the paper's §5.1 / artifact appendix), the guest tables descriptor, the
// kallsyms first-touch hook (lazy fixup, §4.3), and the init-done report.
#ifndef IMKASLR_SRC_VMM_VCPU_H_
#define IMKASLR_SRC_VMM_VCPU_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/isa/interpreter.h"
#include "src/vmm/guest_memory.h"

namespace imk {

// What a guest run produced through its ports.
struct VcpuOutcome {
  bool init_done = false;
  uint64_t init_checksum = 0;
  uint64_t r0 = 0;  // guest r0 at stop (function result for post-boot calls)
  std::optional<uint64_t> test_value;
  std::vector<std::pair<uint64_t, uint64_t>> markers;  // (id, host ns)
  std::string console;
  RunResult run;
};

class Vcpu {
 public:
  // `kernel_map` covers the (randomized) kernel window; `direct_map` the
  // direct view of RAM.
  Vcpu(GuestMemory& memory, LinearMap kernel_map, LinearMap direct_map);

  // Called the first time the guest touches kallsyms (lazy fixup hook).
  void set_kallsyms_touch_hook(std::function<Status()> hook) {
    kallsyms_hook_ = std::move(hook);
  }
  void set_icache(IcacheModel* icache) { interpreter_.set_icache(icache); }

  // Execution-engine selection (see Interpreter::set_block_cache): the
  // predecoded block engine by default, the legacy switch loop when disabled.
  void set_block_cache(bool enabled) { interpreter_.set_block_cache(enabled); }
  void set_shared_block_cache(SharedBlockCache* cache) {
    interpreter_.set_shared_block_cache(cache);
  }
  // Layout identity for whole-table decode sharing (see
  // Interpreter::set_layout_key); 0 disables table adoption/publication.
  void set_layout_key(uint64_t key) { interpreter_.set_layout_key(key); }

  // Wall-clock watchdog for guest execution (see Interpreter::set_deadline);
  // an expired deadline surfaces as a clean stop with StopReason::kDeadline.
  void set_deadline(const Deadline* deadline) { interpreter_.set_deadline(deadline); }

  // Runs the guest from `entry` with the given stack and boot registers.
  Result<VcpuOutcome> Run(uint64_t entry, uint64_t stack_top, uint64_t r1, uint64_t r2,
                          uint64_t r3, uint64_t max_instructions);

  Interpreter& interpreter() { return interpreter_; }

 private:
  Result<uint64_t> HandlePort(uint16_t port, bool is_write, uint64_t value);
  Status HandleSetupTables(uint64_t descriptor_vaddr);

  GuestMemory& memory_;
  LinearMap kernel_map_;
  Interpreter interpreter_;
  std::function<Status()> kallsyms_hook_;
  bool kallsyms_touched_ = false;
  VcpuOutcome outcome_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_VCPU_H_
