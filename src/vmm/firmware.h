// Legacy firmware (SeaBIOS-analogue) POST stage.
//
// Firecracker jumps straight into the kernel's 64-bit entry point; general
// VMMs like QEMU first run guest firmware that performs power-on self test,
// builds legacy tables, and only then locates and enters the kernel. This
// module assembles a small VK64 firmware image, places it at the classic
// 0xF0000 physical address, and executes it — real guest-side work that the
// QEMU-like monitor profile pays before every boot (paper §2.2's observation
// that hypervisor time differs across monitors).
#ifndef IMKASLR_SRC_VMM_FIRMWARE_H_
#define IMKASLR_SRC_VMM_FIRMWARE_H_

#include <cstdint>

#include "src/base/result.h"
#include "src/vmm/guest_memory.h"

namespace imk {

inline constexpr uint64_t kFirmwarePhys = 0xf0000;  // classic BIOS segment

struct FirmwareReport {
  uint64_t instructions = 0;
};

// Assembles the POST program, installs it at kFirmwarePhys, and runs it:
// zeroes the legacy BDA/EBDA region, runs `work_iterations` of table-build
// work, and writes a completion signature at 0x9fc00.
Result<FirmwareReport> RunFirmwarePost(GuestMemory& memory, uint64_t work_iterations);

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_FIRMWARE_H_
