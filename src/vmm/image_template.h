// ImageTemplate: the boot-invariant half of direct kernel loading.
//
// Everything DirectLoadKernel used to recompute per boot that depends only
// on the vmlinux bytes — ELF parse, segment layout, PVH/constants notes,
// FGKASLR section/symbol metadata, optionally the relocs extracted from
// .rela sections, and a pristine copy of the loaded image — is captured
// here once. Repeated boots of the same kernel (the paper's §7
// snapshot/zygote fleet scenario, and the serverless many-boots-per-second
// setting of the Firecracker study) then skip parsing entirely and re-run
// only the boot-varying stages: choose offsets, shuffle, relocate.
//
// ImageTemplateCache memoizes templates keyed by (CRC32, size) of the
// vmlinux bytes, LRU-evicted, and safe to share across monitors/threads.
#ifndef IMKASLR_SRC_VMM_IMAGE_TEMPLATE_H_
#define IMKASLR_SRC_VMM_IMAGE_TEMPLATE_H_

#include <array>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/mem_accounting.h"
#include "src/base/result.h"
#include "src/elf/elf_note.h"
#include "src/kaslr/fgkaslr.h"
#include "src/kernel/relocs.h"
#include "src/race/annotations.h"
#include "src/race/mutex.h"

namespace imk {

// What to precompute beyond the mandatory parse.
struct TemplateOptions {
  // Run the in-monitor `relocs` tool (paper Figure 8) over the ELF and cache
  // the decoded tables. Off by default: sidecar-relocs boots never need it.
  bool extract_relocs = false;
};

struct ImageTemplate {
  // Identity (the cache key components). crc32 is stamped by the cache;
  // templates built inline via BuildImageTemplate skip hashing (the cold
  // path has no use for a key) and leave it 0.
  uint32_t crc32 = 0;
  uint64_t file_size = 0;
  bool relocs_extracted = false;

  // Link-time layout.
  uint64_t link_base = 0;   // lowest PT_LOAD vaddr
  uint64_t mem_size = 0;    // memsz span over PT_LOAD headers
  uint64_t elf_entry = 0;   // e_entry (64-bit boot protocol)
  std::optional<uint64_t> pvh_entry;                  // XEN PVH note, if present
  std::optional<KernelConstantsNote> note_constants;  // kernel-constants note, if present

  // The image as the segment loader would place it at link addresses:
  // file bytes copied in, BSS/holes zero. One memcpy re-creates the
  // pre-randomization image in guest memory.
  Bytes pristine;

  // FGKASLR step-1 output; nullopt when the kernel is not fgkaslr-capable.
  std::optional<FgMetadata> fg;

  // Decoded .rela relocation info (only when options.extract_relocs).
  RelocInfo elf_relocs;

  // Integrity references over `pristine`, stamped by the cache at build time
  // (inline BuildImageTemplate leaves them empty: a cold single boot has no
  // shared state to rot). Whole-image CRC plus per-chunk CRCs let a cache
  // hit probe the shared buffer for bit-rot without re-hashing all of it.
  uint32_t pristine_crc32 = 0;
  uint64_t pristine_probe = 0;                // sampled-window fingerprint
  std::vector<uint32_t> pristine_chunk_crcs;  // ImageTemplateCache::kIntegrityChunkBytes each

  // Governor charge for `pristine` (template-images category). Travels with
  // the template: evicting the cache entry while boots still pin the
  // shared_ptr keeps the bytes accounted until the last pin drops.
  ScopedMemCharge mem_charge;
};

// Parses `vmlinux` into a template. Fails with kParseError on malformed
// images, including images with no loadable segments.
Result<std::shared_ptr<const ImageTemplate>> BuildImageTemplate(ByteSpan vmlinux,
                                                                const TemplateOptions& options);

// LRU cache of templates keyed by (CRC32, size) of the image bytes. The
// first lookup of a mapping hashes the full image; repeat lookups of the
// same (address, size) span are recognized by a sampled fingerprint and
// skip the hash, so a warm per-boot lookup is O(1) in the image size. The
// memo assumes callers keep the image bytes immutable while booting from
// them (true for read-only mapped kernel files).
class ImageTemplateCache : public Reclaimable {
 public:
  // Chunk granularity of the stored per-chunk CRCs (see IntegrityMode).
  static constexpr uint64_t kIntegrityChunkBytes = 256 * 1024;

  // How thoroughly a hit re-verifies the stored template against its
  // build-time CRCs before serving it. The templates are the one buffer
  // every VM in the fleet aliases, so silent corruption there fans out.
  enum class IntegrityMode {
    // Sampled fingerprint plus one rotating chunk CRC per hit: ~1-2% of a
    // warm launch, detects localized rot within O(image/chunk) hits.
    kSampled,
    // Every chunk on every hit: deterministic same-hit detection, costs a
    // full image hash per lookup. Tests and fault drills.
    kFull,
  };

  explicit ImageTemplateCache(size_t capacity = 8) : capacity_(capacity ? capacity : 1) {}

  // Returns the cached template for these bytes, building and inserting it
  // on a miss. A cached template is only reused when its precomputed extras
  // cover `options` (a relocs-extracted template satisfies both settings).
  // Hits re-verify the stored pristine bytes per the integrity mode; a
  // template that fails the probe is quarantined (evicted and counted) and
  // rebuilt from the image through the single-flight path — the caller just
  // sees a slower, correct lookup.
  Result<std::shared_ptr<const ImageTemplate>> GetOrBuild(ByteSpan vmlinux,
                                                          const TemplateOptions& options);

  void set_integrity_mode(IntegrityMode mode);

  // Full-CRC audit of every cached template; corrupt entries are
  // quarantined. Returns how many were. The boot supervisor runs this before
  // retrying a boot that failed with a data-shaped error, so a rotted
  // template cannot fail every retry.
  size_t AuditEntries();

  // Fleet memory governance. Templates built after set_accountant carry a
  // ScopedMemCharge over their pristine bytes; ReclaimMemory (the governor's
  // last ladder tier) evicts LRU-tail entries until `want_bytes` worth of
  // template references are dropped — the next lookup of an evicted key is
  // a plain single-flight rebuild.
  void set_accountant(std::shared_ptr<ByteAccountant> accountant);
  uint64_t ReclaimMemory(uint64_t want_bytes) override;
  const char* reclaim_name() const override { return "template-cache"; }
  uint64_t reclaim_evictions() const;

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t quarantined() const;
  size_t size() const;
  void Clear();

 private:
  using Key = std::tuple<uint32_t, uint64_t>;  // (crc32, file size)
  struct Entry {
    Key key;
    std::shared_ptr<const ImageTemplate> value;
    uint64_t verify_cursor = 0;  // rotates the sampled-mode chunk probe
  };

  // True when `tmpl`'s pristine bytes still match its stamped CRCs (always
  // true for unstamped inline builds). `cursor` picks the sampled chunk.
  static bool VerifyTemplate(const ImageTemplate& tmpl, uint64_t cursor, IntegrityMode mode);

  // Span -> key memo so repeat lookups of the same mapping skip the CRC.
  struct SpanMemo {
    const uint8_t* data = nullptr;
    uint64_t size = 0;
    uint64_t probe = 0;  // sampled fingerprint guarding address reuse
    Key key{};
  };

  // Single-flight state for one in-progress build; concurrent callers of
  // the same key block on `done` instead of duplicating the parse.
  struct BuildState {
    bool done = false;
    bool extracts_relocs = false;  // the flight satisfies extract_relocs lookups
    Status status = OkStatus();    // failure propagated to every waiter
  };

  const size_t capacity_;
  mutable race::Mutex mutex_{race::LockRank::kTemplateCache};
  race::CondVar build_done_;
  std::list<Entry> lru_ IMK_GUARDED_BY(kTemplateCache);  // front = most recent
  std::map<Key, std::list<Entry>::iterator> index_ IMK_GUARDED_BY(kTemplateCache);
  std::map<Key, std::shared_ptr<BuildState>> in_flight_ IMK_GUARDED_BY(kTemplateCache);
  std::array<SpanMemo, 4> memo_ IMK_GUARDED_BY(kTemplateCache){};
  size_t memo_next_ IMK_GUARDED_BY(kTemplateCache) = 0;
  uint64_t hits_ IMK_GUARDED_BY(kTemplateCache) = 0;
  uint64_t misses_ IMK_GUARDED_BY(kTemplateCache) = 0;
  uint64_t quarantined_ IMK_GUARDED_BY(kTemplateCache) = 0;
  uint64_t reclaim_evictions_ IMK_GUARDED_BY(kTemplateCache) = 0;
  IntegrityMode integrity_ IMK_GUARDED_BY(kTemplateCache) = IntegrityMode::kSampled;
  std::shared_ptr<ByteAccountant> accountant_ IMK_GUARDED_BY(kTemplateCache);
};

// The process-wide cache monitors share by default (a Firecracker fleet
// booting the same rootfs image thousands of times).
ImageTemplateCache& GlobalImageTemplateCache();

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_IMAGE_TEMPLATE_H_
