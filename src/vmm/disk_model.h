// Storage with a page-cache model.
//
// The paper's Figure 4 compares boots with cold caches (kernel read from an
// SSD at ~560 MB/s) against warm caches (kernel already in the host page
// cache). We cannot drop real host caches here, so cold reads charge a
// *modeled* I/O time at the paper's SSD bandwidth while the actual byte
// movement (which happens either way) is measured for real. DESIGN.md
// documents this substitution.
#ifndef IMKASLR_SRC_VMM_DISK_MODEL_H_
#define IMKASLR_SRC_VMM_DISK_MODEL_H_

#include <map>
#include <string>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace imk {

// Bandwidths used for modeled I/O time.
struct StorageModel {
  double ssd_bytes_per_sec = 560e6;  // the paper's SSD (§5.1)
};

// A named collection of images ("files") with per-image cache state.
class Storage {
 public:
  explicit Storage(StorageModel model = StorageModel()) : model_(model) {}

  // Installs (or replaces) an image. Newly written images are cached (the
  // writer just produced them).
  void Put(const std::string& name, Bytes content);

  bool Contains(const std::string& name) const { return images_.count(name) != 0; }
  Result<uint64_t> SizeOf(const std::string& name) const;

  // Result of a read: a view of the bytes plus the modeled I/O cost.
  struct ReadResult {
    ByteSpan data;
    uint64_t modeled_io_ns = 0;  // 0 when served from page cache
  };

  // Reads an image; marks it cached afterwards (the page cache fills).
  Result<ReadResult> Read(const std::string& name);

  // Drops the page cache (the paper's `echo 3 > drop_caches` step).
  void DropCaches();

  // Pre-warms one image (the paper boots each kernel 5 times first).
  Status Warm(const std::string& name);

 private:
  struct Image {
    Bytes content;
    bool cached = false;
  };
  StorageModel model_;
  std::map<std::string, Image> images_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_VMM_DISK_MODEL_H_
