#include "src/vmm/device_model.h"

#include "src/base/align.h"

namespace imk {
namespace {

const char* kDeviceNames[] = {
    "virtio-net", "virtio-blk", "virtio-vsock", "serial",      "virtio-rng",  "virtio-balloon",
    "e1000",      "ahci",       "usb-ehci",     "usb-uhci",    "vga",         "hpet",
    "rtc",        "pit",        "pic",          "ioapic",      "pci-host",    "isa-bridge",
    "smbus",      "audio",      "fdc",          "parallel",    "pcie-root-1", "pcie-root-2",
    "pcie-root-3", "pcie-root-4", "tpm",        "pvpanic",
};

}  // namespace

Result<DeviceModel> DeviceModel::Create(GuestMemory& memory, const DeviceModelConfig& config) {
  DeviceModel model;
  // Queue rings live at the top of guest RAM, below nothing else.
  uint64_t cursor = AlignDown(memory.size(), 4096);
  model.devices_.reserve(config.num_devices);
  for (uint32_t i = 0; i < config.num_devices; ++i) {
    VirtualDevice device;
    device.name = kDeviceNames[i % (sizeof(kDeviceNames) / sizeof(kDeviceNames[0]))];
    device.device_id = 0x1000 + i;

    // Construct the register file: ids, feature words, BAR-like slots — the
    // per-device initialization cost a board pays at power-on.
    device.config_space.resize(config.config_space_bytes);
    for (uint64_t off = 0; off + 4 <= device.config_space.size(); off += 4) {
      StoreLe32(device.config_space.data() + off,
                static_cast<uint32_t>((device.device_id << 16) ^ (off * 2654435761u)));
    }
    StoreLe32(device.config_space.data(), device.device_id);

    // Carve and zero the queue ring out of guest RAM.
    if (cursor < config.queue_bytes + (16ull << 20)) {
      return InvalidArgumentError("guest memory too small for device queues");
    }
    cursor -= config.queue_bytes;
    device.queue_phys = cursor;
    device.queue_bytes = config.queue_bytes;
    IMK_RETURN_IF_ERROR(memory.Zero(device.queue_phys, device.queue_bytes));
    model.total_queue_bytes_ += device.queue_bytes;

    model.devices_.push_back(std::move(device));
  }
  model.reserved_floor_ = cursor;
  return model;
}

}  // namespace imk
