#include "src/vmm/image_template.h"

#include <cstring>
#include <utility>

#include "src/base/crc32.h"
#include "src/base/fault_injection.h"
#include "src/race/tracker.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/trace/trace.h"

namespace imk {
namespace {

// Computes the memsz span [min vaddr, max vaddr+memsz) over PT_LOAD headers.
// An image with no loadable segment reports mem_size 0 (not the wrapped
// `0 - UINT64_MAX` the old min/max seeding produced, which defeated the
// caller's emptiness check).
Status ImageSpan(const ElfReader& elf, uint64_t* base_vaddr, uint64_t* mem_size) {
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  bool any = false;
  for (const Elf64Phdr& phdr : elf.program_headers()) {
    if (phdr.p_type != kPtLoad) {
      continue;
    }
    if (phdr.p_vaddr + phdr.p_memsz < phdr.p_vaddr) {
      return ParseError("PT_LOAD vaddr+memsz overflows");
    }
    any = true;
    lo = std::min(lo, phdr.p_vaddr);
    hi = std::max(hi, phdr.p_vaddr + phdr.p_memsz);
  }
  if (!any) {
    *base_vaddr = 0;
    *mem_size = 0;
    return OkStatus();
  }
  *base_vaddr = lo;
  *mem_size = hi - lo;
  return OkStatus();
}

Result<uint64_t> PvhEntry(const ElfReader& elf) {
  for (const ElfSection& section : elf.sections()) {
    if (section.header.sh_type != kShtNote) {
      continue;
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan data, elf.SectionData(section));
    IMK_ASSIGN_OR_RETURN(std::vector<ElfNote> notes, ParseNoteSection(data));
    for (const ElfNote& note : notes) {
      if (note.name == kNoteNameXen && note.type == kNoteTypePvhEntry && note.desc.size() >= 8) {
        return LoadLe64(note.desc.data());
      }
    }
  }
  return NotFoundError("no PVH entry note in kernel image");
}

Result<KernelConstantsNote> NoteConstants(const ElfReader& elf) {
  for (const ElfSection& section : elf.sections()) {
    if (section.header.sh_type != kShtNote) {
      continue;
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan data, elf.SectionData(section));
    IMK_ASSIGN_OR_RETURN(std::vector<ElfNote> notes, ParseNoteSection(data));
    if (auto constants = FindKernelConstants(notes)) {
      return *constants;
    }
  }
  return NotFoundError("no kernel-constants note");
}

// Cheap identity probe over a fixed set of sampled windows (ends + interior
// strides). Used only to guard the cache's span memo against an address being
// reused for a different image; the authoritative key stays the full CRC32.
uint64_t SampleFingerprint(ByteSpan span) {
  uint64_t h = 0xcbf29ce484222325ull ^ span.size();
  const auto mix = [&h](const uint8_t* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h = (h ^ p[i]) * 0x100000001b3ull;
    }
  };
  const size_t n = span.size();
  if (n <= 256) {
    mix(span.data(), n);
    return h;
  }
  mix(span.data(), 64);
  mix(span.data() + n - 64, 64);
  for (uint64_t k = 1; k <= 6; ++k) {
    mix(span.data() + (n * k) / 7, 32);
  }
  return h;
}

// Per-chunk CRCs over `data` at the cache's integrity granularity.
std::vector<uint32_t> ChunkCrcs(ByteSpan data) {
  constexpr uint64_t kChunk = ImageTemplateCache::kIntegrityChunkBytes;
  std::vector<uint32_t> crcs;
  crcs.reserve((data.size() + kChunk - 1) / kChunk);
  for (uint64_t off = 0; off < data.size(); off += kChunk) {
    crcs.push_back(Crc32(data.subspan(off, std::min(kChunk, data.size() - off))));
  }
  return crcs;
}

Result<std::shared_ptr<const ImageTemplate>> BuildTemplate(
    ByteSpan vmlinux, const TemplateOptions& options, uint32_t crc, bool stamp_integrity,
    std::shared_ptr<ByteAccountant> accountant) {
  // Models a parse blowing up on a torn/hostile image before any state is
  // cached (the supervisor treats the resulting kParseError as data-shaped).
  IMK_FAULT_POINT("template.parse");
  auto tmpl = std::make_shared<ImageTemplate>();
  tmpl->crc32 = crc;
  tmpl->file_size = vmlinux.size();
  tmpl->relocs_extracted = options.extract_relocs;

  IMK_ASSIGN_OR_RETURN(ElfReader elf, ElfReader::Parse(vmlinux));
  IMK_RETURN_IF_ERROR(ImageSpan(elf, &tmpl->link_base, &tmpl->mem_size));
  if (tmpl->mem_size == 0) {
    return ParseError("kernel image has no loadable segments");
  }
  tmpl->elf_entry = elf.entry();

  // Pre-render the loaded image at link addresses: file bytes in place,
  // BSS tails and inter-segment holes zero. Per-boot loading becomes a
  // single (chunkable) memcpy of this buffer.
  tmpl->pristine.assign(tmpl->mem_size, 0);
  for (const Elf64Phdr& phdr : elf.program_headers()) {
    if (phdr.p_type != kPtLoad) {
      continue;
    }
    const uint64_t offset = phdr.p_vaddr - tmpl->link_base;
    if (phdr.p_filesz > phdr.p_memsz || offset + phdr.p_memsz > tmpl->mem_size) {
      return ParseError("PT_LOAD segment exceeds image span");
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan file_bytes, elf.SegmentData(phdr));
    if (file_bytes.size() > phdr.p_filesz) {
      return ParseError("PT_LOAD file image larger than p_filesz");
    }
    std::memcpy(tmpl->pristine.data() + offset, file_bytes.data(), file_bytes.size());
  }

  // The notes are optional image features; their absence is tolerated, any
  // other failure (corrupt note section, bad offsets) still surfaces. Same
  // for fgkaslr metadata, whose "not built for it" signal is a precondition.
  IMK_ASSIGN_OPTIONAL_OR_RETURN(tmpl->pvh_entry, PvhEntry(elf), ErrorCode::kNotFound);
  IMK_ASSIGN_OPTIONAL_OR_RETURN(tmpl->note_constants, NoteConstants(elf), ErrorCode::kNotFound);
  IMK_ASSIGN_OPTIONAL_OR_RETURN(tmpl->fg, ParseFgMetadata(elf), ErrorCode::kFailedPrecondition);
  if (options.extract_relocs) {
    IMK_ASSIGN_OR_RETURN(tmpl->elf_relocs, ExtractRelocsFromElf(elf));
  }
  if (stamp_integrity) {
    const ByteSpan pristine(tmpl->pristine);
    tmpl->pristine_crc32 = Crc32(pristine);
    tmpl->pristine_probe = SampleFingerprint(pristine);
    tmpl->pristine_chunk_crcs = ChunkCrcs(pristine);
  }
  tmpl->mem_charge = ScopedMemCharge(std::move(accountant), tmpl->pristine.size());
  return std::shared_ptr<const ImageTemplate>(std::move(tmpl));
}

}  // namespace

Result<std::shared_ptr<const ImageTemplate>> BuildImageTemplate(ByteSpan vmlinux,
                                                                const TemplateOptions& options) {
  // Inline (cacheless) builds skip hashing: the cold boot path never needs
  // an identity key, and hashing the whole image would dominate the parse.
  // They skip the integrity stamp for the same reason — a template nothing
  // else aliases has no shared state to re-verify.
  return BuildTemplate(vmlinux, options, /*crc=*/0, /*stamp_integrity=*/false,
                       /*accountant=*/nullptr);
}

Result<std::shared_ptr<const ImageTemplate>> ImageTemplateCache::GetOrBuild(
    ByteSpan vmlinux, const TemplateOptions& options) {
  // Fast identity path: a monitor fleet resolves the same read-only mapping
  // of the kernel image on every boot. Re-hashing all of it per lookup would
  // cost more than the remaining boot-varying pipeline, so (address, size,
  // sampled fingerprint) memoizes span -> key; the fingerprint guards
  // against the address being recycled for a different image. The memo
  // assumes the caller keeps the image bytes immutable while booting from
  // them, which holds for read-only mapped kernel files.
  IMK_TRACE_SPAN("template", "template.get_or_build");
  const uint64_t probe = SampleFingerprint(vmlinux);
  Key key{};
  bool have_key = false;
  {
    std::lock_guard<race::Mutex> lock(mutex_);
    for (const SpanMemo& memo : memo_) {
      if (memo.data == vmlinux.data() && memo.size == vmlinux.size() && memo.probe == probe) {
        key = memo.key;
        have_key = true;
        break;
      }
    }
  }
  if (!have_key) {
    key = Key{Crc32(vmlinux), vmlinux.size()};
  }
  {
    std::lock_guard<race::Mutex> lock(mutex_);
    memo_[memo_next_] = SpanMemo{vmlinux.data(), vmlinux.size(), probe, key};
    memo_next_ = (memo_next_ + 1) % memo_.size();
  }
  // Outer loop: re-entered when a hit fails its integrity probe and is
  // quarantined — the lookup then rebuilds through the miss path.
  for (;;) {
    std::shared_ptr<const ImageTemplate> cand;
    uint64_t cursor = 0;
    IntegrityMode mode = IntegrityMode::kSampled;
    std::shared_ptr<BuildState> flight;
    std::shared_ptr<ByteAccountant> accountant;
    {
      std::unique_lock<race::Mutex> lock(mutex_);
      for (;;) {
        auto it = index_.find(key);
        // A template built with extract_relocs satisfies lookups without it;
        // the reverse upgrade falls through to a rebuild.
        if (it != index_.end() &&
            (it->second->value->relocs_extracted || !options.extract_relocs)) {
          IMK_RACE_SHARED_WRITE("template_cache.entries", this, 0, kTemplateCache);
          lru_.splice(lru_.begin(), lru_, it->second);
          ++hits_;
          cand = it->second->value;
          cursor = it->second->verify_cursor++;
          mode = integrity_;
          break;  // verify outside the lock
        }
        // Single-flight: a boot storm's first wave all misses the same key at
        // once, and parsing the same multi-megabyte vmlinux N times in
        // parallel wastes N-1 parses worth of CPU and transient memory. One
        // caller builds; everyone else blocks on its completion, then re-reads
        // the cache. Distinct keys still build fully concurrently.
        auto fit = in_flight_.find(key);
        if (fit != in_flight_.end() &&
            (fit->second->extracts_relocs || !options.extract_relocs)) {
          std::shared_ptr<BuildState> other = fit->second;
          build_done_.wait(lock, [&] { return other->done; });
          if (!other->status.ok()) {
            return other->status;
          }
          continue;  // the builder inserted it; take the hit path
        }
        ++misses_;
        flight = std::make_shared<BuildState>();
        flight->extracts_relocs = options.extract_relocs;
        in_flight_[key] = flight;  // may replace a weaker (no-relocs) flight
        accountant = accountant_;
        break;
      }
    }

    if (cand != nullptr) {
      // Bit-rot drill: flips bytes in the shared pristine buffer right
      // before the integrity probe (the window real rot would occupy).
      IMK_FAULT_CORRUPT("template.cache_hit",
                        const_cast<uint8_t*>(cand->pristine.data()), cand->pristine.size());
      // Verify outside the lock — a full-mode probe hashes the whole image
      // and must not serialize other lookups.
      if (VerifyTemplate(*cand, cursor, mode)) {
        return cand;
      }
      std::lock_guard<race::Mutex> lock(mutex_);
      IMK_RACE_SHARED_WRITE("template_cache.entries", this, 0, kTemplateCache);
      auto it = index_.find(key);
      if (it != index_.end() && it->second->value == cand) {
        lru_.erase(it->second);
        index_.erase(it);
      }
      ++quarantined_;
      --hits_;  // the serve never happened
      IMK_TRACE_INSTANT("template", "template.quarantine");
      continue;  // rebuild as a miss
    }

    // Build outside the lock: parsing a large vmlinux must not serialize
    // lookups of other kernels.
    const uint64_t build_span = trace::SpanStart();
    Result<std::shared_ptr<const ImageTemplate>> built =
        BuildTemplate(vmlinux, options, std::get<0>(key), /*stamp_integrity=*/true,
                      std::move(accountant));
    trace::EmitComplete("template", "template.build", build_span);

    std::lock_guard<race::Mutex> lock(mutex_);
    IMK_RACE_SHARED_WRITE("template_cache.entries", this, 0, kTemplateCache);
    auto fit = in_flight_.find(key);
    if (fit != in_flight_.end() && fit->second == flight) {
      in_flight_.erase(fit);
    }
    flight->done = true;
    if (!built.ok()) {
      flight->status = built.status();
      build_done_.notify_all();
      return built.status();
    }
    flight->status = OkStatus();
    build_done_.notify_all();
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->value = *built;  // upgrade (or racing duplicate; same bytes)
      return *built;
    }
    lru_.push_front(Entry{key, *built});
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
    }
    return *built;
  }
}

bool ImageTemplateCache::VerifyTemplate(const ImageTemplate& tmpl, uint64_t cursor,
                                        IntegrityMode mode) {
  if (tmpl.pristine_chunk_crcs.empty()) {
    return true;  // unstamped (inline build); nothing to check against
  }
  const ByteSpan pristine(tmpl.pristine);
  const size_t nchunks = tmpl.pristine_chunk_crcs.size();
  const auto chunk_ok = [&](size_t c) {
    const uint64_t off = c * kIntegrityChunkBytes;
    const uint64_t len = std::min(kIntegrityChunkBytes, pristine.size() - off);
    return Crc32(pristine.subspan(off, len)) == tmpl.pristine_chunk_crcs[c];
  };
  if (mode == IntegrityMode::kFull) {
    for (size_t c = 0; c < nchunks; ++c) {
      if (!chunk_ok(c)) {
        return false;
      }
    }
    return true;
  }
  // Sampled: the fingerprint (a few hundred bytes) guards every hit; the
  // rotating full-chunk CRC — the expensive probe — runs every stride-th hit
  // so a warm launch's verify cost stays a fraction of the map work while
  // localized rot is still caught within O(stride * image/chunk) hits.
  constexpr uint64_t kSampledChunkStride = 8;
  if (SampleFingerprint(pristine) != tmpl.pristine_probe) {
    return false;
  }
  if (cursor % kSampledChunkStride != 0) {
    return true;
  }
  return chunk_ok(static_cast<size_t>((cursor / kSampledChunkStride) % nchunks));
}

void ImageTemplateCache::set_integrity_mode(IntegrityMode mode) {
  std::lock_guard<race::Mutex> lock(mutex_);
  integrity_ = mode;
}

void ImageTemplateCache::set_accountant(std::shared_ptr<ByteAccountant> accountant) {
  std::lock_guard<race::Mutex> lock(mutex_);
  accountant_ = std::move(accountant);
}

uint64_t ImageTemplateCache::ReclaimMemory(uint64_t want_bytes) {
  // Called by the governor's ladder (governor mutex held, rank 30 < 40).
  // Evicts from the LRU tail; a boot still pinning an evicted template keeps
  // its bytes accounted through the template's own ScopedMemCharge, so the
  // count returned here is "references dropped", not "bytes now free" — the
  // ladder simply moves on to the next tier if usage stays high.
  std::lock_guard<race::Mutex> lock(mutex_);
  IMK_RACE_SHARED_WRITE("template_cache.entries", this, 0, kTemplateCache);
  uint64_t released = 0;
  while (!lru_.empty() && released < want_bytes) {
    released += lru_.back().value->pristine.size();
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++reclaim_evictions_;
  }
  return released;
}

uint64_t ImageTemplateCache::reclaim_evictions() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  return reclaim_evictions_;
}

size_t ImageTemplateCache::AuditEntries() {
  // Snapshot under the lock, hash outside it, quarantine survivors of the
  // race (an entry replaced mid-audit is a fresh build; leave it alone).
  std::vector<std::pair<Key, std::shared_ptr<const ImageTemplate>>> snapshot;
  {
    std::lock_guard<race::Mutex> lock(mutex_);
    snapshot.reserve(lru_.size());
    for (const Entry& entry : lru_) {
      snapshot.emplace_back(entry.key, entry.value);
    }
  }
  size_t dropped = 0;
  for (const auto& [key, tmpl] : snapshot) {
    if (VerifyTemplate(*tmpl, 0, IntegrityMode::kFull)) {
      continue;
    }
    std::lock_guard<race::Mutex> lock(mutex_);
    IMK_RACE_SHARED_WRITE("template_cache.entries", this, 0, kTemplateCache);
    auto it = index_.find(key);
    if (it != index_.end() && it->second->value == tmpl) {
      lru_.erase(it->second);
      index_.erase(it);
      ++quarantined_;
      ++dropped;
    }
  }
  return dropped;
}

uint64_t ImageTemplateCache::hits() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  return hits_;
}

uint64_t ImageTemplateCache::misses() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  return misses_;
}

uint64_t ImageTemplateCache::quarantined() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  return quarantined_;
}

size_t ImageTemplateCache::size() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  return lru_.size();
}

void ImageTemplateCache::Clear() {
  std::lock_guard<race::Mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  memo_.fill(SpanMemo{});
  memo_next_ = 0;
  hits_ = 0;
  misses_ = 0;
  quarantined_ = 0;
}

ImageTemplateCache& GlobalImageTemplateCache() {
  static ImageTemplateCache* cache = new ImageTemplateCache();
  return *cache;
}

}  // namespace imk
