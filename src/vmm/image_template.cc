#include "src/vmm/image_template.h"

#include <cstring>
#include <utility>

#include "src/base/crc32.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"

namespace imk {
namespace {

// Computes the memsz span [min vaddr, max vaddr+memsz) over PT_LOAD headers.
// An image with no loadable segment reports mem_size 0 (not the wrapped
// `0 - UINT64_MAX` the old min/max seeding produced, which defeated the
// caller's emptiness check).
Status ImageSpan(const ElfReader& elf, uint64_t* base_vaddr, uint64_t* mem_size) {
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  bool any = false;
  for (const Elf64Phdr& phdr : elf.program_headers()) {
    if (phdr.p_type != kPtLoad) {
      continue;
    }
    if (phdr.p_vaddr + phdr.p_memsz < phdr.p_vaddr) {
      return ParseError("PT_LOAD vaddr+memsz overflows");
    }
    any = true;
    lo = std::min(lo, phdr.p_vaddr);
    hi = std::max(hi, phdr.p_vaddr + phdr.p_memsz);
  }
  if (!any) {
    *base_vaddr = 0;
    *mem_size = 0;
    return OkStatus();
  }
  *base_vaddr = lo;
  *mem_size = hi - lo;
  return OkStatus();
}

Result<uint64_t> PvhEntry(const ElfReader& elf) {
  for (const ElfSection& section : elf.sections()) {
    if (section.header.sh_type != kShtNote) {
      continue;
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan data, elf.SectionData(section));
    IMK_ASSIGN_OR_RETURN(std::vector<ElfNote> notes, ParseNoteSection(data));
    for (const ElfNote& note : notes) {
      if (note.name == kNoteNameXen && note.type == kNoteTypePvhEntry && note.desc.size() >= 8) {
        return LoadLe64(note.desc.data());
      }
    }
  }
  return NotFoundError("no PVH entry note in kernel image");
}

Result<KernelConstantsNote> NoteConstants(const ElfReader& elf) {
  for (const ElfSection& section : elf.sections()) {
    if (section.header.sh_type != kShtNote) {
      continue;
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan data, elf.SectionData(section));
    IMK_ASSIGN_OR_RETURN(std::vector<ElfNote> notes, ParseNoteSection(data));
    if (auto constants = FindKernelConstants(notes)) {
      return *constants;
    }
  }
  return NotFoundError("no kernel-constants note");
}

// Cheap identity probe over a fixed set of sampled windows (ends + interior
// strides). Used only to guard the cache's span memo against an address being
// reused for a different image; the authoritative key stays the full CRC32.
uint64_t SampleFingerprint(ByteSpan span) {
  uint64_t h = 0xcbf29ce484222325ull ^ span.size();
  const auto mix = [&h](const uint8_t* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h = (h ^ p[i]) * 0x100000001b3ull;
    }
  };
  const size_t n = span.size();
  if (n <= 256) {
    mix(span.data(), n);
    return h;
  }
  mix(span.data(), 64);
  mix(span.data() + n - 64, 64);
  for (uint64_t k = 1; k <= 6; ++k) {
    mix(span.data() + (n * k) / 7, 32);
  }
  return h;
}

Result<std::shared_ptr<const ImageTemplate>> BuildTemplate(ByteSpan vmlinux,
                                                           const TemplateOptions& options,
                                                           uint32_t crc) {
  auto tmpl = std::make_shared<ImageTemplate>();
  tmpl->crc32 = crc;
  tmpl->file_size = vmlinux.size();
  tmpl->relocs_extracted = options.extract_relocs;

  IMK_ASSIGN_OR_RETURN(ElfReader elf, ElfReader::Parse(vmlinux));
  IMK_RETURN_IF_ERROR(ImageSpan(elf, &tmpl->link_base, &tmpl->mem_size));
  if (tmpl->mem_size == 0) {
    return ParseError("kernel image has no loadable segments");
  }
  tmpl->elf_entry = elf.entry();

  // Pre-render the loaded image at link addresses: file bytes in place,
  // BSS tails and inter-segment holes zero. Per-boot loading becomes a
  // single (chunkable) memcpy of this buffer.
  tmpl->pristine.assign(tmpl->mem_size, 0);
  for (const Elf64Phdr& phdr : elf.program_headers()) {
    if (phdr.p_type != kPtLoad) {
      continue;
    }
    const uint64_t offset = phdr.p_vaddr - tmpl->link_base;
    if (phdr.p_filesz > phdr.p_memsz || offset + phdr.p_memsz > tmpl->mem_size) {
      return ParseError("PT_LOAD segment exceeds image span");
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan file_bytes, elf.SegmentData(phdr));
    if (file_bytes.size() > phdr.p_filesz) {
      return ParseError("PT_LOAD file image larger than p_filesz");
    }
    std::memcpy(tmpl->pristine.data() + offset, file_bytes.data(), file_bytes.size());
  }

  {
    auto pvh = PvhEntry(elf);
    if (pvh.ok()) {
      tmpl->pvh_entry = *pvh;
    } else if (pvh.status().code() != ErrorCode::kNotFound) {
      return pvh.status();
    }
  }
  {
    auto constants = NoteConstants(elf);
    if (constants.ok()) {
      tmpl->note_constants = *constants;
    } else if (constants.status().code() != ErrorCode::kNotFound) {
      return constants.status();
    }
  }
  {
    // Absent fgkaslr support is a property of the image, not an error; any
    // other failure (corrupt symtab, bad section offsets) still surfaces.
    auto fg = ParseFgMetadata(elf);
    if (fg.ok()) {
      tmpl->fg = std::move(*fg);
    } else if (fg.status().code() != ErrorCode::kFailedPrecondition) {
      return fg.status();
    }
  }
  if (options.extract_relocs) {
    IMK_ASSIGN_OR_RETURN(tmpl->elf_relocs, ExtractRelocsFromElf(elf));
  }
  return std::shared_ptr<const ImageTemplate>(std::move(tmpl));
}

}  // namespace

Result<std::shared_ptr<const ImageTemplate>> BuildImageTemplate(ByteSpan vmlinux,
                                                                const TemplateOptions& options) {
  // Inline (cacheless) builds skip hashing: the cold boot path never needs
  // an identity key, and hashing the whole image would dominate the parse.
  return BuildTemplate(vmlinux, options, /*crc=*/0);
}

Result<std::shared_ptr<const ImageTemplate>> ImageTemplateCache::GetOrBuild(
    ByteSpan vmlinux, const TemplateOptions& options) {
  // Fast identity path: a monitor fleet resolves the same read-only mapping
  // of the kernel image on every boot. Re-hashing all of it per lookup would
  // cost more than the remaining boot-varying pipeline, so (address, size,
  // sampled fingerprint) memoizes span -> key; the fingerprint guards
  // against the address being recycled for a different image. The memo
  // assumes the caller keeps the image bytes immutable while booting from
  // them, which holds for read-only mapped kernel files.
  const uint64_t probe = SampleFingerprint(vmlinux);
  Key key{};
  bool have_key = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const SpanMemo& memo : memo_) {
      if (memo.data == vmlinux.data() && memo.size == vmlinux.size() && memo.probe == probe) {
        key = memo.key;
        have_key = true;
        break;
      }
    }
  }
  if (!have_key) {
    key = Key{Crc32(vmlinux), vmlinux.size()};
  }
  std::shared_ptr<BuildState> flight;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    memo_[memo_next_] = SpanMemo{vmlinux.data(), vmlinux.size(), probe, key};
    memo_next_ = (memo_next_ + 1) % memo_.size();
    for (;;) {
      auto it = index_.find(key);
      // A template built with extract_relocs satisfies lookups without it;
      // the reverse upgrade falls through to a rebuild.
      if (it != index_.end() &&
          (it->second->value->relocs_extracted || !options.extract_relocs)) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        return it->second->value;
      }
      // Single-flight: a boot storm's first wave all misses the same key at
      // once, and parsing the same multi-megabyte vmlinux N times in
      // parallel wastes N-1 parses worth of CPU and transient memory. One
      // caller builds; everyone else blocks on its completion, then re-reads
      // the cache. Distinct keys still build fully concurrently.
      auto fit = in_flight_.find(key);
      if (fit != in_flight_.end() &&
          (fit->second->extracts_relocs || !options.extract_relocs)) {
        std::shared_ptr<BuildState> other = fit->second;
        build_done_.wait(lock, [&] { return other->done; });
        if (!other->status.ok()) {
          return other->status;
        }
        continue;  // the builder inserted it; take the hit path
      }
      ++misses_;
      flight = std::make_shared<BuildState>();
      flight->extracts_relocs = options.extract_relocs;
      in_flight_[key] = flight;  // may replace a weaker (no-relocs) flight
      break;
    }
  }

  // Build outside the lock: parsing a large vmlinux must not serialize
  // lookups of other kernels.
  Result<std::shared_ptr<const ImageTemplate>> built =
      BuildTemplate(vmlinux, options, std::get<0>(key));

  std::lock_guard<std::mutex> lock(mutex_);
  auto fit = in_flight_.find(key);
  if (fit != in_flight_.end() && fit->second == flight) {
    in_flight_.erase(fit);
  }
  flight->done = true;
  if (!built.ok()) {
    flight->status = built.status();
    build_done_.notify_all();
    return built.status();
  }
  flight->status = OkStatus();
  build_done_.notify_all();
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->value = *built;  // upgrade (or racing duplicate; same bytes)
    return *built;
  }
  lru_.push_front(Entry{key, *built});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return *built;
}

uint64_t ImageTemplateCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t ImageTemplateCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

size_t ImageTemplateCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void ImageTemplateCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  memo_.fill(SpanMemo{});
  memo_next_ = 0;
  hits_ = 0;
  misses_ = 0;
}

ImageTemplateCache& GlobalImageTemplateCache() {
  static ImageTemplateCache* cache = new ImageTemplateCache();
  return *cache;
}

}  // namespace imk
