#include "src/bootstrap/bootstrap_loader.h"

#include <cstring>

#include "src/base/align.h"
#include "src/base/stopwatch.h"
#include "src/compress/registry.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/kernel/layout.h"

namespace imk {
namespace {

// Boot heap sizes: FGKASLR must buffer the entire shuffled text, so its heap
// is up to 8x larger — the §5.2 "Bootstrap Setup" cost.
constexpr uint64_t kBootHeapBytes = 512 * 1024;
constexpr uint64_t kBootHeapFgMultiplier = 8;
constexpr uint64_t kBootStackBytes = 16 * 1024;

void SpanOfLoads(const ElfReader& elf, uint64_t* base_vaddr, uint64_t* mem_size,
                 uint64_t* first_load_offset) {
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  uint64_t off = UINT64_MAX;
  for (const Elf64Phdr& phdr : elf.program_headers()) {
    if (phdr.p_type != kPtLoad) {
      continue;
    }
    if (phdr.p_vaddr < lo) {
      lo = phdr.p_vaddr;
      off = phdr.p_offset;
    }
    hi = std::max(hi, phdr.p_vaddr + phdr.p_memsz);
  }
  *base_vaddr = lo;
  *mem_size = hi - lo;
  *first_load_offset = off;
}

}  // namespace

Result<BootstrapResult> RunBootstrapLoader(GuestMemory& memory, const BzImageInfo& image,
                                           const BootstrapParams& params, Rng& rng) {
  BootstrapResult result;
  const bool optimized = image.loader_kind == LoaderKind::kNoneOptimized;
  if (optimized && image.codec != "none") {
    return InvalidArgumentError("none-optimized loader requires an uncompressed payload");
  }
  const uint64_t bz_load = params.bzimage_load_phys;
  if (bz_load == 0) {
    return InvalidArgumentError("bootstrap requires the bzImage load address");
  }
  const uint64_t header_size = 64;
  const uint64_t payload_phys = bz_load + header_size + image.loader_size;
  const uint64_t bz_end = payload_phys + image.payload_size;

  // ---- step 1: loader setup (stack + heap + bss zeroing) ----
  Stopwatch setup_timer;
  uint64_t heap_bytes = kBootHeapBytes;
  if (params.rando == RandoMode::kFgKaslr) {
    heap_bytes *= kBootHeapFgMultiplier;
  }
  // The loader's stack/heap live right after the bzImage; zeroing them is
  // real work the direct-boot path never pays (§5.2).
  const uint64_t heap_phys = AlignUp(bz_end, 4096);
  IMK_RETURN_IF_ERROR(memory.Zero(heap_phys, heap_bytes + kBootStackBytes));

  // ---- step 2: copy the compressed payload out of the way ----
  // (standard loader only; enables in-place decompression.)
  uint64_t staging_phys = heap_phys + heap_bytes + kBootStackBytes;
  if (!optimized) {
    staging_phys = AlignUp(staging_phys, 4096);
    IMK_ASSIGN_OR_RETURN(MutableByteSpan src,
                         memory.Slice(payload_phys, image.payload_size));
    IMK_ASSIGN_OR_RETURN(MutableByteSpan dst,
                         memory.Slice(staging_phys, image.payload_size));
    std::memmove(dst.data(), src.data(), src.size());
  }
  result.timings.setup_ns = setup_timer.ElapsedNs();

  // ---- step 3: decompress ----
  // Standard loader decompresses (or, for compression "none", copies) the
  // payload to the output area. The optimized loader skips this entirely:
  // the payload already *is* the kernel, resident and aligned.
  Stopwatch decompress_timer;
  uint64_t raw_phys;
  uint64_t raw_size;
  if (optimized) {
    raw_phys = payload_phys;
    raw_size = image.payload_size;
  } else {
    IMK_ASSIGN_OR_RETURN(MutableByteSpan compressed,
                         memory.Slice(staging_phys, image.payload_size));
    raw_phys = AlignUp(staging_phys + image.payload_size, 4096);
    raw_size = image.payload_raw_size;
    if (image.codec == "none") {
      // Compression "none" (§3.3): "decompression" is a straight copy of the
      // kernel to the location it expects to run.
      IMK_RETURN_IF_ERROR(
          memory.Write(raw_phys, ByteSpan(compressed.data(), compressed.size())));
    } else {
      // Decompress straight into guest memory at the output location — no
      // intermediate buffer, as the real in-place loader works.
      IMK_ASSIGN_OR_RETURN(CodecPtr codec, MakeCodec(image.codec));
      IMK_ASSIGN_OR_RETURN(MutableByteSpan out,
                           memory.Slice(raw_phys, raw_size + Codec::kDecompressSlack));
      IMK_RETURN_IF_ERROR(codec->DecompressInto(
          ByteSpan(compressed.data(), compressed.size()), image.payload_raw_size, out));
    }
  }
  // The optimized loader performs no decompression work at all; don't let
  // stopwatch noise show up as a phantom phase.
  result.timings.decompress_ns = optimized ? 0 : decompress_timer.ElapsedNs();

  // ---- step 4: parse the payload [u64 elf_size | elf | relocs] ----
  Stopwatch parse_timer;
  IMK_ASSIGN_OR_RETURN(MutableByteSpan raw_span, memory.Slice(raw_phys, raw_size));
  ByteReader payload_reader(ByteSpan(raw_span.data(), raw_span.size()));
  IMK_ASSIGN_OR_RETURN(uint64_t elf_size, payload_reader.ReadU64());
  IMK_ASSIGN_OR_RETURN(ByteSpan elf_bytes, payload_reader.ReadBytes(elf_size));
  RelocInfo relocs;
  if (payload_reader.remaining() > 0) {
    IMK_ASSIGN_OR_RETURN(ByteSpan reloc_bytes,
                         payload_reader.ReadBytes(payload_reader.remaining()));
    IMK_ASSIGN_OR_RETURN(relocs, ParseRelocs(reloc_bytes));
  }
  IMK_ASSIGN_OR_RETURN(ElfReader elf, ElfReader::Parse(elf_bytes));
  uint64_t link_base = 0;
  uint64_t mem_size = 0;
  uint64_t first_load_offset = 0;
  SpanOfLoads(elf, &link_base, &mem_size, &first_load_offset);
  result.link_text_vaddr = link_base;
  result.image_mem_size = mem_size;

  // Physical placement.
  uint64_t phys_base;
  if (optimized) {
    // Run in place: the monitor placed the bzImage so the kernel's first
    // loadable byte sits at a MIN_KERNEL_ALIGN boundary (§3.3's link trick).
    phys_base = raw_phys + 8 + first_load_offset;
    if (!IsAligned(phys_base, kMinKernelAlign)) {
      return FailedPreconditionError("in-place kernel is not aligned to MIN_KERNEL_ALIGN");
    }
    // NOBITS (.bss) zeroing is deferred to step 6: in the in-place layout the
    // bss virtual range aliases the file's non-loadable tail (symtab etc.),
    // which FGKASLR still needs to read.
  } else if (params.rando != RandoMode::kNone) {
    // Self-randomized physical placement, below the bzImage staging area.
    OffsetConstraints constraints;
    constraints.image_mem_size = mem_size;
    constraints.guest_mem_size = bz_load;  // stay clear of the staging region
    constraints.reserved_tail = kBootStackSlack;
    constraints.constants = DefaultKernelConstants();
    IMK_ASSIGN_OR_RETURN(OffsetChoice phys_choice, ChooseRandomOffsets(constraints, rng));
    phys_base = phys_choice.phys_load_addr;
  } else {
    phys_base = kPhysicalStart;
  }

  // Load segments (skipped in place).
  if (!optimized) {
    for (const Elf64Phdr& phdr : elf.program_headers()) {
      if (phdr.p_type != kPtLoad) {
        continue;
      }
      const uint64_t phys = phys_base + (phdr.p_vaddr - link_base);
      IMK_ASSIGN_OR_RETURN(ByteSpan file_bytes, elf.SegmentData(phdr));
      IMK_RETURN_IF_ERROR(memory.Write(phys, file_bytes));
      if (phdr.p_memsz > phdr.p_filesz) {
        IMK_RETURN_IF_ERROR(memory.Zero(phys + phdr.p_filesz, phdr.p_memsz - phdr.p_filesz));
      }
    }
  }
  result.timings.parse_load_ns = parse_timer.ElapsedNs();

  // ---- step 5: self-randomization (identical algorithms to in-monitor) ----
  Stopwatch rando_timer;
  IMK_ASSIGN_OR_RETURN(MutableByteSpan image_ram, memory.Slice(phys_base, mem_size));
  LoadedImageView view(image_ram, link_base);
  if (params.rando != RandoMode::kNone) {
    if (relocs.empty()) {
      return FailedPreconditionError("kernel built without relocation info cannot self-randomize");
    }
    OffsetConstraints virt_constraints;
    virt_constraints.image_mem_size = mem_size;
    virt_constraints.guest_mem_size = memory.size();
    virt_constraints.reserved_tail = kBootStackSlack;
    virt_constraints.constants = DefaultKernelConstants();
    IMK_ASSIGN_OR_RETURN(uint64_t slots, VirtualSlots(virt_constraints));
    result.choice.virt_slide = rng.NextBelow(slots) * virt_constraints.constants.physical_align;
    result.choice.phys_load_addr = phys_base;

    if (params.rando == RandoMode::kFgKaslr) {
      IMK_ASSIGN_OR_RETURN(FgKaslrResult fg, ShuffleFunctions(elf, view, params.fg, rng));
      IMK_ASSIGN_OR_RETURN(result.reloc_stats, ApplyRelocationsShuffled(view, relocs,
                                                                        result.choice.virt_slide,
                                                                        fg.map));
      result.fg = std::move(fg);
    } else {
      IMK_ASSIGN_OR_RETURN(result.reloc_stats,
                           ApplyRelocations(view, relocs, result.choice.virt_slide));
    }
  } else {
    result.choice.virt_slide = 0;
    result.choice.phys_load_addr = phys_base;
  }
  result.timings.rando_ns = rando_timer.ElapsedNs();

  // ---- step 6: "jump" — hand back the runtime environment ----
  if (optimized) {
    // Deferred .bss zeroing (see step 4): all ELF metadata reads are done.
    for (const Elf64Phdr& phdr : elf.program_headers()) {
      if (phdr.p_type == kPtLoad && phdr.p_memsz > phdr.p_filesz) {
        const uint64_t phys = phys_base + (phdr.p_vaddr - link_base);
        IMK_RETURN_IF_ERROR(memory.Zero(phys + phdr.p_filesz, phdr.p_memsz - phdr.p_filesz));
      }
    }
  }
  result.entry_vaddr = elf.entry() + result.choice.virt_slide;
  result.kernel_map.virt_start = link_base + result.choice.virt_slide;
  result.kernel_map.phys_start = phys_base;
  result.kernel_map.size = mem_size + kBootStackSlack;
  result.direct_map.virt_start = kDirectMapBase;
  result.direct_map.phys_start = 0;
  result.direct_map.size = memory.size();
  result.stack_top = result.kernel_map.virt_start + mem_size + kBootStackSlack - 16;
  // Reserved hull: the kernel image + boot stack, plus (in the in-place
  // case) the surrounding payload file bytes. Staging areas outside the hull
  // are dead after the jump and get recycled by the kernel's memory init.
  if (optimized) {
    result.resv_start_phys = AlignDown(std::min(phys_base, raw_phys), 4096);
    result.resv_end_phys = AlignUp(
        std::max(phys_base + mem_size + kBootStackSlack, raw_phys + raw_size), 4096);
  } else {
    result.resv_start_phys = AlignDown(phys_base, 4096);
    result.resv_end_phys = AlignUp(phys_base + mem_size + kBootStackSlack, 4096);
  }
  return result;
}

}  // namespace imk
