// Bootstrap loader simulation: the guest-side bzImage boot path the paper's
// self-randomization baselines use (§2.2, §3.3).
//
// The loader's *logic* executes as host C++ (exactly like the monitor-side
// code — that symmetry is the paper's point), but every step performs the
// real work the guest bootstrap loader would perform, and its cost is
// attributed to guest-side boot phases:
//
//   1. setup: allocate + zero the boot stack/heap/bss. FGKASLR needs a boot
//      heap up to 8x larger (it must copy the entire text section before
//      scattering it), which §5.2 identifies as a real cost.
//   2. copy the compressed payload out of the way for in-place decompression
//      (standard loader only).
//   3. decompress (the dominant cost, Figure 5; for compression "none" this
//      is the copy to the kernel's expected location; eliminated entirely by
//      the none-optimized loader which runs the kernel in place, §3.3).
//   4. parse the ELF, load segments.
//   5. self-randomize: choose a virtual offset and handle relocations —
//      identical algorithms to the in-monitor path (src/kaslr).
//   6. "jump" to the kernel: return the entry point and mappings.
#ifndef IMKASLR_SRC_BOOTSTRAP_BOOTSTRAP_LOADER_H_
#define IMKASLR_SRC_BOOTSTRAP_BOOTSTRAP_LOADER_H_

#include <optional>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/isa/interpreter.h"
#include "src/kaslr/fgkaslr.h"
#include "src/kaslr/random_offset.h"
#include "src/kaslr/relocator.h"
#include "src/kernel/bzimage.h"
#include "src/kernel/kconfig.h"
#include "src/vmm/guest_memory.h"

namespace imk {

struct BootstrapParams {
  RandoMode rando = RandoMode::kNone;  // what the guest kernel was built for
  FgKaslrParams fg;
  uint64_t bzimage_load_phys = 0;  // where the monitor placed the bzImage; 0 = auto
};

// Phase breakdown (all measured host wall-clock of real work).
struct BootstrapTimings {
  uint64_t setup_ns = 0;       // stack/heap/bss zeroing + payload copy-away
  uint64_t decompress_ns = 0;  // decompression (or the none-codec copy)
  uint64_t parse_load_ns = 0;  // ELF parse + segment placement
  uint64_t rando_ns = 0;       // (FG)KASLR: offset choice + shuffle + relocs
  uint64_t total() const { return setup_ns + decompress_ns + parse_load_ns + rando_ns; }
};

struct BootstrapResult {
  uint64_t entry_vaddr = 0;
  LinearMap kernel_map;
  LinearMap direct_map;
  uint64_t stack_top = 0;
  uint64_t resv_start_phys = 0;  // reserved hull handed to the kernel (r2)
  uint64_t resv_end_phys = 0;    // (r3)

  OffsetChoice choice;
  RelocStats reloc_stats;
  std::optional<FgKaslrResult> fg;
  BootstrapTimings timings;

  uint64_t link_text_vaddr = 0;
  uint64_t image_mem_size = 0;

  uint64_t RuntimeAddr(uint64_t link_vaddr) const {
    return link_vaddr + choice.virt_slide;
  }
};

// Runs the full bootstrap sequence for a bzImage already resident in guest
// memory semantics-wise; `image` carries the parsed container. The image's
// LoaderKind selects the standard or none-optimized flow.
Result<BootstrapResult> RunBootstrapLoader(GuestMemory& memory, const BzImageInfo& image,
                                           const BootstrapParams& params, Rng& rng);

}  // namespace imk

#endif  // IMKASLR_SRC_BOOTSTRAP_BOOTSTRAP_LOADER_H_
