// LEBench-style guest microbenchmarks (paper §5.4, Figure 11).
//
// LEBench times performance-critical kernel operations. Here each operation
// is a guest "syscall": the vCPU enters the kernel's syscall dispatcher,
// which indirect-calls a handler that walks its helper functions (contiguous
// at link time; scattered by FGKASLR) and performs a size-dependent buffer
// loop. Runs attach an L1 i-cache model, and results are reported in
// simulated cycles — reproducing the paper's finding that KASLR is free at
// runtime while FGKASLR pays a few percent through i-cache locality loss.
#ifndef IMKASLR_SRC_GUESTLOAD_LEBENCH_H_
#define IMKASLR_SRC_GUESTLOAD_LEBENCH_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/isa/icache.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

namespace imk {

// One LEBench operation: a syscall id plus an argument (buffer bytes).
struct LeBenchOp {
  std::string name;
  uint64_t syscall_id = 0;
  uint64_t arg = 0;
};

// The operation mix, mirroring LEBench's small/big variants of hot syscalls.
// Ids are taken modulo the kernel's syscall count.
std::vector<LeBenchOp> DefaultLeBenchOps(uint32_t num_syscalls);

// Per-operation result.
struct LeBenchResult {
  std::string name;
  double cycles_per_iteration = 0;
  double icache_miss_rate = 0;
  uint64_t guest_result = 0;  // handler return value (validated by tests)
};

// Runs the ops round-robin for `iterations` rounds against a booted VM.
// Round-robin matters: it keeps each op contending for the modeled L1i the
// way a real workload mix would. `icache` defaults to the Haswell-class
// geometry; tests with tiny kernels shrink it to create equivalent pressure.
Result<std::vector<LeBenchResult>> RunLeBench(MicroVm& vm, const KernelBuildInfo& kernel,
                                              uint32_t iterations,
                                              const IcacheConfig& icache = IcacheConfig());

}  // namespace imk

#endif  // IMKASLR_SRC_GUESTLOAD_LEBENCH_H_
