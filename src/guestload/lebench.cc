#include "src/guestload/lebench.h"

#include "src/isa/icache.h"

namespace imk {

std::vector<LeBenchOp> DefaultLeBenchOps(uint32_t num_syscalls) {
  std::vector<LeBenchOp> ops = {
      {"ref", 0, 0},
      {"cpu", 1, 64},
      {"context switch", 2, 256},
      {"small read", 3, 4 * 1024},
      {"big read", 3, 256 * 1024},
      {"small write", 4, 4 * 1024},
      {"big write", 4, 256 * 1024},
      {"small mmap", 5, 16 * 1024},
      {"big mmap", 5, 1024 * 1024},
      {"fork", 6, 64 * 1024},
      {"thread create", 7, 32 * 1024},
      {"small page fault", 0, 4 * 1024},
      {"big page fault", 1, 512 * 1024},
      {"select", 2, 1024},
      {"poll", 3, 1024},
      {"epoll", 4, 1024},
  };
  for (LeBenchOp& op : ops) {
    op.syscall_id %= num_syscalls;
  }
  return ops;
}

Result<std::vector<LeBenchResult>> RunLeBench(MicroVm& vm, const KernelBuildInfo& kernel,
                                              uint32_t iterations,
                                              const IcacheConfig& icache_config) {
  std::vector<LeBenchOp> ops = DefaultLeBenchOps(kernel.num_syscalls);

  IcacheModel icache(icache_config);
  vm.set_icache(&icache);

  struct Accumulator {
    uint64_t cycles = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t guest_result = 0;
  };
  std::vector<Accumulator> totals(ops.size());

  // Warm-up round (cold-cache compulsory misses are not what Figure 11
  // measures), then timed round-robin rounds.
  for (uint32_t round = 0; round < iterations + 1; ++round) {
    for (size_t i = 0; i < ops.size(); ++i) {
      const uint64_t hits_before = icache.hits();
      const uint64_t misses_before = icache.misses();
      IMK_ASSIGN_OR_RETURN(VcpuOutcome outcome,
                           vm.CallGuest(kernel.syscall_entry_vaddr, ops[i].syscall_id,
                                        ops[i].arg, 1ull << 28));
      if (round == 0) {
        continue;
      }
      totals[i].cycles += outcome.run.stats.cycles;
      totals[i].hits += icache.hits() - hits_before;
      totals[i].misses += icache.misses() - misses_before;
      totals[i].guest_result = outcome.r0;
    }
  }
  vm.set_icache(nullptr);

  std::vector<LeBenchResult> results(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    results[i].name = ops[i].name;
    results[i].cycles_per_iteration =
        static_cast<double>(totals[i].cycles) / static_cast<double>(iterations);
    const uint64_t accesses = totals[i].hits + totals[i].misses;
    results[i].icache_miss_rate =
        accesses == 0 ? 0.0
                      : static_cast<double>(totals[i].misses) / static_cast<double>(accesses);
    results[i].guest_result = totals[i].guest_result;
  }
  return results;
}

}  // namespace imk
