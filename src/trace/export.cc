#include "src/trace/export.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace imk {
namespace trace {
namespace {

// Minimal escaper for the few metacharacters a trace-point literal could
// legally contain (names are C string literals like "loader.reloc").
void AppendEscaped(std::string& out, const char* s) {
  for (; *s != 0; ++s) {
    if (*s == '"' || *s == '\\') {
      out.push_back('\\');
    }
    out.push_back(*s);
  }
}

// Finds `"key":` inside [begin, end) of `text` and returns the offset just
// past the colon, or npos.
size_t FindKey(const std::string& text, size_t begin, size_t end, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = text.find(needle, begin);
  if (pos == std::string::npos || pos >= end) {
    return std::string::npos;
  }
  return pos + needle.size();
}

bool ParseStringValue(const std::string& text, size_t begin, size_t end, const char* key,
                      std::string* out) {
  size_t pos = FindKey(text, begin, end, key);
  if (pos == std::string::npos || text[pos] != '"') {
    return false;
  }
  ++pos;
  out->clear();
  while (pos < end && text[pos] != '"') {
    if (text[pos] == '\\' && pos + 1 < end) {
      ++pos;
    }
    out->push_back(text[pos]);
    ++pos;
  }
  return pos < end;
}

bool ParseU64Value(const std::string& text, size_t begin, size_t end, const char* key,
                   uint64_t* out) {
  const size_t pos = FindKey(text, begin, end, key);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtoull(text.c_str() + pos, nullptr, 10);
  return true;
}

}  // namespace

std::string ToChromeJson(const std::vector<Event>& events) {
  std::string out = "{\"traceEvents\":[\n";
  char buf[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    out += "{\"ph\":\"";
    out += e.kind == EventKind::kSpan ? "X" : "i";
    out += "\",\"name\":\"";
    AppendEscaped(out, e.name != nullptr ? e.name : "");
    out += "\",\"cat\":\"";
    AppendEscaped(out, e.category != nullptr ? e.category : "");
    // Chrome wants microseconds; the exact nanosecond stamps ride in args
    // so ParseChromeJson round-trips without float loss.
    std::snprintf(buf, sizeof(buf), "\",\"pid\":1,\"tid\":%u,\"ts\":%.3f", e.tid,
                  static_cast<double>(e.ts_ns) / 1000.0);
    out += buf;
    if (e.kind == EventKind::kSpan) {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(e.dur_ns) / 1000.0);
      out += buf;
    } else {
      out += ",\"s\":\"t\"";
    }
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"depth\":%u,\"ts_ns\":%" PRIu64 ",\"dur_ns\":%" PRIu64,
                  e.depth, e.ts_ns, e.dur_ns);
    out += buf;
    if (e.vm_id != kNoVmId) {
      std::snprintf(buf, sizeof(buf), ",\"vm\":%u", e.vm_id);
      out += buf;
    }
    out += "}}";
    if (i + 1 < events.size()) {
      out += ",";
    }
    out += "\n";
  }
  out += "]}\n";
  return out;
}

Result<std::vector<ParsedEvent>> ParseChromeJson(const std::string& json) {
  const size_t array_key = json.find("\"traceEvents\"");
  if (array_key == std::string::npos) {
    return ParseError("trace json: no traceEvents array");
  }
  const size_t array_begin = json.find('[', array_key);
  if (array_begin == std::string::npos) {
    return ParseError("trace json: malformed traceEvents array");
  }
  std::vector<ParsedEvent> events;
  size_t pos = array_begin + 1;
  while (pos < json.size()) {
    const size_t obj_begin = json.find('{', pos);
    if (obj_begin == std::string::npos) {
      break;
    }
    // Balance braces (the event object nests one "args" object).
    size_t depth = 0;
    size_t obj_end = obj_begin;
    bool in_string = false;
    for (; obj_end < json.size(); ++obj_end) {
      const char c = json[obj_end];
      if (in_string) {
        if (c == '\\') {
          ++obj_end;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          break;
        }
      } else if (c == ']' && depth == 0) {
        break;
      }
    }
    if (obj_end >= json.size() || depth != 0) {
      return ParseError("trace json: unbalanced event object");
    }
    ++obj_end;  // one past the closing brace

    ParsedEvent event;
    std::string ph;
    if (!ParseStringValue(json, obj_begin, obj_end, "ph", &ph) ||
        !ParseStringValue(json, obj_begin, obj_end, "name", &event.name) ||
        !ParseStringValue(json, obj_begin, obj_end, "cat", &event.category)) {
      return ParseError("trace json: event missing ph/name/cat");
    }
    event.kind = ph == "X" ? EventKind::kSpan : EventKind::kInstant;
    uint64_t value = 0;
    if (ParseU64Value(json, obj_begin, obj_end, "tid", &value)) {
      event.tid = static_cast<uint32_t>(value);
    }
    if (!ParseU64Value(json, obj_begin, obj_end, "ts_ns", &event.ts_ns)) {
      return ParseError("trace json: event missing args.ts_ns");
    }
    ParseU64Value(json, obj_begin, obj_end, "dur_ns", &event.dur_ns);
    if (ParseU64Value(json, obj_begin, obj_end, "depth", &value)) {
      event.depth = static_cast<uint16_t>(value);
    }
    if (ParseU64Value(json, obj_begin, obj_end, "vm", &value)) {
      event.vm_id = static_cast<uint32_t>(value);
    }
    events.push_back(std::move(event));
    pos = obj_end;
    const size_t next = json.find_first_not_of(", \n\t\r", pos);
    if (next == std::string::npos || json[next] == ']') {
      break;
    }
    pos = next;
  }
  return events;
}

}  // namespace trace
}  // namespace imk
