#include "src/trace/trace.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "src/base/fault_injection.h"

namespace imk {
namespace trace {
namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Per-thread emit state. The cached ring pointer is validated against the
// tracer epoch on every emit (one relaxed load); a stale cache re-registers.
// The shared_ptr keeps an abandoned epoch's ring alive until this thread
// emits again (or exits), so Start() can drop the registry without racing
// an in-flight emitter.
struct ThreadSlot {
  std::shared_ptr<ThreadRing> ring;
  uint64_t epoch = 0;
};
thread_local ThreadSlot t_slot;
thread_local uint32_t t_vm_id = kNoVmId;
thread_local uint16_t t_span_depth = 0;

}  // namespace

ThreadRing::ThreadRing(uint32_t tid, uint32_t capacity,
                       std::shared_ptr<ByteAccountant> accountant)
    : tid_(tid), slots_(capacity == 0 ? 1 : capacity) {
  mem_charge_ = ScopedMemCharge(std::move(accountant), slots_.size() * sizeof(Event));
}

bool ThreadRing::Push(const Event& event) {
  const uint32_t size = size_.load(std::memory_order_relaxed);
  if (size >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Forced saturation for the drop drill: an armed trace.buffer_full fault
  // loses this event but must leave every published slot intact.
  if (FaultInjector::armed() && !FaultInjector::Instance().Check("trace.buffer_full").ok()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[size] = event;
  size_.store(size + 1, std::memory_order_release);
  return true;
}

void ThreadRing::Snapshot(std::vector<Event>* out) const {
  const uint32_t n = size_.load(std::memory_order_acquire);
  out->insert(out->end(), slots_.begin(), slots_.begin() + n);
}

std::atomic<bool> Tracer::enabled_flag_{false};

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Start(TracerOptions options) {
  std::lock_guard<race::Mutex> lock(mutex_);
  rings_.clear();
  options_ = std::move(options);
  base_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  // Publish the new epoch before enabling: an emitter that sees the enable
  // flag re-validates its cached ring against this epoch and re-registers.
  epoch_.fetch_add(1, std::memory_order_release);
  enabled_flag_.store(true, std::memory_order_release);
}

void Tracer::Stop() { enabled_flag_.store(false, std::memory_order_release); }

std::vector<Event> Tracer::Collect() const {
  std::vector<Event> events;
  {
    std::lock_guard<race::Mutex> lock(mutex_);
    for (const auto& ring : rings_) {
      ring->Snapshot(&events);
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.ts_ns != b.ts_ns) {
      return a.ts_ns < b.ts_ns;
    }
    if (a.tid != b.tid) {
      return a.tid < b.tid;
    }
    return a.depth < b.depth;
  });
  return events;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->dropped();
  }
  return total;
}

size_t Tracer::thread_count() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  return rings_.size();
}

uint64_t Tracer::NowNs() const {
  const uint64_t base = base_ns_.load(std::memory_order_relaxed);
  const uint64_t now = SteadyNowNs();
  return now > base ? now - base : 0;
}

ThreadRing* Tracer::CurrentRing() {
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (t_slot.ring != nullptr && t_slot.epoch == epoch) {
    return t_slot.ring.get();
  }
  // First emit on this thread this epoch: register a fresh ring. Rank 85
  // sits above every product lock, so registering mid-emit is legal from
  // under any cache or governor mutex.
  std::lock_guard<race::Mutex> lock(mutex_);
  auto ring = std::make_shared<ThreadRing>(static_cast<uint32_t>(rings_.size()),
                                           options_.ring_capacity, options_.accountant);
  rings_.push_back(ring);
  t_slot.ring = std::move(ring);
  t_slot.epoch = epoch;
  return t_slot.ring.get();
}

void Tracer::EmitInstant(const char* category, const char* name) {
  if (!enabled()) {
    return;
  }
  Event event;
  event.ts_ns = NowNs();
  event.name = name;
  event.category = category;
  event.vm_id = t_vm_id;
  event.depth = t_span_depth;
  event.kind = EventKind::kInstant;
  ThreadRing* ring = CurrentRing();
  event.tid = ring->tid();
  ring->Push(event);
}

void Tracer::EmitSpan(const char* category, const char* name, uint64_t start_ns,
                      uint16_t depth) {
  if (!enabled()) {
    return;
  }
  const uint64_t end_ns = NowNs();
  Event event;
  event.ts_ns = start_ns;
  event.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  event.name = name;
  event.category = category;
  event.vm_id = t_vm_id;
  event.depth = depth;
  event.kind = EventKind::kSpan;
  ThreadRing* ring = CurrentRing();
  event.tid = ring->tid();
  ring->Push(event);
}

TraceVmScope::TraceVmScope(uint32_t vm_id) : saved_(t_vm_id) { t_vm_id = vm_id; }

TraceVmScope::~TraceVmScope() { t_vm_id = saved_; }

uint32_t CurrentVmId() { return t_vm_id; }

uint16_t CurrentSpanDepth() { return t_span_depth; }

uint16_t EnterSpanDepth() { return t_span_depth++; }

void LeaveSpanDepth() {
  if (t_span_depth > 0) {
    --t_span_depth;
  }
}

}  // namespace trace
}  // namespace imk
