// Trace exporters: Chrome trace_event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev) and a round-trip parser so
// tests and tools can validate an exported file without a JSON library.
#ifndef IMKASLR_SRC_TRACE_EXPORT_H_
#define IMKASLR_SRC_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/trace/trace.h"

namespace imk {
namespace trace {

// Chrome trace_event "JSON Object Format": {"traceEvents": [...]}. Spans
// become complete events (ph "X", microsecond ts/dur); instants become ph
// "i". The VM id and nesting depth ride in args.
std::string ToChromeJson(const std::vector<Event>& events);

// Parses a string produced by ToChromeJson back into events (owned
// strings, unlike Event's literal pointers).
struct ParsedEvent {
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  std::string name;
  std::string category;
  uint32_t vm_id = kNoVmId;
  uint32_t tid = 0;
  uint16_t depth = 0;
  EventKind kind = EventKind::kSpan;
};
Result<std::vector<ParsedEvent>> ParseChromeJson(const std::string& json);

}  // namespace trace
}  // namespace imk

#endif  // IMKASLR_SRC_TRACE_EXPORT_H_
