#include "src/trace/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace imk {
namespace trace {
namespace {

std::atomic<uint64_t> g_next_registry_id{1};

// Thread-local cache of this thread's shard per registry, keyed by the
// registry's process-unique id (ids are never reused, so an entry for a
// destroyed registry is merely dead weight that the FIFO cap evicts — the
// shared_ptr keeps the shard memory valid regardless).
struct ShardCacheEntry {
  uint64_t registry_id = 0;
  void* shard = nullptr;
  std::shared_ptr<void> keepalive;
};
constexpr size_t kShardCacheCap = 8;
thread_local std::vector<ShardCacheEntry> t_shard_cache;

// Atomic double accumulation in a u64 cell (per-shard, so the CAS loop is
// effectively uncontended: only scrapers read cross-thread).
void AddDouble(std::atomic<uint64_t>* cell, double delta) {
  uint64_t observed = cell->load(std::memory_order_relaxed);
  for (;;) {
    double current;
    std::memcpy(&current, &observed, sizeof(current));
    const double next = current + delta;
    uint64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (cell->compare_exchange_weak(observed, next_bits, std::memory_order_relaxed)) {
      return;
    }
  }
}

double CellAsDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

void Counter::Inc(uint64_t delta) {
  std::atomic<uint64_t>* cell =
      overflow_ != nullptr ? overflow_ : registry_->Cell(offset_);
  cell->fetch_add(delta, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  if (overflow_ != nullptr) {
    return overflow_->load(std::memory_order_relaxed);
  }
  uint64_t total = 0;
  std::lock_guard<race::Mutex> lock(registry_->mutex_);
  for (const auto& shard : registry_->shards_) {
    total += shard->cells[offset_].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Observe(double value) {
  // Bucket i counts value <= bounds_[i]; the last cell pair is +Inf + sum.
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  std::atomic<uint64_t>* base =
      overflow_ != nullptr ? overflow_ : registry_->Cell(offset_);
  base[bucket].fetch_add(1, std::memory_order_relaxed);
  AddDouble(&base[bounds_.size() + 1], value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  const size_t cells = bounds_.size() + 1;
  if (overflow_ != nullptr) {
    for (size_t i = 0; i < cells; ++i) {
      total += overflow_[i].load(std::memory_order_relaxed);
    }
    return total;
  }
  std::lock_guard<race::Mutex> lock(registry_->mutex_);
  for (const auto& shard : registry_->shards_) {
    for (size_t i = 0; i < cells; ++i) {
      total += shard->cells[offset_ + i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<race::Mutex> lock(mutex_);
  for (const auto& metric : metrics_) {
    if (metric->name == name) {
      return metric->kind == Kind::kCounter ? metric->counter.get() : nullptr;
    }
  }
  auto metric = std::make_unique<Metric>();
  metric->name = name;
  metric->help = help;
  metric->kind = Kind::kCounter;
  metric->cells = 1;
  metric->counter = std::make_unique<Counter>();
  metric->counter->registry_ = this;
  if (next_offset_ + metric->cells <= kShardSlots) {
    metric->offset = next_offset_;
    next_offset_ += metric->cells;
    metric->counter->offset_ = metric->offset;
  } else {
    metric->overflow = true;
    metric->global_cells = std::make_unique<std::atomic<uint64_t>[]>(metric->cells);
    for (uint32_t i = 0; i < metric->cells; ++i) {
      metric->global_cells[i].store(0, std::memory_order_relaxed);
    }
    metric->counter->overflow_ = metric->global_cells.get();
  }
  Counter* handle = metric->counter.get();
  metrics_.push_back(std::move(metric));
  return handle;
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<race::Mutex> lock(mutex_);
  for (const auto& metric : metrics_) {
    if (metric->name == name) {
      return metric->kind == Kind::kGauge ? metric->gauge.get() : nullptr;
    }
  }
  auto metric = std::make_unique<Metric>();
  metric->name = name;
  metric->help = help;
  metric->kind = Kind::kGauge;
  metric->cells = 0;  // gauges live on the handle's own atomic
  metric->gauge = std::make_unique<Gauge>();
  Gauge* handle = metric->gauge.get();
  metrics_.push_back(std::move(metric));
  return handle;
}

Histogram* MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                      const std::string& help) {
  std::sort(bounds.begin(), bounds.end());
  std::lock_guard<race::Mutex> lock(mutex_);
  for (const auto& metric : metrics_) {
    if (metric->name == name) {
      if (metric->kind != Kind::kHistogram || metric->histogram->bounds_ != bounds) {
        return nullptr;
      }
      return metric->histogram.get();
    }
  }
  auto metric = std::make_unique<Metric>();
  metric->name = name;
  metric->help = help;
  metric->kind = Kind::kHistogram;
  // bounds buckets + the +Inf bucket + the sum cell.
  metric->cells = static_cast<uint32_t>(bounds.size()) + 2;
  metric->histogram = std::make_unique<Histogram>();
  metric->histogram->registry_ = this;
  metric->histogram->bounds_ = std::move(bounds);
  if (next_offset_ + metric->cells <= kShardSlots) {
    metric->offset = next_offset_;
    next_offset_ += metric->cells;
    metric->histogram->offset_ = metric->offset;
  } else {
    metric->overflow = true;
    metric->global_cells = std::make_unique<std::atomic<uint64_t>[]>(metric->cells);
    for (uint32_t i = 0; i < metric->cells; ++i) {
      metric->global_cells[i].store(0, std::memory_order_relaxed);
    }
    metric->histogram->overflow_ = metric->global_cells.get();
  }
  Histogram* handle = metric->histogram.get();
  metrics_.push_back(std::move(metric));
  return handle;
}

std::atomic<uint64_t>* MetricsRegistry::Cell(uint32_t offset) {
  return &CurrentShard()->cells[offset];
}

MetricsRegistry::Shard* MetricsRegistry::CurrentShard() {
  for (const ShardCacheEntry& entry : t_shard_cache) {
    if (entry.registry_id == id_) {
      return static_cast<Shard*>(entry.shard);
    }
  }
  // First touch from this thread: register a shard. Rank 85 — legal from
  // under any product lock.
  std::shared_ptr<Shard> shard;
  {
    std::lock_guard<race::Mutex> lock(mutex_);
    shard = std::make_shared<Shard>(kShardSlots);
    shards_.push_back(shard);
  }
  if (t_shard_cache.size() >= kShardCacheCap) {
    t_shard_cache.erase(t_shard_cache.begin());
  }
  ShardCacheEntry entry;
  entry.registry_id = id_;
  entry.shard = shard.get();
  entry.keepalive = shard;
  t_shard_cache.push_back(std::move(entry));
  return static_cast<Shard*>(shard.get());
}

MetricsSnapshot MetricsRegistry::Scrape() const {
  MetricsSnapshot snapshot;
  std::lock_guard<race::Mutex> lock(mutex_);
  for (const auto& metric : metrics_) {
    auto sum_cell = [&](uint32_t index) -> uint64_t {
      if (metric->overflow) {
        return metric->global_cells[index].load(std::memory_order_relaxed);
      }
      uint64_t total = 0;
      for (const auto& shard : shards_) {
        total += shard->cells[metric->offset + index].load(std::memory_order_relaxed);
      }
      return total;
    };
    switch (metric->kind) {
      case Kind::kCounter:
        snapshot.counters.emplace_back(metric->name, sum_cell(0));
        break;
      case Kind::kGauge:
        snapshot.gauges.emplace_back(metric->name, metric->gauge->Value());
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.name = metric->name;
        h.bounds = metric->histogram->bounds_;
        const size_t buckets = h.bounds.size() + 1;
        h.bucket_counts.resize(buckets);
        for (size_t i = 0; i < buckets; ++i) {
          h.bucket_counts[i] = sum_cell(static_cast<uint32_t>(i));
          h.count += h.bucket_counts[i];
        }
        // The sum cell holds double bits; merging shards means adding the
        // doubles, not the bit patterns.
        if (metric->overflow) {
          h.sum = CellAsDouble(
              metric->global_cells[buckets].load(std::memory_order_relaxed));
        } else {
          for (const auto& shard : shards_) {
            h.sum += CellAsDouble(
                shard->cells[metric->offset + buckets].load(std::memory_order_relaxed));
          }
        }
        snapshot.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snapshot;
}

std::string MetricsRegistry::PrometheusText() const {
  const MetricsSnapshot snapshot = Scrape();
  std::string out;
  char line[256];
  auto append = [&out, &line](int n) { out.append(line, static_cast<size_t>(n)); };
  for (const auto& [name, value] : snapshot.counters) {
    append(std::snprintf(line, sizeof(line), "# TYPE %s counter\n", name.c_str()));
    append(std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n", name.c_str(), value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    append(std::snprintf(line, sizeof(line), "# TYPE %s gauge\n", name.c_str()));
    append(std::snprintf(line, sizeof(line), "%s %" PRId64 "\n", name.c_str(), value));
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    append(std::snprintf(line, sizeof(line), "# TYPE %s histogram\n", h.name.c_str()));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.bucket_counts[i];
      append(std::snprintf(line, sizeof(line), "%s_bucket{le=\"%g\"} %" PRIu64 "\n",
                           h.name.c_str(), h.bounds[i], cumulative));
    }
    cumulative += h.bucket_counts.back();
    append(std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                         h.name.c_str(), cumulative));
    append(std::snprintf(line, sizeof(line), "%s_sum %g\n", h.name.c_str(), h.sum));
    append(std::snprintf(line, sizeof(line), "%s_count %" PRIu64 "\n", h.name.c_str(),
                         h.count));
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<race::Mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& cell : shard->cells) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& metric : metrics_) {
    if (metric->gauge != nullptr) {
      metric->gauge->Set(0);
    }
    if (metric->global_cells != nullptr) {
      for (uint32_t i = 0; i < metric->cells; ++i) {
        metric->global_cells[i].store(0, std::memory_order_relaxed);
      }
    }
  }
}

size_t MetricsRegistry::shard_count() const {
  std::lock_guard<race::Mutex> lock(mutex_);
  return shards_.size();
}

}  // namespace trace
}  // namespace imk
