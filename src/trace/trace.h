// imktrace: per-thread lock-free span tracing for the boot/fleet paths.
//
// The paper's argument is a time-attribution argument (where do boot
// nanoseconds go?), so the tracer's contract is shaped by two hard
// requirements:
//
//   1. Non-perturbation. A traced boot must stay BIT-IDENTICAL to an
//      untraced boot — same RAM, same retired guest instructions. The emit
//      path therefore reads the steady clock and writes into a
//      preallocated per-thread ring, and nothing else: no RNG, no guest
//      state, no locks, no allocation after ring registration.
//   2. Zero cost when off. Every trace point compiles down to one relaxed
//      atomic load and a predicted branch (the FaultInjector::armed()
//      shape); building with -DIMK_TRACE_DISABLED=ON removes the points
//      entirely (the macros expand to nothing).
//
// Ring model: one fixed-capacity ring per emitting thread, registered in
// the global Tracer on first emit. The ring is write-once and SATURATING —
// when full, new events are dropped and counted (never overwritten), so a
// concurrent scrape can read every published slot race-free: the writer
// publishes a slot with a release store of the new size, the reader takes
// an acquire load and never looks past it. The only mutex
// (race::LockRank::kTraceRegistry = 85) guards the ring registry and is
// taken on registration, Collect() and Start()/Stop() — never per event.
// Ring memory is charged to MemCategory::kTraceBuffers when the caller
// hands Start() an accountant.
//
// The `trace.buffer_full` fault point (registered in KnownFaultPoints())
// forces drops before the ring is actually full, so tests can prove the
// saturation path loses events without corrupting published ones.
#ifndef IMKASLR_SRC_TRACE_TRACE_H_
#define IMKASLR_SRC_TRACE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/mem_accounting.h"
#include "src/race/annotations.h"
#include "src/race/mutex.h"

namespace imk {
namespace trace {

// Events emitted outside a TraceVmScope carry this VM id.
inline constexpr uint32_t kNoVmId = 0xffffffffu;

enum class EventKind : uint8_t {
  kSpan = 0,     // complete span: [ts_ns, ts_ns + dur_ns] (Chrome ph="X")
  kInstant = 1,  // point event (Chrome ph="i")
};

// One recorded event. `name` and `category` must point at string literals
// (static storage duration): the ring stores the pointers and never copies.
struct Event {
  uint64_t ts_ns = 0;   // steady-clock ns since Start()
  uint64_t dur_ns = 0;  // spans only
  const char* name = nullptr;
  const char* category = nullptr;
  uint32_t vm_id = kNoVmId;
  uint32_t tid = 0;    // dense ring-registration index of the emitting thread
  uint16_t depth = 0;  // span nesting depth on the emitting thread
  EventKind kind = EventKind::kSpan;
};

struct TracerOptions {
  // Events per thread ring. ~48 bytes/event; the default ring costs ~3 MiB
  // per emitting thread, charged to the accountant below when one is set.
  uint32_t ring_capacity = 64 * 1024;
  // Usually MemGovernor::shared_accountant(MemCategory::kTraceBuffers).
  std::shared_ptr<ByteAccountant> accountant;
};

// One thread's saturating write-once ring. Only the owning thread writes;
// any thread may snapshot the published prefix.
class ThreadRing {
 public:
  ThreadRing(uint32_t tid, uint32_t capacity, std::shared_ptr<ByteAccountant> accountant);

  // Owner thread only. Returns false when the event was dropped (ring full
  // or an armed trace.buffer_full fault).
  bool Push(const Event& event);

  // Any thread: copies the published slots [0, size) into `out`.
  void Snapshot(std::vector<Event>* out) const;

  uint32_t tid() const { return tid_; }
  uint32_t capacity() const { return static_cast<uint32_t>(slots_.size()); }
  uint32_t size() const { return size_.load(std::memory_order_acquire); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  const uint32_t tid_;
  std::vector<Event> slots_;  // sized once at construction, never resized
  std::atomic<uint32_t> size_{0};
  std::atomic<uint64_t> dropped_{0};
  ScopedMemCharge mem_charge_;
};

class Tracer {
 public:
  static Tracer& Instance();

  // The emit-path gate: one relaxed load + predicted branch when off.
  static bool enabled() { return enabled_flag_.load(std::memory_order_relaxed); }

  // Starts a fresh trace epoch: drops every previous ring, rebases the
  // clock, and enables emission. Not reentrant with itself or Stop().
  void Start(TracerOptions options = {});

  // Disables emission. Recorded events stay readable until the next Start().
  void Stop();

  // Merged, time-sorted snapshot of every ring's published events. Safe
  // while emitters are still running (they only append).
  std::vector<Event> Collect() const;

  // Events dropped ring-full across all rings this epoch.
  uint64_t dropped() const;
  // Registered rings this epoch (0 after emitting while disabled — the
  // disabled path never allocates).
  size_t thread_count() const;

  // ns since this epoch's Start() on the steady clock.
  uint64_t NowNs() const;

  // Emit primitives. Callers must check enabled() first (the macros and
  // ScopedSpan do); these re-check and no-op when disabled.
  void EmitInstant(const char* category, const char* name);
  void EmitSpan(const char* category, const char* name, uint64_t start_ns, uint16_t depth);

 private:
  Tracer() = default;

  ThreadRing* CurrentRing();  // registers on first emit per thread per epoch

  static std::atomic<bool> enabled_flag_;

  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> base_ns_{0};

  mutable race::Mutex mutex_{race::LockRank::kTraceRegistry};
  std::vector<std::shared_ptr<ThreadRing>> rings_ IMK_GUARDED_BY(kTraceRegistry);
  TracerOptions options_ IMK_GUARDED_BY(kTraceRegistry);
};

// Thread-local VM tag: every event emitted on this thread inside the scope
// carries `vm_id`. Nestable (inner scope wins); restores on destruction.
class TraceVmScope {
 public:
  explicit TraceVmScope(uint32_t vm_id);
  ~TraceVmScope();
  TraceVmScope(const TraceVmScope&) = delete;
  TraceVmScope& operator=(const TraceVmScope&) = delete;

 private:
  uint32_t saved_;
};

uint32_t CurrentVmId();

// Span-depth bookkeeping for ScopedSpan (thread-local, defined in trace.cc).
uint16_t EnterSpanDepth();
void LeaveSpanDepth();

// RAII span: records the start time at construction, emits one complete
// span event at destruction. Construction while disabled records nothing
// and arms nothing (dtor is a dead branch).
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name) {
    if (!Tracer::enabled()) {
      return;
    }
    category_ = category;
    name_ = name;
    start_ns_ = Tracer::Instance().NowNs();
    depth_ = EnterSpanDepth();
    active_ = true;
  }
  ~ScopedSpan() {
    if (!active_) {
      return;
    }
    LeaveSpanDepth();
    Tracer::Instance().EmitSpan(category_, name_, start_ns_, depth_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint16_t depth_ = 0;
  bool active_ = false;
};

inline void Instant(const char* category, const char* name) {
  if (!Tracer::enabled()) {
    return;
  }
  Tracer::Instance().EmitInstant(category, name);
}

// Current thread's span nesting depth (manual spans record at this depth).
uint16_t CurrentSpanDepth();

// Manual span pair for stage-shaped code where RAII scoping would leak past
// the stage: capture SpanStart() before the work, EmitComplete after. Both
// are no-ops while disabled (SpanStart returns 0 and EmitComplete re-checks
// the gate, so a span straddling Start() is simply not recorded).
inline uint64_t SpanStart() {
  return Tracer::enabled() ? Tracer::Instance().NowNs() : 0;
}

inline void EmitComplete(const char* category, const char* name, uint64_t start_ns) {
  if (!Tracer::enabled() || start_ns == 0) {
    return;
  }
  Tracer::Instance().EmitSpan(category, name, start_ns, CurrentSpanDepth());
}

}  // namespace trace
}  // namespace imk

// Trace-point macros. IMK_TRACE_DISABLED removes them at compile time; the
// runtime gate is Tracer::enabled() (relaxed atomic, predicted branch).
#if defined(IMK_TRACE_DISABLED)
#define IMK_TRACE_SPAN(category, name) \
  do {                                 \
  } while (false)
#define IMK_TRACE_INSTANT(category, name) \
  do {                                    \
  } while (false)
#define IMK_TRACE_VM(vm_id) \
  do {                      \
  } while (false)
#else
#define IMK_TRACE_CONCAT2(a, b) a##b
#define IMK_TRACE_CONCAT(a, b) IMK_TRACE_CONCAT2(a, b)
#define IMK_TRACE_SPAN(category, name)                                 \
  ::imk::trace::ScopedSpan IMK_TRACE_CONCAT(imk_trace_span_, __LINE__)( \
      (category), (name))
#define IMK_TRACE_INSTANT(category, name) ::imk::trace::Instant((category), (name))
#define IMK_TRACE_VM(vm_id) \
  ::imk::trace::TraceVmScope IMK_TRACE_CONCAT(imk_trace_vm_, __LINE__)((vm_id))
#endif

#endif  // IMKASLR_SRC_TRACE_TRACE_H_
