// imkmetrics: process-wide fleet metrics with per-thread shards.
//
// A registry owns named counters, gauges and histograms. Hot-path updates
// are one relaxed fetch_add on a per-thread shard cell — no lock, no
// cross-thread cacheline ping — and shards are merged only on scrape. The
// registry mutex (race::LockRank::kTraceRegistry = 85, shared with the
// tracer's rank so both stay scrape-only leaves) is taken on metric
// registration, per-thread shard registration, and Scrape(); never per
// update. That lets boot_storm/boot_supervisor bump fleet counters from
// under their own (lower-ranked) locks.
//
// Shard model: every thread that updates a metric gets one fixed slab of
// kShardSlots atomic u64 cells, registered on first touch (same epoch
// trick as the tracer's rings). Each metric owns a contiguous cell range:
// counters use 1 cell, histograms use bounds+2 (per-bucket counts, the
// +Inf bucket, and the value sum). A registry that outgrows the slab falls
// back to per-metric global cells — still correct, merely contended.
// Gauges are absolute (Set wins) and live on a single atomic in the
// handle, not in the shards: last-writer semantics do not merge.
#ifndef IMKASLR_SRC_TRACE_METRICS_H_
#define IMKASLR_SRC_TRACE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/race/annotations.h"
#include "src/race/mutex.h"

namespace imk {
namespace trace {

class MetricsRegistry;

// Monotonic counter. Handles are owned by the registry and stay valid for
// its lifetime.
class Counter {
 public:
  void Inc(uint64_t delta = 1);
  uint64_t Value() const;  // merged across shards (scrape-path cost)

 private:
  friend class MetricsRegistry;
  MetricsRegistry* registry_ = nullptr;
  uint32_t offset_ = 0;
  std::atomic<uint64_t>* overflow_ = nullptr;  // set iff the slab overflowed
};

// Absolute gauge: Set() overwrites, Add() adjusts. Single atomic cell.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

// Fixed-bound histogram (Prometheus le semantics: bucket i counts
// observations <= bounds[i]; one implicit +Inf bucket).
class Histogram {
 public:
  void Observe(double value);
  uint64_t Count() const;

 private:
  friend class MetricsRegistry;
  MetricsRegistry* registry_ = nullptr;
  uint32_t offset_ = 0;
  std::atomic<uint64_t>* overflow_ = nullptr;  // set iff the slab overflowed
  std::vector<double> bounds_;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;  // bounds.size() + 1 (+Inf last)
  uint64_t count = 0;
  double sum = 0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  // Cells per thread shard; see header comment for the overflow fallback.
  static constexpr uint32_t kShardSlots = 4096;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry the fleet paths publish into.
  static MetricsRegistry& Global();

  // Idempotent by name: re-registering returns the existing handle (type
  // and, for histograms, bounds must match — mismatch returns nullptr).
  Counter* counter(const std::string& name, const std::string& help = "");
  Gauge* gauge(const std::string& name, const std::string& help = "");
  Histogram* histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  // Merges every thread shard under the registry mutex.
  MetricsSnapshot Scrape() const;

  // Prometheus text exposition of Scrape().
  std::string PrometheusText() const;

  // Zeroes every shard cell and gauge (storm reuse / tests). Handles stay
  // valid.
  void Reset();

  size_t shard_count() const;

 private:
  friend class Counter;
  friend class Histogram;

  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  // One thread's slab of cells. alignas keeps shards off each other's lines.
  struct alignas(64) Shard {
    explicit Shard(uint32_t slots) : cells(slots) {}
    std::vector<std::atomic<uint64_t>> cells;
  };

  struct Metric {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    uint32_t offset = 0;  // cell offset within each shard
    uint32_t cells = 1;
    bool overflow = false;  // true: use global_cells instead of shards
    std::unique_ptr<std::atomic<uint64_t>[]> global_cells;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // The calling thread's cell for `offset` (registers a shard on first use).
  std::atomic<uint64_t>* Cell(uint32_t offset);

  Shard* CurrentShard();

  const uint64_t id_;  // process-unique, keys the thread-local shard cache

  mutable race::Mutex mutex_{race::LockRank::kTraceRegistry};
  std::vector<std::unique_ptr<Metric>> metrics_ IMK_GUARDED_BY(kTraceRegistry);
  std::vector<std::shared_ptr<Shard>> shards_ IMK_GUARDED_BY(kTraceRegistry);
  uint32_t next_offset_ IMK_GUARDED_BY(kTraceRegistry) = 0;
};

}  // namespace trace
}  // namespace imk

#endif  // IMKASLR_SRC_TRACE_METRICS_H_
