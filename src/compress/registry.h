// Codec registry: name -> codec instance, plus the canonical bake-off list.
#ifndef IMKASLR_SRC_COMPRESS_REGISTRY_H_
#define IMKASLR_SRC_COMPRESS_REGISTRY_H_

#include <string_view>
#include <vector>

#include "src/compress/codec.h"

namespace imk {

// Identity codec ("compression none" in the paper's §3.3): the payload is
// stored verbatim; "decompression" is a straight copy to the target buffer.
class NoneCodec : public Codec {
 public:
  std::string name() const override { return "none"; }
  Result<Bytes> Compress(ByteSpan input) const override {
    return Bytes(input.begin(), input.end());
  }
  Result<Bytes> Decompress(ByteSpan input, size_t expected_size) const override {
    if (input.size() != expected_size) {
      return ParseError("none: size mismatch");
    }
    return Bytes(input.begin(), input.end());
  }
};

// Creates a codec by scheme name ("none", "lz4", "lzo", "gzip", "zstd",
// "bzip2", "xz"); kNotFound for unknown names.
Result<CodecPtr> MakeCodec(std::string_view name);

// The six compressed schemes of the paper's Figure 3 bake-off.
std::vector<std::string> BakeoffCodecNames();

}  // namespace imk

#endif  // IMKASLR_SRC_COMPRESS_REGISTRY_H_
