// Shared LZ77 match finding used by the LZ-family codecs (lz4, lzo, gzip,
// zstd, lzma). Produces a token stream of literal runs and (length, distance)
// matches; each codec entropy-codes the stream its own way.
#ifndef IMKASLR_SRC_COMPRESS_LZ77_H_
#define IMKASLR_SRC_COMPRESS_LZ77_H_

#include <cstdint>
#include <vector>

#include "src/base/bytes.h"

namespace imk {

// One LZ77 step: emit `literal_len` literals starting at `literal_start`,
// then copy `match_len` bytes from `match_dist` back (match_len == 0 for the
// trailing literal-only token).
struct Lz77Token {
  uint32_t literal_start = 0;
  uint32_t literal_len = 0;
  uint32_t match_len = 0;
  uint32_t match_dist = 0;
};

// Parameters controlling effort/window, tuned per codec.
struct Lz77Params {
  uint32_t window_size = 64 * 1024;  // max match distance
  uint32_t min_match = 4;            // shortest usable match
  uint32_t max_match = 0xffffffff;   // cap on match length
  uint32_t max_chain = 16;           // hash chain probes (effort)
  bool lazy = false;                 // one-step lazy matching (better ratio)
};

// Greedy (optionally lazy) hash-chain parse of `input`.
std::vector<Lz77Token> Lz77Parse(ByteSpan input, const Lz77Params& params);

}  // namespace imk

#endif  // IMKASLR_SRC_COMPRESS_LZ77_H_
