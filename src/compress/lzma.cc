#include "src/compress/lzma.h"

#include <array>
#include <vector>

#include "src/compress/lz77.h"

namespace imk {
namespace {

// ---------------------------------------------------------------------------
// Adaptive binary range coder (the LZMA rc): 11-bit probabilities, adaptation
// shift 5, 32-bit range with byte-wise renormalization and carry handling.
// ---------------------------------------------------------------------------

constexpr uint32_t kProbBits = 11;
constexpr uint32_t kProbInit = (1u << kProbBits) / 2;
constexpr uint32_t kMoveBits = 5;
constexpr uint32_t kTopValue = 1u << 24;

using Prob = uint16_t;

class RangeEncoder {
 public:
  void EncodeBit(Prob* prob, uint32_t bit) {
    const uint32_t bound = (range_ >> kProbBits) * *prob;
    if (bit == 0) {
      range_ = bound;
      *prob = static_cast<Prob>(*prob + (((1u << kProbBits) - *prob) >> kMoveBits));
    } else {
      low_ += bound;
      range_ -= bound;
      *prob = static_cast<Prob>(*prob - (*prob >> kMoveBits));
    }
    while (range_ < kTopValue) {
      ShiftLow();
      range_ <<= 8;
    }
  }

  // Encodes `count` raw bits (MSB first) at probability 1/2.
  void EncodeDirect(uint32_t value, uint32_t count) {
    for (uint32_t i = count; i-- > 0;) {
      range_ >>= 1;
      if (((value >> i) & 1) != 0) {
        low_ += range_;
      }
      while (range_ < kTopValue) {
        ShiftLow();
        range_ <<= 8;
      }
    }
  }

  Bytes Finish() {
    for (int i = 0; i < 5; ++i) {
      ShiftLow();
    }
    return std::move(out_);
  }

 private:
  void ShiftLow() {
    if (low_ < 0xff000000ull || low_ > 0xffffffffull) {
      // Carry resolved: flush cache and any pending 0xff bytes. The first
      // flushed byte is a constant 0 the decoder discards (its 5 priming
      // shifts into a 32-bit code register drop the first byte).
      uint8_t carry = static_cast<uint8_t>(low_ >> 32);
      out_.push_back(static_cast<uint8_t>(cache_ + carry));
      while (pending_ff_ > 0) {
        out_.push_back(static_cast<uint8_t>(0xff + carry));
        --pending_ff_;
      }
      cache_ = static_cast<uint8_t>(low_ >> 24);
    } else {
      ++pending_ff_;
    }
    low_ = (low_ << 8) & 0xffffffffull;
  }

  uint64_t low_ = 0;
  uint32_t range_ = 0xffffffffu;
  uint8_t cache_ = 0;
  size_t pending_ff_ = 0;
  Bytes out_;
};

class RangeDecoder {
 public:
  explicit RangeDecoder(ByteSpan data) : data_(data) {
    // Prime with 5 bytes, mirroring the encoder's 5 flush bytes (the first
    // is the encoder's initial cache byte).
    for (int i = 0; i < 5; ++i) {
      code_ = (code_ << 8) | NextByte();
    }
  }

  uint32_t DecodeBit(Prob* prob) {
    const uint32_t bound = (range_ >> kProbBits) * *prob;
    uint32_t bit;
    if (code_ < bound) {
      range_ = bound;
      *prob = static_cast<Prob>(*prob + (((1u << kProbBits) - *prob) >> kMoveBits));
      bit = 0;
    } else {
      code_ -= bound;
      range_ -= bound;
      *prob = static_cast<Prob>(*prob - (*prob >> kMoveBits));
      bit = 1;
    }
    while (range_ < kTopValue) {
      code_ = (code_ << 8) | NextByte();
      range_ <<= 8;
    }
    return bit;
  }

  uint32_t DecodeDirect(uint32_t count) {
    uint32_t value = 0;
    for (uint32_t i = 0; i < count; ++i) {
      range_ >>= 1;
      uint32_t bit = 0;
      if (code_ >= range_) {
        code_ -= range_;
        bit = 1;
      }
      value = (value << 1) | bit;
      while (range_ < kTopValue) {
        code_ = (code_ << 8) | NextByte();
        range_ <<= 8;
      }
    }
    return value;
  }

  bool overran() const { return overran_; }

 private:
  uint8_t NextByte() {
    if (pos_ >= data_.size()) {
      overran_ = true;
      return 0;
    }
    return data_[pos_++];
  }

  ByteSpan data_;
  size_t pos_ = 0;
  uint32_t range_ = 0xffffffffu;
  uint32_t code_ = 0;
  bool overran_ = false;
};

// Bit-tree of 2^bits leaves: encodes a `bits`-wide value MSB first with one
// adaptive probability per internal node.
template <uint32_t kBits>
struct BitTree {
  std::array<Prob, 1u << kBits> probs;

  BitTree() { probs.fill(kProbInit); }

  void Encode(RangeEncoder& rc, uint32_t value) {
    uint32_t node = 1;
    for (uint32_t i = kBits; i-- > 0;) {
      const uint32_t bit = (value >> i) & 1;
      rc.EncodeBit(&probs[node], bit);
      node = (node << 1) | bit;
    }
  }

  uint32_t Decode(RangeDecoder& rc) {
    uint32_t node = 1;
    for (uint32_t i = 0; i < kBits; ++i) {
      node = (node << 1) | rc.DecodeBit(&probs[node]);
    }
    return node - (1u << kBits);
  }
};

// Distance coding: 6-bit slot (like LZMA's dist slots), then direct bits.
uint32_t DistSlot(uint32_t dist) {
  // dist >= 1. Slot = 2*log2(dist) | next-highest bit; dist 1..3 map to slots 0..2.
  if (dist < 4) {
    return dist - 1;
  }
  const uint32_t log2 = 31 - static_cast<uint32_t>(__builtin_clz(dist));
  return (log2 << 1) | ((dist >> (log2 - 1)) & 1);
}

// Model state shared by encode/decode.
struct LzmaModel {
  std::array<Prob, 256> is_match;  // ctx: previous byte
  std::array<BitTree<8>, 8> literal;  // ctx: top 3 bits of previous byte
  BitTree<8> len_low;       // match length 4..259 low byte
  Prob len_high_flag = kProbInit;
  BitTree<8> len_high;
  BitTree<6> dist_slot;

  LzmaModel() { is_match.fill(kProbInit); }
};

constexpr uint32_t kMinMatch = 4;

}  // namespace

Result<Bytes> LzmaCodec::Compress(ByteSpan input) const {
  Lz77Params params;
  params.window_size = 1u << 20;
  params.min_match = kMinMatch;
  params.max_match = kMinMatch + 255 + 256;  // len_low + optional len_high
  params.max_chain = 128;
  params.lazy = true;
  const std::vector<Lz77Token> tokens = Lz77Parse(input, params);

  LzmaModel model;
  RangeEncoder rc;
  uint8_t prev_byte = 0;

  auto encode_literal = [&](uint8_t byte) {
    rc.EncodeBit(&model.is_match[prev_byte], 0);
    model.literal[prev_byte >> 5].Encode(rc, byte);
    prev_byte = byte;
  };

  for (const Lz77Token& token : tokens) {
    for (uint32_t i = 0; i < token.literal_len; ++i) {
      encode_literal(input[token.literal_start + i]);
    }
    if (token.match_len == 0) {
      continue;
    }
    rc.EncodeBit(&model.is_match[prev_byte], 1);
    const uint32_t len_code = token.match_len - kMinMatch;
    if (len_code < 256) {
      rc.EncodeBit(&model.len_high_flag, 0);
      model.len_low.Encode(rc, len_code);
    } else {
      rc.EncodeBit(&model.len_high_flag, 1);
      model.len_high.Encode(rc, len_code - 256);
    }
    const uint32_t slot = DistSlot(token.match_dist);
    model.dist_slot.Encode(rc, slot);
    if (slot >= 4) {
      const uint32_t direct_bits = (slot >> 1) - 1;
      const uint32_t base = (2 | (slot & 1)) << direct_bits;
      rc.EncodeDirect(token.match_dist - base, direct_bits);
    }
    prev_byte = input[token.literal_start + token.literal_len + token.match_len - 1];
  }
  return rc.Finish();
}

Result<Bytes> LzmaCodec::Decompress(ByteSpan input, size_t expected_size) const {
  LzmaModel model;
  RangeDecoder rc(input);
  Bytes out;
  out.reserve(expected_size);
  uint8_t prev_byte = 0;

  while (out.size() < expected_size) {
    if (rc.DecodeBit(&model.is_match[prev_byte]) == 0) {
      const uint8_t byte = static_cast<uint8_t>(model.literal[prev_byte >> 5].Decode(rc));
      out.push_back(byte);
      prev_byte = byte;
    } else {
      uint32_t len_code;
      if (rc.DecodeBit(&model.len_high_flag) == 0) {
        len_code = model.len_low.Decode(rc);
      } else {
        len_code = 256 + model.len_high.Decode(rc);
      }
      const uint32_t match_len = len_code + kMinMatch;
      const uint32_t slot = model.dist_slot.Decode(rc);
      uint32_t dist;
      if (slot < 4) {
        dist = slot + 1;
      } else {
        const uint32_t direct_bits = (slot >> 1) - 1;
        const uint32_t base = (2 | (slot & 1)) << direct_bits;
        dist = base + rc.DecodeDirect(direct_bits);
      }
      if (dist == 0 || dist > out.size()) {
        return ParseError("xz: bad match distance");
      }
      if (out.size() + match_len > expected_size) {
        return ParseError("xz: output exceeds expected size");
      }
      const size_t src = out.size() - dist;
      if (dist >= match_len) {
        out.insert(out.end(), out.begin() + src, out.begin() + src + match_len);
      } else {
        for (uint32_t i = 0; i < match_len; ++i) {
          out.push_back(out[src + i]);
        }
      }
      prev_byte = out.back();
    }
    if (rc.overran()) {
      return ParseError("xz: range coder input exhausted");
    }
  }
  return out;
}

}  // namespace imk
