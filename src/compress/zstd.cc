#include "src/compress/zstd.h"

#include "src/compress/huffman.h"
#include "src/compress/lz77.h"

namespace imk {
namespace {

constexpr uint32_t kLiteralMaxCodeLength = HuffmanTableDecoder::kMaxLength;

void WriteVarint(Bytes& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

Result<uint64_t> ReadVarint(ByteSpan data, size_t* pos) {
  uint64_t value = 0;
  uint32_t shift = 0;
  while (*pos < data.size()) {
    const uint8_t b = data[(*pos)++];
    value |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return value;
    }
    shift += 7;
    if (shift > 63) {
      return ParseError("zstd: varint overflow");
    }
  }
  return ParseError("zstd: truncated varint");
}

}  // namespace

// Container layout:
//   varint  literal_count
//   varint  huffman_stream_bytes   (0 => literals stored raw)
//   u8[256] code lengths (packed 2 per byte, 4 bits each)  [only if huffman]
//   bytes   huffman-coded (or raw) literal stream
//   varint  sequence_count
//   per sequence: varint lit_run, varint match_len_or_0, varint dist (if len>0)
Result<Bytes> ZstdCodec::Compress(ByteSpan input) const {
  Lz77Params params;
  params.window_size = 256 * 1024;
  params.min_match = 4;
  params.max_chain = 48;
  params.lazy = true;
  const std::vector<Lz77Token> tokens = Lz77Parse(input, params);

  // Gather all literal bytes into one stream.
  Bytes literals;
  for (const Lz77Token& token : tokens) {
    literals.insert(literals.end(), input.begin() + token.literal_start,
                    input.begin() + token.literal_start + token.literal_len);
  }

  Bytes out;
  WriteVarint(out, literals.size());

  // Huffman-code the literal stream (fall back to raw if it does not help).
  std::vector<uint64_t> freq(256, 0);
  for (uint8_t b : literals) {
    ++freq[b];
  }
  IMK_ASSIGN_OR_RETURN(std::vector<uint8_t> lengths,
                       BuildHuffmanLengths(freq, kLiteralMaxCodeLength));
  HuffmanEncoder encoder(lengths);
  BitWriter bits;
  for (uint8_t b : literals) {
    encoder.Encode(bits, b);
  }
  Bytes coded = bits.Take();
  if (coded.size() + 128 < literals.size()) {
    WriteVarint(out, coded.size());
    for (size_t i = 0; i < 256; i += 2) {
      out.push_back(static_cast<uint8_t>(lengths[i] | (lengths[i + 1] << 4)));
    }
    out.insert(out.end(), coded.begin(), coded.end());
  } else {
    WriteVarint(out, 0);
    out.insert(out.end(), literals.begin(), literals.end());
  }

  WriteVarint(out, tokens.size());
  for (const Lz77Token& token : tokens) {
    WriteVarint(out, token.literal_len);
    WriteVarint(out, token.match_len);
    if (token.match_len != 0) {
      WriteVarint(out, token.match_dist);
    }
  }
  return out;
}

Result<Bytes> ZstdCodec::Decompress(ByteSpan input, size_t expected_size) const {
  size_t pos = 0;
  IMK_ASSIGN_OR_RETURN(uint64_t literal_count, ReadVarint(input, &pos));
  IMK_ASSIGN_OR_RETURN(uint64_t coded_bytes, ReadVarint(input, &pos));

  Bytes literals;
  if (coded_bytes == 0) {
    if (literal_count > input.size() - pos) {
      return ParseError("zstd: raw literals past end");
    }
    literals.assign(input.begin() + pos, input.begin() + pos + literal_count);
    pos += literal_count;
  } else {
    if (pos + 128 > input.size()) {
      return ParseError("zstd: truncated code lengths");
    }
    std::vector<uint8_t> lengths(256);
    for (size_t i = 0; i < 256; i += 2) {
      const uint8_t packed = input[pos + i / 2];
      lengths[i] = packed & 0xf;
      lengths[i + 1] = packed >> 4;
    }
    pos += 128;
    if (coded_bytes > input.size() - pos) {
      return ParseError("zstd: coded literals past end");
    }
    IMK_ASSIGN_OR_RETURN(HuffmanTableDecoder decoder, HuffmanTableDecoder::Create(lengths));
    BitReader reader(input.subspan(pos, coded_bytes));
    literals.reserve(literal_count);
    for (uint64_t i = 0; i < literal_count; ++i) {
      IMK_ASSIGN_OR_RETURN(uint32_t symbol, decoder.Decode(reader));
      literals.push_back(static_cast<uint8_t>(symbol));
    }
    pos += coded_bytes;
  }

  IMK_ASSIGN_OR_RETURN(uint64_t sequence_count, ReadVarint(input, &pos));
  Bytes out;
  out.reserve(expected_size);
  size_t literal_pos = 0;
  for (uint64_t s = 0; s < sequence_count; ++s) {
    IMK_ASSIGN_OR_RETURN(uint64_t lit_run, ReadVarint(input, &pos));
    IMK_ASSIGN_OR_RETURN(uint64_t match_len, ReadVarint(input, &pos));
    if (lit_run > literals.size() - literal_pos) {
      return ParseError("zstd: literal stream exhausted");
    }
    out.insert(out.end(), literals.begin() + literal_pos, literals.begin() + literal_pos + lit_run);
    literal_pos += lit_run;
    if (match_len == 0) {
      continue;
    }
    IMK_ASSIGN_OR_RETURN(uint64_t dist, ReadVarint(input, &pos));
    if (dist == 0 || dist > out.size()) {
      return ParseError("zstd: bad match distance");
    }
    const size_t src = out.size() - dist;
    if (dist >= match_len) {
      out.insert(out.end(), out.begin() + src, out.begin() + src + match_len);
    } else {
      for (uint64_t i = 0; i < match_len; ++i) {
        out.push_back(out[src + i]);
      }
    }
    if (out.size() > expected_size) {
      return ParseError("zstd: output exceeds expected size");
    }
  }
  if (out.size() != expected_size) {
    return ParseError("zstd: output size mismatch");
  }
  return out;
}

}  // namespace imk
