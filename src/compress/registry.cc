#include "src/compress/registry.h"

#include "src/compress/bzip2.h"
#include "src/compress/gzip.h"
#include "src/compress/lz4.h"
#include "src/compress/lzma.h"
#include "src/compress/lzo.h"
#include "src/compress/zstd.h"

namespace imk {

Result<CodecPtr> MakeCodec(std::string_view name) {
  if (name == "none") {
    return CodecPtr(new NoneCodec());
  }
  if (name == "lz4") {
    return CodecPtr(new Lz4Codec());
  }
  if (name == "lzo") {
    return CodecPtr(new LzoCodec());
  }
  if (name == "gzip") {
    return CodecPtr(new GzipCodec());
  }
  if (name == "zstd") {
    return CodecPtr(new ZstdCodec());
  }
  if (name == "bzip2") {
    return CodecPtr(new Bzip2Codec());
  }
  if (name == "xz" || name == "lzma") {
    return CodecPtr(new LzmaCodec());
  }
  return NotFoundError("unknown codec: " + std::string(name));
}

std::vector<std::string> BakeoffCodecNames() {
  return {"gzip", "bzip2", "xz", "lzo", "lz4", "zstd"};
}

}  // namespace imk
