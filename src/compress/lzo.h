// LZO-style codec: byte-oriented LZ with explicit run headers and 3-byte
// minimum matches. Compresses very fast with a shallow search; ratio is the
// worst of the LZ family, decode speed is close to (slightly below) LZ4 —
// matching LZO's position in the paper's Figure 3 bake-off.
#ifndef IMKASLR_SRC_COMPRESS_LZO_H_
#define IMKASLR_SRC_COMPRESS_LZO_H_

#include "src/compress/codec.h"

namespace imk {

class LzoCodec : public Codec {
 public:
  std::string name() const override { return "lzo"; }
  Result<Bytes> Compress(ByteSpan input) const override;
  Result<Bytes> Decompress(ByteSpan input, size_t expected_size) const override;
};

}  // namespace imk

#endif  // IMKASLR_SRC_COMPRESS_LZO_H_
