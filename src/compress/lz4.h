// LZ4-style codec: the real LZ4 block format (token byte with split literal/
// match-length nibbles, 2-byte offsets, 255-escape length extension). This is
// the fastest-decompressing codec of the suite — which is why the paper's
// bzImage experiments standardize on it (Figure 3).
#ifndef IMKASLR_SRC_COMPRESS_LZ4_H_
#define IMKASLR_SRC_COMPRESS_LZ4_H_

#include "src/compress/codec.h"

namespace imk {

class Lz4Codec : public Codec {
 public:
  std::string name() const override { return "lz4"; }
  Result<Bytes> Compress(ByteSpan input) const override;
  Result<Bytes> Decompress(ByteSpan input, size_t expected_size) const override;
  // Zero-intermediate-buffer decode (the bootstrap/monitor fast path).
  Status DecompressInto(ByteSpan input, size_t expected_size,
                        MutableByteSpan output) const override;
};

}  // namespace imk

#endif  // IMKASLR_SRC_COMPRESS_LZ4_H_
