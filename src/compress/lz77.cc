#include "src/compress/lz77.h"

#include <algorithm>
#include <cstring>

namespace imk {
namespace {

constexpr uint32_t kHashBits = 16;
constexpr uint32_t kHashSize = 1u << kHashBits;

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Length of the common prefix of [a, limit) and [b, limit_b...) capped by caller.
uint32_t MatchLength(const uint8_t* a, const uint8_t* b, uint32_t max_len) {
  uint32_t len = 0;
  while (len + 8 <= max_len) {
    uint64_t xa;
    uint64_t xb;
    std::memcpy(&xa, a + len, 8);
    std::memcpy(&xb, b + len, 8);
    const uint64_t diff = xa ^ xb;
    if (diff != 0) {
      return len + static_cast<uint32_t>(__builtin_ctzll(diff) >> 3);
    }
    len += 8;
  }
  while (len < max_len && a[len] == b[len]) {
    ++len;
  }
  return len;
}

struct Matcher {
  explicit Matcher(ByteSpan input)
      : data(input.data()), size(static_cast<uint32_t>(input.size())) {
    head.assign(kHashSize, kNil);
    prev.assign(size, kNil);
  }

  static constexpr uint32_t kNil = 0xffffffffu;

  // Finds the best match at `pos`; returns length (0 if none) and distance.
  void FindBest(uint32_t pos, const Lz77Params& params, uint32_t* best_len,
                uint32_t* best_dist) const {
    *best_len = 0;
    *best_dist = 0;
    if (pos + 4 > size) {
      return;
    }
    const uint32_t max_len =
        std::min<uint32_t>(size - pos, params.max_match);
    uint32_t candidate = head[Hash4(data + pos)];
    uint32_t chain = params.max_chain;
    while (candidate != kNil && chain-- != 0) {
      const uint32_t dist = pos - candidate;
      if (dist == 0 || dist > params.window_size) {
        break;
      }
      // Quick reject: check the byte past the current best.
      if (*best_len == 0 || data[candidate + *best_len] == data[pos + *best_len]) {
        const uint32_t len = MatchLength(data + pos, data + candidate, max_len);
        if (len > *best_len) {
          *best_len = len;
          *best_dist = dist;
          if (len >= max_len) {
            break;
          }
        }
      }
      candidate = prev[candidate];
    }
    if (*best_len < params.min_match) {
      *best_len = 0;
      *best_dist = 0;
    }
  }

  void Insert(uint32_t pos) {
    if (pos + 4 > size) {
      return;
    }
    const uint32_t h = Hash4(data + pos);
    prev[pos] = head[h];
    head[h] = pos;
  }

  const uint8_t* data;
  uint32_t size;
  std::vector<uint32_t> head;
  std::vector<uint32_t> prev;
};

}  // namespace

std::vector<Lz77Token> Lz77Parse(ByteSpan input, const Lz77Params& params) {
  std::vector<Lz77Token> tokens;
  const uint32_t size = static_cast<uint32_t>(input.size());
  if (size == 0) {
    return tokens;
  }
  Matcher matcher(input);

  uint32_t pos = 0;
  uint32_t literal_start = 0;
  while (pos < size) {
    uint32_t len;
    uint32_t dist;
    matcher.FindBest(pos, params, &len, &dist);

    if (len != 0 && params.lazy && pos + 1 < size) {
      // One-step lazy match: if the next position has a strictly better
      // match, emit this byte as a literal instead.
      const uint32_t inserted_through = pos;  // inclusive
      matcher.Insert(pos);
      uint32_t next_len;
      uint32_t next_dist;
      matcher.FindBest(pos + 1, params, &next_len, &next_dist);
      if (next_len > len + 1) {
        ++pos;
        len = next_len;
        dist = next_dist;
      }
      tokens.push_back(Lz77Token{literal_start, pos - literal_start, len, dist});
      for (uint32_t i = inserted_through + 1; i < pos + len && i < size; ++i) {
        matcher.Insert(i);
      }
      pos += len;
      literal_start = pos;
      continue;
    }

    if (len == 0) {
      matcher.Insert(pos);
      ++pos;
      continue;
    }

    tokens.push_back(Lz77Token{literal_start, pos - literal_start, len, dist});
    for (uint32_t i = pos; i < pos + len && i < size; ++i) {
      matcher.Insert(i);
    }
    pos += len;
    literal_start = pos;
  }

  if (literal_start < size) {
    tokens.push_back(Lz77Token{literal_start, size - literal_start, 0, 0});
  }
  return tokens;
}

}  // namespace imk
