// Canonical, length-limited Huffman coding.
//
// Codes are canonical: symbols are assigned consecutive code values within
// each length, ordered by symbol index, so a table of code lengths fully
// describes the code. Encoders write codes MSB-first; two decoders are
// provided — a bit-serial canonical decoder (compact, used by the
// DEFLATE-style codec) and a single-level lookup-table decoder (faster,
// used by the zstd-style codec).
#ifndef IMKASLR_SRC_COMPRESS_HUFFMAN_H_
#define IMKASLR_SRC_COMPRESS_HUFFMAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/result.h"
#include "src/compress/bitstream.h"

namespace imk {

// Builds length-limited (<= max_length) Huffman code lengths from symbol
// frequencies. Symbols with zero frequency get length 0 (no code). If only
// one symbol has nonzero frequency it is assigned length 1.
Result<std::vector<uint8_t>> BuildHuffmanLengths(std::span<const uint64_t> freqs,
                                                 uint32_t max_length);

// Assigns canonical code values for the given lengths (MSB-first bit order).
std::vector<uint32_t> CanonicalCodes(std::span<const uint8_t> lengths);

// Encoder: lengths + codes.
class HuffmanEncoder {
 public:
  // Lengths must come from BuildHuffmanLengths (valid Kraft sum).
  explicit HuffmanEncoder(std::vector<uint8_t> lengths);

  void Encode(BitWriter& writer, uint32_t symbol) const {
    writer.WriteBitsMsbFirst(codes_[symbol], lengths_[symbol]);
  }

  const std::vector<uint8_t>& lengths() const { return lengths_; }

 private:
  std::vector<uint8_t> lengths_;
  std::vector<uint32_t> codes_;
};

// Bit-serial canonical decoder: O(code length) per symbol, tiny tables.
class HuffmanDecoder {
 public:
  // Fails if the lengths do not describe a complete or empty prefix code.
  static Result<HuffmanDecoder> Create(std::span<const uint8_t> lengths);

  Result<uint32_t> Decode(BitReader& reader) const;

 private:
  static constexpr uint32_t kMaxLength = 20;
  // first_code_[l], first_index_[l]: canonical decode bookkeeping per length.
  uint32_t first_code_[kMaxLength + 1] = {};
  uint32_t count_[kMaxLength + 1] = {};
  uint32_t first_index_[kMaxLength + 1] = {};
  std::vector<uint32_t> sorted_symbols_;
  uint32_t max_used_length_ = 0;
};

// Single-level table decoder: one table lookup per symbol. Requires
// max code length <= 12 (table of 4096 entries).
class HuffmanTableDecoder {
 public:
  static constexpr uint32_t kMaxLength = 12;

  static Result<HuffmanTableDecoder> Create(std::span<const uint8_t> lengths);

  Result<uint32_t> Decode(BitReader& reader) const;

 private:
  struct Entry {
    uint16_t symbol = 0;
    uint8_t length = 0;  // 0 = invalid
  };
  std::vector<Entry> table_;  // 1 << kMaxLength entries
};

}  // namespace imk

#endif  // IMKASLR_SRC_COMPRESS_HUFFMAN_H_
