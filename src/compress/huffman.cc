#include "src/compress/huffman.h"

#include <algorithm>
#include <queue>

namespace imk {

Result<std::vector<uint8_t>> BuildHuffmanLengths(std::span<const uint64_t> freqs,
                                                 uint32_t max_length) {
  const size_t n = freqs.size();
  std::vector<uint8_t> lengths(n, 0);

  std::vector<size_t> used;
  for (size_t i = 0; i < n; ++i) {
    if (freqs[i] != 0) {
      used.push_back(i);
    }
  }
  if (used.empty()) {
    return lengths;
  }
  if (used.size() == 1) {
    lengths[used[0]] = 1;
    return lengths;
  }

  // Standard heap-based Huffman tree; node ids: [0, n) leaves, then internal.
  struct Node {
    uint64_t freq;
    uint32_t id;
    bool operator>(const Node& other) const {
      return freq > other.freq || (freq == other.freq && id > other.id);
    }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> heap;
  std::vector<uint32_t> parent(n + used.size(), 0);
  for (size_t i : used) {
    heap.push(Node{freqs[i], static_cast<uint32_t>(i)});
  }
  uint32_t next_id = static_cast<uint32_t>(n);
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    parent[a.id] = next_id;
    parent[b.id] = next_id;
    heap.push(Node{a.freq + b.freq, next_id});
    ++next_id;
  }
  const uint32_t root = heap.top().id;

  // Depth of each leaf = path length to root.
  for (size_t i : used) {
    uint32_t depth = 0;
    uint32_t node = static_cast<uint32_t>(i);
    while (node != root) {
      node = parent[node];
      ++depth;
    }
    lengths[i] = static_cast<uint8_t>(std::min<uint32_t>(depth, 255));
  }

  // Length-limit via Kraft repair: clamp, then lengthen the deepest
  // still-shortenable codes until the Kraft sum fits.
  bool clamped = false;
  for (size_t i : used) {
    if (lengths[i] > max_length) {
      lengths[i] = static_cast<uint8_t>(max_length);
      clamped = true;
    }
  }
  if (clamped) {
    const uint64_t budget = 1ull << max_length;
    auto kraft = [&]() {
      uint64_t sum = 0;
      for (size_t i : used) {
        sum += 1ull << (max_length - lengths[i]);
      }
      return sum;
    };
    uint64_t sum = kraft();
    while (sum > budget) {
      // Lengthen the longest code that is still < max_length (cheapest loss).
      size_t best = SIZE_MAX;
      for (size_t i : used) {
        if (lengths[i] < max_length && (best == SIZE_MAX || lengths[i] > lengths[best])) {
          best = i;
        }
      }
      if (best == SIZE_MAX) {
        return InternalError("huffman: cannot satisfy length limit");
      }
      sum -= 1ull << (max_length - lengths[best]);
      ++lengths[best];
      sum += 1ull << (max_length - lengths[best]);
    }
  }
  return lengths;
}

std::vector<uint32_t> CanonicalCodes(std::span<const uint8_t> lengths) {
  uint32_t max_len = 0;
  for (uint8_t l : lengths) {
    max_len = std::max<uint32_t>(max_len, l);
  }
  std::vector<uint32_t> count(max_len + 1, 0);
  for (uint8_t l : lengths) {
    if (l > 0) {
      ++count[l];
    }
  }
  std::vector<uint32_t> next_code(max_len + 2, 0);
  uint32_t code = 0;
  for (uint32_t len = 1; len <= max_len; ++len) {
    code = (code + count[len - 1]) << 1;
    next_code[len] = code;
  }
  std::vector<uint32_t> codes(lengths.size(), 0);
  for (size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) {
      codes[i] = next_code[lengths[i]]++;
    }
  }
  return codes;
}

HuffmanEncoder::HuffmanEncoder(std::vector<uint8_t> lengths) : lengths_(std::move(lengths)) {
  codes_ = CanonicalCodes(lengths_);
}

Result<HuffmanDecoder> HuffmanDecoder::Create(std::span<const uint8_t> lengths) {
  HuffmanDecoder decoder;
  for (size_t i = 0; i < lengths.size(); ++i) {
    const uint8_t len = lengths[i];
    if (len > kMaxLength) {
      return ParseError("huffman: code length too large");
    }
    if (len > 0) {
      ++decoder.count_[len];
      decoder.max_used_length_ = std::max<uint32_t>(decoder.max_used_length_, len);
    }
  }
  // Kraft inequality check (over-subscribed codes are not prefix codes).
  uint64_t sum = 0;
  for (uint32_t len = 1; len <= kMaxLength; ++len) {
    sum += static_cast<uint64_t>(decoder.count_[len]) << (kMaxLength - len);
  }
  if (sum > (1ull << kMaxLength)) {
    return ParseError("huffman: over-subscribed code");
  }

  uint32_t code = 0;
  uint32_t index = 0;
  for (uint32_t len = 1; len <= decoder.max_used_length_; ++len) {
    code = (code + decoder.count_[len - 1]) << 1;
    decoder.first_code_[len] = code;
    decoder.first_index_[len] = index;
    index += decoder.count_[len];
  }
  decoder.sorted_symbols_.reserve(index);
  // Symbols sorted by (length, symbol) — canonical order.
  for (uint32_t len = 1; len <= decoder.max_used_length_; ++len) {
    for (size_t i = 0; i < lengths.size(); ++i) {
      if (lengths[i] == len) {
        decoder.sorted_symbols_.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  return decoder;
}

Result<uint32_t> HuffmanDecoder::Decode(BitReader& reader) const {
  uint32_t code = 0;
  for (uint32_t len = 1; len <= max_used_length_; ++len) {
    IMK_ASSIGN_OR_RETURN(uint32_t bit, reader.ReadBit());
    code = (code << 1) | bit;
    if (count_[len] != 0 && code >= first_code_[len] &&
        code - first_code_[len] < count_[len]) {
      return sorted_symbols_[first_index_[len] + (code - first_code_[len])];
    }
  }
  return ParseError("huffman: invalid code in stream");
}

Result<HuffmanTableDecoder> HuffmanTableDecoder::Create(std::span<const uint8_t> lengths) {
  for (uint8_t len : lengths) {
    if (len > kMaxLength) {
      return ParseError("huffman table: code length exceeds table depth");
    }
  }
  const std::vector<uint32_t> codes = CanonicalCodes(lengths);
  HuffmanTableDecoder decoder;
  decoder.table_.assign(1u << kMaxLength, Entry{});
  for (size_t i = 0; i < lengths.size(); ++i) {
    const uint8_t len = lengths[i];
    if (len == 0) {
      continue;
    }
    if ((codes[i] >> len) != 0) {
      // Canonical code does not fit in its own length: the length table is
      // over-subscribed (not a prefix code).
      return ParseError("huffman table: over-subscribed code");
    }
    const uint32_t shift = kMaxLength - len;
    const uint32_t base = codes[i] << shift;
    for (uint32_t fill = 0; fill < (1u << shift); ++fill) {
      Entry& entry = decoder.table_[base | fill];
      if (entry.length != 0) {
        return ParseError("huffman table: overlapping codes");
      }
      entry.symbol = static_cast<uint16_t>(i);
      entry.length = len;
    }
  }
  return decoder;
}

Result<uint32_t> HuffmanTableDecoder::Decode(BitReader& reader) const {
  const uint32_t peek = reader.PeekBitsMsbFirst(kMaxLength);
  const Entry entry = table_[peek];
  if (entry.length == 0) {
    return ParseError("huffman table: invalid code");
  }
  IMK_RETURN_IF_ERROR(reader.ConsumeBits(entry.length));
  return entry.symbol;
}

}  // namespace imk
