// DEFLATE-style codec ("gzip"): LZ77 over a 32 KiB window with lazy matching,
// entropy-coded with two canonical Huffman alphabets (literal/length and
// distance) using the DEFLATE length/distance code tables. Bit-serial
// decoding puts its decompression speed in the middle of the pack — the
// classic gzip trade-off the paper's Figure 3 shows.
#ifndef IMKASLR_SRC_COMPRESS_GZIP_H_
#define IMKASLR_SRC_COMPRESS_GZIP_H_

#include "src/compress/codec.h"

namespace imk {

class GzipCodec : public Codec {
 public:
  std::string name() const override { return "gzip"; }
  Result<Bytes> Compress(ByteSpan input) const override;
  Result<Bytes> Decompress(ByteSpan input, size_t expected_size) const override;
};

}  // namespace imk

#endif  // IMKASLR_SRC_COMPRESS_GZIP_H_
