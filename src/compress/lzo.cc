#include "src/compress/lzo.h"

#include <cstring>

#include "src/compress/lz77.h"

namespace imk {

// Stream grammar (all integers little-endian):
//   chunk := lit_len:u8  literals[lit_len]  match_len:u8  [dist:u16 if match_len > 0]
// A match of code m copies (m + 2) bytes from dist back. Literal runs longer
// than 255 are split into chunks with match_len == 0.
Result<Bytes> LzoCodec::Compress(ByteSpan input) const {
  Lz77Params params;
  params.window_size = 65535;
  params.min_match = 3;
  params.max_match = 255 + 2;
  params.max_chain = 4;  // LZO favors speed over ratio
  params.lazy = false;
  const std::vector<Lz77Token> tokens = Lz77Parse(input, params);

  Bytes out;
  out.reserve(input.size() / 2 + 64);
  for (const Lz77Token& token : tokens) {
    uint32_t lit_pos = token.literal_start;
    uint32_t lit_remaining = token.literal_len;
    // Split over-long literal runs.
    while (lit_remaining > 255) {
      out.push_back(255);
      out.insert(out.end(), input.begin() + lit_pos, input.begin() + lit_pos + 255);
      out.push_back(0);  // no match
      lit_pos += 255;
      lit_remaining -= 255;
    }
    out.push_back(static_cast<uint8_t>(lit_remaining));
    out.insert(out.end(), input.begin() + lit_pos, input.begin() + lit_pos + lit_remaining);
    if (token.match_len != 0) {
      out.push_back(static_cast<uint8_t>(token.match_len - 2));
      out.push_back(static_cast<uint8_t>(token.match_dist & 0xff));
      out.push_back(static_cast<uint8_t>(token.match_dist >> 8));
    } else {
      out.push_back(0);
    }
  }
  return out;
}

Result<Bytes> LzoCodec::Decompress(ByteSpan input, size_t expected_size) const {
  Bytes out(expected_size);
  uint8_t* op = out.data();
  uint8_t* const oend = op + expected_size;
  size_t pos = 0;
  const size_t in_size = input.size();
  while (pos < in_size) {
    const uint8_t lit_len = input[pos++];
    if (lit_len > in_size - pos || lit_len > static_cast<size_t>(oend - op)) {
      return ParseError("lzo: literal run out of range");
    }
    std::memcpy(op, input.data() + pos, lit_len);
    op += lit_len;
    pos += lit_len;
    if (pos >= in_size) {
      return ParseError("lzo: missing match byte");
    }
    const uint8_t match_code = input[pos++];
    if (match_code == 0) {
      continue;
    }
    if (pos + 2 > in_size) {
      return ParseError("lzo: truncated match distance");
    }
    const uint32_t dist = static_cast<uint32_t>(input[pos]) |
                          (static_cast<uint32_t>(input[pos + 1]) << 8);
    pos += 2;
    if (dist == 0 || dist > static_cast<size_t>(op - out.data())) {
      return ParseError("lzo: bad match distance");
    }
    const uint32_t match_len = static_cast<uint32_t>(match_code) + 2;
    if (match_len > static_cast<size_t>(oend - op)) {
      return ParseError("lzo: match overflows output");
    }
    const uint8_t* src = op - dist;
    uint32_t remaining = match_len;
    while (remaining > 0) {
      const uint32_t chunk = remaining < dist ? remaining : dist;
      std::memcpy(op, src, chunk);
      op += chunk;
      src += chunk;
      remaining -= chunk;
    }
  }
  if (op != oend) {
    return ParseError("lzo: output size mismatch");
  }
  return out;
}

}  // namespace imk
