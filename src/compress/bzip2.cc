#include "src/compress/bzip2.h"

#include <algorithm>
#include <array>
#include <numeric>

#include "src/compress/huffman.h"

namespace imk {
namespace {

constexpr size_t kBlockSize = 128 * 1024;
constexpr uint32_t kMaxCodeLength = 15;

// Burrows-Wheeler transform of `block` using cyclic prefix doubling.
// Returns the last column; `primary` receives the row index of the original
// string in the sorted rotation matrix.
Bytes BwtForward(ByteSpan block, uint32_t* primary) {
  const size_t n = block.size();
  std::vector<uint32_t> sa(n);
  std::iota(sa.begin(), sa.end(), 0);
  std::vector<uint32_t> rank(n);
  std::vector<uint32_t> next_rank(n);
  for (size_t i = 0; i < n; ++i) {
    rank[i] = block[i];
  }
  for (size_t k = 1; k < n; k <<= 1) {
    auto cmp = [&](uint32_t a, uint32_t b) {
      if (rank[a] != rank[b]) {
        return rank[a] < rank[b];
      }
      const uint32_t ra = rank[(a + k) % n];
      const uint32_t rb = rank[(b + k) % n];
      return ra < rb;
    };
    std::sort(sa.begin(), sa.end(), cmp);
    next_rank[sa[0]] = 0;
    for (size_t i = 1; i < n; ++i) {
      next_rank[sa[i]] = next_rank[sa[i - 1]] + (cmp(sa[i - 1], sa[i]) ? 1 : 0);
    }
    rank.swap(next_rank);
    if (rank[sa[n - 1]] == n - 1) {
      break;  // all ranks distinct
    }
  }

  Bytes last_column(n);
  *primary = 0;
  for (size_t i = 0; i < n; ++i) {
    if (sa[i] == 0) {
      *primary = static_cast<uint32_t>(i);
    }
    last_column[i] = block[(sa[i] + n - 1) % n];
  }
  return last_column;
}

// Inverse BWT via the standard LF-mapping walk.
Bytes BwtInverse(ByteSpan last_column, uint32_t primary) {
  const size_t n = last_column.size();
  std::array<uint32_t, 256> count{};
  for (uint8_t b : last_column) {
    ++count[b];
  }
  std::array<uint32_t, 256> first{};
  uint32_t total = 0;
  for (size_t c = 0; c < 256; ++c) {
    first[c] = total;
    total += count[c];
  }
  std::vector<uint32_t> lf(n);
  std::array<uint32_t, 256> seen{};
  for (size_t i = 0; i < n; ++i) {
    const uint8_t c = last_column[i];
    lf[i] = first[c] + seen[c]++;
  }
  Bytes out(n);
  uint32_t row = primary;
  for (size_t k = n; k-- > 0;) {
    out[k] = last_column[row];
    row = lf[row];
  }
  return out;
}

// Move-to-front transform (in place over a working alphabet).
void MtfForward(MutableByteSpan data) {
  std::array<uint8_t, 256> order;
  for (size_t i = 0; i < 256; ++i) {
    order[i] = static_cast<uint8_t>(i);
  }
  for (uint8_t& b : data) {
    uint8_t rank = 0;
    while (order[rank] != b) {
      ++rank;
    }
    const uint8_t symbol = b;
    b = rank;
    // Move to front.
    for (uint8_t j = rank; j > 0; --j) {
      order[j] = order[j - 1];
    }
    order[0] = symbol;
  }
}

void MtfInverse(MutableByteSpan data) {
  std::array<uint8_t, 256> order;
  for (size_t i = 0; i < 256; ++i) {
    order[i] = static_cast<uint8_t>(i);
  }
  for (uint8_t& b : data) {
    const uint8_t rank = b;
    const uint8_t symbol = order[rank];
    b = symbol;
    for (uint8_t j = rank; j > 0; --j) {
      order[j] = order[j - 1];
    }
    order[0] = symbol;
  }
}

// Zero-run coding: MTF output is dominated by zeros. Alphabet: 0..255 map to
// themselves shifted by 1 (symbol = value + 1); symbol 0 starts a zero run
// whose length follows as a varint in unary-ish Huffman-friendly form.
// We keep it simple: symbol 0 = "zero run", followed by a second symbol
// carrying min(run, 255) (reusing the same alphabet), repeating for longer
// runs. The alphabet is therefore 257 symbols (0 = run marker, v+1 = byte v).
void Rle0Encode(ByteSpan mtf, std::vector<uint16_t>& symbols) {
  size_t i = 0;
  while (i < mtf.size()) {
    if (mtf[i] == 0) {
      size_t run = 0;
      while (i < mtf.size() && mtf[i] == 0 && run < 255) {
        ++run;
        ++i;
      }
      symbols.push_back(0);
      symbols.push_back(static_cast<uint16_t>(run));
    } else {
      symbols.push_back(static_cast<uint16_t>(mtf[i] + 1));
      ++i;
    }
  }
}

}  // namespace

// Container: varint block count; per block: varint raw_len, varint primary,
// varint symbol_count, 129 bytes packed 4-bit code lengths... (lengths for a
// 257-symbol alphabet, packed two per byte), byte-aligned Huffman stream
// length (varint) + stream.
Result<Bytes> Bzip2Codec::Compress(ByteSpan input) const {
  ByteWriter header;
  const size_t block_count = (input.size() + kBlockSize - 1) / kBlockSize;
  header.WriteU32(static_cast<uint32_t>(block_count));
  Bytes out = header.Take();

  for (size_t block_index = 0; block_index < block_count; ++block_index) {
    const size_t start = block_index * kBlockSize;
    const size_t len = std::min(kBlockSize, input.size() - start);
    ByteSpan block = input.subspan(start, len);

    uint32_t primary = 0;
    Bytes bwt = BwtForward(block, &primary);
    MtfForward(MutableByteSpan(bwt));
    std::vector<uint16_t> symbols;
    symbols.reserve(bwt.size());
    Rle0Encode(ByteSpan(bwt), symbols);

    std::vector<uint64_t> freq(257, 0);
    for (uint16_t s : symbols) {
      ++freq[s];
    }
    IMK_ASSIGN_OR_RETURN(std::vector<uint8_t> lengths, BuildHuffmanLengths(freq, kMaxCodeLength));
    HuffmanEncoder encoder(lengths);
    BitWriter bits;
    for (uint16_t s : symbols) {
      encoder.Encode(bits, s);
    }
    Bytes coded = bits.Take();

    ByteWriter block_header;
    block_header.WriteU32(static_cast<uint32_t>(len));
    block_header.WriteU32(primary);
    block_header.WriteU32(static_cast<uint32_t>(symbols.size()));
    block_header.WriteU32(static_cast<uint32_t>(coded.size()));
    // 257 lengths, packed two per byte (129 bytes).
    for (size_t i = 0; i < 257; i += 2) {
      const uint8_t low = lengths[i];
      const uint8_t high = (i + 1 < 257) ? lengths[i + 1] : 0;
      block_header.WriteU8(static_cast<uint8_t>(low | (high << 4)));
    }
    const Bytes block_header_bytes = block_header.Take();
    out.insert(out.end(), block_header_bytes.begin(), block_header_bytes.end());
    out.insert(out.end(), coded.begin(), coded.end());
  }
  return out;
}

Result<Bytes> Bzip2Codec::Decompress(ByteSpan input, size_t expected_size) const {
  ByteReader reader(input);
  IMK_ASSIGN_OR_RETURN(uint32_t block_count, reader.ReadU32());
  Bytes out;
  out.reserve(expected_size);

  for (uint32_t block_index = 0; block_index < block_count; ++block_index) {
    IMK_ASSIGN_OR_RETURN(uint32_t raw_len, reader.ReadU32());
    IMK_ASSIGN_OR_RETURN(uint32_t primary, reader.ReadU32());
    IMK_ASSIGN_OR_RETURN(uint32_t symbol_count, reader.ReadU32());
    IMK_ASSIGN_OR_RETURN(uint32_t coded_size, reader.ReadU32());
    std::vector<uint8_t> lengths(257);
    IMK_ASSIGN_OR_RETURN(ByteSpan packed, reader.ReadBytes(129));
    for (size_t i = 0; i < 257; i += 2) {
      lengths[i] = packed[i / 2] & 0xf;
      if (i + 1 < 257) {
        lengths[i + 1] = packed[i / 2] >> 4;
      }
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan coded, reader.ReadBytes(coded_size));
    IMK_ASSIGN_OR_RETURN(HuffmanDecoder decoder, HuffmanDecoder::Create(lengths));

    // Huffman + RLE0 decode straight into the MTF buffer.
    Bytes mtf;
    mtf.reserve(raw_len);
    BitReader bits(coded);
    for (uint32_t s = 0; s < symbol_count; ++s) {
      IMK_ASSIGN_OR_RETURN(uint32_t symbol, decoder.Decode(bits));
      if (symbol == 0) {
        ++s;
        if (s >= symbol_count) {
          return ParseError("bzip2: dangling zero-run marker");
        }
        IMK_ASSIGN_OR_RETURN(uint32_t run, decoder.Decode(bits));
        if (run == 0 || mtf.size() + run > raw_len) {
          return ParseError("bzip2: bad zero run");
        }
        mtf.insert(mtf.end(), run, 0);
      } else {
        if (mtf.size() + 1 > raw_len) {
          return ParseError("bzip2: block overflow");
        }
        mtf.push_back(static_cast<uint8_t>(symbol - 1));
      }
    }
    if (mtf.size() != raw_len) {
      return ParseError("bzip2: block size mismatch");
    }
    MtfInverse(MutableByteSpan(mtf));
    if (primary >= raw_len) {
      return ParseError("bzip2: primary index out of range");
    }
    Bytes block = BwtInverse(ByteSpan(mtf), primary);
    out.insert(out.end(), block.begin(), block.end());
    if (out.size() > expected_size) {
      return ParseError("bzip2: output exceeds expected size");
    }
  }
  if (out.size() != expected_size) {
    return ParseError("bzip2: output size mismatch");
  }
  return out;
}

}  // namespace imk
