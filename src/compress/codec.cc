#include "src/compress/codec.h"

#include <cstring>

namespace imk {

Status Codec::DecompressInto(ByteSpan input, size_t expected_size,
                             MutableByteSpan output) const {
  if (output.size() < expected_size + kDecompressSlack) {
    return InvalidArgumentError("DecompressInto: output buffer too small");
  }
  IMK_ASSIGN_OR_RETURN(Bytes out, Decompress(input, expected_size));
  std::memcpy(output.data(), out.data(), out.size());
  return OkStatus();
}

}  // namespace imk
