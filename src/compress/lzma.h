// LZMA/xz-style codec: LZ77 over a 1 MiB window with deep match search,
// entropy-coded with an adaptive binary range coder (bit-tree contexts for
// literals, lengths, and distance slots). Best compression ratio of the
// suite; slowest decompression after bzip2 — the xz trade-off in Figure 3.
#ifndef IMKASLR_SRC_COMPRESS_LZMA_H_
#define IMKASLR_SRC_COMPRESS_LZMA_H_

#include "src/compress/codec.h"

namespace imk {

class LzmaCodec : public Codec {
 public:
  std::string name() const override { return "xz"; }
  Result<Bytes> Compress(ByteSpan input) const override;
  Result<Bytes> Decompress(ByteSpan input, size_t expected_size) const override;
};

}  // namespace imk

#endif  // IMKASLR_SRC_COMPRESS_LZMA_H_
