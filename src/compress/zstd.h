// Zstd-style codec: LZ77 over a 256 KiB window, literals packed into a
// separate table-decoded Huffman stream, sequences stored byte-aligned as
// varints. Decoding is one table lookup per literal plus byte-aligned
// sequence reads — faster than gzip's bit-serial loop, slower than LZ4's raw
// copies, with a ratio at or above gzip: the zstd trade-off in Figure 3.
#ifndef IMKASLR_SRC_COMPRESS_ZSTD_H_
#define IMKASLR_SRC_COMPRESS_ZSTD_H_

#include "src/compress/codec.h"

namespace imk {

class ZstdCodec : public Codec {
 public:
  std::string name() const override { return "zstd"; }
  Result<Bytes> Compress(ByteSpan input) const override;
  Result<Bytes> Decompress(ByteSpan input, size_t expected_size) const override;
};

}  // namespace imk

#endif  // IMKASLR_SRC_COMPRESS_ZSTD_H_
