// Bit-granular I/O for the entropy-coded codecs. Bits are packed LSB-first
// within each byte; multi-bit integer fields are written least-significant
// bit first. Canonical Huffman codes are written MSB-of-code first (see
// huffman.h).
#ifndef IMKASLR_SRC_COMPRESS_BITSTREAM_H_
#define IMKASLR_SRC_COMPRESS_BITSTREAM_H_

#include <cstdint>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace imk {

// Accumulates bits into a byte vector.
class BitWriter {
 public:
  // Writes the low `count` bits of `value`, LSB first.
  void WriteBits(uint32_t value, uint32_t count) {
    for (uint32_t i = 0; i < count; ++i) {
      WriteBit((value >> i) & 1);
    }
  }

  // Writes the low `count` bits of `value`, MSB first (for Huffman codes).
  void WriteBitsMsbFirst(uint32_t value, uint32_t count) {
    for (uint32_t i = count; i-- > 0;) {
      WriteBit((value >> i) & 1);
    }
  }

  void WriteBit(uint32_t bit) {
    if (bit_pos_ == 0) {
      out_.push_back(0);
    }
    if (bit != 0) {
      out_.back() |= static_cast<uint8_t>(1u << bit_pos_);
    }
    bit_pos_ = (bit_pos_ + 1) & 7;
  }

  // Pads to a byte boundary with zero bits.
  void AlignToByte() { bit_pos_ = 0; }

  size_t size_bytes() const { return out_.size(); }
  Bytes Take() { return std::move(out_); }

 private:
  Bytes out_;
  uint32_t bit_pos_ = 0;
};

// Reads bits from a byte span.
class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  Result<uint32_t> ReadBit() {
    if (byte_pos_ >= data_.size()) {
      return OutOfRangeError("bit stream exhausted");
    }
    const uint32_t bit = (data_[byte_pos_] >> bit_pos_) & 1;
    bit_pos_ = (bit_pos_ + 1) & 7;
    if (bit_pos_ == 0) {
      ++byte_pos_;
    }
    return bit;
  }

  // Reads `count` bits LSB-first.
  Result<uint32_t> ReadBits(uint32_t count) {
    uint32_t value = 0;
    for (uint32_t i = 0; i < count; ++i) {
      IMK_ASSIGN_OR_RETURN(uint32_t bit, ReadBit());
      value |= bit << i;
    }
    return value;
  }

  void AlignToByte() {
    if (bit_pos_ != 0) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
  }

  // Peeks the next `count` stream bits without consuming, assembling them
  // MSB-first (first stream bit becomes the highest result bit). Bits past
  // the end of the stream read as zero. Used by table-driven Huffman decode.
  uint32_t PeekBitsMsbFirst(uint32_t count) const {
    uint32_t value = 0;
    size_t byte_pos = byte_pos_;
    uint32_t bit_pos = bit_pos_;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t bit = 0;
      if (byte_pos < data_.size()) {
        bit = (data_[byte_pos] >> bit_pos) & 1;
      }
      value = (value << 1) | bit;
      bit_pos = (bit_pos + 1) & 7;
      if (bit_pos == 0) {
        ++byte_pos;
      }
    }
    return value;
  }

  // Consumes up to `count` bits (bounded by end of stream).
  Status ConsumeBits(uint32_t count) {
    for (uint32_t i = 0; i < count; ++i) {
      IMK_RETURN_IF_ERROR(ReadBit().status());
    }
    return OkStatus();
  }

  size_t byte_position() const { return byte_pos_; }
  bool Exhausted() const { return byte_pos_ >= data_.size(); }

 private:
  ByteSpan data_;
  size_t byte_pos_ = 0;
  uint32_t bit_pos_ = 0;
};

}  // namespace imk

#endif  // IMKASLR_SRC_COMPRESS_BITSTREAM_H_
