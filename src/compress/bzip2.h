// Bzip2-style codec: block-sorting compression — Burrows-Wheeler transform
// (cyclic prefix-doubling sort), move-to-front, zero run-length coding, and
// canonical Huffman. Best-in-class ratio on structured data but the slowest
// decompressor of the suite, matching bzip2's placement in Figure 3.
#ifndef IMKASLR_SRC_COMPRESS_BZIP2_H_
#define IMKASLR_SRC_COMPRESS_BZIP2_H_

#include "src/compress/codec.h"

namespace imk {

class Bzip2Codec : public Codec {
 public:
  std::string name() const override { return "bzip2"; }
  Result<Bytes> Compress(ByteSpan input) const override;
  Result<Bytes> Decompress(ByteSpan input, size_t expected_size) const override;
};

}  // namespace imk

#endif  // IMKASLR_SRC_COMPRESS_BZIP2_H_
