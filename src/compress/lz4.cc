#include "src/compress/lz4.h"

#include <cstring>

#include "src/compress/lz77.h"

namespace imk {
namespace {

void WriteLength(Bytes& out, uint32_t len) {
  while (len >= 255) {
    out.push_back(255);
    len -= 255;
  }
  out.push_back(static_cast<uint8_t>(len));
}

}  // namespace

Result<Bytes> Lz4Codec::Compress(ByteSpan input) const {
  Lz77Params params;
  params.window_size = 65535;  // 2-byte offset
  params.min_match = 4;
  params.max_chain = 32;  // deeper search finds longer matches -> faster decode
  params.lazy = false;
  const std::vector<Lz77Token> tokens = Lz77Parse(input, params);

  Bytes out;
  out.reserve(input.size() / 2 + 64);
  for (const Lz77Token& token : tokens) {
    const uint32_t lit_len = token.literal_len;
    const bool has_match = token.match_len != 0;
    const uint32_t match_code = has_match ? token.match_len - 4 : 0;

    uint8_t token_byte = 0;
    token_byte |= static_cast<uint8_t>((lit_len >= 15 ? 15 : lit_len) << 4);
    token_byte |= static_cast<uint8_t>(has_match ? (match_code >= 15 ? 15 : match_code) : 0);
    out.push_back(token_byte);
    if (lit_len >= 15) {
      WriteLength(out, lit_len - 15);
    }
    out.insert(out.end(), input.begin() + token.literal_start,
               input.begin() + token.literal_start + lit_len);
    if (has_match) {
      out.push_back(static_cast<uint8_t>(token.match_dist & 0xff));
      out.push_back(static_cast<uint8_t>(token.match_dist >> 8));
      if (match_code >= 15) {
        WriteLength(out, match_code - 15);
      }
    }
  }
  return out;
}

namespace {

// Core decoder: writes exactly `expected_size` bytes at `out_data` (which
// must carry Codec::kDecompressSlack writable bytes beyond that, used by the
// 16-byte wildcopies). Decompression speed is load-bearing for the boot-time
// experiments: raw pointers, wildcopies for short literals/matches,
// geometric expansion for overlapping matches.
Status DecodeLz4(ByteSpan input, size_t expected_size, uint8_t* out_data) {
  constexpr size_t kSlack = Codec::kDecompressSlack;
  uint8_t* op = out_data;
  uint8_t* const oend = op + expected_size;
  size_t pos = 0;
  const size_t in_size = input.size();

  auto read_length = [&](uint32_t base) -> Result<uint32_t> {
    uint32_t len = base;
    if (base == 15) {
      for (;;) {
        if (pos >= in_size) {
          return ParseError("lz4: truncated length");
        }
        const uint8_t b = input[pos++];
        len += b;
        if (b != 255) {
          break;
        }
      }
    }
    return len;
  };

  while (pos < in_size) {
    const uint8_t token = input[pos++];
    IMK_ASSIGN_OR_RETURN(uint32_t lit_len, read_length(token >> 4));
    if (lit_len > in_size - pos || lit_len > static_cast<size_t>(oend - op)) {
      return ParseError("lz4: literal run out of range");
    }
    if (lit_len <= kSlack && pos + kSlack <= in_size) {
      std::memcpy(op, input.data() + pos, kSlack);  // wildcopy into the slack
    } else {
      std::memcpy(op, input.data() + pos, lit_len);
    }
    op += lit_len;
    pos += lit_len;
    if (pos == in_size) {
      break;  // final literal-only sequence
    }

    if (pos + 2 > in_size) {
      return ParseError("lz4: truncated offset");
    }
    const uint32_t dist = static_cast<uint32_t>(input[pos]) |
                          (static_cast<uint32_t>(input[pos + 1]) << 8);
    pos += 2;
    if (dist == 0 || dist > static_cast<size_t>(op - out_data)) {
      return ParseError("lz4: bad match distance");
    }
    IMK_ASSIGN_OR_RETURN(uint32_t match_code, read_length(token & 0xf));
    uint32_t match_len = match_code + 4;
    if (match_len > static_cast<size_t>(oend - op)) {
      return ParseError("lz4: match overflows output");
    }
    const uint8_t* src = op - dist;
    if (dist >= match_len) {
      if (match_len <= kSlack && dist >= kSlack) {
        std::memcpy(op, src, kSlack);  // wildcopy into the slack (disjoint)
      } else {
        std::memcpy(op, src, match_len);
      }
      op += match_len;
    } else {
      // Overlapping (run-like) match: geometric expansion — each copy may
      // source the whole already-materialized pattern, doubling per step.
      uint32_t remaining = match_len;
      while (remaining > 0) {
        const uint32_t avail = static_cast<uint32_t>(op - src);
        const uint32_t chunk = remaining < avail ? remaining : avail;
        std::memcpy(op, src, chunk);
        op += chunk;
        remaining -= chunk;
      }
    }
  }

  if (op != oend) {
    return ParseError("lz4: output size mismatch");
  }
  return OkStatus();
}

}  // namespace

Result<Bytes> Lz4Codec::Decompress(ByteSpan input, size_t expected_size) const {
  Bytes out(expected_size + kDecompressSlack);
  IMK_RETURN_IF_ERROR(DecodeLz4(input, expected_size, out.data()));
  out.resize(expected_size);
  return out;
}

Status Lz4Codec::DecompressInto(ByteSpan input, size_t expected_size,
                                MutableByteSpan output) const {
  if (output.size() < expected_size + kDecompressSlack) {
    return InvalidArgumentError("lz4: output buffer too small for in-place decode");
  }
  return DecodeLz4(input, expected_size, output.data());
}

}  // namespace imk
