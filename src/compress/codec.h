// Compression codec interface.
//
// The paper's Figure 3 bake-off compares six Linux kernel compression schemes
// (gzip, bzip2, lzma/xz, lzo, lz4, zstd). This project implements each family
// from scratch with the characteristic speed/ratio trade-offs of the original
// (see DESIGN.md). Formats are self-contained but intentionally NOT
// wire-compatible with the originals.
#ifndef IMKASLR_SRC_COMPRESS_CODEC_H_
#define IMKASLR_SRC_COMPRESS_CODEC_H_

#include <memory>
#include <string>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace imk {

// A lossless byte-stream compressor/decompressor.
class Codec {
 public:
  virtual ~Codec() = default;

  // Short scheme name as used by kernel configs: "lz4", "gzip", ...
  virtual std::string name() const = 0;

  // Compresses `input` into a self-contained blob.
  virtual Result<Bytes> Compress(ByteSpan input) const = 0;

  // Decompresses a blob produced by Compress. `expected_size` is the known
  // decompressed size (the kernel build records it, as bzImage does); codecs
  // use it to pre-size output and to validate the stream.
  virtual Result<Bytes> Decompress(ByteSpan input, size_t expected_size) const = 0;

  // Decompresses directly into caller-owned memory (e.g. guest RAM at the
  // kernel's final location — what a real bootstrap loader does, avoiding an
  // intermediate buffer). `output` must be at least expected_size +
  // kDecompressSlack bytes; the codec may scribble on the slack. The default
  // implementation round-trips through Decompress.
  static constexpr size_t kDecompressSlack = 16;
  virtual Status DecompressInto(ByteSpan input, size_t expected_size,
                                MutableByteSpan output) const;
};

using CodecPtr = std::unique_ptr<Codec>;

}  // namespace imk

#endif  // IMKASLR_SRC_COMPRESS_CODEC_H_
