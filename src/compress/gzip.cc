#include "src/compress/gzip.h"

#include <array>

#include "src/compress/huffman.h"
#include "src/compress/lz77.h"

namespace imk {
namespace {

// DEFLATE alphabets: literals 0..255, end-of-block 256, length codes 257..284.
constexpr uint32_t kEndOfBlock = 256;
constexpr uint32_t kNumLitLenSymbols = 285;
constexpr uint32_t kNumDistSymbols = 30;
constexpr uint32_t kMaxCodeLength = 15;

struct CodeRange {
  uint32_t base;
  uint32_t extra_bits;
};

// DEFLATE length codes 257..284 (we fold code 285 / length 258 into the last
// extra-bits range for simplicity; max match is capped below 258 anyway).
constexpr std::array<CodeRange, 28> kLengthCodes = {{
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},   {8, 0},   {9, 0},   {10, 0},
    {11, 1},  {13, 1},  {15, 1},  {17, 1},  {19, 2},  {23, 2},  {27, 2},  {31, 2},
    {35, 3},  {43, 3},  {51, 3},  {59, 3},  {67, 4},  {83, 4},  {99, 4},  {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5},
}};

// DEFLATE distance codes 0..29.
constexpr std::array<CodeRange, 30> kDistCodes = {{
    {1, 0},      {2, 0},      {3, 0},     {4, 0},     {5, 1},     {7, 1},
    {9, 2},      {13, 2},     {17, 3},    {25, 3},    {33, 4},    {49, 4},
    {65, 5},     {97, 5},     {129, 6},   {193, 6},   {257, 7},   {385, 7},
    {513, 8},    {769, 8},    {1025, 9},  {1537, 9},  {2049, 10}, {3073, 10},
    {4097, 11},  {6145, 11},  {8193, 12}, {12289, 12}, {16385, 13}, {24577, 13},
}};

constexpr uint32_t kMaxMatch = 227 + 31;  // last length range: base 227, 5 extra bits

// Maps a match length (3..258) to (code index, extra value).
void LengthToCode(uint32_t len, uint32_t* code, uint32_t* extra) {
  for (size_t i = kLengthCodes.size(); i-- > 0;) {
    if (len >= kLengthCodes[i].base) {
      *code = static_cast<uint32_t>(i);
      *extra = len - kLengthCodes[i].base;
      return;
    }
  }
  *code = 0;
  *extra = 0;
}

void DistToCode(uint32_t dist, uint32_t* code, uint32_t* extra) {
  for (size_t i = kDistCodes.size(); i-- > 0;) {
    if (dist >= kDistCodes[i].base) {
      *code = static_cast<uint32_t>(i);
      *extra = dist - kDistCodes[i].base;
      return;
    }
  }
  *code = 0;
  *extra = 0;
}

}  // namespace

Result<Bytes> GzipCodec::Compress(ByteSpan input) const {
  Lz77Params params;
  params.window_size = 32 * 1024;
  params.min_match = 3;
  params.max_match = kMaxMatch;
  params.max_chain = 32;
  params.lazy = true;
  const std::vector<Lz77Token> tokens = Lz77Parse(input, params);

  // Pass 1: symbol frequencies.
  std::vector<uint64_t> litlen_freq(kNumLitLenSymbols, 0);
  std::vector<uint64_t> dist_freq(kNumDistSymbols, 0);
  litlen_freq[kEndOfBlock] = 1;
  for (const Lz77Token& token : tokens) {
    for (uint32_t i = 0; i < token.literal_len; ++i) {
      ++litlen_freq[input[token.literal_start + i]];
    }
    if (token.match_len != 0) {
      uint32_t code;
      uint32_t extra;
      LengthToCode(token.match_len, &code, &extra);
      ++litlen_freq[257 + code];
      DistToCode(token.match_dist, &code, &extra);
      ++dist_freq[code];
    }
  }

  IMK_ASSIGN_OR_RETURN(std::vector<uint8_t> litlen_lengths,
                       BuildHuffmanLengths(litlen_freq, kMaxCodeLength));
  IMK_ASSIGN_OR_RETURN(std::vector<uint8_t> dist_lengths,
                       BuildHuffmanLengths(dist_freq, kMaxCodeLength));
  HuffmanEncoder litlen_encoder(litlen_lengths);
  HuffmanEncoder dist_encoder(dist_lengths);

  // Header: both length tables, 4 bits per symbol.
  BitWriter writer;
  for (uint8_t len : litlen_lengths) {
    writer.WriteBits(len, 4);
  }
  for (uint8_t len : dist_lengths) {
    writer.WriteBits(len, 4);
  }

  // Pass 2: encode token stream.
  for (const Lz77Token& token : tokens) {
    for (uint32_t i = 0; i < token.literal_len; ++i) {
      litlen_encoder.Encode(writer, input[token.literal_start + i]);
    }
    if (token.match_len != 0) {
      uint32_t code;
      uint32_t extra;
      LengthToCode(token.match_len, &code, &extra);
      litlen_encoder.Encode(writer, 257 + code);
      writer.WriteBits(extra, kLengthCodes[code].extra_bits);
      DistToCode(token.match_dist, &code, &extra);
      dist_encoder.Encode(writer, code);
      writer.WriteBits(extra, kDistCodes[code].extra_bits);
    }
  }
  litlen_encoder.Encode(writer, kEndOfBlock);
  return writer.Take();
}

Result<Bytes> GzipCodec::Decompress(ByteSpan input, size_t expected_size) const {
  BitReader reader(input);
  std::vector<uint8_t> litlen_lengths(kNumLitLenSymbols);
  std::vector<uint8_t> dist_lengths(kNumDistSymbols);
  for (uint8_t& len : litlen_lengths) {
    IMK_ASSIGN_OR_RETURN(uint32_t v, reader.ReadBits(4));
    len = static_cast<uint8_t>(v);
  }
  for (uint8_t& len : dist_lengths) {
    IMK_ASSIGN_OR_RETURN(uint32_t v, reader.ReadBits(4));
    len = static_cast<uint8_t>(v);
  }
  IMK_ASSIGN_OR_RETURN(HuffmanDecoder litlen_decoder, HuffmanDecoder::Create(litlen_lengths));
  IMK_ASSIGN_OR_RETURN(HuffmanDecoder dist_decoder, HuffmanDecoder::Create(dist_lengths));

  Bytes out;
  out.reserve(expected_size);
  for (;;) {
    IMK_ASSIGN_OR_RETURN(uint32_t symbol, litlen_decoder.Decode(reader));
    if (symbol < 256) {
      out.push_back(static_cast<uint8_t>(symbol));
      continue;
    }
    if (symbol == kEndOfBlock) {
      break;
    }
    const uint32_t length_code = symbol - 257;
    if (length_code >= kLengthCodes.size()) {
      return ParseError("gzip: bad length code");
    }
    IMK_ASSIGN_OR_RETURN(uint32_t length_extra,
                         reader.ReadBits(kLengthCodes[length_code].extra_bits));
    const uint32_t match_len = kLengthCodes[length_code].base + length_extra;

    IMK_ASSIGN_OR_RETURN(uint32_t dist_code, dist_decoder.Decode(reader));
    if (dist_code >= kDistCodes.size()) {
      return ParseError("gzip: bad distance code");
    }
    IMK_ASSIGN_OR_RETURN(uint32_t dist_extra, reader.ReadBits(kDistCodes[dist_code].extra_bits));
    const uint32_t dist = kDistCodes[dist_code].base + dist_extra;
    if (dist == 0 || dist > out.size()) {
      return ParseError("gzip: bad match distance");
    }
    const size_t src = out.size() - dist;
    if (dist >= match_len) {
      out.insert(out.end(), out.begin() + src, out.begin() + src + match_len);
    } else {
      for (uint32_t i = 0; i < match_len; ++i) {
        out.push_back(out[src + i]);
      }
    }
    if (out.size() > expected_size) {
      return ParseError("gzip: output exceeds expected size");
    }
  }
  if (out.size() != expected_size) {
    return ParseError("gzip: output size mismatch");
  }
  return out;
}

}  // namespace imk
