#include "src/verify/image_verifier.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/isa/isa.h"
#include "src/verify/layout_checker.h"
#include "src/verify/leak_scanner.h"
#include "src/verify/reloc_checker.h"

namespace imk {
namespace {

// Computes the memsz span [min vaddr, max vaddr+memsz) over PT_LOAD headers.
void ImageSpan(const ElfReader& elf, uint64_t* base_vaddr, uint64_t* mem_size) {
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  for (const Elf64Phdr& phdr : elf.program_headers()) {
    if (phdr.p_type != kPtLoad) {
      continue;
    }
    lo = std::min(lo, phdr.p_vaddr);
    hi = std::max(hi, phdr.p_vaddr + phdr.p_memsz);
  }
  *base_vaddr = lo;
  *mem_size = hi > lo ? hi - lo : 0;
}

Result<KernelConstantsNote> ResolveConstants(const ElfReader& elf) {
  for (const ElfSection& section : elf.sections()) {
    if (section.header.sh_type != kShtNote) {
      continue;
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan data, elf.SectionData(section));
    IMK_ASSIGN_OR_RETURN(std::vector<ElfNote> notes, ParseNoteSection(data));
    if (auto constants = FindKernelConstants(notes)) {
      return *constants;
    }
  }
  return DefaultKernelConstants();
}

// One {u64 key, u64 aux} table entry.
struct TableEntry {
  uint64_t key;
  uint64_t aux;

  bool operator<(const TableEntry& other) const {
    return key != other.key ? key < other.key : aux < other.aux;
  }
  bool operator==(const TableEntry& other) const {
    return key == other.key && aux == other.aux;
  }
};

// Reads `count` entries at link vaddr `table_vaddr` from a link-layout span.
bool ReadTable(ByteSpan span, uint64_t base_vaddr, uint64_t table_vaddr, uint64_t count,
               std::vector<TableEntry>* out) {
  if (table_vaddr < base_vaddr) {
    return false;
  }
  const uint64_t offset = table_vaddr - base_vaddr;
  if (offset > span.size() || count * 16 > span.size() - offset) {
    return false;
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t* entry = span.data() + offset + i * 16;
    out->push_back(TableEntry{LoadLe64(entry), LoadLe64(entry + 8)});
  }
  return true;
}

// Checks one text-relative {offset, aux} table: the randomized image must
// hold, sorted by key, exactly the pre-shuffle entries with every code offset
// translated through the shuffle map (invariant (3)). `fix_aux` marks the aux
// field as a code offset too (the exception table's fixup target).
void CheckOffsetTable(const VerifyInput& input, ByteSpan pristine, const ShuffleMap& map,
                      uint64_t table_vaddr, uint64_t count, uint64_t text_vaddr, bool fix_aux,
                      bool deferred, Invariant stale_id, Invariant unsorted_id,
                      const char* table_name, VerifyReport& report) {
  std::vector<TableEntry> original;
  std::vector<TableEntry> actual;
  if (!ReadTable(pristine, input.base_vaddr, table_vaddr, count, &original) ||
      !ReadTable(input.randomized, input.base_vaddr, table_vaddr, count, &actual)) {
    Finding finding;
    finding.invariant = stale_id;
    finding.severity = Severity::kError;
    finding.vaddr = table_vaddr;
    finding.section = table_name;
    finding.message = "table outside the image span";
    report.Add(finding);
    return;
  }
  report.coverage().table_entries_checked += count;

  // What a correct shuffle pass must have produced. Deferred (lazy kallsyms)
  // tables are expected to still hold their pre-shuffle contents.
  std::vector<TableEntry> expected = original;
  if (!deferred) {
    for (TableEntry& entry : expected) {
      entry.key += static_cast<uint64_t>(map.DeltaFor(text_vaddr + entry.key));
      if (fix_aux) {
        entry.aux += static_cast<uint64_t>(map.DeltaFor(text_vaddr + entry.aux));
      }
    }
  }
  std::sort(expected.begin(), expected.end());

  // Sortedness of the stored table (the guest binary-searches it).
  for (uint64_t i = 1; i < count; ++i) {
    if (actual[i].key < actual[i - 1].key) {
      Finding finding;
      finding.invariant = unsorted_id;
      finding.severity = Severity::kError;
      finding.vaddr = table_vaddr + i * 16;
      finding.section = table_name;
      finding.message = "entry " + std::to_string(i) + " key " + HexString(actual[i].key) +
                        " below predecessor " + HexString(actual[i - 1].key);
      report.Add(finding);
    }
  }

  // Multiset equality with the expected translation: every entry must resolve
  // to the post-shuffle address of the symbol it named pre-shuffle.
  std::vector<TableEntry> actual_sorted = actual;
  std::sort(actual_sorted.begin(), actual_sorted.end());
  for (uint64_t i = 0; i < count; ++i) {
    if (actual_sorted[i] == expected[i]) {
      continue;
    }
    Finding finding;
    finding.invariant = stale_id;
    finding.severity = Severity::kError;
    finding.vaddr = table_vaddr + i * 16;
    finding.section = table_name;
    finding.message = "expected entry {" + HexString(expected[i].key) + ", " +
                      HexString(expected[i].aux) + "}, found {" + HexString(actual_sorted[i].key) +
                      ", " + HexString(actual_sorted[i].aux) + "}";
    report.Add(finding);
  }
}

// Locates a table by its locator symbol; returns {vaddr, byte size}.
const ElfSymbol* FindTableSymbol(const std::vector<ElfSymbol>& symbols, const char* name) {
  for (const ElfSymbol& symbol : symbols) {
    if (symbol.name == name) {
      return &symbol;
    }
  }
  return nullptr;
}

}  // namespace

Result<VerifyReport> VerifyImage(const VerifyInput& input) {
  IMK_ASSIGN_OR_RETURN(ElfReader elf, ElfReader::Parse(input.original_elf));
  uint64_t link_base = 0;
  uint64_t mem_size = 0;
  ImageSpan(elf, &link_base, &mem_size);
  if (mem_size == 0) {
    return ParseError("original kernel image has no loadable segments");
  }
  if (input.base_vaddr != link_base) {
    return InvalidArgumentError("randomized view base " + HexString(input.base_vaddr) +
                                " does not match the ELF link base " + HexString(link_base));
  }
  if (input.randomized.size() < mem_size) {
    return InvalidArgumentError("randomized view smaller than the kernel memsz span");
  }

  // Reconstruct the pristine link-layout image the randomizer started from.
  Bytes pristine(mem_size, 0);
  for (const Elf64Phdr& phdr : elf.program_headers()) {
    if (phdr.p_type != kPtLoad) {
      continue;
    }
    IMK_ASSIGN_OR_RETURN(ByteSpan file_bytes, elf.SegmentData(phdr));
    std::copy(file_bytes.begin(), file_bytes.end(),
              pristine.begin() + static_cast<ptrdiff_t>(phdr.p_vaddr - link_base));
  }

  KernelConstantsNote constants;
  if (input.constants.has_value()) {
    constants = *input.constants;
  } else {
    IMK_ASSIGN_OR_RETURN(constants, ResolveConstants(elf));
  }

  VerifyReport report;

  // ---- (5) entropy sanity + (2) layout soundness ----
  LayoutCheckContext layout_ctx;
  layout_ctx.elf = &elf;
  layout_ctx.map = input.map;
  layout_ctx.choice = input.choice;
  layout_ctx.constants = constants;
  layout_ctx.image_mem_size = mem_size;
  layout_ctx.guest_mem_size = input.guest_mem_size;
  CheckEntropySanity(layout_ctx, report);
  if (!CheckLayout(layout_ctx, report)) {
    // The shuffle map is structurally unsound; every downstream check reads
    // addresses *through* that map, so their verdicts would be meaningless.
    report.set_downstream_skipped();
    return report;
  }

  // ---- (1) relocation exactness ----
  RelocCheckContext reloc_ctx;
  reloc_ctx.elf = &elf;
  reloc_ctx.pristine = ByteSpan(pristine);
  reloc_ctx.randomized = input.randomized;
  reloc_ctx.base_vaddr = link_base;
  reloc_ctx.relocs = input.relocs;
  reloc_ctx.map = input.map;
  reloc_ctx.virt_slide = input.choice.virt_slide;
  CheckRelocations(reloc_ctx, report);

  // ---- (3) table resolution ----
  const ShuffleMap empty_map;
  const ShuffleMap& map = input.map != nullptr ? *input.map : empty_map;
  auto symbols = elf.ReadSymbols();
  if (symbols.ok()) {
    if (const ElfSymbol* kallsyms = FindTableSymbol(*symbols, "__kallsyms")) {
      CheckOffsetTable(input, ByteSpan(pristine), map, kallsyms->value,
                       kallsyms->size / kKallsymsEntrySize, link_base, /*fix_aux=*/false,
                       input.kallsyms_deferred, Invariant::kKallsymsStale,
                       Invariant::kKallsymsUnsorted, "__kallsyms", report);
    }
    if (const ElfSymbol* ex_table = FindTableSymbol(*symbols, "__ex_table")) {
      CheckOffsetTable(input, ByteSpan(pristine), map, ex_table->value,
                       ex_table->size / kExTableEntrySize, link_base, /*fix_aux=*/true,
                       /*deferred=*/false, Invariant::kExTableStale, Invariant::kExTableUnsorted,
                       "__ex_table", report);
    }
    if (input.check_orc) {
      if (const ElfSymbol* orc = FindTableSymbol(*symbols, "__orc_unwind")) {
        CheckOffsetTable(input, ByteSpan(pristine), map, orc->value, orc->size / kOrcEntrySize,
                         link_base, /*fix_aux=*/false, /*deferred=*/false, Invariant::kOrcStale,
                         Invariant::kOrcUnsorted, "__orc_unwind", report);
      }
    }
  }

  // ---- (4) residual link-time pointers ----
  LeakScanContext leak_ctx;
  leak_ctx.elf = &elf;
  leak_ctx.randomized = input.randomized;
  leak_ctx.base_vaddr = link_base;
  leak_ctx.relocs = input.relocs;
  leak_ctx.map = input.map;
  leak_ctx.virt_slide = input.choice.virt_slide;
  ScanForLeaks(leak_ctx, report);

  return report;
}

}  // namespace imk
