#include "src/verify/layout_uniqueness.h"

#include <map>
#include <string>
#include <utility>

namespace imk {

VerifyReport CheckLayoutUniqueness(const std::vector<LayoutIdentity>& layouts) {
  VerifyReport report;
  // first VM index seen for each key; second sight is the finding.
  std::map<std::pair<uint64_t, uint64_t>, size_t> full_seen;
  std::map<uint64_t, size_t> slide_seen;
  for (size_t i = 0; i < layouts.size(); ++i) {
    const LayoutIdentity& layout = layouts[i];
    ++report.coverage().sections_checked;
    const std::pair<uint64_t, uint64_t> key{layout.virt_slide, layout.fg_digest};
    const auto [full_it, full_fresh] = full_seen.emplace(key, i);
    if (!full_fresh) {
      Finding finding;
      finding.invariant = Invariant::kDuplicateLayout;
      finding.severity = Severity::kError;
      finding.vaddr = layout.virt_slide;
      finding.message = "vm " + std::to_string(i) + " shares slide+permutation with vm " +
                        std::to_string(full_it->second) +
                        " (ASLR nullified between the pair)";
      report.Add(std::move(finding));
      continue;  // a full duplicate subsumes the slide warning
    }
    const auto [slide_it, slide_fresh] = slide_seen.emplace(layout.virt_slide, i);
    if (!slide_fresh && layout.fg_digest != 0 &&
        layouts[slide_it->second].fg_digest != 0) {
      Finding finding;
      finding.invariant = Invariant::kDuplicateSlide;
      finding.severity = Severity::kWarning;
      finding.vaddr = layout.virt_slide;
      finding.message = "vm " + std::to_string(i) + " shares its slide with vm " +
                        std::to_string(slide_it->second) +
                        " (function layout still differs)";
      report.Add(std::move(finding));
    }
  }
  return report;
}

}  // namespace imk
