// Structured findings for the static KASLR-correctness analyzer.
//
// Every invariant the analyzer checks has a stable id; each violation becomes
// a Finding carrying the id, a severity, the offending link-time vaddr, and
// the section it falls in. A VerifyReport collects findings plus coverage
// counters (how much was actually checked — a report that checked nothing is
// not evidence of correctness), pretty-prints for humans, and serializes to
// JSON for tooling.
#ifndef IMKASLR_SRC_VERIFY_REPORT_H_
#define IMKASLR_SRC_VERIFY_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace imk {

// Stable invariant identifiers (the analyzer's catalogue; see DESIGN.md).
enum class Invariant {
  // (1) relocation exactness: every listed field rewritten by exactly the
  // slide (+ shuffle delta for moved targets), no more, no less.
  kRelocAbs64,
  kRelocAbs32,
  kRelocInverse32,
  // (2) post-shuffle section layout soundness.
  kSectionOverlap,
  kSectionMisaligned,
  kSectionOutOfWindow,
  kSectionMissing,
  // (3) address-ordered tables resolve to the post-shuffle address of the
  // same symbol they named pre-shuffle, and stay sorted.
  kKallsymsStale,
  kKallsymsUnsorted,
  kExTableStale,
  kExTableUnsorted,
  kOrcStale,
  kOrcUnsorted,
  // (4) no residual pointer into the link-time text range survives in
  // .data/.rodata (a missed relocation is a KASLR infoleak).
  kStaleTextPointer,
  // (5) entropy sanity: the applied offsets obey the configured
  // randomization range and alignment.
  kSlideMisaligned,
  kSlideOutOfRange,
  kPhysMisaligned,
  kPhysOutOfRange,
  // (6) cross-VM layout uniqueness (layout_uniqueness.h): two VMs sharing a
  // full layout nullifies ASLR between them (the snapshot-reuse hazard of
  // §7 — exactly what the layout pool's one-shot handout must prevent).
  kDuplicateLayout,  // identical (slide, FG permutation digest) pair
  kDuplicateSlide,   // identical slide, different permutation (warning)
};

// Stable string form of an invariant id ("reloc-abs64", "section-overlap", ...).
const char* InvariantName(Invariant invariant);

enum class Severity {
  kError,    // the image is unsound (crash and/or KASLR bypass)
  kWarning,  // suspicious but not provably wrong
};

const char* SeverityName(Severity severity);

// One invariant violation.
struct Finding {
  Invariant invariant = Invariant::kRelocAbs64;
  Severity severity = Severity::kError;
  uint64_t vaddr = 0;   // link-time virtual address the finding anchors to
  std::string section;  // section containing vaddr ("" if unknown)
  std::string message;  // human-readable detail (expected vs actual, etc.)
};

// Coverage counters: what the analyzer actually examined.
struct VerifyCoverage {
  uint64_t relocations_checked = 0;
  uint64_t sections_checked = 0;
  uint64_t table_entries_checked = 0;
  uint64_t data_words_scanned = 0;
};

// The analyzer's output: findings + coverage. A report is `clean()` iff no
// finding of Severity::kError was recorded.
class VerifyReport {
 public:
  // Records a finding. To bound report size on badly corrupted images, at
  // most kMaxRecordedPerInvariant findings are *stored* per invariant id;
  // all are *counted*.
  static constexpr size_t kMaxRecordedPerInvariant = 64;
  void Add(Finding finding);

  bool clean() const { return error_count_ == 0; }
  uint64_t total_findings() const { return total_count_; }
  // Total violations of one invariant (including unrecorded overflow).
  uint64_t CountOf(Invariant invariant) const;

  const std::vector<Finding>& findings() const { return findings_; }
  VerifyCoverage& coverage() { return coverage_; }
  const VerifyCoverage& coverage() const { return coverage_; }

  // Set when structural (layout/entropy) findings made the downstream
  // relocation/table/leak checks meaningless, so they were skipped.
  void set_downstream_skipped() { downstream_skipped_ = true; }
  bool downstream_skipped() const { return downstream_skipped_; }

  // Multi-line human-readable summary.
  std::string ToString() const;
  // Machine-readable JSON object (stable keys; see DESIGN.md for a sample).
  std::string ToJson() const;

 private:
  std::vector<Finding> findings_;
  std::vector<std::pair<Invariant, uint64_t>> counts_;  // per-invariant totals
  uint64_t total_count_ = 0;
  uint64_t error_count_ = 0;
  bool downstream_skipped_ = false;
  VerifyCoverage coverage_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_VERIFY_REPORT_H_
