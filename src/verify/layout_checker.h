// Invariants (2) and (5): post-shuffle section layout and entropy sanity.
//
// Layout: after FGKASLR shuffling, the shuffle map must describe a sound
// re-layout of the kernel's function sections — every per-function section of
// the original ELF accounted for, every destination 16-byte aligned, inside
// the original function-section window, and overlapping nothing.
//
// Entropy: the applied virtual slide and physical load address must obey the
// configured randomization range and alignment (CONFIG_PHYSICAL_ALIGN,
// KERNEL_IMAGE_SIZE — paper §4.3), whether they came from hardcoded constants
// or the kernel-constants ELF note.
#ifndef IMKASLR_SRC_VERIFY_LAYOUT_CHECKER_H_
#define IMKASLR_SRC_VERIFY_LAYOUT_CHECKER_H_

#include "src/elf/elf_note.h"
#include "src/elf/elf_reader.h"
#include "src/kaslr/random_offset.h"
#include "src/kaslr/shuffle_map.h"
#include "src/verify/report.h"

namespace imk {

struct LayoutCheckContext {
  const ElfReader* elf = nullptr;   // original image
  const ShuffleMap* map = nullptr;  // null or empty = plain KASLR (no layout check)
  OffsetChoice choice;
  KernelConstantsNote constants;    // resolved link-time constants
  uint64_t image_mem_size = 0;      // kernel memsz span
  uint64_t guest_mem_size = 0;      // 0 = skip the physical upper-bound check
};

// Checks section layout; returns true when the shuffle map is structurally
// sound (callers skip map-dependent checks otherwise).
bool CheckLayout(const LayoutCheckContext& ctx, VerifyReport& report);

// Checks slide/physical placement against the randomization constraints.
void CheckEntropySanity(const LayoutCheckContext& ctx, VerifyReport& report);

}  // namespace imk

#endif  // IMKASLR_SRC_VERIFY_LAYOUT_CHECKER_H_
