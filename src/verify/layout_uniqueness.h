// Cross-VM layout uniqueness: no two VMs on a host may share a randomized
// layout.
//
// Sharing a layout nullifies ASLR between the sharers — leaking one VM's
// addresses unlocks its twin, the exact failure mode snapshot-cloning
// introduces (paper §7, Morula). The layout pool's one-shot handout is the
// mechanism that prevents it; this checker is the independent auditor: feed
// it the layout identity of every VM in a fleet (or a pooled storm) and it
// reports duplicates through the standard VerifyReport machinery.
//
// A layout's identity is (virt_slide, FG permutation digest): the slide
// places the image, the digest (ShuffleMap::PermutationDigest) pins where
// every function section landed. Two VMs sharing both are byte-identically
// randomized — an error. Two VMs sharing only the slide still differ in
// function layout; with coarse slide granularity that collides legitimately,
// so it is recorded as a warning, not an error (and only for FGKASLR boots,
// where the digest distinguishes the pair).
#ifndef IMKASLR_SRC_VERIFY_LAYOUT_UNIQUENESS_H_
#define IMKASLR_SRC_VERIFY_LAYOUT_UNIQUENESS_H_

#include <cstdint>
#include <vector>

#include "src/verify/report.h"

namespace imk {

// One VM's randomized-layout identity.
struct LayoutIdentity {
  uint64_t virt_slide = 0;
  uint64_t phys_load_addr = 0;
  uint64_t fg_digest = 0;  // ShuffleMap::PermutationDigest(); 0 = no shuffle
};

// Checks pairwise uniqueness over `layouts` (index = VM id). Emits
// kDuplicateLayout (error) for every VM whose (virt_slide, fg_digest) pair
// was already seen, and kDuplicateSlide (warning) for FGKASLR layouts that
// share only the slide. Coverage: sections_checked counts the layouts
// examined. clean() iff no full duplicate.
VerifyReport CheckLayoutUniqueness(const std::vector<LayoutIdentity>& layouts);

}  // namespace imk

#endif  // IMKASLR_SRC_VERIFY_LAYOUT_UNIQUENESS_H_
