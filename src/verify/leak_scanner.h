// Invariant (4): no stale link-time text pointer survives randomization.
//
// Scans every 8-byte-aligned word of the randomized image's non-executable
// allocated sections (.data, .rodata, notes) for values that still point into
// the *link-time* text range but not into the *runtime* (slid) text range. A
// correctly relocated pointer always lands in the runtime range; a residual
// link-time pointer is a missed relocation — simultaneously a crash (the
// guest will jump or load through it) and a KASLR infoleak (it reveals the
// unslid layout to anyone who can read the word). Fields registered in the
// relocation tables are excluded: their exactness is the reloc checker's
// invariant, and double-reporting one missed relocation as two findings
// would blur the corruption matrix.
#ifndef IMKASLR_SRC_VERIFY_LEAK_SCANNER_H_
#define IMKASLR_SRC_VERIFY_LEAK_SCANNER_H_

#include "src/base/bytes.h"
#include "src/elf/elf_reader.h"
#include "src/kaslr/shuffle_map.h"
#include "src/kernel/relocs.h"
#include "src/verify/report.h"

namespace imk {

struct LeakScanContext {
  const ElfReader* elf = nullptr;  // original image (section geometry)
  ByteSpan randomized;             // post-randomization bytes, link layout
  uint64_t base_vaddr = 0;
  const RelocInfo* relocs = nullptr;  // fields to exclude (may be null)
  const ShuffleMap* map = nullptr;    // to translate excluded field locations
  uint64_t virt_slide = 0;
};

// Appends one kStaleTextPointer finding per residual link-time text pointer.
// A zero slide makes link and runtime ranges indistinguishable; the scan is
// skipped (coverage stays 0) rather than reporting nothing as a clean pass.
void ScanForLeaks(const LeakScanContext& ctx, VerifyReport& report);

}  // namespace imk

#endif  // IMKASLR_SRC_VERIFY_LEAK_SCANNER_H_
