#include "src/verify/report.h"

#include <algorithm>

#include "src/base/bytes.h"

namespace imk {
namespace {

// Escapes a string for embedding in a JSON string literal. Findings carry
// section names and generated messages only, but escape defensively anyway.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* InvariantName(Invariant invariant) {
  switch (invariant) {
    case Invariant::kRelocAbs64:
      return "reloc-abs64";
    case Invariant::kRelocAbs32:
      return "reloc-abs32";
    case Invariant::kRelocInverse32:
      return "reloc-inverse32";
    case Invariant::kSectionOverlap:
      return "section-overlap";
    case Invariant::kSectionMisaligned:
      return "section-misaligned";
    case Invariant::kSectionOutOfWindow:
      return "section-out-of-window";
    case Invariant::kSectionMissing:
      return "section-missing";
    case Invariant::kKallsymsStale:
      return "kallsyms-stale";
    case Invariant::kKallsymsUnsorted:
      return "kallsyms-unsorted";
    case Invariant::kExTableStale:
      return "ex-table-stale";
    case Invariant::kExTableUnsorted:
      return "ex-table-unsorted";
    case Invariant::kOrcStale:
      return "orc-stale";
    case Invariant::kOrcUnsorted:
      return "orc-unsorted";
    case Invariant::kStaleTextPointer:
      return "stale-text-pointer";
    case Invariant::kSlideMisaligned:
      return "slide-misaligned";
    case Invariant::kSlideOutOfRange:
      return "slide-out-of-range";
    case Invariant::kPhysMisaligned:
      return "phys-misaligned";
    case Invariant::kPhysOutOfRange:
      return "phys-out-of-range";
    case Invariant::kDuplicateLayout:
      return "duplicate-layout";
    case Invariant::kDuplicateSlide:
      return "duplicate-slide";
  }
  return "unknown";
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
  }
  return "unknown";
}

void VerifyReport::Add(Finding finding) {
  ++total_count_;
  if (finding.severity == Severity::kError) {
    ++error_count_;
  }
  auto it = std::find_if(counts_.begin(), counts_.end(),
                         [&](const auto& entry) { return entry.first == finding.invariant; });
  if (it == counts_.end()) {
    counts_.emplace_back(finding.invariant, 1);
    it = counts_.end() - 1;
  } else {
    ++it->second;
  }
  if (it->second <= kMaxRecordedPerInvariant) {
    findings_.push_back(std::move(finding));
  }
}

uint64_t VerifyReport::CountOf(Invariant invariant) const {
  for (const auto& entry : counts_) {
    if (entry.first == invariant) {
      return entry.second;
    }
  }
  return 0;
}

std::string VerifyReport::ToString() const {
  std::string out;
  if (clean()) {
    out += "verify: CLEAN";
  } else {
    out += "verify: " + std::to_string(total_count_) + " finding(s)";
  }
  out += " [" + std::to_string(coverage_.relocations_checked) + " relocs, " +
         std::to_string(coverage_.sections_checked) + " sections, " +
         std::to_string(coverage_.table_entries_checked) + " table entries, " +
         std::to_string(coverage_.data_words_scanned) + " data words checked]";
  if (downstream_skipped_) {
    out += " (structural findings: relocation/table/leak checks skipped)";
  }
  for (const Finding& finding : findings_) {
    out += "\n  [" + std::string(SeverityName(finding.severity)) + "] " +
           InvariantName(finding.invariant) + " at " + HexString(finding.vaddr);
    if (!finding.section.empty()) {
      out += " (" + finding.section + ")";
    }
    out += ": " + finding.message;
  }
  if (findings_.size() < total_count_) {
    out += "\n  ... " + std::to_string(total_count_ - findings_.size()) + " more not recorded";
  }
  return out;
}

std::string VerifyReport::ToJson() const {
  std::string out = "{";
  out += "\"clean\":" + std::string(clean() ? "true" : "false");
  out += ",\"total_findings\":" + std::to_string(total_count_);
  out += ",\"downstream_skipped\":" + std::string(downstream_skipped_ ? "true" : "false");
  out += ",\"coverage\":{";
  out += "\"relocations_checked\":" + std::to_string(coverage_.relocations_checked);
  out += ",\"sections_checked\":" + std::to_string(coverage_.sections_checked);
  out += ",\"table_entries_checked\":" + std::to_string(coverage_.table_entries_checked);
  out += ",\"data_words_scanned\":" + std::to_string(coverage_.data_words_scanned);
  out += "},\"findings\":[";
  for (size_t i = 0; i < findings_.size(); ++i) {
    const Finding& finding = findings_[i];
    if (i != 0) {
      out += ",";
    }
    out += "{\"invariant\":\"" + std::string(InvariantName(finding.invariant)) + "\"";
    out += ",\"severity\":\"" + std::string(SeverityName(finding.severity)) + "\"";
    out += ",\"vaddr\":\"" + HexString(finding.vaddr) + "\"";
    out += ",\"section\":\"" + JsonEscape(finding.section) + "\"";
    out += ",\"message\":\"" + JsonEscape(finding.message) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace imk
