#include "src/verify/layout_checker.h"

#include <algorithm>
#include <vector>

#include "src/base/align.h"
#include "src/base/bytes.h"
#include "src/elf/elf_types.h"

namespace imk {
namespace {

constexpr char kFunctionSectionPrefix[] = ".text.fn_";
// The FGKASLR engine lays shuffled sections out at 16-byte alignment.
constexpr uint64_t kShuffleAlign = 16;

void AddFinding(VerifyReport& report, Invariant invariant, uint64_t vaddr, std::string section,
                std::string message) {
  Finding finding;
  finding.invariant = invariant;
  finding.severity = Severity::kError;
  finding.vaddr = vaddr;
  finding.section = std::move(section);
  finding.message = std::move(message);
  report.Add(finding);
}

}  // namespace

bool CheckLayout(const LayoutCheckContext& ctx, VerifyReport& report) {
  if (ctx.map == nullptr || ctx.map->empty()) {
    return true;  // plain KASLR: nothing moved, nothing to check
  }
  const ShuffleMap& map = *ctx.map;

  // Collect the original function sections and their window.
  struct FnSection {
    uint64_t vaddr;
    uint64_t size;
    std::string name;
  };
  std::vector<FnSection> fn_sections;
  uint64_t window_lo = UINT64_MAX;
  uint64_t window_hi = 0;
  if (ctx.elf != nullptr) {
    for (const ElfSection& section : ctx.elf->sections()) {
      if (section.name.rfind(kFunctionSectionPrefix, 0) == 0 &&
          (section.header.sh_flags & kShfExecinstr) != 0) {
        fn_sections.push_back(
            FnSection{section.header.sh_addr, section.header.sh_size, section.name});
        window_lo = std::min(window_lo, section.header.sh_addr);
        window_hi = std::max(window_hi, section.header.sh_addr + section.header.sh_size);
      }
    }
  }
  if (fn_sections.empty()) {
    // No per-function sections in the ELF: fall back to the window implied by
    // the map itself (old-vaddr span) so range checks still run.
    for (const ShuffledRange& range : map.ranges()) {
      window_lo = std::min(window_lo, range.old_vaddr);
      window_hi = std::max(window_hi, range.old_vaddr + range.size);
    }
  }

  bool sound = true;

  // Every original function section must appear in the map, unchanged in
  // old-vaddr and size (the shuffle moves sections, it never drops or resizes
  // them).
  for (const FnSection& fn : fn_sections) {
    ++report.coverage().sections_checked;
    const auto& ranges = map.ranges();
    auto it = std::find_if(ranges.begin(), ranges.end(), [&](const ShuffledRange& range) {
      return range.old_vaddr == fn.vaddr && range.size == fn.size;
    });
    if (it == ranges.end()) {
      AddFinding(report, Invariant::kSectionMissing, fn.vaddr, fn.name,
                 "function section absent from the shuffle map (size " +
                     std::to_string(fn.size) + ")");
      sound = false;
    }
  }

  // Destination soundness: alignment, window containment, no overlap.
  std::vector<const ShuffledRange*> by_new;
  by_new.reserve(map.ranges().size());
  for (const ShuffledRange& range : map.ranges()) {
    by_new.push_back(&range);
    if (fn_sections.empty()) {
      ++report.coverage().sections_checked;
    }
    if (!IsAligned(range.new_vaddr, kShuffleAlign)) {
      AddFinding(report, Invariant::kSectionMisaligned, range.new_vaddr, "",
                 "shuffled destination not " + std::to_string(kShuffleAlign) +
                     "-byte aligned (from " + HexString(range.old_vaddr) + ")");
      sound = false;
    }
    if (range.new_vaddr < window_lo || range.new_vaddr + range.size > window_hi) {
      AddFinding(report, Invariant::kSectionOutOfWindow, range.new_vaddr, "",
                 "shuffled destination [" + HexString(range.new_vaddr) + ", " +
                     HexString(range.new_vaddr + range.size) + ") leaves the text window [" +
                     HexString(window_lo) + ", " + HexString(window_hi) + ")");
      sound = false;
    }
  }
  std::sort(by_new.begin(), by_new.end(), [](const ShuffledRange* a, const ShuffledRange* b) {
    return a->new_vaddr < b->new_vaddr;
  });
  for (size_t i = 1; i < by_new.size(); ++i) {
    const ShuffledRange* prev = by_new[i - 1];
    const ShuffledRange* cur = by_new[i];
    if (cur->new_vaddr < prev->new_vaddr + prev->size) {
      AddFinding(report, Invariant::kSectionOverlap, cur->new_vaddr, "",
                 "shuffled sections overlap: [" + HexString(prev->new_vaddr) + ", " +
                     HexString(prev->new_vaddr + prev->size) + ") and [" +
                     HexString(cur->new_vaddr) + ", " + HexString(cur->new_vaddr + cur->size) +
                     ") (from " + HexString(prev->old_vaddr) + " and " +
                     HexString(cur->old_vaddr) + ")");
      sound = false;
    }
  }
  return sound;
}

void CheckEntropySanity(const LayoutCheckContext& ctx, VerifyReport& report) {
  const uint64_t slide = ctx.choice.virt_slide;
  const uint64_t phys = ctx.choice.phys_load_addr;
  const KernelConstantsNote& constants = ctx.constants;

  if (constants.physical_align != 0 && slide % constants.physical_align != 0) {
    AddFinding(report, Invariant::kSlideMisaligned, slide, "",
               "virtual slide not aligned to physical_align " +
                   HexString(constants.physical_align));
  }
  // The image plus its slide must stay inside the randomization window
  // [physical_start, kernel_image_size) of the text mapping ("to avoid the
  // fixmap", §4.3).
  if (constants.kernel_image_size != 0 &&
      constants.physical_start + slide + ctx.image_mem_size > constants.kernel_image_size) {
    AddFinding(report, Invariant::kSlideOutOfRange, slide, "",
               "slide " + HexString(slide) + " pushes the image past kernel_image_size " +
                   HexString(constants.kernel_image_size));
  }
  if (constants.physical_align != 0 && phys % constants.physical_align != 0) {
    AddFinding(report, Invariant::kPhysMisaligned, phys, "",
               "physical load address not aligned to " + HexString(constants.physical_align));
  }
  if (phys < constants.physical_start) {
    AddFinding(report, Invariant::kPhysOutOfRange, phys, "",
               "physical load address below physical_start " +
                   HexString(constants.physical_start));
  }
  if (ctx.guest_mem_size != 0 && phys + ctx.image_mem_size > ctx.guest_mem_size) {
    AddFinding(report, Invariant::kPhysOutOfRange, phys, "",
               "image end " + HexString(phys + ctx.image_mem_size) +
                   " past usable guest memory " + HexString(ctx.guest_mem_size));
  }
}

}  // namespace imk
