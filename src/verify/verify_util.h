// Small shared helpers for the verify checkers.
#ifndef IMKASLR_SRC_VERIFY_VERIFY_UTIL_H_
#define IMKASLR_SRC_VERIFY_VERIFY_UTIL_H_

#include <string>

#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"

namespace imk {

// Name of the allocated section containing link vaddr `vaddr` ("" if none).
inline std::string SectionNameAt(const ElfReader& elf, uint64_t vaddr) {
  for (const ElfSection& section : elf.sections()) {
    if ((section.header.sh_flags & kShfAlloc) == 0) {
      continue;
    }
    if (vaddr >= section.header.sh_addr &&
        vaddr < section.header.sh_addr + section.header.sh_size) {
      return section.name;
    }
  }
  return "";
}

}  // namespace imk

#endif  // IMKASLR_SRC_VERIFY_VERIFY_UTIL_H_
