// Static KASLR-correctness analyzer for randomized kernel images.
//
// Takes a randomized, loaded kernel image plus its pre-randomization ELF and
// (for FGKASLR) the shuffle map, and statically re-derives what a correct
// relocation/shuffle pass must have produced, checking:
//
//   (1) relocation exactness        — src/verify/reloc_checker
//   (2) section layout soundness    — src/verify/layout_checker
//   (3) table resolution             — kallsyms / __ex_table / ORC entries
//                                      name the same symbols post-shuffle
//   (4) residual link-time pointers — src/verify/leak_scanner
//   (5) entropy sanity              — src/verify/layout_checker
//
// The monitor's trust argument (paper §3.2, §4.3) is that it randomizes
// *correctly*; this analyzer is the independent oracle for that claim, cheap
// enough to run after every test or bench boot. Related systems (Adelie's
// re-randomization, OSv's unikernel ASLR) grew the same machinery because a
// single missed fixup is both a crash and a KASLR infoleak.
#ifndef IMKASLR_SRC_VERIFY_IMAGE_VERIFIER_H_
#define IMKASLR_SRC_VERIFY_IMAGE_VERIFIER_H_

#include <optional>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/elf/elf_note.h"
#include "src/kaslr/random_offset.h"
#include "src/kaslr/shuffle_map.h"
#include "src/kernel/relocs.h"
#include "src/verify/report.h"

namespace imk {

// Everything the analyzer needs about one randomized image.
struct VerifyInput {
  // The pre-randomization vmlinux ELF (the monitor's input file).
  ByteSpan original_elf;
  // The randomized, loaded image: bytes covering the kernel memsz span, in
  // link layout — randomized[v - base_vaddr] is the byte at link vaddr v
  // (e.g. a GuestMemory slice at the chosen physical load address).
  ByteSpan randomized;
  uint64_t base_vaddr = 0;
  // Relocation info used for randomization; null or empty for nokaslr boots.
  const RelocInfo* relocs = nullptr;
  // FGKASLR shuffle map; null or empty for plain-KASLR boots.
  const ShuffleMap* map = nullptr;
  // The placement the randomizer applied.
  OffsetChoice choice;
  // Link-time constants. nullopt = read the kernel-constants ELF note from
  // `original_elf`, falling back to the hardcoded layout.h defaults — the
  // same resolution order the loader uses.
  std::optional<KernelConstantsNote> constants;
  // Usable guest physical memory (0 = skip the physical upper-bound check).
  uint64_t guest_mem_size = 0;
  // True when kallsyms fixup is deferred (lazy mode, paper §4.3): the table
  // is expected to still hold its *pre-shuffle* contents.
  bool kallsyms_deferred = false;
  // Check the ORC-analogue table if the kernel has one.
  bool check_orc = true;
};

// Runs the full invariant battery. Returns a report (clean or not); errors
// only for malformed inputs (unparseable ELF, span/base mismatch) where no
// meaningful analysis is possible.
Result<VerifyReport> VerifyImage(const VerifyInput& input);

}  // namespace imk

#endif  // IMKASLR_SRC_VERIFY_IMAGE_VERIFIER_H_
