#include "src/verify/leak_scanner.h"

#include <algorithm>
#include <vector>

#include "src/base/align.h"
#include "src/elf/elf_types.h"

namespace imk {

void ScanForLeaks(const LeakScanContext& ctx, VerifyReport& report) {
  if (ctx.elf == nullptr || ctx.virt_slide == 0) {
    return;  // zero slide: link range == runtime range, scan is vacuous
  }

  // Link-time text range over all executable sections.
  uint64_t text_lo = UINT64_MAX;
  uint64_t text_hi = 0;
  for (const ElfSection& section : ctx.elf->sections()) {
    if ((section.header.sh_flags & kShfExecinstr) != 0 &&
        (section.header.sh_flags & kShfAlloc) != 0) {
      text_lo = std::min(text_lo, section.header.sh_addr);
      text_hi = std::max(text_hi, section.header.sh_addr + section.header.sh_size);
    }
  }
  if (text_lo >= text_hi) {
    return;
  }
  // A stale pointer sits in the link range; a relocated one in the slid
  // range. Values in the intersection are undecidable and left alone (they
  // only exist when the slide is smaller than the text span).
  const uint64_t runtime_lo = text_lo + ctx.virt_slide;
  const uint64_t runtime_hi = text_hi + ctx.virt_slide;

  // Registered 8-byte relocation fields, at their post-shuffle locations —
  // the reloc checker owns those.
  std::vector<uint64_t> excluded;
  if (ctx.relocs != nullptr) {
    excluded.reserve(ctx.relocs->abs64.size());
    for (uint64_t field_vaddr : ctx.relocs->abs64) {
      excluded.push_back(ctx.map != nullptr ? ctx.map->Translate(field_vaddr) : field_vaddr);
    }
    std::sort(excluded.begin(), excluded.end());
  }

  for (const ElfSection& section : ctx.elf->sections()) {
    const Elf64Shdr& header = section.header;
    if ((header.sh_flags & kShfAlloc) == 0 || (header.sh_flags & kShfExecinstr) != 0 ||
        header.sh_type == kShtNobits || header.sh_size == 0) {
      continue;
    }
    if (header.sh_type == kShtNote) {
      // Notes legitimately carry link-time addresses the monitor reads from
      // the *file* before randomizing (PVH entry point, kernel constants);
      // they are metadata, not runtime pointers.
      continue;
    }
    const uint64_t start = AlignUp(header.sh_addr, 8);
    const uint64_t end = header.sh_addr + header.sh_size;
    for (uint64_t vaddr = start; vaddr + 8 <= end; vaddr += 8) {
      if (vaddr < ctx.base_vaddr || vaddr - ctx.base_vaddr + 8 > ctx.randomized.size()) {
        continue;
      }
      ++report.coverage().data_words_scanned;
      const uint64_t value = LoadLe64(ctx.randomized.data() + (vaddr - ctx.base_vaddr));
      if (value < text_lo || value >= text_hi) {
        continue;  // not a link-time text pointer
      }
      if (value >= runtime_lo && value < runtime_hi) {
        continue;  // also plausible as a correctly slid pointer
      }
      if (std::binary_search(excluded.begin(), excluded.end(), vaddr)) {
        continue;  // registered relocation field: reloc checker's domain
      }
      Finding finding;
      finding.invariant = Invariant::kStaleTextPointer;
      finding.severity = Severity::kError;
      finding.vaddr = vaddr;
      finding.section = section.name;
      finding.message = "residual value " + HexString(value) +
                        " still points into the link-time text range [" + HexString(text_lo) +
                        ", " + HexString(text_hi) + ") after a slide of " +
                        HexString(ctx.virt_slide);
      report.Add(finding);
    }
  }
}

}  // namespace imk
