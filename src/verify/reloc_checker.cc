#include "src/verify/reloc_checker.h"

#include "src/verify/verify_util.h"

namespace imk {
namespace {

// Bounds-checked read of `len` bytes at link vaddr `vaddr` from a span based
// at `base`; nullptr if out of range (reported by the caller).
const uint8_t* FieldAt(ByteSpan span, uint64_t base, uint64_t vaddr, uint64_t len) {
  if (vaddr < base) {
    return nullptr;
  }
  const uint64_t offset = vaddr - base;
  if (offset >= span.size() || len > span.size() - offset) {
    return nullptr;
  }
  return span.data() + offset;
}

struct Checker {
  const RelocCheckContext& ctx;
  VerifyReport& report;
  const ShuffleMap empty_map;

  const ShuffleMap& map() const {
    return ctx.map != nullptr ? *ctx.map : empty_map;
  }

  void AddFinding(Invariant invariant, uint64_t field_vaddr, std::string message) {
    Finding finding;
    finding.invariant = invariant;
    finding.severity = Severity::kError;
    finding.vaddr = field_vaddr;
    if (ctx.elf != nullptr) {
      finding.section = SectionNameAt(*ctx.elf, field_vaddr);
    }
    finding.message = std::move(message);
    report.Add(finding);
  }

  // Reads original and randomized field bytes; reports and returns false if
  // either location is outside its image.
  bool Fields(Invariant invariant, uint64_t field_vaddr, uint64_t len, const uint8_t** orig,
              const uint8_t** actual) {
    *orig = FieldAt(ctx.pristine, ctx.base_vaddr, field_vaddr, len);
    if (*orig == nullptr) {
      AddFinding(invariant, field_vaddr, "relocation field outside the original image");
      return false;
    }
    const uint64_t moved_vaddr = map().Translate(field_vaddr);
    *actual = FieldAt(ctx.randomized, ctx.base_vaddr, moved_vaddr, len);
    if (*actual == nullptr) {
      AddFinding(invariant, field_vaddr,
                 "post-shuffle field location " + HexString(moved_vaddr) +
                     " outside the randomized image");
      return false;
    }
    return true;
  }

  void CheckAbs64(uint64_t field_vaddr) {
    ++report.coverage().relocations_checked;
    const uint8_t* orig_p = nullptr;
    const uint8_t* actual_p = nullptr;
    if (!Fields(Invariant::kRelocAbs64, field_vaddr, 8, &orig_p, &actual_p)) {
      return;
    }
    const uint64_t original = LoadLe64(orig_p);
    const uint64_t expected =
        original + static_cast<uint64_t>(map().DeltaFor(original)) + ctx.virt_slide;
    const uint64_t actual = LoadLe64(actual_p);
    if (actual != expected) {
      AddFinding(Invariant::kRelocAbs64, field_vaddr,
                 "expected " + HexString(expected) + ", found " + HexString(actual) +
                     " (link-time value " + HexString(original) + ")");
    }
  }

  void CheckAbs32(uint64_t field_vaddr) {
    ++report.coverage().relocations_checked;
    const uint8_t* orig_p = nullptr;
    const uint8_t* actual_p = nullptr;
    if (!Fields(Invariant::kRelocAbs32, field_vaddr, 4, &orig_p, &actual_p)) {
      return;
    }
    const uint32_t original = LoadLe32(orig_p);
    // Recover the full link-time address the way the relocator does, to query
    // the shuffle map for a moved target.
    const uint64_t full =
        static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(original)));
    const uint32_t expected = original + static_cast<uint32_t>(map().DeltaFor(full)) +
                              static_cast<uint32_t>(ctx.virt_slide);
    const uint32_t actual = LoadLe32(actual_p);
    if (actual != expected) {
      AddFinding(Invariant::kRelocAbs32, field_vaddr,
                 "expected " + HexString(expected) + ", found " + HexString(actual) +
                     " (link-time value " + HexString(original) + ")");
      return;
    }
    // The adjusted value must stay sign-extendable into the top-2GiB window.
    if ((actual & 0x80000000u) == 0) {
      AddFinding(Invariant::kRelocAbs32, field_vaddr,
                 "adjusted value " + HexString(actual) +
                     " fell out of the sign-extendable kernel window");
    }
  }

  void CheckInverse32(uint64_t field_vaddr) {
    ++report.coverage().relocations_checked;
    const uint8_t* orig_p = nullptr;
    const uint8_t* actual_p = nullptr;
    if (!Fields(Invariant::kRelocInverse32, field_vaddr, 4, &orig_p, &actual_p)) {
      return;
    }
    const uint32_t original = LoadLe32(orig_p);
    // Inverse fields hold C - vaddr(sym) for targets in unshuffled sections
    // (the same restriction Linux and the relocator have), so only the global
    // slide is subtracted.
    const uint32_t expected = original - static_cast<uint32_t>(ctx.virt_slide);
    const uint32_t actual = LoadLe32(actual_p);
    if (actual != expected) {
      AddFinding(Invariant::kRelocInverse32, field_vaddr,
                 "expected " + HexString(expected) + ", found " + HexString(actual) +
                     " (link-time value " + HexString(original) + ")");
    }
  }
};

}  // namespace

void CheckRelocations(const RelocCheckContext& ctx, VerifyReport& report) {
  if (ctx.relocs == nullptr) {
    return;
  }
  Checker checker{ctx, report, ShuffleMap()};
  for (uint64_t field_vaddr : ctx.relocs->abs64) {
    checker.CheckAbs64(field_vaddr);
  }
  for (uint64_t field_vaddr : ctx.relocs->abs32) {
    checker.CheckAbs32(field_vaddr);
  }
  for (uint64_t field_vaddr : ctx.relocs->inverse32) {
    checker.CheckInverse32(field_vaddr);
  }
}

}  // namespace imk
