// Invariant (1): relocation exactness.
//
// Replays every entry of the three Linux relocation classes against the
// *pristine* (pre-randomization) image and asserts the randomized image holds
// exactly the expected rewritten value: original + virt_slide (+ the shuffle
// delta of the pointed-to function, for FGKASLR images). A skipped, doubled,
// or wrongly-adjusted relocation — the relocator/shuffler hot-path bugs the
// paper's trust argument (§3.2, §4.3) depends on excluding — shows up as one
// finding per field, naming expected and actual values.
#ifndef IMKASLR_SRC_VERIFY_RELOC_CHECKER_H_
#define IMKASLR_SRC_VERIFY_RELOC_CHECKER_H_

#include "src/base/bytes.h"
#include "src/elf/elf_reader.h"
#include "src/kaslr/shuffle_map.h"
#include "src/kernel/relocs.h"
#include "src/verify/report.h"

namespace imk {

struct RelocCheckContext {
  const ElfReader* elf = nullptr;  // original image, for section naming
  ByteSpan pristine;               // pre-randomization bytes, link layout
  ByteSpan randomized;             // post-randomization bytes, link layout
  uint64_t base_vaddr = 0;         // link vaddr of byte 0 of both spans
  const RelocInfo* relocs = nullptr;
  const ShuffleMap* map = nullptr;  // null or empty = plain KASLR
  uint64_t virt_slide = 0;
};

// Appends one finding per mis-relocated field; bumps coverage counters.
void CheckRelocations(const RelocCheckContext& ctx, VerifyReport& report);

}  // namespace imk

#endif  // IMKASLR_SRC_VERIFY_RELOC_CHECKER_H_
