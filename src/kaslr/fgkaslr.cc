#include "src/kaslr/fgkaslr.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string_view>

#include "src/base/align.h"
#include "src/base/stopwatch.h"
#include "src/isa/isa.h"

namespace imk {
namespace {

constexpr char kFunctionSectionPrefix[] = ".text.fn_";

// Sorts a table of {u64 key, u64 value} pairs in place by key. Goes through
// explicit loads/stores rather than reinterpret_cast: the table lives inside
// the guest image buffer, which carries no alignment or object-lifetime
// guarantees for a Pair type.
void SortPairTable(uint8_t* base, uint64_t count) {
  struct Pair {
    uint64_t key;
    uint64_t value;
  };
  std::vector<Pair> pairs(count);
  for (uint64_t i = 0; i < count; ++i) {
    pairs[i] = Pair{LoadLe64(base + i * 16), LoadLe64(base + i * 16 + 8)};
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.key < b.key; });
  for (uint64_t i = 0; i < count; ++i) {
    StoreLe64(base + i * 16, pairs[i].key);
    StoreLe64(base + i * 16 + 8, pairs[i].value);
  }
}

// Fixes a table of text-relative {offset, aux} pairs whose offsets point at
// (possibly moved) code, then re-sorts. `fix_aux` additionally treats the
// second field as a text-relative code offset (the exception table's fixup
// target); kallsyms/ORC auxes are hashes/depths and stay untouched.
Status FixupOffsetTable(LoadedImageView& view, uint64_t table_vaddr, uint64_t count,
                        uint64_t text_vaddr, const ShuffleMap& map, bool fix_aux) {
  IMK_ASSIGN_OR_RETURN(uint8_t* base, view.At(table_vaddr, count * 16));
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t* entry = base + i * 16;
    const uint64_t offset = LoadLe64(entry);
    StoreLe64(entry, offset + static_cast<uint64_t>(map.DeltaFor(text_vaddr + offset)));
    if (fix_aux) {
      const uint64_t aux = LoadLe64(entry + 8);
      StoreLe64(entry + 8, aux + static_cast<uint64_t>(map.DeltaFor(text_vaddr + aux)));
    }
  }
  SortPairTable(base, count);
  return OkStatus();
}

// Locates a table by its locator symbol; returns {vaddr, byte size}.
Result<std::pair<uint64_t, uint64_t>> FindTable(const std::vector<ElfSymbol>& symbols,
                                                std::string_view name) {
  for (const ElfSymbol& symbol : symbols) {
    if (symbol.name == name) {
      return std::make_pair(symbol.value, symbol.size);
    }
  }
  return NotFoundError("table symbol not found: " + std::string(name));
}

}  // namespace

Status FixupKallsymsTable(LoadedImageView& view, uint64_t table_vaddr, uint64_t count,
                          const ShuffleMap& map) {
  return FixupOffsetTable(view, table_vaddr, count, view.base_vaddr(), map, /*fix_aux=*/false);
}

Result<FgKaslrResult> ShuffleFunctions(const ElfReader& elf, LoadedImageView& view,
                                       const FgKaslrParams& params, Rng& rng) {
  FgKaslrResult result;

  // ---- step 1: collect function sections ----
  Stopwatch parse_timer;
  struct Section {
    uint64_t vaddr;
    uint64_t size;
  };
  std::vector<Section> sections;
  for (const ElfSection& section : elf.sections()) {
    if (section.name.rfind(kFunctionSectionPrefix, 0) == 0 &&
        (section.header.sh_flags & kShfExecinstr) != 0) {
      sections.push_back(Section{section.header.sh_addr, section.header.sh_size});
    }
  }
  IMK_ASSIGN_OR_RETURN(std::vector<ElfSymbol> symbols, elf.ReadSymbols());
  result.timings.parse_ns = parse_timer.ElapsedNs();

  if (sections.empty()) {
    return FailedPreconditionError(
        "kernel has no per-function sections (not built with fgkaslr support)");
  }
  std::sort(sections.begin(), sections.end(),
            [](const Section& a, const Section& b) { return a.vaddr < b.vaddr; });

  // ---- step 2: shuffle + contiguous re-layout ----
  Stopwatch shuffle_timer;
  std::vector<uint32_t> order(sections.size());
  std::iota(order.begin(), order.end(), 0u);
  // Fisher-Yates with the monitor's RNG (the entropy story of §4.3).
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }
  const uint64_t region_start = sections.front().vaddr;
  uint64_t region_end = sections.back().vaddr + sections.back().size;
  uint64_t cursor = region_start;
  std::vector<ShuffledRange> ranges(sections.size());
  for (uint32_t slot = 0; slot < order.size(); ++slot) {
    const Section& section = sections[order[slot]];
    cursor = AlignUp(cursor, 16);
    ranges[order[slot]] = ShuffledRange{section.vaddr, cursor, section.size};
    cursor += section.size;
  }
  if (cursor > region_end) {
    return InternalError("shuffled layout exceeds original text span");
  }
  result.timings.shuffle_ns = shuffle_timer.ElapsedNs();

  // ---- step 3: move bytes ----
  // The bootstrap loader must copy the entire function-section region before
  // scattering it (sections would otherwise overwrite each other); so must
  // we. This is the memory traffic the paper's Bootstrap Setup/heap analysis
  // talks about.
  Stopwatch move_timer;
  IMK_ASSIGN_OR_RETURN(uint8_t* region, view.At(region_start, region_end - region_start));
  Bytes scratch(region, region + (region_end - region_start));
  for (const ShuffledRange& range : ranges) {
    IMK_ASSIGN_OR_RETURN(uint8_t* dst, view.At(range.new_vaddr, range.size));
    std::memcpy(dst, scratch.data() + (range.old_vaddr - region_start), range.size);
  }
  result.map = ShuffleMap(std::move(ranges));
  result.sections_shuffled = static_cast<uint32_t>(sections.size());
  result.timings.move_ns = move_timer.ElapsedNs();

  // ---- step 4: table fixups ----
  const uint64_t text_vaddr = view.base_vaddr();

  {
    Stopwatch kallsyms_timer;
    IMK_ASSIGN_OR_RETURN(auto kallsyms, FindTable(symbols, "__kallsyms"));
    result.kallsyms_vaddr = kallsyms.first;
    result.kallsyms_count = kallsyms.second / kKallsymsEntrySize;
    if (params.kallsyms == KallsymsFixup::kEager) {
      IMK_RETURN_IF_ERROR(
          FixupKallsymsTable(view, result.kallsyms_vaddr, result.kallsyms_count, result.map));
    } else {
      result.kallsyms_pending = true;
    }
    result.timings.kallsyms_ns = kallsyms_timer.ElapsedNs();
  }

  {
    Stopwatch tables_timer;
    IMK_ASSIGN_OR_RETURN(auto ex_table, FindTable(symbols, "__ex_table"));
    IMK_RETURN_IF_ERROR(FixupOffsetTable(view, ex_table.first,
                                         ex_table.second / kExTableEntrySize, text_vaddr,
                                         result.map, /*fix_aux=*/true));
    if (params.fixup_orc) {
      auto orc = FindTable(symbols, "__orc_unwind");
      if (orc.ok()) {
        IMK_RETURN_IF_ERROR(FixupOffsetTable(view, orc->first, orc->second / kOrcEntrySize,
                                             text_vaddr, result.map, /*fix_aux=*/false));
      }
    }
    result.timings.tables_ns = tables_timer.ElapsedNs();
  }

  return result;
}

}  // namespace imk
