#include "src/kaslr/fgkaslr.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string_view>

#include "src/base/align.h"
#include "src/base/stopwatch.h"
#include "src/isa/isa.h"

namespace imk {
namespace {

constexpr char kFunctionSectionPrefix[] = ".text.fn_";

// Sorts a table of {u64 key, u64 value} pairs in place by key. Goes through
// explicit loads/stores rather than reinterpret_cast: the table lives inside
// the guest image buffer, which carries no alignment or object-lifetime
// guarantees for a Pair type.
void SortPairTable(uint8_t* base, uint64_t count) {
  struct Pair {
    uint64_t key;
    uint64_t value;
  };
  std::vector<Pair> pairs(count);
  for (uint64_t i = 0; i < count; ++i) {
    pairs[i] = Pair{LoadLe64(base + i * 16), LoadLe64(base + i * 16 + 8)};
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.key < b.key; });
  for (uint64_t i = 0; i < count; ++i) {
    StoreLe64(base + i * 16, pairs[i].key);
    StoreLe64(base + i * 16 + 8, pairs[i].value);
  }
}

// Reference fixup: per-entry binary search through the map, then a full
// comparison sort — exactly what the Linux bootstrap loader (and this repo
// before the batch relocator) does. Kept as the serial baseline, as the
// equivalence-test oracle, and as the fallback for unsorted input tables.
Status FixupOffsetTableReference(LoadedImageView& view, uint64_t table_vaddr, uint64_t count,
                                 uint64_t text_vaddr, const ShuffleMap& map, bool fix_aux) {
  IMK_ASSIGN_OR_RETURN(uint8_t* base, view.At(table_vaddr, count * 16));
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t* entry = base + i * 16;
    const uint64_t offset = LoadLe64(entry);
    StoreLe64(entry, offset + static_cast<uint64_t>(map.DeltaFor(text_vaddr + offset)));
    if (fix_aux) {
      const uint64_t aux = LoadLe64(entry + 8);
      StoreLe64(entry + 8, aux + static_cast<uint64_t>(map.DeltaFor(text_vaddr + aux)));
    }
  }
  SortPairTable(base, count);
  return OkStatus();
}

// Fixes a table of text-relative {offset, aux} pairs whose offsets point at
// (possibly moved) code, then restores key order. `fix_aux` additionally
// treats the second field as a text-relative code offset (the exception
// table's fixup target); kallsyms/ORC auxes are hashes/depths and stay
// untouched. `index` (optional) answers the same queries as `map` in O(1).
//
// Re-ordering exploits the table's structure instead of a comparison sort:
// the input is key-sorted, so the entries of one moved section form a
// contiguous run that stays internally sorted after its constant delta is
// added, and the new intervals of moved sections are pairwise disjoint.
// Emitting the runs in new-interval order yields a sorted "moved" bucket;
// entries outside every section keep their keys and stay sorted as-is; one
// linear merge of the two buckets rebuilds the table. `new_order` (optional)
// lists range ids in ascending new_vaddr — the shuffle's placement order —
// which turns the run ordering itself into a linear walk: O(n + m) total,
// and with one table entry per section (kallsyms) that difference is the
// whole sort. Pass 1 never writes the table, so an unsorted input falls back
// to the reference fixup on untouched bytes.
Status FixupOffsetTable(LoadedImageView& view, uint64_t table_vaddr, uint64_t count,
                        uint64_t text_vaddr, const ShuffleMap& map,
                        const ShuffleDeltaIndex* index, bool fix_aux,
                        const std::vector<uint32_t>* new_order, RelocScratch* scratch) {
  IMK_ASSIGN_OR_RETURN(uint8_t* base, view.At(table_vaddr, count * 16));
  auto delta_for = [&](uint64_t vaddr) {
    return index != nullptr ? index->DeltaFor(vaddr) : map.DeltaFor(vaddr);
  };
  auto rid_for = [&](uint64_t vaddr) {
    return index != nullptr ? index->RangeIdFor(vaddr) : map.RangeIdFor(vaddr);
  };

  RelocScratch local_scratch;
  RelocScratch& buffers = scratch != nullptr ? *scratch : local_scratch;
  std::vector<std::pair<uint64_t, uint64_t>>& moved = buffers.table_moved;
  std::vector<std::pair<uint64_t, uint64_t>>& unmoved = buffers.table_unmoved;
  moved.clear();
  unmoved.clear();
  moved.reserve(count);
  unmoved.reserve(count);

  // Pass 1: classify entries into buckets (keys and auxes already fixed),
  // verify the input was sorted. Runs are tagged by range id as encountered;
  // input order within a bucket is preserved, so each run stays contiguous.
  // Read-only on the table itself.
  const std::vector<ShuffledRange>& ranges = map.ranges();
  std::vector<std::pair<uint32_t, uint32_t>>& runs = buffers.table_runs;  // (start, length)
  std::vector<int32_t>& run_of_rid = buffers.table_run_of_rid;
  std::vector<uint64_t>& run_new_start = buffers.table_run_new_start;
  runs.clear();
  run_new_start.clear();
  run_of_rid.assign(ranges.size(), -1);
  bool input_sorted = true;
  uint64_t prev_key = 0;
  int32_t current_rid = INT32_MIN;  // distinct from any rid / -1
  for (uint64_t i = 0; i < count && input_sorted; ++i) {
    const uint8_t* entry = base + i * 16;
    const uint64_t offset = LoadLe64(entry);
    if (i > 0 && offset < prev_key) {
      input_sorted = false;
      break;
    }
    prev_key = offset;
    const int32_t rid = rid_for(text_vaddr + offset);
    const int64_t delta = rid >= 0 ? ranges[rid].delta() : 0;
    const uint64_t fixed = offset + static_cast<uint64_t>(delta);
    uint64_t aux = LoadLe64(entry + 8);
    if (fix_aux) {
      aux += static_cast<uint64_t>(delta_for(text_vaddr + aux));
    }
    if (rid < 0) {
      unmoved.emplace_back(fixed, aux);
      current_rid = INT32_MIN;
      continue;
    }
    if (rid != current_rid) {
      // A section's old interval is contiguous in a sorted input, so a rid
      // can only open one run; seeing it twice means the input wasn't
      // sorted after all.
      if (run_of_rid[rid] != -1) {
        input_sorted = false;
        break;
      }
      run_of_rid[rid] = static_cast<int32_t>(runs.size());
      runs.emplace_back(static_cast<uint32_t>(moved.size()), 0);
      run_new_start.push_back(ranges[rid].new_vaddr);
      current_rid = rid;
    }
    ++runs[run_of_rid[rid]].second;
    moved.emplace_back(fixed, aux);
  }

  if (!input_sorted) {
    return FixupOffsetTableReference(view, table_vaddr, count, text_vaddr, map, fix_aux);
  }

  // Pass 2: emit moved runs in new-interval order, merge with the unmoved
  // bucket, store back — each table entry written exactly once.
  uint64_t out = 0;
  uint64_t un = 0;  // cursor into the unmoved bucket
  const auto emit = [&](const std::pair<uint64_t, uint64_t>& pair) {
    StoreLe64(base + out * 16, pair.first);
    StoreLe64(base + out * 16 + 8, pair.second);
    ++out;
  };
  const auto emit_run = [&](uint32_t run_id) {
    const auto [start, length] = runs[run_id];
    for (uint32_t i = 0; i < length; ++i) {
      const std::pair<uint64_t, uint64_t>& pair = moved[start + i];
      while (un < unmoved.size() && unmoved[un].first <= pair.first) {
        emit(unmoved[un++]);
      }
      emit(pair);
    }
  };
  if (new_order != nullptr && new_order->size() == ranges.size()) {
    for (const uint32_t rid : *new_order) {
      if (run_of_rid[rid] >= 0) {
        emit_run(static_cast<uint32_t>(run_of_rid[rid]));
      }
    }
  } else {
    std::vector<uint32_t>& run_order = buffers.run_order;
    run_order.resize(runs.size());
    for (uint32_t i = 0; i < runs.size(); ++i) {
      run_order[i] = i;
    }
    std::sort(run_order.begin(), run_order.end(),
              [&](uint32_t a, uint32_t b) { return run_new_start[a] < run_new_start[b]; });
    for (uint32_t run_id : run_order) {
      emit_run(run_id);
    }
  }
  while (un < unmoved.size()) {
    emit(unmoved[un++]);
  }
  return OkStatus();
}

// Locates a table by its locator symbol.
FgTable FindTable(const std::vector<ElfSymbol>& symbols, std::string_view name) {
  for (const ElfSymbol& symbol : symbols) {
    if (symbol.name == name) {
      return FgTable{true, symbol.value, symbol.size};
    }
  }
  return FgTable{};
}

Status RequireTable(const FgTable& table, std::string_view name) {
  if (!table.present) {
    return NotFoundError("table symbol not found: " + std::string(name));
  }
  return OkStatus();
}

}  // namespace

Status FixupKallsymsTable(LoadedImageView& view, uint64_t table_vaddr, uint64_t count,
                          const ShuffleMap& map) {
  return FixupOffsetTable(view, table_vaddr, count, view.base_vaddr(), map, /*index=*/nullptr,
                          /*fix_aux=*/false, /*new_order=*/nullptr, /*scratch=*/nullptr);
}

Result<FgMetadata> ParseFgMetadata(const ElfReader& elf) {
  FgMetadata meta;
  for (const ElfSection& section : elf.sections()) {
    if (section.name.rfind(kFunctionSectionPrefix, 0) == 0 &&
        (section.header.sh_flags & kShfExecinstr) != 0) {
      meta.sections.push_back(FgFunctionSection{section.header.sh_addr, section.header.sh_size});
    }
  }
  IMK_ASSIGN_OR_RETURN(std::vector<ElfSymbol> symbols, elf.ReadSymbols());
  if (meta.sections.empty() || symbols.empty()) {
    return FailedPreconditionError(
        "kernel has no per-function sections (not built with fgkaslr support)");
  }
  std::sort(meta.sections.begin(), meta.sections.end(),
            [](const FgFunctionSection& a, const FgFunctionSection& b) {
              return a.vaddr < b.vaddr;
            });
  meta.kallsyms = FindTable(symbols, "__kallsyms");
  meta.ex_table = FindTable(symbols, "__ex_table");
  meta.orc = FindTable(symbols, "__orc_unwind");
  return meta;
}

Result<FgKaslrResult> ShuffleFunctionsPreparsed(const FgMetadata& meta, LoadedImageView& view,
                                                const FgKaslrParams& params, Rng& rng,
                                                const FgExecContext& context) {
  FgKaslrResult result;
  const std::vector<FgFunctionSection>& sections = meta.sections;
  if (sections.empty()) {
    return FailedPreconditionError(
        "kernel has no per-function sections (not built with fgkaslr support)");
  }

  // ---- step 2: shuffle + contiguous re-layout ----
  // Serial by design: the permutation must be a pure function of the seed.
  Stopwatch shuffle_timer;
  std::vector<uint32_t> order(sections.size());
  std::iota(order.begin(), order.end(), 0u);
  // Fisher-Yates with the monitor's RNG (the entropy story of §4.3).
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }
  const uint64_t region_start = sections.front().vaddr;
  uint64_t region_end = sections.back().vaddr + sections.back().size;
  uint64_t cursor = region_start;
  std::vector<ShuffledRange> ranges(sections.size());
  for (uint32_t slot = 0; slot < order.size(); ++slot) {
    const FgFunctionSection& section = sections[order[slot]];
    cursor = AlignUp(cursor, 16);
    ranges[order[slot]] = ShuffledRange{section.vaddr, cursor, section.size};
    cursor += section.size;
  }
  if (cursor > region_end) {
    return InternalError("shuffled layout exceeds original text span");
  }
  result.timings.shuffle_ns = shuffle_timer.ElapsedNs();

  // ---- step 3: move bytes ----
  // The bootstrap loader must copy the entire function-section region before
  // scattering it (sections would otherwise overwrite each other); so must
  // we. This is the memory traffic the paper's Bootstrap Setup/heap analysis
  // talks about. Both the region copy and the placement loop shard cleanly:
  // destination ranges are pairwise disjoint and the scratch copy is
  // read-only during placement.
  Stopwatch move_timer;
  const uint64_t region_size = region_end - region_start;
  IMK_ASSIGN_OR_RETURN(uint8_t* region, view.At(region_start, region_size));
  ThreadPool* pool = context.reference ? nullptr : context.pool;
  Bytes local_scratch;
  const uint8_t* source = nullptr;
  const bool from_pristine = !context.reference &&
                             context.pristine.size() == view.size() &&
                             !context.pristine.empty();
  if (from_pristine) {
    // An immutable pristine image doubles as the region snapshot: place
    // sections straight out of it, no defensive copy. Gap bytes (alignment
    // padding and the layout tail) are restored from pristine inline with
    // placement, so the caller may leave the whole region uninitialized and
    // skip it in its image copy.
    source = context.pristine.data() + (region_start - view.base_vaddr());
  } else {
    Bytes& scratch =
        !context.reference && context.move_scratch != nullptr ? *context.move_scratch
                                                              : local_scratch;
    scratch.resize(region_size);
    if (pool != nullptr && pool->workers() > 1) {
      pool->ParallelFor(region_size, [&](uint64_t begin, uint64_t end) {
        std::memcpy(scratch.data() + begin, region + begin, end - begin);
      });
    } else {
      std::memcpy(scratch.data(), region, region_size);
    }
    source = scratch.data();
  }
  if (context.reference) {
    // The pre-batch walk: sections in old-address order, scattered writes.
    for (const ShuffledRange& range : ranges) {
      std::memcpy(region + (range.new_vaddr - region_start),
                  source + (range.old_vaddr - region_start), range.size);
    }
  } else {
    // Place in new-address (slot) order so writes stream sequentially
    // through the region; each slot also restores the alignment gap that
    // precedes it when placement reads from pristine (the gap bytes were
    // never copied by the loader in that mode).
    const auto place_slots = [&](uint64_t slot_begin, uint64_t slot_end) {
      uint64_t prev_end = region_start;
      if (slot_begin > 0) {
        const ShuffledRange& prev = ranges[order[slot_begin - 1]];
        prev_end = prev.new_vaddr + prev.size;
      }
      for (uint64_t slot = slot_begin; slot < slot_end; ++slot) {
        const ShuffledRange& range = ranges[order[slot]];
        if (from_pristine && range.new_vaddr > prev_end) {
          std::memcpy(region + (prev_end - region_start), source + (prev_end - region_start),
                      range.new_vaddr - prev_end);
        }
        std::memcpy(region + (range.new_vaddr - region_start),
                    source + (range.old_vaddr - region_start), range.size);
        prev_end = range.new_vaddr + range.size;
      }
    };
    if (pool != nullptr && pool->workers() > 1) {
      pool->ParallelFor(order.size(), place_slots);
    } else {
      place_slots(0, order.size());
    }
    if (from_pristine && cursor < region_end) {
      // Layout tail after the last placed section.
      std::memcpy(region + (cursor - region_start), source + (cursor - region_start),
                  region_end - cursor);
    }
  }
  result.map = ShuffleMap(std::move(ranges));
  result.sections_shuffled = static_cast<uint32_t>(sections.size());
  result.timings.move_ns = move_timer.ElapsedNs();

  // ---- step 4: table fixups ----
  const uint64_t text_vaddr = view.base_vaddr();
  RelocScratch local_reloc_scratch;
  RelocScratch& reloc_scratch =
      context.scratch != nullptr ? *context.scratch : local_reloc_scratch;
  const ShuffleDeltaIndex* index = nullptr;
  // Placement already visits sections in ascending new_vaddr (order[slot]
  // indexes ranges built 1:1 over the old-sorted section list, and the
  // ShuffleMap constructor's sort leaves an already-sorted vector as-is), so
  // `order` doubles as the fixups' new-interval emit order. Verified cheaply
  // rather than assumed: zero-size or duplicate section addresses would
  // break the invariant, and then the fixup falls back to its sort.
  const std::vector<uint32_t>* table_order = nullptr;
  if (!context.reference) {
    reloc_scratch.value_index.Rebuild(result.map);
    index = &reloc_scratch.value_index;
    const std::vector<ShuffledRange>& map_ranges = result.map.ranges();
    bool ascending = map_ranges.size() == order.size();
    uint64_t prev_new = 0;
    for (size_t slot = 0; ascending && slot < order.size(); ++slot) {
      const uint64_t new_vaddr = map_ranges[order[slot]].new_vaddr;
      if (slot > 0 && new_vaddr < prev_new) {
        ascending = false;
      }
      prev_new = new_vaddr;
    }
    if (ascending) {
      table_order = &order;
    }
  }
  const auto fixup = [&](uint64_t table_vaddr, uint64_t table_count, bool fix_aux) {
    if (context.reference) {
      return FixupOffsetTableReference(view, table_vaddr, table_count, text_vaddr, result.map,
                                       fix_aux);
    }
    return FixupOffsetTable(view, table_vaddr, table_count, text_vaddr, result.map, index,
                            fix_aux, table_order, &reloc_scratch);
  };

  {
    Stopwatch kallsyms_timer;
    IMK_RETURN_IF_ERROR(RequireTable(meta.kallsyms, "__kallsyms"));
    result.kallsyms_vaddr = meta.kallsyms.vaddr;
    result.kallsyms_count = meta.kallsyms.size / kKallsymsEntrySize;
    if (params.kallsyms == KallsymsFixup::kEager) {
      IMK_RETURN_IF_ERROR(fixup(result.kallsyms_vaddr, result.kallsyms_count,
                                /*fix_aux=*/false));
    } else {
      result.kallsyms_pending = true;
    }
    result.timings.kallsyms_ns = kallsyms_timer.ElapsedNs();
  }

  {
    Stopwatch tables_timer;
    IMK_RETURN_IF_ERROR(RequireTable(meta.ex_table, "__ex_table"));
    IMK_RETURN_IF_ERROR(fixup(meta.ex_table.vaddr, meta.ex_table.size / kExTableEntrySize,
                              /*fix_aux=*/true));
    if (params.fixup_orc && meta.orc.present) {
      IMK_RETURN_IF_ERROR(fixup(meta.orc.vaddr, meta.orc.size / kOrcEntrySize,
                                /*fix_aux=*/false));
    }
    result.timings.tables_ns = tables_timer.ElapsedNs();
  }

  return result;
}

Result<FgKaslrResult> ShuffleFunctions(const ElfReader& elf, LoadedImageView& view,
                                       const FgKaslrParams& params, Rng& rng) {
  Stopwatch parse_timer;
  IMK_ASSIGN_OR_RETURN(FgMetadata meta, ParseFgMetadata(elf));
  const uint64_t parse_ns = parse_timer.ElapsedNs();
  IMK_ASSIGN_OR_RETURN(FgKaslrResult result, ShuffleFunctionsPreparsed(meta, view, params, rng));
  result.timings.parse_ns = parse_ns;
  return result;
}

}  // namespace imk
