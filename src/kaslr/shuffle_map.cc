#include "src/kaslr/shuffle_map.h"

#include <algorithm>

namespace imk {

ShuffleMap::ShuffleMap(std::vector<ShuffledRange> ranges) : ranges_(std::move(ranges)) {
  std::sort(ranges_.begin(), ranges_.end(),
            [](const ShuffledRange& a, const ShuffledRange& b) {
              return a.old_vaddr < b.old_vaddr;
            });
}

int64_t ShuffleMap::DeltaFor(uint64_t old_vaddr) const {
  // Greatest range with old_vaddr <= query.
  size_t lo = 0;
  size_t hi = ranges_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (ranges_[mid].old_vaddr <= old_vaddr) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    return 0;
  }
  const ShuffledRange& range = ranges_[lo - 1];
  if (old_vaddr - range.old_vaddr < range.size) {
    return range.delta();
  }
  return 0;
}

}  // namespace imk
