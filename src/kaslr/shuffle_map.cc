#include "src/kaslr/shuffle_map.h"

#include <algorithm>

namespace imk {

ShuffleMap::ShuffleMap(std::vector<ShuffledRange> ranges) : ranges_(std::move(ranges)) {
  std::sort(ranges_.begin(), ranges_.end(),
            [](const ShuffledRange& a, const ShuffledRange& b) {
              return a.old_vaddr < b.old_vaddr;
            });
}

int32_t ShuffleMap::RangeIdFor(uint64_t old_vaddr) const {
  // Greatest range with old_vaddr <= query.
  size_t lo = 0;
  size_t hi = ranges_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (ranges_[mid].old_vaddr <= old_vaddr) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    return -1;
  }
  const ShuffledRange& range = ranges_[lo - 1];
  if (old_vaddr - range.old_vaddr < range.size) {
    return static_cast<int32_t>(lo - 1);
  }
  return -1;
}

int64_t ShuffleMap::DeltaFor(uint64_t old_vaddr) const {
  const int32_t rid = RangeIdFor(old_vaddr);
  return rid >= 0 ? ranges_[rid].delta() : 0;
}

void ShuffleMap::BatchDeltas(const uint64_t* addrs, size_t count, int64_t* out) const {
  // One merge pass: `cursor` only ever advances because addrs is ascending.
  // Mirrors DeltaFor exactly: the candidate is the greatest range whose start
  // is <= addr, and only that candidate's extent is tested.
  size_t cursor = 0;  // first range with old_vaddr > addr
  const size_t range_count = ranges_.size();
  for (size_t i = 0; i < count; ++i) {
    const uint64_t addr = addrs[i];
    while (cursor < range_count && ranges_[cursor].old_vaddr <= addr) {
      ++cursor;
    }
    if (cursor == 0) {
      out[i] = 0;
      continue;
    }
    const ShuffledRange& range = ranges_[cursor - 1];
    out[i] = (addr - range.old_vaddr < range.size) ? range.delta() : 0;
  }
}

void ShuffleMap::BatchRangeIds(const uint64_t* addrs, size_t count, int32_t* out) const {
  // Same merge as BatchDeltas, emitting ids.
  size_t cursor = 0;
  const size_t range_count = ranges_.size();
  for (size_t i = 0; i < count; ++i) {
    const uint64_t addr = addrs[i];
    while (cursor < range_count && ranges_[cursor].old_vaddr <= addr) {
      ++cursor;
    }
    if (cursor == 0) {
      out[i] = -1;
      continue;
    }
    const ShuffledRange& range = ranges_[cursor - 1];
    out[i] = (addr - range.old_vaddr < range.size) ? static_cast<int32_t>(cursor - 1) : -1;
  }
}

uint64_t ShuffleMap::PermutationDigest() const {
  if (ranges_.empty()) {
    return 0;
  }
  // FNV-1a over the (old, new) pairs in sorted-by-old order, 16 bits at a
  // time (same mixing as OldGeometrySignature, but over the permutation).
  uint64_t h = 0xcbf29ce484222325ull ^ ranges_.size();
  const auto mix = [&h](uint64_t v) {
    for (int shift = 0; shift < 64; shift += 16) {
      h = (h ^ ((v >> shift) & 0xffff)) * 0x100000001b3ull;
    }
  };
  for (const ShuffledRange& range : ranges_) {
    mix(range.old_vaddr);
    mix(range.new_vaddr);
  }
  return h != 0 ? h : 1;
}

uint64_t ShuffleMap::OldGeometrySignature() const {
  uint64_t h = 0xcbf29ce484222325ull ^ ranges_.size();
  const auto mix = [&h](uint64_t v) {
    for (int shift = 0; shift < 64; shift += 16) {
      h = (h ^ ((v >> shift) & 0xffff)) * 0x100000001b3ull;
    }
  };
  for (const ShuffledRange& range : ranges_) {
    mix(range.old_vaddr);
    mix(range.size);
  }
  return h;
}

void ShuffleDeltaIndex::Rebuild(const ShuffleMap& map) {
  map_ = &map;
  const std::vector<ShuffledRange>& ranges = map.ranges();
  // Per-boot part: the delta of each range id.
  deltas_.resize(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    deltas_[i] = ranges[i].delta();
  }
  // Boot-invariant part: the granule -> range-id table. Skipped when this
  // index last saw the same old-address geometry (a fresh shuffle of the
  // same image).
  const uint64_t sig = map.OldGeometrySignature();
  if (geometry_valid_ && sig == geometry_sig_) {
    return;
  }
  geometry_sig_ = sig;
  geometry_valid_ = true;
  granules_.clear();
  if (map.empty()) {
    span_start_ = 0;
    span_end_ = 0;
    return;
  }
  constexpr uint64_t kGranule = 1ull << kGranuleShift;
  span_start_ = ranges.front().old_vaddr & ~(kGranule - 1);
  span_end_ = ranges.back().old_vaddr + ranges.back().size;
  span_end_ = (span_end_ + kGranule - 1) & ~(kGranule - 1);
  granules_.assign((span_end_ - span_start_) >> kGranuleShift, kNoRange);
  for (size_t rid = 0; rid < ranges.size(); ++rid) {
    const ShuffledRange& range = ranges[rid];
    if (range.size == 0) {
      // A degenerate range still shadows later-start lookups in DeltaFor's
      // candidate selection; force its granule onto the exact path.
      if (range.old_vaddr >= span_start_ && range.old_vaddr < span_end_) {
        granules_[(range.old_vaddr - span_start_) >> kGranuleShift] = kMixedGranule;
      }
      continue;
    }
    const uint64_t first = (range.old_vaddr - span_start_) >> kGranuleShift;
    const uint64_t last = (range.old_vaddr + range.size - 1 - span_start_) >> kGranuleShift;
    // Interior granules lie fully inside the range; the two edge granules may
    // also cover bytes outside it (unaligned start/end) and must take the
    // exact path unless the range happens to cover them completely.
    for (uint64_t g = first; g <= last; ++g) {
      const uint64_t granule_start = span_start_ + (g << kGranuleShift);
      const bool covered =
          range.old_vaddr <= granule_start && granule_start + kGranule <= range.old_vaddr + range.size;
      granules_[g] = covered ? static_cast<int32_t>(rid) : kMixedGranule;
    }
  }
}

}  // namespace imk
