#include "src/kaslr/page_sharing.h"

#include <cstring>
#include <unordered_map>
#include <unordered_set>

namespace imk {
namespace {

// FNV-1a over one page; collisions are resolved by byte comparison below.
uint64_t PageHash(const uint8_t* page, uint32_t page_size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (uint32_t i = 0; i < page_size; ++i) {
    hash = (hash ^ page[i]) * 0x100000001b3ull;
  }
  return hash;
}

bool IsZeroPage(const uint8_t* page, uint32_t page_size) {
  for (uint32_t i = 0; i < page_size; ++i) {
    if (page[i] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

PageSharingReport ComparePages(ByteSpan a, ByteSpan b, uint32_t page_size) {
  PageSharingReport report;
  report.pages_a = a.size() / page_size;
  report.pages_b = b.size() / page_size;

  // Index a's pages by hash (with chaining for verification).
  std::unordered_multimap<uint64_t, const uint8_t*> index;
  index.reserve(report.pages_a);
  for (uint64_t i = 0; i < report.pages_a; ++i) {
    const uint8_t* page = a.data() + i * page_size;
    index.emplace(PageHash(page, page_size), page);
  }

  for (uint64_t i = 0; i < report.pages_b; ++i) {
    const uint8_t* page = b.data() + i * page_size;
    if (IsZeroPage(page, page_size)) {
      ++report.zero_pages_b;
      continue;
    }
    auto [begin, end] = index.equal_range(PageHash(page, page_size));
    for (auto it = begin; it != end; ++it) {
      if (std::memcmp(it->second, page, page_size) == 0) {
        ++report.sharable_pages;
        break;
      }
    }
  }
  return report;
}

MonitorCowReport CompareMonitorCow(const FrameStore& a, uint64_t phys_a, const FrameStore& b,
                                   uint64_t phys_b, uint64_t len) {
  constexpr uint64_t kFrame = FrameStore::kFrameBytes;
  MonitorCowReport report;
  const uint64_t frames = len / kFrame;
  report.frames_a = frames;
  report.frames_b = frames;

  // Alias identity = the template pointer a shared frame reads from.
  std::unordered_set<const uint8_t*> sources_a;
  sources_a.reserve(frames);
  for (uint64_t f = 0; f < frames; ++f) {
    const uint64_t frame_a = phys_a / kFrame + f;
    switch (a.StateOf(frame_a)) {
      case FrameStore::FrameState::kShared:
        ++report.aliased_a;
        sources_a.insert(a.SharedSource(frame_a));
        break;
      case FrameStore::FrameState::kDirty:
        ++report.dirty_a;
        break;
      case FrameStore::FrameState::kZero:
        break;
    }
  }
  for (uint64_t f = 0; f < frames; ++f) {
    const uint64_t frame_b = phys_b / kFrame + f;
    switch (b.StateOf(frame_b)) {
      case FrameStore::FrameState::kShared: {
        ++report.aliased_b;
        if (sources_a.count(b.SharedSource(frame_b)) != 0) {
          ++report.shared_frames;
        }
        break;
      }
      case FrameStore::FrameState::kDirty:
        ++report.dirty_b;
        break;
      case FrameStore::FrameState::kZero:
        break;
    }
  }
  return report;
}

}  // namespace imk
