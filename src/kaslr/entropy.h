// Entropy analysis helpers (paper §4.3 argues in-monitor randomization has
// entropy equivalent to Linux's; these utilities let tests and examples
// quantify that claim).
#ifndef IMKASLR_SRC_KASLR_ENTROPY_H_
#define IMKASLR_SRC_KASLR_ENTROPY_H_

#include <cstdint>

#include "src/base/result.h"
#include "src/kaslr/random_offset.h"

namespace imk {

// Empirical sampling of the offset picker.
struct EntropyReport {
  uint64_t trials = 0;
  uint64_t possible_slots = 0;   // theoretical virtual slots
  uint64_t distinct_slides = 0;  // distinct virtual slides observed
  double theoretical_bits = 0;   // log2(possible_slots)
  double min_slide = 0;
  double max_slide = 0;
  // Chi-squared statistic of the observed slide histogram vs uniform
  // (buckets of equal width); near `buckets` for a healthy sampler.
  double chi_squared = 0;
  uint32_t buckets = 0;
};

// Samples ChooseRandomOffsets `trials` times.
Result<EntropyReport> MeasureOffsetEntropy(const OffsetConstraints& constraints, uint64_t trials,
                                           uint64_t seed, uint32_t buckets);

// Upper bound on FGKASLR's extra entropy: log2(n!) for n shuffled sections.
double ShuffleEntropyBits(uint64_t num_sections);

}  // namespace imk

#endif  // IMKASLR_SRC_KASLR_ENTROPY_H_
