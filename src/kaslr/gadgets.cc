#include "src/kaslr/gadgets.h"

#include <algorithm>
#include <unordered_map>

#include "src/isa/isa.h"

namespace imk {
namespace {

constexpr uint32_t kContextBytes = 24;  // preceding bytes used as a content key

uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash = (hash ^ data[i]) * 0x100000001b3ull;
  }
  return hash;
}

// Content key of a gadget: the bytes from (gadget - context) through its RET
// — and not a byte further, so the key is invariant to whatever function the
// shuffle placed next.
uint64_t GadgetKey(ByteSpan text, uint64_t vaddr, const Gadget& gadget) {
  const uint64_t offset = gadget.vaddr - vaddr;
  const uint64_t start = offset >= kContextBytes ? offset - kContextBytes : 0;
  // Decode forward to find the gadget's byte length (ends at its RET).
  uint64_t body = 0;
  for (uint32_t i = 0; i < gadget.instructions && offset + body < text.size(); ++i) {
    const uint32_t length = InstructionLength(text[offset + body]);
    if (length == 0) {
      break;
    }
    body += length;
  }
  const uint64_t len = std::min<uint64_t>(offset - start + body, text.size() - start);
  return Fnv1a(text.data() + start, len);
}

}  // namespace

std::vector<Gadget> ScanGadgets(ByteSpan text, uint64_t vaddr, const GadgetScanOptions& options) {
  // First decode all instruction boundaries (VK64 decodes linearly).
  std::vector<uint32_t> starts;
  std::vector<uint8_t> opcode_at;
  starts.reserve(text.size() / 4);
  size_t offset = 0;
  while (offset < text.size()) {
    const uint8_t opcode = text[offset];
    const uint32_t length = InstructionLength(opcode);
    if (length == 0 || offset + length > text.size()) {
      ++offset;  // skip padding/garbage byte and resync
      continue;
    }
    starts.push_back(static_cast<uint32_t>(offset));
    opcode_at.push_back(opcode);
    offset += length;
  }

  // Walk backwards from every RET collecting suffixes.
  std::vector<Gadget> gadgets;
  for (size_t i = 0; i < starts.size(); ++i) {
    if (static_cast<Opcode>(opcode_at[i]) != Opcode::kRet) {
      continue;
    }
    const uint32_t longest =
        std::min<uint32_t>(options.max_instructions, static_cast<uint32_t>(i) + 1);
    for (uint32_t len = 1; len <= longest; ++len) {
      gadgets.push_back(Gadget{vaddr + starts[i + 1 - len], len});
    }
  }
  return gadgets;
}

Result<GadgetDiversity> CompareGadgetAddresses(const std::vector<Gadget>& a, ByteSpan text_a,
                                               uint64_t vaddr_a, const std::vector<Gadget>& b,
                                               ByteSpan text_b, uint64_t vaddr_b) {
  if (a.empty() || b.empty()) {
    return InvalidArgumentError("gadget sets must be non-empty");
  }
  // Index b's gadgets by content key; greedy first-unused matching.
  std::unordered_multimap<uint64_t, size_t> index;
  index.reserve(b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    index.emplace(GadgetKey(text_b, vaddr_b, b[i]), i);
  }

  std::vector<int64_t> deltas;
  deltas.reserve(a.size());
  std::vector<bool> used(b.size(), false);
  for (const Gadget& gadget : a) {
    const uint64_t key = GadgetKey(text_a, vaddr_a, gadget);
    auto [begin, end] = index.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (!used[it->second]) {
        used[it->second] = true;
        deltas.push_back(static_cast<int64_t>(b[it->second].vaddr - gadget.vaddr));
        break;
      }
    }
  }
  if (deltas.empty()) {
    return InternalError("no gadgets matched by content");
  }

  // Modal delta.
  std::unordered_map<int64_t, uint64_t> histogram;
  for (int64_t delta : deltas) {
    ++histogram[delta];
  }
  uint64_t modal = 0;
  for (const auto& [delta, count] : histogram) {
    modal = std::max(modal, count);
  }

  GadgetDiversity diversity;
  diversity.gadgets = deltas.size();
  diversity.same_delta = modal;
  diversity.modal_delta_fraction =
      static_cast<double>(modal) / static_cast<double>(deltas.size());
  return diversity;
}

}  // namespace imk
