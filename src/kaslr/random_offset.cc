#include "src/kaslr/random_offset.h"

#include <cmath>

#include "src/base/align.h"
#include "src/kernel/layout.h"

namespace imk {

KernelConstantsNote DefaultKernelConstants() {
  KernelConstantsNote constants;
  constants.physical_start = kPhysicalStart;
  constants.physical_align = kPhysicalAlign;
  constants.start_kernel_map = kStartKernelMap;
  constants.kernel_image_size = kKernelImageSize;
  return constants;
}

Result<uint64_t> VirtualSlots(const OffsetConstraints& constraints) {
  const KernelConstantsNote& k = constraints.constants;
  if (!IsPowerOfTwo(k.physical_align)) {
    return InvalidArgumentError("physical_align must be a power of two");
  }
  const uint64_t span = k.physical_start + constraints.image_mem_size;
  if (span > k.kernel_image_size) {
    return InvalidArgumentError("kernel image too large for KERNEL_IMAGE_SIZE window");
  }
  // Slides 0, align, 2*align, ... while the image still fits below the limit.
  return (k.kernel_image_size - span) / k.physical_align + 1;
}

Result<double> VirtualEntropyBits(const OffsetConstraints& constraints) {
  IMK_ASSIGN_OR_RETURN(uint64_t slots, VirtualSlots(constraints));
  return std::log2(static_cast<double>(slots));
}

Result<OffsetChoice> ChooseRandomOffsets(const OffsetConstraints& constraints, Rng& rng) {
  const KernelConstantsNote& k = constraints.constants;
  IMK_ASSIGN_OR_RETURN(uint64_t virt_slots, VirtualSlots(constraints));

  const uint64_t phys_needed =
      constraints.image_mem_size + constraints.reserved_tail;
  if (k.physical_start + phys_needed > constraints.guest_mem_size) {
    return InvalidArgumentError("guest memory too small for kernel image");
  }
  const uint64_t phys_slots =
      (constraints.guest_mem_size - k.physical_start - phys_needed) / k.physical_align + 1;

  OffsetChoice choice;
  choice.virt_slide = rng.NextBelow(virt_slots) * k.physical_align;
  choice.phys_load_addr = k.physical_start + rng.NextBelow(phys_slots) * k.physical_align;
  return choice;
}

}  // namespace imk
